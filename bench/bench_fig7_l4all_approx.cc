// Regenerates Fig. 7: execution time (ms) of the APPROX versions of L4All
// queries Q3, Q8, Q9, Q10, Q11, Q12 on L1..L4 — top-100 answers in batches
// of 10 (§4.1 protocol). The paper's shape: Q3/Q10/Q11 get *faster* on
// L3/L4 (plenty of exact answers fill the top-100 quickly), while Q8/Q9/Q12
// blow up with intermediate results.
#include <cstdio>

#include "bench_util.h"

using namespace omega;
using namespace omega::bench;

int main() {
  const std::vector<std::string> picks = {"Q3", "Q8", "Q9", "Q10", "Q11",
                                          "Q12"};
  std::printf("== Fig. 7: execution time (ms), APPROX L4All queries "
              "(top-100, batches of 10) ==\n\n");
  TablePrinter table({"Query", "L1 init", "L1 batch", "L1 total", "L2 total",
                      "L3 total", "L4 total"});
  for (size_t q = 0; q < picks.size(); ++q) {
    std::vector<std::string> row = {picks[q], "-", "-", "-", "-", "-", "-"};
    for (int level = 1; level <= MaxL4AllLevel(); ++level) {
      const L4AllDataset& d = L4All(level);
      for (const NamedQuery& nq : L4AllQuerySet()) {
        if (nq.name != picks[q]) continue;
        auto r = RunProtocol(d.graph, d.ontology, nq.conjunct,
                             ConjunctMode::kApprox);
        if (level == 1) {
          row[1] = r.failed ? "?" : FormatMs(r.init_ms);
          row[2] = r.failed ? "?" : FormatMs(r.mean_batch_ms);
        }
        row[2 + static_cast<size_t>(level)] =
            r.failed ? "?" : FormatMs(r.total_ms);
      }
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
