// Planner gate bench: races the cost-based greedy bushy plan against the
// seed's textual left-deep order on a skewed-selectivity workload — a hub
// join whose textual order materialises a large intermediate side table
// before the selective constant-target conjunct can filter, exactly the
// intermediate-result blow-up the planner exists to avoid. The
// BM_SubstratePlan_{PlannedOrder,TextualOrder} pair is consumed by
// tools/check_substrate_gate.py (via the `substrate_gate` CMake target),
// which requires the planned order to hold a >= 1.5x speedup.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "eval/query_engine.h"
#include "rpq/query_parser.h"
#include "store/graph_builder.h"

namespace {

using namespace omega;

// Hub-skewed graph: `a` edges land on a few hub nodes and `b` edges leave
// them, so (?X, a, ?Y) |><| (?Y, b, ?Z) multiplies through the hubs; `rare`
// reaches the constant sink from a handful of nodes, making the final
// textual conjunct the most selective one.
const GraphStore& SkewedGraph() {
  static const GraphStore* graph = [] {
    Rng rng(2027);
    GraphBuilder builder;
    constexpr size_t kNodes = 2000;
    constexpr size_t kHubs = 40;
    constexpr size_t kEdges = 2500;
    std::vector<NodeId> nodes;
    nodes.reserve(kNodes);
    for (size_t i = 0; i < kNodes; ++i) {
      nodes.push_back(builder.GetOrAddNode("n" + std::to_string(i)));
    }
    const NodeId sink = builder.GetOrAddNode("sink");
    const LabelId a = *builder.InternLabel("a");
    const LabelId b = *builder.InternLabel("b");
    const LabelId rare = *builder.InternLabel("rare");
    for (size_t e = 0; e < kEdges; ++e) {
      (void)builder.AddEdge(nodes[rng.NextBounded(kNodes)], a,
                            nodes[rng.NextBounded(kHubs)]);
      (void)builder.AddEdge(nodes[rng.NextBounded(kHubs)], b,
                            nodes[rng.NextBounded(kNodes)]);
    }
    for (size_t e = 0; e < 25; ++e) {
      (void)builder.AddEdge(nodes[rng.NextBounded(kNodes)], rare, sink);
    }
    return new GraphStore(std::move(builder).Finalize());
  }();
  return *graph;
}

const Query& SkewedQuery() {
  static const Query* query = [] {
    Result<Query> q = ParseQuery(
        "(?X, ?Z) <- (?X, a, ?Y), (?Y, b, ?Z), (?Z, rare, sink)");
    if (!q.ok()) {
      std::fprintf(stderr, "bench_plan: %s\n", q.status().ToString().c_str());
      std::abort();
    }
    return new Query(std::move(q).value());
  }();
  return *query;
}

std::vector<QueryAnswer> DrainWithMode(PlanMode mode) {
  QueryEngine engine(&SkewedGraph(), nullptr);
  QueryEngineOptions options;
  options.plan_mode = mode;
  Result<std::vector<QueryAnswer>> answers =
      engine.ExecuteTopK(SkewedQuery(), 0, options);
  if (!answers.ok()) {
    std::fprintf(stderr, "bench_plan: %s\n",
                 answers.status().ToString().c_str());
    std::abort();
  }
  return std::move(answers).value();
}

/// Both orders must retrieve the same answer multiset — a pair that did
/// different work would gate nothing.
void CheckOutputsAgree() {
  static const bool checked = [] {
    auto canon = [](std::vector<QueryAnswer> answers) {
      std::vector<std::pair<std::vector<NodeId>, Cost>> rows;
      rows.reserve(answers.size());
      for (QueryAnswer& a : answers) {
        rows.emplace_back(std::move(a.bindings), a.distance);
      }
      std::sort(rows.begin(), rows.end());
      return rows;
    };
    if (canon(DrainWithMode(PlanMode::kGreedyBushy)) !=
        canon(DrainWithMode(PlanMode::kTextual))) {
      std::fprintf(stderr,
                   "bench_plan: planned and textual orders retrieved "
                   "different answers\n");
      std::abort();
    }
    return true;
  }();
  (void)checked;
}

void BM_SubstratePlan_PlannedOrder(benchmark::State& state) {
  CheckOutputsAgree();
  size_t total = 0;
  for (auto _ : state) {
    total += DrainWithMode(PlanMode::kGreedyBushy).size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_SubstratePlan_PlannedOrder);

void BM_SubstratePlan_TextualOrder(benchmark::State& state) {
  CheckOutputsAgree();
  size_t total = 0;
  for (auto _ : state) {
    total += DrainWithMode(PlanMode::kTextual).size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_SubstratePlan_TextualOrder);

}  // namespace

BENCHMARK_MAIN();
