// Micro-benchmarks of the substrate the paper builds on (the Sparksee
// replacement + automaton pipeline), using google-benchmark. These have no
// counterpart figure; they quantify the access paths whose costs the Open /
// GetNext / Succ procedures depend on.
#include <benchmark/benchmark.h>

#include "automata/approx.h"
#include "automata/epsilon_removal.h"
#include "automata/thompson.h"
#include "common/rng.h"
#include "eval/tuple_dictionary.h"
#include "rpq/regex_parser.h"
#include "store/bitmap.h"
#include "store/graph_builder.h"
#include "store/oid_set.h"

namespace {

using namespace omega;

const GraphStore& BenchGraph() {
  static const GraphStore* graph = [] {
    Rng rng(99);
    GraphBuilder builder;
    constexpr size_t kNodes = 100000;
    constexpr size_t kEdgesPerLabel = 400000;
    std::vector<NodeId> nodes;
    nodes.reserve(kNodes);
    for (size_t i = 0; i < kNodes; ++i) {
      nodes.push_back(builder.GetOrAddNode("n" + std::to_string(i)));
    }
    for (const char* label : {"a", "b", "c", "d"}) {
      const LabelId l = *builder.InternLabel(label);
      for (size_t e = 0; e < kEdgesPerLabel; ++e) {
        (void)builder.AddEdge(nodes[rng.NextZipf(kNodes, 1.2)], l,
                              nodes[rng.NextBounded(kNodes)]);
      }
    }
    return new GraphStore(std::move(builder).Finalize());
  }();
  return *graph;
}

void BM_NeighborScan(benchmark::State& state) {
  const GraphStore& g = BenchGraph();
  const LabelId a = *g.labels().Find("a");
  Rng rng(7);
  size_t total = 0;
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    auto span = g.Neighbors(n, a, Direction::kOutgoing);
    total += span.size();
    benchmark::DoNotOptimize(span.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_NeighborScan);

void BM_SigmaNeighborScan(benchmark::State& state) {
  const GraphStore& g = BenchGraph();
  Rng rng(7);
  size_t total = 0;
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    auto span = g.SigmaNeighbors(n, Direction::kOutgoing);
    total += span.size();
    benchmark::DoNotOptimize(span.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_SigmaNeighborScan);

void BM_NodeLookupByLabel(benchmark::State& state) {
  const GraphStore& g = BenchGraph();
  Rng rng(11);
  for (auto _ : state) {
    const std::string label = "n" + std::to_string(rng.NextBounded(100000));
    benchmark::DoNotOptimize(g.FindNode(label));
  }
}
BENCHMARK(BM_NodeLookupByLabel);

void BM_OidSetUnion(benchmark::State& state) {
  Rng rng(3);
  std::vector<NodeId> a_ids, b_ids;
  for (int i = 0; i < state.range(0); ++i) {
    a_ids.push_back(static_cast<NodeId>(rng.NextBounded(1u << 20)));
    b_ids.push_back(static_cast<NodeId>(rng.NextBounded(1u << 20)));
  }
  const OidSet a = OidSet::FromUnsorted(a_ids);
  const OidSet b = OidSet::FromUnsorted(b_ids);
  for (auto _ : state) {
    OidSet u = OidSet::Union(a, b);
    benchmark::DoNotOptimize(u.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_OidSetUnion)->Arg(1000)->Arg(100000);

void BM_BitmapTestAndSet(benchmark::State& state) {
  Bitmap bitmap(1 << 20);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bitmap.TestAndSet(static_cast<NodeId>(rng.NextBounded(1u << 20))));
  }
}
BENCHMARK(BM_BitmapTestAndSet);

void BM_TupleDictionaryChurn(benchmark::State& state) {
  Rng rng(13);
  for (auto _ : state) {
    TupleDictionary dict;
    for (int i = 0; i < 1000; ++i) {
      dict.Add({static_cast<NodeId>(i), static_cast<NodeId>(i), 0,
                static_cast<Cost>(rng.NextBounded(4)), (i % 7) == 0});
    }
    while (!dict.Empty()) benchmark::DoNotOptimize(dict.Remove());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TupleDictionaryChurn);

void BM_ThompsonPlusEpsRemoval(benchmark::State& state) {
  const GraphStore& g = BenchGraph();
  RegexPtr regex = std::move(ParseRegex("(a|b.c)*.d-.(a+|(b.c.d))")).value();
  for (auto _ : state) {
    Nfa nfa = RemoveEpsilons(BuildThompsonNfa(*regex, g.labels()));
    benchmark::DoNotOptimize(nfa.NumStates());
  }
}
BENCHMARK(BM_ThompsonPlusEpsRemoval);

void BM_ApproxAutomatonConstruction(benchmark::State& state) {
  const GraphStore& g = BenchGraph();
  RegexPtr regex = std::move(ParseRegex("(a|b.c)*.d-.(a+|(b.c.d))")).value();
  Nfa exact = RemoveEpsilons(BuildThompsonNfa(*regex, g.labels()));
  for (auto _ : state) {
    Nfa approx = BuildApproxAutomaton(exact, ApproxOptions{});
    benchmark::DoNotOptimize(approx.NumStates());
  }
}
BENCHMARK(BM_ApproxAutomatonConstruction);

}  // namespace

BENCHMARK_MAIN();
