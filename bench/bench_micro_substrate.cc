// Micro-benchmarks of the substrate the paper builds on (the Sparksee
// replacement + automaton pipeline), using google-benchmark. These have no
// counterpart figure; they quantify the access paths whose costs the Open /
// GetNext / Succ procedures depend on.
#include <benchmark/benchmark.h>

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "automata/approx.h"
#include "automata/epsilon_removal.h"
#include "automata/thompson.h"
#include "bench_util.h"
#include "common/flat_hash.h"
#include "common/pack.h"
#include "common/rng.h"
#include "eval/rank_join.h"
#include "eval/rank_join_reference.h"
#include "eval/tuple_dictionary.h"
#include "eval/tuple_dictionary_reference.h"
#include "rpq/regex_parser.h"
#include "store/bitmap.h"
#include "store/graph_builder.h"
#include "store/oid_set.h"

namespace {

using namespace omega;

const GraphStore& BenchGraph() {
  static const GraphStore* graph = [] {
    Rng rng(99);
    GraphBuilder builder;
    constexpr size_t kNodes = 100000;
    constexpr size_t kEdgesPerLabel = 400000;
    std::vector<NodeId> nodes;
    nodes.reserve(kNodes);
    for (size_t i = 0; i < kNodes; ++i) {
      nodes.push_back(builder.GetOrAddNode("n" + std::to_string(i)));
    }
    for (const char* label : {"a", "b", "c", "d"}) {
      const LabelId l = *builder.InternLabel(label);
      for (size_t e = 0; e < kEdgesPerLabel; ++e) {
        (void)builder.AddEdge(nodes[rng.NextZipf(kNodes, 1.2)], l,
                              nodes[rng.NextBounded(kNodes)]);
      }
    }
    return new GraphStore(std::move(builder).Finalize());
  }();
  return *graph;
}

void BM_NeighborScan(benchmark::State& state) {
  const GraphStore& g = BenchGraph();
  const LabelId a = *g.labels().Find("a");
  Rng rng(7);
  size_t total = 0;
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    auto span = g.Neighbors(n, a, Direction::kOutgoing);
    total += span.size();
    benchmark::DoNotOptimize(span.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_NeighborScan);

void BM_SigmaNeighborScan(benchmark::State& state) {
  const GraphStore& g = BenchGraph();
  Rng rng(7);
  size_t total = 0;
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    auto span = g.SigmaNeighbors(n, Direction::kOutgoing);
    total += span.size();
    benchmark::DoNotOptimize(span.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_SigmaNeighborScan);

void BM_NodeLookupByLabel(benchmark::State& state) {
  const GraphStore& g = BenchGraph();
  Rng rng(11);
  for (auto _ : state) {
    const std::string label = "n" + std::to_string(rng.NextBounded(100000));
    benchmark::DoNotOptimize(g.FindNode(label));
  }
}
BENCHMARK(BM_NodeLookupByLabel);

void BM_OidSetUnion(benchmark::State& state) {
  Rng rng(3);
  std::vector<NodeId> a_ids, b_ids;
  for (int i = 0; i < state.range(0); ++i) {
    a_ids.push_back(static_cast<NodeId>(rng.NextBounded(1u << 20)));
    b_ids.push_back(static_cast<NodeId>(rng.NextBounded(1u << 20)));
  }
  const OidSet a = OidSet::FromUnsorted(a_ids);
  const OidSet b = OidSet::FromUnsorted(b_ids);
  for (auto _ : state) {
    OidSet u = OidSet::Union(a, b);
    benchmark::DoNotOptimize(u.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_OidSetUnion)->Arg(1000)->Arg(100000);

void BM_BitmapTestAndSet(benchmark::State& state) {
  Bitmap bitmap(1 << 20);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bitmap.TestAndSet(static_cast<NodeId>(rng.NextBounded(1u << 20))));
  }
}
BENCHMARK(BM_BitmapTestAndSet);

void BM_TupleDictionaryChurn(benchmark::State& state) {
  Rng rng(13);
  for (auto _ : state) {
    TupleDictionary dict;
    for (int i = 0; i < 1000; ++i) {
      dict.Add({static_cast<NodeId>(i), static_cast<NodeId>(i), 0,
                static_cast<Cost>(rng.NextBounded(4)), (i % 7) == 0});
    }
    while (!dict.Empty()) benchmark::DoNotOptimize(dict.Remove());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TupleDictionaryChurn);

// ---------------------------------------------------------------------------
// Substrate regression gate. Each BM_Substrate* pair races the bucket-queue /
// flat-hash structure against the seed's std::map / std::unordered_* one on
// the same GetNext-shaped workload; tools/check_substrate_gate.py reads the
// --benchmark_out JSON (BENCH_substrate.json) and fails if the new side is
// slower. Keep the workload of each pair byte-identical.
// ---------------------------------------------------------------------------

// Dijkstra-shaped dictionary traffic: every add is at (popped distance +
// small cost), the distance frontier creeps upward, and bursts of same-cost
// tuples model Succ fan-out.
template <typename Dict>
void DictionaryFrontierWorkload(benchmark::State& state) {
  const int kOps = 20000;
  for (auto _ : state) {
    Rng rng(21);
    Dict dict;
    dict.Add({0, 0, 0, 0, false});
    Cost frontier = 0;
    int pushed = 1;
    while (!dict.Empty()) {
      const EvalTuple t = dict.Remove();
      frontier = t.d;
      benchmark::DoNotOptimize(&t);
      if (pushed >= kOps) continue;
      const int fanout = static_cast<int>(rng.NextBounded(4));
      for (int k = 0; k < fanout && pushed < kOps; ++k, ++pushed) {
        dict.Add({static_cast<NodeId>(pushed), static_cast<NodeId>(pushed), 0,
                  frontier + static_cast<Cost>(rng.NextBounded(3)),
                  rng.NextBool(0.15)});
      }
    }
    benchmark::DoNotOptimize(frontier);
  }
  state.SetItemsProcessed(state.iterations() * kOps);
}

void BM_SubstrateDictionary_BucketQueue(benchmark::State& state) {
  DictionaryFrontierWorkload<TupleDictionary>(state);
}
BENCHMARK(BM_SubstrateDictionary_BucketQueue);

void BM_SubstrateDictionary_StdMapReference(benchmark::State& state) {
  DictionaryFrontierWorkload<ReferenceTupleDictionary>(state);
}
BENCHMARK(BM_SubstrateDictionary_StdMapReference);

// The evaluator's visited-set discipline: one membership probe per generated
// tuple (ExpandTuple) and one insert-if-absent per popped tuple (GetNext).
struct BenchVisitedKey {
  uint64_t vn;
  StateId s;
  bool operator==(const BenchVisitedKey&) const = default;
};
struct BenchVisitedKeyHash {
  size_t operator()(const BenchVisitedKey& k) const {
    // Mirrors ConjunctEvaluator::VisitedKeyHash (the shared HashMix64 path)
    // so both sides of the pair run the evaluator's real hash.
    return static_cast<size_t>(
        HashMix64(k.vn ^ (static_cast<uint64_t>(k.s) *
                          0x9e3779b97f4a7c15ULL)));
  }
};

BenchVisitedKey VisitedKeyAt(Rng& rng) {
  const uint64_t vn = rng.NextBounded(1u << 18);
  return {vn << 32 | rng.NextBounded(1u << 18), static_cast<StateId>(rng.NextBounded(8))};
}

template <typename Set>
void VisitedSetWorkload(benchmark::State& state, Set& set,
                        auto insert, auto contains) {
  const int kOps = 50000;
  size_t hits = 0;
  for (auto _ : state) {
    Rng rng(31);
    set.clear();
    for (int i = 0; i < kOps; ++i) {
      // ~3 probes (generated successors) per insert (popped tuple).
      hits += contains(set, VisitedKeyAt(rng));
      hits += contains(set, VisitedKeyAt(rng));
      hits += contains(set, VisitedKeyAt(rng));
      insert(set, VisitedKeyAt(rng));
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * kOps * 4);
}

void BM_SubstrateVisited_FlatHash(benchmark::State& state) {
  struct Wrapper {
    FlatHashSet<BenchVisitedKey, BenchVisitedKeyHash> set;
    void clear() { set.Clear(); }
  } w;
  VisitedSetWorkload(
      state, w,
      [](Wrapper& w, const BenchVisitedKey& k) { w.set.Insert(k); },
      [](Wrapper& w, const BenchVisitedKey& k) { return w.set.Contains(k); });
}
BENCHMARK(BM_SubstrateVisited_FlatHash);

void BM_SubstrateVisited_StdUnordered(benchmark::State& state) {
  std::unordered_set<BenchVisitedKey, BenchVisitedKeyHash> set;
  VisitedSetWorkload(
      state, set,
      [](auto& s, const BenchVisitedKey& k) { s.insert(k); },
      [](auto& s, const BenchVisitedKey& k) { return s.count(k) > 0; });
}
BENCHMARK(BM_SubstrateVisited_StdUnordered);

// The answer map: duplicate check per final-state tuple, then
// insert-if-absent when the answer is emitted.
template <typename MapAdaptor>
void AnswerMapWorkload(benchmark::State& state, MapAdaptor& map,
                       auto insert, auto contains) {
  const int kOps = 50000;
  size_t hits = 0;
  for (auto _ : state) {
    Rng rng(41);
    map.clear();
    for (int i = 0; i < kOps; ++i) {
      const uint64_t key = rng.NextBounded(1u << 16);
      hits += contains(map, key);
      insert(map, key, static_cast<Cost>(i & 1023));
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * kOps * 2);
}

void BM_SubstrateAnswers_FlatHash(benchmark::State& state) {
  struct Wrapper {
    FlatHashMap<uint64_t, Cost> map;
    void clear() { map.Clear(); }
  } w;
  AnswerMapWorkload(
      state, w,
      [](Wrapper& w, uint64_t k, Cost d) { w.map.Insert(k, d); },
      [](Wrapper& w, uint64_t k) { return w.map.Contains(k); });
}
BENCHMARK(BM_SubstrateAnswers_FlatHash);

void BM_SubstrateAnswers_StdUnordered(benchmark::State& state) {
  std::unordered_map<uint64_t, Cost> map;
  AnswerMapWorkload(
      state, map,
      [](auto& m, uint64_t k, Cost d) { m.try_emplace(k, d); },
      [](auto& m, uint64_t k) { return m.find(k) != m.end(); });
}
BENCHMARK(BM_SubstrateAnswers_StdUnordered);

// The rank-join data plane: a two-conjunct chain join (X,Y) |><| (Y,Z) on a
// shared Y drawn from a small domain, rows arriving in non-decreasing
// distance (bench_util's shared synthetic workload). The compiled side runs
// slot bindings + packed-integer keys, the reference side is the seed
// string-keyed join kept in rank_join_reference.h. Both drain the identical
// row script to exhaustion.
const std::vector<bench::SyntheticJoinRow>& JoinWorkload(bool left) {
  static const auto* left_rows = new std::vector<bench::SyntheticJoinRow>(
      bench::SyntheticJoinRows(61, 2000, 128));
  static const auto* right_rows = new std::vector<bench::SyntheticJoinRow>(
      bench::SyntheticJoinRows(62, 2000, 128));
  return left ? *left_rows : *right_rows;
}

void BM_SubstrateRankJoin_CompiledSlots(benchmark::State& state) {
  size_t total = 0;
  for (auto _ : state) {
    RankJoinStream join(std::make_unique<bench::SyntheticBindingStream>(
                            &JoinWorkload(true), true),
                        std::make_unique<bench::SyntheticBindingStream>(
                            &JoinWorkload(false), false));
    Binding out;
    size_t rows = 0;
    Cost sum = 0;
    while (join.Next(&out)) {
      ++rows;
      sum += out.distance;
    }
    benchmark::DoNotOptimize(sum);
    total += rows;
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_SubstrateRankJoin_CompiledSlots);

const std::vector<ReferenceBinding>& ReferenceJoinWorkload(bool left) {
  // Materialised once, like JoinWorkload: the pair must time the two joins,
  // not row conversion on one side.
  static const auto* left_rows = new std::vector<ReferenceBinding>(
      bench::SyntheticReferenceRows(JoinWorkload(true), true));
  static const auto* right_rows = new std::vector<ReferenceBinding>(
      bench::SyntheticReferenceRows(JoinWorkload(false), false));
  return left ? *left_rows : *right_rows;
}

void BM_SubstrateRankJoin_StringKeyReference(benchmark::State& state) {
  size_t total = 0;
  for (auto _ : state) {
    ReferenceRankJoinStream join(
        std::make_unique<VectorReferenceBindingStream>(
            bench::SyntheticReferenceVars(true), &ReferenceJoinWorkload(true)),
        std::make_unique<VectorReferenceBindingStream>(
            bench::SyntheticReferenceVars(false),
            &ReferenceJoinWorkload(false)));
    ReferenceBinding out;
    size_t rows = 0;
    Cost sum = 0;
    while (join.Next(&out)) {
      ++rows;
      sum += out.distance;
    }
    benchmark::DoNotOptimize(sum);
    total += rows;
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_SubstrateRankJoin_StringKeyReference);

// Head-binding dedup in QueryResultStream: one membership-or-insert per
// joined row. The seed kept a std::set<std::vector<NodeId>>; the compiled
// plane packs two-variable heads into one word probed through FlatHashSet.
void BM_SubstrateHeadDedup_FlatPacked(benchmark::State& state) {
  const int kOps = 50000;
  size_t fresh = 0;
  for (auto _ : state) {
    Rng rng(71);
    FlatHashSet<uint64_t> seen;
    for (int i = 0; i < kOps; ++i) {
      const NodeId a = static_cast<NodeId>(rng.NextBounded(1u << 12));
      const NodeId b = static_cast<NodeId>(rng.NextBounded(1u << 12));
      fresh += seen.Insert(PackPair(a, b));
    }
  }
  benchmark::DoNotOptimize(fresh);
  state.SetItemsProcessed(state.iterations() * kOps);
}
BENCHMARK(BM_SubstrateHeadDedup_FlatPacked);

void BM_SubstrateHeadDedup_StdSetReference(benchmark::State& state) {
  const int kOps = 50000;
  size_t fresh = 0;
  for (auto _ : state) {
    Rng rng(71);
    std::set<std::vector<NodeId>> seen;
    for (int i = 0; i < kOps; ++i) {
      const NodeId a = static_cast<NodeId>(rng.NextBounded(1u << 12));
      const NodeId b = static_cast<NodeId>(rng.NextBounded(1u << 12));
      fresh += seen.insert({a, b}).second;
    }
  }
  benchmark::DoNotOptimize(fresh);
  state.SetItemsProcessed(state.iterations() * kOps);
}
BENCHMARK(BM_SubstrateHeadDedup_StdSetReference);

void BM_ThompsonPlusEpsRemoval(benchmark::State& state) {
  const GraphStore& g = BenchGraph();
  RegexPtr regex = std::move(ParseRegex("(a|b.c)*.d-.(a+|(b.c.d))")).value();
  for (auto _ : state) {
    Nfa nfa = RemoveEpsilons(BuildThompsonNfa(*regex, g.labels()));
    benchmark::DoNotOptimize(nfa.NumStates());
  }
}
BENCHMARK(BM_ThompsonPlusEpsRemoval);

void BM_ApproxAutomatonConstruction(benchmark::State& state) {
  const GraphStore& g = BenchGraph();
  RegexPtr regex = std::move(ParseRegex("(a|b.c)*.d-.(a+|(b.c.d))")).value();
  Nfa exact = RemoveEpsilons(BuildThompsonNfa(*regex, g.labels()));
  for (auto _ : state) {
    Nfa approx = BuildApproxAutomaton(exact, ApproxOptions{});
    benchmark::DoNotOptimize(approx.NumStates());
  }
}
BENCHMARK(BM_ApproxAutomatonConstruction);

}  // namespace

BENCHMARK_MAIN();
