// Ranked-join scaling for multi-conjunct queries. The paper describes the
// ranked join (§3) but reports no numbers for it; this bench characterises
// top-k multi-conjunct latency vs. chain length and k on L4All data, then
// races the compiled-slot join substrate against the seed string-keyed one
// (rank_join_reference.h) on identical synthetic streams.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "eval/rank_join.h"
#include "eval/rank_join_reference.h"
#include "rpq/query_parser.h"

using namespace omega;
using namespace omega::bench;

namespace {

double TimeQuery(const QueryEngine& engine, const Query& query, size_t k,
                 size_t* answers) {
  // Warm-up + 3 timed runs.
  double total = 0;
  for (int run = 0; run < 4; ++run) {
    Timer timer;
    auto result = engine.ExecuteTopK(query, k);
    if (!result.ok()) {
      *answers = 0;
      return -1;
    }
    if (run > 0) total += timer.ElapsedMs();
    *answers = result->size();
  }
  return total / 3;
}

// --- Seed-vs-new join substrate on synthetic streams ------------------------

void RunSubstrateComparison() {
  std::printf("\n== Join substrate: compiled slots vs seed string keys ==\n\n");
  TablePrinter table({"Rows/side", "Outputs", "Compiled (ms)", "Seed (ms)",
                      "Speedup"});
  for (size_t n : {500u, 2000u, 8000u}) {
    const std::vector<SyntheticJoinRow> left = SyntheticJoinRows(61, n, 128);
    const std::vector<SyntheticJoinRow> right = SyntheticJoinRows(62, n, 128);
    // Converted outside the timed loops: the Speedup column must compare
    // the joins, not reference-side row materialisation.
    const std::vector<ReferenceBinding> ref_left =
        SyntheticReferenceRows(left, true);
    const std::vector<ReferenceBinding> ref_right =
        SyntheticReferenceRows(right, false);

    double compiled_ms = 0, seed_ms = 0;
    size_t outputs = 0;
    for (int run = 0; run < 4; ++run) {  // warm-up + 3 timed
      Timer timer;
      RankJoinStream join(
          std::make_unique<SyntheticBindingStream>(&left, true),
          std::make_unique<SyntheticBindingStream>(&right, false));
      Binding out;
      size_t rows = 0;
      while (join.Next(&out)) ++rows;
      if (run > 0) compiled_ms += timer.ElapsedMs();
      outputs = rows;
    }
    size_t seed_outputs = 0;
    for (int run = 0; run < 4; ++run) {
      Timer timer;
      ReferenceRankJoinStream join(
          std::make_unique<VectorReferenceBindingStream>(
              SyntheticReferenceVars(true), &ref_left),
          std::make_unique<VectorReferenceBindingStream>(
              SyntheticReferenceVars(false), &ref_right));
      ReferenceBinding out;
      size_t rows = 0;
      while (join.Next(&out)) ++rows;
      if (run > 0) seed_ms += timer.ElapsedMs();
      seed_outputs = rows;
    }
    compiled_ms /= 3;
    seed_ms /= 3;
    if (seed_outputs != outputs) {
      // The pair only means something when both joins did the same work.
      std::printf("WARNING: output mismatch at %zu rows/side: compiled=%zu "
                  "seed=%zu\n",
                  n, outputs, seed_outputs);
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  compiled_ms > 0 ? seed_ms / compiled_ms : 0.0);
    table.AddRow({std::to_string(n), std::to_string(outputs),
                  FormatMs(compiled_ms), FormatMs(seed_ms), speedup});
  }
  table.Print();
}

}  // namespace

int main() {
  const int level = std::min(2, MaxL4AllLevel());
  const L4AllDataset& d = L4All(level);
  QueryEngine engine(&d.graph, &d.ontology);

  std::printf("== Ranked join: multi-conjunct top-k on L4All %s ==\n\n",
              L4AllScaleName(level).c_str());
  TablePrinter table({"Query shape", "k", "Time (ms)", "Answers"});

  const std::vector<std::pair<std::string, std::string>> shapes = {
      {"1 conjunct", "(?A, ?B) <- (?A, next, ?B)"},
      {"2-chain", "(?A, ?C) <- (?A, next, ?B), (?B, next, ?C)"},
      {"3-chain",
       "(?A, ?D) <- (?A, next, ?B), (?B, next, ?C), (?C, next, ?D)"},
      {"2-chain + APPROX",
       "(?A, ?C) <- (?A, next, ?B), APPROX (?B, prereq, ?C)"},
      {"star join",
       "(?A) <- (?A, job, ?J), (?A, next, ?B), (?B, qualif, ?Q)"},
  };
  for (const auto& [name, text] : shapes) {
    Result<Query> query = ParseQuery(text);
    if (!query.ok()) {
      std::printf("parse error for %s: %s\n", name.c_str(),
                  query.status().ToString().c_str());
      continue;
    }
    for (size_t k : {10u, 100u, 1000u}) {
      size_t answers = 0;
      const double ms = TimeQuery(engine, *query, k, &answers);
      table.AddRow({name, std::to_string(k),
                    ms < 0 ? "?" : FormatMs(ms), std::to_string(answers)});
    }
  }
  table.Print();

  RunSubstrateComparison();
  return 0;
}
