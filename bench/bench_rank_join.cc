// Ranked-join scaling for multi-conjunct queries. The paper describes the
// ranked join (§3) but reports no numbers for it; this bench characterises
// top-k multi-conjunct latency vs. chain length and k on L4All data.
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "rpq/query_parser.h"

using namespace omega;
using namespace omega::bench;

namespace {

double TimeQuery(const QueryEngine& engine, const Query& query, size_t k,
                 size_t* answers) {
  // Warm-up + 3 timed runs.
  double total = 0;
  for (int run = 0; run < 4; ++run) {
    Timer timer;
    auto result = engine.ExecuteTopK(query, k);
    if (!result.ok()) {
      *answers = 0;
      return -1;
    }
    if (run > 0) total += timer.ElapsedMs();
    *answers = result->size();
  }
  return total / 3;
}

}  // namespace

int main() {
  const int level = std::min(2, MaxL4AllLevel());
  const L4AllDataset& d = L4All(level);
  QueryEngine engine(&d.graph, &d.ontology);

  std::printf("== Ranked join: multi-conjunct top-k on L4All %s ==\n\n",
              L4AllScaleName(level).c_str());
  TablePrinter table({"Query shape", "k", "Time (ms)", "Answers"});

  const std::vector<std::pair<std::string, std::string>> shapes = {
      {"1 conjunct", "(?A, ?B) <- (?A, next, ?B)"},
      {"2-chain", "(?A, ?C) <- (?A, next, ?B), (?B, next, ?C)"},
      {"3-chain",
       "(?A, ?D) <- (?A, next, ?B), (?B, next, ?C), (?C, next, ?D)"},
      {"2-chain + APPROX",
       "(?A, ?C) <- (?A, next, ?B), APPROX (?B, prereq, ?C)"},
      {"star join",
       "(?A) <- (?A, job, ?J), (?A, next, ?B), (?B, qualif, ?Q)"},
  };
  for (const auto& [name, text] : shapes) {
    Result<Query> query = ParseQuery(text);
    if (!query.ok()) {
      std::printf("parse error for %s: %s\n", name.c_str(),
                  query.status().ToString().c_str());
      continue;
    }
    for (size_t k : {10u, 100u, 1000u}) {
      size_t answers = 0;
      const double ms = TimeQuery(engine, *query, k, &answers);
      table.AddRow({name, std::to_string(k),
                    ms < 0 ? "?" : FormatMs(ms), std::to_string(answers)});
    }
  }
  table.Print();
  return 0;
}
