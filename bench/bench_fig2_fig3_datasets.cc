// Regenerates Fig. 2 (L4All class-hierarchy characteristics) and Fig. 3
// (L4All data-graph sizes L1-L4), plus the §4.2 YAGO shape summary.
//
// Paper reference values:
//   Fig. 2: Episode 2/2.67, Subject 2/8, Occupation 4/4.08,
//           Education Qualification Level 2/3.89, Industry Sector 1/21.
//   Fig. 3: L1 2,691/19,856; L2 15,188/118,088; L3 68,544/558,972;
//           L4 240,519/1,861,959.
//   §4.2:  3,110,056 nodes, 17,043,938 edges; hierarchy depth 2,
//           fan-out 933.43; 38 properties; property hierarchies of 2 and 6.
#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"

using namespace omega;
using namespace omega::bench;

int main() {
  std::printf("== Fig. 2: characteristics of the L4All class hierarchies ==\n");
  std::printf("   (paper: Episode 2/2.67, Subject 2/8, Occupation 4/4.08, "
              "EQL 2/3.89, Industry Sector 1/21)\n\n");
  const Ontology& ontology = L4All(1).ontology;
  {
    TablePrinter table({"Class hierarchy", "Depth", "Average fan-out"});
    for (const char* root : {"Episode", "Subject", "Occupation",
                             "Education Qualification Level",
                             "Industry Sector"}) {
      auto id = ontology.FindClass(root);
      if (!id) continue;
      char fanout[32];
      std::snprintf(fanout, sizeof(fanout), "%.2f",
                    ontology.AverageFanOut(*id));
      table.AddRow({root, std::to_string(ontology.HierarchyDepth(*id)),
                    fanout});
    }
    table.Print();
  }

  std::printf("== Fig. 3: characteristics of the L4All data graphs ==\n");
  std::printf("   (paper: L1 2,691/19,856 ... L4 240,519/1,861,959)\n\n");
  {
    TablePrinter table({"Graph", "Timelines", "Nodes", "Edges",
                        "Edges/Node"});
    for (int level = 1; level <= MaxL4AllLevel(); ++level) {
      const L4AllDataset& d = L4All(level);
      char ratio[32];
      std::snprintf(ratio, sizeof(ratio), "%.2f",
                    static_cast<double>(d.graph.NumEdges()) /
                        static_cast<double>(d.graph.NumNodes()));
      table.AddRow({L4AllScaleName(level),
                    FormatWithCommas(static_cast<long long>(
                        L4AllScalePreset(level).num_timelines)),
                    FormatWithCommas(static_cast<long long>(
                        d.graph.NumNodes())),
                    FormatWithCommas(static_cast<long long>(
                        d.graph.NumEdges())),
                    ratio});
    }
    table.Print();
  }

  std::printf("== §4.2: YAGO data graph shape ==\n");
  std::printf("   (paper: 3,110,056 nodes / 17,043,938 edges at scale 1.0; "
              "this run uses scale %.3f)\n\n", YagoScale());
  {
    const YagoDataset& d = Yago();
    TablePrinter table({"Metric", "Value", "Paper"});
    table.AddRow({"Nodes",
                  FormatWithCommas(static_cast<long long>(d.graph.NumNodes())),
                  "3,110,056"});
    table.AddRow({"Edges",
                  FormatWithCommas(static_cast<long long>(d.graph.NumEdges())),
                  "17,043,938"});
    auto root = d.ontology.FindClass("yago_entity");
    table.AddRow({"Hierarchy depth",
                  std::to_string(d.ontology.HierarchyDepth(*root)), "2"});
    char fanout[32];
    std::snprintf(fanout, sizeof(fanout), "%.2f",
                  d.ontology.AverageFanOut(*root));
    table.AddRow({"Hierarchy fan-out", fanout, "933.43"});
    table.AddRow({"Properties (incl. type)",
                  std::to_string(d.graph.labels().size()), "38"});
    auto rlbo = d.ontology.FindProperty("relationLocatedByObject");
    auto linked = d.ontology.FindProperty("linkedTo");
    table.AddRow({"Subproperties of relationLocatedByObject",
                  std::to_string(d.ontology.PropertyDownSet(*rlbo).size() - 1),
                  "6"});
    table.AddRow({"Subproperties of linkedTo",
                  std::to_string(d.ontology.PropertyDownSet(*linked).size() - 1),
                  "2"});
    table.Print();
  }
  return 0;
}
