// Shared infrastructure for the figure/table benches: dataset caching, the
// paper's timing protocol (§4.1), and fixed-width table printing.
#ifndef OMEGA_BENCH_BENCH_UTIL_H_
#define OMEGA_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "datasets/l4all.h"
#include "datasets/query_sets.h"
#include "datasets/yago.h"
#include "eval/query_engine.h"
#include "eval/rank_join_reference.h"

namespace omega::bench {

/// Maximum L4All scale level to bench (1..4); OMEGA_L4ALL_MAX_LEVEL.
int MaxL4AllLevel();

/// YAGO scale factor; OMEGA_YAGO_SCALE (default 0.02 ~ 1/50 of the paper).
double YagoScale();

/// Evaluator memory budget (live tuples) before a query is declared '?';
/// OMEGA_TUPLE_BUDGET (default 20M, roughly the paper's 6 GB machine).
size_t TupleBudget();

/// Cached datasets (generated once per process).
const L4AllDataset& L4All(int level);
const YagoDataset& Yago();

/// Result of the paper's run protocol for one query.
struct ProtocolResult {
  bool failed = false;         ///< the '?' case: budget exhausted
  std::string failure;         ///< status message when failed
  size_t answers = 0;          ///< total answers retrieved
  std::map<Cost, size_t> per_distance;  ///< answer count per distance
  double init_ms = 0;          ///< automaton construction + Open
  double mean_batch_ms = 0;    ///< mean time of the 10-answer batches
  double total_ms = 0;         ///< end-to-end (init + all batches)
  EvaluatorStats stats;
};

/// Runs a query under the §4.1 protocol: 5 runs, the first discarded as
/// cache warm-up; exact queries run to completion, flexible ones fetch
/// top-100 in batches of 10. Timings are averaged over runs 2-5.
ProtocolResult RunProtocol(const GraphStore& graph, const Ontology& ontology,
                           const std::string& conjunct, ConjunctMode mode,
                           const QueryEngineOptions& options = {},
                           size_t top_k = 100, int runs = 5);

/// Fixed-width markdown-ish table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1 (42) 2 (100)" — the Fig. 5 / Fig. 10 distance-breakdown notation:
/// count of answers at each non-zero distance.
std::string DistanceBreakdown(const std::map<Cost, size_t>& per_distance);

// --- Synthetic rank-join workload (bench_rank_join, bench_micro_substrate) --

/// One scripted join row: `a` is the private variable (X on the left side,
/// Z on the right), `y` the shared one, `d` the non-decreasing distance.
struct SyntheticJoinRow {
  NodeId a;
  NodeId y;
  Cost d;
};

/// Deterministic row script: `a` uniform over 2^20, `y` over `y_domain`,
/// distances bump by one with probability 1/4 per row.
std::vector<SyntheticJoinRow> SyntheticJoinRows(uint64_t seed, size_t n,
                                                NodeId y_domain);

/// Compiled-slot stream over a synthetic row script, catalogue width 3:
/// the left side binds (X=0, Y=1), the right (Y=1, Z=2).
class SyntheticBindingStream : public BindingStream {
 public:
  /// `rows` must outlive the stream.
  SyntheticBindingStream(const std::vector<SyntheticJoinRow>* rows, bool left)
      : rows_(rows),
        vars_(left ? std::vector<VarId>{0, 1} : std::vector<VarId>{1, 2}),
        left_(left) {}

  bool Next(Binding* out) override {
    if (pos_ >= rows_->size()) return false;
    const SyntheticJoinRow& row = (*rows_)[pos_++];
    Binding b(3);
    b.distance = row.d;
    b.Bind(left_ ? 0 : 2, row.a);
    b.Bind(1, row.y);
    *out = std::move(b);
    return true;
  }
  const Status& status() const override { return status_; }
  const std::vector<VarId>& variables() const override { return vars_; }

 private:
  const std::vector<SyntheticJoinRow>* rows_;
  std::vector<VarId> vars_;
  bool left_;
  size_t pos_ = 0;
  Status status_;
};

/// The same script lifted to the seed string data plane of
/// rank_join_reference.h (slot X/Y/Z become names "X"/"Y"/"Z"). Convert
/// once, outside any timed region, then replay through the borrowing
/// VectorReferenceBindingStream constructor — otherwise the paired bench
/// times string-row materialisation on the reference side only.
std::vector<ReferenceBinding> SyntheticReferenceRows(
    const std::vector<SyntheticJoinRow>& rows, bool left);

/// Variable names of one synthetic side on the seed data plane.
inline std::vector<std::string> SyntheticReferenceVars(bool left) {
  return left ? std::vector<std::string>{"X", "Y"}
              : std::vector<std::string>{"Y", "Z"};
}

std::string FormatMs(double ms);

}  // namespace omega::bench

#endif  // OMEGA_BENCH_BENCH_UTIL_H_
