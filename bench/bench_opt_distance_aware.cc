// Regenerates §4.3 "Retrieving answers by distance": APPROX queries with
// plentiful low-distance answers run dramatically faster when evaluation is
// capped at a growing cost ceiling ψ. Paper data points: L4All Q3 and Q9 run
// 3-4x faster; YAGO Q3 2x; YAGO Q2 drops from 2560ms to 0.6ms.
#include <cstdio>

#include "bench_util.h"

using namespace omega;
using namespace omega::bench;

namespace {

void Compare(const GraphStore& graph, const Ontology& ontology,
             const std::string& name, const std::string& conjunct,
             TablePrinter* table) {
  QueryEngineOptions baseline;
  auto base = RunProtocol(graph, ontology, conjunct, ConjunctMode::kApprox,
                          baseline);
  QueryEngineOptions da = baseline;
  da.distance_aware = true;
  auto opt = RunProtocol(graph, ontology, conjunct, ConjunctMode::kApprox, da);

  auto cell = [](const ProtocolResult& r) {
    return r.failed ? std::string("?") : FormatMs(r.total_ms);
  };
  std::string speedup = "-";
  if (!base.failed && !opt.failed && opt.total_ms > 0) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.1fx",
                  base.total_ms / opt.total_ms);
    speedup = buffer;
  }
  table->AddRow({name, cell(base), cell(opt), speedup,
                 base.failed ? "?" : std::to_string(base.stats.tuples_pushed),
                 opt.failed ? "?" : std::to_string(opt.stats.tuples_pushed)});
}

}  // namespace

int main() {
  std::printf("== §4.3(a): distance-aware retrieval, APPROX top-100 ==\n");
  std::printf("   (paper: L4All Q3/Q9 3-4x, YAGO Q3 2x, YAGO Q2 "
              "2560ms -> 0.6ms)\n");
  std::printf(
      "   Note: this engine's D_R already pops strictly by distance with\n"
      "   final-tuple priority, which captures most of the paper's win; the\n"
      "   remaining effect shows up as fewer tuple insertions, traded\n"
      "   against per-round restart costs (see EXPERIMENTS.md).\n\n");
  TablePrinter table({"Query", "Baseline (ms)", "Distance-aware (ms)",
                      "Speedup", "Pushed (base)", "Pushed (DA)"});

  const int level = std::min(4, MaxL4AllLevel());
  const L4AllDataset& l4 = L4All(level);
  for (const NamedQuery& nq : L4AllQuerySet()) {
    if (nq.name == "Q3" || nq.name == "Q9") {
      Compare(l4.graph, l4.ontology,
              "L4All " + nq.name + " (" + L4AllScaleName(level) + ")",
              nq.conjunct, &table);
    }
  }
  const YagoDataset& yago = Yago();
  for (const NamedQuery& nq : YagoQuerySet()) {
    if (nq.name == "Q2" || nq.name == "Q3") {
      Compare(yago.graph, yago.ontology, "YAGO " + nq.name, nq.conjunct,
              &table);
    }
  }
  table.Print();
  return 0;
}
