// Regenerates Fig. 8: execution time (ms) of the RELAX versions of L4All
// queries Q3, Q8, Q9, Q10, Q11, Q12 on L1..L4 — top-100 answers in batches
// of 10. The paper's shape: mostly flat across scales (relaxation explores
// a ontology-bounded neighbourhood), with Q12 rising from L3 to L4.
#include <cstdio>

#include "bench_util.h"

using namespace omega;
using namespace omega::bench;

int main() {
  const std::vector<std::string> picks = {"Q3", "Q8", "Q9", "Q10", "Q11",
                                          "Q12"};
  std::printf("== Fig. 8: execution time (ms), RELAX L4All queries "
              "(top-100, batches of 10) ==\n\n");
  TablePrinter table({"Query", "L1 total", "L2 total", "L3 total",
                      "L4 total", "answers L1..L4"});
  for (size_t q = 0; q < picks.size(); ++q) {
    std::vector<std::string> row = {picks[q], "-", "-", "-", "-", ""};
    for (int level = 1; level <= MaxL4AllLevel(); ++level) {
      const L4AllDataset& d = L4All(level);
      for (const NamedQuery& nq : L4AllQuerySet()) {
        if (nq.name != picks[q]) continue;
        auto r = RunProtocol(d.graph, d.ontology, nq.conjunct,
                             ConjunctMode::kRelax);
        row[static_cast<size_t>(level)] =
            r.failed ? "?" : FormatMs(r.total_ms);
        if (!row[5].empty()) row[5] += "/";
        row[5] += r.failed ? "?" : std::to_string(r.answers);
      }
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
