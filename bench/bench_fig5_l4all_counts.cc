// Regenerates Fig. 5: number of results (and their distance breakdown) for
// L4All queries Q3, Q8, Q9, Q10, Q11, Q12 in exact / APPROX / RELAX mode on
// each data graph L1..L4. Exact queries run to completion; APPROX and RELAX
// retrieve the top 100 answers. The bracketed "d (n)" cells list n answers
// at non-zero distance d, exactly as in the paper's figure.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace omega;
using namespace omega::bench;

int main() {
  const std::vector<std::string> picks = {"Q3", "Q8", "Q9", "Q10", "Q11",
                                          "Q12"};
  for (int level = 1; level <= MaxL4AllLevel(); ++level) {
    const L4AllDataset& d = L4All(level);
    std::printf("== Fig. 5 (%s): results per query ==\n\n",
                L4AllScaleName(level).c_str());
    TablePrinter table({"Query", "Exact", "APPROX", "APPROX distances",
                        "RELAX", "RELAX distances"});
    for (const NamedQuery& nq : L4AllQuerySet()) {
      if (std::find(picks.begin(), picks.end(), nq.name) == picks.end()) {
        continue;
      }
      // Counting runs only: a single run, no timing.
      auto exact = RunProtocol(d.graph, d.ontology, nq.conjunct,
                               ConjunctMode::kExact, {}, 100, 1);
      auto approx = RunProtocol(d.graph, d.ontology, nq.conjunct,
                                ConjunctMode::kApprox, {}, 100, 1);
      auto relax = RunProtocol(d.graph, d.ontology, nq.conjunct,
                               ConjunctMode::kRelax, {}, 100, 1);
      auto cell = [](const ProtocolResult& r) {
        return r.failed ? std::string("?") : std::to_string(r.answers);
      };
      auto dist_cell = [](const ProtocolResult& r) {
        return r.failed ? std::string("?") : DistanceBreakdown(r.per_distance);
      };
      table.AddRow({nq.name, cell(exact), cell(approx), dist_cell(approx),
                    cell(relax), dist_cell(relax)});
    }
    table.Print();
  }
  std::printf(
      "(Queries 1-2 behave like Q3; queries 4-7 return well over 100 exact\n"
      " answers on all graphs, so APPROX/RELAX are not applied — §4.1.)\n");
  return 0;
}
