// Serving-layer throughput gate: drives a QueryService with a mixed
// (exact / APPROX / RELAX, single- and multi-conjunct) workload over a
// hub-skewed graph and emits two gate pairs for
// tools/check_substrate_gate.py (via the `substrate_gate` CMake target):
//
//   BM_SubstrateService_RepeatedMix_CacheHit  vs  ..._CacheMiss
//     the same repeated-query mix answered from the ranked-result cache vs
//     re-evaluated with bypass_cache — the cache must be >= 20x faster.
//
//   BM_SubstrateService_ColdMix_ServiceParallel  vs  ..._ServiceSerial
//     cache-cold throughput of an 8-worker pool vs a 1-worker pool, driven
//     by 8 client threads — required >= 3x. Only registered when the host
//     has >= 4 hardware threads: on fewer cores the workers serialise on
//     the CPU and the pair would measure the scheduler, not the service.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "rpq/query_parser.h"
#include "service/query_service.h"
#include "store/graph_builder.h"

namespace {

using namespace omega;

/// Mid-sized social-ish graph: enough fan-out that APPROX queries do real
/// automaton work, plus a type hierarchy for RELAX.
const GraphStore& ServingGraph() {
  static const GraphStore* graph = [] {
    Rng rng(4242);
    GraphBuilder builder;
    constexpr size_t kPeople = 600;
    constexpr size_t kOrgs = 30;
    std::vector<std::string> people;
    std::vector<std::string> orgs;
    people.reserve(kPeople);
    for (size_t i = 0; i < kPeople; ++i) {
      people.push_back("p" + std::to_string(i));
    }
    for (size_t i = 0; i < kOrgs; ++i) {
      orgs.push_back("o" + std::to_string(i));
      (void)builder.AddEdge(orgs.back(), "type",
                            i % 2 == 0 ? "University" : "Company");
    }
    for (size_t i = 0; i < kPeople; ++i) {
      for (int e = 0; e < 3; ++e) {
        (void)builder.AddEdge(people[i], "knows",
                              people[rng.NextBounded(kPeople)]);
      }
      (void)builder.AddEdge(people[i],
                            rng.NextBounded(2) == 0 ? "worksAt" : "studiesAt",
                            orgs[rng.NextBounded(kOrgs)]);
    }
    return new GraphStore(std::move(builder).Finalize());
  }();
  return *graph;
}

const Ontology& ServingOntology() {
  static const Ontology* ontology = [] {
    OntologyBuilder ob;
    (void)ob.AddSubproperty("worksAt", "affiliatedWith");
    (void)ob.AddSubproperty("studiesAt", "affiliatedWith");
    (void)ob.AddSubclass("University", "Institution");
    (void)ob.AddSubclass("Company", "Institution");
    Result<Ontology> o = std::move(ob).Finalize();
    if (!o.ok()) {
      std::fprintf(stderr, "bench_service: %s\n", o.status().ToString().c_str());
      std::abort();
    }
    return new Ontology(std::move(o).value());
  }();
  return *ontology;
}

const std::vector<Query>& Workload() {
  static const std::vector<Query>* workload = [] {
    auto* queries = new std::vector<Query>();
    for (const char* text : {
             "(?X) <- (?X, knows, ?Y)",
             "(?X, ?Z) <- (?X, knows, ?Y), (?Y, knows, ?Z)",
             "(?X, ?O) <- (?X, knows, ?Y), (?Y, worksAt, ?O)",
             "(?X) <- APPROX (?X, knows.worksAt, ?Y)",
             "(?X) <- RELAX (?X, worksAt, ?Y)",
             "(?X) <- RELAX (?X, worksAt.type, ?Y)",
             "(?X, ?Y) <- (?X, knows, ?Y), RELAX (?X, studiesAt, ?O)",
             "(?X) <- APPROX (?X, worksAt, ?Y), (?X, knows, ?Z)",
         }) {
      Result<Query> q = ParseQuery(text);
      if (!q.ok()) {
        std::fprintf(stderr, "bench_service: %s\n",
                     q.status().ToString().c_str());
        std::abort();
      }
      queries->push_back(std::move(q).value());
    }
    return queries;
  }();
  return *workload;
}

constexpr size_t kTopK = 20;
constexpr size_t kClientThreads = 8;
constexpr size_t kRequestsPerClient = 16;

QueryServiceOptions ServiceOptions(size_t workers) {
  QueryServiceOptions options;
  options.num_workers = workers;
  options.max_queue = 1024;  // admission never skews the throughput pair
  return options;
}

/// Fires the mixed workload from kClientThreads blocking clients; returns
/// the number of successful responses. `bypass_cache` keeps the run
/// cache-cold for the throughput pair.
size_t DriveClients(QueryService* service, bool bypass_cache) {
  std::vector<std::thread> clients;
  std::atomic<size_t> ok{0};
  clients.reserve(kClientThreads);
  for (size_t c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([service, bypass_cache, c, &ok] {
      const std::vector<Query>& workload = Workload();
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        QueryRequest request;
        request.query = Clone(workload[(c * 5 + r) % workload.size()]);
        request.top_k = kTopK;
        request.bypass_cache = bypass_cache;
        if (service->Execute(std::move(request)).status.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  return ok.load();
}

void ThroughputBench(benchmark::State& state, size_t workers) {
  QueryService service(&ServingGraph(), &ServingOntology(),
                       ServiceOptions(workers));
  size_t total_ok = 0;
  for (auto _ : state) {
    total_ok += DriveClients(&service, /*bypass_cache=*/true);
  }
  if (total_ok !=
      state.iterations() * kClientThreads * kRequestsPerClient) {
    state.SkipWithError("some requests failed");
  }
  state.SetItemsProcessed(static_cast<int64_t>(total_ok));
}

void BM_SubstrateService_ColdMix_ServiceParallel(benchmark::State& state) {
  ThroughputBench(state, /*workers=*/8);
}

void BM_SubstrateService_ColdMix_ServiceSerial(benchmark::State& state) {
  ThroughputBench(state, /*workers=*/1);
}

/// Cache-hit latency: every iteration answers the whole mix from the cache
/// (warmed once outside the timed region).
void BM_SubstrateService_RepeatedMix_CacheHit(benchmark::State& state) {
  QueryService service(&ServingGraph(), &ServingOntology(),
                       ServiceOptions(2));
  const std::vector<Query>& workload = Workload();
  for (const Query& query : workload) {  // warm
    QueryRequest request;
    request.query = Clone(query);
    request.top_k = kTopK;
    if (!service.Execute(std::move(request)).status.ok()) {
      state.SkipWithError("warmup failed");
      return;
    }
  }
  size_t answers = 0;
  for (auto _ : state) {
    for (const Query& query : workload) {
      QueryRequest request;
      request.query = Clone(query);
      request.top_k = kTopK;
      QueryResponse response = service.Execute(std::move(request));
      if (!response.cache_hit) {
        state.SkipWithError("expected a cache hit");
        return;
      }
      answers += response.answers.size();
    }
  }
  benchmark::DoNotOptimize(answers);
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * Workload().size()));
}

/// Cache-miss latency twin: identical requests forced through evaluation.
void BM_SubstrateService_RepeatedMix_CacheMiss(benchmark::State& state) {
  QueryService service(&ServingGraph(), &ServingOntology(),
                       ServiceOptions(2));
  size_t answers = 0;
  for (auto _ : state) {
    for (const Query& query : Workload()) {
      QueryRequest request;
      request.query = Clone(query);
      request.top_k = kTopK;
      request.bypass_cache = true;
      QueryResponse response = service.Execute(std::move(request));
      if (!response.status.ok()) {
        state.SkipWithError("query failed");
        return;
      }
      answers += response.answers.size();
    }
  }
  benchmark::DoNotOptimize(answers);
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * Workload().size()));
}

// Service latencies accrue on worker threads while the driving thread
// blocks in Wait(), so wall clock — not the driver's CPU time — is the
// honest metric (the gate script reads real_time for these pairs).
BENCHMARK(BM_SubstrateService_RepeatedMix_CacheHit)->UseRealTime();
BENCHMARK(BM_SubstrateService_RepeatedMix_CacheMiss)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // The parallel-vs-serial pair measures worker scaling, which needs real
  // cores: on a 1-2 core host 8 workers just time-slice one CPU and the
  // pair would gate on scheduler behaviour. The gate script skips pairs
  // that are absent from the report, so registration is conditional.
  if (std::thread::hardware_concurrency() >= 4) {
    benchmark::RegisterBenchmark("BM_SubstrateService_ColdMix_ServiceParallel",
                                 BM_SubstrateService_ColdMix_ServiceParallel)
        ->UseRealTime();
    benchmark::RegisterBenchmark("BM_SubstrateService_ColdMix_ServiceSerial",
                                 BM_SubstrateService_ColdMix_ServiceSerial)
        ->UseRealTime();
  } else {
    std::fprintf(stderr,
                 "bench_service: < 4 hardware threads; the "
                 "ServiceParallel/ServiceSerial pair is not registered\n");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
