#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/rng.h"
#include "common/timer.h"

namespace omega::bench {

int MaxL4AllLevel() {
  if (const char* env = std::getenv("OMEGA_L4ALL_MAX_LEVEL")) {
    const int level = std::atoi(env);
    if (level >= 1 && level <= 4) return level;
  }
  return 4;
}

double YagoScale() {
  if (const char* env = std::getenv("OMEGA_YAGO_SCALE")) {
    const double scale = std::atof(env);
    if (scale > 0) return scale;
  }
  return 0.02;
}

size_t TupleBudget() {
  if (const char* env = std::getenv("OMEGA_TUPLE_BUDGET")) {
    const long long budget = std::atoll(env);
    if (budget > 0) return static_cast<size_t>(budget);
  }
  return 20'000'000;
}

const L4AllDataset& L4All(int level) {
  static std::unique_ptr<L4AllDataset> cache[5];
  if (!cache[level]) {
    std::fprintf(stderr, "[bench] generating L4All %s ...\n",
                 L4AllScaleName(level).c_str());
    cache[level] =
        std::make_unique<L4AllDataset>(GenerateL4All(L4AllScalePreset(level)));
    std::fprintf(stderr, "[bench]   %zu nodes, %zu edges\n",
                 cache[level]->graph.NumNodes(),
                 cache[level]->graph.NumEdges());
  }
  return *cache[level];
}

const YagoDataset& Yago() {
  static std::unique_ptr<YagoDataset> cache;
  if (!cache) {
    YagoOptions options;
    options.scale = YagoScale();
    std::fprintf(stderr, "[bench] generating YAGO (scale %.3f) ...\n",
                 options.scale);
    cache = std::make_unique<YagoDataset>(GenerateYago(options));
    std::fprintf(stderr, "[bench]   %zu nodes, %zu edges\n",
                 cache->graph.NumNodes(), cache->graph.NumEdges());
  }
  return *cache;
}

ProtocolResult RunProtocol(const GraphStore& graph, const Ontology& ontology,
                           const std::string& conjunct, ConjunctMode mode,
                           const QueryEngineOptions& base_options,
                           size_t top_k, int runs) {
  ProtocolResult result;
  Result<Query> query = MakeSingleConjunctQuery(conjunct, mode);
  if (!query.ok()) {
    result.failed = true;
    result.failure = query.status().ToString();
    return result;
  }
  QueryEngine engine(&graph, &ontology);
  QueryEngineOptions options = base_options;
  if (options.evaluator.max_live_tuples == 0) {
    options.evaluator.max_live_tuples = TupleBudget();
  }
  const bool exact = mode == ConjunctMode::kExact;
  if (!exact && options.evaluator.top_k_hint == 0) {
    options.evaluator.top_k_hint = top_k;
  }

  double init_total = 0, batch_total = 0, run_total = 0;
  size_t batches_counted = 0;
  int timed_runs = 0;
  for (int run = 0; run < runs; ++run) {
    const bool timed = run > 0;  // run 1 is the cache warm-up
    Timer run_timer;
    Timer init_timer;
    Result<std::unique_ptr<QueryResultStream>> stream =
        engine.Execute(*query, options);
    if (!stream.ok()) {
      result.failed = true;
      result.failure = stream.status().ToString();
      return result;
    }
    const double init_ms = init_timer.ElapsedMs();

    std::vector<QueryAnswer> answers;
    QueryAnswer answer;
    double run_batch_total = 0;
    size_t run_batches = 0;
    bool exhausted = false;
    while (!exhausted && (exact || answers.size() < top_k)) {
      Timer batch_timer;
      const size_t target =
          exact ? std::numeric_limits<size_t>::max() : answers.size() + 10;
      while (answers.size() < target) {
        if (!(*stream)->Next(&answer)) {
          exhausted = true;
          break;
        }
        answers.push_back(answer);
      }
      run_batch_total += batch_timer.ElapsedMs();
      ++run_batches;
    }
    if (!(*stream)->status().ok()) {
      result.failed = true;
      result.failure = (*stream)->status().ToString();
      return result;
    }

    if (run == 0) {
      result.answers = answers.size();
      for (const QueryAnswer& a : answers) ++result.per_distance[a.distance];
      result.stats = (*stream)->stats();
    }
    if (timed) {
      ++timed_runs;
      init_total += init_ms;
      batch_total += run_batch_total / static_cast<double>(
                                           std::max<size_t>(1, run_batches));
      batches_counted += run_batches;
      run_total += run_timer.ElapsedMs();
    }
  }
  if (timed_runs > 0) {
    result.init_ms = init_total / timed_runs;
    result.mean_batch_ms = batch_total / timed_runs;
    result.total_ms = run_total / timed_runs;
  }
  return result;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < widths.size(); ++c) {
    std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
}

std::string DistanceBreakdown(const std::map<Cost, size_t>& per_distance) {
  std::string out;
  for (const auto& [distance, count] : per_distance) {
    if (distance == 0) continue;
    if (!out.empty()) out += "  ";
    out += std::to_string(distance) + " (" + std::to_string(count) + ")";
  }
  return out.empty() ? "-" : out;
}

std::vector<SyntheticJoinRow> SyntheticJoinRows(uint64_t seed, size_t n,
                                                NodeId y_domain) {
  Rng rng(seed);
  std::vector<SyntheticJoinRow> rows;
  rows.reserve(n);
  Cost d = 0;
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.25)) ++d;
    rows.push_back({static_cast<NodeId>(rng.NextBounded(1u << 20)),
                    static_cast<NodeId>(rng.NextBounded(y_domain)), d});
  }
  return rows;
}

std::vector<ReferenceBinding> SyntheticReferenceRows(
    const std::vector<SyntheticJoinRow>& rows, bool left) {
  std::vector<ReferenceBinding> out;
  out.reserve(rows.size());
  for (const SyntheticJoinRow& row : rows) {
    ReferenceBinding b;
    b.distance = row.d;
    b.Bind(left ? "X" : "Z", row.a);
    b.Bind("Y", row.y);
    out.push_back(std::move(b));
  }
  return out;
}

std::string FormatMs(double ms) {
  char buffer[64];
  if (ms < 10) {
    std::snprintf(buffer, sizeof(buffer), "%.2f", ms);
  } else if (ms < 1000) {
    std::snprintf(buffer, sizeof(buffer), "%.1f", ms);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f", ms);
  }
  return buffer;
}

}  // namespace omega::bench
