// Regenerates Fig. 10: result counts for YAGO queries Q2, Q3, Q4, Q5, Q9
// (exact run to completion; APPROX/RELAX top-100), with '?' marking runs
// that exhausted the evaluator's memory budget — the paper's out-of-memory
// failures on Q4/Q5 APPROX, reproduced as a bounded failure.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace omega;
using namespace omega::bench;

int main() {
  const YagoDataset& d = Yago();
  const std::vector<std::string> picks = {"Q2", "Q3", "Q4", "Q5", "Q9"};
  std::printf("== Fig. 10: query results for the YAGO data graph ==\n");
  std::printf("   (budget %zu live tuples; '?' = budget exhausted)\n\n",
              TupleBudget());
  TablePrinter table({"Query", "Exact", "APPROX", "APPROX distances",
                      "RELAX", "RELAX distances"});
  for (const NamedQuery& nq : YagoQuerySet()) {
    if (std::find(picks.begin(), picks.end(), nq.name) == picks.end()) {
      continue;
    }
    auto exact = RunProtocol(d.graph, d.ontology, nq.conjunct,
                             ConjunctMode::kExact, {}, 100, 1);
    auto approx = RunProtocol(d.graph, d.ontology, nq.conjunct,
                              ConjunctMode::kApprox, {}, 100, 1);
    auto relax = RunProtocol(d.graph, d.ontology, nq.conjunct,
                             ConjunctMode::kRelax, {}, 100, 1);
    auto cell = [](const ProtocolResult& r) {
      return r.failed ? std::string("?") : std::to_string(r.answers);
    };
    auto dist_cell = [](const ProtocolResult& r) {
      return r.failed ? std::string("?") : DistanceBreakdown(r.per_distance);
    };
    table.AddRow({nq.name, cell(exact), cell(approx), dist_cell(approx),
                  cell(relax), dist_cell(relax)});
  }
  table.Print();
  std::printf(
      "(Q1 behaves like Q2; Q6 has Q4/Q5's shape but terminates; Q7/Q8\n"
      " return well over 100 exact answers — §4.2.)\n");
  return 0;
}
