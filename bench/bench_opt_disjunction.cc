// Regenerates §4.3 "Replacing alternation by disjunction": YAGO Q9's
// top-level alternation is decomposed into per-branch sub-automata evaluated
// in adaptive order (fewest previous-round answers first). Paper data point:
// 101.23ms -> 12.65ms. Both variants are also run with distance-aware mode
// off/on to show the optimisations compose.
#include <cstdio>

#include "bench_util.h"

using namespace omega;
using namespace omega::bench;

int main() {
  const YagoDataset& d = Yago();
  const std::string q9 = YagoQuerySet()[8].conjunct;  // Q9
  std::printf("== §4.3(b): alternation -> disjunction, YAGO Q9 APPROX "
              "top-100 ==\n");
  std::printf("   (paper: 101.23ms -> 12.65ms)\n\n");

  TablePrinter table({"Configuration", "Time (ms)", "Answers"});
  struct Config {
    const char* name;
    bool decompose;
    bool distance_aware;
  };
  for (const Config& config :
       {Config{"monolithic automaton", false, false},
        Config{"decomposed (adaptive branch order)", true, false},
        Config{"monolithic + distance-aware", false, true},
        Config{"decomposed + distance-aware", true, true}}) {
    QueryEngineOptions options;
    options.decompose_alternation = config.decompose;
    options.distance_aware = config.distance_aware;
    auto r = RunProtocol(d.graph, d.ontology, q9, ConjunctMode::kApprox,
                         options);
    table.AddRow({config.name, r.failed ? "?" : FormatMs(r.total_ms),
                  r.failed ? "?" : std::to_string(r.answers)});
  }
  table.Print();
  return 0;
}
