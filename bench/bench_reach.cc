// Reachability & distance index gate: what does the index buy over the
// walk it replaces?
//
//   BM_SubstrateReach_DeepChain_ReachProbe  vs  ..._ReachBfs
//     answering "how many nodes does u reach over e-edges" on a deep chain
//     (worst case for a BFS: the traversal is the whole suffix) via the
//     FERRARI-style interval index — component lookup + merged-interval
//     count off prefix sums, O(intervals) — vs the label-BFS the NFA walk
//     degenerates to. Required >= 10x by tools/check_substrate_gate.py:
//     the index exists to make closure conjuncts O(answer), and a probe
//     that degrades toward a traversal defeats it.
//
//   BM_SubstrateReach_ApproxFar_DistanceSketch  vs  ..._DistanceRounds
//     time to the first answer of a distance-aware APPROX conjunct between
//     two far-apart constants. The plain stream ratchets psi from 0 by phi
//     and re-runs Dijkstra every round until psi reaches the answer's
//     cost; the hub-sketch floor proves those rounds empty and starts psi
//     at the first admissible cost. Required >= 3x — the sketch's whole
//     job is skipping rounds.
//
// Both pairs are cross-checked for agreement outside the timed region.
// Scale via OMEGA_REACH_BENCH_NODES (default 4096-node chain).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/distance_aware.h"
#include "index/index_manager.h"
#include "index/index_probe_stream.h"
#include "rpq/query_parser.h"
#include "store/graph_builder.h"
#include "store/graph_store.h"

namespace {

using namespace omega;

constexpr size_t kNumProbes = 64;

struct BenchWorld {
  GraphStore graph;
  LabelId label = kInvalidLabel;
  std::vector<NodeId> probe_sources;
  // Warmed outside the timed region: serving hosts mmap the index from the
  // snapshot, so build cost is not what the gate measures.
  const LabelReachability* reach = nullptr;
  const DistanceSketch* sketch = nullptr;
  IndexManager* indexes = nullptr;

  // The far-apart APPROX conjunct for the distance pair, prepared once.
  PreparedConjunct prepared;
  EvaluatorOptions eval_options;
  DistanceAwareOptions da_options;
};

BenchWorld* BuildWorld() {
  auto* w = new BenchWorld();
  size_t num_nodes = 4096;
  if (const char* env = std::getenv("OMEGA_REACH_BENCH_NODES")) {
    num_nodes = static_cast<size_t>(std::atoll(env));
  }
  if (num_nodes < 300) num_nodes = 300;

  GraphBuilder builder;
  for (size_t i = 0; i + 1 < num_nodes; ++i) {
    Status s = builder.AddEdge("n" + std::to_string(i), "e",
                               "n" + std::to_string(i + 1));
    if (!s.ok()) std::abort();
  }
  w->graph = std::move(builder).Finalize();
  w->label = *w->graph.labels().Find("e");
  for (size_t i = 0; i < kNumProbes; ++i) {
    const std::string name = "n" + std::to_string(i * (num_nodes / kNumProbes));
    w->probe_sources.push_back(*w->graph.FindNode(name));
  }

  w->indexes = new IndexManager(&w->graph);
  w->reach = w->indexes->Reachability(w->label, Direction::kOutgoing);
  w->sketch = w->indexes->Sketch();
  if (w->reach == nullptr) {
    std::fprintf(stderr, "bench_reach: chain exceeded the interval budget\n");
    std::abort();
  }

  // 96 chain hops between the constants, one covered by the exact regex:
  // the plain stream needs ~96 psi rounds before the first answer, the
  // sketch floor starts on the last of them.
  Result<Conjunct> conjunct = ParseConjunct("APPROX (n16, e, n112)");
  if (!conjunct.ok()) std::abort();
  // The fruitless-round guard would abandon the far answer before psi
  // reaches it; the sketch is the principled replacement for that guard,
  // so the bench disables it for both sides.
  w->da_options.max_fruitless_rounds = 1u << 20;
  Result<PreparedConjunct> prepared =
      PrepareConjunct(*conjunct, w->graph, nullptr, w->eval_options);
  if (!prepared.ok()) std::abort();
  w->prepared = std::move(*prepared);
  return w;
}

const BenchWorld& World() {
  static const BenchWorld* world = BuildWorld();
  return *world;
}

/// Label-BFS reachable-set size — what the closure walk does per source.
size_t BfsReachCount(const GraphStore& g, LabelId label, NodeId source) {
  std::vector<bool> visited(g.NumNodes(), false);
  std::vector<NodeId> stack{source};
  visited[source] = true;
  size_t count = 0;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    ++count;
    for (const NodeId t : g.Neighbors(n, label, Direction::kOutgoing)) {
      if (!visited[t]) {
        visited[t] = true;
        stack.push_back(t);
      }
    }
  }
  return count;
}

size_t ProbeReachCount(const BenchWorld& w, NodeId source) {
  IndexProbePlan plan;
  plan.label = w.label;
  plan.source = source;
  const std::optional<ProbeReachSet> set =
      ComputeProbeReachSet(w.graph, w.reach, plan);
  return set.has_value() ? set->Count(w.reach) : 0;
}

void BM_SubstrateReach_DeepChain_ReachBfs(benchmark::State& state) {
  const BenchWorld& w = World();
  size_t total = 0;
  for (auto _ : state) {
    for (const NodeId source : w.probe_sources) {
      total += BfsReachCount(w.graph, w.label, source);
    }
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kNumProbes));
}

void BM_SubstrateReach_DeepChain_ReachProbe(benchmark::State& state) {
  const BenchWorld& w = World();
  size_t total = 0;
  for (auto _ : state) {
    for (const NodeId source : w.probe_sources) {
      total += ProbeReachCount(w, source);
    }
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * kNumProbes));
}

BENCHMARK(BM_SubstrateReach_DeepChain_ReachBfs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SubstrateReach_DeepChain_ReachProbe)
    ->Unit(benchmark::kMicrosecond);

/// Time-to-first-answer probe: builds a fresh stream and pulls once.
struct FirstAnswer {
  bool found = false;
  Answer answer;
  size_t rounds = 0;
};

FirstAnswer PullFirstAnswer(const BenchWorld& w, const DistanceSketch* sketch) {
  DistanceAwareStream stream(&w.graph, nullptr, &w.prepared, w.eval_options,
                             w.da_options, sketch);
  FirstAnswer out;
  out.found = stream.Next(&out.answer);
  out.rounds = stream.rounds();
  return out;
}

void BM_SubstrateReach_ApproxFar_DistanceRounds(benchmark::State& state) {
  const BenchWorld& w = World();
  size_t found = 0;
  for (auto _ : state) {
    found += PullFirstAnswer(w, nullptr).found ? 1 : 0;
  }
  benchmark::DoNotOptimize(found);
  if (state.iterations() > 0 &&
      found != static_cast<size_t>(state.iterations())) {
    state.SkipWithError("plain distance-aware stream lost the answer");
  }
}

void BM_SubstrateReach_ApproxFar_DistanceSketch(benchmark::State& state) {
  const BenchWorld& w = World();
  size_t found = 0;
  for (auto _ : state) {
    found += PullFirstAnswer(w, w.sketch).found ? 1 : 0;
  }
  benchmark::DoNotOptimize(found);
  if (state.iterations() > 0 &&
      found != static_cast<size_t>(state.iterations())) {
    state.SkipWithError("sketch-pruned stream lost the answer");
  }
}

BENCHMARK(BM_SubstrateReach_ApproxFar_DistanceRounds)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SubstrateReach_ApproxFar_DistanceSketch)
    ->Unit(benchmark::kMillisecond);

/// Sanity outside the gate: the index agrees with the BFS on every probe
/// source, and the sketch floor changes rounds but not answers.
void VerifyPairsAgree() {
  const BenchWorld& w = World();
  for (const NodeId source : w.probe_sources) {
    const size_t bfs = BfsReachCount(w.graph, w.label, source);
    const size_t probe = ProbeReachCount(w, source);
    if (bfs != probe) {
      std::fprintf(stderr,
                   "bench_reach: probe disagrees with BFS at n%u "
                   "(%zu vs %zu)\n",
                   source, probe, bfs);
      std::abort();
    }
  }
  const FirstAnswer plain = PullFirstAnswer(w, nullptr);
  const FirstAnswer pruned = PullFirstAnswer(w, w.sketch);
  if (!plain.found || !pruned.found || !(plain.answer == pruned.answer) ||
      pruned.rounds >= plain.rounds) {
    std::fprintf(stderr,
                 "bench_reach: sketch pruning changed the first answer "
                 "(plain %zu rounds, pruned %zu)\n",
                 plain.rounds, pruned.rounds);
    std::abort();
  }
}

}  // namespace

int main(int argc, char** argv) {
  VerifyPairsAgree();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
