// Snapshot storage-engine gate: how fast does a dataset become queryable?
//
//   BM_SubstrateSnapshot_YagoOpen_SnapshotLoad  vs  ..._TextLoad
//     opening the binary snapshot (mmap + structural validation, zero-copy
//     CSR arrays) vs re-parsing the omega-graph-v1 text file and rebuilding
//     the CSR store from scratch, on the same generated YAGO-style graph.
//     Required >= 10x by tools/check_substrate_gate.py — the snapshot
//     engine exists so that a multi-GB dataset loads in milliseconds, and
//     a load path that degrades toward a re-parse defeats it.
//
// Both loaders materialise the store and are spot-checked against each
// other outside the timed region; scale via OMEGA_SNAPSHOT_BENCH_SCALE
// (default is laptop-quick but big enough to dominate constant overheads).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "datasets/yago.h"
#include "snapshot/snapshot_reader.h"
#include "snapshot/snapshot_writer.h"
#include "store/graph_io.h"

namespace {

using namespace omega;

struct BenchFiles {
  std::string text_path;
  std::string snapshot_path;
  size_t num_nodes = 0;
  size_t num_edges = 0;
};

const BenchFiles& Files() {
  static const BenchFiles* files = [] {
    auto* f = new BenchFiles();
    double scale = 0.02;
    if (const char* env = std::getenv("OMEGA_SNAPSHOT_BENCH_SCALE")) {
      scale = std::atof(env);
    }
    YagoOptions options;
    options.scale = scale;
    YagoDataset dataset = GenerateYago(options);
    f->num_nodes = dataset.graph.NumNodes();
    f->num_edges = dataset.graph.NumEdges();

    const char* tmpdir = std::getenv("TMPDIR");
    const std::string base = (tmpdir != nullptr ? tmpdir : "/tmp");
    f->text_path = base + "/omega_bench_snapshot.graph";
    f->snapshot_path = base + "/omega_bench_snapshot.snap";
    Status saved = SaveGraph(dataset.graph, f->text_path);
    if (saved.ok()) {
      saved = WriteSnapshot(dataset.graph, &dataset.ontology,
                            f->snapshot_path);
    }
    if (!saved.ok()) {
      std::fprintf(stderr, "bench_snapshot: %s\n", saved.ToString().c_str());
      std::abort();
    }
    return f;
  }();
  return *files;
}

void BM_SubstrateSnapshot_YagoOpen_TextLoad(benchmark::State& state) {
  const BenchFiles& files = Files();
  size_t nodes = 0;
  for (auto _ : state) {
    Result<GraphStore> graph = LoadGraph(files.text_path);
    if (!graph.ok()) {
      state.SkipWithError("text load failed");
      return;
    }
    nodes += graph->NumNodes();
    benchmark::DoNotOptimize(graph);
  }
  if (state.iterations() > 0 &&
      nodes != state.iterations() * files.num_nodes) {
    state.SkipWithError("text load returned a different graph");
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * files.num_edges));
}

void BM_SubstrateSnapshot_YagoOpen_SnapshotLoad(benchmark::State& state) {
  const BenchFiles& files = Files();
  size_t nodes = 0;
  for (auto _ : state) {
    Result<std::shared_ptr<const Dataset>> dataset =
        SnapshotReader::Open(files.snapshot_path);
    if (!dataset.ok()) {
      state.SkipWithError("snapshot open failed");
      return;
    }
    nodes += (*dataset)->graph().NumNodes();
    benchmark::DoNotOptimize(dataset);
  }
  if (state.iterations() > 0 &&
      nodes != state.iterations() * files.num_nodes) {
    state.SkipWithError("snapshot open returned a different graph");
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * files.num_edges));
}

BENCHMARK(BM_SubstrateSnapshot_YagoOpen_TextLoad)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SubstrateSnapshot_YagoOpen_SnapshotLoad)
    ->Unit(benchmark::kMillisecond);

/// Sanity outside the gate: the two load paths serve the same store.
void VerifyLoadersAgree() {
  const BenchFiles& files = Files();
  Result<GraphStore> text = LoadGraph(files.text_path);
  Result<std::shared_ptr<const Dataset>> snap =
      SnapshotReader::Open(files.snapshot_path);
  if (!text.ok() || !snap.ok() ||
      text->NumNodes() != (*snap)->graph().NumNodes() ||
      text->NumEdges() != (*snap)->graph().NumEdges()) {
    std::fprintf(stderr,
                 "bench_snapshot: text and snapshot loaders disagree\n");
    std::abort();
  }
}

}  // namespace

int main(int argc, char** argv) {
  VerifyLoadersAgree();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
