// Observability overhead gate: the same mixed serving workload (exact /
// APPROX / RELAX, single- and multi-conjunct, cache-bypassed so the engine
// actually runs) driven through a QueryService twice:
//
//   BM_SubstrateObs_ServeMix_MetricsOn   all service/cache instruments live
//                                        (private MetricsRegistry)
//   BM_SubstrateObs_ServeMix_MetricsOff  enable_metrics=false: no instruments
//                                        created, hot paths take the null
//                                        branch
//
// tools/check_substrate_gate.py pairs them under the default tolerance: the
// instrumented run must stay within ~10% of the uninstrumented one, i.e.
// the relaxed-atomic counter/gauge/histogram increments must be near-free
// on the serving path. Tracing is deliberately not part of the pair — it is
// an opt-in per-request diagnostic, not an always-on cost.
//
// A second pair proves the flight recorder's always-on contract the same
// way:
//
//   BM_SubstrateObs_ServeMix_RecorderOn   every completion appends a flat
//                                         summary to a FlightRecorder ring
//   BM_SubstrateObs_ServeMix_RecorderOff  options.flight_recorder == nullptr
//
// The slow threshold is left at its (high) default so the pair measures the
// fast path — one mutex-guarded struct append per completion.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "rpq/query_parser.h"
#include "service/query_service.h"
#include "store/graph_builder.h"

namespace {

using namespace omega;

/// Hub-skewed social-ish graph, same shape as bench_service's: enough
/// fan-out that APPROX queries do real automaton work.
const GraphStore& ServingGraph() {
  static const GraphStore* graph = [] {
    Rng rng(777);
    GraphBuilder builder;
    constexpr size_t kPeople = 400;
    constexpr size_t kOrgs = 20;
    std::vector<std::string> people;
    std::vector<std::string> orgs;
    people.reserve(kPeople);
    for (size_t i = 0; i < kPeople; ++i) {
      people.push_back("p" + std::to_string(i));
    }
    for (size_t i = 0; i < kOrgs; ++i) {
      orgs.push_back("o" + std::to_string(i));
      (void)builder.AddEdge(orgs.back(), "type",
                            i % 2 == 0 ? "University" : "Company");
    }
    for (size_t i = 0; i < kPeople; ++i) {
      for (int e = 0; e < 3; ++e) {
        (void)builder.AddEdge(people[i], "knows",
                              people[rng.NextBounded(kPeople)]);
      }
      (void)builder.AddEdge(people[i],
                            rng.NextBounded(2) == 0 ? "worksAt" : "studiesAt",
                            orgs[rng.NextBounded(kOrgs)]);
    }
    return new GraphStore(std::move(builder).Finalize());
  }();
  return *graph;
}

const Ontology& ServingOntology() {
  static const Ontology* ontology = [] {
    OntologyBuilder ob;
    (void)ob.AddSubproperty("worksAt", "affiliatedWith");
    (void)ob.AddSubproperty("studiesAt", "affiliatedWith");
    (void)ob.AddSubclass("University", "Institution");
    (void)ob.AddSubclass("Company", "Institution");
    Result<Ontology> o = std::move(ob).Finalize();
    if (!o.ok()) {
      std::fprintf(stderr, "bench_obs: %s\n", o.status().ToString().c_str());
      std::abort();
    }
    return new Ontology(std::move(o).value());
  }();
  return *ontology;
}

const std::vector<Query>& Workload() {
  static const std::vector<Query>* workload = [] {
    auto* queries = new std::vector<Query>();
    for (const char* text : {
             "(?X) <- (?X, knows, ?Y)",
             "(?X, ?Z) <- (?X, knows, ?Y), (?Y, knows, ?Z)",
             "(?X) <- APPROX (?X, knows.worksAt, ?Y)",
             "(?X) <- RELAX (?X, worksAt, ?Y)",
             "(?X, ?Y) <- (?X, knows, ?Y), RELAX (?X, studiesAt, ?O)",
         }) {
      Result<Query> q = ParseQuery(text);
      if (!q.ok()) {
        std::fprintf(stderr, "bench_obs: %s\n",
                     q.status().ToString().c_str());
        std::abort();
      }
      queries->push_back(std::move(q).value());
    }
    return queries;
  }();
  return *workload;
}

constexpr size_t kTopK = 20;
constexpr size_t kClientThreads = 4;
constexpr size_t kRequestsPerClient = 16;

size_t DriveClients(QueryService* service) {
  std::vector<std::thread> clients;
  std::atomic<size_t> ok{0};
  clients.reserve(kClientThreads);
  for (size_t c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([service, c, &ok] {
      const std::vector<Query>& workload = Workload();
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        QueryRequest request;
        request.query = Clone(workload[(c * 3 + r) % workload.size()]);
        request.top_k = kTopK;
        request.bypass_cache = true;  // the engine must actually run
        if (service->Execute(std::move(request)).status.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  return ok.load();
}

void ObsBench(benchmark::State& state, bool metrics_on) {
  // A private registry keeps the gate self-contained (the On run does not
  // pollute the process-global instruments) while exercising the exact
  // production code path. It must outlive the service and its epochs —
  // declared first, destroyed last.
  MetricsRegistry registry;
  QueryServiceOptions options;
  options.num_workers = 2;
  options.max_queue = 1024;  // admission never skews the pair
  options.enable_metrics = metrics_on;
  options.metrics = &registry;
  QueryService service(&ServingGraph(), &ServingOntology(),
                       std::move(options));
  size_t total_ok = 0;
  for (auto _ : state) {
    total_ok += DriveClients(&service);
  }
  if (total_ok != state.iterations() * kClientThreads * kRequestsPerClient) {
    state.SkipWithError("some requests failed");
  }
  if (metrics_on &&
      registry.GetCounter("omega_service_submitted_total")->Value() <
          total_ok) {
    state.SkipWithError("metrics-on run did not record submissions");
  }
  state.SetItemsProcessed(static_cast<int64_t>(total_ok));
}

void BM_SubstrateObs_ServeMix_MetricsOn(benchmark::State& state) {
  ObsBench(state, /*metrics_on=*/true);
}
BENCHMARK(BM_SubstrateObs_ServeMix_MetricsOn)->UseRealTime();

void BM_SubstrateObs_ServeMix_MetricsOff(benchmark::State& state) {
  ObsBench(state, /*metrics_on=*/false);
}
BENCHMARK(BM_SubstrateObs_ServeMix_MetricsOff)->UseRealTime();

void RecorderBench(benchmark::State& state, bool recorder_on) {
  // Metrics stay off in both runs so the pair isolates the recorder's cost;
  // the recorder must outlive the service (declared first).
  FlightRecorder recorder;
  QueryServiceOptions options;
  options.num_workers = 2;
  options.max_queue = 1024;
  options.enable_metrics = false;
  options.flight_recorder = recorder_on ? &recorder : nullptr;
  QueryService service(&ServingGraph(), &ServingOntology(),
                       std::move(options));
  size_t total_ok = 0;
  for (auto _ : state) {
    total_ok += DriveClients(&service);
  }
  if (total_ok != state.iterations() * kClientThreads * kRequestsPerClient) {
    state.SkipWithError("some requests failed");
  }
  if (recorder_on && recorder.recorded_total() < total_ok) {
    state.SkipWithError("recorder-on run did not record completions");
  }
  state.SetItemsProcessed(static_cast<int64_t>(total_ok));
}

void BM_SubstrateObs_ServeMix_RecorderOn(benchmark::State& state) {
  RecorderBench(state, /*recorder_on=*/true);
}
BENCHMARK(BM_SubstrateObs_ServeMix_RecorderOn)->UseRealTime();

void BM_SubstrateObs_ServeMix_RecorderOff(benchmark::State& state) {
  RecorderBench(state, /*recorder_on=*/false);
}
BENCHMARK(BM_SubstrateObs_ServeMix_RecorderOff)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
