// Ablations of the paper's physical-design choices (§3.3-3.4):
//   - final/non-final tuple prioritisation in D_R ("improved the performance
//     of most of our queries"),
//   - batched coroutine seeding of (?X, R, ?Y) conjuncts ("execution time of
//     some queries was reduced by half"),
//   - the RELAX dom/range rule (implemented but unbenchmarked in the paper).
#include <cstdio>

#include "bench_util.h"

using namespace omega;
using namespace omega::bench;

int main() {
  const int level = std::min(2, MaxL4AllLevel());
  const L4AllDataset& d = L4All(level);

  std::printf("== Ablation: final-tuple prioritisation (L4All %s, APPROX "
              "top-100) ==\n\n", L4AllScaleName(level).c_str());
  {
    TablePrinter table({"Query", "with priority (ms)", "without (ms)",
                        "pushed w/", "pushed w/o"});
    for (const NamedQuery& nq : L4AllQuerySet()) {
      if (nq.name != "Q3" && nq.name != "Q9" && nq.name != "Q10") continue;
      QueryEngineOptions with;
      auto on = RunProtocol(d.graph, d.ontology, nq.conjunct,
                            ConjunctMode::kApprox, with);
      QueryEngineOptions without;
      without.evaluator.prioritize_final_tuples = false;
      auto off = RunProtocol(d.graph, d.ontology, nq.conjunct,
                             ConjunctMode::kApprox, without);
      table.AddRow({nq.name, on.failed ? "?" : FormatMs(on.total_ms),
                    off.failed ? "?" : FormatMs(off.total_ms),
                    std::to_string(on.stats.tuples_pushed),
                    std::to_string(off.stats.tuples_pushed)});
    }
    table.Print();
  }

  std::printf("== Ablation: seeding batch size (L4All %s, (?X,R,?Y) "
              "queries, top-100 APPROX) ==\n\n",
              L4AllScaleName(level).c_str());
  {
    TablePrinter table({"Query", "batch", "time (ms)", "seeds added"});
    for (const NamedQuery& nq : L4AllQuerySet()) {
      if (nq.name != "Q4" && nq.name != "Q5") continue;
      for (size_t batch : {10u, 100u, 1000000u}) {
        QueryEngineOptions options;
        options.evaluator.batch_size = batch;
        auto r = RunProtocol(d.graph, d.ontology, nq.conjunct,
                             ConjunctMode::kApprox, options);
        table.AddRow({nq.name,
                      batch >= 1000000u ? "all" : std::to_string(batch),
                      r.failed ? "?" : FormatMs(r.total_ms),
                      std::to_string(r.stats.seeds_added)});
      }
    }
    table.Print();
  }

  std::printf("== Ablation: RELAX dom/range rule (L4All %s, top-100) ==\n\n",
              L4AllScaleName(level).c_str());
  {
    TablePrinter table({"Query", "rule (i) only", "rules (i)+(ii)",
                        "answers (i)", "answers (i)+(ii)"});
    for (const NamedQuery& nq : L4AllQuerySet()) {
      if (nq.name != "Q8" && nq.name != "Q10" && nq.name != "Q12") continue;
      QueryEngineOptions rule_i;
      auto a = RunProtocol(d.graph, d.ontology, nq.conjunct,
                           ConjunctMode::kRelax, rule_i);
      QueryEngineOptions rule_both;
      rule_both.evaluator.relax.enable_domain_range = true;
      auto b = RunProtocol(d.graph, d.ontology, nq.conjunct,
                           ConjunctMode::kRelax, rule_both);
      table.AddRow({nq.name, a.failed ? "?" : FormatMs(a.total_ms),
                    b.failed ? "?" : FormatMs(b.total_ms),
                    a.failed ? "?" : std::to_string(a.answers),
                    b.failed ? "?" : std::to_string(b.answers)});
    }
    table.Print();
  }
  return 0;
}
