// Regenerates Fig. 11: execution times (ms) for YAGO queries Q2, Q3, Q4,
// Q5, Q9 in exact / APPROX / RELAX mode. Paper shape: exact Q2/Q3 fast;
// Q4/Q5 slow in exact mode (variable-variable conjuncts seeded from tens of
// thousands of nodes) and out of memory under APPROX; RELAX competitive,
// Q5/RELAX faster than its exact version (100 answers found early).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace omega;
using namespace omega::bench;

int main() {
  const YagoDataset& d = Yago();
  const std::vector<std::string> picks = {"Q2", "Q3", "Q4", "Q5", "Q9"};
  std::printf("== Fig. 11: execution times (ms), YAGO data graph ==\n");
  std::printf("   (budget %zu live tuples; '?' = budget exhausted)\n\n",
              TupleBudget());
  TablePrinter table(
      {"Query", "Exact (ms)", "APPROX (ms)", "RELAX (ms)", "answers E/A/R"});
  for (const NamedQuery& nq : YagoQuerySet()) {
    if (std::find(picks.begin(), picks.end(), nq.name) == picks.end()) {
      continue;
    }
    auto exact = RunProtocol(d.graph, d.ontology, nq.conjunct,
                             ConjunctMode::kExact);
    auto approx = RunProtocol(d.graph, d.ontology, nq.conjunct,
                              ConjunctMode::kApprox);
    auto relax = RunProtocol(d.graph, d.ontology, nq.conjunct,
                             ConjunctMode::kRelax);
    auto time_cell = [](const ProtocolResult& r) {
      return r.failed ? std::string("?") : FormatMs(r.total_ms);
    };
    auto count = [](const ProtocolResult& r) {
      return r.failed ? std::string("?") : std::to_string(r.answers);
    };
    table.AddRow({nq.name, time_cell(exact), time_cell(approx),
                  time_cell(relax),
                  count(exact) + "/" + count(approx) + "/" + count(relax)});
  }
  table.Print();
  return 0;
}
