// Regenerates Fig. 6: execution time (ms) of the exact versions of L4All
// queries Q3, Q8, Q9, Q10, Q11, Q12 on L1..L4, run to completion. Protocol
// per §4.1: five runs, the first discarded, the rest averaged. The paper's
// qualitative shape: Q8/Q9 flat (single answer), Q3/Q10/Q11 jump at L3 with
// the answer count, Q12 grows steeply with class-node degree.
#include <cstdio>

#include "bench_util.h"

using namespace omega;
using namespace omega::bench;

int main() {
  const std::vector<std::string> picks = {"Q3", "Q8", "Q9", "Q10", "Q11",
                                          "Q12"};
  TablePrinter table({"Query", "L1 (ms)", "L2 (ms)", "L3 (ms)", "L4 (ms)",
                      "answers L1..L4"});
  std::vector<std::vector<std::string>> cells(
      picks.size(), std::vector<std::string>(4, "-"));
  std::vector<std::string> counts(picks.size());

  for (int level = 1; level <= MaxL4AllLevel(); ++level) {
    const L4AllDataset& d = L4All(level);
    for (size_t q = 0; q < picks.size(); ++q) {
      for (const NamedQuery& nq : L4AllQuerySet()) {
        if (nq.name != picks[q]) continue;
        auto r = RunProtocol(d.graph, d.ontology, nq.conjunct,
                             ConjunctMode::kExact);
        cells[q][level - 1] = r.failed ? "?" : FormatMs(r.total_ms);
        if (!counts[q].empty()) counts[q] += "/";
        counts[q] += r.failed ? "?" : std::to_string(r.answers);
      }
    }
  }
  std::printf("== Fig. 6: execution time (ms), exact L4All queries ==\n\n");
  for (size_t q = 0; q < picks.size(); ++q) {
    table.AddRow({picks[q], cells[q][0], cells[q][1], cells[q][2],
                  cells[q][3], counts[q]});
  }
  table.Print();
  return 0;
}
