// Sorted object-id sets with set algebra, mirroring the Sparksee "Objects"
// sets that the paper's Open procedure manipulates ("Sparksee set operations
// are used to maintain a distinct set of nodes").
#ifndef OMEGA_STORE_OID_SET_H_
#define OMEGA_STORE_OID_SET_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "store/types.h"

namespace omega {

/// Immutable-ish sorted set of NodeIds. Mutation goes through Add/Insert which
/// keep the ordering invariant; bulk construction sorts and dedups once.
class OidSet {
 public:
  OidSet() = default;
  OidSet(std::initializer_list<NodeId> ids);

  /// Builds from arbitrary-order ids (sorts + dedups).
  static OidSet FromUnsorted(std::vector<NodeId> ids);

  /// Builds from ids already sorted ascending with no duplicates.
  static OidSet FromSortedUnique(std::vector<NodeId> ids);

  /// Inserts a single id, preserving order. O(n) worst case; intended for
  /// small sets or append-mostly use.
  void Insert(NodeId id);

  bool Contains(NodeId id) const;
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  void clear() { ids_.clear(); }

  std::span<const NodeId> ids() const { return ids_; }
  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }

  /// Set algebra; all O(|a| + |b|).
  static OidSet Union(const OidSet& a, const OidSet& b);
  static OidSet Intersect(const OidSet& a, const OidSet& b);
  static OidSet Difference(const OidSet& a, const OidSet& b);

  /// In-place union with a sorted span (merge).
  void UnionWith(std::span<const NodeId> sorted_ids);

  bool operator==(const OidSet& other) const = default;

 private:
  std::vector<NodeId> ids_;
};

}  // namespace omega

#endif  // OMEGA_STORE_OID_SET_H_
