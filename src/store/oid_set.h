// Sorted object-id sets with set algebra, mirroring the Sparksee "Objects"
// sets that the paper's Open procedure manipulates ("Sparksee set operations
// are used to maintain a distinct set of nodes").
#ifndef OMEGA_STORE_OID_SET_H_
#define OMEGA_STORE_OID_SET_H_

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/lifetime_annotations.h"
#include "store/types.h"

namespace omega {

/// Immutable-ish sorted set of NodeIds. Mutation goes through Add/Insert which
/// keep the ordering invariant; bulk construction sorts and dedups once.
///
/// Storage seam: a set either owns its ids (a vector, the default) or
/// *borrows* a sorted span it does not keep alive — how the frozen store's
/// endpoint sets view the CSR row arrays (and, for a snapshot-backed store,
/// the read-only mapping) without duplicating them. Borrowed sets are
/// value-indistinguishable from owned ones: reads go through one span,
/// equality is element-wise, and the first mutation detaches into an owned
/// copy. Copying a borrowed set deep-copies (the copy may outlive the
/// borrowed storage); only BorrowSortedUnique creates a borrow.
class OidSet {
 public:
  OidSet() = default;
  OidSet(std::initializer_list<NodeId> ids);

  OidSet(const OidSet& other);
  OidSet& operator=(const OidSet& other);
  OidSet(OidSet&& other) noexcept;
  OidSet& operator=(OidSet&& other) noexcept;

  /// Builds from arbitrary-order ids (sorts + dedups).
  static OidSet FromUnsorted(std::vector<NodeId> ids);

  /// Builds from ids already sorted ascending with no duplicates.
  static OidSet FromSortedUnique(std::vector<NodeId> ids);

  /// Borrows ids already sorted ascending with no duplicates. The caller
  /// keeps the storage alive for the set's lifetime — compiler-checked:
  /// borrowing from expiring storage is a -Wdangling diagnostic.
  static OidSet BorrowSortedUnique(std::span<const NodeId> ids
                                       OMEGA_LIFETIME_BOUND);

  /// Inserts a single id, preserving order. O(n) worst case; intended for
  /// small sets or append-mostly use.
  void Insert(NodeId id);

  bool Contains(NodeId id) const;
  size_t size() const { return ids().size(); }
  bool empty() const { return ids().empty(); }
  void clear();

  std::span<const NodeId> ids() const OMEGA_LIFETIME_BOUND {
    return borrowed_ ? view_ : std::span<const NodeId>(owned_);
  }
  auto begin() const OMEGA_LIFETIME_BOUND { return ids().begin(); }
  auto end() const OMEGA_LIFETIME_BOUND { return ids().end(); }

  bool borrowed() const { return borrowed_; }

  /// Set algebra; all O(|a| + |b|).
  static OidSet Union(const OidSet& a, const OidSet& b);
  static OidSet Intersect(const OidSet& a, const OidSet& b);
  static OidSet Difference(const OidSet& a, const OidSet& b);

  /// In-place union with a sorted span (merge).
  void UnionWith(std::span<const NodeId> sorted_ids);

  /// Element-wise (an owned and a borrowed set with the same ids are equal).
  bool operator==(const OidSet& other) const;

 private:
  /// Turns a borrowed set into an owned copy so it can be mutated.
  void Detach();

  std::vector<NodeId> owned_;
  std::span<const NodeId> view_;  // meaningful iff borrowed_
  bool borrowed_ = false;
};

}  // namespace omega

#endif  // OMEGA_STORE_OID_SET_H_
