#include "store/label_dictionary.h"

#include <cassert>

namespace omega {

LabelDictionary::LabelDictionary() {
  const LabelId id = Intern(kTypeLabelName);
  (void)id;
  assert(id == kTypeLabel);
}

Result<LabelDictionary> LabelDictionary::FromBorrowedTable(StringTable table) {
  if (table.empty() || table[0] != kTypeLabelName) {
    return Status::InvalidArgument(
        "label table id 0 must be 'type' (snapshot label section corrupt)");
  }
  LabelDictionary dict;
  dict.names_.clear();
  dict.ids_.clear();
  dict.borrowed_ = true;
  dict.frozen_ = std::move(table);
  // The index holds copies of the (small, few) label names; Name() itself
  // stays a zero-copy view into the table.
  for (LabelId id = 0; id < dict.frozen_.size(); ++id) {
    auto [it, inserted] =
        dict.ids_.emplace(std::string(dict.frozen_[id]), id);
    if (!inserted) {
      return Status::InvalidArgument("duplicate label name in snapshot: " +
                                     std::string(dict.frozen_[id]));
    }
  }
  return dict;
}

LabelId LabelDictionary::Intern(std::string_view name) {
  assert(!borrowed_ && "Intern() on a snapshot-backed dictionary");
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<LabelId> LabelDictionary::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::string_view LabelDictionary::Name(LabelId id) const {
  assert(id < size());
  return borrowed_ ? frozen_[id] : std::string_view(names_[id]);
}

std::vector<LabelId> LabelDictionary::SigmaLabels() const {
  std::vector<LabelId> out;
  out.reserve(size() - 1);
  for (LabelId id = 0; id < size(); ++id) {
    if (id != kTypeLabel) out.push_back(id);
  }
  return out;
}

}  // namespace omega
