#include "store/label_dictionary.h"

#include <cassert>

namespace omega {

LabelDictionary::LabelDictionary() {
  const LabelId id = Intern(kTypeLabelName);
  (void)id;
  assert(id == kTypeLabel);
}

LabelId LabelDictionary::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<LabelId> LabelDictionary::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::string_view LabelDictionary::Name(LabelId id) const {
  assert(id < names_.size());
  return names_[id];
}

std::vector<LabelId> LabelDictionary::SigmaLabels() const {
  std::vector<LabelId> out;
  out.reserve(names_.size() - 1);
  for (LabelId id = 0; id < names_.size(); ++id) {
    if (id != kTypeLabel) out.push_back(id);
  }
  return out;
}

}  // namespace omega
