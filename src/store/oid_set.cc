#include "store/oid_set.h"

#include <algorithm>

namespace omega {

OidSet::OidSet(std::initializer_list<NodeId> ids) : owned_(ids) {
  std::sort(owned_.begin(), owned_.end());
  owned_.erase(std::unique(owned_.begin(), owned_.end()), owned_.end());
}

OidSet::OidSet(const OidSet& other) {
  // Deep copy either way: the copy's lifetime is unknown, so it must not
  // inherit a borrow it cannot keep alive.
  owned_.assign(other.begin(), other.end());
}

OidSet& OidSet::operator=(const OidSet& other) {
  if (this == &other) return *this;
  owned_.assign(other.begin(), other.end());
  borrowed_ = false;
  view_ = {};
  return *this;
}

OidSet::OidSet(OidSet&& other) noexcept
    : owned_(std::move(other.owned_)),
      view_(other.view_),
      borrowed_(other.borrowed_) {
  // Moving a vector transfers its heap buffer, so an owned set's ids stay
  // where they were; a borrowed set's view is storage the move never touched.
  other.owned_.clear();
  other.view_ = {};
  other.borrowed_ = false;
}

OidSet& OidSet::operator=(OidSet&& other) noexcept {
  if (this == &other) return *this;
  owned_ = std::move(other.owned_);
  view_ = other.view_;
  borrowed_ = other.borrowed_;
  other.owned_.clear();
  other.view_ = {};
  other.borrowed_ = false;
  return *this;
}

OidSet OidSet::FromUnsorted(std::vector<NodeId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  OidSet s;
  s.owned_ = std::move(ids);
  return s;
}

OidSet OidSet::FromSortedUnique(std::vector<NodeId> ids) {
  OidSet s;
  s.owned_ = std::move(ids);
  return s;
}

OidSet OidSet::BorrowSortedUnique(std::span<const NodeId> ids) {
  OidSet s;
  s.borrowed_ = true;
  s.view_ = ids;
  return s;
}

void OidSet::Detach() {
  if (!borrowed_) return;
  owned_.assign(view_.begin(), view_.end());
  borrowed_ = false;
  view_ = {};
}

void OidSet::Insert(NodeId id) {
  Detach();
  auto it = std::lower_bound(owned_.begin(), owned_.end(), id);
  if (it != owned_.end() && *it == id) return;
  owned_.insert(it, id);
}

void OidSet::clear() {
  owned_.clear();
  borrowed_ = false;
  view_ = {};
}

bool OidSet::Contains(NodeId id) const {
  return std::binary_search(begin(), end(), id);
}

OidSet OidSet::Union(const OidSet& a, const OidSet& b) {
  std::vector<NodeId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return FromSortedUnique(std::move(out));
}

OidSet OidSet::Intersect(const OidSet& a, const OidSet& b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return FromSortedUnique(std::move(out));
}

OidSet OidSet::Difference(const OidSet& a, const OidSet& b) {
  std::vector<NodeId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return FromSortedUnique(std::move(out));
}

void OidSet::UnionWith(std::span<const NodeId> sorted_ids) {
  std::vector<NodeId> out;
  out.reserve(size() + sorted_ids.size());
  std::set_union(begin(), end(), sorted_ids.begin(), sorted_ids.end(),
                 std::back_inserter(out));
  clear();
  owned_ = std::move(out);
}

bool OidSet::operator==(const OidSet& other) const {
  return std::ranges::equal(ids(), other.ids());
}

}  // namespace omega
