#include "store/oid_set.h"

#include <algorithm>

namespace omega {

OidSet::OidSet(std::initializer_list<NodeId> ids) : ids_(ids) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

OidSet OidSet::FromUnsorted(std::vector<NodeId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  OidSet s;
  s.ids_ = std::move(ids);
  return s;
}

OidSet OidSet::FromSortedUnique(std::vector<NodeId> ids) {
  OidSet s;
  s.ids_ = std::move(ids);
  return s;
}

void OidSet::Insert(NodeId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) return;
  ids_.insert(it, id);
}

bool OidSet::Contains(NodeId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

OidSet OidSet::Union(const OidSet& a, const OidSet& b) {
  std::vector<NodeId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return FromSortedUnique(std::move(out));
}

OidSet OidSet::Intersect(const OidSet& a, const OidSet& b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return FromSortedUnique(std::move(out));
}

OidSet OidSet::Difference(const OidSet& a, const OidSet& b) {
  std::vector<NodeId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return FromSortedUnique(std::move(out));
}

void OidSet::UnionWith(std::span<const NodeId> sorted_ids) {
  std::vector<NodeId> out;
  out.reserve(ids_.size() + sorted_ids.size());
  std::set_union(ids_.begin(), ids_.end(), sorted_ids.begin(),
                 sorted_ids.end(), std::back_inserter(out));
  ids_ = std::move(out);
}

}  // namespace omega
