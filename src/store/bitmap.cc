#include "store/bitmap.h"

#include <cassert>

namespace omega {

Bitmap::Bitmap(size_t universe_size) { Resize(universe_size); }

void Bitmap::Resize(size_t universe_size) {
  universe_size_ = universe_size;
  words_.assign((universe_size + 63) / 64, 0);
}

void Bitmap::Set(NodeId id) {
  assert(id < universe_size_);
  words_[id / 64] |= (1ULL << (id % 64));
}

void Bitmap::Clear(NodeId id) {
  assert(id < universe_size_);
  words_[id / 64] &= ~(1ULL << (id % 64));
}

bool Bitmap::Test(NodeId id) const {
  if (id >= universe_size_) return false;
  return (words_[id / 64] >> (id % 64)) & 1ULL;
}

bool Bitmap::TestAndSet(NodeId id) {
  assert(id < universe_size_);
  uint64_t& word = words_[id / 64];
  const uint64_t mask = 1ULL << (id % 64);
  const bool was_clear = (word & mask) == 0;
  word |= mask;
  return was_clear;
}

size_t Bitmap::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(__builtin_popcountll(w));
  return total;
}

void Bitmap::ClearAll() { words_.assign(words_.size(), 0); }

void Bitmap::UnionWith(const Bitmap& other) {
  assert(universe_size_ == other.universe_size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void Bitmap::IntersectWith(const Bitmap& other) {
  assert(universe_size_ == other.universe_size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void Bitmap::SubtractFrom(const Bitmap& other) {
  assert(universe_size_ == other.universe_size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

std::vector<NodeId> Bitmap::ToVector() const {
  std::vector<NodeId> out;
  out.reserve(Count());
  ForEach([&](NodeId id) { out.push_back(id); });
  return out;
}

}  // namespace omega
