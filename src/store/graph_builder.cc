#include "store/graph_builder.h"

#include <algorithm>
#include <cassert>

namespace omega {
namespace {

// Labels reserved for the ontology; they never appear as data-graph edges
// (the paper assumes Σ ∩ {type, sc, sp, dom, range} = ∅, with `type` being
// the one schema label shared with the data graph).
bool IsReservedOntologyLabel(std::string_view name) {
  return name == "sc" || name == "sp" || name == "dom" || name == "range";
}

// Builds one CSR from (src, dst) pairs; sorts, dedups, splits rows.
CsrAdjacency BuildCsr(std::vector<std::pair<NodeId, NodeId>> pairs) {
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  std::vector<NodeId> rows;
  std::vector<uint32_t> offsets;
  std::vector<NodeId> neighbors;
  neighbors.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (rows.empty() || rows.back() != pairs[i].first) {
      rows.push_back(pairs[i].first);
      offsets.push_back(static_cast<uint32_t>(neighbors.size()));
    }
    neighbors.push_back(pairs[i].second);
  }
  offsets.push_back(static_cast<uint32_t>(neighbors.size()));
  CsrAdjacency adj;
  adj.rows = std::move(rows);
  adj.offsets = std::move(offsets);
  adj.neighbors = std::move(neighbors);
  return adj;
}

std::vector<std::pair<NodeId, NodeId>> Flip(
    const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  std::vector<std::pair<NodeId, NodeId>> flipped;
  flipped.reserve(pairs.size());
  for (const auto& [s, d] : pairs) flipped.emplace_back(d, s);
  return flipped;
}

}  // namespace

NodeId GraphBuilder::GetOrAddNode(std::string_view label) {
  assert(!finalized_);
  auto it = node_index_.find(std::string(label));
  if (it != node_index_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(node_labels_.size());
  node_labels_.emplace_back(label);
  node_index_.emplace(node_labels_.back(), id);
  return id;
}

NodeId GraphBuilder::FindNode(std::string_view label) const {
  auto it = node_index_.find(std::string(label));
  return it == node_index_.end() ? kInvalidNode : it->second;
}

Result<LabelId> GraphBuilder::InternLabel(std::string_view name) {
  if (name.empty()) {
    return Status::InvalidArgument("edge label must be non-empty");
  }
  if (IsReservedOntologyLabel(name)) {
    return Status::InvalidArgument("label '" + std::string(name) +
                                   "' is reserved for the ontology");
  }
  return labels_.Intern(name);
}

Status GraphBuilder::AddEdge(NodeId src, LabelId label, NodeId dst) {
  assert(!finalized_);
  if (src >= node_labels_.size() || dst >= node_labels_.size()) {
    return Status::OutOfRange("edge endpoint id out of range");
  }
  if (label >= labels_.size()) {
    return Status::OutOfRange("edge label id out of range");
  }
  if (edges_by_label_.size() < labels_.size()) {
    edges_by_label_.resize(labels_.size());
  }
  edges_by_label_[label].pairs.emplace_back(src, dst);
  ++num_edges_added_;
  return Status::OK();
}

Status GraphBuilder::AddEdge(std::string_view src_label,
                             std::string_view edge_label,
                             std::string_view dst_label) {
  Result<LabelId> label = InternLabel(edge_label);
  if (!label.ok()) return label.status();
  const NodeId src = GetOrAddNode(src_label);
  const NodeId dst = GetOrAddNode(dst_label);
  return AddEdge(src, *label, dst);
}

Status GraphBuilder::AddTypeEdge(NodeId instance, NodeId class_node) {
  return AddEdge(instance, LabelDictionary::kTypeLabel, class_node);
}

GraphStore GraphBuilder::Finalize() && {
  assert(!finalized_);
  finalized_ = true;

  GraphStore store;
  store.labels_ = std::move(labels_);
  store.node_labels_ = StringTable::FromStrings(node_labels_);
  // Replace the build-phase hash index with the frozen store's label-sorted
  // permutation: FindNode binary-searches it, which works identically over
  // an owned vector and a borrowed snapshot span.
  {
    std::vector<NodeId> by_label(node_labels_.size());
    for (size_t n = 0; n < by_label.size(); ++n) {
      by_label[n] = static_cast<NodeId>(n);
    }
    std::sort(by_label.begin(), by_label.end(),
              [this](NodeId a, NodeId b) {
                return node_labels_[a] < node_labels_[b];
              });
    store.nodes_by_label_ = std::move(by_label);
  }

  const size_t num_labels = store.labels_.size();
  edges_by_label_.resize(num_labels);
  store.adjacency_[0].resize(num_labels);
  store.adjacency_[1].resize(num_labels);
  store.tails_.resize(num_labels);
  store.heads_.resize(num_labels);

  std::vector<std::pair<NodeId, NodeId>> sigma_pairs;
  size_t total_edges = 0;
  for (LabelId l = 0; l < num_labels; ++l) {
    auto& pairs = edges_by_label_[l].pairs;
    CsrAdjacency out = BuildCsr(pairs);
    CsrAdjacency in = BuildCsr(Flip(pairs));
    total_edges += out.edge_count();
    store.tails_[l] = out.RowSet();
    store.heads_[l] = in.RowSet();
    if (l != LabelDictionary::kTypeLabel) {
      sigma_pairs.insert(sigma_pairs.end(), pairs.begin(), pairs.end());
    }
    store.adjacency_[0][l] = std::move(out);
    store.adjacency_[1][l] = std::move(in);
    pairs.clear();
    pairs.shrink_to_fit();
  }
  store.num_edges_ = total_edges;

  store.sigma_union_[1] = BuildCsr(Flip(sigma_pairs));
  store.sigma_union_[0] = BuildCsr(std::move(sigma_pairs));
  store.sigma_endpoints_[0] = store.sigma_union_[0].RowSet();
  store.sigma_endpoints_[1] = store.sigma_union_[1].RowSet();
  // Borrow the type rows again rather than copying the (also borrowed)
  // tails/heads sets: every endpoint set is a view of its CSR rows.
  store.type_endpoints_[0] =
      store.adjacency_[0][LabelDictionary::kTypeLabel].RowSet();
  store.type_endpoints_[1] =
      store.adjacency_[1][LabelDictionary::kTypeLabel].RowSet();
  return store;
}

}  // namespace omega
