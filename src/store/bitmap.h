// Dense bitmap over node ids. Sparksee's storage layer is built on bitmap
// vectors (Martinez-Bazan et al., IDEAS 2012); we use the same structure for
// per-label node membership and for bulk dedup during seeding.
#ifndef OMEGA_STORE_BITMAP_H_
#define OMEGA_STORE_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "store/types.h"

namespace omega {

/// Fixed-universe bitset with set algebra and set-bit iteration.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t universe_size);

  void Resize(size_t universe_size);
  size_t universe_size() const { return universe_size_; }

  void Set(NodeId id);
  void Clear(NodeId id);
  bool Test(NodeId id) const;
  /// Sets the bit and reports whether it was previously clear.
  bool TestAndSet(NodeId id);

  /// Number of set bits (popcount over words).
  size_t Count() const;

  void ClearAll();

  /// In-place algebra; both operands must share a universe size.
  void UnionWith(const Bitmap& other);
  void IntersectWith(const Bitmap& other);
  void SubtractFrom(const Bitmap& other);  // this &= ~other

  /// Applies `fn(NodeId)` to every set bit in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int lsb = __builtin_ctzll(bits);
        fn(static_cast<NodeId>(w * 64 + static_cast<size_t>(lsb)));
        bits &= bits - 1;
      }
    }
  }

  /// Materialises set bits as a sorted id vector.
  std::vector<NodeId> ToVector() const;

 private:
  size_t universe_size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace omega

#endif  // OMEGA_STORE_BITMAP_H_
