// Flattened immutable string table: one contiguous character heap plus an
// offsets array (size()+1 entries, offsets[0] == 0), the on-disk shape of
// the snapshot string sections. Like every frozen-store structure it runs on
// the ConstArray seam: GraphBuilder::Finalize flattens the node labels into
// an owned table, while SnapshotReader borrows both arrays straight out of
// the mapping and serves string_views zero-copy.
//
// Lifetime: the string_views handed out by operator[] point into the heap
// array — into the mapping itself on the borrowed backing — and must not
// outlive this table (or the Dataset it borrows from). The contract is
// compiler-checked via OMEGA_LIFETIME_BOUND; move-only like ConstArray.
#ifndef OMEGA_STORE_STRING_TABLE_H_
#define OMEGA_STORE_STRING_TABLE_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/const_array.h"
#include "common/lifetime_annotations.h"

namespace omega {

class StringTable {
 public:
  StringTable() = default;

  /// Owning backend: flattens `strings` (order preserved).
  static StringTable FromStrings(std::span<const std::string> strings) {
    std::vector<char> heap;
    std::vector<uint64_t> offsets;
    offsets.reserve(strings.size() + 1);
    offsets.push_back(0);
    size_t total = 0;
    for (const std::string& s : strings) total += s.size();
    heap.reserve(total);
    for (const std::string& s : strings) {
      heap.insert(heap.end(), s.begin(), s.end());
      offsets.push_back(static_cast<uint64_t>(heap.size()));
    }
    StringTable t;
    t.heap_ = std::move(heap);
    t.offsets_ = std::move(offsets);
    return t;
  }

  /// Borrowed backend over snapshot sections. Precondition (validated by the
  /// snapshot reader before construction): offsets is non-empty, starts at
  /// 0, is non-decreasing, and ends at heap.size(). The result views the
  /// caller's storage; borrowing from expiring storage is flagged by the
  /// lifetimebound parameters.
  static StringTable Borrowed(std::span<const char> heap OMEGA_LIFETIME_BOUND,
                              std::span<const uint64_t> offsets
                                  OMEGA_LIFETIME_BOUND) {
    StringTable t;
    // borrow-ok: wrapping the caller's storage is this factory's contract;
    // the only in-tree caller is the snapshot reader, which hands the
    // result to a Dataset that owns the mapping.
    t.heap_ = ConstArray<char>::Borrowed(heap);
    t.offsets_ = ConstArray<uint64_t>::Borrowed(offsets);
    return t;
  }

  size_t size() const {
    return offsets_.size() <= 1 ? 0 : offsets_.size() - 1;
  }
  bool empty() const { return size() == 0; }

  std::string_view operator[](size_t i) const OMEGA_LIFETIME_BOUND {
    // Debug bound checks on the offset lookup: on the borrowed backing the
    // offsets array is raw snapshot bytes, and Open() only validates it
    // structurally once — a corrupt index must die here, not as a wild read
    // off the end of the mapping.
    assert(i < size() && "StringTable index out of bounds");
    const uint64_t begin = offsets_[i];
    const uint64_t end = offsets_[i + 1];
    assert(begin <= end && end <= heap_.size() &&
           "StringTable offsets out of bounds");
    return std::string_view(heap_.data() + begin,
                            static_cast<size_t>(end - begin));
  }

  std::span<const char> heap() const OMEGA_LIFETIME_BOUND {
    return heap_.span();
  }
  std::span<const uint64_t> offsets() const OMEGA_LIFETIME_BOUND {
    return offsets_.span();
  }

  size_t OwnedBytes() const {
    return heap_.OwnedBytes() + offsets_.OwnedBytes();
  }

 private:
  ConstArray<char> heap_;
  ConstArray<uint64_t> offsets_;
};

}  // namespace omega

#endif  // OMEGA_STORE_STRING_TABLE_H_
