// Flattened immutable string table: one contiguous character heap plus an
// offsets array (size()+1 entries, offsets[0] == 0), the on-disk shape of
// the snapshot string sections. Like every frozen-store structure it runs on
// the ConstArray seam: GraphBuilder::Finalize flattens the node labels into
// an owned table, while SnapshotReader borrows both arrays straight out of
// the mapping and serves string_views zero-copy.
#ifndef OMEGA_STORE_STRING_TABLE_H_
#define OMEGA_STORE_STRING_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/const_array.h"

namespace omega {

class StringTable {
 public:
  StringTable() = default;

  /// Owning backend: flattens `strings` (order preserved).
  static StringTable FromStrings(std::span<const std::string> strings) {
    std::vector<char> heap;
    std::vector<uint64_t> offsets;
    offsets.reserve(strings.size() + 1);
    offsets.push_back(0);
    size_t total = 0;
    for (const std::string& s : strings) total += s.size();
    heap.reserve(total);
    for (const std::string& s : strings) {
      heap.insert(heap.end(), s.begin(), s.end());
      offsets.push_back(static_cast<uint64_t>(heap.size()));
    }
    StringTable t;
    t.heap_ = std::move(heap);
    t.offsets_ = std::move(offsets);
    return t;
  }

  /// Borrowed backend over snapshot sections. Precondition (validated by the
  /// snapshot reader before construction): offsets is non-empty, starts at
  /// 0, is non-decreasing, and ends at heap.size().
  static StringTable Borrowed(std::span<const char> heap,
                              std::span<const uint64_t> offsets) {
    StringTable t;
    t.heap_ = ConstArray<char>::Borrowed(heap);
    t.offsets_ = ConstArray<uint64_t>::Borrowed(offsets);
    return t;
  }

  size_t size() const {
    return offsets_.size() <= 1 ? 0 : offsets_.size() - 1;
  }
  bool empty() const { return size() == 0; }

  std::string_view operator[](size_t i) const {
    const uint64_t begin = offsets_[i];
    const uint64_t end = offsets_[i + 1];
    return std::string_view(heap_.data() + begin,
                            static_cast<size_t>(end - begin));
  }

  std::span<const char> heap() const { return heap_.span(); }
  std::span<const uint64_t> offsets() const { return offsets_.span(); }

  size_t OwnedBytes() const {
    return heap_.OwnedBytes() + offsets_.OwnedBytes();
  }

 private:
  ConstArray<char> heap_;
  ConstArray<uint64_t> offsets_;
};

}  // namespace omega

#endif  // OMEGA_STORE_STRING_TABLE_H_
