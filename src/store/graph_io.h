// Plain-text persistence for graphs, so generated datasets can be cached on
// disk and user-supplied graphs can be imported without the generators.
#ifndef OMEGA_STORE_GRAPH_IO_H_
#define OMEGA_STORE_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "store/graph_store.h"

namespace omega {

/// File format (line-oriented, '\t'-separated where fields repeat):
///   omega-graph-v1
///   labels <K>          followed by K label names, one per line (id order)
///   nodes <N>           followed by N node labels, one per line (id order)
///   edges <M>           followed by M lines: <src_id>\t<label_id>\t<dst_id>
Status SaveGraph(const GraphStore& store, const std::string& path);

/// Parses a file written by SaveGraph (or hand-authored in the same format).
Result<GraphStore> LoadGraph(const std::string& path);

}  // namespace omega

#endif  // OMEGA_STORE_GRAPH_IO_H_
