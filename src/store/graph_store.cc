#include "store/graph_store.h"

#include <algorithm>

namespace omega {

std::span<const NodeId> CsrAdjacency::NeighborsOf(NodeId n) const {
  auto it = std::lower_bound(rows.begin(), rows.end(), n);
  if (it == rows.end() || *it != n) return {};
  const size_t row = static_cast<size_t>(it - rows.begin());
  return std::span<const NodeId>(neighbors.data() + offsets[row],
                                 offsets[row + 1] - offsets[row]);
}

std::optional<NodeId> GraphStore::FindNode(std::string_view label) const {
  auto it = node_index_.find(std::string(label));
  if (it == node_index_.end()) return std::nullopt;
  return it->second;
}

std::span<const NodeId> GraphStore::Neighbors(NodeId n, LabelId label,
                                              Direction dir) const {
  const auto& per_dir = adjacency_[static_cast<int>(dir)];
  if (label >= per_dir.size()) return {};
  return per_dir[label].NeighborsOf(n);
}

std::span<const NodeId> GraphStore::SigmaNeighbors(NodeId n,
                                                   Direction dir) const {
  return sigma_union_[static_cast<int>(dir)].NeighborsOf(n);
}

std::span<const NodeId> GraphStore::TypeNeighbors(NodeId n,
                                                  Direction dir) const {
  return Neighbors(n, LabelDictionary::kTypeLabel, dir);
}

bool GraphStore::HasEdge(NodeId src, LabelId label, NodeId dst) const {
  auto span = Neighbors(src, label, Direction::kOutgoing);
  return std::binary_search(span.begin(), span.end(), dst);
}

size_t GraphStore::Degree(NodeId n) const {
  size_t total = 0;
  for (int dir = 0; dir < 2; ++dir) {
    total += sigma_union_[dir].NeighborsOf(n).size();
    total += Neighbors(n, LabelDictionary::kTypeLabel,
                       static_cast<Direction>(dir))
                 .size();
  }
  return total;
}

const OidSet& GraphStore::Tails(LabelId label) const {
  if (label >= tails_.size()) return empty_set_;
  return tails_[label];
}

const OidSet& GraphStore::Heads(LabelId label) const {
  if (label >= heads_.size()) return empty_set_;
  return heads_[label];
}

OidSet GraphStore::TailsAndHeads(LabelId label) const {
  return OidSet::Union(Tails(label), Heads(label));
}

const OidSet& GraphStore::SigmaEndpoints(Direction dir) const {
  return sigma_endpoints_[static_cast<int>(dir)];
}

const OidSet& GraphStore::TypeEndpoints(Direction dir) const {
  return type_endpoints_[static_cast<int>(dir)];
}

LabelStats GraphStore::StatsForLabel(LabelId label) const {
  LabelStats stats;
  const auto& out = adjacency_[static_cast<int>(Direction::kOutgoing)];
  if (label < out.size()) {
    stats.edge_count = out[label].edge_count();
    stats.num_tails = out[label].rows.size();
  }
  const auto& in = adjacency_[static_cast<int>(Direction::kIncoming)];
  if (label < in.size()) stats.num_heads = in[label].rows.size();
  return stats;
}

LabelStats GraphStore::SigmaStats() const {
  LabelStats stats;
  stats.edge_count =
      sigma_union_[static_cast<int>(Direction::kOutgoing)].edge_count();
  stats.num_tails =
      sigma_union_[static_cast<int>(Direction::kOutgoing)].rows.size();
  stats.num_heads =
      sigma_union_[static_cast<int>(Direction::kIncoming)].rows.size();
  return stats;
}

size_t GraphStore::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (int dir = 0; dir < 2; ++dir) {
    for (const auto& adj : adjacency_[dir]) {
      bytes += adj.rows.capacity() * sizeof(NodeId) +
               adj.offsets.capacity() * sizeof(uint32_t) +
               adj.neighbors.capacity() * sizeof(NodeId);
    }
    bytes += sigma_union_[dir].rows.capacity() * sizeof(NodeId) +
             sigma_union_[dir].offsets.capacity() * sizeof(uint32_t) +
             sigma_union_[dir].neighbors.capacity() * sizeof(NodeId);
  }
  for (const auto& label : node_labels_) bytes += label.capacity() + 32;
  bytes += node_index_.size() * 64;
  return bytes;
}

}  // namespace omega
