#include "store/graph_store.h"

#include <algorithm>

namespace omega {

std::span<const NodeId> CsrAdjacency::NeighborsOf(NodeId n) const {
  const std::span<const NodeId> row_span = rows.span();
  auto it = std::lower_bound(row_span.begin(), row_span.end(), n);
  if (it == row_span.end() || *it != n) return {};
  const size_t row = static_cast<size_t>(it - row_span.begin());
  return std::span<const NodeId>(neighbors.data() + offsets[row],
                                 offsets[row + 1] - offsets[row]);
}

std::optional<NodeId> GraphStore::FindNode(std::string_view label) const {
  const std::span<const NodeId> order = nodes_by_label_.span();
  auto it = std::lower_bound(
      order.begin(), order.end(), label,
      [this](NodeId n, std::string_view needle) {
        return node_labels_[n] < needle;
      });
  if (it == order.end() || node_labels_[*it] != label) return std::nullopt;
  return *it;
}

std::span<const NodeId> GraphStore::Neighbors(NodeId n, LabelId label,
                                              Direction dir) const {
  const auto& per_dir = adjacency_[static_cast<int>(dir)];
  if (label >= per_dir.size()) return {};
  return per_dir[label].NeighborsOf(n);
}

std::span<const NodeId> GraphStore::SigmaNeighbors(NodeId n,
                                                   Direction dir) const {
  return sigma_union_[static_cast<int>(dir)].NeighborsOf(n);
}

std::span<const NodeId> GraphStore::TypeNeighbors(NodeId n,
                                                  Direction dir) const {
  return Neighbors(n, LabelDictionary::kTypeLabel, dir);
}

bool GraphStore::HasEdge(NodeId src, LabelId label, NodeId dst) const {
  auto span = Neighbors(src, label, Direction::kOutgoing);
  return std::binary_search(span.begin(), span.end(), dst);
}

size_t GraphStore::Degree(NodeId n) const {
  size_t total = 0;
  for (int dir = 0; dir < 2; ++dir) {
    total += sigma_union_[dir].NeighborsOf(n).size();
    total += Neighbors(n, LabelDictionary::kTypeLabel,
                       static_cast<Direction>(dir))
                 .size();
  }
  return total;
}

const OidSet& GraphStore::Tails(LabelId label) const {
  if (label >= tails_.size()) return empty_set_;
  return tails_[label];
}

const OidSet& GraphStore::Heads(LabelId label) const {
  if (label >= heads_.size()) return empty_set_;
  return heads_[label];
}

OidSet GraphStore::TailsAndHeads(LabelId label) const {
  return OidSet::Union(Tails(label), Heads(label));
}

const OidSet& GraphStore::SigmaEndpoints(Direction dir) const {
  return sigma_endpoints_[static_cast<int>(dir)];
}

const OidSet& GraphStore::TypeEndpoints(Direction dir) const {
  return type_endpoints_[static_cast<int>(dir)];
}

LabelStats GraphStore::StatsForLabel(LabelId label) const {
  LabelStats stats;
  const auto& out = adjacency_[static_cast<int>(Direction::kOutgoing)];
  if (label < out.size()) {
    stats.edge_count = out[label].edge_count();
    stats.num_tails = out[label].rows.size();
  }
  const auto& in = adjacency_[static_cast<int>(Direction::kIncoming)];
  if (label < in.size()) stats.num_heads = in[label].rows.size();
  return stats;
}

LabelStats GraphStore::SigmaStats() const {
  LabelStats stats;
  stats.edge_count =
      sigma_union_[static_cast<int>(Direction::kOutgoing)].edge_count();
  stats.num_tails =
      sigma_union_[static_cast<int>(Direction::kOutgoing)].rows.size();
  stats.num_heads =
      sigma_union_[static_cast<int>(Direction::kIncoming)].rows.size();
  return stats;
}

size_t GraphStore::ApproxMemoryBytes() const {
  auto csr_bytes = [](const CsrAdjacency& adj) {
    return adj.rows.size() * sizeof(NodeId) +
           adj.offsets.size() * sizeof(uint32_t) +
           adj.neighbors.size() * sizeof(NodeId);
  };
  size_t bytes = 0;
  for (int dir = 0; dir < 2; ++dir) {
    for (const auto& adj : adjacency_[dir]) bytes += csr_bytes(adj);
    bytes += csr_bytes(sigma_union_[dir]);
  }
  bytes += node_labels_.heap().size() +
           node_labels_.offsets().size() * sizeof(uint64_t) +
           nodes_by_label_.size() * sizeof(NodeId);
  return bytes;
}

}  // namespace omega
