// Fundamental identifier types for the graph store.
#ifndef OMEGA_STORE_TYPES_H_
#define OMEGA_STORE_TYPES_H_

#include <cstdint>
#include <limits>

namespace omega {

/// Object identifier of a node (the Sparksee "oid" in the paper).
using NodeId = uint32_t;

/// Interned edge-label identifier.
using LabelId = uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();

/// Direction of traversal relative to a stored directed edge (x, l, y):
/// kOutgoing follows x -> y (the plain label `l` in a regex), kIncoming
/// follows y -> x (the reversed label `l-`).
enum class Direction : uint8_t {
  kOutgoing = 0,
  kIncoming = 1,
};

/// Flips traversal direction (used when reversing regular expressions).
inline Direction Reverse(Direction d) {
  return d == Direction::kOutgoing ? Direction::kIncoming
                                   : Direction::kOutgoing;
}

}  // namespace omega

#endif  // OMEGA_STORE_TYPES_H_
