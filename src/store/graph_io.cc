#include "store/graph_io.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "store/graph_builder.h"

namespace omega {
namespace {

constexpr std::string_view kMagic = "omega-graph-v1";

/// Every parse error names the 1-based line it came from: a hand-authored
/// or machine-mangled multi-megabyte graph file is undebuggable from
/// "bad edge line" alone.
Status ErrAt(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                 what);
}

/// Strict full-match unsigned parse: rejects empty fields, signs, leading
/// whitespace, trailing garbage ("12abc") and overflow — all of which
/// std::stoul would let through (or throw on) in surprising ways.
bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

Result<uint64_t> ParseCount(const std::string& line, std::string_view key,
                            size_t line_no) {
  auto pieces = Split(line, ' ', /*trim=*/true);
  uint64_t value = 0;
  if (pieces.size() != 2 || pieces[0] != key ||
      !ParseU64(pieces[1], &value)) {
    return ErrAt(line_no, "expected '" + std::string(key) +
                              " <count>', got: " + line);
  }
  // Counts must stay within the 32-bit id space the store addresses with.
  if (value >= kInvalidNode) {
    return ErrAt(line_no, std::string(key) + " count " + pieces[1] +
                              " exceeds the 32-bit id space");
  }
  return value;
}

}  // namespace

Status SaveGraph(const GraphStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot open for write: " + path);

  out << kMagic << "\n";
  out << "labels " << store.labels().size() << "\n";
  for (LabelId l = 0; l < store.labels().size(); ++l) {
    out << store.labels().Name(l) << "\n";
  }
  out << "nodes " << store.NumNodes() << "\n";
  for (NodeId n = 0; n < store.NumNodes(); ++n) {
    out << store.NodeLabel(n) << "\n";
  }
  out << "edges " << store.NumEdges() << "\n";
  for (LabelId l = 0; l < store.labels().size(); ++l) {
    for (NodeId src : store.Tails(l)) {
      for (NodeId dst : store.Neighbors(src, l, Direction::kOutgoing)) {
        out << src << '\t' << l << '\t' << dst << "\n";
      }
    }
  }
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<GraphStore> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);

  size_t line_no = 0;
  std::string line;
  auto next_line = [&]() -> bool {
    if (!std::getline(in, line)) return false;
    ++line_no;
    return true;
  };

  if (!next_line() || StripWhitespace(line) != kMagic) {
    return Status::InvalidArgument("not an omega-graph-v1 file: " + path);
  }

  if (!next_line()) {
    return ErrAt(line_no + 1, "unexpected end of file, expected 'labels'");
  }
  Result<uint64_t> num_labels = ParseCount(line, "labels", line_no);
  if (!num_labels.ok()) return num_labels.status();

  GraphBuilder builder;
  std::vector<LabelId> label_ids;
  label_ids.reserve(static_cast<size_t>(*num_labels));
  for (uint64_t i = 0; i < *num_labels; ++i) {
    if (!next_line()) {
      return ErrAt(line_no + 1, "unexpected end of file in label section (" +
                                    std::to_string(*num_labels - i) +
                                    " of " + std::to_string(*num_labels) +
                                    " labels missing)");
    }
    const std::string_view name = StripWhitespace(line);
    if (i == 0) {
      if (name != kTypeLabelName) {
        return ErrAt(line_no, "label id 0 must be 'type'");
      }
      label_ids.push_back(LabelDictionary::kTypeLabel);
      continue;
    }
    Result<LabelId> id = builder.InternLabel(name);
    if (!id.ok()) return ErrAt(line_no, id.status().message());
    // Intern dedups silently — but a duplicate here would shift every
    // later label id in the file, so it must be a hard error.
    if (*id != i) {
      return ErrAt(line_no,
                   "duplicate label name '" + std::string(name) + "'");
    }
    label_ids.push_back(*id);
  }

  if (!next_line()) {
    return ErrAt(line_no + 1, "unexpected end of file, expected 'nodes'");
  }
  Result<uint64_t> num_nodes = ParseCount(line, "nodes", line_no);
  if (!num_nodes.ok()) return num_nodes.status();
  for (uint64_t i = 0; i < *num_nodes; ++i) {
    if (!next_line()) {
      return ErrAt(line_no + 1, "unexpected end of file in node section (" +
                                    std::to_string(*num_nodes - i) + " of " +
                                    std::to_string(*num_nodes) +
                                    " nodes missing)");
    }
    const std::string_view label = StripWhitespace(line);
    // Node ids are positional: a repeated label would silently alias two
    // ids onto one node and shift the rest.
    if (builder.GetOrAddNode(label) != static_cast<NodeId>(i)) {
      return ErrAt(line_no,
                   "duplicate node label '" + std::string(label) + "'");
    }
  }

  if (!next_line()) {
    return ErrAt(line_no + 1, "unexpected end of file, expected 'edges'");
  }
  Result<uint64_t> num_edges = ParseCount(line, "edges", line_no);
  if (!num_edges.ok()) return num_edges.status();
  for (uint64_t i = 0; i < *num_edges; ++i) {
    if (!next_line()) {
      return ErrAt(line_no + 1, "unexpected end of file in edge section (" +
                                    std::to_string(*num_edges - i) + " of " +
                                    std::to_string(*num_edges) +
                                    " edges missing)");
    }
    auto fields = Split(line, '\t');
    if (fields.size() != 3) {
      return ErrAt(line_no,
                   "expected '<src>\\t<label>\\t<dst>', got: " + line);
    }
    uint64_t src = 0, label = 0, dst = 0;
    if (!ParseU64(fields[0], &src) || !ParseU64(fields[1], &label) ||
        !ParseU64(fields[2], &dst)) {
      return ErrAt(line_no, "malformed edge ids: " + line);
    }
    // Range-check against the *declared* sections before anything reaches
    // the builder: an out-of-range id here is file corruption, not a
    // builder usage error.
    if (src >= *num_nodes || dst >= *num_nodes) {
      return ErrAt(line_no, "edge endpoint id out of range (have " +
                                std::to_string(*num_nodes) +
                                " nodes): " + line);
    }
    if (label >= *num_labels) {
      return ErrAt(line_no, "edge label id out of range (have " +
                                std::to_string(*num_labels) +
                                " labels): " + line);
    }
    Status added =
        builder.AddEdge(static_cast<NodeId>(src),
                        label_ids[static_cast<size_t>(label)],
                        static_cast<NodeId>(dst));
    if (!added.ok()) return ErrAt(line_no, added.message());
  }

  // Anything after the declared edge count is a truncated count or a
  // concatenation accident; either way the file does not mean what it says.
  while (next_line()) {
    if (!StripWhitespace(line).empty()) {
      return ErrAt(line_no, "trailing content after the edge section: " +
                                line);
    }
  }
  return std::move(builder).Finalize();
}

}  // namespace omega
