#include "store/graph_io.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "store/graph_builder.h"

namespace omega {
namespace {

constexpr std::string_view kMagic = "omega-graph-v1";

Result<long long> ParseCount(const std::string& line, std::string_view key) {
  auto pieces = Split(line, ' ', /*trim=*/true);
  if (pieces.size() != 2 || pieces[0] != key) {
    return Status::InvalidArgument("expected '" + std::string(key) +
                                   " <count>', got: " + line);
  }
  long long value = 0;
  auto [ptr, ec] = std::from_chars(pieces[1].data(),
                                   pieces[1].data() + pieces[1].size(), value);
  if (ec != std::errc() || ptr != pieces[1].data() + pieces[1].size() ||
      value < 0) {
    return Status::InvalidArgument("bad count in: " + line);
  }
  return value;
}

}  // namespace

Status SaveGraph(const GraphStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot open for write: " + path);

  out << kMagic << "\n";
  out << "labels " << store.labels().size() << "\n";
  for (LabelId l = 0; l < store.labels().size(); ++l) {
    out << store.labels().Name(l) << "\n";
  }
  out << "nodes " << store.NumNodes() << "\n";
  for (NodeId n = 0; n < store.NumNodes(); ++n) {
    out << store.NodeLabel(n) << "\n";
  }
  out << "edges " << store.NumEdges() << "\n";
  for (LabelId l = 0; l < store.labels().size(); ++l) {
    for (NodeId src : store.Tails(l)) {
      for (NodeId dst : store.Neighbors(src, l, Direction::kOutgoing)) {
        out << src << '\t' << l << '\t' << dst << "\n";
      }
    }
  }
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<GraphStore> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);

  std::string line;
  if (!std::getline(in, line) || StripWhitespace(line) != kMagic) {
    return Status::InvalidArgument("not an omega-graph-v1 file: " + path);
  }

  if (!std::getline(in, line)) return Status::InvalidArgument("truncated file");
  Result<long long> num_labels = ParseCount(line, "labels");
  if (!num_labels.ok()) return num_labels.status();

  GraphBuilder builder;
  std::vector<LabelId> label_ids;
  label_ids.reserve(static_cast<size_t>(*num_labels));
  for (long long i = 0; i < *num_labels; ++i) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("truncated label section");
    }
    if (i == 0) {
      if (StripWhitespace(line) != kTypeLabelName) {
        return Status::InvalidArgument("label id 0 must be 'type'");
      }
      label_ids.push_back(LabelDictionary::kTypeLabel);
      continue;
    }
    Result<LabelId> id = builder.InternLabel(StripWhitespace(line));
    if (!id.ok()) return id.status();
    label_ids.push_back(*id);
  }

  if (!std::getline(in, line)) return Status::InvalidArgument("truncated file");
  Result<long long> num_nodes = ParseCount(line, "nodes");
  if (!num_nodes.ok()) return num_nodes.status();
  for (long long i = 0; i < *num_nodes; ++i) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("truncated node section");
    }
    builder.GetOrAddNode(StripWhitespace(line));
  }

  if (!std::getline(in, line)) return Status::InvalidArgument("truncated file");
  Result<long long> num_edges = ParseCount(line, "edges");
  if (!num_edges.ok()) return num_edges.status();
  for (long long i = 0; i < *num_edges; ++i) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("truncated edge section");
    }
    auto fields = Split(line, '\t');
    if (fields.size() != 3) {
      return Status::InvalidArgument("bad edge line: " + line);
    }
    unsigned long src = 0, label = 0, dst = 0;
    try {
      src = std::stoul(fields[0]);
      label = std::stoul(fields[1]);
      dst = std::stoul(fields[2]);
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad edge ids: " + line);
    }
    if (label >= label_ids.size()) {
      return Status::InvalidArgument("edge label id out of range: " + line);
    }
    OMEGA_RETURN_NOT_OK(builder.AddEdge(static_cast<NodeId>(src),
                                        label_ids[label],
                                        static_cast<NodeId>(dst)));
  }
  return std::move(builder).Finalize();
}

}  // namespace omega
