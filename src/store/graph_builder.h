// Mutable accumulation phase for GraphStore. The paper's workloads load a
// dataset once and then query it, so the store follows a build-then-freeze
// lifecycle: AddNode/AddEdge in any order, then Finalize() to produce the
// immutable CSR snapshot.
#ifndef OMEGA_STORE_GRAPH_BUILDER_H_
#define OMEGA_STORE_GRAPH_BUILDER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "store/graph_store.h"
#include "store/types.h"

namespace omega {

class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Returns the node with this unique label, creating it if absent.
  NodeId GetOrAddNode(std::string_view label);

  /// Looks up a node added earlier; kInvalidNode if absent.
  NodeId FindNode(std::string_view label) const;

  /// Interns an edge label (rejecting the reserved ontology labels).
  Result<LabelId> InternLabel(std::string_view name);

  /// Adds edge (src, label, dst). Duplicate edges collapse at Finalize().
  Status AddEdge(NodeId src, LabelId label, NodeId dst);

  /// Convenience: resolves/creates endpoint nodes and the label by name.
  Status AddEdge(std::string_view src_label, std::string_view edge_label,
                 std::string_view dst_label);

  /// Adds a `type` edge instance -> class.
  Status AddTypeEdge(NodeId instance, NodeId class_node);

  size_t NumNodes() const { return node_labels_.size(); }
  size_t NumEdgesAdded() const { return num_edges_added_; }

  const LabelDictionary& labels() const { return labels_; }

  /// Freezes into an immutable GraphStore. The builder is consumed: calling
  /// any mutator afterwards is a usage error.
  GraphStore Finalize() &&;

 private:
  struct EdgeList {
    std::vector<std::pair<NodeId, NodeId>> pairs;  // (src, dst)
  };

  LabelDictionary labels_;
  std::vector<std::string> node_labels_;
  std::unordered_map<std::string, NodeId> node_index_;
  std::vector<EdgeList> edges_by_label_;
  size_t num_edges_added_ = 0;
  bool finalized_ = false;
};

}  // namespace omega

#endif  // OMEGA_STORE_GRAPH_BUILDER_H_
