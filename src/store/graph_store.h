// The in-memory graph store standing in for Sparksee. Nodes carry a unique
// string label (the indexed attribute of §3.2 of the paper); edges are
// directed and typed by an interned label. After Finalize(), adjacency is
// frozen into per-(label, direction) CSR structures plus the generic `edge`
// union adjacency the paper introduces to fetch all Σ-labelled edges of a
// node in one call.
//
// Storage backends: every large array (CSR rows/offsets/neighbors, the node
// label heap, the label-sorted permutation) lives on the ConstArray seam —
// owned vectors when the store was built by GraphBuilder, borrowed spans
// into a read-only mapping when it was opened from a binary snapshot
// (snapshot/snapshot_reader.h). The read API below is identical on both
// backings, so eval/plan/service never know the difference. A
// snapshot-backed store must not outlive its Dataset (which owns the
// mapping).
#ifndef OMEGA_STORE_GRAPH_STORE_H_
#define OMEGA_STORE_GRAPH_STORE_H_

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/const_array.h"
#include "common/lifetime_annotations.h"
#include "store/label_dictionary.h"
#include "store/oid_set.h"
#include "store/string_table.h"
#include "store/types.h"

namespace omega {

/// Sorted-row CSR adjacency for a single (label, direction).
///
/// `rows` holds the source nodes (sorted ascending) that have at least one
/// edge; `offsets[i]..offsets[i+1]` indexes into `neighbors` for rows[i].
/// Row lookup is a binary search, so memory stays proportional to the number
/// of distinct sources rather than to |V| per label.
struct CsrAdjacency {
  ConstArray<NodeId> rows;
  ConstArray<uint32_t> offsets;   // size rows.size() + 1
  ConstArray<NodeId> neighbors;   // sorted within each row, deduplicated

  /// Neighbour span of `n`; empty if `n` has no edges here.
  std::span<const NodeId> NeighborsOf(NodeId n) const OMEGA_LIFETIME_BOUND;

  /// Sorted distinct sources as an OidSet view. The view borrows `rows`:
  /// valid only while this adjacency's storage lives.
  OidSet RowSet() const OMEGA_LIFETIME_BOUND {
    // borrow-ok: the returned set views this adjacency's row array; every
    // caller (GraphBuilder::Finalize, SnapshotReader) stores it next to the
    // adjacency inside the same GraphStore, so they expire together.
    return OidSet::BorrowSortedUnique(rows.span());
  }

  size_t edge_count() const { return neighbors.size(); }
};

class GraphBuilder;
class SnapshotReader;
class SnapshotWriter;

/// Cheap per-label statistics, exposed for the cost-based planner. All of it
/// is already known to the frozen CSR structures — no extra store state.
struct LabelStats {
  size_t edge_count = 0;  ///< distinct (x, label, y) triples
  size_t num_tails = 0;   ///< nodes with >=1 outgoing `label` edge
  size_t num_heads = 0;   ///< nodes with >=1 incoming `label` edge

  /// Mean fan-out of a tail node (0 when the label has no edges).
  double AvgOutDegree() const {
    return num_tails == 0 ? 0.0
                          : static_cast<double>(edge_count) /
                                static_cast<double>(num_tails);
  }
  /// Mean fan-in of a head node (0 when the label has no edges).
  double AvgInDegree() const {
    return num_heads == 0 ? 0.0
                          : static_cast<double>(edge_count) /
                                static_cast<double>(num_heads);
  }
};

/// Immutable graph snapshot; constructed via GraphBuilder::Finalize() or
/// mapped from a binary snapshot by SnapshotReader.
///
/// Thread-safety contract (the "frozen store" contract QueryService and any
/// other concurrent caller rely on): after Finalize() hands the store out,
/// every public member is a const read over data that never changes — there
/// are no mutable members, no lazy caches, and no interior locking — so any
/// number of threads may evaluate queries against one shared GraphStore
/// concurrently without synchronisation. Anything that would mutate a
/// finalized store (new nodes/edges/labels) must instead build a new store
/// and swap it in after draining readers (QueryService::SwapDataset).
///
/// Move-only: the endpoint OidSets borrow the CSR row arrays, which a deep
/// copy would have to re-wire; nothing needs copies of a frozen store.
class GraphStore {
 public:
  GraphStore() = default;
  GraphStore(GraphStore&&) = default;
  GraphStore& operator=(GraphStore&&) = default;
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  // --- Node access -------------------------------------------------------

  size_t NumNodes() const { return node_labels_.size(); }
  /// Logical (label-typed, deduplicated) edge count, matching Fig. 3's
  /// accounting: each stored (x, l, y) counts once.
  size_t NumEdges() const { return num_edges_; }

  /// Looks up a node by its unique string label (the indexed attribute).
  /// O(log |V|) string compares over the label-sorted permutation — the
  /// index works unchanged over a borrowed (mmap) backing.
  std::optional<NodeId> FindNode(std::string_view label) const;
  std::string_view NodeLabel(NodeId n) const OMEGA_LIFETIME_BOUND {
    return node_labels_[n];
  }

  const LabelDictionary& labels() const OMEGA_LIFETIME_BOUND {
    return labels_;
  }

  // --- Neighbour access (the Sparksee Neighbors function) ----------------

  /// Nodes reachable from `n` over one `label` edge in direction `dir`.
  std::span<const NodeId> Neighbors(NodeId n, LabelId label,
                                    Direction dir) const OMEGA_LIFETIME_BOUND;

  /// Neighbours of `n` over any Σ label (the generic `edge` type of §3.2).
  std::span<const NodeId> SigmaNeighbors(NodeId n, Direction dir) const
      OMEGA_LIFETIME_BOUND;

  /// Neighbours of `n` over `type` edges.
  std::span<const NodeId> TypeNeighbors(NodeId n, Direction dir) const
      OMEGA_LIFETIME_BOUND;

  /// True if edge (src, label, dst) exists.
  bool HasEdge(NodeId src, LabelId label, NodeId dst) const;

  /// Out-degree + in-degree of `n` counted over all labels incl. `type`.
  size_t Degree(NodeId n) const;

  // --- Node sets by incident label (the Sparksee Heads/Tails functions) --

  /// Nodes that are the source of >=1 `label` edge (Sparksee Tails).
  const OidSet& Tails(LabelId label) const OMEGA_LIFETIME_BOUND;
  /// Nodes that are the target of >=1 `label` edge (Sparksee Heads).
  const OidSet& Heads(LabelId label) const OMEGA_LIFETIME_BOUND;
  /// Union of Heads and Tails (Sparksee TailsAndHeads). Returns an *owned*
  /// set (built by set algebra), so it is safe past this store's lifetime.
  OidSet TailsAndHeads(LabelId label) const;

  /// Nodes with >=1 Σ edge in the given traversal direction.
  const OidSet& SigmaEndpoints(Direction dir) const OMEGA_LIFETIME_BOUND;
  /// Nodes with >=1 `type` edge in the given traversal direction.
  const OidSet& TypeEndpoints(Direction dir) const OMEGA_LIFETIME_BOUND;

  // --- Per-label statistics (the planner's cost-model inputs) ------------

  /// Statistics of `label` (zeros for labels with no stored edges).
  LabelStats StatsForLabel(LabelId label) const;
  /// Statistics of the generic Σ `edge` union adjacency.
  LabelStats SigmaStats() const;

  /// Rough resident-memory estimate, used by memory-budgeted evaluation.
  /// For a snapshot-backed store this counts the mapped array bytes even
  /// though the pages are file-backed and shared.
  size_t ApproxMemoryBytes() const;

 private:
  friend class GraphBuilder;
  friend class SnapshotReader;
  friend class SnapshotWriter;

  // adjacency_[label][dir]: dir 0 = outgoing, 1 = incoming.
  std::vector<CsrAdjacency> adjacency_[2];
  CsrAdjacency sigma_union_[2];  // generic `edge` adjacency per direction

  // Precomputed endpoint sets: tails_[label] / heads_[label]. All of them
  // borrow the row arrays of the matching CSR adjacency.
  std::vector<OidSet> tails_;
  std::vector<OidSet> heads_;
  OidSet sigma_endpoints_[2];
  OidSet type_endpoints_[2];
  OidSet empty_set_;

  StringTable node_labels_;           // node id -> unique label
  ConstArray<NodeId> nodes_by_label_; // node ids sorted by label string
  LabelDictionary labels_;
  size_t num_edges_ = 0;
};

}  // namespace omega

#endif  // OMEGA_STORE_GRAPH_STORE_H_
