// String interning for edge labels. The paper's alphabet is
// Σ ∪ {type} for data edges, with {sc, sp, dom, range} reserved for the
// ontology; `type` is interned eagerly at id 0 so the store and automata can
// special-case it cheaply.
#ifndef OMEGA_STORE_LABEL_DICTIONARY_H_
#define OMEGA_STORE_LABEL_DICTIONARY_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/lifetime_annotations.h"
#include "common/status.h"
#include "store/string_table.h"
#include "store/types.h"

namespace omega {

/// Reserved label names (never allowed as ordinary Σ labels).
inline constexpr std::string_view kTypeLabelName = "type";

/// Bidirectional label <-> id map. Ids are dense and stable; id 0 is `type`.
///
/// Storage seam: in the build path, names live in owned strings appended by
/// Intern(). A dictionary opened from a binary snapshot instead *borrows*
/// its name table from the mapping (FromBorrowedTable) and serves Name()
/// zero-copy; only the small name -> id index is rebuilt at open (label
/// alphabets are tens of entries, node sets are the millions). A borrowed
/// dictionary is frozen: Intern() on it is a usage error.
///
/// Thread-safety: Intern() mutates and belongs to the build phase (it is
/// only reachable through GraphBuilder). Once the owning GraphStore is
/// finalized, only the const read API (Find/Name/SigmaLabels/size) is
/// reachable and is safe to call from any number of threads — part of the
/// frozen-store contract documented on GraphStore.
class LabelDictionary {
 public:
  LabelDictionary();

  /// Snapshot seam: wraps a borrowed name table (ids = table order, so
  /// table[0] must be `type`) and rebuilds the name -> id index over it.
  static Result<LabelDictionary> FromBorrowedTable(StringTable table);

  /// Interns `name`, returning the existing id if already present.
  /// Precondition: not a borrowed (snapshot-backed) dictionary.
  LabelId Intern(std::string_view name);

  /// Looks up an existing label.
  std::optional<LabelId> Find(std::string_view name) const;

  /// Name for an interned id. Precondition: id < size(). The view points
  /// into this dictionary's name storage (the mapping, when borrowed).
  std::string_view Name(LabelId id) const OMEGA_LIFETIME_BOUND;

  /// The eagerly interned id of the `type` label (always 0).
  LabelId type_label() const { return kTypeLabel; }
  bool IsType(LabelId id) const { return id == kTypeLabel; }

  size_t size() const { return borrowed_ ? frozen_.size() : names_.size(); }

  /// All Σ labels, i.e. every interned label except `type`.
  std::vector<LabelId> SigmaLabels() const;

  static constexpr LabelId kTypeLabel = 0;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;  // built in both modes
  StringTable frozen_;  // the name storage iff borrowed_
  bool borrowed_ = false;
};

}  // namespace omega

#endif  // OMEGA_STORE_LABEL_DICTIONARY_H_
