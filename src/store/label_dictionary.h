// String interning for edge labels. The paper's alphabet is
// Σ ∪ {type} for data edges, with {sc, sp, dom, range} reserved for the
// ontology; `type` is interned eagerly at id 0 so the store and automata can
// special-case it cheaply.
#ifndef OMEGA_STORE_LABEL_DICTIONARY_H_
#define OMEGA_STORE_LABEL_DICTIONARY_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "store/types.h"

namespace omega {

/// Reserved label names (never allowed as ordinary Σ labels).
inline constexpr std::string_view kTypeLabelName = "type";

/// Bidirectional label <-> id map. Ids are dense and stable; id 0 is `type`.
///
/// Thread-safety: Intern() mutates and belongs to the build phase (it is
/// only reachable through GraphBuilder). Once the owning GraphStore is
/// finalized, only the const read API (Find/Name/SigmaLabels/size) is
/// reachable and is safe to call from any number of threads — part of the
/// frozen-store contract documented on GraphStore.
class LabelDictionary {
 public:
  LabelDictionary();

  /// Interns `name`, returning the existing id if already present.
  LabelId Intern(std::string_view name);

  /// Looks up an existing label.
  std::optional<LabelId> Find(std::string_view name) const;

  /// Name for an interned id. Precondition: id < size().
  std::string_view Name(LabelId id) const;

  /// The eagerly interned id of the `type` label (always 0).
  LabelId type_label() const { return kTypeLabel; }
  bool IsType(LabelId id) const { return id == kTypeLabel; }

  size_t size() const { return names_.size(); }

  /// All Σ labels, i.e. every interned label except `type`.
  std::vector<LabelId> SigmaLabels() const;

  static constexpr LabelId kTypeLabel = 0;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;
};

}  // namespace omega

#endif  // OMEGA_STORE_LABEL_DICTIONARY_H_
