#include "service/result_cache.h"

#include <algorithm>
#include <functional>

namespace omega {

ResultCache::ResultCache(size_t capacity, size_t num_shards,
                         ResultCacheExternalCounters external)
    : external_(external) {
  capacity = std::max<size_t>(capacity, 1);
  num_shards = std::clamp<size_t>(num_shards, 1, capacity);
  // Ceil-divide so the total resident bound is >= the requested capacity
  // even when it does not divide evenly.
  per_shard_capacity_ = (capacity + num_shards - 1) / num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::shared_ptr<const CachedResult> ResultCache::Lookup(
    const std::string& key, bool count_miss) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    if (count_miss) {
      misses_.FetchAdd(1);
      if (external_.misses != nullptr) external_.misses->Increment();
    }
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.FetchAdd(1);
  if (external_.hits != nullptr) external_.hits->Increment();
  return it->second->second;
}

void ResultCache::Insert(const std::string& key,
                         std::shared_ptr<const CachedResult> value) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    insertions_.FetchAdd(1);
    if (external_.insertions != nullptr) external_.insertions->Increment();
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.FetchAdd(1);
    if (external_.evictions != nullptr) external_.evictions->Increment();
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index.emplace(key, shard.lru.begin());
  insertions_.FetchAdd(1);
  if (external_.insertions != nullptr) external_.insertions->Increment();
}

void ResultCache::Clear() {
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    evictions_.FetchAdd(shard.lru.size());
    if (external_.evictions != nullptr) {
      external_.evictions->Increment(shard.lru.size());
    }
    shard.index.clear();
    shard.lru.clear();
  }
}

void ResultCache::ResetCounters() {
  hits_.Store(0);
  misses_.Store(0);
  insertions_.Store(0);
  evictions_.Store(0);
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats out;
  out.hits = hits_.Load();
  out.misses = misses_.Load();
  out.insertions = insertions_.Load();
  out.evictions = evictions_.Load();
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    out.entries += shard.lru.size();
  }
  return out;
}

}  // namespace omega
