// Concurrent query serving on a frozen dataset: a QueryService owns a
// QueryEngine over a shared GraphStore/Ontology snapshot and executes
// submitted queries on a fixed pool of worker threads behind a bounded
// admission queue, with per-query deadlines, cooperative cancellation, and
// a sharded LRU cache of top-k ranked results in front of the engine.
//
// Why this is safe: the store and ontology are deeply immutable after
// construction (the frozen-store contract in store/graph_store.h and
// ontology/ontology.h) and every per-query structure — automata, tuple
// dictionaries, join tables, the result stream — is built per request, so
// worker threads share only const data plus the internally-locked cache,
// queue and stats.
//
// Dataset hot-swap: the frozen substrate lives in a *serving epoch* — a
// DatasetEpoch bundling the dataset, the engine bound to it, and a result
// cache whose entries are only meaningful for that dataset. SwapDataset()
// builds a fresh epoch (binding the new ontology and starting an empty
// cache) and atomically publishes it: every subsequent admission pins the
// new epoch, while requests already admitted keep a shared_ptr to the old
// one and drain against the exact substrate they were admitted under — no
// request ever sees half a swap, and cache invalidation is implicit in the
// epoch turnover (an old-epoch execution can only fill the old epoch's
// dying cache). The old dataset (and, for snapshot-backed datasets, its
// file mapping) is released when the last in-flight reference drops.
//
// Deadline semantics: the deadline clock starts at Submit(), so time spent
// waiting in the admission queue counts against it — a request that expires
// while queued completes with kDeadlineExceeded without ever executing.
// Cancellation is cooperative: Cancel() flips the request's CancelToken,
// which the evaluators poll at stream-pull granularity. A queued request
// that is already dead — cancelled or past its deadline — is purged (and
// its admission slot released) the next time the queue is full at
// Submit(), or sooner, when a worker reaches it.
#ifndef OMEGA_SERVICE_QUERY_SERVICE_H_
#define OMEGA_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "eval/query_engine.h"
#include "ontology/ontology.h"
#include "service/result_cache.h"
#include "service/service_stats.h"
#include "snapshot/dataset.h"
#include "store/graph_store.h"

namespace omega {

class MetricsRegistry;      // obs/metrics.h
class FlightRecorder;       // obs/flight_recorder.h
class EventLog;             // obs/event_log.h
struct EpochDrainTracker;   // query_service.cc: epoch retire/drain timing

/// One serving generation of the dataset: the frozen substrate, the engine
/// bound to it (ontology binding happens here, once per swap, not per
/// query), and the epoch's own result cache. Published as
/// shared_ptr<const DatasetEpoch>; tickets pin it from admission to
/// completion. `dataset` is null for the epoch the service constructor
/// borrows from caller-owned graph/ontology pointers.
///
/// Concurrency: immutable after construction except `cache`, which is
/// internally locked (ResultCache's per-shard mutexes) — which is why the
/// epoch needs no capability of its own and is shared across workers as a
/// const object.
struct DatasetEpoch {
  DatasetEpoch(uint64_t id_in, std::shared_ptr<const Dataset> dataset_in,
               const GraphStore* graph, const Ontology* ontology,
               std::unique_ptr<ResultCache> cache_in)
      : id(id_in),
        dataset(std::move(dataset_in)),
        // The dataset's IndexManager (snapshot-preloaded or lazily built)
        // feeds index substitution; a borrowed-pointer epoch 0 has no
        // dataset and thus no index.
        engine(graph, ontology,
               dataset == nullptr ? nullptr : dataset->indexes()),
        cache(std::move(cache_in)) {}

  uint64_t id;
  std::shared_ptr<const Dataset> dataset;
  QueryEngine engine;
  /// Per-epoch: entries can never outlive the dataset they were computed
  /// on. Null when caching is disabled. The pointee is internally locked
  /// (safe to use through a const epoch).
  std::unique_ptr<ResultCache> cache;
};

struct QueryServiceOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency() (min 1).
  size_t num_workers = 0;

  /// Bounded admission queue: submissions beyond this many pending requests
  /// are rejected with kResourceExhausted (min 1).
  size_t max_queue = 64;

  /// Top-k result cache capacity in entries across all shards; 0 disables
  /// the cache entirely.
  size_t cache_entries = 1024;
  size_t cache_shards = 8;

  /// Deadline applied to requests that do not set their own (0 = none).
  std::chrono::milliseconds default_deadline{0};

  /// Base engine configuration for every request (plan mode, optimisation
  /// toggles, evaluator budgets, APPROX/RELAX costs). Immutable for the
  /// service's lifetime — which is what lets the result cache key on query
  /// text + k alone. Per-request cancel tokens and top-k hints are layered
  /// on top per execution.
  QueryEngineOptions engine;

  /// Registry the service exports its instruments into; nullptr selects the
  /// process-global MetricsRegistry::Global(). Injectable so tests and the
  /// bench_obs pair read an isolated registry. Must outlive the service and
  /// every epoch it published (epochs record drain durations as they die).
  MetricsRegistry* metrics = nullptr;

  /// Master switch for the registry export (counters, gauges, histograms).
  /// Off is the bench_obs `_MetricsOff` baseline: no instruments are
  /// created and hot paths skip every registry touch. Per-query
  /// TraceRecorders attached via QueryRequest::trace work either way, and
  /// ServiceStats accounting is unaffected.
  bool enable_metrics = true;

  /// Flight recorder (obs/flight_recorder.h) appended to at every
  /// completion: one mutex-guarded flat-struct append, plus trace-JSON
  /// capture for completions over the slow threshold. nullptr disables
  /// recording entirely (the bench_obs `_RecorderOff` baseline). Not
  /// owned; must outlive the service.
  FlightRecorder* flight_recorder = nullptr;

  /// Lifecycle event journal (obs/event_log.h): dataset swaps, epoch
  /// retire/drain, admission rejections, cancelled/expired completions.
  /// nullptr selects EventLog::Global(). Must outlive the service and
  /// every epoch it published (drains are journaled as epochs die).
  EventLog* events = nullptr;
};

struct QueryRequest {
  Query query;
  /// Answers to retrieve (0 = drain the stream).
  size_t top_k = 10;
  /// Per-request deadline from submission time; 0 = use the service default.
  std::chrono::milliseconds deadline{0};
  /// Skip cache lookup and fill for this request (cache-cold measurement).
  bool bypass_cache = false;
  /// Optional per-query trace sink (obs/trace.h). When non-null, the
  /// service records admission/queue-wait/cache/execute spans and the
  /// engine adds plan, compile, index-probe and per-operator events. Not
  /// owned; must stay alive until the ticket completes (the recorder is
  /// written from the worker thread and is internally locked).
  TraceRecorder* trace = nullptr;
};

struct QueryResponse {
  Status status;
  std::vector<std::string> head;       ///< projected head variable names
  std::vector<QueryAnswer> answers;    ///< ranked, non-decreasing distance
  bool cache_hit = false;
  bool exhausted = false;              ///< stream drained before top_k
  double queue_ms = 0;                 ///< admission-queue wait
  double exec_ms = 0;                  ///< engine execution (0 on cache hit)
  /// Serving epoch the answers came from (pinned at admission): every
  /// answer in one response is consistent with exactly this epoch's
  /// dataset, even if SwapDataset() ran mid-execution.
  uint64_t epoch = 0;
};

/// Handle to an in-flight submission. Tickets are shared with the worker
/// that executes them; they stay valid after the service is destroyed
/// (destruction completes unprocessed tickets with kCancelled).
class QueryTicket {
 public:
  /// Requests cooperative cancellation; evaluation stops at the next
  /// stream-pull poll. Idempotent, callable from any thread.
  void Cancel() { cancel_.Cancel(); }

  /// Blocks until the request completes; returns the response (valid for
  /// the ticket's lifetime). Reading through the returned reference without
  /// a lock is safe: `done_` is a latch — once set under mu_, the response
  /// is never written again.
  const QueryResponse& Wait() OMEGA_EXCLUDES(mu_);

  /// Blocks like Wait() but moves the response out (no answer-vector copy).
  /// Call at most once; Wait() afterwards sees a moved-from response.
  QueryResponse TakeResponse() OMEGA_EXCLUDES(mu_);

  bool done() const OMEGA_EXCLUDES(mu_);

  /// The request's cancel token (tests observe deadline propagation).
  CancelToken token() const { return cancel_.token(); }

 private:
  friend class QueryService;

  mutable Mutex mu_;
  CondVar cv_;
  bool done_ OMEGA_GUARDED_BY(mu_) = false;
  QueryResponse response_ OMEGA_GUARDED_BY(mu_);

  // Deliberately outside the capability system: written by Submit() before
  // the ticket is visible to any other thread and immutable afterwards.
  // Publication to the worker happens through the queue under
  // QueryService::mu_ (and ticket completion through mu_ above), so every
  // reader observes the fully-written values. cancel_'s interior flag is
  // the one field that stays mutable; it is lock-free by design (cancel.h).
  QueryRequest request_;
  CancelSource cancel_;
  QueryClass query_class_ = QueryClass::kExact;
  std::string cache_key_;
  bool used_cache_ = false;  ///< consulted the epoch's cache at Submit()
  /// The serving epoch pinned at admission: the worker executes against
  /// this epoch's engine/cache regardless of later swaps, and the pin keeps
  /// the (possibly mmap-backed) dataset alive until completion.
  std::shared_ptr<const DatasetEpoch> epoch_;
  std::chrono::steady_clock::time_point enqueued_at_;
};

class QueryService {
 public:
  /// `graph` must be finalized and, with `ontology` (nullable: RELAX then
  /// fails per engine semantics), must outlive the service (or, more
  /// precisely, outlive epoch 0: after a SwapDataset the initial pointers
  /// are only needed until the last epoch-0 query drains and the epoch is
  /// dropped). Both are treated as frozen: the service never mutates them
  /// and caches results under that assumption.
  QueryService(const GraphStore* graph, const Ontology* ontology,
               QueryServiceOptions options = {});

  /// Serves `dataset` (e.g. a mapped snapshot from SnapshotReader::Open)
  /// as epoch 0, keeping it alive for as long as the service or any
  /// in-flight query references it.
  QueryService(std::shared_ptr<const Dataset> dataset,
               QueryServiceOptions options = {});

  /// Fast shutdown: cancels queries that are still executing (they stop at
  /// their next cancellation poll), joins the workers, and completes
  /// queued-but-unprocessed requests with kCancelled.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Validates and enqueues `request`. Fails with kInvalidArgument (bad
  /// query), kResourceExhausted (admission queue full), or
  /// kFailedPrecondition (service shutting down). A fresh cache hit is
  /// served synchronously on the calling thread: the returned ticket is
  /// already done. Otherwise the ticket completes on a worker thread.
  Result<std::shared_ptr<QueryTicket>> Submit(QueryRequest request)
      OMEGA_EXCLUDES(mu_, epoch_mu_, stats_mu_);

  /// Blocking convenience: Submit + Wait, with rejections folded into the
  /// response's status.
  QueryResponse Execute(QueryRequest request);

  /// Hot-swaps the serving dataset: publishes a new epoch around `dataset`
  /// (binding its ontology and starting a fresh, empty result cache) so
  /// that every admission from here on runs against it, while already
  /// admitted queries drain on the epoch they pinned. Also starts a new
  /// cache-accounting generation (the per-class cache-hit counters reset —
  /// see InvalidateCache). Thread-safe; callable at any time, including
  /// under full query load.
  Status SwapDataset(std::shared_ptr<const Dataset> dataset)
      OMEGA_EXCLUDES(epoch_mu_, stats_mu_);

  /// Invalidation hook: drops every cached result of the current epoch and
  /// starts a fresh cache-accounting generation. Semantics: after this
  /// call (a) no response is served from a pre-invalidation cache fill —
  /// modulo requests already past their cache probe — and (b) the cache
  /// counters in stats() (ServiceStats::cache, per-class cache_hits /
  /// cache_lookups) restart from zero, so hit rates describe only the
  /// current generation instead of being diluted by a cache that no longer
  /// exists. Call it when cached answers should no longer be served;
  /// SwapDataset() supersedes it for dataset changes (the new epoch's
  /// cache is born empty).
  void InvalidateCache() OMEGA_EXCLUDES(epoch_mu_, stats_mu_);

  ServiceStats stats() const OMEGA_EXCLUDES(stats_mu_, epoch_mu_, mu_);

  size_t num_workers() const { return workers_.size(); }
  size_t queue_depth() const OMEGA_EXCLUDES(mu_);

  /// Id of the epoch new admissions currently pin (0 until the first swap).
  uint64_t dataset_epoch() const OMEGA_EXCLUDES(epoch_mu_);

  /// True while the service accepts submissions; false once destruction has
  /// begun. The ops plane's /readyz readiness derives from this.
  bool accepting() const OMEGA_EXCLUDES(mu_);

  /// The registry this service exports instruments into — the injected one
  /// when QueryServiceOptions::metrics was supplied, else the process
  /// global; null when enable_metrics is false. The shell's `.metrics` and
  /// the ops plane resolve through this so an injected registry is the one
  /// actually rendered.
  MetricsRegistry* metrics_registry() const { return registry_; }
  /// The attached flight recorder (null when disabled).
  FlightRecorder* flight_recorder() const;
  /// The journal lifecycle events go to (never null).
  EventLog* event_log() const { return events_; }

 private:
  /// Per-execution counters folded into the per-class aggregates: the
  /// result stream's merged EvaluatorStats plus the rank-join operators'
  /// own OperatorStats gathered by walking the compiled plan.
  struct ExecutionStats {
    EvaluatorStats eval;
    uint64_t join_rows = 0;
    uint64_t max_join_live = 0;
  };

  void WorkerLoop(size_t worker_index) OMEGA_EXCLUDES(mu_);
  /// Executes (or short-circuits) one ticket and completes it.
  void RunTask(const std::shared_ptr<QueryTicket>& ticket)
      OMEGA_EXCLUDES(mu_, stats_mu_);
  /// Completes `ticket` from a cache entry (shared by the synchronous
  /// Submit fast path and the worker re-probe).
  void ServeHit(const std::shared_ptr<QueryTicket>& ticket,
                const CachedResult& entry, double queue_ms)
      OMEGA_EXCLUDES(stats_mu_);
  void Complete(const std::shared_ptr<QueryTicket>& ticket,
                QueryResponse response, const ExecutionStats* exec = nullptr)
      OMEGA_EXCLUDES(stats_mu_);
  /// Removes dead (cancelled or deadline-expired) tickets from the queue;
  /// returns them for completion outside the lock.
  std::vector<std::shared_ptr<QueryTicket>> PurgeDeadLocked()
      OMEGA_REQUIRES(mu_);

  /// Shared constructor body: builds epoch 0 (owning `dataset` when
  /// non-null, else borrowing the caller's pointers) and starts the pool.
  QueryService(const GraphStore* graph, const Ontology* ontology,
               std::shared_ptr<const Dataset> dataset,
               QueryServiceOptions options);

  /// The epoch new admissions pin right now (one shared-lock pointer copy:
  /// admissions on many threads read concurrently, only SwapDataset writes).
  std::shared_ptr<const DatasetEpoch> CurrentEpoch() const
      OMEGA_EXCLUDES(epoch_mu_);
  /// Builds an epoch (engine bind + fresh cache) around the given substrate.
  std::shared_ptr<const DatasetEpoch> MakeEpoch(
      uint64_t id, std::shared_ptr<const Dataset> dataset,
      const GraphStore* graph, const Ontology* ontology) const;
  /// Zeroes the cache-generation counters (per-class hits/lookups).
  void ResetCacheGenerationStats() OMEGA_EXCLUDES(stats_mu_);

  /// Immutable after construction (clamped worker/queue bounds, engine
  /// config): read by every worker without synchronisation.
  QueryServiceOptions options_;

  /// Cached registry instrument pointers (counters/gauges/histograms for
  /// admission, completion, latency, cache and swap events), resolved once
  /// at construction so hot paths never touch the registry map. Null when
  /// options_.enable_metrics is false; immutable after construction, and
  /// every instrument cell is internally relaxed-atomic.
  struct ServiceMetrics;
  std::unique_ptr<const ServiceMetrics> metrics_;

  /// Resolved observability surfaces (see the accessors above): written at
  /// construction, immutable afterwards. events_ is never null.
  MetricsRegistry* registry_ = nullptr;
  EventLog* events_ = nullptr;

  /// Epoch retire/drain bookkeeping, shared with every published epoch's
  /// deleter. A shared_ptr because drains outlive the service: the last
  /// pin on a retired epoch may be a ticket a client still holds after
  /// this service is destroyed. Internally locked (see the definition).
  std::shared_ptr<EpochDrainTracker> drain_tracker_;

  /// Guards the epoch pointer only — a leaf lock by construction: taken for
  /// one shared_ptr copy (shared) or one pointer swap (exclusive), never
  /// while holding, or before acquiring, mu_ or stats_mu_. Reader/writer
  /// because admissions outnumber swaps by orders of magnitude.
  mutable SharedMutex epoch_mu_;
  std::shared_ptr<const DatasetEpoch> epoch_ OMEGA_GUARDED_BY(epoch_mu_);

  /// Guards the admission queue and worker bookkeeping.
  mutable Mutex mu_;
  CondVar work_cv_;
  std::deque<std::shared_ptr<QueryTicket>> queue_ OMEGA_GUARDED_BY(mu_);
  /// Ticket each worker is currently executing (null when idle); lets the
  /// destructor cancel in-flight queries for fast shutdown.
  std::vector<std::shared_ptr<QueryTicket>> running_ OMEGA_GUARDED_BY(mu_);
  bool stopping_ OMEGA_GUARDED_BY(mu_) = false;

  /// Guards the serving aggregates. Lock order: mu_ may be held when
  /// acquiring stats_mu_ (Submit counts admissions inside the queue
  /// critical section so a stats() snapshot can never see a completion
  /// before its submission); stats_mu_ is otherwise a leaf and is never
  /// held while acquiring any other lock.
  mutable Mutex stats_mu_ OMEGA_ACQUIRED_AFTER(mu_);
  ServiceStats stats_ OMEGA_GUARDED_BY(stats_mu_);

  /// Joined in the destructor; written only at construction.
  std::vector<std::thread> workers_;
};

}  // namespace omega

#endif  // OMEGA_SERVICE_QUERY_SERVICE_H_
