#include "service/query_service.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <span>
#include <type_traits>

#include "common/timer.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/plan_node.h"

namespace omega {

/// Epoch retire/drain bookkeeping shared between the service (SwapDataset
/// records retirement) and every published epoch's deleter (the last pin
/// drop records the drain). Outlives both sides via shared_ptr: the final
/// pin on a retired epoch may be a ticket a client holds after the service
/// is gone, so the deleter must never call back into the service.
struct EpochDrainTracker {
  Mutex mu;
  /// Epochs retired but not yet drained: id -> retire timestamp. Tiny —
  /// bounded by the number of epochs still pinned by in-flight queries.
  std::vector<std::pair<uint64_t, std::chrono::steady_clock::time_point>>
      retired_at OMEGA_GUARDED_BY(mu);
  uint64_t retired OMEGA_GUARDED_BY(mu) = 0;
  uint64_t drained OMEGA_GUARDED_BY(mu) = 0;
  double drain_ms_total OMEGA_GUARDED_BY(mu) = 0;
  double drain_ms_max OMEGA_GUARDED_BY(mu) = 0;
  /// Registry sink (null when metrics are disabled). Written once at
  /// service construction, before any epoch exists; the histogram's cells
  /// are relaxed-atomic, so observing outside `mu` would also be safe.
  Histogram* drain_us = nullptr;
  /// Lifecycle journal for drain events. Written once at construction;
  /// never null afterwards (defaults to EventLog::Global(), which outlives
  /// any detached epoch deleter).
  EventLog* events = nullptr;
};

/// Cached instrument pointers, resolved once at construction: hot paths
/// (Submit, WorkerLoop, Complete) do relaxed increments through these and
/// never touch the registry map.
struct QueryService::ServiceMetrics {
  explicit ServiceMetrics(MetricsRegistry* registry) {
    submitted = registry->GetCounter("omega_service_submitted_total",
                                     "Admitted submissions (incl. hits)");
    rejected = registry->GetCounter("omega_service_rejected_total",
                                    "Admission-queue-full rejections");
    const char* completed_help = "Request completions by status";
    completed_ok = registry->GetCounter("omega_service_completed_total",
                                        completed_help, "status=\"ok\"");
    completed_cancelled = registry->GetCounter(
        "omega_service_completed_total", completed_help,
        "status=\"cancelled\"");
    completed_deadline = registry->GetCounter("omega_service_completed_total",
                                              completed_help,
                                              "status=\"deadline\"");
    completed_error = registry->GetCounter("omega_service_completed_total",
                                           completed_help, "status=\"error\"");
    queue_depth = registry->GetGauge("omega_service_queue_depth",
                                     "Requests waiting in the admission "
                                     "queue");
    in_flight = registry->GetGauge("omega_service_in_flight",
                                   "Requests currently executing on workers");
    queue_wait_us = registry->GetHistogram("omega_service_queue_wait_us",
                                           "Admission-queue wait");
    for (size_t i = 0; i < kNumQueryClasses; ++i) {
      const std::string labels =
          std::string("class=\"") +
          QueryClassToString(static_cast<QueryClass>(i)) + "\"";
      exec_us[i] = registry->GetHistogram(
          "omega_service_exec_us", "Engine execution time by query class",
          labels);
    }
    cache_hits = registry->GetCounter("omega_cache_hits_total",
                                      "Result-cache hits");
    cache_misses = registry->GetCounter("omega_cache_misses_total",
                                        "Result-cache misses");
    cache_insertions = registry->GetCounter("omega_cache_insertions_total",
                                            "Result-cache insertions");
    cache_evictions = registry->GetCounter(
        "omega_cache_evictions_total",
        "Result-cache evictions (LRU pressure + invalidations)");
    workers = registry->GetGauge("omega_service_workers",
                                 "Query worker pool size");
    swaps = registry->GetCounter("omega_service_swaps_total",
                                 "Dataset hot-swaps published");
    swap_us = registry->GetHistogram("omega_service_swap_us",
                                     "SwapDataset publish time");
    epoch_drain_us = registry->GetHistogram(
        "omega_service_epoch_drain_us",
        "Retired-epoch drain time (retire to last pin drop)");
  }

  Counter* submitted;
  Counter* rejected;
  Counter* completed_ok;
  Counter* completed_cancelled;
  Counter* completed_deadline;
  Counter* completed_error;
  Gauge* queue_depth;
  Gauge* in_flight;
  Histogram* queue_wait_us;
  Histogram* exec_us[kNumQueryClasses];
  Counter* cache_hits;
  Counter* cache_misses;
  Counter* cache_insertions;
  Counter* cache_evictions;
  Gauge* workers;
  Counter* swaps;
  Histogram* swap_us;
  Histogram* epoch_drain_us;
};

namespace {

/// Epoch-deleter body: the last pin on a *retired* epoch just dropped. The
/// live epoch at service destruction has no retire record and is skipped.
void RecordEpochDrained(EpochDrainTracker& tracker, uint64_t epoch_id) {
  const auto now = std::chrono::steady_clock::now();
  MutexLock lock(tracker.mu);
  for (auto it = tracker.retired_at.begin(); it != tracker.retired_at.end();
       ++it) {
    if (it->first != epoch_id) continue;
    const double ms =
        std::chrono::duration<double, std::milli>(now - it->second).count();
    ++tracker.drained;
    tracker.drain_ms_total += ms;
    tracker.drain_ms_max = std::max(tracker.drain_ms_max, ms);
    if (tracker.drain_us != nullptr) {
      tracker.drain_us->Observe(static_cast<uint64_t>(ms * 1000.0));
    }
    tracker.retired_at.erase(it);
    if (tracker.events != nullptr) {
      char msg[96];
      std::snprintf(msg, sizeof(msg), "epoch %llu drained after %.1f ms",
                    static_cast<unsigned long long>(epoch_id), ms);
      tracker.events->Record(EventSeverity::kInfo, "service", msg);
    }
    return;
  }
}

}  // namespace

namespace {

// Compile-time spot-checks of the frozen-store thread-safety contract: the
// read paths the evaluators hit during concurrent serving must be const
// member functions (see the contract comments on GraphStore, LabelDictionary
// and BoundOntology). If one of these loses its const — say a lazy cache
// sneaks back in — serving over a shared store stops being provably safe
// and this file stops compiling.
static_assert(
    std::is_same_v<decltype(&GraphStore::Neighbors),
                   std::span<const NodeId> (GraphStore::*)(
                       NodeId, LabelId, Direction) const>);
static_assert(
    std::is_same_v<decltype(&GraphStore::SigmaNeighbors),
                   std::span<const NodeId> (GraphStore::*)(NodeId, Direction)
                       const>);
static_assert(
    std::is_same_v<decltype(&GraphStore::FindNode),
                   std::optional<NodeId> (GraphStore::*)(std::string_view)
                       const>);
static_assert(
    std::is_same_v<decltype(&LabelDictionary::Find),
                   std::optional<LabelId> (LabelDictionary::*)(
                       std::string_view) const>);
static_assert(
    std::is_same_v<decltype(&BoundOntology::LabelDownSet),
                   const std::vector<LabelId>& (BoundOntology::*)(LabelId)
                       const>);
static_assert(
    std::is_same_v<decltype(&BoundOntology::NodeDownSet),
                   const OidSet& (BoundOntology::*)(NodeId) const>);

/// Sums the rank-join operators' own counters over the compiled plan tree
/// (leaves report through the merged stream stats instead).
void SumJoinOperatorStats(const PlanNode* node, uint64_t* rows,
                          uint64_t* max_live) {
  if (node == nullptr || node->is_leaf()) return;
  if (node->stream != nullptr) {
    const EvaluatorStats op = node->stream->OperatorStats();
    *rows += op.answers_emitted;
    *max_live = std::max(*max_live, op.max_join_live);
  }
  SumJoinOperatorStats(node->left.get(), rows, max_live);
  SumJoinOperatorStats(node->right.get(), rows, max_live);
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

// --- QueryTicket -------------------------------------------------------------

const QueryResponse& QueryTicket::Wait() {
  MutexLock lock(mu_);
  while (!done_) cv_.Wait(mu_);
  return response_;
}

QueryResponse QueryTicket::TakeResponse() {
  MutexLock lock(mu_);
  while (!done_) cv_.Wait(mu_);
  return std::move(response_);
}

bool QueryTicket::done() const {
  MutexLock lock(mu_);
  return done_;
}

// --- QueryService ------------------------------------------------------------

QueryService::QueryService(const GraphStore* graph, const Ontology* ontology,
                           std::shared_ptr<const Dataset> dataset,
                           QueryServiceOptions options)
    : options_(std::move(options)) {
  if (options_.num_workers == 0) {
    options_.num_workers =
        std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  options_.max_queue = std::max<size_t>(options_.max_queue, 1);
  if (options_.enable_metrics) {
    registry_ = options_.metrics != nullptr ? options_.metrics
                                            : MetricsRegistry::Global();
    metrics_ = std::make_unique<const ServiceMetrics>(registry_);
    metrics_->workers->Set(static_cast<int64_t>(options_.num_workers));
  }
  events_ =
      options_.events != nullptr ? options_.events : EventLog::Global();
  drain_tracker_ = std::make_shared<EpochDrainTracker>();
  drain_tracker_->drain_us =
      metrics_ != nullptr ? metrics_->epoch_drain_us : nullptr;
  drain_tracker_->events = events_;
  epoch_ = MakeEpoch(/*id=*/0, std::move(dataset), graph, ontology);
  running_.resize(options_.num_workers);
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&QueryService::WorkerLoop, this, i);
  }
}

QueryService::QueryService(const GraphStore* graph, const Ontology* ontology,
                           QueryServiceOptions options)
    : QueryService(graph, ontology, /*dataset=*/nullptr,
                   std::move(options)) {}

QueryService::QueryService(std::shared_ptr<const Dataset> dataset,
                           QueryServiceOptions options)
    : QueryService(&dataset->graph(), dataset->ontology(), dataset,
                   std::move(options)) {}

std::shared_ptr<const DatasetEpoch> QueryService::MakeEpoch(
    uint64_t id, std::shared_ptr<const Dataset> dataset,
    const GraphStore* graph, const Ontology* ontology) const {
  std::unique_ptr<ResultCache> cache;
  if (options_.cache_entries > 0) {
    ResultCacheExternalCounters external;
    if (metrics_ != nullptr) {
      // Registry cache counters are monotonic across epochs and cache
      // generations (Prometheus semantics); the cache's own counters stay
      // per-generation for ServiceStats hit rates.
      external.hits = metrics_->cache_hits;
      external.misses = metrics_->cache_misses;
      external.insertions = metrics_->cache_insertions;
      external.evictions = metrics_->cache_evictions;
    }
    cache = std::make_unique<ResultCache>(options_.cache_entries,
                                          options_.cache_shards, external);
  }
  // QueryEngine's constructor binds the ontology against the graph
  // (BoundOntology precompute) — per epoch, not per query.
  auto epoch = std::make_unique<DatasetEpoch>(id, std::move(dataset), graph,
                                              ontology, std::move(cache));
  // Custom deleter so the last pin drop on a retired epoch records the
  // drain. The tracker is captured by shared_ptr because a ticket (and
  // therefore the epoch it pins) may legitimately outlive the service.
  std::shared_ptr<EpochDrainTracker> tracker = drain_tracker_;
  return std::shared_ptr<const DatasetEpoch>(
      epoch.release(), [tracker](const DatasetEpoch* e) {
        RecordEpochDrained(*tracker, e->id);
        delete e;
      });
}

std::shared_ptr<const DatasetEpoch> QueryService::CurrentEpoch() const {
  ReaderMutexLock lock(epoch_mu_);
  return epoch_;
}

uint64_t QueryService::dataset_epoch() const { return CurrentEpoch()->id; }

Status QueryService::SwapDataset(std::shared_ptr<const Dataset> dataset) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("SwapDataset requires a dataset");
  }
  const GraphStore* graph = &dataset->graph();
  const Ontology* ontology = dataset->ontology();
  const Timer swap_timer;
  std::shared_ptr<const DatasetEpoch> retired;
  {
    WriterMutexLock lock(epoch_mu_);
    // Building the epoch outside the lock would allow two concurrent swaps
    // to publish the same id; binds are cheap relative to swap frequency.
    auto next = MakeEpoch(epoch_->id + 1, std::move(dataset), graph, ontology);
    retired = std::move(epoch_);
    epoch_ = std::move(next);
  }
  const double swap_ms = swap_timer.ElapsedMs();
  const uint64_t retired_id = retired->id;
  // Record the retirement *before* dropping our reference: if no query has
  // the old epoch pinned, reset() runs the drain deleter immediately and it
  // must find the retire timestamp already in place.
  {
    MutexLock lock(drain_tracker_->mu);
    ++drain_tracker_->retired;
    drain_tracker_->retired_at.emplace_back(retired->id,
                                            std::chrono::steady_clock::now());
  }
  // The retired epoch (dataset, engine, cache entries) lives on in the
  // tickets that pinned it and dies with the last of them; dropping our
  // reference here is what makes the swap an invalidation.
  retired.reset();
  ResetCacheGenerationStats();
  if (metrics_ != nullptr) {
    metrics_->swaps->Increment();
    metrics_->swap_us->Observe(static_cast<uint64_t>(swap_ms * 1000.0));
  }
  {
    char msg[112];
    std::snprintf(msg, sizeof(msg),
                  "dataset swap published: epoch %llu -> %llu (%.1f ms)",
                  static_cast<unsigned long long>(retired_id),
                  static_cast<unsigned long long>(retired_id + 1), swap_ms);
    events_->Record(EventSeverity::kInfo, "service", msg);
  }
  {
    MutexLock lock(stats_mu_);
    ++stats_.dataset_swaps;
    stats_.swap_ms_total += swap_ms;
  }
  return Status::OK();
}

QueryService::~QueryService() {
  std::deque<std::shared_ptr<QueryTicket>> leftovers;
  std::vector<std::shared_ptr<QueryTicket>> in_flight;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    leftovers.swap(queue_);
    in_flight = running_;
  }
  // Fast shutdown: in-flight queries stop at their next cancellation poll
  // and complete with kCancelled before their worker exits.
  for (const std::shared_ptr<QueryTicket>& ticket : in_flight) {
    if (ticket != nullptr) ticket->cancel_.Cancel();
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  // The queue was drained into `leftovers` above; don't leave a stale
  // non-zero depth behind in a shared registry. (in_flight needs no reset:
  // it is delta-based and every worker balanced its Add(1) before joining.)
  if (metrics_ != nullptr) metrics_->queue_depth->Set(0);
  for (const std::shared_ptr<QueryTicket>& ticket : leftovers) {
    QueryResponse response;
    response.status = Status::Cancelled("query service is shutting down");
    response.epoch = ticket->epoch_->id;
    response.queue_ms = MsSince(ticket->enqueued_at_);
    Complete(ticket, std::move(response));
  }
}

Result<std::shared_ptr<QueryTicket>> QueryService::Submit(
    QueryRequest request) {
  OMEGA_RETURN_NOT_OK(ValidateQuery(request.query));
  auto ticket = std::make_shared<QueryTicket>();
  ticket->request_ = std::move(request);
  ticket->query_class_ = ClassifyQuery(ticket->request_.query);
  const std::chrono::milliseconds deadline =
      ticket->request_.deadline.count() > 0 ? ticket->request_.deadline
                                            : options_.default_deadline;
  if (deadline.count() > 0) {
    ticket->cancel_ = CancelSource::WithTimeout(deadline);
  }
  ticket->enqueued_at_ = std::chrono::steady_clock::now();

  // Pin the serving epoch at admission: the request executes against this
  // epoch's engine and cache no matter how many swaps happen while it
  // waits, and the pin keeps the dataset alive until completion.
  ticket->epoch_ = CurrentEpoch();
  TraceRecorder* const trace = ticket->request_.trace;
  if (trace != nullptr) {
    const TraceRecorder::SpanId pin = trace->Event("epoch_pin");
    trace->Annotate(pin, "epoch", static_cast<int64_t>(ticket->epoch_->id));
    trace->AnnotateStr(pin, "class",
                       QueryClassToString(ticket->query_class_));
  }
  const bool use_cache =
      ticket->epoch_->cache != nullptr && !ticket->request_.bypass_cache;
  ticket->used_cache_ = use_cache;
  if (use_cache || options_.flight_recorder != nullptr) {
    // Canonical query text + k identifies the artifact: the engine options
    // (the other input that shapes the answer sequence) are fixed for this
    // service's lifetime, and the cache dies with its epoch. The flight
    // recorder needs it even on cache-bypass requests — its records key on
    // the hash of this string.
    ticket->cache_key_ = ticket->request_.query.CanonicalKey() + "|k=" +
                         std::to_string(ticket->request_.top_k);
  }
  if (use_cache) {
    // Fresh hits are served synchronously on the submitting thread: no
    // queueing, no worker hand-off — this is the latency the cache exists
    // to buy.
    const Timer lookup_timer;
    std::shared_ptr<const CachedResult> entry =
        ticket->epoch_->cache->Lookup(ticket->cache_key_);
    if (trace != nullptr) {
      const TraceRecorder::SpanId lookup =
          trace->RecordComplete("cache_lookup", lookup_timer.ElapsedUs());
      trace->Annotate(lookup, "hit", entry != nullptr ? 1 : 0);
    }
    if (entry != nullptr) {
      {
        MutexLock lock(stats_mu_);
        ++stats_.submitted;
      }
      if (metrics_ != nullptr) metrics_->submitted->Increment();
      ServeHit(ticket, *entry, /*queue_ms=*/0);
      return ticket;
    }
  }

  std::vector<std::shared_ptr<QueryTicket>> purged;
  bool admitted = false;
  {
    MutexLock lock(mu_);
    if (stopping_) {
      return Status::FailedPrecondition("query service is shutting down");
    }
    if (queue_.size() >= options_.max_queue) {
      // Queued requests that are already cancelled or past their deadline
      // hold admission slots they will never use; release them before
      // deciding to reject. Completion runs after mu_ is dropped —
      // Complete takes the ticket and stats locks, which must stay leaf
      // locks.
      purged = PurgeDeadLocked();
    }
    if (queue_.size() < options_.max_queue) {
      queue_.push_back(ticket);
      admitted = true;
      // Counted while still holding mu_, so a stats() snapshot can never
      // observe a completion of this query before its submission.
      MutexLock stats_lock(stats_mu_);
      ++stats_.submitted;
    }
    if (metrics_ != nullptr) {
      metrics_->queue_depth->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  for (const std::shared_ptr<QueryTicket>& p : purged) {
    QueryResponse response;
    response.epoch = p->epoch_->id;
    response.status = p->cancel_.token().Check("queued query");
    if (response.status.ok()) {  // raced with Cancel/clock: treat as cancelled
      response.status = Status::Cancelled("queued query was cancelled");
    }
    response.queue_ms = MsSince(p->enqueued_at_);
    Complete(p, std::move(response));
  }
  if (!admitted) {
    if (metrics_ != nullptr) metrics_->rejected->Increment();
    {
      MutexLock lock(stats_mu_);
      ++stats_.rejected;
    }
    events_->Record(EventSeverity::kWarn, "service",
                    "admission rejected: queue full (max_queue=" +
                        std::to_string(options_.max_queue) + ")");
    return Status::ResourceExhausted(
        "admission queue is full (max_queue=" +
        std::to_string(options_.max_queue) + ")");
  }
  if (metrics_ != nullptr) metrics_->submitted->Increment();
  work_cv_.NotifyOne();
  return ticket;
}

QueryResponse QueryService::Execute(QueryRequest request) {
  Result<std::shared_ptr<QueryTicket>> ticket = Submit(std::move(request));
  if (!ticket.ok()) {
    QueryResponse response;
    response.status = ticket.status();
    return response;
  }
  // The local shared_ptr is this caller's only handle: move the response
  // out instead of deep-copying the answers vector.
  return (*ticket)->TakeResponse();
}

void QueryService::InvalidateCache() {
  // See the header comment for the intended semantics: entries are dropped
  // AND the cache-accounting generation restarts, both on the cache's own
  // counters and on the per-class aggregates — a hit rate that mixes
  // generations would overstate a cache that no longer holds anything.
  const std::shared_ptr<const DatasetEpoch> epoch = CurrentEpoch();
  if (epoch->cache != nullptr) {
    epoch->cache->Clear();
    epoch->cache->ResetCounters();
  }
  ResetCacheGenerationStats();
}

void QueryService::ResetCacheGenerationStats() {
  MutexLock lock(stats_mu_);
  for (ClassAggregate& agg : stats_.per_class) {
    agg.cache_hits = 0;
    agg.cache_lookups = 0;
  }
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  {
    MutexLock lock(stats_mu_);
    out = stats_;
  }
  // Sampled gauges come from mu_, taken *after* stats_mu_ is released —
  // mu_ is ordered before stats_mu_ when both are held (see the header),
  // so nesting them the other way here would invert the lock order.
  {
    MutexLock lock(mu_);
    out.queue_depth = queue_.size();
    for (const std::shared_ptr<QueryTicket>& t : running_) {
      if (t != nullptr) ++out.in_flight;
    }
  }
  {
    MutexLock lock(drain_tracker_->mu);
    out.epochs_retired = drain_tracker_->retired;
    out.epochs_drained = drain_tracker_->drained;
    out.drain_ms_total = drain_tracker_->drain_ms_total;
    out.drain_ms_max = drain_tracker_->drain_ms_max;
  }
  const std::shared_ptr<const DatasetEpoch> epoch = CurrentEpoch();
  out.dataset_epoch = epoch->id;
  if (epoch->cache != nullptr) out.cache = epoch->cache->stats();
  return out;
}

size_t QueryService::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

bool QueryService::accepting() const {
  MutexLock lock(mu_);
  return !stopping_;
}

FlightRecorder* QueryService::flight_recorder() const {
  return options_.flight_recorder;
}

std::vector<std::shared_ptr<QueryTicket>> QueryService::PurgeDeadLocked() {
  std::vector<std::shared_ptr<QueryTicket>> purged;
  for (auto it = queue_.begin(); it != queue_.end();) {
    // Dead = explicitly cancelled or deadline already expired: either way
    // the ticket is guaranteed to complete without executing, so its slot
    // can be handed to a live request.
    if (!(*it)->cancel_.token().Check("queued query").ok()) {
      purged.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return purged;
}

void QueryService::WorkerLoop(size_t worker_index) {
  for (;;) {
    std::shared_ptr<QueryTicket> ticket;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.Wait(mu_);
      if (stopping_) return;  // leftovers are completed by the destructor
      ticket = std::move(queue_.front());
      queue_.pop_front();
      running_[worker_index] = ticket;
      if (metrics_ != nullptr) {
        metrics_->queue_depth->Set(static_cast<int64_t>(queue_.size()));
      }
    }
    if (metrics_ != nullptr) metrics_->in_flight->Add(1);
    RunTask(ticket);
    if (metrics_ != nullptr) metrics_->in_flight->Add(-1);
    {
      MutexLock lock(mu_);
      running_[worker_index] = nullptr;
    }
  }
}

void QueryService::RunTask(const std::shared_ptr<QueryTicket>& ticket) {
  // Everything below runs against the epoch the ticket pinned at Submit():
  // a swap that lands mid-execution changes nothing for this request.
  const DatasetEpoch& epoch = *ticket->epoch_;
  QueryResponse response;
  response.epoch = epoch.id;
  response.queue_ms = MsSince(ticket->enqueued_at_);
  TraceRecorder* const trace = ticket->request_.trace;
  if (metrics_ != nullptr) {
    metrics_->queue_wait_us->Observe(
        static_cast<uint64_t>(response.queue_ms * 1000.0));
  }
  if (trace != nullptr) {
    // The wait started at Submit(), before this worker had the recorder, so
    // the span is back-dated from the measured duration.
    trace->RecordComplete("queue_wait", response.queue_ms * 1000.0);
  }

  // The deadline clock started at Submit(), so a request can expire (or be
  // cancelled) before it ever executes.
  const CancelToken token = ticket->cancel_.token();
  response.status = token.Check("queued query");
  if (!response.status.ok()) {
    Complete(ticket, std::move(response));
    return;
  }

  const bool use_cache =
      epoch.cache != nullptr && !ticket->request_.bypass_cache;
  // An identical request may have completed while this one queued. Submit
  // already counted this request's miss, so the re-probe doesn't.
  if (use_cache) {
    const Timer lookup_timer;
    std::shared_ptr<const CachedResult> entry =
        epoch.cache->Lookup(ticket->cache_key_, /*count_miss=*/false);
    if (trace != nullptr) {
      const TraceRecorder::SpanId lookup =
          trace->RecordComplete("cache_reprobe", lookup_timer.ElapsedUs());
      trace->Annotate(lookup, "hit", entry != nullptr ? 1 : 0);
    }
    if (entry != nullptr) {
      ServeHit(ticket, *entry, response.queue_ms);
      return;
    }
  }

  Timer timer;
  QueryEngineOptions options = options_.engine;
  options.evaluator.cancel = token;
  // Hand the ticket's recorder to the engine: plan / compile spans and
  // index-probe events land in the same per-query trace as the service
  // spans above.
  options.evaluator.trace = trace;
  if (options.evaluator.top_k_hint == 0) {
    options.evaluator.top_k_hint = ticket->request_.top_k;
  }
  TraceRecorder::SpanId exec_span = 0;
  if (trace != nullptr) exec_span = trace->Begin("execute");
  Result<std::unique_ptr<QueryResultStream>> stream =
      epoch.engine.Execute(ticket->request_.query, options);
  if (!stream.ok()) {
    if (trace != nullptr) {
      trace->Annotate(exec_span, "ok", 0);
      trace->End(exec_span);
    }
    response.status = stream.status();
    response.exec_ms = timer.ElapsedMs();
    const ExecutionStats exec;  // reached the engine, no stream counters
    Complete(ticket, std::move(response), &exec);
    return;
  }

  const size_t k = ticket->request_.top_k;
  QueryAnswer answer;
  bool drained = false;
  while (k == 0 || response.answers.size() < k) {
    if (!(*stream)->Next(&answer)) {
      drained = true;
      break;
    }
    response.answers.push_back(std::move(answer));
  }
  response.exec_ms = timer.ElapsedMs();
  response.status = (*stream)->status();
  response.head = (*stream)->head();
  response.exhausted = drained && response.status.ok();

  ExecutionStats exec;
  exec.eval = (*stream)->stats();
  if ((*stream)->plan() != nullptr) {
    SumJoinOperatorStats((*stream)->plan()->root.get(), &exec.join_rows,
                         &exec.max_join_live);
  }
  if (trace != nullptr) {
    trace->Annotate(exec_span, "ok", response.status.ok() ? 1 : 0);
    trace->Annotate(exec_span, "answers",
                    static_cast<int64_t>(response.answers.size()));
    trace->Annotate(exec_span, "exhausted", response.exhausted ? 1 : 0);
    // Per-operator pull/emit totals, recorded after draining so the
    // counters are final.
    if ((*stream)->plan() != nullptr) {
      RecordOperatorTrace(*(*stream)->plan(), trace);
    }
    trace->End(exec_span);
  }

  if (use_cache && response.status.ok()) {
    auto entry = std::make_shared<CachedResult>();
    entry->answers = response.answers;
    entry->exhausted = response.exhausted;
    // Fills go to the *pinned* epoch's cache: after a swap this is the
    // retired cache dying with its epoch, so a stale result can never be
    // served to post-swap admissions (they pin the new epoch).
    epoch.cache->Insert(ticket->cache_key_, std::move(entry));
  }
  Complete(ticket, std::move(response), &exec);
}

void QueryService::ServeHit(const std::shared_ptr<QueryTicket>& ticket,
                            const CachedResult& entry, double queue_ms) {
  QueryResponse response;
  response.epoch = ticket->epoch_->id;
  // Entries are shared across alpha-renamed queries, so the column labels
  // come from the query as submitted, not from whoever filled the cache.
  response.head = ticket->request_.query.head;
  response.answers = entry.answers;
  response.exhausted = entry.exhausted;
  response.cache_hit = true;
  response.queue_ms = queue_ms;
  Complete(ticket, std::move(response));
}

void QueryService::Complete(const std::shared_ptr<QueryTicket>& ticket,
                            QueryResponse response,
                            const ExecutionStats* exec) {
  if (options_.flight_recorder != nullptr) {
    // One mutex-guarded flat append per completion (near-free: see the
    // bench_obs _RecorderOn/_RecorderOff gate pair). Trace JSON is captured
    // inside only for completions over the slow threshold.
    QueryFlightRecord record;
    record.query_class = QueryClassToString(ticket->query_class_);
    record.status = response.status.code();
    record.key_hash = ticket->cache_key_.empty()
                          ? 0
                          : FlightRecorder::HashKey(ticket->cache_key_);
    record.queue_us = static_cast<uint64_t>(response.queue_ms * 1000.0);
    record.exec_us = static_cast<uint64_t>(response.exec_ms * 1000.0);
    record.epoch = response.epoch;
    record.answers = static_cast<uint32_t>(response.answers.size());
    record.cache_hit = response.cache_hit;
    options_.flight_recorder->Record(record, ticket->request_.trace);
  }
  if (response.status.IsCancelled() || response.status.IsDeadlineExceeded()) {
    // Lifecycle journal: cancellations and deadline expiries are the
    // completions an operator reconstructs after the fact.
    events_->Record(EventSeverity::kWarn, "service",
                    std::string(StatusCodeToString(response.status.code())) +
                        ": " + response.status.message());
  }
  if (metrics_ != nullptr) {
    switch (response.status.code()) {
      case StatusCode::kOk:
        metrics_->completed_ok->Increment();
        break;
      case StatusCode::kCancelled:
        metrics_->completed_cancelled->Increment();
        break;
      case StatusCode::kDeadlineExceeded:
        metrics_->completed_deadline->Increment();
        break;
      default:
        metrics_->completed_error->Increment();
        break;
    }
    if (exec != nullptr) {
      metrics_->exec_us[static_cast<size_t>(ticket->query_class_)]->Observe(
          static_cast<uint64_t>(response.exec_ms * 1000.0));
    }
  }
  {
    MutexLock lock(stats_mu_);
    switch (response.status.code()) {
      case StatusCode::kOk:
        ++stats_.completed;
        break;
      case StatusCode::kCancelled:
        ++stats_.cancelled;
        break;
      case StatusCode::kDeadlineExceeded:
        ++stats_.deadline_exceeded;
        break;
      default:
        ++stats_.failed;
        break;
    }
    ClassAggregate& agg =
        stats_.per_class[static_cast<size_t>(ticket->query_class_)];
    ++agg.queries;
    agg.queue_ms += response.queue_ms;
    if (ticket->used_cache_) ++agg.cache_lookups;
    if (response.cache_hit) ++agg.cache_hits;
    if (!response.status.ok()) ++agg.failures;
    // exec is non-null exactly when the request reached the engine; a
    // queued-dead completion counts toward neither hits nor exec time.
    if (exec != nullptr) {
      ++agg.executed;
      agg.exec_ms += response.exec_ms;
      agg.eval.MergeFrom(exec->eval);
      agg.join_rows += exec->join_rows;
      agg.max_join_live = std::max(agg.max_join_live, exec->max_join_live);
    }
  }
  {
    MutexLock lock(ticket->mu_);
    ticket->response_ = std::move(response);
    ticket->done_ = true;
  }
  ticket->cv_.NotifyAll();
}

}  // namespace omega
