// Aggregate serving statistics: admission / completion counters, cache
// counters, and per-query-class aggregates (queue wait, execution time,
// cache hit rate, merged evaluator counters and rank-join operator rows) —
// what the concurrent shell driver's `.stats` prints and what bench_service
// reports alongside throughput.
//
// Concurrency: these are plain value types with no interior locking. The
// live instance inside QueryService is guarded as a whole — it is declared
// OMEGA_GUARDED_BY(stats_mu_) there, so every accumulation into a
// ClassAggregate is lock-checked at compile time — and what stats() returns
// is a private copy taken under that lock, safe to read freely.
#ifndef OMEGA_SERVICE_SERVICE_STATS_H_
#define OMEGA_SERVICE_SERVICE_STATS_H_

#include <cstdint>
#include <string>

#include "eval/answer.h"
#include "rpq/query.h"
#include "service/result_cache.h"

namespace omega {

/// Coarse workload class of a query, used to bucket serving aggregates.
/// A query holding both APPROX and RELAX conjuncts is kMixed.
enum class QueryClass : uint8_t {
  kExact = 0,
  kApprox = 1,
  kRelax = 2,
  kMixed = 3,
};
inline constexpr size_t kNumQueryClasses = 4;

const char* QueryClassToString(QueryClass c);

/// Buckets `query` by the flexible-operator modes it uses.
QueryClass ClassifyQuery(const Query& query);

/// Per-class serving aggregate. `eval` merges the whole-stream counters of
/// executed (cache-miss) queries; `join_rows` / `max_join_live` come from
/// the per-operator OperatorStats of the compiled plan's rank joins.
struct ClassAggregate {
  uint64_t queries = 0;      ///< completed requests (hits + misses), any status
  /// Cache-generation counters: requests that consulted the result cache
  /// and how many of them hit. Both reset when the cache generation turns
  /// over — QueryService::InvalidateCache() and SwapDataset() — so the
  /// hit rate always describes the cache that is actually serving (a rate
  /// diluted by pre-invalidation lookups would be misleading).
  uint64_t cache_hits = 0;
  uint64_t cache_lookups = 0;
  uint64_t executed = 0;     ///< requests that reached the engine (a
                             ///< queued-dead request is neither hit nor
                             ///< executed)
  uint64_t failures = 0;     ///< non-OK completions (deadline/cancel/budget/...)
  double queue_ms = 0;       ///< total admission-queue wait
  double exec_ms = 0;        ///< total engine execution time (executed only)
  EvaluatorStats eval;       ///< merged stream stats of executed queries
  uint64_t join_rows = 0;    ///< rows released by rank-join operators
  uint64_t max_join_live = 0;///< largest join tables+heap high-water seen

  /// Hit rate over cache lookups of the current cache generation (see the
  /// counter comment above; not over `queries`, which also counts
  /// cache-bypassing and pre-invalidation requests).
  double CacheHitRate() const {
    return cache_lookups == 0 ? 0.0
                              : static_cast<double>(cache_hits) /
                                    static_cast<double>(cache_lookups);
  }
  double AvgQueueMs() const {
    return queries == 0 ? 0.0 : queue_ms / static_cast<double>(queries);
  }
  /// Mean over requests that actually ran the engine.
  double AvgExecMs() const {
    return executed == 0 ? 0.0 : exec_ms / static_cast<double>(executed);
  }
};

/// Snapshot returned by QueryService::stats().
struct ServiceStats {
  uint64_t submitted = 0;          ///< admitted submissions (incl. hits)
  uint64_t rejected = 0;           ///< admission-queue-full rejections
  uint64_t completed = 0;          ///< completions with OK status
  uint64_t cancelled = 0;          ///< completions with kCancelled
  uint64_t deadline_exceeded = 0;  ///< completions with kDeadlineExceeded
  uint64_t failed = 0;             ///< completions with any other error
  uint64_t dataset_epoch = 0;      ///< id of the serving epoch (0 = initial)
  uint64_t dataset_swaps = 0;      ///< SwapDataset() calls so far
  /// Point-in-time gauges sampled when stats() is called (not accumulated
  /// under stats_mu_ like the counters above): requests waiting in the
  /// admission queue and requests currently executing on workers.
  uint64_t queue_depth = 0;
  uint64_t in_flight = 0;
  /// Epoch lifecycle timing. An epoch is *retired* when SwapDataset()
  /// unpublishes it and *drained* when the last in-flight query drops its
  /// pin and the dataset is actually released — the gap is how long old
  /// queries kept the old substrate (and its mmap) alive.
  double swap_ms_total = 0;        ///< total SwapDataset publish time
  uint64_t epochs_retired = 0;
  uint64_t epochs_drained = 0;
  double drain_ms_total = 0;       ///< retire -> last-pin-drop, drained epochs
  double drain_ms_max = 0;
  /// Counters of the *current* epoch's cache (each epoch gets a fresh
  /// cache; InvalidateCache() also resets these within an epoch).
  ResultCacheStats cache;
  ClassAggregate per_class[kNumQueryClasses];

  /// Multi-line human-readable rendering (the shell's `.stats` table).
  std::string ToString() const;
};

}  // namespace omega

#endif  // OMEGA_SERVICE_SERVICE_STATS_H_
