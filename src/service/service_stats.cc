#include "service/service_stats.h"

#include <cstdio>

namespace omega {

const char* QueryClassToString(QueryClass c) {
  switch (c) {
    case QueryClass::kExact:
      return "EXACT";
    case QueryClass::kApprox:
      return "APPROX";
    case QueryClass::kRelax:
      return "RELAX";
    case QueryClass::kMixed:
      return "MIXED";
  }
  return "?";
}

QueryClass ClassifyQuery(const Query& query) {
  bool approx = false;
  bool relax = false;
  for (const Conjunct& c : query.conjuncts) {
    approx |= c.mode == ConjunctMode::kApprox;
    relax |= c.mode == ConjunctMode::kRelax;
  }
  if (approx && relax) return QueryClass::kMixed;
  if (relax) return QueryClass::kRelax;
  if (approx) return QueryClass::kApprox;
  return QueryClass::kExact;
}

std::string ServiceStats::ToString() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "service: %llu submitted, %llu rejected, %llu ok, "
                "%llu cancelled, %llu deadline, %llu failed, "
                "epoch %llu (%llu swaps)\n",
                static_cast<unsigned long long>(submitted),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(cancelled),
                static_cast<unsigned long long>(deadline_exceeded),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(dataset_epoch),
                static_cast<unsigned long long>(dataset_swaps));
  out += line;
  std::snprintf(line, sizeof(line),
                "load:    %llu queued, %llu in flight\n",
                static_cast<unsigned long long>(queue_depth),
                static_cast<unsigned long long>(in_flight));
  out += line;
  std::snprintf(line, sizeof(line),
                "cache:   %llu hits, %llu misses, %llu insertions, "
                "%llu evictions, %zu resident\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.insertions),
                static_cast<unsigned long long>(cache.evictions),
                cache.entries);
  out += line;
  if (dataset_swaps > 0 || epochs_retired > 0) {
    std::snprintf(line, sizeof(line),
                  "epochs:  %llu retired, %llu drained, swap %8.3f ms total, "
                  "drain %8.3f ms total / %8.3f ms max\n",
                  static_cast<unsigned long long>(epochs_retired),
                  static_cast<unsigned long long>(epochs_drained),
                  swap_ms_total, drain_ms_total, drain_ms_max);
    out += line;
  }
  for (size_t i = 0; i < kNumQueryClasses; ++i) {
    const ClassAggregate& agg = per_class[i];
    if (agg.queries == 0) continue;
    std::snprintf(
        line, sizeof(line),
        "%-6s  %6llu queries  hit-rate %5.1f%%  queue %8.3f ms  "
        "exec %8.3f ms  popped %llu  join rows %llu\n",
        QueryClassToString(static_cast<QueryClass>(i)),
        static_cast<unsigned long long>(agg.queries),
        100.0 * agg.CacheHitRate(), agg.AvgQueueMs(), agg.AvgExecMs(),
        static_cast<unsigned long long>(agg.eval.tuples_popped),
        static_cast<unsigned long long>(agg.join_rows));
    out += line;
  }
  return out;
}

}  // namespace omega
