// Sharded LRU cache of top-k ranked query results. A completed top-k answer
// list is a small artifact (the ranked stream produces answers with bounded
// per-answer work, so k answers are a few hundred bytes), which makes
// caching it in front of the engine the cheapest form of serving
// infrastructure: repeated queries skip evaluation entirely.
//
// Keys are opaque strings built by QueryService from Query::CanonicalKey()
// + k (sufficient because the engine options that also shape the answer
// sequence are fixed for the owning service's lifetime — a cache shared
// across configurations would need them in the key). Values are
// shared_ptr<const ...> snapshots, so a hit never copies under the shard
// lock and an eviction never invalidates a response already handed out.
//
// Thread-safety: every method is safe to call concurrently; each shard has
// its own capability-annotated mutex guarding its LRU list + index, and the
// counters are documented relaxed atomics (common/atomics.h).
#ifndef OMEGA_SERVICE_RESULT_CACHE_H_
#define OMEGA_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/atomics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "eval/query_engine.h"
#include "obs/metrics.h"

namespace omega {

/// One cached top-k result: the answers in emission order plus whether the
/// stream was exhausted before reaching k (an exhausted entry also answers
/// any larger k; QueryService keys on k, so this is informational). Head
/// variable *names* are deliberately not stored: entries are shared across
/// alpha-renamed queries (CanonicalKey), so each response labels the
/// columns with its own query's head.
struct CachedResult {
  std::vector<QueryAnswer> answers;
  bool exhausted = false;
};

/// Counter snapshot; `entries` is the current resident entry count.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
};

/// Optional registry export for a ResultCache: process-lifetime counters
/// (obs/metrics.h) bumped alongside the cache's own generation counters.
/// Registry counters are monotonic and survive ResetCounters() — Prometheus
/// semantics — while the internal counters restart per accounting
/// generation. Null members are skipped.
struct ResultCacheExternalCounters {
  Counter* hits = nullptr;
  Counter* misses = nullptr;
  Counter* insertions = nullptr;
  Counter* evictions = nullptr;
};

class ResultCache {
 public:
  /// `capacity` bounds resident entries across all shards (>= 1 enforced);
  /// `num_shards` spreads lock contention (clamped to [1, capacity]).
  /// `external` mirrors the counters into a metrics registry (see above).
  ResultCache(size_t capacity, size_t num_shards,
              ResultCacheExternalCounters external = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached value and refreshes its recency, or null on miss.
  /// `count_miss = false` suppresses the miss counter — for re-probes of a
  /// key already counted as missed (a hit always counts).
  std::shared_ptr<const CachedResult> Lookup(const std::string& key,
                                             bool count_miss = true);

  /// Inserts or replaces `key`, evicting the shard's least-recently-used
  /// entry when the shard is at capacity.
  void Insert(const std::string& key,
              std::shared_ptr<const CachedResult> value);

  /// Invalidation hook: drops every entry (counted as evictions). Serving
  /// layers call this when the dataset behind the cached results is swapped.
  void Clear();

  /// Starts a fresh accounting generation: zeroes hits/misses/insertions/
  /// evictions (resident entries are untouched). QueryService pairs this
  /// with Clear() so hit rates always describe the current generation.
  void ResetCounters();

  ResultCacheStats stats() const;

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    Mutex mu;
    /// Front = most recently used. The index stores its own key copy (kept
    /// in sync with the list node's) — simple over clever; keys are a few
    /// hundred bytes at most.
    std::list<std::pair<std::string, std::shared_ptr<const CachedResult>>> lru
        OMEGA_GUARDED_BY(mu);
    std::unordered_map<std::string, decltype(lru)::iterator> index
        OMEGA_GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& key);

  size_t per_shard_capacity_;  ///< immutable after construction
  std::vector<std::unique_ptr<Shard>> shards_;  ///< vector itself immutable
  /// Immutable after construction; the pointed-to instruments are
  /// registry-owned relaxed-atomic cells, safe to bump from any shard.
  ResultCacheExternalCounters external_;

  // Deliberately lock-free (no capability): monotonic accounting counters
  // bumped on hot paths from any shard. Readers (stats()) accept any
  // interleaving — a snapshot may e.g. count an insertion whose entry is
  // not yet resident — so relaxed ordering is sufficient and a shared
  // counter mutex would serialise all shards on every lookup.
  RelaxedAtomic<uint64_t> hits_;
  RelaxedAtomic<uint64_t> misses_;
  RelaxedAtomic<uint64_t> insertions_;
  RelaxedAtomic<uint64_t> evictions_;
};

}  // namespace omega

#endif  // OMEGA_SERVICE_RESULT_CACHE_H_
