// On-disk layout of omega binary snapshots (the ".snap" files written by
// SnapshotWriter and mapped by SnapshotReader).
//
//   +--------------------------------------------------------------+
//   | SnapshotHeader   magic, version, flags, counts, toc offset   |
//   +--------------------------------------------------------------+
//   | TOC              section_count x SectionEntry                |
//   |                  (kind, dir, label, offset, count, checksum) |
//   +--------------------------------------------------------------+
//   | sections         raw little-endian arrays, each aligned to   |
//   |                  kSectionAlignment so the mapped spans can    |
//   |                  be handed to the store as-is                 |
//   +--------------------------------------------------------------+
//
// Sections are plain arrays (no per-element framing): string data is a char
// heap + a u64 offsets array, CSR adjacency is three arrays per
// (direction, label), and the ontology is flattened the same way. Every
// section carries an FNV-1a64 checksum over its raw bytes; `snapshot_tool
// verify` (and SnapshotReader with verify_checksums) recomputes them, while
// a plain Open only does structural validation so multi-GB files become
// queryable without faulting in every page.
//
// Integers are stored in the host's native byte order; the header's
// `endian_mark` detects a file written on a machine with the other
// endianness (rejected rather than byte-swapped — the zero-copy promise is
// the point of the format).
#ifndef OMEGA_SNAPSHOT_SNAPSHOT_FORMAT_H_
#define OMEGA_SNAPSHOT_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace omega {

inline constexpr char kSnapshotMagic[8] = {'O', 'M', 'E', 'G',
                                           'S', 'N', 'A', 'P'};
/// Version 2 added the reachability-index and distance-sketch sections; a
/// version-1 file is exactly a version-2 file without them, so the reader
/// accepts the whole [min, current] range.
inline constexpr uint32_t kSnapshotFormatVersion = 2;
inline constexpr uint32_t kSnapshotFormatVersionMin = 1;
inline constexpr uint32_t kSnapshotEndianMark = 0x01020304;
inline constexpr size_t kSectionAlignment = 64;

/// Header flag bits.
inline constexpr uint32_t kSnapshotFlagHasOntology = 1u << 0;
inline constexpr uint32_t kSnapshotFlagHasReachIndex = 1u << 1;
inline constexpr uint32_t kSnapshotFlagHasDistanceSketch = 1u << 2;

/// Section kinds. The `dir` / `label` fields of a SectionEntry are only
/// meaningful for the CSR kinds; `label == kSigmaSectionLabel` marks the
/// generic Σ union adjacency.
enum class SectionKind : uint32_t {
  kGraphLabelHeap = 1,      // char
  kGraphLabelOffsets = 2,   // u64, count = num_labels + 1
  kGraphNodeHeap = 3,       // char
  kGraphNodeOffsets = 4,    // u64, count = num_nodes + 1
  kGraphNodesByLabel = 5,   // u32 NodeId, count = num_nodes
  kCsrRows = 6,             // u32 NodeId
  kCsrOffsets = 7,          // u32, count = rows + 1
  kCsrNeighbors = 8,        // u32 NodeId
  kOntologyClassHeap = 9,   // char
  kOntologyClassOffsets = 10,     // u64
  kOntologyPropertyHeap = 11,     // char
  kOntologyPropertyOffsets = 12,  // u64
  kOntologyClassParentOffsets = 13,     // u64, count = num_classes + 1
  kOntologyClassParents = 14,           // u32 ClassId
  kOntologyPropertyParentOffsets = 15,  // u64, count = num_properties + 1
  kOntologyPropertyParents = 16,        // u32 PropertyId
  kOntologyDomains = 17,    // u32 ClassId (kInvalidClass = none)
  kOntologyRanges = 18,     // u32 ClassId (kInvalidClass = none)
  // Reachability index (v2+): six arrays per indexed (dir, label), the
  // fields of LabelReachability. `label == kSigmaSectionLabel` is the
  // sigma-union entry (matching the wildcard's sigma + type traversal).
  kReachNodes = 19,            // u32 NodeId, sorted incident nodes
  kReachComponents = 20,       // u32, count = reach nodes
  kReachIntervalOffsets = 21,  // u32 pair offsets, count = components + 1
  kReachIntervals = 22,        // u32 [lo, hi] pairs, flattened
  kReachMemberOffsets = 23,    // u32, count = components + 1
  kReachMembers = 24,          // u32 NodeId, count = reach nodes
  // Distance sketch (v2+): hub ids + row-major hubs x num_nodes hops.
  kSketchHubs = 25,            // u32 NodeId
  kSketchDistances = 26,       // u32, count = hubs * num_nodes
};

inline constexpr uint64_t kSigmaSectionLabel = ~0ull;

struct SectionEntry {
  uint32_t kind = 0;      // SectionKind
  uint32_t dir = 0;       // 0 = outgoing, 1 = incoming (CSR kinds only)
  uint64_t label = 0;     // label id / kSigmaSectionLabel (CSR kinds only)
  uint64_t offset = 0;    // absolute file offset, kSectionAlignment-aligned
  uint64_t count = 0;     // element count (element size derives from kind)
  uint64_t checksum = 0;  // FNV-1a64 over the section's raw bytes
};
static_assert(std::is_trivially_copyable_v<SectionEntry>);
static_assert(sizeof(SectionEntry) == 40);

struct SnapshotHeader {
  char magic[8] = {};             // kSnapshotMagic
  uint32_t format_version = 0;    // kSnapshotFormatVersion
  uint32_t endian_mark = 0;       // kSnapshotEndianMark as written
  uint32_t flags = 0;             // kSnapshotFlag*
  uint32_t section_count = 0;
  uint64_t file_size = 0;         // total bytes, validated against the fd
  uint64_t toc_offset = 0;        // absolute offset of the SectionEntry array
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;         // GraphStore::NumEdges()
  uint64_t num_labels = 0;
  uint64_t header_checksum = 0;   // FNV-1a64 with this field zeroed
};
static_assert(std::is_trivially_copyable_v<SnapshotHeader>);
static_assert(sizeof(SnapshotHeader) == 72);

/// FNV-1a 64-bit over raw bytes (the per-section and header checksum).
inline uint64_t Fnv1a64(const void* data, size_t size,
                        uint64_t seed = 0xcbf29ce484222325ull) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Element size of a section kind's array.
inline size_t SectionElementSize(SectionKind kind) {
  switch (kind) {
    case SectionKind::kGraphLabelHeap:
    case SectionKind::kGraphNodeHeap:
    case SectionKind::kOntologyClassHeap:
    case SectionKind::kOntologyPropertyHeap:
      return 1;
    case SectionKind::kGraphLabelOffsets:
    case SectionKind::kGraphNodeOffsets:
    case SectionKind::kOntologyClassOffsets:
    case SectionKind::kOntologyPropertyOffsets:
    case SectionKind::kOntologyClassParentOffsets:
    case SectionKind::kOntologyPropertyParentOffsets:
      return 8;
    case SectionKind::kGraphNodesByLabel:
    case SectionKind::kCsrRows:
    case SectionKind::kCsrOffsets:
    case SectionKind::kCsrNeighbors:
    case SectionKind::kOntologyClassParents:
    case SectionKind::kOntologyPropertyParents:
    case SectionKind::kOntologyDomains:
    case SectionKind::kOntologyRanges:
    case SectionKind::kReachNodes:
    case SectionKind::kReachComponents:
    case SectionKind::kReachIntervalOffsets:
    case SectionKind::kReachIntervals:
    case SectionKind::kReachMemberOffsets:
    case SectionKind::kReachMembers:
    case SectionKind::kSketchHubs:
    case SectionKind::kSketchDistances:
      return 4;
  }
  return 0;  // unknown kind (rejected by the reader)
}

const char* SectionKindToString(SectionKind kind);

}  // namespace omega

#endif  // OMEGA_SNAPSHOT_SNAPSHOT_FORMAT_H_
