#include "snapshot/snapshot_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "snapshot/snapshot_format.h"

namespace omega {
namespace {

/// fsyncs `path` (a file or directory). Crash atomicity needs both: the
/// tmp file's data must be durable *before* the rename, and the rename
/// itself lives in the parent directory's metadata.
Status SyncPath(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY
                                                : O_RDONLY);
  if (fd < 0) return Status::Internal("open for fsync failed: " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal("fsync failed: " + path);
  return Status::OK();
}

std::string ParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// One section queued for writing: its TOC metadata plus the bytes, which
/// either view a live store array or an owned flattened buffer.
struct PendingSection {
  SectionEntry entry;
  const void* data = nullptr;
  size_t bytes = 0;
  std::shared_ptr<std::vector<char>> owned;  // keep-alive for flattened data
};

class SectionList {
 public:
  template <typename T>
  void Add(SectionKind kind, std::span<const T> data, uint32_t dir = 0,
           uint64_t label = 0) {
    PendingSection section;
    section.entry.kind = static_cast<uint32_t>(kind);
    section.entry.dir = dir;
    section.entry.label = label;
    section.entry.count = data.size();
    section.data = data.data();
    section.bytes = data.size_bytes();
    sections_.push_back(std::move(section));
  }

  /// Adds a flattened (heap, offsets) string pair built from `count` names.
  void AddStrings(SectionKind heap_kind, SectionKind offsets_kind,
                  size_t count,
                  const std::function<std::string_view(size_t)>& name) {
    auto heap = std::make_shared<std::vector<char>>();
    auto offsets = std::make_shared<std::vector<char>>();
    std::vector<uint64_t> offs;
    offs.reserve(count + 1);
    offs.push_back(0);
    for (size_t i = 0; i < count; ++i) {
      const std::string_view s = name(i);
      heap->insert(heap->end(), s.begin(), s.end());
      offs.push_back(static_cast<uint64_t>(heap->size()));
    }
    offsets->resize(offs.size() * sizeof(uint64_t));
    std::memcpy(offsets->data(), offs.data(), offsets->size());

    PendingSection heap_section;
    heap_section.entry.kind = static_cast<uint32_t>(heap_kind);
    heap_section.entry.count = heap->size();
    heap_section.data = heap->data();
    heap_section.bytes = heap->size();
    heap_section.owned = heap;
    sections_.push_back(std::move(heap_section));

    PendingSection offsets_section;
    offsets_section.entry.kind = static_cast<uint32_t>(offsets_kind);
    offsets_section.entry.count = offs.size();
    offsets_section.data = offsets->data();
    offsets_section.bytes = offsets->size();
    offsets_section.owned = offsets;
    sections_.push_back(std::move(offsets_section));
  }

  /// Adds an array the writer materialised itself (ontology flattening).
  template <typename T>
  void AddOwned(SectionKind kind, std::vector<T> values) {
    auto owned =
        std::make_shared<std::vector<char>>(values.size() * sizeof(T));
    if (!values.empty()) {
      std::memcpy(owned->data(), values.data(), owned->size());
    }
    PendingSection section;
    section.entry.kind = static_cast<uint32_t>(kind);
    section.entry.count = values.size();
    section.data = owned->data();
    section.bytes = owned->size();
    section.owned = owned;
    sections_.push_back(std::move(section));
  }

  std::vector<PendingSection>& sections() { return sections_; }

 private:
  std::vector<PendingSection> sections_;
};

size_t AlignUp(size_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

void AddCsr(SectionList* list, const CsrAdjacency& adj, uint32_t dir,
            uint64_t label) {
  list->Add(SectionKind::kCsrRows, adj.rows.span(), dir, label);
  list->Add(SectionKind::kCsrOffsets, adj.offsets.span(), dir, label);
  list->Add(SectionKind::kCsrNeighbors, adj.neighbors.span(), dir, label);
}

void AddOntologySections(SectionList* list, const Ontology& ontology) {
  const size_t num_classes = ontology.NumClasses();
  const size_t num_properties = ontology.NumProperties();
  list->AddStrings(SectionKind::kOntologyClassHeap,
                   SectionKind::kOntologyClassOffsets, num_classes,
                   [&](size_t i) {
                     return ontology.ClassName(static_cast<ClassId>(i));
                   });
  list->AddStrings(SectionKind::kOntologyPropertyHeap,
                   SectionKind::kOntologyPropertyOffsets, num_properties,
                   [&](size_t i) {
                     return ontology.PropertyName(static_cast<PropertyId>(i));
                   });

  // Parent lists, flattened CSR-style: offsets[i]..offsets[i+1] indexes the
  // concatenated parent id array.
  std::vector<uint64_t> class_parent_offsets{0};
  std::vector<uint32_t> class_parents;
  for (size_t c = 0; c < num_classes; ++c) {
    for (ClassId p : ontology.ClassParents(static_cast<ClassId>(c))) {
      class_parents.push_back(p);
    }
    class_parent_offsets.push_back(class_parents.size());
  }
  list->AddOwned(SectionKind::kOntologyClassParentOffsets,
                 std::move(class_parent_offsets));
  list->AddOwned(SectionKind::kOntologyClassParents,
                 std::move(class_parents));

  std::vector<uint64_t> property_parent_offsets{0};
  std::vector<uint32_t> property_parents;
  std::vector<uint32_t> domains;
  std::vector<uint32_t> ranges;
  for (size_t p = 0; p < num_properties; ++p) {
    const PropertyId pid = static_cast<PropertyId>(p);
    for (PropertyId parent : ontology.PropertyParents(pid)) {
      property_parents.push_back(parent);
    }
    property_parent_offsets.push_back(property_parents.size());
    domains.push_back(ontology.DomainOf(pid).value_or(kInvalidClass));
    ranges.push_back(ontology.RangeOf(pid).value_or(kInvalidClass));
  }
  list->AddOwned(SectionKind::kOntologyPropertyParentOffsets,
                 std::move(property_parent_offsets));
  list->AddOwned(SectionKind::kOntologyPropertyParents,
                 std::move(property_parents));
  list->AddOwned(SectionKind::kOntologyDomains, std::move(domains));
  list->AddOwned(SectionKind::kOntologyRanges, std::move(ranges));
}

void AddReachabilitySections(SectionList* list,
                             const ReachabilityIndex& index) {
  for (const ReachabilityIndex::Entry& entry : index.entries()) {
    const uint32_t dir = entry.dir == Direction::kIncoming ? 1 : 0;
    const uint64_t label = entry.label == ReachabilityIndex::kSigmaLabel
                               ? kSigmaSectionLabel
                               : entry.label;
    const LabelReachability& reach = *entry.reach;
    list->Add(SectionKind::kReachNodes, reach.nodes.span(), dir, label);
    list->Add(SectionKind::kReachComponents, reach.comp_of.span(), dir, label);
    list->Add(SectionKind::kReachIntervalOffsets,
              reach.interval_offsets.span(), dir, label);
    list->Add(SectionKind::kReachIntervals, reach.intervals.span(), dir,
              label);
    list->Add(SectionKind::kReachMemberOffsets, reach.member_offsets.span(),
              dir, label);
    list->Add(SectionKind::kReachMembers, reach.members.span(), dir, label);
  }
}

}  // namespace

Status SnapshotWriter::Write(const GraphStore& graph, const Ontology* ontology,
                             const std::string& path) const {
  return Write(graph, ontology, nullptr, nullptr, path);
}

Status SnapshotWriter::Write(const GraphStore& graph, const Ontology* ontology,
                             const ReachabilityIndex* reachability,
                             const DistanceSketch* sketch,
                             const std::string& path) const {
  SectionList list;

  // --- Graph sections, straight off the frozen store's arrays ------------
  const LabelDictionary& labels = graph.labels();
  list.AddStrings(SectionKind::kGraphLabelHeap,
                  SectionKind::kGraphLabelOffsets, labels.size(),
                  [&](size_t i) {
                    return labels.Name(static_cast<LabelId>(i));
                  });
  list.Add(SectionKind::kGraphNodeHeap, graph.node_labels_.heap());
  list.Add(SectionKind::kGraphNodeOffsets, graph.node_labels_.offsets());
  list.Add(SectionKind::kGraphNodesByLabel, graph.nodes_by_label_.span());
  for (uint32_t dir = 0; dir < 2; ++dir) {
    for (size_t l = 0; l < graph.adjacency_[dir].size(); ++l) {
      AddCsr(&list, graph.adjacency_[dir][l], dir, l);
    }
    AddCsr(&list, graph.sigma_union_[dir], dir, kSigmaSectionLabel);
  }
  if (ontology != nullptr) AddOntologySections(&list, *ontology);

  // --- Index sections (v2): reachability entries + distance sketch -------
  const bool has_reach = reachability != nullptr && !reachability->empty();
  const bool has_sketch = sketch != nullptr && !sketch->empty();
  if (has_reach) AddReachabilitySections(&list, *reachability);
  if (has_sketch) {
    list.Add(SectionKind::kSketchHubs, sketch->hubs());
    list.Add(SectionKind::kSketchDistances, sketch->distances());
  }

  // --- Lay out: header, TOC, aligned sections ----------------------------
  SnapshotHeader header;
  std::memcpy(header.magic, kSnapshotMagic, sizeof(header.magic));
  header.format_version = kSnapshotFormatVersion;
  header.endian_mark = kSnapshotEndianMark;
  header.flags = (ontology != nullptr ? kSnapshotFlagHasOntology : 0) |
                 (has_reach ? kSnapshotFlagHasReachIndex : 0) |
                 (has_sketch ? kSnapshotFlagHasDistanceSketch : 0);
  header.section_count = static_cast<uint32_t>(list.sections().size());
  header.num_nodes = graph.NumNodes();
  header.num_edges = graph.NumEdges();
  header.num_labels = labels.size();
  header.toc_offset = AlignUp(sizeof(SnapshotHeader));

  size_t cursor =
      AlignUp(header.toc_offset +
              list.sections().size() * sizeof(SectionEntry));
  for (PendingSection& section : list.sections()) {
    section.entry.offset = cursor;
    section.entry.checksum = Fnv1a64(section.data, section.bytes);
    cursor = AlignUp(cursor + section.bytes);
  }
  header.file_size = cursor;
  header.header_checksum = 0;
  header.header_checksum = Fnv1a64(&header, sizeof(header));

  // --- Write to <path>.tmp, then rename into place -----------------------
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::InvalidArgument("cannot open for write: " + tmp_path);
    }
    std::vector<char> zeros(kSectionAlignment, 0);
    size_t written = 0;
    auto pad_to = [&](size_t offset) {
      while (written < offset) {
        const size_t chunk =
            std::min(zeros.size(), offset - written);
        out.write(zeros.data(), static_cast<std::streamsize>(chunk));
        written += chunk;
      }
    };
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    written += sizeof(header);
    pad_to(header.toc_offset);
    for (const PendingSection& section : list.sections()) {
      out.write(reinterpret_cast<const char*>(&section.entry),
                sizeof(SectionEntry));
      written += sizeof(SectionEntry);
    }
    for (const PendingSection& section : list.sections()) {
      pad_to(section.entry.offset);
      if (section.bytes > 0) {
        out.write(static_cast<const char*>(section.data),
                  static_cast<std::streamsize>(section.bytes));
      }
      written += section.bytes;
    }
    pad_to(header.file_size);
    out.flush();
    if (!out) {
      std::remove(tmp_path.c_str());
      return Status::Internal("write failed: " + tmp_path);
    }
  }
  // Durability order: data -> rename -> directory entry. Without the first
  // fsync a crash shortly after Write() returns can publish the final name
  // over unflushed (truncated/zero) pages; without the last one the rename
  // itself may not survive.
  Status synced = SyncPath(tmp_path, /*directory=*/false);
  if (!synced.ok()) {
    std::remove(tmp_path.c_str());
    return synced;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("rename failed: " + tmp_path + " -> " + path);
  }
  return SyncPath(ParentDirectory(path), /*directory=*/true);
}

Status WriteSnapshot(const GraphStore& graph, const Ontology* ontology,
                     const std::string& path) {
  return SnapshotWriter().Write(graph, ontology, path);
}

Status WriteSnapshot(const GraphStore& graph, const Ontology* ontology,
                     const ReachabilityIndex* reachability,
                     const DistanceSketch* sketch, const std::string& path) {
  return SnapshotWriter().Write(graph, ontology, reachability, sketch, path);
}

}  // namespace omega
