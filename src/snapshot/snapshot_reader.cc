#include "snapshot/snapshot_reader.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>
#include <tuple>

#include "common/lifetime_annotations.h"
#include "common/timer.h"
#include "index/distance_sketch.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "index/index_manager.h"
#include "index/reachability_index.h"
#include "snapshot/snapshot_writer.h"

namespace omega {

const char* SectionKindToString(SectionKind kind) {
  switch (kind) {
    case SectionKind::kGraphLabelHeap: return "graph.label_heap";
    case SectionKind::kGraphLabelOffsets: return "graph.label_offsets";
    case SectionKind::kGraphNodeHeap: return "graph.node_heap";
    case SectionKind::kGraphNodeOffsets: return "graph.node_offsets";
    case SectionKind::kGraphNodesByLabel: return "graph.nodes_by_label";
    case SectionKind::kCsrRows: return "csr.rows";
    case SectionKind::kCsrOffsets: return "csr.offsets";
    case SectionKind::kCsrNeighbors: return "csr.neighbors";
    case SectionKind::kOntologyClassHeap: return "ontology.class_heap";
    case SectionKind::kOntologyClassOffsets: return "ontology.class_offsets";
    case SectionKind::kOntologyPropertyHeap: return "ontology.property_heap";
    case SectionKind::kOntologyPropertyOffsets:
      return "ontology.property_offsets";
    case SectionKind::kOntologyClassParentOffsets:
      return "ontology.class_parent_offsets";
    case SectionKind::kOntologyClassParents: return "ontology.class_parents";
    case SectionKind::kOntologyPropertyParentOffsets:
      return "ontology.property_parent_offsets";
    case SectionKind::kOntologyPropertyParents:
      return "ontology.property_parents";
    case SectionKind::kOntologyDomains: return "ontology.domains";
    case SectionKind::kOntologyRanges: return "ontology.ranges";
    case SectionKind::kReachNodes: return "reach.nodes";
    case SectionKind::kReachComponents: return "reach.components";
    case SectionKind::kReachIntervalOffsets: return "reach.interval_offsets";
    case SectionKind::kReachIntervals: return "reach.intervals";
    case SectionKind::kReachMemberOffsets: return "reach.member_offsets";
    case SectionKind::kReachMembers: return "reach.members";
    case SectionKind::kSketchHubs: return "sketch.hubs";
    case SectionKind::kSketchDistances: return "sketch.distances";
  }
  return "unknown";
}

namespace {

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("snapshot corrupt: " + what);
}

/// Parsed + bounds-checked TOC over one mapping.
class SectionIndex {
 public:
  static Result<SectionIndex> Build(const MappedFile& file,
                                    const SnapshotHeader& header,
                                    bool verify_checksums) {
    SectionIndex index(&file);
    const uint64_t toc_bytes =
        static_cast<uint64_t>(header.section_count) * sizeof(SectionEntry);
    if (header.toc_offset % alignof(SectionEntry) != 0 ||
        header.toc_offset > file.size() ||
        toc_bytes > file.size() - header.toc_offset) {
      return Corrupt("table of contents out of bounds");
    }
    index.entries_.resize(header.section_count);
    if (header.section_count > 0) {
      std::memcpy(index.entries_.data(), file.data() + header.toc_offset,
                  toc_bytes);
    }
    for (const SectionEntry& entry : index.entries_) {
      const size_t elem =
          SectionElementSize(static_cast<SectionKind>(entry.kind));
      if (elem == 0) return Corrupt("unknown section kind");
      if (entry.offset % kSectionAlignment != 0) {
        return Corrupt("misaligned section");
      }
      if (entry.offset > file.size() ||
          entry.count > (file.size() - entry.offset) / elem) {
        return Corrupt(std::string("section out of bounds: ") +
                       SectionKindToString(
                           static_cast<SectionKind>(entry.kind)));
      }
      if (verify_checksums) {
        const uint64_t actual =
            Fnv1a64(file.data() + entry.offset, entry.count * elem);
        if (actual != entry.checksum) {
          return Corrupt(std::string("checksum mismatch in section ") +
                         SectionKindToString(
                             static_cast<SectionKind>(entry.kind)));
        }
      }
      auto [it, inserted] = index.by_key_.emplace(
          std::make_tuple(entry.kind, entry.dir, entry.label), &entry);
      (void)it;
      if (!inserted) return Corrupt("duplicate section");
    }
    return index;
  }

  /// Typed span of a section; fails if absent or the count differs from
  /// `expected_count` (pass SIZE_MAX to accept any count). The span views
  /// the mapping; binding it to *this is the conservative bound (the index
  /// never outlives the MappedFile it was built over).
  template <typename T>
  Result<std::span<const T>> Get(SectionKind kind, uint32_t dir,
                                 uint64_t label, uint64_t expected_count)
      const OMEGA_LIFETIME_BOUND {
    auto it = by_key_.find(
        std::make_tuple(static_cast<uint32_t>(kind), dir, label));
    if (it == by_key_.end()) {
      return Corrupt(std::string("missing section ") +
                     SectionKindToString(kind));
    }
    const SectionEntry& entry = *it->second;
    if (expected_count != SIZE_MAX && entry.count != expected_count) {
      return Corrupt(std::string("unexpected element count in section ") +
                     SectionKindToString(kind));
    }
    if (SectionElementSize(kind) != sizeof(T)) {
      return Corrupt(std::string("element size mismatch in section ") +
                     SectionKindToString(kind));
    }
    return file_->ViewAt<T>(entry.offset, entry.count);
  }

  /// The (dir, label) keys present for `kind`, in TOC-map order
  /// (deterministic: sorted by dir then label).
  std::vector<std::pair<uint32_t, uint64_t>> KeysOf(SectionKind kind) const {
    std::vector<std::pair<uint32_t, uint64_t>> keys;
    for (const auto& [key, entry] : by_key_) {
      (void)entry;
      if (std::get<0>(key) == static_cast<uint32_t>(kind)) {
        keys.emplace_back(std::get<1>(key), std::get<2>(key));
      }
    }
    return keys;
  }

 private:
  explicit SectionIndex(const MappedFile* file) : file_(file) {}

  const MappedFile* file_;
  std::vector<SectionEntry> entries_;
  std::map<std::tuple<uint32_t, uint32_t, uint64_t>, const SectionEntry*>
      by_key_;
};

Result<SnapshotHeader> ReadHeader(const MappedFile& file,
                                  const std::string& path) {
  if (file.size() < sizeof(SnapshotHeader)) {
    return Corrupt("file shorter than the snapshot header: " + path);
  }
  SnapshotHeader header;
  std::memcpy(&header, file.data(), sizeof(header));
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return Status::InvalidArgument("not an omega snapshot: " + path);
  }
  if (header.endian_mark != kSnapshotEndianMark) {
    return Status::InvalidArgument(
        "snapshot written with a different byte order: " + path);
  }
  if (header.format_version < kSnapshotFormatVersionMin ||
      header.format_version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot format version " +
        std::to_string(header.format_version) + " (this build reads " +
        std::to_string(kSnapshotFormatVersionMin) + ".." +
        std::to_string(kSnapshotFormatVersion) + "): " + path);
  }
  if (header.format_version < 2 &&
      (header.flags &
       (kSnapshotFlagHasReachIndex | kSnapshotFlagHasDistanceSketch)) != 0) {
    return Corrupt("v1 snapshot carries v2 index flags: " + path);
  }
  SnapshotHeader zeroed = header;
  zeroed.header_checksum = 0;
  if (Fnv1a64(&zeroed, sizeof(zeroed)) != header.header_checksum) {
    return Corrupt("header checksum mismatch: " + path);
  }
  if (header.file_size != file.size()) {
    return Corrupt("header file size does not match the file (truncated?): " +
                   path);
  }
  if (header.num_nodes >= kInvalidNode || header.num_labels >= kInvalidLabel) {
    return Corrupt("node/label count exceeds the id space");
  }
  if (header.num_labels == 0) {
    return Corrupt("label section must at least contain 'type'");
  }
  return header;
}

/// Offsets arrays must start at 0, never decrease, and end at the heap
/// size — the invariant StringTable indexing and the flattened ontology
/// parent lists rely on to stay in bounds.
Status CheckOffsets(std::span<const uint64_t> offsets, uint64_t data_size,
                    const char* what) {
  if (offsets.empty() || offsets.front() != 0) {
    return Corrupt(std::string(what) + " offsets must start at 0");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Corrupt(std::string(what) + " offsets decrease");
    }
  }
  if (offsets.back() != data_size) {
    return Corrupt(std::string(what) + " offsets do not cover the data");
  }
  return Status::OK();
}

struct LoadedCsr {
  CsrAdjacency adjacency;
};

Result<LoadedCsr> LoadCsr(const SectionIndex& index, uint32_t dir,
                          uint64_t label, uint64_t num_nodes,
                          bool deep_validate) {
  Result<std::span<const NodeId>> rows =
      index.Get<NodeId>(SectionKind::kCsrRows, dir, label, SIZE_MAX);
  if (!rows.ok()) return rows.status();
  Result<std::span<const uint32_t>> offsets = index.Get<uint32_t>(
      SectionKind::kCsrOffsets, dir, label, rows->size() + 1);
  if (!offsets.ok()) return offsets.status();
  Result<std::span<const NodeId>> neighbors =
      index.Get<NodeId>(SectionKind::kCsrNeighbors, dir, label, SIZE_MAX);
  if (!neighbors.ok()) return neighbors.status();

  // The row binary search and the offsets indexing in NeighborsOf must not
  // be able to walk out of the mapped sections.
  if ((*offsets)[0] != 0) return Corrupt("csr offsets must start at 0");
  for (size_t i = 1; i < offsets->size(); ++i) {
    if ((*offsets)[i] < (*offsets)[i - 1]) {
      return Corrupt("csr offsets decrease");
    }
  }
  if (offsets->back() != neighbors->size()) {
    return Corrupt("csr offsets do not cover the neighbour array");
  }
  if (deep_validate) {
    for (size_t i = 0; i < rows->size(); ++i) {
      if ((*rows)[i] >= num_nodes ||
          (i > 0 && (*rows)[i] <= (*rows)[i - 1])) {
        return Corrupt("csr rows not strictly increasing node ids");
      }
    }
    for (NodeId n : *neighbors) {
      if (n >= num_nodes) return Corrupt("csr neighbour id out of range");
    }
  }
  LoadedCsr loaded;
  loaded.adjacency.rows = ConstArray<NodeId>::Borrowed(*rows);
  loaded.adjacency.offsets = ConstArray<uint32_t>::Borrowed(*offsets);
  loaded.adjacency.neighbors = ConstArray<NodeId>::Borrowed(*neighbors);
  return loaded;
}

Result<StringTable> LoadStringTable(const SectionIndex& index,
                                    SectionKind heap_kind,
                                    SectionKind offsets_kind, uint64_t count,
                                    const char* what) {
  Result<std::span<const char>> heap =
      index.Get<char>(heap_kind, 0, 0, SIZE_MAX);
  if (!heap.ok()) return heap.status();
  Result<std::span<const uint64_t>> offsets =
      index.Get<uint64_t>(offsets_kind, 0, 0, count + 1);
  if (!offsets.ok()) return offsets.status();
  OMEGA_RETURN_NOT_OK(CheckOffsets(*offsets, heap->size(), what));
  return StringTable::Borrowed(*heap, *offsets);
}

Result<Ontology> RebuildOntology(const SectionIndex& index,
                                 bool deep_validate) {
  Result<std::span<const uint64_t>> class_offsets = index.Get<uint64_t>(
      SectionKind::kOntologyClassOffsets, 0, 0, SIZE_MAX);
  if (!class_offsets.ok()) return class_offsets.status();
  if (class_offsets->empty()) return Corrupt("empty ontology class offsets");
  const uint64_t num_classes = class_offsets->size() - 1;
  Result<StringTable> classes = LoadStringTable(
      index, SectionKind::kOntologyClassHeap,
      SectionKind::kOntologyClassOffsets, num_classes, "ontology class");
  if (!classes.ok()) return classes.status();

  Result<std::span<const uint64_t>> property_offsets = index.Get<uint64_t>(
      SectionKind::kOntologyPropertyOffsets, 0, 0, SIZE_MAX);
  if (!property_offsets.ok()) return property_offsets.status();
  if (property_offsets->empty()) {
    return Corrupt("empty ontology property offsets");
  }
  const uint64_t num_properties = property_offsets->size() - 1;
  Result<StringTable> properties =
      LoadStringTable(index, SectionKind::kOntologyPropertyHeap,
                      SectionKind::kOntologyPropertyOffsets, num_properties,
                      "ontology property");
  if (!properties.ok()) return properties.status();

  Result<std::span<const uint64_t>> class_parent_offsets =
      index.Get<uint64_t>(SectionKind::kOntologyClassParentOffsets, 0, 0,
                          num_classes + 1);
  if (!class_parent_offsets.ok()) return class_parent_offsets.status();
  Result<std::span<const uint32_t>> class_parents = index.Get<uint32_t>(
      SectionKind::kOntologyClassParents, 0, 0, SIZE_MAX);
  if (!class_parents.ok()) return class_parents.status();
  OMEGA_RETURN_NOT_OK(CheckOffsets(*class_parent_offsets,
                                   class_parents->size(), "class parent"));

  Result<std::span<const uint64_t>> property_parent_offsets =
      index.Get<uint64_t>(SectionKind::kOntologyPropertyParentOffsets, 0, 0,
                          num_properties + 1);
  if (!property_parent_offsets.ok()) {
    return property_parent_offsets.status();
  }
  Result<std::span<const uint32_t>> property_parents = index.Get<uint32_t>(
      SectionKind::kOntologyPropertyParents, 0, 0, SIZE_MAX);
  if (!property_parents.ok()) return property_parents.status();
  OMEGA_RETURN_NOT_OK(CheckOffsets(*property_parent_offsets,
                                   property_parents->size(),
                                   "property parent"));

  Result<std::span<const uint32_t>> domains = index.Get<uint32_t>(
      SectionKind::kOntologyDomains, 0, 0, num_properties);
  if (!domains.ok()) return domains.status();
  Result<std::span<const uint32_t>> ranges = index.Get<uint32_t>(
      SectionKind::kOntologyRanges, 0, 0, num_properties);
  if (!ranges.ok()) return ranges.status();

  (void)deep_validate;  // the id range checks below are cheap; always run

  // Rebuild through OntologyBuilder in id order: ids come out identical to
  // the ontology that was serialized, and the derived structures (ancestor
  // steps, down-sets) are recomputed by the same deterministic Finalize the
  // in-memory build uses — so RELAX behaves byte-identically.
  OntologyBuilder builder;
  for (uint64_t c = 0; c < num_classes; ++c) {
    if (builder.GetOrAddClass((*classes)[c]) != c) {
      return Corrupt("duplicate ontology class name");
    }
  }
  for (uint64_t p = 0; p < num_properties; ++p) {
    if (builder.GetOrAddProperty((*properties)[p]) != p) {
      return Corrupt("duplicate ontology property name");
    }
  }
  for (uint64_t c = 0; c < num_classes; ++c) {
    for (uint64_t i = (*class_parent_offsets)[c];
         i < (*class_parent_offsets)[c + 1]; ++i) {
      const uint32_t parent = (*class_parents)[i];
      if (parent >= num_classes) {
        return Corrupt("ontology class parent id out of range");
      }
      OMEGA_RETURN_NOT_OK(
          builder.AddSubclass((*classes)[c], (*classes)[parent]));
    }
  }
  for (uint64_t p = 0; p < num_properties; ++p) {
    for (uint64_t i = (*property_parent_offsets)[p];
         i < (*property_parent_offsets)[p + 1]; ++i) {
      const uint32_t parent = (*property_parents)[i];
      if (parent >= num_properties) {
        return Corrupt("ontology property parent id out of range");
      }
      OMEGA_RETURN_NOT_OK(
          builder.AddSubproperty((*properties)[p], (*properties)[parent]));
    }
    if ((*domains)[p] != kInvalidClass) {
      if ((*domains)[p] >= num_classes) {
        return Corrupt("ontology domain class id out of range");
      }
      OMEGA_RETURN_NOT_OK(
          builder.SetDomain((*properties)[p], (*classes)[(*domains)[p]]));
    }
    if ((*ranges)[p] != kInvalidClass) {
      if ((*ranges)[p] >= num_classes) {
        return Corrupt("ontology range class id out of range");
      }
      OMEGA_RETURN_NOT_OK(
          builder.SetRange((*properties)[p], (*classes)[(*ranges)[p]]));
    }
  }
  return std::move(builder).Finalize();
}

// One (dir, label) reachability entry: six borrowed arrays, then the
// structural half of LabelReachability::Validate on every open (the index
// is probed with untrusted offsets) and the deep half under Verify.
Result<LabelReachability> LoadReachability(const SectionIndex& index,
                                           uint32_t dir, uint64_t label,
                                           uint64_t num_nodes,
                                           bool deep_validate) {
  Result<std::span<const NodeId>> nodes =
      index.Get<NodeId>(SectionKind::kReachNodes, dir, label, SIZE_MAX);
  if (!nodes.ok()) return nodes.status();
  Result<std::span<const uint32_t>> comp_of = index.Get<uint32_t>(
      SectionKind::kReachComponents, dir, label, nodes->size());
  if (!comp_of.ok()) return comp_of.status();
  Result<std::span<const uint32_t>> interval_offsets = index.Get<uint32_t>(
      SectionKind::kReachIntervalOffsets, dir, label, SIZE_MAX);
  if (!interval_offsets.ok()) return interval_offsets.status();
  Result<std::span<const uint32_t>> intervals = index.Get<uint32_t>(
      SectionKind::kReachIntervals, dir, label, SIZE_MAX);
  if (!intervals.ok()) return intervals.status();
  Result<std::span<const uint32_t>> member_offsets = index.Get<uint32_t>(
      SectionKind::kReachMemberOffsets, dir, label, interval_offsets->size());
  if (!member_offsets.ok()) return member_offsets.status();
  Result<std::span<const NodeId>> members =
      index.Get<NodeId>(SectionKind::kReachMembers, dir, label, nodes->size());
  if (!members.ok()) return members.status();

  LabelReachability reach;
  reach.nodes = ConstArray<NodeId>::Borrowed(*nodes);
  reach.comp_of = ConstArray<uint32_t>::Borrowed(*comp_of);
  reach.interval_offsets = ConstArray<uint32_t>::Borrowed(*interval_offsets);
  reach.intervals = ConstArray<uint32_t>::Borrowed(*intervals);
  reach.member_offsets = ConstArray<uint32_t>::Borrowed(*member_offsets);
  reach.members = ConstArray<NodeId>::Borrowed(*members);
  OMEGA_RETURN_NOT_OK(reach.Validate(num_nodes, deep_validate));
  return reach;
}

Result<DistanceSketch> LoadSketch(const SectionIndex& index,
                                  uint64_t num_nodes) {
  Result<std::span<const NodeId>> hubs =
      index.Get<NodeId>(SectionKind::kSketchHubs, 0, 0, SIZE_MAX);
  if (!hubs.ok()) return hubs.status();
  if (num_nodes != 0 && hubs->size() > SIZE_MAX / num_nodes) {
    return Corrupt("sketch hub count overflows the row shape");
  }
  Result<std::span<const uint32_t>> distances = index.Get<uint32_t>(
      SectionKind::kSketchDistances, 0, 0, hubs->size() * num_nodes);
  if (!distances.ok()) return distances.status();
  return DistanceSketch::FromParts(ConstArray<NodeId>::Borrowed(*hubs),
                                   ConstArray<uint32_t>::Borrowed(*distances),
                                   num_nodes);
}

}  // namespace

Result<std::shared_ptr<const Dataset>> SnapshotReader::Open(
    const std::string& path) {
  return Open(path, Options());
}

Result<std::shared_ptr<const Dataset>> SnapshotReader::Open(
    const std::string& path, const Options& options) {
  // Load/verify timing for the observability layer. Opens are cold-path
  // (service construction, hot-swap), so the registry lookups per call are
  // negligible next to the mmap + validation work they measure.
  const Timer open_timer;
  Result<std::shared_ptr<const Dataset>> dataset = OpenUntimed(path, options);
  const uint64_t elapsed_us = static_cast<uint64_t>(open_timer.ElapsedUs());
  MetricsRegistry* const registry = MetricsRegistry::Global();
  if (options.verify_checksums || options.deep_validate) {
    registry
        ->GetHistogram("omega_snapshot_verify_us",
                       "Checksummed / deep-validated snapshot open time")
        ->Observe(elapsed_us);
  } else {
    registry
        ->GetHistogram("omega_snapshot_open_us",
                       "Structural snapshot open time")
        ->Observe(elapsed_us);
  }
  registry
      ->GetCounter("omega_snapshot_opens_total",
                   "Snapshot opens by outcome", dataset.ok()
                                                    ? "outcome=\"ok\""
                                                    : "outcome=\"error\"")
      ->Increment();
  // Lifecycle journal: open/verify outcomes are exactly the events an
  // operator correlates with a swap that did (or did not) happen.
  {
    const char* mode = (options.verify_checksums || options.deep_validate)
                           ? "verified open"
                           : "open";
    std::string msg = std::string("snapshot ") + mode + " '" + path + "': " +
                      (dataset.ok() ? "ok" : dataset.status().ToString()) +
                      " (" + std::to_string(elapsed_us) + " us)";
    EventLog::Global()->Record(
        dataset.ok() ? EventSeverity::kInfo : EventSeverity::kError,
        "snapshot", std::move(msg));
  }
  return dataset;
}

Result<std::shared_ptr<const Dataset>> SnapshotReader::OpenUntimed(
    const std::string& path, const Options& options) {
  Result<std::shared_ptr<const MappedFile>> file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  Result<SnapshotHeader> header = ReadHeader(**file, path);
  if (!header.ok()) return header.status();
  Result<SectionIndex> index =
      SectionIndex::Build(**file, *header, options.verify_checksums);
  if (!index.ok()) return index.status();

  auto dataset = std::make_shared<Dataset>();
  dataset->backing_ = *file;
  GraphStore& graph = dataset->graph_;

  // --- Strings + FindNode permutation ------------------------------------
  Result<StringTable> label_table = LoadStringTable(
      *index, SectionKind::kGraphLabelHeap, SectionKind::kGraphLabelOffsets,
      header->num_labels, "graph label");
  if (!label_table.ok()) return label_table.status();
  Result<LabelDictionary> labels =
      LabelDictionary::FromBorrowedTable(std::move(*label_table));
  if (!labels.ok()) return labels.status();
  graph.labels_ = std::move(*labels);

  Result<StringTable> node_table = LoadStringTable(
      *index, SectionKind::kGraphNodeHeap, SectionKind::kGraphNodeOffsets,
      header->num_nodes, "graph node");
  if (!node_table.ok()) return node_table.status();
  graph.node_labels_ = std::move(*node_table);

  Result<std::span<const NodeId>> by_label = index->Get<NodeId>(
      SectionKind::kGraphNodesByLabel, 0, 0, header->num_nodes);
  if (!by_label.ok()) return by_label.status();
  for (NodeId n : *by_label) {
    if (n >= header->num_nodes) {
      return Corrupt("nodes_by_label id out of range");
    }
  }
  if (options.deep_validate) {
    for (size_t i = 1; i < by_label->size(); ++i) {
      if (!(graph.node_labels_[(*by_label)[i - 1]] <
            graph.node_labels_[(*by_label)[i]])) {
        return Corrupt("nodes_by_label is not strictly label-sorted");
      }
    }
  }
  graph.nodes_by_label_ = ConstArray<NodeId>::Borrowed(*by_label);

  // --- CSR adjacency ------------------------------------------------------
  size_t total_edges = 0;
  for (uint32_t dir = 0; dir < 2; ++dir) {
    graph.adjacency_[dir].resize(header->num_labels);
    for (uint64_t l = 0; l < header->num_labels; ++l) {
      Result<LoadedCsr> csr = LoadCsr(*index, dir, l, header->num_nodes,
                                      options.deep_validate);
      if (!csr.ok()) return csr.status();
      if (dir == 0) total_edges += csr->adjacency.edge_count();
      graph.adjacency_[dir][l] = std::move(csr->adjacency);
    }
    Result<LoadedCsr> sigma = LoadCsr(*index, dir, kSigmaSectionLabel,
                                      header->num_nodes,
                                      options.deep_validate);
    if (!sigma.ok()) return sigma.status();
    graph.sigma_union_[dir] = std::move(sigma->adjacency);
  }
  if (total_edges != header->num_edges) {
    return Corrupt("edge count in header does not match the adjacency");
  }
  graph.num_edges_ = header->num_edges;

  // --- Endpoint sets: views of the CSR rows, as in GraphBuilder ----------
  graph.tails_.resize(header->num_labels);
  graph.heads_.resize(header->num_labels);
  for (uint64_t l = 0; l < header->num_labels; ++l) {
    graph.tails_[l] = graph.adjacency_[0][l].RowSet();
    graph.heads_[l] = graph.adjacency_[1][l].RowSet();
  }
  graph.sigma_endpoints_[0] = graph.sigma_union_[0].RowSet();
  graph.sigma_endpoints_[1] = graph.sigma_union_[1].RowSet();
  graph.type_endpoints_[0] =
      graph.adjacency_[0][LabelDictionary::kTypeLabel].RowSet();
  graph.type_endpoints_[1] =
      graph.adjacency_[1][LabelDictionary::kTypeLabel].RowSet();

  // --- Ontology (rebuilt; small next to the graph) ------------------------
  if ((header->flags & kSnapshotFlagHasOntology) != 0) {
    Result<Ontology> ontology =
        RebuildOntology(*index, options.deep_validate);
    if (!ontology.ok()) return ontology.status();
    dataset->ontology_ = std::move(*ontology);
  }

  // --- Reachability index + distance sketch (v2), zero-copy ---------------
  ReachabilityIndex reach_index;
  if ((header->flags & kSnapshotFlagHasReachIndex) != 0) {
    const auto keys = index->KeysOf(SectionKind::kReachNodes);
    if (keys.empty()) return Corrupt("reach index flag set but no sections");
    for (const auto& [dir, label] : keys) {
      if (dir > 1) return Corrupt("reach section direction out of range");
      if (label != kSigmaSectionLabel && label >= header->num_labels) {
        return Corrupt("reach section label out of range");
      }
      Result<LabelReachability> reach = LoadReachability(
          *index, dir, label, header->num_nodes, options.deep_validate);
      if (!reach.ok()) return reach.status();
      reach_index.Add(label == kSigmaSectionLabel
                          ? ReachabilityIndex::kSigmaLabel
                          : static_cast<LabelId>(label),
                      dir == 1 ? Direction::kIncoming : Direction::kOutgoing,
                      std::move(*reach));
    }
  }
  std::optional<DistanceSketch> sketch;
  if ((header->flags & kSnapshotFlagHasDistanceSketch) != 0) {
    Result<DistanceSketch> loaded = LoadSketch(*index, header->num_nodes);
    if (!loaded.ok()) return loaded.status();
    sketch = std::move(*loaded);
  }
  dataset->indexes_ = std::make_unique<IndexManager>(
      &graph, std::move(reach_index), std::move(sketch));
  return std::shared_ptr<const Dataset>(std::move(dataset));
}

Result<SnapshotInfo> SnapshotReader::Inspect(const std::string& path) {
  Result<std::shared_ptr<const MappedFile>> file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  Result<SnapshotHeader> header = ReadHeader(**file, path);
  if (!header.ok()) return header.status();

  SnapshotInfo info;
  info.format_version = header->format_version;
  info.has_ontology = (header->flags & kSnapshotFlagHasOntology) != 0;
  info.has_reach_index = (header->flags & kSnapshotFlagHasReachIndex) != 0;
  info.has_distance_sketch =
      (header->flags & kSnapshotFlagHasDistanceSketch) != 0;
  info.file_size = header->file_size;
  info.num_nodes = header->num_nodes;
  info.num_edges = header->num_edges;
  info.num_labels = header->num_labels;

  const uint64_t toc_bytes =
      static_cast<uint64_t>(header->section_count) * sizeof(SectionEntry);
  if (header->toc_offset > (*file)->size() ||
      toc_bytes > (*file)->size() - header->toc_offset) {
    return Corrupt("table of contents out of bounds");
  }
  info.sections.resize(header->section_count);
  if (header->section_count > 0) {
    std::memcpy(info.sections.data(), (*file)->data() + header->toc_offset,
                toc_bytes);
  }
  return info;
}

Status SnapshotReader::Verify(const std::string& path) {
  Options options;
  options.verify_checksums = true;
  options.deep_validate = true;
  Result<std::shared_ptr<const Dataset>> dataset = Open(path, options);
  if (!dataset.ok()) return dataset.status();
  return Status::OK();
}

std::string SnapshotInfo::ToString() const {
  std::ostringstream out;
  out << "omega snapshot v" << format_version << ": " << num_nodes
      << " nodes, " << num_edges << " edges, " << num_labels << " labels, "
      << (has_ontology ? "with" : "no") << " ontology, "
      << (has_reach_index ? "with" : "no") << " reach index, "
      << (has_distance_sketch ? "with" : "no") << " distance sketch, "
      << file_size << " bytes, " << sections.size() << " sections\n";
  for (const SectionEntry& entry : sections) {
    const SectionKind kind = static_cast<SectionKind>(entry.kind);
    out << "  " << SectionKindToString(kind);
    if (kind == SectionKind::kCsrRows || kind == SectionKind::kCsrOffsets ||
        kind == SectionKind::kCsrNeighbors ||
        (kind >= SectionKind::kReachNodes &&
         kind <= SectionKind::kReachMembers)) {
      out << "[dir=" << entry.dir << ",label=";
      if (entry.label == kSigmaSectionLabel) {
        out << "sigma";
      } else {
        out << entry.label;
      }
      out << "]";
    }
    out << " offset=" << entry.offset << " count=" << entry.count
        << " bytes=" << entry.count * SectionElementSize(kind) << "\n";
  }
  return out.str();
}

}  // namespace omega
