// Read-only memory mapping of a snapshot file. The mapping is the storage
// every borrowed ConstArray/StringTable/OidSet in a snapshot-backed
// GraphStore points into, so Dataset holds the MappedFile alive for as long
// as the store is reachable.
#ifndef OMEGA_SNAPSHOT_MAPPED_FILE_H_
#define OMEGA_SNAPSHOT_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "common/lifetime_annotations.h"
#include "common/status.h"

namespace omega {

/// OMEGA_OWNER_TYPE: this is the storage every borrowed view in a
/// snapshot-backed store ultimately points into; Clang's GSL analysis
/// flags views chained off a temporary or local mapping. By repo invariant
/// (tools/lint/check_invariants.py, mapped-file-ownership) only Dataset and
/// SnapshotReader may hold one.
class OMEGA_OWNER_TYPE MappedFile {
 public:
  /// Maps `path` read-only (PROT_READ, shared). Fails with kNotFound for a
  /// missing file and kInvalidArgument for an empty one (no valid snapshot
  /// is empty, and zero-length mappings are ill-formed anyway).
  static Result<std::shared_ptr<const MappedFile>> Open(
      const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const std::byte* data() const OMEGA_LIFETIME_BOUND { return data_; }
  size_t size() const { return size_; }
  std::span<const std::byte> bytes() const OMEGA_LIFETIME_BOUND {
    return {data_, size_};
  }

  /// Typed view of [offset, offset + count * sizeof(T)); the caller has
  /// bounds- and alignment-checked the range (the snapshot reader does).
  template <typename T>
  std::span<const T> ViewAt(size_t offset, size_t count) const
      OMEGA_LIFETIME_BOUND {
    return {reinterpret_cast<const T*>(data_ + offset), count};
  }

 private:
  MappedFile(const std::byte* data, size_t size) : data_(data), size_(size) {}

  const std::byte* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace omega

#endif  // OMEGA_SNAPSHOT_MAPPED_FILE_H_
