// Serializes a frozen GraphStore (+ optional Ontology) into the binary
// snapshot format of snapshot_format.h: header, table of contents, then one
// aligned, checksummed section per array. The graph arrays are written
// straight out of the store (they are already in on-disk shape thanks to
// the ConstArray/StringTable seam); the ontology is flattened into the same
// heap + offsets shape, and a prebuilt reachability index / distance sketch
// can ride along as v2 sections so serving never rebuilds them. Writes go
// to "<path>.tmp" and are renamed into place, so a crash mid-write never
// leaves a truncated file behind the final name.
#ifndef OMEGA_SNAPSHOT_SNAPSHOT_WRITER_H_
#define OMEGA_SNAPSHOT_SNAPSHOT_WRITER_H_

#include <string>

#include "common/status.h"
#include "index/distance_sketch.h"
#include "index/reachability_index.h"
#include "ontology/ontology.h"
#include "store/graph_store.h"

namespace omega {

class SnapshotWriter {
 public:
  /// Writes `graph` (and `ontology`, when non-null) to `path`.
  Status Write(const GraphStore& graph, const Ontology* ontology,
               const std::string& path) const;

  /// Same, additionally persisting a reachability index and/or distance
  /// sketch (either may be null).
  Status Write(const GraphStore& graph, const Ontology* ontology,
               const ReachabilityIndex* reachability,
               const DistanceSketch* sketch, const std::string& path) const;
};

/// Convenience wrappers around SnapshotWriter::Write.
Status WriteSnapshot(const GraphStore& graph, const Ontology* ontology,
                     const std::string& path);
Status WriteSnapshot(const GraphStore& graph, const Ontology* ontology,
                     const ReachabilityIndex* reachability,
                     const DistanceSketch* sketch, const std::string& path);

}  // namespace omega

#endif  // OMEGA_SNAPSHOT_SNAPSHOT_WRITER_H_
