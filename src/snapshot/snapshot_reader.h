// Opens binary snapshots written by SnapshotWriter: mmaps the file, checks
// the header/TOC and the structural invariants the store's binary searches
// rely on, then assembles a GraphStore whose CSR arrays, node-label heap
// and FindNode permutation *borrow* the mapping zero-copy (the ontology —
// tiny next to the graph — is rebuilt through OntologyBuilder so its
// derived down-sets come out of the same deterministic code path as an
// in-memory build). The result is a Dataset that keeps the mapping alive
// for as long as anything references it.
//
// Open() validates structure (bounds, counts, offset monotonicity) but not
// content checksums, so a multi-GB snapshot becomes queryable without
// faulting in its edge pages; Verify() — and Open with verify_checksums —
// additionally recomputes every section checksum and checks the deep
// invariants (sorted CSR rows, in-range neighbour ids, label-sorted
// FindNode permutation).
#ifndef OMEGA_SNAPSHOT_SNAPSHOT_READER_H_
#define OMEGA_SNAPSHOT_SNAPSHOT_READER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "snapshot/dataset.h"
#include "snapshot/snapshot_format.h"

namespace omega {

/// Header + TOC summary returned by SnapshotReader::Inspect (what
/// `snapshot_tool inspect` prints).
struct SnapshotInfo {
  uint32_t format_version = 0;
  bool has_ontology = false;
  bool has_reach_index = false;      // v2 reachability-index sections
  bool has_distance_sketch = false;  // v2 distance-sketch sections
  uint64_t file_size = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint64_t num_labels = 0;
  std::vector<SectionEntry> sections;

  std::string ToString() const;
};

class SnapshotReader {
 public:
  struct Options {
    /// Recompute and compare every section checksum at open (reads the
    /// whole file; Verify() sets this).
    bool verify_checksums = false;
    /// Check the expensive invariants too: CSR rows sorted, neighbour ids
    /// within [0, num_nodes), node permutation sorted by label.
    bool deep_validate = false;
  };

  /// Maps `path` and serves it as a Dataset (zero-copy graph + rebuilt
  /// ontology when the snapshot contains one).
  static Result<std::shared_ptr<const Dataset>> Open(const std::string& path);
  static Result<std::shared_ptr<const Dataset>> Open(const std::string& path,
                                                     const Options& options);

  /// Header/TOC summary without building the store.
  static Result<SnapshotInfo> Inspect(const std::string& path);

  /// Full integrity check: structure + checksums + deep invariants.
  static Status Verify(const std::string& path);

 private:
  // The untimed open body; the public Open wraps it with the
  // omega_snapshot_open_us / omega_snapshot_opens_total instrumentation.
  static Result<std::shared_ptr<const Dataset>> OpenUntimed(
      const std::string& path, const Options& options);
};

}  // namespace omega

#endif  // OMEGA_SNAPSHOT_SNAPSHOT_READER_H_
