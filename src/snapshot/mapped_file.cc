#include "snapshot/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"

namespace omega {
namespace {

// Level of bytes currently mmap'd by live snapshot mappings; rises on Open,
// falls when the last Dataset reference drops the backing file. Open is a
// cold path, so the registry lookup per call is fine.
Gauge* MappedBytesGauge() {
  static Gauge* const gauge = MetricsRegistry::Global()->GetGauge(
      "omega_snapshot_mmap_bytes", "Bytes mapped by live snapshot files");
  return gauge;
}

}  // namespace

Result<std::shared_ptr<const MappedFile>> MappedFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("cannot open: " + path);
    return Status::InvalidArgument("cannot open '" + path +
                                   "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("fstat '" + path + "': " + std::strerror(err));
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::InvalidArgument("empty file: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping survives the close; the kernel keeps the file alive.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::Internal("mmap '" + path + "': " + std::strerror(errno));
  }
  MappedBytesGauge()->Add(static_cast<int64_t>(size));
  return std::shared_ptr<const MappedFile>(
      new MappedFile(static_cast<const std::byte*>(addr), size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
    MappedBytesGauge()->Add(-static_cast<int64_t>(size_));
  }
}

}  // namespace omega
