// A Dataset bundles one frozen query substrate — a GraphStore plus the
// (optional) Ontology bound against it — together with whatever backing
// storage keeps the store's borrowed arrays alive. It is the unit of
// dataset hot-swap: QueryService::SwapDataset installs a
// shared_ptr<const Dataset> as a new serving epoch, in-flight queries keep
// their old epoch's Dataset pinned until they drain, and when the last
// reference drops the mapping is released.
#ifndef OMEGA_SNAPSHOT_DATASET_H_
#define OMEGA_SNAPSHOT_DATASET_H_

#include <memory>
#include <optional>
#include <utility>

#include "common/lifetime_annotations.h"
#include "index/index_manager.h"
#include "ontology/ontology.h"
#include "snapshot/mapped_file.h"
#include "store/graph_store.h"

namespace omega {

/// OMEGA_OWNER_TYPE: the Dataset is what keeps a snapshot-backed store's
/// borrowed arrays alive — every view reachable through graph() is bounded
/// by it, which is why the accessors below are OMEGA_LIFETIME_BOUND and why
/// code that keeps views across statements must keep the
/// shared_ptr<const Dataset> pinned (the service does this per epoch).
class OMEGA_OWNER_TYPE Dataset {
 public:
  /// Wraps an in-memory (owned-backend) graph + ontology, e.g. a generated
  /// dataset about to be swapped into a service or written to a snapshot.
  static std::shared_ptr<const Dataset> FromParts(
      GraphStore graph, std::optional<Ontology> ontology) {
    auto dataset = std::make_shared<Dataset>();
    dataset->graph_ = std::move(graph);
    dataset->ontology_ = std::move(ontology);
    dataset->indexes_ = std::make_unique<IndexManager>(&dataset->graph_);
    return dataset;
  }

  Dataset() = default;
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  const GraphStore& graph() const OMEGA_LIFETIME_BOUND { return graph_; }
  const Ontology* ontology() const OMEGA_LIFETIME_BOUND {
    return ontology_.has_value() ? &*ontology_ : nullptr;
  }

  /// Non-null when the graph's arrays borrow from a mapped snapshot file.
  const MappedFile* backing() const OMEGA_LIFETIME_BOUND {
    return backing_.get();
  }

  /// The dataset's index manager: snapshot-preloaded reachability/sketch
  /// structures when the file carried them, built on demand otherwise.
  /// Null only on a default-constructed Dataset that was never filled.
  const IndexManager* indexes() const OMEGA_LIFETIME_BOUND {
    return indexes_.get();
  }

 private:
  friend class SnapshotReader;

  // Declared first so it is destroyed last: the graph's borrowed spans
  // point into this mapping.
  std::shared_ptr<const MappedFile> backing_;
  GraphStore graph_;
  std::optional<Ontology> ontology_;
  // After graph_: the manager's preloaded arrays may borrow the mapping
  // and its lazy builds read graph_.
  std::unique_ptr<IndexManager> indexes_;
};

}  // namespace omega

#endif  // OMEGA_SNAPSHOT_DATASET_H_
