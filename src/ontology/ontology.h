// The ontology K = (V_K, E_K): class nodes related by `sc` (subclass),
// property nodes related by `sp` (subproperty), and `dom`/`range` edges from
// properties to classes. RELAX consults K both when augmenting the query
// automaton (M^K_R) and when matching under RDFS entailment.
#ifndef OMEGA_ONTOLOGY_ONTOLOGY_H_
#define OMEGA_ONTOLOGY_ONTOLOGY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/lifetime_annotations.h"
#include "common/status.h"
#include "store/graph_store.h"
#include "store/oid_set.h"

namespace omega {

using ClassId = uint32_t;
using PropertyId = uint32_t;
inline constexpr ClassId kInvalidClass = static_cast<ClassId>(-1);
inline constexpr PropertyId kInvalidProperty = static_cast<PropertyId>(-1);

/// An ancestor (or super-property) together with its distance in `sc`/`sp`
/// steps from the starting element; steps * beta is its relaxation cost.
struct AncestorStep {
  uint32_t element;  // ClassId or PropertyId depending on context
  uint32_t steps;    // >= 1: immediate parent has steps == 1
};

/// Immutable ontology; assembled with OntologyBuilder.
class Ontology {
 public:
  // --- lookup ------------------------------------------------------------
  std::optional<ClassId> FindClass(std::string_view name) const;
  std::optional<PropertyId> FindProperty(std::string_view name) const;
  std::string_view ClassName(ClassId c) const { return class_names_[c]; }
  std::string_view PropertyName(PropertyId p) const {
    return property_names_[p];
  }
  size_t NumClasses() const { return class_names_.size(); }
  size_t NumProperties() const { return property_names_.size(); }

  // --- hierarchy navigation ----------------------------------------------
  /// Immediate superclasses (multiple inheritance allowed).
  const std::vector<ClassId>& ClassParents(ClassId c) const {
    return class_parents_[c];
  }
  const std::vector<PropertyId>& PropertyParents(PropertyId p) const {
    return property_parents_[p];
  }

  /// All strict ancestors with their minimal step count, ordered by
  /// increasing steps (most specific first), ties by id. This is the
  /// ordering GetAncestors needs in the paper's Open procedure.
  std::vector<AncestorStep> ClassAncestors(ClassId c) const;
  std::vector<AncestorStep> PropertyAncestors(PropertyId p) const;

  /// Descendants *including* the element itself (the down-set used for
  /// entailment-aware matching). Sorted ascending.
  const std::vector<ClassId>& ClassDownSet(ClassId c) const {
    return class_down_sets_[c];
  }
  const std::vector<PropertyId>& PropertyDownSet(PropertyId p) const {
    return property_down_sets_[p];
  }

  std::optional<ClassId> DomainOf(PropertyId p) const {
    return domains_[p] == kInvalidClass ? std::nullopt
                                        : std::optional<ClassId>(domains_[p]);
  }
  std::optional<ClassId> RangeOf(PropertyId p) const {
    return ranges_[p] == kInvalidClass ? std::nullopt
                                       : std::optional<ClassId>(ranges_[p]);
  }

  // --- statistics (used to verify Fig. 2 shapes) --------------------------
  /// Longest root-to-leaf path length below `root` (root itself = depth 0).
  uint32_t HierarchyDepth(ClassId root) const;
  /// Mean child count over non-leaf classes in the tree rooted at `root`.
  double AverageFanOut(ClassId root) const;
  /// Immediate subclasses.
  std::vector<ClassId> ClassChildren(ClassId c) const;

 private:
  friend class OntologyBuilder;

  std::vector<std::string> class_names_;
  std::vector<std::string> property_names_;
  std::unordered_map<std::string, ClassId> class_index_;
  std::unordered_map<std::string, PropertyId> property_index_;
  std::vector<std::vector<ClassId>> class_parents_;
  std::vector<std::vector<PropertyId>> property_parents_;
  std::vector<std::vector<ClassId>> class_down_sets_;
  std::vector<std::vector<PropertyId>> property_down_sets_;
  std::vector<ClassId> domains_;
  std::vector<ClassId> ranges_;
};

/// Accumulates ontology statements, validates (no sc/sp cycles, no dangling
/// references), and produces the immutable Ontology.
class OntologyBuilder {
 public:
  ClassId GetOrAddClass(std::string_view name);
  PropertyId GetOrAddProperty(std::string_view name);

  /// States `child sc parent`.
  Status AddSubclass(std::string_view child, std::string_view parent);
  /// States `child sp parent`.
  Status AddSubproperty(std::string_view child, std::string_view parent);
  Status SetDomain(std::string_view property, std::string_view klass);
  Status SetRange(std::string_view property, std::string_view klass);

  /// Validates and freezes. Fails with InvalidArgument on sc/sp cycles.
  Result<Ontology> Finalize() &&;

 private:
  Ontology ontology_;
};

/// Ontology bound to a specific data graph: translates ontology classes to
/// graph NodeIds and ontology properties to graph LabelIds so the evaluator
/// can consult K with graph-native identifiers.
///
/// Thread-safety: fully constructed in the constructor and immutable
/// afterwards (no mutable members, no lazy caches); any number of threads
/// may call the const read API concurrently. This is part of the frozen
/// dataset contract QueryService relies on — see store/graph_store.h.
///
/// Properties that never occur as edge labels in the graph (e.g. a pure
/// super-property such as YAGO's relationLocatedByObject) receive *synthetic*
/// label ids just past the graph's label space: graph adjacency lookups on
/// them are safely empty, while entailment down-sets still resolve to real
/// graph labels — so relaxing up to an unasserted super-property works.
/// Class nodes absent from the graph have no binding (a traversal cannot
/// start or land on a node that does not exist).
class OMEGA_VIEW_TYPE BoundOntology {
 public:
  BoundOntology(const Ontology* ontology, const GraphStore* graph);

  /// Resolves a property name to its synthetic label id, if the property is
  /// known to the ontology but absent from the graph's label dictionary.
  std::optional<LabelId> FindSyntheticLabel(std::string_view name) const;

  const Ontology& ontology() const { return *ontology_; }

  /// True if the graph node is a class node of K (V_G ∩ V_K membership).
  bool IsClassNode(NodeId n) const;

  /// Strict ancestors of class node `n` as graph nodes with step counts,
  /// most specific first. Ancestors with no graph node are skipped.
  std::vector<std::pair<NodeId, uint32_t>> NodeAncestors(NodeId n) const;

  /// Down-set of class node `n` (descendant class nodes incl. itself).
  const OidSet& NodeDownSet(NodeId n) const;

  /// Immediate superproperties of graph label `l` (empty if unbound).
  std::vector<std::pair<LabelId, uint32_t>> LabelAncestors(LabelId l) const;

  /// sp-descendant labels of `l` including `l` itself; labels that exist in
  /// the ontology but never occur in the graph are dropped.
  const std::vector<LabelId>& LabelDownSet(LabelId l) const;

  /// Domain / range class of a property label, as a graph node.
  std::optional<NodeId> DomainNodeOf(LabelId l) const;
  std::optional<NodeId> RangeNodeOf(LabelId l) const;

  /// All ontology classes that exist as graph nodes.
  const OidSet& BoundClassNodes() const { return bound_class_nodes_; }

 private:
  const Ontology* ontology_;
  const GraphStore* graph_;

  std::unordered_map<NodeId, ClassId> node_to_class_;
  std::vector<NodeId> class_to_node_;           // by ClassId; kInvalidNode if absent
  std::vector<LabelId> property_to_label_;      // by PropertyId (may be synthetic)
  std::unordered_map<LabelId, PropertyId> label_to_property_;
  std::unordered_map<std::string, LabelId> synthetic_labels_;
  std::unordered_map<NodeId, OidSet> node_down_sets_;
  // Covers every graph label and every synthetic label (precomputed in the
  // constructor), so const read paths never insert — a lazily-filled mutable
  // cache here would race under concurrent evaluation.
  std::unordered_map<LabelId, std::vector<LabelId>> label_down_sets_;
  OidSet bound_class_nodes_;
};

}  // namespace omega

#endif  // OMEGA_ONTOLOGY_ONTOLOGY_H_
