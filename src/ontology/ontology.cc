#include "ontology/ontology.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <functional>

namespace omega {
namespace {

/// Min-step BFS up a parents relation; returns strict ancestors ordered by
/// (steps, id).
std::vector<AncestorStep> AncestorsOf(
    uint32_t start, const std::vector<std::vector<uint32_t>>& parents) {
  std::unordered_map<uint32_t, uint32_t> steps;
  std::deque<uint32_t> frontier{start};
  steps[start] = 0;
  std::vector<AncestorStep> out;
  while (!frontier.empty()) {
    const uint32_t cur = frontier.front();
    frontier.pop_front();
    for (uint32_t parent : parents[cur]) {
      if (steps.count(parent)) continue;
      steps[parent] = steps[cur] + 1;
      out.push_back({parent, steps[parent]});
      frontier.push_back(parent);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.steps != b.steps ? a.steps < b.steps : a.element < b.element;
  });
  return out;
}

/// True if the parents relation contains a cycle.
bool HasCycle(const std::vector<std::vector<uint32_t>>& parents) {
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(parents.size(), Color::kWhite);
  std::function<bool(uint32_t)> visit = [&](uint32_t v) {
    color[v] = Color::kGray;
    for (uint32_t p : parents[v]) {
      if (color[p] == Color::kGray) return true;
      if (color[p] == Color::kWhite && visit(p)) return true;
    }
    color[v] = Color::kBlack;
    return false;
  };
  for (uint32_t v = 0; v < parents.size(); ++v) {
    if (color[v] == Color::kWhite && visit(v)) return true;
  }
  return false;
}

/// down_sets[x] = all descendants of x including x, sorted.
std::vector<std::vector<uint32_t>> ComputeDownSets(
    const std::vector<std::vector<uint32_t>>& parents) {
  const size_t n = parents.size();
  std::vector<std::vector<uint32_t>> children(n);
  for (uint32_t child = 0; child < n; ++child) {
    for (uint32_t parent : parents[child]) children[parent].push_back(child);
  }
  std::vector<std::vector<uint32_t>> down(n);
  for (uint32_t root = 0; root < n; ++root) {
    std::vector<uint32_t> stack{root};
    std::vector<bool> seen(n, false);
    seen[root] = true;
    while (!stack.empty()) {
      const uint32_t cur = stack.back();
      stack.pop_back();
      down[root].push_back(cur);
      for (uint32_t c : children[cur]) {
        if (!seen[c]) {
          seen[c] = true;
          stack.push_back(c);
        }
      }
    }
    std::sort(down[root].begin(), down[root].end());
  }
  return down;
}

}  // namespace

// --- Ontology ---------------------------------------------------------------

std::optional<ClassId> Ontology::FindClass(std::string_view name) const {
  auto it = class_index_.find(std::string(name));
  if (it == class_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<PropertyId> Ontology::FindProperty(std::string_view name) const {
  auto it = property_index_.find(std::string(name));
  if (it == property_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<AncestorStep> Ontology::ClassAncestors(ClassId c) const {
  return AncestorsOf(c, class_parents_);
}

std::vector<AncestorStep> Ontology::PropertyAncestors(PropertyId p) const {
  return AncestorsOf(p, property_parents_);
}

std::vector<ClassId> Ontology::ClassChildren(ClassId c) const {
  std::vector<ClassId> out;
  for (ClassId child = 0; child < class_parents_.size(); ++child) {
    for (ClassId parent : class_parents_[child]) {
      if (parent == c) out.push_back(child);
    }
  }
  return out;
}

uint32_t Ontology::HierarchyDepth(ClassId root) const {
  uint32_t best = 0;
  for (ClassId child : ClassChildren(root)) {
    best = std::max(best, 1 + HierarchyDepth(child));
  }
  return best;
}

double Ontology::AverageFanOut(ClassId root) const {
  size_t non_leaf = 0;
  size_t child_edges = 0;
  std::vector<ClassId> stack{root};
  std::vector<bool> seen(class_names_.size(), false);
  seen[root] = true;
  while (!stack.empty()) {
    const ClassId cur = stack.back();
    stack.pop_back();
    auto children = ClassChildren(cur);
    if (!children.empty()) {
      ++non_leaf;
      child_edges += children.size();
    }
    for (ClassId c : children) {
      if (!seen[c]) {
        seen[c] = true;
        stack.push_back(c);
      }
    }
  }
  return non_leaf == 0 ? 0.0
                       : static_cast<double>(child_edges) /
                             static_cast<double>(non_leaf);
}

// --- OntologyBuilder --------------------------------------------------------

ClassId OntologyBuilder::GetOrAddClass(std::string_view name) {
  auto existing = ontology_.FindClass(name);
  if (existing) return *existing;
  const ClassId id = static_cast<ClassId>(ontology_.class_names_.size());
  ontology_.class_names_.emplace_back(name);
  ontology_.class_index_.emplace(std::string(name), id);
  ontology_.class_parents_.emplace_back();
  return id;
}

PropertyId OntologyBuilder::GetOrAddProperty(std::string_view name) {
  auto existing = ontology_.FindProperty(name);
  if (existing) return *existing;
  const PropertyId id = static_cast<PropertyId>(ontology_.property_names_.size());
  ontology_.property_names_.emplace_back(name);
  ontology_.property_index_.emplace(std::string(name), id);
  ontology_.property_parents_.emplace_back();
  ontology_.domains_.push_back(kInvalidClass);
  ontology_.ranges_.push_back(kInvalidClass);
  return id;
}

Status OntologyBuilder::AddSubclass(std::string_view child,
                                    std::string_view parent) {
  if (child == parent) {
    return Status::InvalidArgument("class cannot be its own subclass: " +
                                   std::string(child));
  }
  const ClassId c = GetOrAddClass(child);
  const ClassId p = GetOrAddClass(parent);
  auto& parents = ontology_.class_parents_[c];
  if (std::find(parents.begin(), parents.end(), p) != parents.end()) {
    return Status::AlreadyExists("duplicate sc edge: " + std::string(child));
  }
  parents.push_back(p);
  return Status::OK();
}

Status OntologyBuilder::AddSubproperty(std::string_view child,
                                       std::string_view parent) {
  if (child == parent) {
    return Status::InvalidArgument("property cannot be its own subproperty: " +
                                   std::string(child));
  }
  const PropertyId c = GetOrAddProperty(child);
  const PropertyId p = GetOrAddProperty(parent);
  auto& parents = ontology_.property_parents_[c];
  if (std::find(parents.begin(), parents.end(), p) != parents.end()) {
    return Status::AlreadyExists("duplicate sp edge: " + std::string(child));
  }
  parents.push_back(p);
  return Status::OK();
}

Status OntologyBuilder::SetDomain(std::string_view property,
                                  std::string_view klass) {
  const PropertyId p = GetOrAddProperty(property);
  ontology_.domains_[p] = GetOrAddClass(klass);
  return Status::OK();
}

Status OntologyBuilder::SetRange(std::string_view property,
                                 std::string_view klass) {
  const PropertyId p = GetOrAddProperty(property);
  ontology_.ranges_[p] = GetOrAddClass(klass);
  return Status::OK();
}

Result<Ontology> OntologyBuilder::Finalize() && {
  if (HasCycle(ontology_.class_parents_)) {
    return Status::InvalidArgument("cycle in sc (subclass) hierarchy");
  }
  if (HasCycle(ontology_.property_parents_)) {
    return Status::InvalidArgument("cycle in sp (subproperty) hierarchy");
  }
  ontology_.class_down_sets_ = ComputeDownSets(ontology_.class_parents_);
  ontology_.property_down_sets_ = ComputeDownSets(ontology_.property_parents_);
  return std::move(ontology_);
}

// --- BoundOntology ----------------------------------------------------------

BoundOntology::BoundOntology(const Ontology* ontology, const GraphStore* graph)
    : ontology_(ontology), graph_(graph) {
  class_to_node_.assign(ontology->NumClasses(), kInvalidNode);
  std::vector<NodeId> bound_classes;
  for (ClassId c = 0; c < ontology->NumClasses(); ++c) {
    if (auto n = graph->FindNode(ontology->ClassName(c))) {
      class_to_node_[c] = *n;
      node_to_class_.emplace(*n, c);
      bound_classes.push_back(*n);
    }
  }
  bound_class_nodes_ = OidSet::FromUnsorted(std::move(bound_classes));
  property_to_label_.assign(ontology->NumProperties(), kInvalidLabel);
  LabelId next_synthetic = static_cast<LabelId>(graph->labels().size());
  for (PropertyId p = 0; p < ontology->NumProperties(); ++p) {
    if (auto l = graph->labels().Find(ontology->PropertyName(p))) {
      property_to_label_[p] = *l;
      label_to_property_.emplace(*l, p);
    } else {
      // Synthetic id: resolvable in queries and automata, empty in the graph.
      property_to_label_[p] = next_synthetic;
      label_to_property_.emplace(next_synthetic, p);
      synthetic_labels_.emplace(std::string(ontology->PropertyName(p)),
                                next_synthetic);
      ++next_synthetic;
    }
  }
  // Precompute graph-side down sets.
  for (const auto& [node, klass] : node_to_class_) {
    std::vector<NodeId> members;
    for (ClassId d : ontology->ClassDownSet(klass)) {
      if (class_to_node_[d] != kInvalidNode) {
        members.push_back(class_to_node_[d]);
      }
    }
    node_down_sets_.emplace(node, OidSet::FromUnsorted(std::move(members)));
  }
  for (const auto& [label, property] : label_to_property_) {
    std::vector<LabelId> members;
    for (PropertyId d : ontology->PropertyDownSet(property)) {
      members.push_back(property_to_label_[d]);
    }
    std::sort(members.begin(), members.end());
    label_down_sets_.emplace(label, std::move(members));
  }
  // Labels with no ontology property have the trivial down-set {l}.
  // Precomputing them for the whole dictionary keeps LabelDownSet a pure
  // lookup: every label an automaton can carry (graph-interned or synthetic)
  // resolves without a const-path insert, so concurrent RELAX evaluation
  // over one shared BoundOntology is race-free.
  for (LabelId l = 0; l < graph->labels().size(); ++l) {
    label_down_sets_.try_emplace(l, std::vector<LabelId>{l});
  }
}

std::optional<LabelId> BoundOntology::FindSyntheticLabel(
    std::string_view name) const {
  auto it = synthetic_labels_.find(std::string(name));
  if (it == synthetic_labels_.end()) return std::nullopt;
  return it->second;
}

bool BoundOntology::IsClassNode(NodeId n) const {
  return node_to_class_.count(n) > 0;
}

std::vector<std::pair<NodeId, uint32_t>> BoundOntology::NodeAncestors(
    NodeId n) const {
  std::vector<std::pair<NodeId, uint32_t>> out;
  auto it = node_to_class_.find(n);
  if (it == node_to_class_.end()) return out;
  for (const AncestorStep& step : ontology_->ClassAncestors(it->second)) {
    const NodeId ancestor = class_to_node_[step.element];
    if (ancestor != kInvalidNode) out.emplace_back(ancestor, step.steps);
  }
  return out;
}

const OidSet& BoundOntology::NodeDownSet(NodeId n) const {
  static const OidSet kEmpty;
  auto it = node_down_sets_.find(n);
  return it == node_down_sets_.end() ? kEmpty : it->second;
}

std::vector<std::pair<LabelId, uint32_t>> BoundOntology::LabelAncestors(
    LabelId l) const {
  std::vector<std::pair<LabelId, uint32_t>> out;
  auto it = label_to_property_.find(l);
  if (it == label_to_property_.end()) return out;
  for (const AncestorStep& step : ontology_->PropertyAncestors(it->second)) {
    const LabelId ancestor = property_to_label_[step.element];
    if (ancestor != kInvalidLabel) out.emplace_back(ancestor, step.steps);
  }
  return out;
}

const std::vector<LabelId>& BoundOntology::LabelDownSet(LabelId l) const {
  // Every graph and synthetic label is precomputed in the constructor; a
  // miss can only be a label id the binding has never seen, which by
  // construction has no graph edges either.
  static const std::vector<LabelId> kEmpty;
  auto it = label_down_sets_.find(l);
  return it == label_down_sets_.end() ? kEmpty : it->second;
}

std::optional<NodeId> BoundOntology::DomainNodeOf(LabelId l) const {
  auto it = label_to_property_.find(l);
  if (it == label_to_property_.end()) return std::nullopt;
  auto domain = ontology_->DomainOf(it->second);
  if (!domain || class_to_node_[*domain] == kInvalidNode) return std::nullopt;
  return class_to_node_[*domain];
}

std::optional<NodeId> BoundOntology::RangeNodeOf(LabelId l) const {
  auto it = label_to_property_.find(l);
  if (it == label_to_property_.end()) return std::nullopt;
  auto range = ontology_->RangeOf(it->second);
  if (!range || class_to_node_[*range] == kInvalidNode) return std::nullopt;
  return class_to_node_[*range];
}

}  // namespace omega
