// Plain-text persistence for ontologies, mirroring the paper's E_K edge
// kinds: one statement per line,
//   sc <TAB> child class <TAB> parent class
//   sp <TAB> child property <TAB> parent property
//   dom <TAB> property <TAB> class
//   range <TAB> property <TAB> class
// with '#'-comments and blank lines ignored.
#ifndef OMEGA_ONTOLOGY_ONTOLOGY_IO_H_
#define OMEGA_ONTOLOGY_ONTOLOGY_IO_H_

#include <string>

#include "common/status.h"
#include "ontology/ontology.h"

namespace omega {

Status SaveOntology(const Ontology& ontology, const std::string& path);

Result<Ontology> LoadOntology(const std::string& path);

}  // namespace omega

#endif  // OMEGA_ONTOLOGY_ONTOLOGY_IO_H_
