#include "ontology/ontology_io.h"

#include <fstream>

#include "common/strings.h"

namespace omega {

Status SaveOntology(const Ontology& ontology, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot open for write: " + path);
  out << "# omega ontology (sc/sp/dom/range statements)\n";
  for (ClassId c = 0; c < ontology.NumClasses(); ++c) {
    for (ClassId parent : ontology.ClassParents(c)) {
      out << "sc\t" << ontology.ClassName(c) << '\t'
          << ontology.ClassName(parent) << '\n';
    }
  }
  for (PropertyId p = 0; p < ontology.NumProperties(); ++p) {
    for (PropertyId parent : ontology.PropertyParents(p)) {
      out << "sp\t" << ontology.PropertyName(p) << '\t'
          << ontology.PropertyName(parent) << '\n';
    }
    if (auto dom = ontology.DomainOf(p)) {
      out << "dom\t" << ontology.PropertyName(p) << '\t'
          << ontology.ClassName(*dom) << '\n';
    }
    if (auto range = ontology.RangeOf(p)) {
      out << "range\t" << ontology.PropertyName(p) << '\t'
          << ontology.ClassName(*range) << '\n';
    }
  }
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<Ontology> LoadOntology(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  OntologyBuilder builder;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    auto fields = Split(stripped, '\t', /*trim=*/true);
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          "expected 'kind<TAB>subject<TAB>object' at " + path + ":" +
          std::to_string(line_number));
    }
    Status status;
    if (fields[0] == "sc") {
      status = builder.AddSubclass(fields[1], fields[2]);
    } else if (fields[0] == "sp") {
      status = builder.AddSubproperty(fields[1], fields[2]);
    } else if (fields[0] == "dom") {
      status = builder.SetDomain(fields[1], fields[2]);
    } else if (fields[0] == "range") {
      status = builder.SetRange(fields[1], fields[2]);
    } else {
      return Status::InvalidArgument("unknown statement kind '" + fields[0] +
                                     "' at " + path + ":" +
                                     std::to_string(line_number));
    }
    // Duplicate statements in a hand-edited file are tolerated.
    if (!status.ok() && status.code() != StatusCode::kAlreadyExists) {
      return status;
    }
  }
  return std::move(builder).Finalize();
}

}  // namespace omega
