#include "plan/plan_node.h"

#include <cstdio>

#include "obs/trace.h"

namespace omega {
namespace {

std::string FormatEstimate(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", value);
  return buf;
}

// Mis-estimate ratio actual/estimated for EXPLAIN ANALYZE: 1.00x is a
// perfect estimate, <1 over-estimated, >1 under-estimated (the hub-join
// failure mode the ROADMAP calls out). A zero/negative estimate (provably
// empty, or never estimated) compares against 1 row to stay finite.
std::string FormatMisestimate(uint64_t actual, double estimated) {
  const double denom = estimated > 0 ? estimated : 1.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", static_cast<double>(actual) / denom);
  return buf;
}

std::string VarList(const std::vector<VarId>& vars,
                    const VarCatalog& catalog) {
  std::string out;
  for (const VarId v : vars) {
    if (!out.empty()) out += ", ";
    out += "?" + catalog.NameOf(v);
  }
  return out;
}

void AppendNode(const PlanNode& node, const VarCatalog& catalog,
                bool with_stats, const std::string& prefix,
                const std::string& child_prefix, std::string* out) {
  *out += prefix;
  if (node.is_leaf()) {
    *out += "#" + std::to_string(node.conjunct_index) + " " +
            node.description;
    *out += "  est=" + FormatEstimate(node.est_cardinality) + " rows";
    *out += "  sel=" + FormatEstimate(node.estimate.selectivity);
    if (node.estimate.provably_empty) *out += "  [provably empty]";
    if (with_stats && node.stream != nullptr) {
      const EvaluatorStats stats = node.stream->stats();
      *out += "  {act=" + std::to_string(stats.answers_emitted) + " rows" +
              " err=" + FormatMisestimate(stats.answers_emitted,
                                          node.est_cardinality) +
              " popped=" + std::to_string(stats.tuples_popped) +
              " fetches=" + std::to_string(stats.neighbor_group_fetches) +
              "}";
    }
    *out += "\n";
    return;
  }

  *out += node.join_vars.empty()
              ? std::string("CrossProduct")
              : "RankJoin [" + VarList(node.join_vars, catalog) + "]";
  *out += "  est=" + FormatEstimate(node.est_cardinality) + " rows";
  if (with_stats && node.stream != nullptr) {
    const EvaluatorStats stats = node.stream->OperatorStats();
    *out += "  {act=" + std::to_string(stats.answers_emitted) + " rows" +
            " err=" + FormatMisestimate(stats.answers_emitted,
                                        node.est_cardinality) +
            " live-peak=" + std::to_string(stats.max_join_live) + "}";
  }
  *out += "\n";
  AppendNode(*node.left, catalog, with_stats, child_prefix + "|-- ",
             child_prefix + "|   ", out);
  AppendNode(*node.right, catalog, with_stats, child_prefix + "`-- ",
             child_prefix + "    ", out);
}

}  // namespace

std::string RenderPlanTree(const QueryPlan& plan, bool with_stats) {
  std::string out;
  if (plan.root == nullptr) return out;
  AppendNode(*plan.root, plan.catalog, with_stats, "", "", &out);
  return out;
}

namespace {

void AppendOperatorEvents(const PlanNode& node, const VarCatalog& catalog,
                          TraceRecorder* trace) {
  if (node.stream != nullptr) {
    std::string name;
    EvaluatorStats stats;
    if (node.is_leaf()) {
      name = "op #" + std::to_string(node.conjunct_index) + " " +
             node.description;
      stats = node.stream->stats();
    } else {
      name = node.join_vars.empty()
                 ? std::string("op CrossProduct")
                 : "op RankJoin [" + VarList(node.join_vars, catalog) + "]";
      stats = node.stream->OperatorStats();
    }
    const TraceRecorder::SpanId id = trace->Event(name);
    trace->Annotate(id, "est_rows",
                    static_cast<int64_t>(node.est_cardinality));
    trace->Annotate(id, "act_rows",
                    static_cast<int64_t>(stats.answers_emitted));
    trace->Annotate(id, "pulls", static_cast<int64_t>(stats.tuples_popped));
    trace->Annotate(id, "emits",
                    static_cast<int64_t>(stats.answers_emitted));
    if (node.is_leaf()) {
      trace->Annotate(id, "fetches",
                      static_cast<int64_t>(stats.neighbor_group_fetches));
    } else {
      trace->Annotate(id, "live_peak",
                      static_cast<int64_t>(stats.max_join_live));
    }
  }
  if (node.left != nullptr) AppendOperatorEvents(*node.left, catalog, trace);
  if (node.right != nullptr) AppendOperatorEvents(*node.right, catalog, trace);
}

}  // namespace

void RecordOperatorTrace(const QueryPlan& plan, TraceRecorder* trace) {
  if (trace == nullptr || plan.root == nullptr) return;
  AppendOperatorEvents(*plan.root, plan.catalog, trace);
}

}  // namespace omega
