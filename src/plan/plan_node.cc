#include "plan/plan_node.h"

#include <cstdio>

namespace omega {
namespace {

std::string FormatEstimate(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", value);
  return buf;
}

std::string VarList(const std::vector<VarId>& vars,
                    const VarCatalog& catalog) {
  std::string out;
  for (const VarId v : vars) {
    if (!out.empty()) out += ", ";
    out += "?" + catalog.NameOf(v);
  }
  return out;
}

void AppendNode(const PlanNode& node, const VarCatalog& catalog,
                bool with_stats, const std::string& prefix,
                const std::string& child_prefix, std::string* out) {
  *out += prefix;
  if (node.is_leaf()) {
    *out += "#" + std::to_string(node.conjunct_index) + " " +
            node.description;
    *out += "  est=" + FormatEstimate(node.est_cardinality) + " rows";
    *out += "  sel=" + FormatEstimate(node.estimate.selectivity);
    if (node.estimate.provably_empty) *out += "  [provably empty]";
    if (with_stats && node.stream != nullptr) {
      const EvaluatorStats stats = node.stream->stats();
      *out += "  {popped=" + std::to_string(stats.tuples_popped) +
              " answers=" + std::to_string(stats.answers_emitted) +
              " fetches=" + std::to_string(stats.neighbor_group_fetches) +
              "}";
    }
    *out += "\n";
    return;
  }

  *out += node.join_vars.empty()
              ? std::string("CrossProduct")
              : "RankJoin [" + VarList(node.join_vars, catalog) + "]";
  *out += "  est=" + FormatEstimate(node.est_cardinality) + " rows";
  if (with_stats && node.stream != nullptr) {
    const EvaluatorStats stats = node.stream->OperatorStats();
    *out += "  {emitted=" + std::to_string(stats.answers_emitted) +
            " live-peak=" + std::to_string(stats.max_join_live) + "}";
  }
  *out += "\n";
  AppendNode(*node.left, catalog, with_stats, child_prefix + "|-- ",
             child_prefix + "|   ", out);
  AppendNode(*node.right, catalog, with_stats, child_prefix + "`-- ",
             child_prefix + "    ", out);
}

}  // namespace

std::string RenderPlanTree(const QueryPlan& plan, bool with_stats) {
  std::string out;
  if (plan.root == nullptr) return out;
  AppendNode(*plan.root, plan.catalog, with_stats, "", "", &out);
  return out;
}

}  // namespace omega
