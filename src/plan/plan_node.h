// The planner's intermediate representation: a binary tree whose leaves are
// prepared conjuncts and whose inner nodes are rank joins. QueryEngine
// compiles a plan into the matching BindingStream tree (any shape, not just
// left-deep) and keeps the annotated plan alive alongside the stream so
// EXPLAIN can render the chosen tree with estimates and, after execution,
// per-operator EvaluatorStats.
#ifndef OMEGA_PLAN_PLAN_NODE_H_
#define OMEGA_PLAN_PLAN_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "eval/rank_join.h"
#include "plan/statistics.h"

namespace omega {

/// One operator of a query plan. Leaves (left == nullptr) evaluate a single
/// conjunct; inner nodes rank-join their children on `join_vars` (empty:
/// ranked cross product).
struct PlanNode {
  // --- leaf fields ---------------------------------------------------------
  size_t conjunct_index = 0;  ///< index into Query::conjuncts
  std::string description;    ///< conjunct text, e.g. "(?X, a.b-, ?Y)"
  ConjunctEstimate estimate;  ///< leaf-level estimate

  // --- inner fields --------------------------------------------------------
  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;
  std::vector<VarId> join_vars;  ///< shared slots joined on (sorted)

  // --- common --------------------------------------------------------------
  std::vector<VarId> variables;   ///< slots bound below this node (sorted)
  double est_cardinality = 0;     ///< estimated rows this operator emits
  /// Observer into the compiled stream tree (owned by the root stream);
  /// set by CompilePlan, null until then. Lets EXPLAIN pull per-operator
  /// EvaluatorStats after execution.
  const BindingStream* stream = nullptr;

  bool is_leaf() const { return left == nullptr; }
};

/// A planned query: the operator tree plus the variable catalogue needed to
/// print slot names.
struct QueryPlan {
  VarCatalog catalog;
  std::unique_ptr<PlanNode> root;
};

/// Multi-line rendering of the plan tree. With `with_stats` (EXPLAIN
/// ANALYZE), nodes that have a compiled stream also print actual row counts
/// from live EvaluatorStats next to the estimate, with a mis-estimate ratio
/// (`err=actual/estimated`) — zeros before execution.
std::string RenderPlanTree(const QueryPlan& plan, bool with_stats);

class TraceRecorder;  // obs/trace.h

/// Emits one trace event per plan operator carrying its pull/emit totals
/// and estimated-vs-actual cardinality (the trace-side view of EXPLAIN
/// ANALYZE). Call after draining the stream; no-op when `trace` is null or
/// the plan was never compiled. Deliberately totals-only: per-pull span
/// recording would put a lock on the rank-join hot path.
void RecordOperatorTrace(const QueryPlan& plan, TraceRecorder* trace);

}  // namespace omega

#endif  // OMEGA_PLAN_PLAN_NODE_H_
