#include "plan/planner.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <limits>
#include <utility>

namespace omega {
namespace {

std::unique_ptr<PlanNode> MakeLeafNode(PlanLeaf leaf) {
  auto node = std::make_unique<PlanNode>();
  node->conjunct_index = leaf.conjunct_index;
  node->description = std::move(leaf.description);
  node->estimate = leaf.estimate;
  node->variables = std::move(leaf.variables);
  node->est_cardinality = leaf.estimate.cardinality;
  return node;
}

/// Estimated output of joining two components: the independence model again
/// — each shared variable divides the pair product by the variable's domain
/// |V|. No shared variable means a plain product (ranked cross product).
double JoinCardinality(const PlanNode& a, const PlanNode& b,
                       size_t num_shared, double num_nodes) {
  double card = a.est_cardinality * b.est_cardinality;
  for (size_t i = 0; i < num_shared && num_nodes > 0; ++i) card /= num_nodes;
  return card;
}

std::unique_ptr<PlanNode> JoinNodes(std::unique_ptr<PlanNode> smaller,
                                    std::unique_ptr<PlanNode> larger,
                                    double num_nodes) {
  auto node = std::make_unique<PlanNode>();
  std::set_intersection(smaller->variables.begin(), smaller->variables.end(),
                        larger->variables.begin(), larger->variables.end(),
                        std::back_inserter(node->join_vars));
  std::set_union(smaller->variables.begin(), smaller->variables.end(),
                 larger->variables.begin(), larger->variables.end(),
                 std::back_inserter(node->variables));
  node->est_cardinality = JoinCardinality(*smaller, *larger,
                                          node->join_vars.size(), num_nodes);
  node->left = std::move(smaller);
  node->right = std::move(larger);
  return node;
}

}  // namespace

std::unique_ptr<PlanNode> PlanGreedyBushy(std::vector<PlanLeaf> leaves,
                                          size_t num_graph_nodes) {
  assert(!leaves.empty());
  const double num_nodes = static_cast<double>(num_graph_nodes);
  std::vector<std::unique_ptr<PlanNode>> components;
  components.reserve(leaves.size());
  for (PlanLeaf& leaf : leaves) {
    components.push_back(MakeLeafNode(std::move(leaf)));
  }

  while (components.size() > 1) {
    size_t best_i = 0, best_j = 1;
    bool best_connected = false;
    double best_card = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < components.size(); ++i) {
      for (size_t j = i + 1; j < components.size(); ++j) {
        std::vector<VarId> shared;
        std::set_intersection(components[i]->variables.begin(),
                              components[i]->variables.end(),
                              components[j]->variables.begin(),
                              components[j]->variables.end(),
                              std::back_inserter(shared));
        // A provably-empty side makes even a cross product free (the join
        // short-circuits after one pull), so treat it as connected rather
        // than deferring it behind real work.
        const bool connected = !shared.empty() ||
                               components[i]->est_cardinality == 0 ||
                               components[j]->est_cardinality == 0;
        if (best_connected && !connected) continue;
        const double card = JoinCardinality(*components[i], *components[j],
                                            shared.size(), num_nodes);
        if (connected == best_connected && card >= best_card) continue;
        best_i = i;
        best_j = j;
        best_connected = connected;
        best_card = card;
      }
    }
    std::unique_ptr<PlanNode> a = std::move(components[best_i]);
    std::unique_ptr<PlanNode> b = std::move(components[best_j]);
    // The join operator's round-robin pull starts on its left input: put the
    // most selective side there so an empty or tiny input is discovered
    // before the sibling produces anything.
    if (b->est_cardinality < a->est_cardinality) std::swap(a, b);
    components[best_i] = JoinNodes(std::move(a), std::move(b), num_nodes);
    components.erase(components.begin() + static_cast<ptrdiff_t>(best_j));
  }
  return std::move(components.front());
}

std::unique_ptr<PlanNode> PlanLeftDeep(std::vector<PlanLeaf> leaves,
                                       const std::vector<size_t>& order,
                                       size_t num_graph_nodes) {
  assert(!leaves.empty());
  assert(order.size() == leaves.size());
  const double num_nodes = static_cast<double>(num_graph_nodes);
  std::unique_ptr<PlanNode> tree = MakeLeafNode(std::move(leaves[order[0]]));
  for (size_t i = 1; i < order.size(); ++i) {
    tree = JoinNodes(std::move(tree), MakeLeafNode(std::move(leaves[order[i]])),
                     num_nodes);
  }
  return tree;
}

std::unique_ptr<BindingStream> CompilePlan(
    PlanNode* root, std::vector<std::unique_ptr<BindingStream>>* leaf_streams,
    size_t max_live_tuples, CancelToken cancel) {
  if (root->is_leaf()) {
    std::unique_ptr<BindingStream> stream =
        std::move((*leaf_streams)[root->conjunct_index]);
    assert(stream != nullptr && "leaf stream consumed twice");
    root->stream = stream.get();
    return stream;
  }
  auto join = std::make_unique<RankJoinStream>(
      CompilePlan(root->left.get(), leaf_streams, max_live_tuples, cancel),
      CompilePlan(root->right.get(), leaf_streams, max_live_tuples, cancel),
      max_live_tuples, cancel);
  root->stream = join.get();
  return join;
}

}  // namespace omega
