// NFA-level cardinality estimation for the cost-based planner: a per-conjunct
// selectivity/cardinality estimate derived from the prepared automaton's
// initial and accepting label sets, priced with the GraphStore's per-label
// statistics (Tails/Heads cardinalities, edge counts). Estimates are about
// *ordering* conjuncts, not predicting exact counts: constant endpoints fall
// out near-1 selectivity, Σ*-heavy regexes at |V|-scale, and a conjunct whose
// required constant or label set is absent from the graph is provably empty.
#ifndef OMEGA_PLAN_STATISTICS_H_
#define OMEGA_PLAN_STATISTICS_H_

#include "eval/conjunct_evaluator.h"
#include "index/index_probe_stream.h"
#include "store/graph_store.h"

namespace omega {

/// Planner-facing estimate of one prepared conjunct.
struct ConjunctEstimate {
  /// Estimated candidate start nodes (1 for a present constant source).
  double sources = 0;
  /// Estimated candidate end nodes (1 for a present constant target).
  double targets = 0;
  /// Estimated answer rows the conjunct stream will emit.
  double cardinality = 0;
  /// cardinality / |domain|, where the domain is |V| per variable endpoint
  /// (so a fully-constant conjunct is a 0-or-1-row filter). In [0, 1].
  double selectivity = 0;
  /// True when the conjunct can be proven empty without evaluation: a
  /// constant endpoint absent from the graph, or an initial/accepting label
  /// set that matches no stored edge.
  bool provably_empty = false;
};

/// Estimates `prepared` against `graph`. Ontology-blind by design: RELAX
/// down-set matching widens label sets beyond what is counted here, so RELAX
/// conjuncts are under-estimated — acceptable for ordering, since relaxation
/// widens every conjunct of the query alike.
ConjunctEstimate EstimateConjunct(const PreparedConjunct& prepared,
                                  const GraphStore& graph);

/// Prices an index-probe substitution from its precomputed reach set — the
/// exact structure IndexProbeStream will enumerate, so unlike the NFA-level
/// estimate above this one is a true count, not a heuristic: cardinality is
/// the reach-set size (variable target) or a 0/1 containment test (constant
/// target). `reach` may be null (absent label — the set is then extras-only).
ConjunctEstimate EstimateIndexProbe(const IndexProbePlan& plan,
                                    const ProbeReachSet& set,
                                    const LabelReachability* reach,
                                    const GraphStore& graph);

}  // namespace omega

#endif  // OMEGA_PLAN_STATISTICS_H_
