// Join-order planning for multi-conjunct queries. The planner enumerates
// join orders over the query's shared-variable connectivity graph: greedy
// selectivity-ordered bushy construction (repeatedly join the pair of
// components with the cheapest estimated output, cross products deferred to
// last) or a caller-given left-deep order (the seed's textual order, kept as
// the reference behind QueryEngineOptions::plan_mode). CompilePlan turns any
// tree shape into the matching RankJoinStream tree — the generalisation of
// the old left-deep-only BuildJoinTree.
#ifndef OMEGA_PLAN_PLANNER_H_
#define OMEGA_PLAN_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/plan_node.h"

namespace omega {

/// Planner input: one prepared conjunct reduced to what ordering needs.
struct PlanLeaf {
  size_t conjunct_index = 0;      ///< index into Query::conjuncts
  std::string description;        ///< conjunct text for EXPLAIN
  std::vector<VarId> variables;   ///< slots the conjunct binds (sorted)
  ConjunctEstimate estimate;
};

/// Greedy selectivity-ordered bushy construction: while more than one
/// component remains, join the pair with the smallest estimated output
/// cardinality among pairs that share a variable (or where one side is
/// provably empty — joining against it is free and short-circuits the rest);
/// once no such pair exists, the cheapest ranked cross product. Within a
/// join, the smaller-estimate side becomes the left child, so the operator's
/// first pull lands on the most selective input. Deterministic: ties break
/// on leaf positions.
std::unique_ptr<PlanNode> PlanGreedyBushy(std::vector<PlanLeaf> leaves,
                                          size_t num_graph_nodes);

/// Left-deep tree in the given order over `leaves` positions (identity order
/// == the seed's textual-order BuildJoinTree). `order` must be a permutation
/// of [0, leaves.size()).
std::unique_ptr<PlanNode> PlanLeftDeep(std::vector<PlanLeaf> leaves,
                                       const std::vector<size_t>& order,
                                       size_t num_graph_nodes);

/// Compiles `root` into the matching BindingStream tree, moving each leaf's
/// stream out of `leaf_streams` (indexed by conjunct_index) and recording
/// observer pointers on the plan nodes for EXPLAIN. Every join operator
/// enforces `max_live_tuples` on its own tables and heap and polls `cancel`
/// per pull.
std::unique_ptr<BindingStream> CompilePlan(
    PlanNode* root, std::vector<std::unique_ptr<BindingStream>>* leaf_streams,
    size_t max_live_tuples, CancelToken cancel = {});

}  // namespace omega

#endif  // OMEGA_PLAN_PLANNER_H_
