#include "plan/statistics.h"

#include <algorithm>

#include "common/flat_hash.h"
#include "common/pack.h"

namespace omega {
namespace {

/// Packed identity of a transition's neighbour group (SameNeighborGroup
/// collapsed to one word): kind and direction in the high bits, the label or
/// class node in the low 32. Transitions in the same group fetch the same
/// node set, so they must be counted once — APPROX/RELAX automatons repeat
/// each label across many states.
uint64_t GroupTag(const NfaTransition& t) {
  uint64_t tag = (static_cast<uint64_t>(t.kind) << 40) |
                 (static_cast<uint64_t>(t.dir) << 36);
  tag |= t.kind == TransitionKind::kConstrainedType
             ? static_cast<uint64_t>(t.class_node)
             : static_cast<uint64_t>(t.label);
  return tag;
}

/// Tail or head cardinality of `stats` along a traversal direction: a node
/// that can take an edge outgoing is a tail, incoming a head.
double EndpointCount(const LabelStats& stats, Direction dir) {
  return static_cast<double>(dir == Direction::kOutgoing ? stats.num_tails
                                                         : stats.num_heads);
}

/// Candidate start nodes of one transition group — the counting twin of
/// InitialNodeStream::CandidatesFor, priced from the store's LabelStats
/// (cardinalities instead of materialised sets; overlaps between groups
/// over-count, the |V| cap bounds the damage).
double StartCandidates(const GraphStore& g, const NfaTransition& t) {
  switch (t.kind) {
    case TransitionKind::kEpsilon:
      return 0;  // ε-free by construction
    case TransitionKind::kLabel:
      if (t.label == kInvalidLabel) return 0;
      return EndpointCount(g.StatsForLabel(t.label), t.dir);
    case TransitionKind::kAnyLabel:
      return EndpointCount(g.SigmaStats(), t.dir) +
             EndpointCount(g.StatsForLabel(LabelDictionary::kTypeLabel),
                           t.dir);
    case TransitionKind::kAnyLabelBothDirs: {
      const LabelStats sigma = g.SigmaStats();
      const LabelStats type = g.StatsForLabel(LabelDictionary::kTypeLabel);
      return static_cast<double>(sigma.num_tails + sigma.num_heads +
                                 type.num_tails + type.num_heads);
    }
    case TransitionKind::kConstrainedType:
      return EndpointCount(g.StatsForLabel(LabelDictionary::kTypeLabel),
                           Direction::kOutgoing);
  }
  return 0;
}

/// Candidate end nodes after traversing `t`: the node landed on is a head of
/// the edge for outgoing traversal, a tail for incoming.
double EndCandidates(const GraphStore& g, const NfaTransition& t) {
  switch (t.kind) {
    case TransitionKind::kEpsilon:
      return 0;
    case TransitionKind::kLabel:
      if (t.label == kInvalidLabel) return 0;
      return EndpointCount(g.StatsForLabel(t.label), Reverse(t.dir));
    case TransitionKind::kAnyLabel:
      return EndpointCount(g.SigmaStats(), Reverse(t.dir)) +
             EndpointCount(g.StatsForLabel(LabelDictionary::kTypeLabel),
                           Reverse(t.dir));
    case TransitionKind::kAnyLabelBothDirs: {
      const LabelStats sigma = g.SigmaStats();
      const LabelStats type = g.StatsForLabel(LabelDictionary::kTypeLabel);
      return static_cast<double>(sigma.num_tails + sigma.num_heads +
                                 type.num_tails + type.num_heads);
    }
    case TransitionKind::kConstrainedType:
      // Lands on a class node: a head of some stored `type` edge.
      return EndpointCount(g.StatsForLabel(LabelDictionary::kTypeLabel),
                           Direction::kIncoming);
  }
  return 0;
}

}  // namespace

ConjunctEstimate EstimateConjunct(const PreparedConjunct& prepared,
                                  const GraphStore& graph) {
  ConjunctEstimate est;
  const Nfa& nfa = prepared.nfa;
  const double num_nodes = static_cast<double>(graph.NumNodes());
  if (graph.NumNodes() == 0) {
    est.provably_empty = true;
    return est;
  }

  // --- sources: candidate start nodes --------------------------------------
  if (!prepared.eval_source.is_variable) {
    est.sources = graph.FindNode(prepared.eval_source.name) ? 1 : 0;
  } else if (nfa.IsFinal(nfa.initial())) {
    // The empty path is accepted, so every node of G starts an answer (the
    // GetAllNodesByLabel case): Σ*-heavy regexes land here.
    est.sources = num_nodes;
  } else {
    FlatHashSet<uint64_t> seen_groups;
    double total = 0;
    for (const NfaTransition& t : nfa.Out(nfa.initial())) {
      if (!seen_groups.Insert(GroupTag(t))) continue;
      total += StartCandidates(graph, t);
    }
    est.sources = std::min(total, num_nodes);
  }

  // --- targets: candidate end nodes ----------------------------------------
  if (!prepared.eval_target.is_variable) {
    est.targets = graph.FindNode(prepared.eval_target.name) ? 1 : 0;
  } else if (nfa.IsFinal(nfa.initial())) {
    est.targets = num_nodes;  // every source is its own target at the least
  } else {
    FlatHashSet<uint64_t> seen_groups;
    double total = 0;
    for (StateId s = 0; s < nfa.NumStates(); ++s) {
      for (const NfaTransition& t : nfa.Out(s)) {
        if (!nfa.IsFinal(t.to)) continue;
        if (!seen_groups.Insert(GroupTag(t))) continue;
        total += EndCandidates(graph, t);
      }
    }
    est.targets = std::min(total, num_nodes);
  }

  // --- cardinality / selectivity -------------------------------------------
  if (est.sources == 0 || est.targets == 0) {
    est.provably_empty = true;
    return est;
  }
  // Independence model: each candidate source answers among the candidate
  // targets at uniform density targets / |V|. Deliberately naive — skewed
  // degree distributions (hub joins) are under-estimated, but the *relative*
  // order of conjuncts survives, which is all the greedy planner consumes.
  est.cardinality = est.sources * est.targets / num_nodes;
  int variable_endpoints = 0;
  if (prepared.eval_source.is_variable) ++variable_endpoints;
  if (prepared.eval_target.is_variable &&
      !(prepared.eval_source.is_variable &&
        prepared.eval_source.name == prepared.eval_target.name)) {
    ++variable_endpoints;
  }
  double domain = 1;
  for (int i = 0; i < variable_endpoints; ++i) domain *= num_nodes;
  est.selectivity = std::clamp(est.cardinality / domain, 0.0, 1.0);
  return est;
}

ConjunctEstimate EstimateIndexProbe(const IndexProbePlan& plan,
                                    const ProbeReachSet& set,
                                    const LabelReachability* reach,
                                    const GraphStore& graph) {
  ConjunctEstimate est;
  est.sources = plan.source != kInvalidNode ? 1 : 0;
  if (plan.target_is_constant) {
    // Fully-constant probe: a 0-or-1-row filter, decided right here.
    const bool hit =
        plan.target != kInvalidNode && set.Contains(reach, plan.target);
    est.targets = hit ? 1 : 0;
    est.cardinality = hit ? 1 : 0;
    est.selectivity = hit ? 1 : 0;
    est.provably_empty = !hit;
    return est;
  }
  const double count = static_cast<double>(set.Count(reach));
  est.targets = count;
  est.cardinality = count;  // exact: the stream enumerates this very set
  est.provably_empty = count == 0;
  const double domain = std::max<double>(1.0, graph.NumNodes());
  est.selectivity = std::clamp(count / domain, 0.0, 1.0);
  return est;
}

}  // namespace omega
