#include "rpq/regex_ast.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace omega {
namespace {

RegexPtr MakeNode(RegexOp op) {
  auto node = std::make_unique<RegexNode>();
  node->op = op;
  return node;
}

/// Precedence for parenthesisation: alternation < concat < postfix/atom.
int Precedence(RegexOp op) {
  switch (op) {
    case RegexOp::kAlternation:
      return 0;
    case RegexOp::kConcat:
      return 1;
    default:
      return 2;
  }
}

void AppendWithParens(const RegexNode& child, int min_precedence,
                      std::string* out) {
  const bool parens = Precedence(child.op) < min_precedence;
  if (parens) out->push_back('(');
  *out += ToString(child);
  if (parens) out->push_back(')');
}

}  // namespace

RegexPtr MakeEpsilon() { return MakeNode(RegexOp::kEpsilon); }

RegexPtr MakeLabel(std::string label, Direction dir) {
  auto node = MakeNode(RegexOp::kLabel);
  node->label = std::move(label);
  node->dir = dir;
  return node;
}

RegexPtr MakeWildcard(Direction dir) {
  auto node = MakeNode(RegexOp::kWildcard);
  node->dir = dir;
  return node;
}

RegexPtr MakeConcat(std::vector<RegexPtr> children) {
  assert(children.size() >= 2);
  auto node = MakeNode(RegexOp::kConcat);
  node->children = std::move(children);
  return node;
}

RegexPtr MakeAlternation(std::vector<RegexPtr> children) {
  assert(children.size() >= 2);
  auto node = MakeNode(RegexOp::kAlternation);
  node->children = std::move(children);
  return node;
}

RegexPtr MakeStar(RegexPtr child) {
  auto node = MakeNode(RegexOp::kStar);
  node->children.push_back(std::move(child));
  return node;
}

RegexPtr MakePlus(RegexPtr child) {
  auto node = MakeNode(RegexOp::kPlus);
  node->children.push_back(std::move(child));
  return node;
}

RegexPtr Clone(const RegexNode& node) {
  auto copy = std::make_unique<RegexNode>();
  copy->op = node.op;
  copy->label = node.label;
  copy->dir = node.dir;
  copy->children.reserve(node.children.size());
  for (const auto& child : node.children) {
    copy->children.push_back(Clone(*child));
  }
  return copy;
}

std::string ToString(const RegexNode& node) {
  switch (node.op) {
    case RegexOp::kEpsilon:
      return "()";
    case RegexOp::kLabel:
      return node.dir == Direction::kOutgoing ? node.label : node.label + "-";
    case RegexOp::kWildcard:
      return node.dir == Direction::kOutgoing ? "_" : "_-";
    case RegexOp::kConcat: {
      std::string out;
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out.push_back('.');
        AppendWithParens(*node.children[i], Precedence(RegexOp::kConcat), &out);
      }
      return out;
    }
    case RegexOp::kAlternation: {
      std::string out;
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out.push_back('|');
        AppendWithParens(*node.children[i], Precedence(RegexOp::kConcat), &out);
      }
      return out;
    }
    case RegexOp::kStar:
    case RegexOp::kPlus: {
      std::string out;
      AppendWithParens(*node.children[0], 2, &out);
      out.push_back(node.op == RegexOp::kStar ? '*' : '+');
      return out;
    }
  }
  return "";
}

RegexPtr ReverseRegex(const RegexNode& node) {
  switch (node.op) {
    case RegexOp::kEpsilon:
      return MakeEpsilon();
    case RegexOp::kLabel:
      return MakeLabel(node.label, Reverse(node.dir));
    case RegexOp::kWildcard:
      return MakeWildcard(Reverse(node.dir));
    case RegexOp::kConcat: {
      std::vector<RegexPtr> reversed;
      reversed.reserve(node.children.size());
      for (auto it = node.children.rbegin(); it != node.children.rend(); ++it) {
        reversed.push_back(ReverseRegex(**it));
      }
      return MakeConcat(std::move(reversed));
    }
    case RegexOp::kAlternation: {
      std::vector<RegexPtr> branches;
      branches.reserve(node.children.size());
      for (const auto& child : node.children) {
        branches.push_back(ReverseRegex(*child));
      }
      return MakeAlternation(std::move(branches));
    }
    case RegexOp::kStar:
      return MakeStar(ReverseRegex(*node.children[0]));
    case RegexOp::kPlus:
      return MakePlus(ReverseRegex(*node.children[0]));
  }
  return nullptr;
}

bool RegexEquals(const RegexNode& a, const RegexNode& b) {
  if (a.op != b.op || a.label != b.label || a.dir != b.dir ||
      a.children.size() != b.children.size()) {
    return false;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!RegexEquals(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

std::vector<const RegexNode*> TopLevelAlternatives(const RegexNode& node) {
  if (node.op != RegexOp::kAlternation) return {&node};
  std::vector<const RegexNode*> out;
  out.reserve(node.children.size());
  for (const auto& child : node.children) out.push_back(child.get());
  return out;
}

namespace {

// True when `node` is a bare atom matching (is_wildcard, label, dir); when
// `*first` is still unset, the atom defines the shape instead.
bool MatchAtom(const RegexNode& node, std::optional<ClosureShape>* first) {
  if (node.op != RegexOp::kLabel && node.op != RegexOp::kWildcard) {
    return false;
  }
  const bool wildcard = node.op == RegexOp::kWildcard;
  if (!first->has_value()) {
    ClosureShape shape;
    shape.is_wildcard = wildcard;
    if (!wildcard) shape.label = node.label;
    shape.dir = node.dir;
    *first = std::move(shape);
    return true;
  }
  const ClosureShape& shape = **first;
  if (shape.is_wildcard != wildcard || shape.dir != node.dir) return false;
  return wildcard || shape.label == node.label;
}

}  // namespace

std::optional<ClosureShape> RecognizeClosureShape(const RegexNode& node) {
  std::vector<const RegexNode*> factors;
  if (node.op == RegexOp::kConcat) {
    for (const auto& child : node.children) factors.push_back(child.get());
  } else {
    factors.push_back(&node);
  }
  std::optional<ClosureShape> shape;
  uint32_t min_hops = 0;
  bool has_closure = false;
  for (const RegexNode* factor : factors) {
    switch (factor->op) {
      case RegexOp::kLabel:
      case RegexOp::kWildcard:
        if (!MatchAtom(*factor, &shape)) return std::nullopt;
        ++min_hops;
        break;
      case RegexOp::kStar:
      case RegexOp::kPlus:
        if (!MatchAtom(*factor->children[0], &shape)) return std::nullopt;
        if (factor->op == RegexOp::kPlus) ++min_hops;
        has_closure = true;
        break;
      default:
        return std::nullopt;
    }
  }
  if (!shape.has_value() || !has_closure) return std::nullopt;
  shape->min_hops = min_hops;
  return shape;
}

std::optional<uint32_t> MaxEdgeCount(const RegexNode& node) {
  switch (node.op) {
    case RegexOp::kEpsilon:
      return 0;
    case RegexOp::kLabel:
    case RegexOp::kWildcard:
      return 1;
    case RegexOp::kConcat: {
      uint64_t total = 0;
      for (const auto& child : node.children) {
        const std::optional<uint32_t> n = MaxEdgeCount(*child);
        if (!n.has_value()) return std::nullopt;
        total += *n;
      }
      return total > std::numeric_limits<uint32_t>::max()
                 ? std::nullopt
                 : std::optional<uint32_t>(static_cast<uint32_t>(total));
    }
    case RegexOp::kAlternation: {
      uint32_t longest = 0;
      for (const auto& child : node.children) {
        const std::optional<uint32_t> n = MaxEdgeCount(*child);
        if (!n.has_value()) return std::nullopt;
        longest = std::max(longest, *n);
      }
      return longest;
    }
    case RegexOp::kStar:
    case RegexOp::kPlus:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace omega
