// Text syntax for CRP queries, matching the paper's console examples:
//
//   (?X) <- APPROX (UK, isLocatedIn-.gradFrom, ?X)
//   (?X, ?Y) <- (?X, job.type, ?Y), RELAX (?Y, next+, ?X)
//
// Constants may contain spaces; variables start with '?'.
#ifndef OMEGA_RPQ_QUERY_PARSER_H_
#define OMEGA_RPQ_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "rpq/query.h"

namespace omega {

/// Parses and validates a full CRP query.
Result<Query> ParseQuery(std::string_view text);

/// Parses a single conjunct like "APPROX (UK, a-.b, ?X)".
Result<Conjunct> ParseConjunct(std::string_view text);

}  // namespace omega

#endif  // OMEGA_RPQ_QUERY_PARSER_H_
