#include "rpq/query.h"

#include <algorithm>

namespace omega {

const char* ConjunctModeToString(ConjunctMode mode) {
  switch (mode) {
    case ConjunctMode::kExact:
      return "EXACT";
    case ConjunctMode::kApprox:
      return "APPROX";
    case ConjunctMode::kRelax:
      return "RELAX";
  }
  return "?";
}

std::vector<std::string> Query::BodyVariables() const {
  std::vector<std::string> vars;
  auto add = [&vars](const Endpoint& e) {
    if (e.is_variable &&
        std::find(vars.begin(), vars.end(), e.name) == vars.end()) {
      vars.push_back(e.name);
    }
  };
  for (const Conjunct& c : conjuncts) {
    add(c.source);
    add(c.target);
  }
  return vars;
}

std::string ToString(const Conjunct& conjunct) {
  auto endpoint = [](const Endpoint& e) {
    return e.is_variable ? "?" + e.name : e.name;
  };
  std::string out;
  if (conjunct.mode != ConjunctMode::kExact) {
    out += ConjunctModeToString(conjunct.mode);
    out += ' ';
  }
  out += "(" + endpoint(conjunct.source) + ", " + ToString(*conjunct.regex) +
         ", " + endpoint(conjunct.target) + ")";
  return out;
}

std::string Query::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += "?" + head[i];
  }
  out += ") <- ";
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) out += ", ";
    out += omega::ToString(conjuncts[i]);
  }
  return out;
}

Status ValidateQuery(const Query& query) {
  if (query.head.empty()) {
    return Status::InvalidArgument("query head must project >=1 variable");
  }
  if (query.conjuncts.empty()) {
    return Status::InvalidArgument("query must have >=1 conjunct");
  }
  for (const Conjunct& c : query.conjuncts) {
    if (c.regex == nullptr) {
      return Status::InvalidArgument("conjunct missing regular expression");
    }
    for (const Endpoint* e : {&c.source, &c.target}) {
      if (e->name.empty()) {
        return Status::InvalidArgument("conjunct endpoint must be non-empty");
      }
    }
  }
  const std::vector<std::string> body_vars = query.BodyVariables();
  for (const std::string& var : query.head) {
    if (std::find(body_vars.begin(), body_vars.end(), var) ==
        body_vars.end()) {
      return Status::InvalidArgument("head variable ?" + var +
                                     " does not appear in the query body");
    }
  }
  return Status::OK();
}

}  // namespace omega
