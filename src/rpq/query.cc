#include "rpq/query.h"

#include <algorithm>

namespace omega {

const char* ConjunctModeToString(ConjunctMode mode) {
  switch (mode) {
    case ConjunctMode::kExact:
      return "EXACT";
    case ConjunctMode::kApprox:
      return "APPROX";
    case ConjunctMode::kRelax:
      return "RELAX";
  }
  return "?";
}

std::vector<std::string> Query::BodyVariables() const {
  std::vector<std::string> vars;
  auto add = [&vars](const Endpoint& e) {
    if (e.is_variable &&
        std::find(vars.begin(), vars.end(), e.name) == vars.end()) {
      vars.push_back(e.name);
    }
  };
  for (const Conjunct& c : conjuncts) {
    add(c.source);
    add(c.target);
  }
  return vars;
}

std::string ToString(const Conjunct& conjunct) {
  auto endpoint = [](const Endpoint& e) {
    return e.is_variable ? "?" + e.name : e.name;
  };
  std::string out;
  if (conjunct.mode != ConjunctMode::kExact) {
    out += ConjunctModeToString(conjunct.mode);
    out += ' ';
  }
  out += "(" + endpoint(conjunct.source) + ", " + ToString(*conjunct.regex) +
         ", " + endpoint(conjunct.target) + ")";
  return out;
}

std::string Query::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += "?" + head[i];
  }
  out += ") <- ";
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) out += ", ";
    out += omega::ToString(conjuncts[i]);
  }
  return out;
}

Conjunct Clone(const Conjunct& conjunct) {
  Conjunct out;
  out.mode = conjunct.mode;
  out.source = conjunct.source;
  out.target = conjunct.target;
  if (conjunct.regex != nullptr) out.regex = Clone(*conjunct.regex);
  return out;
}

Query Clone(const Query& query) {
  Query out;
  out.head = query.head;
  out.conjuncts.reserve(query.conjuncts.size());
  for (const Conjunct& c : query.conjuncts) out.conjuncts.push_back(Clone(c));
  return out;
}

std::string Query::CanonicalKey() const {
  // first-appearance renaming: original name -> dense canonical name.
  std::vector<std::pair<std::string, std::string>> rename;
  auto canon = [&rename](const std::string& var) -> std::string {
    for (const auto& [from, to] : rename) {
      if (from == var) return to;
    }
    rename.emplace_back(var, "v" + std::to_string(rename.size()));
    return rename.back().second;
  };
  auto endpoint = [&](const Endpoint& e) {
    return e.is_variable ? "?" + canon(e.name) : e.name;
  };
  std::string out = "(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += "?" + canon(head[i]);
  }
  out += ") <- ";
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const Conjunct& c = conjuncts[i];
    if (i > 0) out += ", ";
    if (c.mode != ConjunctMode::kExact) {
      out += ConjunctModeToString(c.mode);
      out += ' ';
    }
    out += "(" + endpoint(c.source) + ", " +
           (c.regex == nullptr ? std::string("<null>")
                               : omega::ToString(*c.regex)) +
           ", " + endpoint(c.target) + ")";
  }
  return out;
}

Status ValidateQuery(const Query& query) {
  if (query.head.empty()) {
    return Status::InvalidArgument("query head must project >=1 variable");
  }
  if (query.conjuncts.empty()) {
    return Status::InvalidArgument("query must have >=1 conjunct");
  }
  for (const Conjunct& c : query.conjuncts) {
    if (c.regex == nullptr) {
      return Status::InvalidArgument("conjunct missing regular expression");
    }
    for (const Endpoint* e : {&c.source, &c.target}) {
      if (e->name.empty()) {
        return Status::InvalidArgument("conjunct endpoint must be non-empty");
      }
    }
  }
  const std::vector<std::string> body_vars = query.BodyVariables();
  for (const std::string& var : query.head) {
    if (std::find(body_vars.begin(), body_vars.end(), var) ==
        body_vars.end()) {
      return Status::InvalidArgument("head variable ?" + var +
                                     " does not appear in the query body");
    }
  }
  return Status::OK();
}

}  // namespace omega
