// Conjunctive regular path (CRP) query model:
//   (Z1,...,Zm) <- [APPROX|RELAX] (X1,R1,Y1), ..., (Xn,Rn,Yn)
// where each Xi / Yi is a variable (?Name) or a constant node label and each
// Ri is a regular expression over edge labels.
#ifndef OMEGA_RPQ_QUERY_H_
#define OMEGA_RPQ_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rpq/regex_ast.h"

namespace omega {

/// Evaluation mode of a single conjunct (§2 of the paper).
enum class ConjunctMode {
  kExact,
  kApprox,
  kRelax,
};

const char* ConjunctModeToString(ConjunctMode mode);

/// A query endpoint: either a variable or a constant node label. Constants
/// may contain spaces ("Work Episode", "BTEC Introductory Diploma").
struct Endpoint {
  bool is_variable = false;
  std::string name;  // variable name without '?', or the constant label

  static Endpoint Variable(std::string name) {
    return Endpoint{true, std::move(name)};
  }
  static Endpoint Constant(std::string label) {
    return Endpoint{false, std::move(label)};
  }
  bool operator==(const Endpoint&) const = default;
};

/// One conjunct (X, R, Y), optionally APPROXed or RELAXed.
struct Conjunct {
  ConjunctMode mode = ConjunctMode::kExact;
  Endpoint source;
  RegexPtr regex;
  Endpoint target;
};

/// Round-trippable text of one conjunct, e.g. "APPROX (?X, a.b-, ?Y)" —
/// the fragment Query::ToString prints and the EXPLAIN leaf label.
std::string ToString(const Conjunct& conjunct);

/// Deep copy (the regex AST is cloned). Queries are move-only because
/// conjuncts own their regexes; serving layers that re-submit a shared
/// workload clone explicitly instead of copying by accident.
Conjunct Clone(const Conjunct& conjunct);

/// A full CRP query. `head` lists the projected variable names (no '?').
struct Query {
  std::vector<std::string> head;
  std::vector<Conjunct> conjuncts;

  /// Distinct variable names across all conjuncts, in first-use order.
  std::vector<std::string> BodyVariables() const;

  /// Round-trippable text form.
  std::string ToString() const;

  /// Cache-key text form: like ToString() but with every variable renamed
  /// to ?v0, ?v1, ... in first-appearance order (head first, then body), so
  /// queries that differ only in variable naming share one key. Conjunct
  /// order and regex spelling are preserved — the key identifies the query
  /// as written, not its full equivalence class.
  std::string CanonicalKey() const;
};

/// Deep copy of a whole query.
Query Clone(const Query& query);

/// Semantic checks: >=1 head var and >=1 conjunct, every head variable bound
/// in the body, every conjunct regex present.
Status ValidateQuery(const Query& query);

}  // namespace omega

#endif  // OMEGA_RPQ_QUERY_H_
