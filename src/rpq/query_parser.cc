#include "rpq/query_parser.h"

#include <cctype>
#include <string>

#include "common/strings.h"
#include "rpq/regex_parser.h"

namespace omega {
namespace {

Result<Endpoint> ParseEndpoint(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty()) {
    return Status::InvalidArgument("empty query endpoint");
  }
  if (text[0] == '?') {
    std::string_view name = text.substr(1);
    if (name.empty()) {
      return Status::InvalidArgument("variable name missing after '?'");
    }
    for (char c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        return Status::InvalidArgument("invalid variable name: " +
                                       std::string(text));
      }
    }
    return Endpoint::Variable(std::string(name));
  }
  return Endpoint::Constant(std::string(text));
}

}  // namespace

Result<Conjunct> ParseConjunct(std::string_view text) {
  std::string_view body = StripWhitespace(text);
  ConjunctMode mode = ConjunctMode::kExact;
  if (StartsWith(body, "APPROX")) {
    mode = ConjunctMode::kApprox;
    body = StripWhitespace(body.substr(6));
  } else if (StartsWith(body, "RELAX")) {
    mode = ConjunctMode::kRelax;
    body = StripWhitespace(body.substr(5));
  }
  if (body.size() < 2 || body.front() != '(' || body.back() != ')') {
    return Status::InvalidArgument("conjunct must be parenthesised: " +
                                   std::string(text));
  }
  body = body.substr(1, body.size() - 2);
  auto parts = SplitTopLevel(body, ',');
  if (parts.size() != 3) {
    return Status::InvalidArgument(
        "conjunct must be (source, regex, target): " + std::string(text));
  }

  Result<Endpoint> source = ParseEndpoint(parts[0]);
  if (!source.ok()) return source.status();
  Result<RegexPtr> regex = ParseRegex(parts[1]);
  if (!regex.ok()) return regex.status();
  Result<Endpoint> target = ParseEndpoint(parts[2]);
  if (!target.ok()) return target.status();

  Conjunct conjunct;
  conjunct.mode = mode;
  conjunct.source = std::move(source).value();
  conjunct.regex = std::move(regex).value();
  conjunct.target = std::move(target).value();
  return conjunct;
}

Result<Query> ParseQuery(std::string_view text) {
  const size_t arrow = text.find("<-");
  if (arrow == std::string_view::npos) {
    return Status::InvalidArgument("query must contain '<-'");
  }
  std::string_view head_text = StripWhitespace(text.substr(0, arrow));
  std::string_view body_text = StripWhitespace(text.substr(arrow + 2));

  if (head_text.size() < 2 || head_text.front() != '(' ||
      head_text.back() != ')') {
    return Status::InvalidArgument("query head must be parenthesised");
  }
  Query query;
  for (const std::string& var :
       Split(head_text.substr(1, head_text.size() - 2), ',', /*trim=*/true)) {
    if (var.empty() || var[0] != '?') {
      return Status::InvalidArgument("head entries must be variables: " + var);
    }
    query.head.push_back(var.substr(1));
  }

  for (const std::string& conjunct_text : SplitTopLevel(body_text, ',')) {
    if (conjunct_text.empty()) {
      return Status::InvalidArgument("empty conjunct in query body");
    }
    Result<Conjunct> conjunct = ParseConjunct(conjunct_text);
    if (!conjunct.ok()) return conjunct.status();
    query.conjuncts.push_back(std::move(conjunct).value());
  }

  OMEGA_RETURN_NOT_OK(ValidateQuery(query));
  return query;
}

}  // namespace omega
