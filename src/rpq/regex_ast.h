// AST for the paper's regular expressions over edge labels:
//
//   R ::= ε | a | a- | _ | R.R | R|R | R* | R+
//
// where `a` ranges over Σ ∪ {type}, `a-` traverses an edge in reverse and
// `_` is the disjunction of all labels (one forward edge of any label).
#ifndef OMEGA_RPQ_REGEX_AST_H_
#define OMEGA_RPQ_REGEX_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "store/types.h"

namespace omega {

enum class RegexOp {
  kEpsilon,      ///< matches the empty path
  kLabel,        ///< one edge with a specific label (forward or reverse)
  kWildcard,     ///< one edge with any label (`_`), direction per `dir`
  kConcat,       ///< R1.R2...Rk
  kAlternation,  ///< R1|R2|...|Rk
  kStar,         ///< R*
  kPlus,         ///< R+
};

struct RegexNode;
using RegexPtr = std::unique_ptr<RegexNode>;

struct RegexNode {
  RegexOp op;
  std::string label;                        // kLabel only
  Direction dir = Direction::kOutgoing;     // kLabel / kWildcard
  std::vector<RegexPtr> children;           // kConcat/kAlternation: >=2;
                                            // kStar/kPlus: exactly 1
};

// --- constructors ------------------------------------------------------------

RegexPtr MakeEpsilon();
RegexPtr MakeLabel(std::string label, Direction dir = Direction::kOutgoing);
RegexPtr MakeWildcard(Direction dir = Direction::kOutgoing);
RegexPtr MakeConcat(std::vector<RegexPtr> children);
RegexPtr MakeAlternation(std::vector<RegexPtr> children);
RegexPtr MakeStar(RegexPtr child);
RegexPtr MakePlus(RegexPtr child);

/// Deep copy.
RegexPtr Clone(const RegexNode& node);

/// Unparses with minimal parentheses; ParseRegex(ToString(r)) == r.
std::string ToString(const RegexNode& node);

/// Language reversal: paths matching Reverse(R) are exactly the reversals of
/// paths matching R. Runs in linear time on the AST (the paper's Case 2
/// transformation (?X, R, C) -> (C, R-, ?X)).
RegexPtr ReverseRegex(const RegexNode& node);

/// Structural equality.
bool RegexEquals(const RegexNode& a, const RegexNode& b);

/// If `node` is a top-level alternation, returns its branches; otherwise
/// returns {&node}. Used by the alternation->disjunction optimisation.
std::vector<const RegexNode*> TopLevelAlternatives(const RegexNode& node);

// --- shape analysis ----------------------------------------------------------

/// A regex whose language is {a^k : k >= min_hops} for one atom `a` — the
/// shapes (`a*`, `a+`, `a.a*`, `a-*`, `_*`, ...) the reachability index can
/// answer with an interval probe instead of an NFA walk. The atom is either
/// a single (label, direction) or the wildcard `_` with a direction.
struct ClosureShape {
  bool is_wildcard = false;
  std::string label;                     // meaningful iff !is_wildcard
  Direction dir = Direction::kOutgoing;
  uint32_t min_hops = 0;                 // 0 for a*, 1 for a+ / a.a*, ...
};

/// Recognises single-atom closures: a concatenation (possibly of length 1)
/// of `a`, `a*`, `a+` factors over one identical atom, containing at least
/// one star or plus. Returns nullopt for every other shape.
std::optional<ClosureShape> RecognizeClosureShape(const RegexNode& node);

/// Edge count of the longest path the language accepts, or nullopt when it
/// is unbounded (the regex contains a star/plus). Used by the distance
/// sketch to bound how far a flexible match can stray from the endpoints.
std::optional<uint32_t> MaxEdgeCount(const RegexNode& node);

}  // namespace omega

#endif  // OMEGA_RPQ_REGEX_AST_H_
