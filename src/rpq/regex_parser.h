// Recursive-descent parser for the paper's regular-expression syntax:
//   concatenation '.', alternation '|', closure '*' / '+', reversal suffix
//   '-', wildcard '_', empty path '()', grouping '(...)'.
// Example from the paper: "prereq*.next+.prereq".
#ifndef OMEGA_RPQ_REGEX_PARSER_H_
#define OMEGA_RPQ_REGEX_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "rpq/regex_ast.h"

namespace omega {

/// Parses `text` into an AST. Labels are [A-Za-z0-9_]+ with '_' alone
/// denoting the wildcard. Errors carry a position-annotated message.
Result<RegexPtr> ParseRegex(std::string_view text);

}  // namespace omega

#endif  // OMEGA_RPQ_REGEX_PARSER_H_
