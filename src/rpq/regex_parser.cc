#include "rpq/regex_parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace omega {
namespace {

bool IsLabelChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<RegexPtr> Parse() {
    Result<RegexPtr> regex = ParseAlternation();
    if (!regex.ok()) return regex;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    return regex;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(what + " at offset " +
                                   std::to_string(pos_) + " in regex '" +
                                   std::string(text_) + "'");
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipWhitespace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (!Peek(c)) return false;
    ++pos_;
    return true;
  }

  Result<RegexPtr> ParseAlternation() {
    Result<RegexPtr> first = ParseConcat();
    if (!first.ok()) return first;
    std::vector<RegexPtr> branches;
    branches.push_back(std::move(first).value());
    while (Consume('|')) {
      Result<RegexPtr> next = ParseConcat();
      if (!next.ok()) return next;
      branches.push_back(std::move(next).value());
    }
    if (branches.size() == 1) return std::move(branches[0]);
    return MakeAlternation(std::move(branches));
  }

  Result<RegexPtr> ParseConcat() {
    Result<RegexPtr> first = ParsePostfix();
    if (!first.ok()) return first;
    std::vector<RegexPtr> parts;
    parts.push_back(std::move(first).value());
    while (Consume('.')) {
      Result<RegexPtr> next = ParsePostfix();
      if (!next.ok()) return next;
      parts.push_back(std::move(next).value());
    }
    if (parts.size() == 1) return std::move(parts[0]);
    return MakeConcat(std::move(parts));
  }

  Result<RegexPtr> ParsePostfix() {
    Result<RegexPtr> atom = ParseAtom();
    if (!atom.ok()) return atom;
    RegexPtr node = std::move(atom).value();
    for (;;) {
      if (Consume('*')) {
        node = MakeStar(std::move(node));
      } else if (Consume('+')) {
        node = MakePlus(std::move(node));
      } else if (Peek('-')) {
        // Reversal applies to label/wildcard atoms only (grammar: a-).
        if (node->op != RegexOp::kLabel && node->op != RegexOp::kWildcard) {
          return Error("'-' may only reverse a label or '_'");
        }
        if (node->dir == Direction::kIncoming) {
          return Error("label is already reversed");
        }
        ++pos_;
        node->dir = Direction::kIncoming;
      } else {
        break;
      }
    }
    return node;
  }

  Result<RegexPtr> ParseAtom() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("expected label, '_' or '('");
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      if (Consume(')')) return MakeEpsilon();  // "()" is the empty path
      Result<RegexPtr> inner = ParseAlternation();
      if (!inner.ok()) return inner;
      if (!Consume(')')) return Error("expected ')'");
      return inner;
    }
    if (IsLabelChar(c)) {
      const size_t start = pos_;
      while (pos_ < text_.size() && IsLabelChar(text_[pos_])) ++pos_;
      std::string label(text_.substr(start, pos_ - start));
      if (label == "_") return MakeWildcard();
      return MakeLabel(std::move(label));
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<RegexPtr> ParseRegex(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace omega
