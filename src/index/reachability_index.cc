#include "index/reachability_index.h"

#include <algorithm>
#include <string>

#include "store/label_dictionary.h"
#include "store/oid_set.h"

namespace omega {
namespace {

// The label's subgraph compacted to its incident nodes: a local CSR whose
// row/target ids are positions in the sorted active-node list. Everything
// downstream (Tarjan, interval propagation) runs on dense local ids.
struct LocalGraph {
  std::vector<NodeId> nodes;      // sorted active nodes
  std::vector<uint32_t> offsets;  // size nodes.size() + 1
  std::vector<uint32_t> targets;  // local ids
};

uint32_t LocalOf(const std::vector<NodeId>& nodes, NodeId n) {
  const auto it = std::lower_bound(nodes.begin(), nodes.end(), n);
  return static_cast<uint32_t>(it - nodes.begin());
}

// Appends the merged (sorted, deduped) union of two sorted neighbor spans.
void AppendMergedTargets(const std::vector<NodeId>& nodes,
                         std::span<const NodeId> a, std::span<const NodeId> b,
                         std::vector<uint32_t>* targets) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    NodeId next;
    if (j >= b.size() || (i < a.size() && a[i] <= b[j])) {
      next = a[i];
      if (j < b.size() && b[j] == next) ++j;
      ++i;
    } else {
      next = b[j];
      ++j;
    }
    targets->push_back(LocalOf(nodes, next));
  }
}

LocalGraph BuildLocalGraph(const GraphStore& graph, LabelId label,
                           Direction dir) {
  LocalGraph lg;
  const bool sigma = label == ReachabilityIndex::kSigmaLabel;
  OidSet active;
  if (sigma) {
    active = OidSet::Union(
        OidSet::Union(graph.SigmaEndpoints(Direction::kOutgoing),
                      graph.SigmaEndpoints(Direction::kIncoming)),
        OidSet::Union(graph.TypeEndpoints(Direction::kOutgoing),
                      graph.TypeEndpoints(Direction::kIncoming)));
  } else {
    active = graph.TailsAndHeads(label);
  }
  lg.nodes.assign(active.ids().begin(), active.ids().end());
  lg.offsets.reserve(lg.nodes.size() + 1);
  lg.offsets.push_back(0);
  for (const NodeId n : lg.nodes) {
    if (sigma) {
      AppendMergedTargets(lg.nodes, graph.SigmaNeighbors(n, dir),
                          graph.TypeNeighbors(n, dir), &lg.targets);
    } else {
      for (const NodeId t : graph.Neighbors(n, label, dir)) {
        lg.targets.push_back(LocalOf(lg.nodes, t));
      }
    }
    lg.offsets.push_back(static_cast<uint32_t>(lg.targets.size()));
  }
  return lg;
}

// Iterative Tarjan. Components are numbered in emission order, which is
// reverse-topological on the condensation: every cross edge c -> d has
// d < c, so the ids double as the interval numbering.
uint32_t CondenseSccs(const LocalGraph& lg, std::vector<uint32_t>* comp_of) {
  const uint32_t n = static_cast<uint32_t>(lg.nodes.size());
  comp_of->assign(n, UINT32_MAX);
  std::vector<uint32_t> index(n, UINT32_MAX);
  std::vector<uint32_t> low(n, 0);
  std::vector<uint8_t> on_stack(n, 0);
  std::vector<uint32_t> stack;
  struct Frame {
    uint32_t v;
    uint32_t edge;
  };
  std::vector<Frame> frames;
  uint32_t counter = 0;
  uint32_t num_components = 0;
  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != UINT32_MAX) continue;
    index[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack[root] = 1;
    frames.push_back({root, 0});
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const uint32_t v = frame.v;
      if (lg.offsets[v] + frame.edge < lg.offsets[v + 1]) {
        const uint32_t w = lg.targets[lg.offsets[v] + frame.edge++];
        if (index[w] == UINT32_MAX) {
          index[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      } else {
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
        if (low[v] == index[v]) {
          while (true) {
            const uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            (*comp_of)[w] = num_components;
            if (w == v) break;
          }
          ++num_components;
        }
      }
    }
  }
  return num_components;
}

}  // namespace

uint32_t LabelReachability::LocalId(NodeId n) const {
  const std::span<const NodeId> ids = nodes.span();
  const auto it = std::lower_bound(ids.begin(), ids.end(), n);
  if (it == ids.end() || *it != n) return kNotIndexed;
  return static_cast<uint32_t>(it - ids.begin());
}

std::optional<uint32_t> LabelReachability::ComponentOf(NodeId n) const {
  const uint32_t local = LocalId(n);
  if (local == kNotIndexed) return std::nullopt;
  return comp_of[local];
}

bool LabelReachability::Reachable(NodeId u, NodeId v) const {
  if (u == v) return true;  // the empty path
  const uint32_t lu = LocalId(u);
  const uint32_t lv = LocalId(v);
  if (lu == kNotIndexed || lv == kNotIndexed) return false;
  return IntervalsContain(comp_of[lu], comp_of[lv]);
}

bool LabelReachability::IntervalsContain(uint32_t component,
                                         uint32_t target) const {
  const std::span<const uint32_t> pairs = IntervalsOf(component);
  size_t lo = 0;
  size_t hi = pairs.size() / 2;
  while (lo < hi) {  // last pair with pair.lo <= target
    const size_t mid = (lo + hi) / 2;
    if (pairs[2 * mid] <= target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo > 0 && target <= pairs[2 * (lo - 1) + 1];
}

std::span<const uint32_t> LabelReachability::IntervalsOf(
    uint32_t component) const {
  return intervals.span().subspan(2 * interval_offsets[component],
                                  2 * (interval_offsets[component + 1] -
                                       interval_offsets[component]));
}

std::span<const NodeId> LabelReachability::MembersOf(uint32_t component) const {
  return members.span().subspan(
      member_offsets[component],
      member_offsets[component + 1] - member_offsets[component]);
}

Status LabelReachability::Validate(size_t num_nodes, bool deep) const {
  const size_t n = nodes.size();
  if (comp_of.size() != n || members.size() != n) {
    return Status::InvalidArgument("reach index: array sizes disagree");
  }
  if (interval_offsets.empty() || member_offsets.empty() ||
      interval_offsets.size() != member_offsets.size()) {
    return Status::InvalidArgument("reach index: offset arrays malformed");
  }
  const size_t components = interval_offsets.size() - 1;
  if (components > n) {
    return Status::InvalidArgument("reach index: more components than nodes");
  }
  if (interval_offsets[0] != 0 || member_offsets[0] != 0) {
    return Status::InvalidArgument("reach index: offsets must start at 0");
  }
  for (size_t c = 0; c < components; ++c) {
    if (interval_offsets[c + 1] < interval_offsets[c] ||
        member_offsets[c + 1] < member_offsets[c]) {
      return Status::InvalidArgument("reach index: offsets not monotone");
    }
  }
  if (2 * static_cast<size_t>(interval_offsets[components]) !=
      intervals.size()) {
    return Status::InvalidArgument("reach index: interval offsets vs data");
  }
  if (member_offsets[components] != members.size()) {
    return Status::InvalidArgument("reach index: member offsets vs data");
  }
  for (size_t i = 0; i < n; ++i) {
    if (comp_of[i] >= components) {
      return Status::InvalidArgument("reach index: component id out of range");
    }
  }
  for (size_t i = 0; i + 1 < intervals.size(); i += 2) {
    if (intervals[i] > intervals[i + 1] || intervals[i + 1] >= components) {
      return Status::InvalidArgument("reach index: interval out of range");
    }
  }
  if (!deep) return Status::OK();

  for (size_t i = 0; i < n; ++i) {
    if (nodes[i] >= num_nodes || (i > 0 && nodes[i] <= nodes[i - 1])) {
      return Status::InvalidArgument("reach index: node list invalid");
    }
  }
  for (uint32_t c = 0; c < components; ++c) {
    const std::span<const uint32_t> pairs = IntervalsOf(c);
    for (size_t i = 2; i < pairs.size(); i += 2) {
      if (pairs[i] <= pairs[i - 1]) {
        return Status::InvalidArgument("reach index: intervals not disjoint");
      }
    }
    if (!IntervalsContain(c, c)) {
      return Status::InvalidArgument(
          "reach index: component missing from own intervals");
    }
    const std::span<const NodeId> group = MembersOf(c);
    for (size_t i = 0; i < group.size(); ++i) {
      const uint32_t local = LocalId(group[i]);
      if (local == kNotIndexed || comp_of[local] != c ||
          (i > 0 && group[i] <= group[i - 1])) {
        return Status::InvalidArgument("reach index: member grouping invalid");
      }
    }
  }
  return Status::OK();
}

std::optional<LabelReachability> ReachabilityIndex::BuildFor(
    const GraphStore& graph, LabelId label, Direction dir,
    const ReachabilityBuildOptions& options) {
  const LocalGraph lg = BuildLocalGraph(graph, label, dir);
  std::vector<uint32_t> comp_of;
  const uint32_t components = CondenseSccs(lg, &comp_of);
  const size_t budget =
      options.interval_budget_factor * components + options.interval_budget_slack;

  // Distinct cross-component successors, CSR'd by source component. Every
  // cross edge points at a smaller id, so components can be processed in
  // increasing order with all successor interval lists already final.
  std::vector<std::pair<uint32_t, uint32_t>> cross;
  for (uint32_t v = 0; v < lg.nodes.size(); ++v) {
    for (uint32_t e = lg.offsets[v]; e < lg.offsets[v + 1]; ++e) {
      const uint32_t d = comp_of[lg.targets[e]];
      if (d != comp_of[v]) cross.emplace_back(comp_of[v], d);
    }
  }
  std::sort(cross.begin(), cross.end());
  cross.erase(std::unique(cross.begin(), cross.end()), cross.end());
  std::vector<uint32_t> succ_offsets(components + 1, 0);
  for (const auto& [c, d] : cross) {
    (void)d;
    ++succ_offsets[c + 1];
  }
  for (uint32_t c = 0; c < components; ++c) {
    succ_offsets[c + 1] += succ_offsets[c];
  }

  std::vector<uint32_t> interval_offsets{0};
  interval_offsets.reserve(components + 1);
  std::vector<uint32_t> intervals;
  std::vector<std::pair<uint32_t, uint32_t>> scratch;
  for (uint32_t c = 0; c < components; ++c) {
    scratch.clear();
    scratch.emplace_back(c, c);
    for (uint32_t s = succ_offsets[c]; s < succ_offsets[c + 1]; ++s) {
      const uint32_t d = cross[s].second;
      for (uint32_t p = interval_offsets[d]; p < interval_offsets[d + 1]; ++p) {
        scratch.emplace_back(intervals[2 * p], intervals[2 * p + 1]);
      }
    }
    std::sort(scratch.begin(), scratch.end());
    size_t merged = 0;
    for (size_t i = 1; i < scratch.size(); ++i) {
      if (scratch[i].first <= scratch[merged].second + 1) {
        scratch[merged].second =
            std::max(scratch[merged].second, scratch[i].second);
      } else {
        scratch[++merged] = scratch[i];
      }
    }
    scratch.resize(scratch.size() == 0 ? 0 : merged + 1);
    if (intervals.size() / 2 + scratch.size() > budget) return std::nullopt;
    for (const auto& [lo, hi] : scratch) {
      intervals.push_back(lo);
      intervals.push_back(hi);
    }
    interval_offsets.push_back(static_cast<uint32_t>(intervals.size() / 2));
  }

  // Members: counting-sort locals by component; per-component order stays
  // ascending because locals are visited in node order.
  std::vector<uint32_t> member_offsets(components + 1, 0);
  for (const uint32_t c : comp_of) ++member_offsets[c + 1];
  for (uint32_t c = 0; c < components; ++c) {
    member_offsets[c + 1] += member_offsets[c];
  }
  std::vector<NodeId> members(lg.nodes.size());
  std::vector<uint32_t> cursor(member_offsets.begin(),
                               member_offsets.end() - 1);
  for (uint32_t v = 0; v < lg.nodes.size(); ++v) {
    members[cursor[comp_of[v]]++] = lg.nodes[v];
  }

  LabelReachability reach;
  reach.nodes = ConstArray<NodeId>(std::vector<NodeId>(lg.nodes));
  reach.comp_of = ConstArray<uint32_t>(std::move(comp_of));
  reach.interval_offsets = ConstArray<uint32_t>(std::move(interval_offsets));
  reach.intervals = ConstArray<uint32_t>(std::move(intervals));
  reach.member_offsets = ConstArray<uint32_t>(std::move(member_offsets));
  reach.members = ConstArray<NodeId>(std::move(members));
  return reach;
}

ReachabilityIndex ReachabilityIndex::BuildAll(
    const GraphStore& graph, const ReachabilityBuildOptions& options) {
  ReachabilityIndex index;
  std::vector<LabelId> labels = graph.labels().SigmaLabels();
  labels.push_back(LabelDictionary::kTypeLabel);
  labels.push_back(kSigmaLabel);
  for (const LabelId label : labels) {
    const bool has_edges =
        label == kSigmaLabel
            ? graph.NumEdges() > 0
            : !graph.Tails(label).empty() || !graph.Heads(label).empty();
    if (!has_edges) continue;
    for (const Direction dir : {Direction::kOutgoing, Direction::kIncoming}) {
      std::optional<LabelReachability> reach =
          BuildFor(graph, label, dir, options);
      if (reach.has_value()) index.Add(label, dir, *std::move(reach));
    }
  }
  return index;
}

void ReachabilityIndex::Add(LabelId label, Direction dir,
                            LabelReachability reach) {
  Entry entry;
  entry.label = label;
  entry.dir = dir;
  entry.reach = std::make_unique<LabelReachability>(std::move(reach));
  entries_.push_back(std::move(entry));
}

const LabelReachability* ReachabilityIndex::Find(LabelId label,
                                                 Direction dir) const {
  for (const Entry& entry : entries_) {
    if (entry.label == label && entry.dir == dir) return entry.reach.get();
  }
  return nullptr;
}

}  // namespace omega
