// Hub-based distance sketch for the distance-aware operator: BFS hop
// distances from a handful of high-degree hub nodes over the *undirected*
// sigma + type graph, stored as one row per hub. The triangle inequality
// turns the rows into a lower bound on the hop distance between any two
// nodes — LowerBound(u, v) = max_h |d(h,u) - d(h,v)| — and a hub that
// reaches exactly one of the two proves they sit in different undirected
// components. DistanceAwareStream converts the hop bound into a cost floor
// (every hop beyond the regex's longest exact path costs at least one
// insertion) and skips psi rounds below it.
#ifndef OMEGA_INDEX_DISTANCE_SKETCH_H_
#define OMEGA_INDEX_DISTANCE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/const_array.h"
#include "common/lifetime_annotations.h"
#include "common/status.h"
#include "store/graph_store.h"
#include "store/types.h"

namespace omega {

struct DistanceSketchOptions {
  /// Number of BFS sources; picked as the highest-degree nodes. More hubs
  /// tighten the bound linearly in memory (one u32 row per hub).
  size_t num_hubs = 16;
};

class DistanceSketch {
 public:
  /// Row value for a node a hub's BFS never reached.
  static constexpr uint32_t kUnreachable = UINT32_MAX;

  DistanceSketch() = default;

  static DistanceSketch Build(const GraphStore& graph,
                              const DistanceSketchOptions& options = {});

  /// Assembles a sketch from snapshot arrays; validates the shape
  /// (distances.size() == hubs.size() * num_nodes, hub ids in range).
  static Result<DistanceSketch> FromParts(ConstArray<NodeId> hubs,
                                          ConstArray<uint32_t> distances,
                                          size_t num_nodes);

  /// Lower bound on the undirected hop distance between u and v;
  /// kUnreachable when some hub proves they are in different components.
  /// Always 0 when the sketch is empty or the ids are out of range.
  uint32_t LowerBound(NodeId u, NodeId v) const;

  size_t num_hubs() const { return hubs_.size(); }
  size_t num_nodes() const { return num_nodes_; }
  bool empty() const { return hubs_.empty(); }

  std::span<const NodeId> hubs() const OMEGA_LIFETIME_BOUND {
    return hubs_.span();
  }
  /// Row-major num_hubs() x num_nodes() hop distances.
  std::span<const uint32_t> distances() const OMEGA_LIFETIME_BOUND {
    return distances_.span();
  }

 private:
  ConstArray<NodeId> hubs_;
  ConstArray<uint32_t> distances_;
  size_t num_nodes_ = 0;
};

}  // namespace omega

#endif  // OMEGA_INDEX_DISTANCE_SKETCH_H_
