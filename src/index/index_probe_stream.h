// AnswerStream that answers an index-eligible closure conjunct — language
// {a^k : k >= min_hops} from a constant source — off the reachability index
// instead of the NFA product walk. A bounded frontier expansion covers the
// mandatory min_hops prefix, then the frontier's merged interval lists give
// the closure: a containment test when the target is constant, an
// O(answer) member enumeration when it is a variable. All answers are
// exact-mode (distance 0), so emission order is trivially ranked.
#ifndef OMEGA_INDEX_INDEX_PROBE_STREAM_H_
#define OMEGA_INDEX_INDEX_PROBE_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "eval/answer.h"
#include "index/reachability_index.h"
#include "store/graph_store.h"
#include "store/types.h"

namespace omega {

/// The probe a recognised closure conjunct compiles to.
struct IndexProbePlan {
  /// Atom: wildcard uses the sigma-union index, otherwise `label`.
  bool is_wildcard = false;
  LabelId label = kInvalidLabel;
  Direction dir = Direction::kOutgoing;
  /// Mandatory hops before the closure kicks in (0 for a*, 1 for a+).
  uint32_t min_hops = 0;
  /// Source node (the constant endpoint); kInvalidNode when the constant
  /// did not resolve, making the probe provably empty.
  NodeId source = kInvalidNode;
  /// Target node when the other endpoint is a constant too.
  bool target_is_constant = false;
  NodeId target = kInvalidNode;
};

/// The reachable set of a probe, reduced to index terms: merged component
/// intervals plus "extra" unindexed nodes (nodes with no edges of the
/// label reach only themselves). Shared by the stream and the planner's
/// cardinality estimate so both price exactly what will be enumerated.
struct ProbeReachSet {
  std::vector<std::pair<uint32_t, uint32_t>> intervals;  // sorted, disjoint
  std::vector<NodeId> extras;                            // sorted, deduped

  bool Contains(const LabelReachability* reach, NodeId node) const;
  size_t Count(const LabelReachability* reach) const;
};

/// Computes the probe's reachable set. `reach` may be null when the label
/// has no edges at all (then only the empty path can match). Returns
/// nullopt when the min_hops frontier expansion exceeds `frontier_cap`
/// nodes — the signal to keep the NFA walk instead.
std::optional<ProbeReachSet> ComputeProbeReachSet(
    const GraphStore& graph, const LabelReachability* reach,
    const IndexProbePlan& plan, size_t frontier_cap = 4096);

class IndexProbeStream : public AnswerStream {
 public:
  /// `set` is the precomputed reach set of (plan, reach) — the engine
  /// computes it once at substitution time and shares it with the
  /// estimator. `reach` may be null (absent label).
  IndexProbeStream(const LabelReachability* reach, const IndexProbePlan& plan,
                   ProbeReachSet set);

  bool Next(Answer* out) override;
  const Status& status() const override { return status_; }
  EvaluatorStats stats() const override { return stats_; }

 private:
  const LabelReachability* reach_;
  IndexProbePlan plan_;
  ProbeReachSet set_;
  Status status_ = Status::OK();
  EvaluatorStats stats_;

  bool done_ = false;
  size_t interval_ = 0;       // index into set_.intervals
  uint32_t component_ = 0;    // current component inside the interval
  size_t member_ = 0;         // index into the component's member list
  size_t extra_ = 0;          // index into set_.extras
};

}  // namespace omega

#endif  // OMEGA_INDEX_INDEX_PROBE_STREAM_H_
