#include "index/index_manager.h"

#include <algorithm>
#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"

namespace omega {
namespace {

uint64_t KeyOf(LabelId label, Direction dir) {
  return (static_cast<uint64_t>(label) << 1) |
         static_cast<uint64_t>(dir == Direction::kIncoming);
}

// Lazy index builds happen at most once per (label, dir) / sketch, so the
// registry lookups below are cold-path by construction.
Histogram* IndexBuildHistogram() {
  static Histogram* const histogram = MetricsRegistry::Global()->GetHistogram(
      "omega_index_build_us",
      "Lazy reachability-index / distance-sketch build time");
  return histogram;
}

Counter* IndexBuildUnavailableCounter() {
  static Counter* const counter = MetricsRegistry::Global()->GetCounter(
      "omega_index_build_unavailable_total",
      "Per-label index builds abandoned over the interval budget");
  return counter;
}

}  // namespace

IndexManager::IndexManager(const GraphStore* graph) : graph_(graph) {}

IndexManager::IndexManager(const GraphStore* graph, ReachabilityIndex preloaded,
                           std::optional<DistanceSketch> sketch)
    : graph_(graph),
      preloaded_(std::move(preloaded)),
      preloaded_sketch_(std::move(sketch)) {}

const LabelReachability* IndexManager::Reachability(LabelId label,
                                                    Direction dir) const {
  if (const LabelReachability* reach = preloaded_.Find(label, dir)) {
    return reach;
  }
  const uint64_t key = KeyOf(label, dir);
  MutexLock lock(mu_);
  if (const LabelReachability* reach = built_.Find(label, dir)) return reach;
  if (std::find(unavailable_.begin(), unavailable_.end(), key) !=
      unavailable_.end()) {
    return nullptr;
  }
  const Timer build_timer;
  std::optional<LabelReachability> reach =
      ReachabilityIndex::BuildFor(*graph_, label, dir, build_options_);
  IndexBuildHistogram()->Observe(
      static_cast<uint64_t>(build_timer.ElapsedUs()));
  if (!reach.has_value()) {
    IndexBuildUnavailableCounter()->Increment();
    unavailable_.push_back(key);
    return nullptr;
  }
  built_.Add(label, dir, *std::move(reach));
  return built_.Find(label, dir);
}

const DistanceSketch* IndexManager::Sketch() const {
  if (preloaded_sketch_.has_value()) return &*preloaded_sketch_;
  MutexLock lock(mu_);
  if (!built_sketch_.has_value()) {
    const Timer build_timer;
    built_sketch_ = DistanceSketch::Build(*graph_);
    IndexBuildHistogram()->Observe(
        static_cast<uint64_t>(build_timer.ElapsedUs()));
  }
  return &*built_sketch_;
}

}  // namespace omega
