// Per-label reachability index in the FERRARI shape (ROADMAP open item 2):
// condense the label's subgraph into SCCs, number the condensation DAG in
// reverse-topological order, and store a sorted, merged interval list per
// component over those numbers. `Reachable(u, v)` is then a binary search —
// v is reachable from u iff v's component id falls inside one of u's
// intervals — and the full reachable *set* of u enumerates in O(answer) by
// walking the members of every component the intervals cover.
//
// Unlike FERRARI's approximate variant we keep intervals exact and instead
// bound the build with a total-interval budget: a (label, direction) whose
// merged lists exceed the budget is simply not indexed (BuildFor returns
// nullopt) and the engine keeps the NFA walk. Storage is six plain arrays
// per entry, which is what lets the snapshot writer persist an index as
// checksummed sections and the reader hand back borrowed views.
#ifndef OMEGA_INDEX_REACHABILITY_INDEX_H_
#define OMEGA_INDEX_REACHABILITY_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/const_array.h"
#include "common/lifetime_annotations.h"
#include "common/status.h"
#include "store/graph_store.h"
#include "store/types.h"

namespace omega {

struct ReachabilityBuildOptions {
  /// Interval budget for one (label, direction): factor * num_components +
  /// slack merged intervals. Chains and trees use ~1 interval per
  /// component; adversarial crossing patterns blow past the budget and
  /// fall back to the unindexed NFA walk.
  size_t interval_budget_factor = 8;
  size_t interval_budget_slack = 64;
};

/// Reachability structure for one (label, direction): "is there a directed
/// path u -> v using only `label` edges traversed in `dir`". Answers
/// include the empty path (every node reaches itself).
///
/// All arrays are ConstArray so an instance either owns freshly built
/// vectors or borrows snapshot-mapped spans; accessors return views into
/// them and are lifetime-bound accordingly.
struct LabelReachability {
  static constexpr uint32_t kNotIndexed = UINT32_MAX;

  /// Sorted node ids incident to >=1 edge of the label (either endpoint).
  /// Nodes outside this set reach exactly themselves.
  ConstArray<NodeId> nodes;
  /// Local index -> condensation component id. Components are numbered in
  /// reverse-topological order (an edge c -> d implies d < c), so the id
  /// doubles as the post-order number the intervals range over.
  ConstArray<uint32_t> comp_of;
  /// CSR over `intervals` in pair units; size num_components() + 1.
  ConstArray<uint32_t> interval_offsets;
  /// Flattened sorted disjoint [lo, hi] component-id pairs per component.
  ConstArray<uint32_t> intervals;
  /// CSR over `members`; size num_components() + 1.
  ConstArray<uint32_t> member_offsets;
  /// Node ids grouped by component (a permutation of `nodes`).
  ConstArray<NodeId> members;

  size_t num_components() const {
    return interval_offsets.empty() ? 0 : interval_offsets.size() - 1;
  }

  /// Local index of `n` in `nodes`, or kNotIndexed.
  uint32_t LocalId(NodeId n) const;

  /// Component id of `n`, or nullopt when `n` has no edges of this label.
  std::optional<uint32_t> ComponentOf(NodeId n) const;

  /// True iff some path of >= 0 `label` edges leads u -> v.
  bool Reachable(NodeId u, NodeId v) const;

  /// True iff component id `target` lies in `component`'s interval list.
  bool IntervalsContain(uint32_t component, uint32_t target) const;

  /// Sorted disjoint [lo, hi] pairs of `component`, flattened.
  std::span<const uint32_t> IntervalsOf(uint32_t component) const
      OMEGA_LIFETIME_BOUND;

  /// Nodes belonging to `component`.
  std::span<const NodeId> MembersOf(uint32_t component) const
      OMEGA_LIFETIME_BOUND;

  /// Structural soundness: offsets monotone and covering, component ids
  /// and interval bounds in range. With `deep`, additionally checks the
  /// semantic invariants (nodes sorted strictly below num_nodes, every
  /// component's intervals sorted/disjoint and containing the component
  /// itself, members a per-component grouping of `nodes`). The snapshot
  /// reader runs the structural half on every open and the deep half
  /// under Verify.
  Status Validate(size_t num_nodes, bool deep) const;
};

/// A set of LabelReachability entries keyed by (label, direction), as built
/// for a whole store or loaded from a snapshot. Entries are heap-allocated
/// so Find() results stay stable while entries are added.
class ReachabilityIndex {
 public:
  /// Pseudo-label for the sigma-union entry: any edge label including
  /// `type`, matching what the wildcard `_` traverses.
  static constexpr LabelId kSigmaLabel = kInvalidLabel;

  /// Builds the index for one (label, dir); `kSigmaLabel` builds over the
  /// merged sigma + type adjacency. Returns nullopt when the interval
  /// budget is exceeded.
  static std::optional<LabelReachability> BuildFor(
      const GraphStore& graph, LabelId label, Direction dir,
      const ReachabilityBuildOptions& options = {});

  /// Builds every per-label entry plus the sigma union, both directions,
  /// skipping labels with no edges and entries over budget.
  static ReachabilityIndex BuildAll(const GraphStore& graph,
                                    const ReachabilityBuildOptions& options = {});

  struct Entry {
    LabelId label = kSigmaLabel;
    Direction dir = Direction::kOutgoing;
    std::unique_ptr<LabelReachability> reach;
  };

  void Add(LabelId label, Direction dir, LabelReachability reach);

  /// The entry for (label, dir), or nullptr when absent (unindexed).
  const LabelReachability* Find(LabelId label, Direction dir) const
      OMEGA_LIFETIME_BOUND;

  const std::vector<Entry>& entries() const OMEGA_LIFETIME_BOUND {
    return entries_;
  }
  bool empty() const { return entries_.empty(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace omega

#endif  // OMEGA_INDEX_REACHABILITY_INDEX_H_
