#include "index/index_probe_stream.h"

#include <algorithm>

namespace omega {
namespace {

// One expansion step of the mandatory-hop frontier over the probe's atom.
void ExpandFrontier(const GraphStore& graph, const IndexProbePlan& plan,
                    const std::vector<NodeId>& frontier,
                    std::vector<NodeId>* next) {
  next->clear();
  for (const NodeId n : frontier) {
    if (plan.is_wildcard) {
      for (const NodeId t : graph.SigmaNeighbors(n, plan.dir)) {
        next->push_back(t);
      }
      for (const NodeId t : graph.TypeNeighbors(n, plan.dir)) {
        next->push_back(t);
      }
    } else if (plan.label != kInvalidLabel) {
      for (const NodeId t : graph.Neighbors(n, plan.label, plan.dir)) {
        next->push_back(t);
      }
    }
  }
  std::sort(next->begin(), next->end());
  next->erase(std::unique(next->begin(), next->end()), next->end());
}

}  // namespace

bool ProbeReachSet::Contains(const LabelReachability* reach,
                             NodeId node) const {
  if (std::binary_search(extras.begin(), extras.end(), node)) return true;
  if (reach == nullptr || intervals.empty()) return false;
  const std::optional<uint32_t> component = reach->ComponentOf(node);
  if (!component.has_value()) return false;
  const auto it = std::upper_bound(
      intervals.begin(), intervals.end(), *component,
      [](uint32_t value, const std::pair<uint32_t, uint32_t>& pair) {
        return value < pair.first;
      });
  return it != intervals.begin() && *component <= std::prev(it)->second;
}

size_t ProbeReachSet::Count(const LabelReachability* reach) const {
  size_t count = extras.size();
  for (const auto& [lo, hi] : intervals) {
    count += reach->member_offsets[hi + 1] - reach->member_offsets[lo];
  }
  return count;
}

std::optional<ProbeReachSet> ComputeProbeReachSet(
    const GraphStore& graph, const LabelReachability* reach,
    const IndexProbePlan& plan, size_t frontier_cap) {
  ProbeReachSet set;
  if (plan.source == kInvalidNode) return set;  // provably empty

  std::vector<NodeId> frontier{plan.source};
  std::vector<NodeId> next;
  for (uint32_t hop = 0; hop < plan.min_hops; ++hop) {
    ExpandFrontier(graph, plan, frontier, &next);
    frontier.swap(next);
    if (frontier.empty()) return set;
    if (frontier.size() > frontier_cap) return std::nullopt;
  }

  for (const NodeId n : frontier) {
    const std::optional<uint32_t> component =
        reach == nullptr ? std::nullopt : reach->ComponentOf(n);
    if (!component.has_value()) {
      set.extras.push_back(n);  // unindexed: reaches only itself
      continue;
    }
    const std::span<const uint32_t> pairs = reach->IntervalsOf(*component);
    for (size_t i = 0; i + 1 < pairs.size(); i += 2) {
      set.intervals.emplace_back(pairs[i], pairs[i + 1]);
    }
  }
  std::sort(set.intervals.begin(), set.intervals.end());
  size_t merged = 0;
  for (size_t i = 1; i < set.intervals.size(); ++i) {
    if (set.intervals[i].first <= set.intervals[merged].second + 1) {
      set.intervals[merged].second =
          std::max(set.intervals[merged].second, set.intervals[i].second);
    } else {
      set.intervals[++merged] = set.intervals[i];
    }
  }
  if (!set.intervals.empty()) set.intervals.resize(merged + 1);
  std::sort(set.extras.begin(), set.extras.end());
  set.extras.erase(std::unique(set.extras.begin(), set.extras.end()),
                   set.extras.end());
  return set;
}

IndexProbeStream::IndexProbeStream(const LabelReachability* reach,
                                   const IndexProbePlan& plan,
                                   ProbeReachSet set)
    : reach_(reach), plan_(plan), set_(std::move(set)) {
  stats_.seeds_added = plan_.source == kInvalidNode ? 0 : 1;
}

bool IndexProbeStream::Next(Answer* out) {
  if (done_) return false;
  if (plan_.target_is_constant) {
    done_ = true;
    if (plan_.target == kInvalidNode || !set_.Contains(reach_, plan_.target)) {
      return false;
    }
    *out = Answer{plan_.source, plan_.target, 0};
    ++stats_.answers_emitted;
    return true;
  }
  while (interval_ < set_.intervals.size()) {
    const auto [lo, hi] = set_.intervals[interval_];
    if (component_ < lo) component_ = lo;
    while (component_ <= hi) {
      const std::span<const NodeId> group = reach_->MembersOf(component_);
      if (member_ < group.size()) {
        *out = Answer{plan_.source, group[member_++], 0};
        ++stats_.answers_emitted;
        return true;
      }
      member_ = 0;
      ++component_;
    }
    ++interval_;
    component_ = 0;
  }
  if (extra_ < set_.extras.size()) {
    *out = Answer{plan_.source, set_.extras[extra_++], 0};
    ++stats_.answers_emitted;
    return true;
  }
  done_ = true;
  return false;
}

}  // namespace omega
