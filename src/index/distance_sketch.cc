#include "index/distance_sketch.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

namespace omega {
namespace {

// One undirected BFS from `hub` over sigma + type edges in both stored
// directions, writing hop counts into `row` (kUnreachable = never seen).
void BfsFrom(const GraphStore& graph, NodeId hub, std::span<uint32_t> row) {
  std::fill(row.begin(), row.end(), DistanceSketch::kUnreachable);
  std::vector<NodeId> frontier{hub};
  row[hub] = 0;
  uint32_t depth = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (const NodeId n : frontier) {
      for (const Direction dir :
           {Direction::kOutgoing, Direction::kIncoming}) {
        for (const std::span<const NodeId> neighbors :
             {graph.SigmaNeighbors(n, dir), graph.TypeNeighbors(n, dir)}) {
          for (const NodeId t : neighbors) {
            if (row[t] != DistanceSketch::kUnreachable) continue;
            row[t] = depth;
            next.push_back(t);
          }
        }
      }
    }
    frontier.swap(next);
  }
}

}  // namespace

DistanceSketch DistanceSketch::Build(const GraphStore& graph,
                                     const DistanceSketchOptions& options) {
  DistanceSketch sketch;
  const size_t num_nodes = graph.NumNodes();
  sketch.num_nodes_ = num_nodes;
  const size_t num_hubs = std::min(options.num_hubs, num_nodes);
  if (num_hubs == 0) return sketch;

  // Highest-degree nodes, ties broken by id for determinism.
  std::vector<NodeId> by_degree(num_nodes);
  for (size_t n = 0; n < num_nodes; ++n) {
    by_degree[n] = static_cast<NodeId>(n);
  }
  std::partial_sort(by_degree.begin(), by_degree.begin() + num_hubs,
                    by_degree.end(), [&graph](NodeId a, NodeId b) {
                      const size_t da = graph.Degree(a);
                      const size_t db = graph.Degree(b);
                      return da != db ? da > db : a < b;
                    });
  std::vector<NodeId> hubs(by_degree.begin(), by_degree.begin() + num_hubs);
  std::sort(hubs.begin(), hubs.end());

  std::vector<uint32_t> distances(num_hubs * num_nodes);
  for (size_t h = 0; h < num_hubs; ++h) {
    BfsFrom(graph, hubs[h],
            std::span<uint32_t>(distances).subspan(h * num_nodes, num_nodes));
  }
  sketch.hubs_ = ConstArray<NodeId>(std::move(hubs));
  sketch.distances_ = ConstArray<uint32_t>(std::move(distances));
  return sketch;
}

Result<DistanceSketch> DistanceSketch::FromParts(ConstArray<NodeId> hubs,
                                                 ConstArray<uint32_t> distances,
                                                 size_t num_nodes) {
  if (distances.size() != hubs.size() * num_nodes) {
    return Status::InvalidArgument("distance sketch: row shape mismatch");
  }
  for (const NodeId hub : hubs.span()) {
    if (hub >= num_nodes) {
      return Status::InvalidArgument("distance sketch: hub id out of range");
    }
  }
  DistanceSketch sketch;
  sketch.hubs_ = std::move(hubs);
  sketch.distances_ = std::move(distances);
  sketch.num_nodes_ = num_nodes;
  return sketch;
}

uint32_t DistanceSketch::LowerBound(NodeId u, NodeId v) const {
  if (u == v || u >= num_nodes_ || v >= num_nodes_) return 0;
  uint32_t bound = 0;
  const std::span<const uint32_t> rows = distances_.span();
  for (size_t h = 0; h < hubs_.size(); ++h) {
    const uint32_t du = rows[h * num_nodes_ + u];
    const uint32_t dv = rows[h * num_nodes_ + v];
    const bool u_reached = du != kUnreachable;
    const bool v_reached = dv != kUnreachable;
    if (u_reached != v_reached) return kUnreachable;
    if (!u_reached) continue;
    bound = std::max(bound, du > dv ? du - dv : dv - du);
  }
  return bound;
}

}  // namespace omega
