// Owns the reachability index and distance sketch for one frozen store.
// The GraphStore itself is contractually free of lazy caches, so the lazy
// half lives here: a manager either starts pre-seeded with the structures a
// snapshot carried (serving pays zero build cost) or builds each entry on
// first use behind an annotated mutex. Returned pointers are stable and
// immutable once published, so callers hold them without the lock.
#ifndef OMEGA_INDEX_INDEX_MANAGER_H_
#define OMEGA_INDEX_INDEX_MANAGER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/lifetime_annotations.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "index/distance_sketch.h"
#include "index/reachability_index.h"
#include "store/graph_store.h"
#include "store/types.h"

namespace omega {

class IndexManager {
 public:
  /// Everything built on demand from `graph` (which must outlive this).
  explicit IndexManager(const GraphStore* graph);

  /// Pre-seeded with snapshot-loaded structures; labels the snapshot did
  /// not carry are still built on demand.
  IndexManager(const GraphStore* graph, ReachabilityIndex preloaded,
               std::optional<DistanceSketch> sketch);

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// Reachability for (label, dir); `ReachabilityIndex::kSigmaLabel` is
  /// the sigma-union entry. Builds and caches on first use; nullptr when
  /// the entry exceeded its interval budget (callers keep the NFA walk).
  const LabelReachability* Reachability(LabelId label, Direction dir) const
      OMEGA_LIFETIME_BOUND OMEGA_EXCLUDES(mu_);

  /// The distance sketch, building on first use. Never null; empty on an
  /// empty graph.
  const DistanceSketch* Sketch() const OMEGA_LIFETIME_BOUND
      OMEGA_EXCLUDES(mu_);

 private:
  const GraphStore* graph_;
  const ReachabilityBuildOptions build_options_{};

  // Snapshot-seeded structures; immutable after construction, so reads
  // need no lock.
  ReachabilityIndex preloaded_;
  std::optional<DistanceSketch> preloaded_sketch_;

  mutable Mutex mu_;
  mutable ReachabilityIndex built_ OMEGA_GUARDED_BY(mu_);
  // (label, dir) keys whose on-demand build exceeded the interval budget —
  // a negative cache so hopeless labels are attempted once.
  mutable std::vector<uint64_t> unavailable_ OMEGA_GUARDED_BY(mu_);
  mutable std::optional<DistanceSketch> built_sketch_ OMEGA_GUARDED_BY(mu_);
};

}  // namespace omega

#endif  // OMEGA_INDEX_INDEX_MANAGER_H_
