// Structured event journal for lifecycle events: a bounded in-memory ring
// (always on, allocation per event is one small struct) plus an optional
// JSONL file sink for durable ops logs. Unlike the MetricsRegistry — which
// aggregates — the EventLog answers "what happened, in order": snapshot
// open/verify outcomes, dataset swaps, epoch retire/drain, admission
// rejections, cancellations. Rendered at the admin server's /eventz and by
// the shell's `.events`.
//
// Concurrency: one Mutex guards the ring, the sequence counter and the
// sink. Record() is called from lifecycle paths (swap, rejection,
// completion-with-cancel, snapshot open) — none of them are per-answer hot
// paths, so a single short critical section is the right trade against the
// lock-free complexity a ring of strings would otherwise need.
#ifndef OMEGA_OBS_EVENT_LOG_H_
#define OMEGA_OBS_EVENT_LOG_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace omega {

enum class EventSeverity : uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

const char* EventSeverityToString(EventSeverity severity);

/// One journal entry. `t_us` is steady-clock microseconds since the log was
/// constructed (the journal orders events; wall-clock stamping, if wanted,
/// belongs to the JSONL consumer).
struct LogEvent {
  uint64_t seq = 0;
  double t_us = 0;
  EventSeverity severity = EventSeverity::kInfo;
  std::string component;
  std::string message;
};

class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit EventLog(size_t capacity = kDefaultCapacity);
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Process-global journal (never destroyed: lifecycle events may be
  /// recorded by epoch deleters draining after static teardown begins).
  static EventLog* Global();

  /// Appends an event; overwrites the oldest entry once `capacity` is
  /// reached. When a JSONL sink is attached the event is also written (and
  /// flushed) as one JSON object per line.
  void Record(EventSeverity severity, std::string_view component,
              std::string message) OMEGA_EXCLUDES(mu_);

  /// Opens `path` for appending and mirrors every subsequent event to it.
  /// Replaces any previously attached sink.
  Status AttachJsonlSink(const std::string& path) OMEGA_EXCLUDES(mu_);
  void DetachJsonlSink() OMEGA_EXCLUDES(mu_);

  /// Oldest-first copy of the retained events (the most recent
  /// `max_events` when non-zero).
  std::vector<LogEvent> Snapshot(size_t max_events = 0) const
      OMEGA_EXCLUDES(mu_);

  /// `{"events":[...],"recorded_total":N,"capacity":C}`.
  std::string ToJson(size_t max_events = 0) const OMEGA_EXCLUDES(mu_);

  /// One human-readable line per event (shell `.events`).
  std::string ToText(size_t max_events = 0) const OMEGA_EXCLUDES(mu_);

  /// Events ever recorded (>= retained count once the ring wraps).
  uint64_t recorded_total() const OMEGA_EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }

 private:
  std::vector<LogEvent> SnapshotLocked(size_t max_events) const
      OMEGA_REQUIRES(mu_);

  const size_t capacity_;  // immutable after construction (min 1)
  const Timer timer_;      // steady-clock origin for t_us

  mutable Mutex mu_;
  /// Ring storage: grows to `capacity_` then overwrites at `next_`.
  std::vector<LogEvent> ring_ OMEGA_GUARDED_BY(mu_);
  size_t next_ OMEGA_GUARDED_BY(mu_) = 0;
  uint64_t seq_ OMEGA_GUARDED_BY(mu_) = 0;
  std::FILE* sink_ OMEGA_GUARDED_BY(mu_) = nullptr;
};

}  // namespace omega

#endif  // OMEGA_OBS_EVENT_LOG_H_
