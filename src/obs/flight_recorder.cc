#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/json.h"
#include "obs/trace.h"

namespace omega {

namespace {

void AppendRecordJson(std::string& out, const QueryFlightRecord& r) {
  out.append("{\"seq\":");
  out.append(std::to_string(r.seq));
  out.append(",\"t_us\":");
  out.append(std::to_string(static_cast<uint64_t>(r.t_us)));
  out.append(",\"class\":");
  AppendJsonString(out, r.query_class);
  out.append(",\"status\":");
  AppendJsonString(out, StatusCodeToString(r.status));
  char hash[32];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(r.key_hash));
  out.append(",\"key_hash\":");
  AppendJsonString(out, hash);
  out.append(",\"queue_us\":");
  out.append(std::to_string(r.queue_us));
  out.append(",\"exec_us\":");
  out.append(std::to_string(r.exec_us));
  out.append(",\"epoch\":");
  out.append(std::to_string(r.epoch));
  out.append(",\"answers\":");
  out.append(std::to_string(r.answers));
  out.append(",\"cache_hit\":");
  out.append(r.cache_hit ? "true" : "false");
  out.push_back('}');
}

template <typename T>
std::vector<T> CopyRingOldestFirst(const std::vector<T>& ring, size_t next,
                                   size_t max) {
  std::vector<T> out;
  out.reserve(ring.size());
  for (size_t i = 0; i < ring.size(); ++i) {
    out.push_back(ring[(next + i) % ring.size()]);
  }
  if (max > 0 && out.size() > max) {
    out.erase(out.begin(),
              out.begin() + static_cast<ptrdiff_t>(out.size() - max));
  }
  return out;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_([&] {
        options.capacity = std::max<size_t>(options.capacity, 1);
        options.slow_capacity = std::max<size_t>(options.slow_capacity, 1);
        return options;
      }()) {
  MutexLock lock(mu_);
  ring_.reserve(options_.capacity);
  slow_.reserve(options_.slow_capacity);
}

uint64_t FlightRecorder::HashKey(std::string_view key) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a 64-bit offset basis
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void FlightRecorder::Record(QueryFlightRecord record,
                            const TraceRecorder* trace) {
  record.t_us = timer_.ElapsedUs();
  const bool slow =
      record.queue_us + record.exec_us >= options_.slow_threshold_us;
  // Serialise the trace before taking the lock: a slow query is rare and
  // already expensive, and the fast path must stay one flat-struct append.
  std::string trace_json;
  if (slow && trace != nullptr) trace_json = trace->ToJson();
  MutexLock lock(mu_);
  record.seq = seq_++;
  if (ring_.size() < options_.capacity) {
    ring_.push_back(record);
  } else {
    ring_[next_] = record;
    next_ = (next_ + 1) % options_.capacity;
  }
  if (slow) {
    ++slow_seen_;
    SlowQuery entry{record, std::move(trace_json)};
    if (slow_.size() < options_.slow_capacity) {
      slow_.push_back(std::move(entry));
    } else {
      slow_[slow_next_] = std::move(entry);
      slow_next_ = (slow_next_ + 1) % options_.slow_capacity;
    }
  }
}

std::vector<QueryFlightRecord> FlightRecorder::Recent(size_t max) const {
  MutexLock lock(mu_);
  return CopyRingOldestFirst(ring_, next_, max);
}

std::vector<FlightRecorder::SlowQuery> FlightRecorder::Slow(
    size_t max) const {
  MutexLock lock(mu_);
  return CopyRingOldestFirst(slow_, slow_next_, max);
}

uint64_t FlightRecorder::recorded_total() const {
  MutexLock lock(mu_);
  return seq_;
}

uint64_t FlightRecorder::slow_total() const {
  MutexLock lock(mu_);
  return slow_seen_;
}

std::string FlightRecorder::ToJson(size_t max_recent, size_t max_slow) const {
  std::vector<QueryFlightRecord> recent;
  std::vector<SlowQuery> slow;
  uint64_t total = 0;
  uint64_t slow_total_count = 0;
  {
    MutexLock lock(mu_);
    recent = CopyRingOldestFirst(ring_, next_, max_recent);
    slow = CopyRingOldestFirst(slow_, slow_next_, max_slow);
    total = seq_;
    slow_total_count = slow_seen_;
  }
  std::string out = "{\"recent\":[";
  for (size_t i = 0; i < recent.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendRecordJson(out, recent[i]);
  }
  out.append("],\"slow\":[");
  for (size_t i = 0; i < slow.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append("{\"summary\":");
    AppendRecordJson(out, slow[i].summary);
    out.append(",\"trace\":");
    // trace_json is itself a JSON object; splice it in verbatim.
    out.append(slow[i].trace_json.empty() ? "null" : slow[i].trace_json);
    out.push_back('}');
  }
  out.append("],\"recorded_total\":");
  out.append(std::to_string(total));
  out.append(",\"slow_total\":");
  out.append(std::to_string(slow_total_count));
  out.append(",\"slow_threshold_us\":");
  out.append(std::to_string(options_.slow_threshold_us));
  out.push_back('}');
  return out;
}

std::string FlightRecorder::SlowLogText(size_t max) const {
  const std::vector<SlowQuery> slow = Slow(max);
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "slow queries (threshold %llu us):\n",
                static_cast<unsigned long long>(options_.slow_threshold_us));
  out.append(line);
  if (slow.empty()) {
    out.append("  (none)\n");
    return out;
  }
  for (const SlowQuery& s : slow) {
    const QueryFlightRecord& r = s.summary;
    std::snprintf(line, sizeof(line),
                  "  #%llu %-6s %-10s key=%016llx queue=%lluus exec=%lluus "
                  "epoch=%llu answers=%u%s%s\n",
                  static_cast<unsigned long long>(r.seq), r.query_class,
                  StatusCodeToString(r.status),
                  static_cast<unsigned long long>(r.key_hash),
                  static_cast<unsigned long long>(r.queue_us),
                  static_cast<unsigned long long>(r.exec_us),
                  static_cast<unsigned long long>(r.epoch), r.answers,
                  r.cache_hit ? " hit" : "",
                  s.trace_json.empty() ? "" : " [traced]");
    out.append(line);
  }
  return out;
}

}  // namespace omega
