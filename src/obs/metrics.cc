#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace omega {

namespace {

// Shared ascending-bounds check for histogram construction.
bool StrictlyAscending(const std::vector<uint64_t>& bounds) {
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) return false;
  }
  return true;
}

void AppendLabels(std::string& out, std::string_view labels) {
  if (!labels.empty()) {
    out.push_back('{');
    out.append(labels);
    out.push_back('}');
  }
}

// Histogram series carry `le` merged with the entry's own labels:
// name_bucket{class="EXACT",le="50"}.
void AppendLabelsWithLe(std::string& out, std::string_view labels,
                        std::string_view le) {
  out.push_back('{');
  if (!labels.empty()) {
    out.append(labels);
    out.push_back(',');
  }
  out.append("le=\"");
  out.append(le);
  out.append("\"}");
}

}  // namespace

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  const bool ascending = StrictlyAscending(bounds_);
  assert(ascending && "histogram bounds must be strictly ascending");
  (void)ascending;
}

void Histogram::Observe(uint64_t value) {
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  buckets_[i].FetchAdd(1);
  count_.FetchAdd(1);
  sum_.FetchAdd(value);
}

std::vector<uint64_t> Histogram::LatencyBoundsUs() {
  return {50,    100,   250,    500,    1000,   2500,   5000,
          10000, 25000, 50000, 100000, 250000, 1000000};
}

std::vector<uint64_t> Histogram::CardinalityBounds() {
  return {1, 10, 100, 1000, 10000, 100000, 1000000};
}

MetricsRegistry* MetricsRegistry::Global() {
  // Intentionally leaked: snapshot mappings and retired epochs may record
  // final observations while static destructors run.
  static MetricsRegistry* const g = new MetricsRegistry();
  return g;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreateLocked(
    std::string_view name, std::string_view help, std::string_view labels,
    Kind kind) {
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      // A name/labels collision across kinds means two call sites disagree
      // about what the series is — surface it loudly in debug builds.
      assert(e->kind == kind && "metric re-registered with a different kind");
      return e->kind == kind ? e.get() : nullptr;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->labels = std::string(labels);
  entry->help = std::string(help);
  entry->kind = kind;
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     std::string_view labels) {
  MutexLock lock(mu_);
  Entry* e = FindOrCreateLocked(name, help, labels, Kind::kCounter);
  if (e == nullptr) return nullptr;
  if (!e->counter) e->counter = std::make_unique<Counter>();
  return e->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 std::string_view labels) {
  MutexLock lock(mu_);
  Entry* e = FindOrCreateLocked(name, help, labels, Kind::kGauge);
  if (e == nullptr) return nullptr;
  if (!e->gauge) e->gauge = std::make_unique<Gauge>();
  return e->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::string_view labels,
                                         std::vector<uint64_t> bounds) {
  MutexLock lock(mu_);
  Entry* e = FindOrCreateLocked(name, help, labels, Kind::kHistogram);
  if (e == nullptr) return nullptr;
  if (!e->histogram) {
    if (bounds.empty()) bounds = Histogram::LatencyBoundsUs();
    e->histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return e->histogram.get();
}

std::string MetricsRegistry::RenderText() const {
  // Snapshot entry pointers under the lock, then render lock-free: the
  // instruments are stable and their cells are relaxed-atomic.
  std::vector<const Entry*> entries;
  {
    MutexLock lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& e : entries_) entries.push_back(e.get());
  }
  // Group label variants of one family under a single # TYPE header.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry* a, const Entry* b) {
                     return a->name < b->name;
                   });

  std::string out;
  std::string_view last_family;
  for (const Entry* e : entries) {
    if (e->name != last_family) {
      last_family = e->name;
      if (!e->help.empty()) {
        out.append("# HELP ").append(e->name).append(" ").append(e->help)
            .append("\n");
      }
      out.append("# TYPE ").append(e->name).append(" ");
      switch (e->kind) {
        case Kind::kCounter:
          out.append("counter\n");
          break;
        case Kind::kGauge:
          out.append("gauge\n");
          break;
        case Kind::kHistogram:
          out.append("histogram\n");
          break;
      }
    }
    switch (e->kind) {
      case Kind::kCounter:
        out.append(e->name);
        AppendLabels(out, e->labels);
        out.append(" ").append(std::to_string(e->counter->Value()))
            .append("\n");
        break;
      case Kind::kGauge:
        out.append(e->name);
        AppendLabels(out, e->labels);
        out.append(" ").append(std::to_string(e->gauge->Value()))
            .append("\n");
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e->histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          out.append(e->name).append("_bucket");
          AppendLabelsWithLe(out, e->labels, std::to_string(h.bounds()[i]));
          out.append(" ").append(std::to_string(cumulative)).append("\n");
        }
        cumulative += h.BucketCount(h.bounds().size());
        out.append(e->name).append("_bucket");
        AppendLabelsWithLe(out, e->labels, "+Inf");
        out.append(" ").append(std::to_string(cumulative)).append("\n");
        out.append(e->name).append("_sum");
        AppendLabels(out, e->labels);
        out.append(" ").append(std::to_string(h.Sum())).append("\n");
        out.append(e->name).append("_count");
        AppendLabels(out, e->labels);
        out.append(" ").append(std::to_string(h.Count())).append("\n");
        break;
      }
    }
  }
  return out;
}

}  // namespace omega
