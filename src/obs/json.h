// Minimal JSON string escaping shared by the observability emitters
// (TraceRecorder::ToJson, FlightRecorder::ToJson, EventLog). This is an
// output-only helper: the ops plane renders JSON, it never parses it.
#ifndef OMEGA_OBS_JSON_H_
#define OMEGA_OBS_JSON_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace omega {

/// Appends `s` to `out` with JSON string escaping (quotes, backslash,
/// control characters). Callers supply the surrounding quotes.
inline void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
}

/// Appends `"s"` (quoted and escaped).
inline void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  AppendJsonEscaped(out, s);
  out.push_back('"');
}

}  // namespace omega

#endif  // OMEGA_OBS_JSON_H_
