// Per-query trace spans: a lightweight recorder carried by pointer through
// QueryRequest / EvaluatorOptions, collecting named spans (begin/end or
// externally timed), instant events, and integer/string attributes from
// every layer a query crosses — admission-queue wait, cache lookup, plan,
// index-probe substitution decisions, epoch pin, per-operator pull/emit
// totals. Dumpable as a JSON trace per query (`ToJson`); durations are
// aggregated into the MetricsRegistry by the layers that record them.
//
// One recorder belongs to one query, but its methods are called from both
// the submitting client thread and the service worker that executes the
// ticket, so the span vector is OMEGA_GUARDED_BY an annotated Mutex. This
// is deliberately a mutex and not a lock-free log: tracing is opt-in per
// request, spans are few (tens, not thousands — operators report totals,
// not per-pull events), and correctness under TSan beats shaving
// nanoseconds off an already-explicit diagnostic path.
//
// All timestamps are relative to the recorder's construction, measured in
// microseconds on steady_clock (common/timer.h) — wall-clock drift must not
// corrupt durations.
#ifndef OMEGA_OBS_TRACE_H_
#define OMEGA_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace omega {

class TraceRecorder {
 public:
  using SpanId = size_t;

  struct Attr {
    std::string key;
    int64_t value;
  };
  struct StrAttr {
    std::string key;
    std::string value;
  };
  struct Span {
    std::string name;
    double start_us = 0;
    double dur_us = -1;  // < 0: still open; 0: instant event
    std::vector<Attr> attrs;
    std::vector<StrAttr> str_attrs;
  };

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opens a span at "now"; close it with End(). Returns its id.
  SpanId Begin(std::string_view name) OMEGA_EXCLUDES(mu_);
  /// Closes `id`, setting its duration to now - start.
  void End(SpanId id) OMEGA_EXCLUDES(mu_);

  /// Records an instant event (dur_us == 0) at "now".
  SpanId Event(std::string_view name) OMEGA_EXCLUDES(mu_);

  /// Records an already-measured span ending "now" — for durations whose
  /// start predates the recorder hand-off (e.g. admission-queue wait
  /// measured from the ticket's enqueue timestamp).
  SpanId RecordComplete(std::string_view name, double dur_us)
      OMEGA_EXCLUDES(mu_);

  void Annotate(SpanId id, std::string_view key, int64_t value)
      OMEGA_EXCLUDES(mu_);
  void AnnotateStr(SpanId id, std::string_view key, std::string_view value)
      OMEGA_EXCLUDES(mu_);

  size_t NumSpans() const OMEGA_EXCLUDES(mu_);
  /// Copy of all spans, for tests and reconciliation.
  std::vector<Span> Snapshot() const OMEGA_EXCLUDES(mu_);

  /// {"spans":[{"name":...,"start_us":...,"dur_us":...,"args":{...}},...]}
  /// Open spans render with their duration so far.
  std::string ToJson() const OMEGA_EXCLUDES(mu_);

 private:
  const Timer timer_;  // t=0 reference; never reset
  mutable Mutex mu_;
  std::vector<Span> spans_ OMEGA_GUARDED_BY(mu_);
};

/// Null-safe RAII span: no-ops when `trace` is nullptr, so instrumented
/// code paths read identically whether the query is traced or not.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* trace, std::string_view name)
      : trace_(trace), id_(trace != nullptr ? trace->Begin(name) : 0) {}
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->End(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Annotate(std::string_view key, int64_t value) {
    if (trace_ != nullptr) trace_->Annotate(id_, key, value);
  }
  void AnnotateStr(std::string_view key, std::string_view value) {
    if (trace_ != nullptr) trace_->AnnotateStr(id_, key, value);
  }

 private:
  TraceRecorder* const trace_;
  const TraceRecorder::SpanId id_;
};

}  // namespace omega

#endif  // OMEGA_OBS_TRACE_H_
