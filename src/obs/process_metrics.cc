#include "obs/process_metrics.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/timer.h"
#include "obs/metrics.h"

namespace omega {

namespace {

// Initialised during static construction, so ElapsedMs() approximates time
// since process start (exactly: since this TU was initialised).
const Timer g_process_timer;

/// Resident set size in bytes from /proc/self/statm (field 2, pages).
/// Returns 0 when /proc is unavailable (non-Linux).
int64_t ReadRssBytes() {
  std::FILE* file = std::fopen("/proc/self/statm", "r");
  if (file == nullptr) return 0;
  long long size_pages = 0;
  long long rss_pages = 0;
  const int matched =
      std::fscanf(file, "%lld %lld", &size_pages, &rss_pages);
  std::fclose(file);
  if (matched != 2) return 0;
  return static_cast<int64_t>(rss_pages) *
         static_cast<int64_t>(sysconf(_SC_PAGESIZE));
}

/// Thread count from /proc/self/status ("Threads:\tN"). 0 when unavailable.
int64_t ReadThreadCount() {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  long long threads = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, "Threads:", 8) == 0) {
      std::sscanf(line + 8, "%lld", &threads);
      break;
    }
  }
  std::fclose(file);
  return static_cast<int64_t>(threads);
}

}  // namespace

double ProcessUptimeSeconds() { return g_process_timer.ElapsedMs() / 1000.0; }

void UpdateProcessSelfMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) registry = MetricsRegistry::Global();
  Gauge* uptime = registry->GetGauge("omega_process_uptime_seconds",
                                     "Process uptime (steady clock)");
  Gauge* rss = registry->GetGauge("omega_process_rss_bytes",
                                  "Resident set size (/proc/self/statm)");
  Gauge* threads = registry->GetGauge("omega_process_threads",
                                      "OS threads in this process");
  uptime->Set(static_cast<int64_t>(g_process_timer.ElapsedMs() / 1000.0));
  rss->Set(ReadRssBytes());
  threads->Set(ReadThreadCount());
}

}  // namespace omega
