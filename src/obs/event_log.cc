#include "obs/event_log.h"

#include <algorithm>
#include <utility>

#include "obs/json.h"

namespace omega {

namespace {

void AppendEventJson(std::string& out, const LogEvent& e) {
  out.append("{\"seq\":");
  out.append(std::to_string(e.seq));
  out.append(",\"t_us\":");
  out.append(std::to_string(static_cast<uint64_t>(e.t_us)));
  out.append(",\"severity\":");
  AppendJsonString(out, EventSeverityToString(e.severity));
  out.append(",\"component\":");
  AppendJsonString(out, e.component);
  out.append(",\"message\":");
  AppendJsonString(out, e.message);
  out.push_back('}');
}

}  // namespace

const char* EventSeverityToString(EventSeverity severity) {
  switch (severity) {
    case EventSeverity::kInfo:
      return "info";
    case EventSeverity::kWarn:
      return "warn";
    case EventSeverity::kError:
      return "error";
  }
  return "unknown";
}

EventLog::EventLog(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {
  MutexLock lock(mu_);
  ring_.reserve(capacity_);
}

EventLog::~EventLog() { DetachJsonlSink(); }

EventLog* EventLog::Global() {
  // Never destroyed: epoch-drain deleters may record events while static
  // teardown is already running (same contract as MetricsRegistry::Global).
  static EventLog* const global = new EventLog();
  return global;
}

void EventLog::Record(EventSeverity severity, std::string_view component,
                      std::string message) {
  const double now_us = timer_.ElapsedUs();
  MutexLock lock(mu_);
  LogEvent event;
  event.seq = seq_++;
  event.t_us = now_us;
  event.severity = severity;
  event.component = std::string(component);
  event.message = std::move(message);
  if (sink_ != nullptr) {
    std::string line;
    AppendEventJson(line, event);
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), sink_);
    std::fflush(sink_);
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
  }
}

Status EventLog::AttachJsonlSink(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open event sink: " + path);
  }
  MutexLock lock(mu_);
  if (sink_ != nullptr) std::fclose(sink_);
  sink_ = file;
  return Status::OK();
}

void EventLog::DetachJsonlSink() {
  MutexLock lock(mu_);
  if (sink_ != nullptr) {
    std::fclose(sink_);
    sink_ = nullptr;
  }
}

std::vector<LogEvent> EventLog::SnapshotLocked(size_t max_events) const {
  std::vector<LogEvent> out;
  out.reserve(ring_.size());
  // Oldest-first: once wrapped, `next_` is the oldest slot.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  if (max_events > 0 && out.size() > max_events) {
    out.erase(out.begin(),
              out.begin() + static_cast<ptrdiff_t>(out.size() - max_events));
  }
  return out;
}

std::vector<LogEvent> EventLog::Snapshot(size_t max_events) const {
  MutexLock lock(mu_);
  return SnapshotLocked(max_events);
}

std::string EventLog::ToJson(size_t max_events) const {
  std::vector<LogEvent> events;
  uint64_t total = 0;
  {
    MutexLock lock(mu_);
    events = SnapshotLocked(max_events);
    total = seq_;
  }
  std::string out = "{\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendEventJson(out, events[i]);
  }
  out.append("],\"recorded_total\":");
  out.append(std::to_string(total));
  out.append(",\"capacity\":");
  out.append(std::to_string(capacity_));
  out.push_back('}');
  return out;
}

std::string EventLog::ToText(size_t max_events) const {
  const std::vector<LogEvent> events = Snapshot(max_events);
  std::string out;
  for (const LogEvent& e : events) {
    char head[64];
    std::snprintf(head, sizeof(head), "[%8.3fs] %-5s %-9s ", e.t_us / 1e6,
                  EventSeverityToString(e.severity), e.component.c_str());
    out.append(head);
    out.append(e.message);
    out.push_back('\n');
  }
  if (events.empty()) out = "(no events recorded)\n";
  return out;
}

uint64_t EventLog::recorded_total() const {
  MutexLock lock(mu_);
  return seq_;
}

}  // namespace omega
