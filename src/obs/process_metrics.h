// Process self-metrics: uptime, resident set size and thread count exported
// as gauges so every scrape of /metrics (or the shell's `.metrics`) carries
// basic process health next to the service instruments.
//
// Gauges have no callback hook in this registry by design (hot paths push;
// nothing polls), so self-metrics are refreshed by the scrape itself:
// UpdateProcessSelfMetrics() is called by the /metrics handler and by the
// shell immediately before RenderText(). The registry lookups inside are
// acceptable there — scraping is a cold path.
#ifndef OMEGA_OBS_PROCESS_METRICS_H_
#define OMEGA_OBS_PROCESS_METRICS_H_

namespace omega {

class MetricsRegistry;

/// Registers (idempotently) and refreshes in `registry` (nullptr selects
/// MetricsRegistry::Global()):
///  - omega_process_uptime_seconds  (steady-clock, from process start)
///  - omega_process_rss_bytes      (/proc/self/statm; 0 where /proc absent)
///  - omega_process_threads        (/proc/self/status; 0 where /proc absent)
void UpdateProcessSelfMetrics(MetricsRegistry* registry);

/// Steady-clock seconds since process start (same origin as the uptime
/// gauge); /statusz renders it without touching a registry.
double ProcessUptimeSeconds();

}  // namespace omega

#endif  // OMEGA_OBS_PROCESS_METRICS_H_
