// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with a Prometheus-style text exposition (RenderText). The
// registry is the aggregation side of the observability layer — per-query
// TraceRecorder spans (obs/trace.h) roll up into these families, and the
// upcoming network front end serves RenderText() verbatim.
//
// Concurrency model, on the annotated lock layer:
//  - Instrument values (Counter/Gauge/Histogram cells) are RelaxedAtomic:
//    monotonic statistics where any interleaving of relaxed increments and
//    reads is a correct outcome, so a hot-path Increment() is one relaxed
//    fetch_add — no lock, no allocation.
//  - The name -> instrument map is OMEGA_GUARDED_BY(mu_). GetOrCreate*() is
//    a setup-path operation (service construction, first use of a family);
//    callers cache the returned pointer and never touch the map on the hot
//    path. Returned pointers are stable for the registry's lifetime.
//
// Histograms are integer-valued on purpose: latencies are observed in
// microseconds and cardinalities in rows, so every cell stays a lock-free
// RelaxedAtomic<uint64_t> instead of an atomic<double> read-modify-write.
#ifndef OMEGA_OBS_METRICS_H_
#define OMEGA_OBS_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/atomics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace omega {

/// Monotonically increasing counter. Zero-allocation, lock-free increments.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t delta = 1) { value_.FetchAdd(delta); }
  uint64_t Value() const { return value_.Load(); }

 private:
  // RelaxedAtomic: monotonic statistic, readers tolerate any stale value.
  RelaxedAtomic<uint64_t> value_;
};

/// Signed level gauge (queue depth, mapped bytes, in-flight queries).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.Store(value); }
  void Add(int64_t delta) { value_.FetchAdd(delta); }
  int64_t Value() const { return value_.Load(); }

 private:
  // RelaxedAtomic: advisory level readout; no cross-thread ordering implied.
  RelaxedAtomic<int64_t> value_;
};

/// Fixed-bucket histogram over non-negative integer samples (microseconds
/// for latencies, rows for cardinalities). Bucket bounds are immutable after
/// construction, so Observe() is a read-only scan over `bounds_` plus two
/// relaxed increments — lock-free and allocation-free.
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds, strictly ascending; an implicit
  /// +Inf bucket is appended.
  explicit Histogram(std::vector<uint64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value);

  uint64_t Count() const { return count_.Load(); }
  uint64_t Sum() const { return sum_.Load(); }
  /// Count in bucket `i` (i == bounds().size() is the +Inf bucket).
  uint64_t BucketCount(size_t i) const { return buckets_[i].Load(); }
  const std::vector<uint64_t>& bounds() const { return bounds_; }

  /// Default bounds for microsecond latencies: 50us .. 1s.
  static std::vector<uint64_t> LatencyBoundsUs();
  /// Default bounds for row cardinalities: 1 .. 1M.
  static std::vector<uint64_t> CardinalityBounds();

 private:
  const std::vector<uint64_t> bounds_;  // immutable after construction
  // RelaxedAtomic cells: per-bucket monotonic tallies; a render racing an
  // Observe may see count_ without the matching bucket yet, which is an
  // acceptable in-flight skew for an exposition snapshot.
  std::vector<RelaxedAtomic<uint64_t>> buckets_;  // bounds_.size() + 1
  RelaxedAtomic<uint64_t> count_;
  RelaxedAtomic<uint64_t> sum_;
};

/// Owns instruments keyed by (name, labels) and renders them in the
/// Prometheus text exposition format. Instrument pointers returned by
/// GetOrCreate*() remain valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-global registry (never destroyed: instrument cells may be
  /// touched by detached epochs draining after static teardown begins).
  static MetricsRegistry* Global();

  /// `labels` is a raw Prometheus label body, e.g. `class="EXACT"` (empty
  /// for an unlabelled series). Same (name, labels) returns the same
  /// instrument; a kind mismatch on an existing name is a programming error
  /// and asserts in debug builds (returns the existing instrument's family
  /// slot as nullptr in release).
  Counter* GetCounter(std::string_view name, std::string_view help = {},
                      std::string_view labels = {}) OMEGA_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name, std::string_view help = {},
                  std::string_view labels = {}) OMEGA_EXCLUDES(mu_);
  /// Empty `bounds` selects LatencyBoundsUs().
  Histogram* GetHistogram(std::string_view name, std::string_view help = {},
                          std::string_view labels = {},
                          std::vector<uint64_t> bounds = {})
      OMEGA_EXCLUDES(mu_);

  /// Prometheus text exposition: `# HELP` / `# TYPE` per family, then one
  /// line per series (histograms expand to _bucket{le=...}/_sum/_count).
  std::string RenderText() const OMEGA_EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    std::string labels;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreateLocked(std::string_view name, std::string_view help,
                            std::string_view labels, Kind kind)
      OMEGA_REQUIRES(mu_);

  mutable Mutex mu_;
  // unique_ptr entries: the vector may reallocate on registration, but the
  // instruments it owns never move — that is the pointer-stability contract.
  std::vector<std::unique_ptr<Entry>> entries_ OMEGA_GUARDED_BY(mu_);
};

}  // namespace omega

#endif  // OMEGA_OBS_METRICS_H_
