#include "obs/trace.h"

#include <cstdio>

namespace omega {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
}

void AppendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  out.append(buf);
}

}  // namespace

TraceRecorder::SpanId TraceRecorder::Begin(std::string_view name) {
  const double now = timer_.ElapsedUs();
  MutexLock lock(mu_);
  spans_.push_back(Span{std::string(name), now, -1, {}, {}});
  return spans_.size() - 1;
}

void TraceRecorder::End(SpanId id) {
  const double now = timer_.ElapsedUs();
  MutexLock lock(mu_);
  if (id < spans_.size() && spans_[id].dur_us < 0) {
    spans_[id].dur_us = now - spans_[id].start_us;
  }
}

TraceRecorder::SpanId TraceRecorder::Event(std::string_view name) {
  const double now = timer_.ElapsedUs();
  MutexLock lock(mu_);
  spans_.push_back(Span{std::string(name), now, 0, {}, {}});
  return spans_.size() - 1;
}

TraceRecorder::SpanId TraceRecorder::RecordComplete(std::string_view name,
                                                    double dur_us) {
  const double now = timer_.ElapsedUs();
  if (dur_us < 0) dur_us = 0;
  // The span ended "now"; back-date its start so the timeline lines up.
  const double start = now >= dur_us ? now - dur_us : 0;
  MutexLock lock(mu_);
  spans_.push_back(Span{std::string(name), start, dur_us, {}, {}});
  return spans_.size() - 1;
}

void TraceRecorder::Annotate(SpanId id, std::string_view key, int64_t value) {
  MutexLock lock(mu_);
  if (id < spans_.size()) {
    spans_[id].attrs.push_back(Attr{std::string(key), value});
  }
}

void TraceRecorder::AnnotateStr(SpanId id, std::string_view key,
                                std::string_view value) {
  MutexLock lock(mu_);
  if (id < spans_.size()) {
    spans_[id].str_attrs.push_back(
        StrAttr{std::string(key), std::string(value)});
  }
}

size_t TraceRecorder::NumSpans() const {
  MutexLock lock(mu_);
  return spans_.size();
}

std::vector<TraceRecorder::Span> TraceRecorder::Snapshot() const {
  MutexLock lock(mu_);
  return spans_;
}

std::string TraceRecorder::ToJson() const {
  const double now = timer_.ElapsedUs();
  const std::vector<Span> spans = Snapshot();
  std::string out = "{\"spans\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (i > 0) out.push_back(',');
    out.append("{\"name\":\"");
    AppendEscaped(out, s.name);
    out.append("\",\"start_us\":");
    AppendDouble(out, s.start_us);
    out.append(",\"dur_us\":");
    AppendDouble(out, s.dur_us >= 0 ? s.dur_us : now - s.start_us);
    if (!s.attrs.empty() || !s.str_attrs.empty()) {
      out.append(",\"args\":{");
      bool first = true;
      for (const Attr& a : s.attrs) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('"');
        AppendEscaped(out, a.key);
        out.append("\":");
        out.append(std::to_string(a.value));
      }
      for (const StrAttr& a : s.str_attrs) {
        if (!first) out.push_back(',');
        first = false;
        out.push_back('"');
        AppendEscaped(out, a.key);
        out.append("\":\"");
        AppendEscaped(out, a.value);
        out.push_back('"');
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

}  // namespace omega
