// Always-on query flight recorder: a fixed-capacity ring buffer retaining a
// compact, allocation-free summary of every completed query (class, status,
// canonical-key hash, queue/exec micros, epoch, answer count), plus a
// threshold-gated slow-query reservoir that keeps the full TraceRecorder
// span JSON for requests whose queue+exec time crosses the configured
// threshold. This is the "reconstruct the worst query after the fact" tool:
// /tracez and the shell's `.slowlog` render it.
//
// Cost contract (proven by the bench_obs `_RecorderOn` / `_RecorderOff`
// gate pair): the per-completion Record() is one mutex-guarded append of a
// flat struct — no allocation, no string building — unless the query is
// slow, in which case serialising its trace happens before the lock and is
// paid only on the (by definition rare and already-expensive) slow path.
#ifndef OMEGA_OBS_FLIGHT_RECORDER_H_
#define OMEGA_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/timer.h"

namespace omega {

class TraceRecorder;  // obs/trace.h

struct FlightRecorderOptions {
  /// Completed-query summaries retained (ring; oldest overwritten).
  size_t capacity = 512;
  /// Slow-query reservoir entries retained (ring; oldest overwritten).
  size_t slow_capacity = 32;
  /// A completion with queue_us + exec_us >= this enters the reservoir.
  uint64_t slow_threshold_us = 10'000;
};

/// Compact completion summary. `query_class` and the status code map to
/// static strings (QueryClassToString / StatusCodeToString), so the record
/// itself owns no memory and a ring append never allocates.
struct QueryFlightRecord {
  uint64_t seq = 0;            ///< assigned by Record()
  double t_us = 0;             ///< completion time since recorder birth
  const char* query_class = "";
  StatusCode status = StatusCode::kOk;
  uint64_t key_hash = 0;       ///< FNV-1a of the canonical cache key
  uint64_t queue_us = 0;
  uint64_t exec_us = 0;
  uint64_t epoch = 0;
  uint32_t answers = 0;
  bool cache_hit = false;
};

class FlightRecorder {
 public:
  struct SlowQuery {
    QueryFlightRecord summary;
    /// Full TraceRecorder::ToJson() when the request was traced; empty for
    /// slow-but-untraced requests (the summary still lands here).
    std::string trace_json;
  };

  explicit FlightRecorder(FlightRecorderOptions options = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one completion. `trace` (nullable) is only consulted when the
  /// record crosses the slow threshold. seq/t_us are stamped here.
  void Record(QueryFlightRecord record, const TraceRecorder* trace)
      OMEGA_EXCLUDES(mu_);

  /// Oldest-first summaries (the most recent `max` when non-zero).
  std::vector<QueryFlightRecord> Recent(size_t max = 0) const
      OMEGA_EXCLUDES(mu_);
  /// Oldest-first slow entries (the most recent `max` when non-zero).
  std::vector<SlowQuery> Slow(size_t max = 0) const OMEGA_EXCLUDES(mu_);

  uint64_t recorded_total() const OMEGA_EXCLUDES(mu_);
  uint64_t slow_total() const OMEGA_EXCLUDES(mu_);
  uint64_t slow_threshold_us() const { return options_.slow_threshold_us; }
  size_t capacity() const { return options_.capacity; }

  /// `{"recent":[...],"slow":[...],"recorded_total":N,"slow_total":M,
  ///   "slow_threshold_us":T}` — the /tracez body.
  std::string ToJson(size_t max_recent = 0, size_t max_slow = 0) const
      OMEGA_EXCLUDES(mu_);

  /// Human-readable slow-query table (shell `.slowlog`).
  std::string SlowLogText(size_t max = 0) const OMEGA_EXCLUDES(mu_);

  /// FNV-1a 64-bit over `key` (canonical cache keys are hashed so the
  /// recorder never retains query text).
  static uint64_t HashKey(std::string_view key);

 private:
  const FlightRecorderOptions options_;  // clamped, immutable
  const Timer timer_;                    // steady-clock origin for t_us

  mutable Mutex mu_;
  std::vector<QueryFlightRecord> ring_ OMEGA_GUARDED_BY(mu_);
  size_t next_ OMEGA_GUARDED_BY(mu_) = 0;
  std::vector<SlowQuery> slow_ OMEGA_GUARDED_BY(mu_);
  size_t slow_next_ OMEGA_GUARDED_BY(mu_) = 0;
  uint64_t seq_ OMEGA_GUARDED_BY(mu_) = 0;
  uint64_t slow_seen_ OMEGA_GUARDED_BY(mu_) = 0;
};

}  // namespace omega

#endif  // OMEGA_OBS_FLIGHT_RECORDER_H_
