// Brute-force oracles used by the test suite to validate the automaton
// pipeline independently: direct AST matching of label paths, bounded
// language enumeration, and classic edit distance between label sequences.
// None of this code shares logic with the NFA implementation.
#ifndef OMEGA_AUTOMATA_REFERENCE_MATCHER_H_
#define OMEGA_AUTOMATA_REFERENCE_MATCHER_H_

#include <span>
#include <string>
#include <vector>

#include "rpq/regex_ast.h"
#include "store/types.h"

namespace omega {

/// One concrete traversal step: an edge label read forward or in reverse.
struct LabelStep {
  std::string label;
  Direction dir = Direction::kOutgoing;

  bool operator==(const LabelStep&) const = default;
  auto operator<=>(const LabelStep&) const = default;
};

/// True iff the step sequence belongs to L(R). Interval-memoized recursion
/// straight off the AST; exponential-safe for the short paths tests use.
bool RegexMatchesPath(const RegexNode& regex, std::span<const LabelStep> path);

/// Enumerates distinct members of L(R) with length <= max_len (wildcards
/// expand over `alphabet`, forward and — for `_-` — reverse). Stops early at
/// max_count strings. Sorted lexicographically for determinism.
std::vector<std::vector<LabelStep>> EnumerateLanguage(
    const RegexNode& regex, const std::vector<std::string>& alphabet,
    size_t max_len, size_t max_count = 100000);

/// Unit-operation costs for the reference edit distance.
struct EditCosts {
  int insertion = 1;
  int deletion = 1;
  int substitution = 1;
};

/// Classic Levenshtein distance between two step sequences. `from` plays the
/// role of the query word w ∈ L(R), `to` the role of the graph path:
/// deletions remove symbols of `from`, insertions add symbols of `to`.
int EditDistance(std::span<const LabelStep> from, std::span<const LabelStep> to,
                 const EditCosts& costs);

/// min over w ∈ L(R), |w| <= max_len, of EditDistance(w, path). Returns -1
/// if the language is empty up to max_len.
int MinEditDistanceToLanguage(const RegexNode& regex,
                              const std::vector<std::string>& alphabet,
                              std::span<const LabelStep> path,
                              const EditCosts& costs, size_t max_len);

}  // namespace omega

#endif  // OMEGA_AUTOMATA_REFERENCE_MATCHER_H_
