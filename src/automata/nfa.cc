#include "automata/nfa.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace omega {

StateId Nfa::AddState() {
  states_.emplace_back();
  return static_cast<StateId>(states_.size() - 1);
}

size_t Nfa::NumTransitions() const {
  size_t total = 0;
  for (const State& s : states_) total += s.out.size();
  return total;
}

void Nfa::MakeFinal(StateId s, Cost weight) {
  State& state = states_[s];
  if (state.is_final) {
    state.final_weight = std::min(state.final_weight, weight);
  } else {
    state.is_final = true;
    state.final_weight = weight;
  }
}

void Nfa::ClearFinal(StateId s) {
  states_[s].is_final = false;
  states_[s].final_weight = 0;
}

void Nfa::AddTransition(StateId from, NfaTransition t) {
  assert(from < states_.size() && t.to < states_.size());
  assert(t.cost >= 0);
  states_[from].out.push_back(t);
}

void Nfa::AddEpsilon(StateId from, StateId to, Cost cost) {
  NfaTransition t;
  t.to = to;
  t.cost = cost;
  t.kind = TransitionKind::kEpsilon;
  AddTransition(from, t);
}

void Nfa::AddLabel(StateId from, StateId to, LabelId label, Direction dir,
                   Cost cost) {
  NfaTransition t;
  t.to = to;
  t.cost = cost;
  t.kind = TransitionKind::kLabel;
  t.label = label;
  t.dir = dir;
  AddTransition(from, t);
}

void Nfa::AddAnyLabel(StateId from, StateId to, Direction dir, Cost cost) {
  NfaTransition t;
  t.to = to;
  t.cost = cost;
  t.kind = TransitionKind::kAnyLabel;
  t.dir = dir;
  AddTransition(from, t);
}

void Nfa::AddAnyBothDirs(StateId from, StateId to, Cost cost) {
  NfaTransition t;
  t.to = to;
  t.cost = cost;
  t.kind = TransitionKind::kAnyLabelBothDirs;
  AddTransition(from, t);
}

void Nfa::AddConstrainedType(StateId from, StateId to, NodeId class_node,
                             Cost cost) {
  NfaTransition t;
  t.to = to;
  t.cost = cost;
  t.kind = TransitionKind::kConstrainedType;
  t.class_node = class_node;
  AddTransition(from, t);
}

bool Nfa::HasEpsilonTransitions() const {
  for (const State& s : states_) {
    for (const NfaTransition& t : s.out) {
      if (t.kind == TransitionKind::kEpsilon) return true;
    }
  }
  return false;
}

void Nfa::SortTransitions() {
  for (State& s : states_) {
    std::sort(s.out.begin(), s.out.end(),
              [](const NfaTransition& a, const NfaTransition& b) {
                if (a.kind != b.kind) return a.kind < b.kind;
                if (a.dir != b.dir) return a.dir < b.dir;
                if (a.label != b.label) return a.label < b.label;
                if (a.class_node != b.class_node)
                  return a.class_node < b.class_node;
                if (a.cost != b.cost) return a.cost < b.cost;
                return a.to < b.to;
              });
  }
}

Cost Nfa::MinPositiveCost() const {
  Cost best = kInfiniteCost;
  for (const State& s : states_) {
    if (s.is_final && s.final_weight > 0) {
      best = std::min(best, s.final_weight);
    }
    for (const NfaTransition& t : s.out) {
      if (t.cost > 0) best = std::min(best, t.cost);
    }
  }
  return best;
}

std::string Nfa::DebugString(const LabelDictionary* labels) const {
  std::ostringstream out;
  out << "NFA states=" << states_.size() << " initial=" << initial_ << "\n";
  for (StateId s = 0; s < states_.size(); ++s) {
    out << "  s" << s;
    if (s == initial_) out << " [initial]";
    if (states_[s].is_final) {
      out << " [final w=" << states_[s].final_weight << "]";
    }
    out << "\n";
    for (const NfaTransition& t : states_[s].out) {
      out << "    --";
      switch (t.kind) {
        case TransitionKind::kEpsilon:
          out << "eps";
          break;
        case TransitionKind::kLabel:
          if (labels != nullptr && t.label != kInvalidLabel) {
            out << labels->Name(t.label);
          } else {
            out << "label#" << t.label;
          }
          if (t.dir == Direction::kIncoming) out << "-";
          break;
        case TransitionKind::kAnyLabel:
          out << "_";
          if (t.dir == Direction::kIncoming) out << "-";
          break;
        case TransitionKind::kAnyLabelBothDirs:
          out << "*";
          break;
        case TransitionKind::kConstrainedType:
          out << "type{class#" << t.class_node << "}";
          break;
      }
      out << " /" << t.cost << "--> s" << t.to << "\n";
    }
  }
  return out.str();
}

}  // namespace omega
