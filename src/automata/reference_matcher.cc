#include "automata/reference_matcher.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

namespace omega {
namespace {

class IntervalMatcher {
 public:
  IntervalMatcher(std::span<const LabelStep> path) : path_(path) {}

  bool Match(const RegexNode& node, size_t i, size_t j) {
    const auto key = std::make_tuple(&node, i, j);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    const bool result = Compute(node, i, j);
    memo_.emplace(key, result);
    return result;
  }

 private:
  bool Compute(const RegexNode& node, size_t i, size_t j) {
    switch (node.op) {
      case RegexOp::kEpsilon:
        return i == j;
      case RegexOp::kLabel:
        return j == i + 1 && path_[i].label == node.label &&
               path_[i].dir == node.dir;
      case RegexOp::kWildcard:
        return j == i + 1 && path_[i].dir == node.dir;
      case RegexOp::kConcat:
        return MatchSequence(node.children, 0, i, j);
      case RegexOp::kAlternation:
        for (const RegexPtr& child : node.children) {
          if (Match(*child, i, j)) return true;
        }
        return false;
      case RegexOp::kStar: {
        if (i == j) return true;
        for (size_t k = i + 1; k <= j; ++k) {
          if (Match(*node.children[0], i, k) && Match(node, k, j)) return true;
        }
        return false;
      }
      case RegexOp::kPlus: {
        // One iteration may already cover the whole interval — including the
        // empty interval when the body itself accepts ε (e.g. (b*)+).
        if (Match(*node.children[0], i, j)) return true;
        for (size_t k = i + 1; k <= j; ++k) {
          if (!Match(*node.children[0], i, k)) continue;
          if (k == j) return true;
          // Remaining repetitions (>= 0) behave like star.
          if (MatchPlusTail(node, k, j)) return true;
        }
        return false;
      }
    }
    return false;
  }

  bool MatchPlusTail(const RegexNode& plus, size_t i, size_t j) {
    if (i == j) return true;
    for (size_t k = i + 1; k <= j; ++k) {
      if (Match(*plus.children[0], i, k) && MatchPlusTail(plus, k, j)) {
        return true;
      }
    }
    return false;
  }

  bool MatchSequence(const std::vector<RegexPtr>& parts, size_t part, size_t i,
                     size_t j) {
    if (part == parts.size()) return i == j;
    for (size_t k = i; k <= j; ++k) {
      if (Match(*parts[part], i, k) && MatchSequence(parts, part + 1, k, j)) {
        return true;
      }
    }
    return false;
  }

  std::span<const LabelStep> path_;
  std::map<std::tuple<const RegexNode*, size_t, size_t>, bool> memo_;
};

using Language = std::set<std::vector<LabelStep>>;

Language Enumerate(const RegexNode& node,
                   const std::vector<std::string>& alphabet, size_t max_len,
                   size_t max_count) {
  Language lang;
  switch (node.op) {
    case RegexOp::kEpsilon:
      lang.insert({});
      break;
    case RegexOp::kLabel:
      if (max_len >= 1) lang.insert({LabelStep{node.label, node.dir}});
      break;
    case RegexOp::kWildcard:
      if (max_len >= 1) {
        for (const std::string& a : alphabet) {
          lang.insert({LabelStep{a, node.dir}});
          if (lang.size() >= max_count) break;
        }
      }
      break;
    case RegexOp::kConcat: {
      lang.insert(std::vector<LabelStep>{});
      for (const RegexPtr& child : node.children) {
        Language next;
        const Language child_lang =
            Enumerate(*child, alphabet, max_len, max_count);
        for (const auto& prefix : lang) {
          for (const auto& suffix : child_lang) {
            if (prefix.size() + suffix.size() > max_len) continue;
            std::vector<LabelStep> joined = prefix;
            joined.insert(joined.end(), suffix.begin(), suffix.end());
            next.insert(std::move(joined));
            if (next.size() >= max_count) break;
          }
          if (next.size() >= max_count) break;
        }
        lang = std::move(next);
      }
      break;
    }
    case RegexOp::kAlternation:
      for (const RegexPtr& child : node.children) {
        for (auto& w : Enumerate(*child, alphabet, max_len, max_count)) {
          lang.insert(std::move(w));
          if (lang.size() >= max_count) break;
        }
      }
      break;
    case RegexOp::kStar:
    case RegexOp::kPlus: {
      const Language body =
          Enumerate(*node.children[0], alphabet, max_len, max_count);
      Language frontier;
      if (node.op == RegexOp::kStar) {
        lang.insert(std::vector<LabelStep>{});
        frontier.insert(std::vector<LabelStep>{});
      } else {
        for (const auto& w : body) {
          lang.insert(w);
          frontier.insert(w);
        }
      }
      // Keep appending body words until no new strings fit under max_len.
      while (!frontier.empty() && lang.size() < max_count) {
        Language next_frontier;
        for (const auto& prefix : frontier) {
          for (const auto& w : body) {
            if (prefix.size() + w.size() > max_len) continue;
            if (w.empty()) continue;
            std::vector<LabelStep> joined = prefix;
            joined.insert(joined.end(), w.begin(), w.end());
            if (lang.insert(joined).second) {
              next_frontier.insert(std::move(joined));
            }
            if (lang.size() >= max_count) break;
          }
          if (lang.size() >= max_count) break;
        }
        frontier = std::move(next_frontier);
      }
      break;
    }
  }
  return lang;
}

}  // namespace

bool RegexMatchesPath(const RegexNode& regex,
                      std::span<const LabelStep> path) {
  return IntervalMatcher(path).Match(regex, 0, path.size());
}

std::vector<std::vector<LabelStep>> EnumerateLanguage(
    const RegexNode& regex, const std::vector<std::string>& alphabet,
    size_t max_len, size_t max_count) {
  Language lang = Enumerate(regex, alphabet, max_len, max_count);
  return {lang.begin(), lang.end()};
}

int EditDistance(std::span<const LabelStep> from, std::span<const LabelStep> to,
                 const EditCosts& costs) {
  const size_t n = from.size();
  const size_t m = to.size();
  std::vector<std::vector<int>> dp(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = 1; i <= n; ++i) dp[i][0] = dp[i - 1][0] + costs.deletion;
  for (size_t j = 1; j <= m; ++j) dp[0][j] = dp[0][j - 1] + costs.insertion;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const int match_cost = from[i - 1] == to[j - 1] ? 0 : costs.substitution;
      dp[i][j] = std::min({dp[i - 1][j - 1] + match_cost,
                           dp[i - 1][j] + costs.deletion,
                           dp[i][j - 1] + costs.insertion});
    }
  }
  return dp[n][m];
}

int MinEditDistanceToLanguage(const RegexNode& regex,
                              const std::vector<std::string>& alphabet,
                              std::span<const LabelStep> path,
                              const EditCosts& costs, size_t max_len) {
  int best = -1;
  for (const auto& w : EnumerateLanguage(regex, alphabet, max_len)) {
    const int d = EditDistance(w, path, costs);
    if (best < 0 || d < best) best = d;
  }
  return best;
}

}  // namespace omega
