// APPROX: augments an ε-free query NFA M_R into the approximate automaton
// A_R (Hurtado, Poulovassilis & Wood, ESWC 2009). Edit operations on the
// regular expression become extra weighted transitions:
//
//   insertion     — at every state, a self-loop consuming any label in either
//                   direction (the paper's compact `*` wildcard transition);
//   substitution  — for every edge-consuming transition (s, a, t), a parallel
//                   `*` transition (s, *, t), so `a` can be replaced by any
//                   label or reversal;
//   deletion      — for every edge-consuming transition (s, a, t), an
//                   ε-transition (s, ε, t), folded by a second ε-removal pass
//                   into weighted transitions and final-state weights;
//   transposition — (optional extension, off by default as in the paper's
//                   experiments) for consecutive (s,a,t),(t,b,u), a two-step
//                   path consuming b then a.
#ifndef OMEGA_AUTOMATA_APPROX_H_
#define OMEGA_AUTOMATA_APPROX_H_

#include "automata/nfa.h"

namespace omega {

/// Edit-operation costs (the paper's performance study uses 1 for each).
struct ApproxOptions {
  Cost insertion_cost = 1;
  Cost deletion_cost = 1;
  Cost substitution_cost = 1;
  bool enable_transposition = false;
  Cost transposition_cost = 1;
};

/// Builds A_R from an ε-free M_R. The result is ε-free and sorted.
Nfa BuildApproxAutomaton(const Nfa& exact, const ApproxOptions& options);

}  // namespace omega

#endif  // OMEGA_AUTOMATA_APPROX_H_
