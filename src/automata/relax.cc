#include "automata/relax.h"

#include <cassert>

namespace omega {

Nfa BuildRelaxAutomaton(const Nfa& exact, const BoundOntology& ontology,
                        const RelaxOptions& options) {
  assert(!exact.HasEpsilonTransitions());

  Nfa relaxed;
  for (StateId s = 0; s < exact.NumStates(); ++s) {
    const StateId copy = relaxed.AddState();
    (void)copy;
    assert(copy == s);
    if (exact.IsFinal(s)) relaxed.MakeFinal(s, exact.FinalWeight(s));
  }
  relaxed.SetInitial(exact.initial());

  for (StateId s = 0; s < exact.NumStates(); ++s) {
    for (const NfaTransition& t : exact.Out(s)) {
      relaxed.AddTransition(s, t);
      if (t.kind != TransitionKind::kLabel || t.label == kInvalidLabel ||
          t.label == LabelDictionary::kTypeLabel) {
        continue;
      }
      // sp rule: generalise p to each strict superproperty.
      for (const auto& [ancestor, steps] : ontology.LabelAncestors(t.label)) {
        NfaTransition generalised = t;
        generalised.label = ancestor;
        generalised.cost = t.cost + static_cast<Cost>(steps) * options.beta;
        relaxed.AddTransition(s, generalised);
      }
      // dom/range rule: replace p by a constrained type edge.
      if (options.enable_domain_range) {
        const auto klass = t.dir == Direction::kOutgoing
                               ? ontology.DomainNodeOf(t.label)
                               : ontology.RangeNodeOf(t.label);
        if (klass) {
          relaxed.AddConstrainedType(s, t.to, *klass, t.cost + options.gamma);
        }
      }
    }
  }

  if (exact.source_constant()) {
    relaxed.SetSourceConstant(*exact.source_constant());
  }
  if (exact.target_constant()) {
    relaxed.SetTargetConstant(*exact.target_constant());
  }
  relaxed.SetEntailmentMatching(true);
  relaxed.SortTransitions();
  return relaxed;
}

}  // namespace omega
