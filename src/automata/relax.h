// RELAX: augments an ε-free query NFA M_R into M^K_R using the ontology K
// (Poulovassilis & Wood, ISWC 2010). Three RDFS-based relaxation rules:
//
//   sp rule (cost β per step)  — a transition labelled with property p gains
//       parallel transitions labelled with each strict superproperty q of p
//       (same direction), at cost steps(p,q) * β. Evaluation then matches q
//       under entailment: any edge whose label is in down_sp(q) satisfies it,
//       which is how Example 3's gradFrom ~> relationLocatedByObject starts
//       matching sibling properties such as happenedIn.
//
//   sc rule (cost β per step)  — relaxes *class constants*: for a conjunct
//       (C, R, ?X) with C a class node, evaluation seeds the traversal from
//       every ancestor class of C at distance steps * β (the GetAncestors
//       call in the paper's Open procedure); `type`/`type-` edges match under
//       entailment (instances of descendant classes). This rule lives in the
//       evaluator's Open, not in the automaton — constants only occur at
//       conjunct endpoints in this query language.
//
//   dom/range rule (cost γ)    — "replacing a property label by a type edge
//       with target the property's domain or range class": a forward
//       transition labelled p gains a constrained-`type` transition whose
//       target class must lie in down_sc(dom(p)); a reverse transition p-
//       gains one constrained to down_sc(range(p)). Off by default — the
//       paper's experiments apply only rules of type (i).
#ifndef OMEGA_AUTOMATA_RELAX_H_
#define OMEGA_AUTOMATA_RELAX_H_

#include "automata/nfa.h"
#include "ontology/ontology.h"

namespace omega {

struct RelaxOptions {
  /// Cost of one sc/sp generalisation step (the paper's β; 1 in §4).
  Cost beta = 1;
  /// Cost of a dom/range replacement (the paper's γ).
  Cost gamma = 1;
  /// Rules of type (ii); the paper implements them but benchmarks only
  /// rule (i), so they default off.
  bool enable_domain_range = false;
};

/// Builds M^K_R from an ε-free M_R. The result is ε-free, sorted, and has
/// entailment matching enabled.
Nfa BuildRelaxAutomaton(const Nfa& exact, const BoundOntology& ontology,
                        const RelaxOptions& options);

}  // namespace omega

#endif  // OMEGA_AUTOMATA_RELAX_H_
