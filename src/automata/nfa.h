// Weighted non-deterministic finite automaton over graph-edge symbols.
//
// Transitions consume a traversal step in the data graph (an edge with a
// direction), except ε-transitions which consume nothing but may carry a
// positive cost (APPROX deletions). After ε-removal, a state can carry a
// positive *final weight* — the cheapest cost of ε-reaching a final state
// (Droste, Kuich & Vogler, Handbook of Weighted Automata), which is the
// `weight(s)` of the paper's GetNext line 13.
#ifndef OMEGA_AUTOMATA_NFA_H_
#define OMEGA_AUTOMATA_NFA_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "store/label_dictionary.h"
#include "store/types.h"

namespace omega {

using StateId = uint32_t;
using Cost = int32_t;

inline constexpr Cost kInfiniteCost = INT32_MAX / 4;
inline constexpr StateId kInvalidState = static_cast<StateId>(-1);

enum class TransitionKind : uint8_t {
  kEpsilon = 0,          ///< no edge consumed; cost may be > 0 (deletion)
  kLabel,                ///< one edge with a specific label, fixed direction
  kAnyLabel,             ///< `_`: one edge with any label, fixed direction
  kAnyLabelBothDirs,     ///< APPROX `*`: any label, either direction
  kConstrainedType,      ///< RELAX dom/range: forward `type` edge whose target
                         ///< class lies in the down-set of `class_node`
};

struct NfaTransition {
  StateId to = kInvalidState;
  Cost cost = 0;
  TransitionKind kind = TransitionKind::kEpsilon;
  Direction dir = Direction::kOutgoing;  // kLabel / kAnyLabel
  LabelId label = kInvalidLabel;         // kLabel (kInvalidLabel: label not in
                                         // the graph; matches no stored edge)
  NodeId class_node = kInvalidNode;      // kConstrainedType

  /// True if two transitions fetch the same neighbour set (the Succ
  /// optimisation: "identical labels consecutively ... avoiding identical
  /// calls to NeighboursByEdge").
  bool SameNeighborGroup(const NfaTransition& other) const {
    return kind == other.kind && dir == other.dir && label == other.label &&
           class_node == other.class_node;
  }
};

/// The weighted NFA (M_R, A_R or M^K_R of the paper).
class Nfa {
 public:
  StateId AddState();
  size_t NumStates() const { return states_.size(); }
  size_t NumTransitions() const;

  void SetInitial(StateId s) { initial_ = s; }
  StateId initial() const { return initial_; }

  void MakeFinal(StateId s, Cost weight = 0);
  /// Clears the final flag (used by automaton transforms).
  void ClearFinal(StateId s);
  bool IsFinal(StateId s) const { return states_[s].is_final; }
  Cost FinalWeight(StateId s) const { return states_[s].final_weight; }

  void AddTransition(StateId from, NfaTransition t);
  void AddEpsilon(StateId from, StateId to, Cost cost = 0);
  void AddLabel(StateId from, StateId to, LabelId label, Direction dir,
                Cost cost = 0);
  void AddAnyLabel(StateId from, StateId to, Direction dir, Cost cost = 0);
  void AddAnyBothDirs(StateId from, StateId to, Cost cost);
  void AddConstrainedType(StateId from, StateId to, NodeId class_node,
                          Cost cost);

  std::span<const NfaTransition> Out(StateId s) const { return states_[s].out; }

  bool HasEpsilonTransitions() const;

  /// Orders each state's transitions so that SameNeighborGroup members are
  /// adjacent (cheapest first within a group). Call once construction is done.
  void SortTransitions();

  /// φ: the smallest positive transition cost or final weight; the increment
  /// of the distance-aware optimisation. kInfiniteCost if everything is free.
  Cost MinPositiveCost() const;

  // --- conjunct annotations (§3.3: initial/final state constants) ----------
  void SetSourceConstant(std::string c) { source_constant_ = std::move(c); }
  void SetTargetConstant(std::string c) { target_constant_ = std::move(c); }
  const std::optional<std::string>& source_constant() const {
    return source_constant_;
  }
  const std::optional<std::string>& target_constant() const {
    return target_constant_;
  }

  /// RELAX evaluates under RDFS entailment (down-set label matching).
  void SetEntailmentMatching(bool on) { entailment_matching_ = on; }
  bool entailment_matching() const { return entailment_matching_; }

  /// Multi-line human-readable dump for debugging and golden tests.
  std::string DebugString(const LabelDictionary* labels = nullptr) const;

 private:
  struct State {
    bool is_final = false;
    Cost final_weight = 0;
    std::vector<NfaTransition> out;
  };

  std::vector<State> states_;
  StateId initial_ = kInvalidState;
  std::optional<std::string> source_constant_;
  std::optional<std::string> target_constant_;
  bool entailment_matching_ = false;
};

}  // namespace omega

#endif  // OMEGA_AUTOMATA_NFA_H_
