// Standard Thompson construction from a regex AST to an ε-NFA with a single
// initial and a single final state (§3.3: "an automaton (NFA) M_R is first
// constructed from regular expression R using standard techniques").
#ifndef OMEGA_AUTOMATA_THOMPSON_H_
#define OMEGA_AUTOMATA_THOMPSON_H_

#include "automata/nfa.h"
#include "ontology/ontology.h"
#include "rpq/regex_ast.h"
#include "store/label_dictionary.h"

namespace omega {

/// Builds the ε-NFA for `regex`. Labels are resolved against `labels`, then
/// (if `ontology` is given) against the ontology's synthetic labels for
/// properties absent from the graph; anything else becomes a kInvalidLabel
/// transition — it can never match a stored edge, but APPROX edit operations
/// still apply to it. All transitions have cost 0.
Nfa BuildThompsonNfa(const RegexNode& regex, const LabelDictionary& labels,
                     const BoundOntology* ontology = nullptr);

}  // namespace omega

#endif  // OMEGA_AUTOMATA_THOMPSON_H_
