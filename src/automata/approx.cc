#include "automata/approx.h"

#include <cassert>

#include "automata/epsilon_removal.h"

namespace omega {
namespace {

bool ConsumesEdge(const NfaTransition& t) {
  return t.kind != TransitionKind::kEpsilon;
}

}  // namespace

Nfa BuildApproxAutomaton(const Nfa& exact, const ApproxOptions& options) {
  assert(!exact.HasEpsilonTransitions());

  Nfa a;
  for (StateId s = 0; s < exact.NumStates(); ++s) {
    const StateId copy = a.AddState();
    (void)copy;
    assert(copy == s);
    if (exact.IsFinal(s)) a.MakeFinal(s, exact.FinalWeight(s));
  }
  a.SetInitial(exact.initial());

  for (StateId s = 0; s < exact.NumStates(); ++s) {
    // Insertion: consume any extra edge (any label, either direction)
    // without advancing in the query.
    a.AddAnyBothDirs(s, s, options.insertion_cost);

    for (const NfaTransition& t : exact.Out(s)) {
      a.AddTransition(s, t);  // the exact transition, cost unchanged
      if (!ConsumesEdge(t)) continue;
      // Substitution: consume any one edge instead of this one.
      a.AddAnyBothDirs(s, t.to, options.substitution_cost);
      // Deletion: skip this query symbol without consuming an edge.
      a.AddEpsilon(s, t.to, options.deletion_cost);
    }
  }

  if (options.enable_transposition) {
    // For each two-step path (s -a-> t -b-> u) in the exact automaton, allow
    // consuming b then a at transposition cost. New intermediate states are
    // appended after the copied ones.
    for (StateId s = 0; s < exact.NumStates(); ++s) {
      for (const NfaTransition& first : exact.Out(s)) {
        if (!ConsumesEdge(first)) continue;
        for (const NfaTransition& second : exact.Out(first.to)) {
          if (!ConsumesEdge(second)) continue;
          const StateId mid = a.AddState();
          NfaTransition swapped_first = second;
          swapped_first.to = mid;
          swapped_first.cost = options.transposition_cost;
          a.AddTransition(s, swapped_first);
          NfaTransition swapped_second = first;
          swapped_second.to = second.to;
          swapped_second.cost = 0;
          a.AddTransition(mid, swapped_second);
        }
      }
    }
  }

  if (exact.source_constant()) a.SetSourceConstant(*exact.source_constant());
  if (exact.target_constant()) a.SetTargetConstant(*exact.target_constant());
  a.SetEntailmentMatching(exact.entailment_matching());

  // Fold the deletion ε-transitions into weights (second ε-removal pass).
  return RemoveEpsilons(a);
}

}  // namespace omega
