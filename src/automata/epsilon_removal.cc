#include "automata/epsilon_removal.h"

#include <algorithm>
#include <map>
#include <queue>
#include <tuple>
#include <vector>

namespace omega {
namespace {

/// Dijkstra over ε-edges only: cheapest ε-cost from `from` to every state.
std::vector<Cost> EpsilonClosure(const Nfa& nfa, StateId from) {
  std::vector<Cost> dist(nfa.NumStates(), kInfiniteCost);
  using Entry = std::pair<Cost, StateId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[from] = 0;
  heap.emplace(0, from);
  while (!heap.empty()) {
    auto [d, s] = heap.top();
    heap.pop();
    if (d > dist[s]) continue;
    for (const NfaTransition& t : nfa.Out(s)) {
      if (t.kind != TransitionKind::kEpsilon) continue;
      const Cost nd = d + t.cost;
      if (nd < dist[t.to]) {
        dist[t.to] = nd;
        heap.emplace(nd, t.to);
      }
    }
  }
  return dist;
}

/// Key identifying a transition's effect (everything except its cost).
using TransitionKey =
    std::tuple<StateId, TransitionKind, Direction, LabelId, NodeId, StateId>;

TransitionKey KeyOf(StateId from, const NfaTransition& t) {
  return {from, t.kind, t.dir, t.label, t.class_node, t.to};
}

}  // namespace

Nfa RemoveEpsilons(const Nfa& input) {
  const size_t n = input.NumStates();

  // 1. For every state, fold ε-closures into direct transitions and final
  //    weights, collapsing duplicates onto their minimum cost.
  std::map<TransitionKey, NfaTransition> transitions;
  std::vector<bool> is_final(n, false);
  std::vector<Cost> final_weight(n, kInfiniteCost);

  for (StateId s = 0; s < n; ++s) {
    const std::vector<Cost> closure = EpsilonClosure(input, s);
    for (StateId u = 0; u < n; ++u) {
      if (closure[u] >= kInfiniteCost) continue;
      if (input.IsFinal(u)) {
        is_final[s] = true;
        final_weight[s] =
            std::min(final_weight[s], closure[u] + input.FinalWeight(u));
      }
      for (const NfaTransition& t : input.Out(u)) {
        if (t.kind == TransitionKind::kEpsilon) continue;
        NfaTransition nt = t;
        nt.cost = closure[u] + t.cost;
        auto [it, inserted] = transitions.try_emplace(KeyOf(s, nt), nt);
        if (!inserted) it->second.cost = std::min(it->second.cost, nt.cost);
      }
    }
  }

  // 2. Forward reachability from the initial state over the new transitions.
  std::vector<bool> reachable(n, false);
  {
    std::vector<StateId> stack{input.initial()};
    reachable[input.initial()] = true;
    // Adjacency over collapsed transitions.
    std::vector<std::vector<StateId>> next(n);
    for (const auto& [key, t] : transitions) {
      next[std::get<0>(key)].push_back(t.to);
    }
    while (!stack.empty()) {
      const StateId s = stack.back();
      stack.pop_back();
      for (StateId to : next[s]) {
        if (!reachable[to]) {
          reachable[to] = true;
          stack.push_back(to);
        }
      }
    }
  }

  // 3. Co-reachability: states from which some final state is reachable.
  std::vector<bool> useful(n, false);
  {
    std::vector<std::vector<StateId>> prev(n);
    for (const auto& [key, t] : transitions) {
      prev[t.to].push_back(std::get<0>(key));
    }
    std::vector<StateId> stack;
    for (StateId s = 0; s < n; ++s) {
      if (is_final[s]) {
        useful[s] = true;
        stack.push_back(s);
      }
    }
    while (!stack.empty()) {
      const StateId s = stack.back();
      stack.pop_back();
      for (StateId from : prev[s]) {
        if (!useful[from]) {
          useful[from] = true;
          stack.push_back(from);
        }
      }
    }
  }

  // 4. Renumber kept states (initial always kept) and emit.
  std::vector<StateId> remap(n, kInvalidState);
  Nfa out;
  for (StateId s = 0; s < n; ++s) {
    if ((reachable[s] && useful[s]) || s == input.initial()) {
      remap[s] = out.AddState();
    }
  }
  out.SetInitial(remap[input.initial()]);
  for (StateId s = 0; s < n; ++s) {
    if (remap[s] == kInvalidState) continue;
    if (is_final[s]) out.MakeFinal(remap[s], final_weight[s]);
  }
  for (const auto& [key, t] : transitions) {
    const StateId from = std::get<0>(key);
    if (remap[from] == kInvalidState || remap[t.to] == kInvalidState) continue;
    NfaTransition nt = t;
    nt.to = remap[t.to];
    out.AddTransition(remap[from], nt);
  }

  if (input.source_constant()) out.SetSourceConstant(*input.source_constant());
  if (input.target_constant()) out.SetTargetConstant(*input.target_constant());
  out.SetEntailmentMatching(input.entailment_matching());
  out.SortTransitions();
  return out;
}

}  // namespace omega
