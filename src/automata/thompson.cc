#include "automata/thompson.h"

namespace omega {
namespace {

struct Fragment {
  StateId start;
  StateId end;
};

class Builder {
 public:
  Builder(Nfa* nfa, const LabelDictionary* labels,
          const BoundOntology* ontology)
      : nfa_(nfa), labels_(labels), ontology_(ontology) {}

  Fragment Build(const RegexNode& node) {
    switch (node.op) {
      case RegexOp::kEpsilon: {
        Fragment f = NewFragment();
        nfa_->AddEpsilon(f.start, f.end);
        return f;
      }
      case RegexOp::kLabel: {
        Fragment f = NewFragment();
        auto label = labels_->Find(node.label);
        if (!label && ontology_ != nullptr) {
          label = ontology_->FindSyntheticLabel(node.label);
        }
        nfa_->AddLabel(f.start, f.end, label.value_or(kInvalidLabel),
                       node.dir);
        return f;
      }
      case RegexOp::kWildcard: {
        Fragment f = NewFragment();
        nfa_->AddAnyLabel(f.start, f.end, node.dir);
        return f;
      }
      case RegexOp::kConcat: {
        Fragment whole = Build(*node.children[0]);
        for (size_t i = 1; i < node.children.size(); ++i) {
          Fragment next = Build(*node.children[i]);
          nfa_->AddEpsilon(whole.end, next.start);
          whole.end = next.end;
        }
        return whole;
      }
      case RegexOp::kAlternation: {
        Fragment f = NewFragment();
        for (const RegexPtr& child : node.children) {
          Fragment branch = Build(*child);
          nfa_->AddEpsilon(f.start, branch.start);
          nfa_->AddEpsilon(branch.end, f.end);
        }
        return f;
      }
      case RegexOp::kStar: {
        Fragment f = NewFragment();
        Fragment body = Build(*node.children[0]);
        nfa_->AddEpsilon(f.start, f.end);
        nfa_->AddEpsilon(f.start, body.start);
        nfa_->AddEpsilon(body.end, body.start);
        nfa_->AddEpsilon(body.end, f.end);
        return f;
      }
      case RegexOp::kPlus: {
        Fragment f = NewFragment();
        Fragment body = Build(*node.children[0]);
        nfa_->AddEpsilon(f.start, body.start);
        nfa_->AddEpsilon(body.end, body.start);
        nfa_->AddEpsilon(body.end, f.end);
        return f;
      }
    }
    return NewFragment();  // unreachable
  }

 private:
  Fragment NewFragment() { return {nfa_->AddState(), nfa_->AddState()}; }

  Nfa* nfa_;
  const LabelDictionary* labels_;
  const BoundOntology* ontology_;
};

}  // namespace

Nfa BuildThompsonNfa(const RegexNode& regex, const LabelDictionary& labels,
                     const BoundOntology* ontology) {
  Nfa nfa;
  Builder builder(&nfa, &labels, ontology);
  Fragment f = builder.Build(regex);
  nfa.SetInitial(f.start);
  nfa.MakeFinal(f.end, 0);
  return nfa;
}

}  // namespace omega
