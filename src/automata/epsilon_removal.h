// Weighted ε-removal. APPROX deletion operations introduce ε-transitions
// with positive costs, so ε-closures are computed with Dijkstra and the
// cheapest ε-path from a state to a final state becomes that state's *final
// weight* (§3.3: "the removal of ε-transitions may result in final states
// having an additional, positive weight").
#ifndef OMEGA_AUTOMATA_EPSILON_REMOVAL_H_
#define OMEGA_AUTOMATA_EPSILON_REMOVAL_H_

#include "automata/nfa.h"

namespace omega {

/// Returns an equivalent NFA with no ε-transitions. States unreachable from
/// the initial state, and states from which no final state can be reached,
/// are pruned (the initial state is always kept). Duplicate transitions keep
/// their minimum cost. Conjunct annotations and flags are preserved.
Nfa RemoveEpsilons(const Nfa& input);

}  // namespace omega

#endif  // OMEGA_AUTOMATA_EPSILON_REMOVAL_H_
