// Embedded HTTP/1.1 admin server: a minimal-dependency (plain POSIX
// sockets, no third-party HTTP stack) listener for the ops plane. One
// listener thread accepts connections and hands them to a small handler
// pool through a bounded queue; every request is GET, every response closes
// the connection. This is deliberately the first slice of the network front
// end — the listener/queue/drain scaffolding here is what the query-serving
// RPC layer will reuse.
//
// Concurrency (annotated lock layer — src/net is in the linter's
// annotated-locking scope):
//  - `mu_` guards the pending-connection queue and the lifecycle flags;
//    handler threads block on `conn_cv_`.
//  - `draining_` is a justified RelaxedAtomic: an advisory flag /readyz
//    polls so readiness flips the moment shutdown begins, ahead of the
//    joins. No ordering is implied — the authoritative stop signal is
//    `stopping_` under `mu_`.
//  - Routes are registered before Start() and immutable afterwards
//    (asserted), so Dispatch() reads them without a lock.
//
// Graceful shutdown: Shutdown() flips draining_, stops the listener (poll
// loop observes the flag), wakes the handlers and joins them — a handler
// that is mid-request finishes writing its response first (bounded by the
// socket timeouts). Connections still queued but not yet picked up are
// closed without a response.
#ifndef OMEGA_NET_ADMIN_SERVER_H_
#define OMEGA_NET_ADMIN_SERVER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/atomics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/http.h"

namespace omega {

class MetricsRegistry;
class Counter;
class Gauge;

struct AdminServerOptions {
  /// Bind address. Loopback by default: the admin plane is an operator
  /// surface, exposing it beyond the host is an explicit decision.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port (read it back via port() after Start()).
  uint16_t port = 0;
  /// Handler pool size (min 1). Scrapes are cheap; two is plenty.
  size_t num_handlers = 2;
  /// Request line + headers larger than this are rejected with 431.
  size_t max_request_bytes = 8192;
  /// Socket receive/send timeout: bounds how long a stuck client can hold
  /// a handler (and therefore how long Shutdown() can block).
  int io_timeout_ms = 5000;
  /// Accepted-but-unhandled connections beyond this are answered 503.
  size_t max_pending = 64;
  /// Registry for the server's own instruments; nullptr selects
  /// MetricsRegistry::Global().
  MetricsRegistry* metrics = nullptr;
};

class AdminServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct RouteInfo {
    std::string path;
    std::string description;
  };

  explicit AdminServer(AdminServerOptions options = {});
  /// Calls Shutdown().
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers a GET route for an exact path. Must be called before
  /// Start(); handlers run on handler-pool threads and must be
  /// thread-safe. Re-registering a path replaces its handler.
  void Route(std::string path, std::string description, Handler handler)
      OMEGA_EXCLUDES(mu_);

  /// Binds, listens, and starts the listener + handler threads. Fails with
  /// kFailedPrecondition if already started (one Start per instance) and
  /// kInternal on socket/bind failures.
  Status Start() OMEGA_EXCLUDES(mu_);

  /// Graceful shutdown: stops accepting, lets in-flight responses finish,
  /// joins all threads, closes queued-but-unserved connections.
  /// Idempotent.
  void Shutdown() OMEGA_EXCLUDES(mu_);

  bool running() const OMEGA_EXCLUDES(mu_);
  /// True from the moment Shutdown() begins (readiness probes go 503).
  bool draining() const { return draining_.Load(); }
  /// Bound port (the resolved one when options.port was 0); 0 before Start.
  uint16_t port() const { return port_; }
  const std::string& bind_address() const { return options_.bind_address; }
  std::vector<RouteInfo> routes() const OMEGA_EXCLUDES(mu_);
  uint64_t requests_served() const { return requests_.Load(); }

 private:
  void ListenerLoop() OMEGA_EXCLUDES(mu_);
  void HandlerLoop() OMEGA_EXCLUDES(mu_);
  /// Reads, parses, dispatches and answers one connection, then closes it.
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) const;

  AdminServerOptions options_;  // clamped at construction, then immutable

  /// Registration-ordered; frozen once `started_` flips (Route asserts),
  /// after which listener/handler threads read it lock-free.
  std::vector<std::pair<RouteInfo, Handler>> routes_;

  mutable Mutex mu_;
  CondVar conn_cv_;
  /// Accepted fds awaiting a handler.
  std::deque<int> pending_ OMEGA_GUARDED_BY(mu_);
  bool started_ OMEGA_GUARDED_BY(mu_) = false;
  bool stopping_ OMEGA_GUARDED_BY(mu_) = false;

  // RelaxedAtomic: advisory readiness/drain flag and monotonic tallies —
  // readers tolerate staleness; lifecycle ordering comes from mu_.
  RelaxedAtomic<bool> draining_;
  RelaxedAtomic<uint64_t> requests_;

  int listen_fd_ = -1;   ///< owned; valid between a successful Start and
                         ///< the end of Shutdown
  uint16_t port_ = 0;    ///< written by Start() before threads exist
  std::thread listener_;
  std::vector<std::thread> handlers_;

  /// Cached instruments (resolved at Start): request/connection tallies and
  /// the handler-pool size, so `/metrics` shows the ops plane itself.
  Counter* requests_counter_ = nullptr;
  Counter* connections_counter_ = nullptr;
  Counter* http_errors_counter_ = nullptr;
  Gauge* handler_threads_gauge_ = nullptr;
};

}  // namespace omega

#endif  // OMEGA_NET_ADMIN_SERVER_H_
