// Minimal HTTP/1.1 primitives for the embedded admin server: a request-line
// parser and a response serialiser. Deliberately tiny — the admin plane is
// GET-only, close-per-request, and carries no bodies inbound — but split
// from the socket code so the parsing rules are unit-testable without a
// listener. The upcoming query-serving RPC layer reuses these types.
#ifndef OMEGA_NET_HTTP_H_
#define OMEGA_NET_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace omega {

struct HttpRequest {
  std::string method;   ///< e.g. "GET"
  std::string target;   ///< request target as sent, e.g. "/metrics?x=1"
  std::string path;     ///< target up to '?', e.g. "/metrics"
  std::string query;    ///< after '?', empty when absent
  std::string version;  ///< e.g. "HTTP/1.1"
};

/// Parses `METHOD SP TARGET SP VERSION` (no trailing CRLF). Fails with
/// kInvalidArgument on malformed lines, non-origin-form targets or
/// non-HTTP/1.x versions.
Result<HttpRequest> ParseRequestLine(std::string_view line);

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers (e.g. {"Allow", "GET"} on 405).
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// "OK", "Not Found", ... ("Unknown" for unmapped codes).
const char* HttpReasonPhrase(int status);

/// Full wire form: status line, Content-Type/Content-Length/Connection:
/// close plus extra_headers, blank line, body.
std::string SerializeHttpResponse(const HttpResponse& response);

/// Convenience plain-text response (body gets a trailing newline).
HttpResponse TextResponse(int status, std::string_view body);

}  // namespace omega

#endif  // OMEGA_NET_HTTP_H_
