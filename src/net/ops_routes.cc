#include "net/ops_routes.h"

#include <cstdio>

#include "net/admin_server.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/process_metrics.h"
#include "service/query_service.h"

namespace omega {

namespace {

/// Readiness verdict shared by /readyz and /statusz: the empty string means
/// ready, anything else is the reason the instance must not receive load.
std::string NotReadyReason(const AdminServer* server,
                           const QueryService* service) {
  if (server->draining()) return "draining: admin server is shutting down";
  if (service == nullptr) return "no dataset-backed query service attached";
  if (!service->accepting()) return "query service is shutting down";
  return "";
}

}  // namespace

MetricsRegistry* EffectiveMetricsRegistry(const QueryService* service) {
  if (service != nullptr && service->metrics_registry() != nullptr) {
    return service->metrics_registry();
  }
  return MetricsRegistry::Global();
}

FlightRecorder* EffectiveFlightRecorder(const QueryService* service) {
  return service != nullptr ? service->flight_recorder() : nullptr;
}

std::string BuildInfoString() {
  std::string info = "compiler: ";
#if defined(__clang__)
  info += "clang " __clang_version__;
#elif defined(__GNUC__)
  info += "gcc " __VERSION__;
#else
  info += "unknown";
#endif
  info += ", std: " + std::to_string(__cplusplus / 100 % 100);
#if defined(NDEBUG)
  info += ", asserts: off";
#else
  info += ", asserts: on";
#endif
  return info;
}

void RegisterOpsRoutes(AdminServer* server, const OpsPlaneOptions& options) {
  OpsPlaneOptions ops = options;  // resolved copy captured by the handlers
  if (ops.metrics == nullptr) ops.metrics = MetricsRegistry::Global();
  if (ops.events == nullptr) ops.events = EventLog::Global();
  if (ops.build_info.empty()) ops.build_info = BuildInfoString();

  server->Route("/", "route index", [server](const HttpRequest&) {
    std::string body = "omega admin server\n\nroutes:\n";
    for (const AdminServer::RouteInfo& route : server->routes()) {
      body += "  " + route.path;
      body.append(route.path.size() < 12 ? 12 - route.path.size() : 1, ' ');
      body += route.description + "\n";
    }
    return TextResponse(200, body);
  });

  server->Route(
      "/metrics", "Prometheus text exposition",
      [ops](const HttpRequest&) {
        // Self-metrics are pull-refreshed: the scrape is the poll.
        UpdateProcessSelfMetrics(ops.metrics);
        HttpResponse response;
        response.content_type = "text/plain; version=0.0.4; charset=utf-8";
        response.body = ops.metrics->RenderText();
        return response;
      });

  server->Route("/healthz", "liveness probe", [](const HttpRequest&) {
    return TextResponse(200, "ok");
  });

  server->Route(
      "/readyz", "readiness probe (dataset availability + drain state)",
      [server, ops](const HttpRequest&) {
        const std::string reason = NotReadyReason(server, ops.service);
        if (reason.empty()) return TextResponse(200, "ready");
        return TextResponse(503, "not ready: " + reason);
      });

  server->Route(
      "/statusz", "build info, uptime, service stats, epoch/swap state",
      [server, ops](const HttpRequest&) {
        std::string body = "omega admin server\n";
        body += ops.build_info + "\n";
        char line[128];
        std::snprintf(line, sizeof(line), "uptime_s: %.1f\n",
                      ProcessUptimeSeconds());
        body += line;
        const std::string reason = NotReadyReason(server, ops.service);
        body += "ready: ";
        body += reason.empty() ? "yes" : ("no (" + reason + ")");
        body += "\n";
        if (ops.service != nullptr) {
          std::snprintf(line, sizeof(line),
                        "epoch: %llu  workers: %zu  queue_depth: %zu\n",
                        static_cast<unsigned long long>(
                            ops.service->dataset_epoch()),
                        ops.service->num_workers(),
                        ops.service->queue_depth());
          body += line;
          body += "\n";
          body += ops.service->stats().ToString();
        } else {
          body += "service: (none attached)\n";
        }
        if (ops.recorder != nullptr) {
          std::snprintf(
              line, sizeof(line),
              "\nflight recorder: %llu recorded, %llu slow "
              "(threshold %llu us)\n",
              static_cast<unsigned long long>(ops.recorder->recorded_total()),
              static_cast<unsigned long long>(ops.recorder->slow_total()),
              static_cast<unsigned long long>(
                  ops.recorder->slow_threshold_us()));
          body += line;
        }
        std::snprintf(line, sizeof(line), "events recorded: %llu\n",
                      static_cast<unsigned long long>(
                          ops.events->recorded_total()));
        body += line;
        return TextResponse(200, body);
      });

  server->Route(
      "/tracez", "recent + slow query flight records (JSON)",
      [ops](const HttpRequest&) {
        HttpResponse response;
        response.content_type = "application/json";
        response.body =
            ops.recorder != nullptr
                ? ops.recorder->ToJson(ops.tracez_recent, /*max_slow=*/0)
                : std::string(
                      "{\"recent\":[],\"slow\":[],\"recorded_total\":0,"
                      "\"slow_total\":0,\"slow_threshold_us\":0}");
        return response;
      });

  server->Route("/eventz", "structured event journal (JSON)",
                [ops](const HttpRequest&) {
                  HttpResponse response;
                  response.content_type = "application/json";
                  response.body = ops.events->ToJson(/*max_events=*/0);
                  return response;
                });
}

}  // namespace omega
