#include "net/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace omega {

namespace {

/// Writes the whole buffer; MSG_NOSIGNAL so a peer that closed early gives
/// EPIPE instead of killing the process. Best-effort: the admin plane never
/// retries a failed response.
void SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

void SetIoTimeout(int fd, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

AdminServer::AdminServer(AdminServerOptions options)
    : options_(std::move(options)) {
  options_.num_handlers = std::max<size_t>(options_.num_handlers, 1);
  options_.max_pending = std::max<size_t>(options_.max_pending, 1);
  options_.max_request_bytes =
      std::max<size_t>(options_.max_request_bytes, 256);
  options_.io_timeout_ms = std::max(options_.io_timeout_ms, 10);
}

AdminServer::~AdminServer() { Shutdown(); }

void AdminServer::Route(std::string path, std::string description,
                        Handler handler) {
  {
    MutexLock lock(mu_);
    // Routes freeze at Start() so Dispatch() can read them without a lock.
    assert(!started_ && "Route() after Start()");
  }
  for (auto& [info, existing] : routes_) {
    if (info.path == path) {
      info.description = std::move(description);
      existing = std::move(handler);
      return;
    }
  }
  routes_.emplace_back(RouteInfo{std::move(path), std::move(description)},
                       std::move(handler));
}

Status AdminServer::Start() {
  {
    MutexLock lock(mu_);
    if (started_) {
      return Status::FailedPrecondition(
          "admin server already started (one Start per instance)");
    }
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::Internal("bind(" + options_.bind_address + ":" +
                           std::to_string(options_.port) +
                           ") failed: " + std::strerror(errno));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::Internal(std::string("listen() failed: ") +
                           std::strerror(errno));
  }
  // Resolve the ephemeral port before any thread (or caller) can ask.
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;

  MetricsRegistry* registry = options_.metrics != nullptr
                                  ? options_.metrics
                                  : MetricsRegistry::Global();
  requests_counter_ = registry->GetCounter("omega_admin_requests_total",
                                           "Admin HTTP requests answered");
  connections_counter_ = registry->GetCounter(
      "omega_admin_connections_total", "Admin HTTP connections accepted");
  http_errors_counter_ = registry->GetCounter(
      "omega_admin_http_errors_total", "Admin responses with status >= 400");
  handler_threads_gauge_ = registry->GetGauge(
      "omega_admin_handler_threads", "Admin handler pool size");
  handler_threads_gauge_->Set(static_cast<int64_t>(options_.num_handlers));

  {
    MutexLock lock(mu_);
    started_ = true;
    stopping_ = false;
  }
  draining_.Store(false);
  listener_ = std::thread(&AdminServer::ListenerLoop, this);
  handlers_.reserve(options_.num_handlers);
  for (size_t i = 0; i < options_.num_handlers; ++i) {
    handlers_.emplace_back(&AdminServer::HandlerLoop, this);
  }
  return Status::OK();
}

void AdminServer::Shutdown() {
  {
    MutexLock lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  // Readiness flips first: a /readyz answered while we join reports 503.
  draining_.Store(true);
  conn_cv_.NotifyAll();
  if (listener_.joinable()) listener_.join();
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  handlers_.clear();
  // Connections accepted but never picked up: close without a response
  // (handlers only drain the request they were already serving).
  std::deque<int> orphans;
  {
    MutexLock lock(mu_);
    orphans.swap(pending_);
    started_ = false;
  }
  for (int fd : orphans) ::close(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool AdminServer::running() const {
  MutexLock lock(mu_);
  return started_ && !stopping_;
}

std::vector<AdminServer::RouteInfo> AdminServer::routes() const {
  std::vector<RouteInfo> out;
  out.reserve(routes_.size());
  for (const auto& [info, handler] : routes_) out.push_back(info);
  return out;
}

void AdminServer::ListenerLoop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stopping_) return;
    }
    // Poll with a short timeout instead of blocking in accept(): shutdown
    // latency is bounded by one poll tick, with no cross-platform
    // close()/shutdown()-wakes-accept subtleties.
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_counter_->Increment();
    SetIoTimeout(fd, options_.io_timeout_ms);
    bool enqueued = false;
    {
      MutexLock lock(mu_);
      if (!stopping_ && pending_.size() < options_.max_pending) {
        pending_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      conn_cv_.NotifyOne();
    } else {
      // Overloaded (or already draining): answer 503 inline and move on —
      // the listener must never block behind a slow handler.
      http_errors_counter_->Increment();
      SendAll(fd, SerializeHttpResponse(
                      TextResponse(503, "admin server overloaded")));
      ::close(fd);
    }
  }
}

void AdminServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(mu_);
      while (!stopping_ && pending_.empty()) conn_cv_.Wait(mu_);
      if (stopping_) return;  // unserved fds are closed by Shutdown()
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
  }
}

void AdminServer::ServeConnection(int fd) {
  // Read until the end of the header block (we ignore headers, but must
  // consume the request line) or the size cap. A request line alone
  // terminated by CRLF is enough to dispatch.
  std::string data;
  while (data.find("\r\n") == std::string::npos &&
         data.size() < options_.max_request_bytes) {
    char buf[1024];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // timeout or peer closed before a full line
    data.append(buf, static_cast<size_t>(n));
  }
  HttpResponse response;
  const size_t line_end = data.find("\r\n");
  if (line_end == std::string::npos) {
    response = data.size() >= options_.max_request_bytes
                   ? TextResponse(431, "request line too large")
                   : TextResponse(400, "malformed request");
  } else {
    const Result<HttpRequest> request =
        ParseRequestLine(std::string_view(data).substr(0, line_end));
    if (!request.ok()) {
      response = TextResponse(400, request.status().message());
    } else if (request->method != "GET") {
      response = TextResponse(405, "admin server is GET-only");
      response.extra_headers.emplace_back("Allow", "GET");
    } else {
      response = Dispatch(*request);
    }
  }
  requests_.FetchAdd(1);
  requests_counter_->Increment();
  if (response.status >= 400) http_errors_counter_->Increment();
  SendAll(fd, SerializeHttpResponse(response));
  ::close(fd);
}

HttpResponse AdminServer::Dispatch(const HttpRequest& request) const {
  for (const auto& [info, handler] : routes_) {
    if (info.path == request.path) return handler(request);
  }
  return TextResponse(404, "no such route: " + request.path);
}

}  // namespace omega
