// Ops-plane routes: binds the observability surfaces (MetricsRegistry,
// FlightRecorder, EventLog, QueryService stats) to an AdminServer. The
// registered endpoints:
//
//   /          route index
//   /metrics   Prometheus exposition (refreshes process self-metrics first)
//   /healthz   liveness — 200 while the process can answer at all
//   /readyz    readiness — 200 only when a dataset-backed service is
//              attached, accepting submissions, and the server isn't
//              draining; 503 with a reason otherwise
//   /statusz   build info, uptime, ServiceStats::ToString, epoch/swap state
//   /tracez    flight-recorder summaries + slow-query traces as JSON
//   /eventz    structured event journal as JSON
//
// Also home to the surface-selection helpers the shell shares: `.metrics`,
// `.trace save` and `.slowlog` must follow the service's *injected*
// registry/recorder when one was supplied, falling back to the process
// globals — the same resolution the HTTP handlers use.
#ifndef OMEGA_NET_OPS_ROUTES_H_
#define OMEGA_NET_OPS_ROUTES_H_

#include <string>

namespace omega {

class AdminServer;
class EventLog;
class FlightRecorder;
class MetricsRegistry;
class QueryService;

struct OpsPlaneOptions {
  /// Registry /metrics and /statusz render; nullptr selects
  /// MetricsRegistry::Global().
  MetricsRegistry* metrics = nullptr;
  /// Flight recorder behind /tracez; nullable (renders an empty body).
  FlightRecorder* recorder = nullptr;
  /// Event journal behind /eventz; nullptr selects EventLog::Global().
  EventLog* events = nullptr;
  /// Service whose stats/readiness /statusz and /readyz report. Nullable
  /// (readiness is then 503 "no dataset attached"). Not owned: must outlive
  /// the server or be detached by shutting the server down first.
  QueryService* service = nullptr;
  /// Extra build/deploy identification rendered on /statusz.
  std::string build_info;
  /// Summaries /tracez returns from the recent ring (0 = all retained).
  size_t tracez_recent = 64;
};

/// Registers the routes above on `server` (call before Start()). Copies
/// `options` into the handlers; the pointed-to surfaces are borrowed.
void RegisterOpsRoutes(AdminServer* server, const OpsPlaneOptions& options);

/// The registry `service` exports into when it has one (injected or
/// global); MetricsRegistry::Global() when `service` is null or has
/// metrics disabled. Never null.
MetricsRegistry* EffectiveMetricsRegistry(const QueryService* service);

/// The service's attached flight recorder, or null when `service` is null
/// or records no flights.
FlightRecorder* EffectiveFlightRecorder(const QueryService* service);

/// Compiler/standard/build-mode identification line.
std::string BuildInfoString();

}  // namespace omega

#endif  // OMEGA_NET_OPS_ROUTES_H_
