#include "net/http.h"

namespace omega {

Result<HttpRequest> ParseRequestLine(std::string_view line) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) {
    return Status::InvalidArgument("malformed request line");
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
    return Status::InvalidArgument("malformed request line");
  }
  if (line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Status::InvalidArgument("malformed request line");
  }
  HttpRequest request;
  request.method = std::string(line.substr(0, sp1));
  request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(line.substr(sp2 + 1));
  if (request.version.rfind("HTTP/1.", 0) != 0) {
    return Status::InvalidArgument("unsupported HTTP version: " +
                                   request.version);
  }
  // Admin routes are origin-form only ("/path?query").
  if (request.target.empty() || request.target[0] != '/') {
    return Status::InvalidArgument("unsupported request target: " +
                                   request.target);
  }
  const size_t qmark = request.target.find('?');
  if (qmark == std::string::npos) {
    request.path = request.target;
  } else {
    request.path = request.target.substr(0, qmark);
    request.query = request.target.substr(qmark + 1);
  }
  return request;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 ";
  out.append(std::to_string(response.status));
  out.push_back(' ');
  out.append(HttpReasonPhrase(response.status));
  out.append("\r\nContent-Type: ");
  out.append(response.content_type);
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(response.body.size()));
  out.append("\r\nConnection: close\r\n");
  for (const auto& [name, value] : response.extra_headers) {
    out.append(name);
    out.append(": ");
    out.append(value);
    out.append("\r\n");
  }
  out.append("\r\n");
  out.append(response.body);
  return out;
}

HttpResponse TextResponse(int status, std::string_view body) {
  HttpResponse response;
  response.status = status;
  response.body = std::string(body);
  if (response.body.empty() || response.body.back() != '\n') {
    response.body.push_back('\n');
  }
  return response;
}

}  // namespace omega
