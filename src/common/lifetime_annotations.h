// Clang lifetime annotations for the zero-copy borrow seam: each macro below
// attaches a lifetime contract to a declaration, turning the safety rules of
// the snapshot storage engine ("a borrowed ConstArray does not keep its
// storage alive — whoever created the borrow must outlive it") into
// something the compiler checks on every build instead of something ASan has
// to catch at runtime on one lucky dangle. On compilers without the
// attributes (GCC, MSVC) every macro expands to nothing, so the annotated
// tree builds identically everywhere; the `static-analysis` CI job promotes
// the dangling diagnostics to errors (-Werror=dangling, -Werror=dangling-gsl,
// -Werror=return-stack-address) alongside -Werror=thread-safety, and
// tests/negative/ proves the layer still rejects seeded dangles (it must not
// rot into decoration). This is the lifetime twin of thread_annotations.h.
//
// Conventions in this repo:
//  - Annotate every view-returning method of the borrow-seam classes
//    (ConstArray, StringTable, OidSet, CsrAdjacency, GraphStore,
//    LabelDictionary, MappedFile, Dataset) with OMEGA_LIFETIME_BOUND: the
//    returned span/string_view/reference must not outlive *this. Placement
//    is after the cv-qualifiers: `std::span<const T> span() const
//    OMEGA_LIFETIME_BOUND;`. tools/lint/check_invariants.py fails the build
//    when a public view-returning method in the seam scope forgets it.
//  - Annotate borrow-creating *parameters* the same way: in
//    `Borrowed(std::span<const T> view OMEGA_LIFETIME_BOUND)` the result is
//    bound to the storage behind `view`, so borrowing from a temporary
//    vector is flagged at the call site.
//  - Mark the classes that own mapped or heap storage OMEGA_OWNER_TYPE
//    (MappedFile, Dataset) and the pure statement-level views
//    OMEGA_VIEW_TYPE, so Clang's GSL heuristics chain dangles through
//    `dataset->graph().Neighbors(...)`-style expressions.
//  - The hybrid seam classes (ConstArray, StringTable, OidSet own *or*
//    borrow) are deliberately NOT marked OMEGA_VIEW_TYPE: in owned mode
//    they are owners, and a type-level Pointer marking would misfire on
//    legitimate ownership transfers. Their lifetime contract lives on the
//    annotated methods instead, which is correct on both backings — an
//    owned array's span is invalidated by destruction exactly like a
//    borrowed one's.
//
// What the compiler can check is statement-local dangles (a view taken from
// a temporary, a view of a local returned). What it cannot check — a
// borrowed view stored somewhere that outlives the Dataset epoch — is the
// linter's and the epoch-pinning design's job (see snapshot/dataset.h).
#ifndef OMEGA_COMMON_LIFETIME_ANNOTATIONS_H_
#define OMEGA_COMMON_LIFETIME_ANNOTATIONS_H_

#if defined(__clang__)

/// On a method (after cv-qualifiers): the returned view is bound to the
/// lifetime of *this. On a parameter: the function's result is bound to the
/// lifetime of (the storage behind) that argument. Violations surface as
/// -Wdangling / -Wreturn-stack-address diagnostics.
#define OMEGA_LIFETIME_BOUND [[clang::lifetimebound]]

/// Marks a class that owns storage other objects view (mapped snapshot
/// bytes, heap buffers). Enables -Wdangling-gsl on views chained off a
/// temporary or local owner.
#define OMEGA_OWNER_TYPE [[gsl::Owner]]

/// Marks a class that is always a non-owning view of someone else's
/// storage (the Pointer half of the GSL Owner/Pointer taxonomy).
#define OMEGA_VIEW_TYPE [[gsl::Pointer]]

#else

#define OMEGA_LIFETIME_BOUND
#define OMEGA_OWNER_TYPE
#define OMEGA_VIEW_TYPE

#endif

#endif  // OMEGA_COMMON_LIFETIME_ANNOTATIONS_H_
