// Small string helpers shared across modules.
#ifndef OMEGA_COMMON_STRINGS_H_
#define OMEGA_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace omega {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits `s` on `sep`, optionally trimming each piece. Empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep, bool trim = false);

/// Splits on `sep` but only at depth 0 with respect to '(' / ')' nesting.
/// Used by the query parser, where conjunct bodies contain commas inside
/// parentheses.
std::vector<std::string> SplitTopLevel(std::string_view s, char sep);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// True if `s` starts with `prefix` (ASCII case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats an integer with thousands separators: 1861959 -> "1,861,959".
std::string FormatWithCommas(long long value);

}  // namespace omega

#endif  // OMEGA_COMMON_STRINGS_H_
