// The storage-backend seam for the frozen store: an immutable array that is
// either *owned* (a std::vector built by GraphBuilder) or *borrowed* (a span
// into a read-only memory-mapped snapshot section). Readers only ever see
// std::span, so the evaluation layers run unchanged on either backing; the
// snapshot reader serves multi-GB CSR arrays zero-copy by handing out
// borrowed ConstArrays over the mapping.
//
// Lifetime: a borrowed ConstArray does not keep its storage alive — whoever
// created the borrow (in practice Dataset, which holds the MappedFile) must
// outlive it. That contract is compiler-checked: every view-returning method
// is OMEGA_LIFETIME_BOUND (common/lifetime_annotations.h), so taking a span
// from a temporary ConstArray or returning one that views a local is a
// -Wdangling / -Wreturn-stack-address diagnostic under Clang, promoted to an
// error in the static-analysis CI job. Owned ConstArrays behave like the
// vectors they wrap: moving one transfers the heap buffer, so spans
// previously taken over it stay valid (the property GraphBuilder::Finalize
// relies on when the endpoint OidSets borrow the adjacency row arrays of the
// store being assembled).
//
// Move-only, like GraphStore: an implicit copy would silently deep-copy the
// owned vector while *aliasing* the borrowed view — two behaviours with
// different lifetime obligations hiding behind one innocuous `=`. Code that
// genuinely needs an independent copy says so with Clone(), which always
// deep-copies into an owned array regardless of backing.
#ifndef OMEGA_COMMON_CONST_ARRAY_H_
#define OMEGA_COMMON_CONST_ARRAY_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/lifetime_annotations.h"

namespace omega {

template <typename T>
class ConstArray {
 public:
  ConstArray() = default;

  /// Owning backend: adopts the vector.
  ConstArray(std::vector<T> owned)  // NOLINT(google-explicit-constructor)
      : owned_(std::move(owned)) {}

  ConstArray(const ConstArray&) = delete;
  ConstArray& operator=(const ConstArray&) = delete;

  // Moving transfers the owned heap buffer (or copies the borrowed view) and
  // resets the source to an empty owned array, so a moved-from ConstArray
  // can never keep serving a borrow whose ownership story has moved on.
  ConstArray(ConstArray&& other) noexcept
      : owned_(std::move(other.owned_)),
        view_(other.view_),
        borrowed_(other.borrowed_) {
    other.owned_.clear();
    other.view_ = {};
    other.borrowed_ = false;
  }
  ConstArray& operator=(ConstArray&& other) noexcept {
    if (this == &other) return *this;
    owned_ = std::move(other.owned_);
    view_ = other.view_;
    borrowed_ = other.borrowed_;
    other.owned_.clear();
    other.view_ = {};
    other.borrowed_ = false;
    return *this;
  }

  /// Borrowed backend: a view whose storage the caller keeps alive. The
  /// lifetimebound parameter flags borrows of expiring storage (e.g. a
  /// temporary vector) at the call site.
  static ConstArray Borrowed(std::span<const T> view OMEGA_LIFETIME_BOUND) {
    ConstArray a;
    a.borrowed_ = true;
    a.view_ = view;
    return a;
  }

  /// Explicit deep copy: always an owned array with the same contents, safe
  /// to keep past the storage a borrowed original viewed.
  ConstArray Clone() const {
    return ConstArray(std::vector<T>(span().begin(), span().end()));
  }

  std::span<const T> span() const OMEGA_LIFETIME_BOUND {
    return borrowed_ ? view_ : std::span<const T>(owned_);
  }

  const T* data() const OMEGA_LIFETIME_BOUND { return span().data(); }
  size_t size() const { return borrowed_ ? view_.size() : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const OMEGA_LIFETIME_BOUND {
    // On the borrowed backing this reads straight off the mapping, where a
    // corrupt snapshot index is the only thing between us and a wild read —
    // debug builds keep the bound check live.
    assert(i < size() && "ConstArray index out of bounds");
    return span()[i];
  }
  auto begin() const OMEGA_LIFETIME_BOUND { return span().begin(); }
  auto end() const OMEGA_LIFETIME_BOUND { return span().end(); }

  bool borrowed() const { return borrowed_; }

  /// Heap bytes held by the owning backend (0 when borrowed: the pages
  /// belong to the mapping, not to this array).
  size_t OwnedBytes() const {
    return borrowed_ ? 0 : owned_.capacity() * sizeof(T);
  }

 private:
  std::vector<T> owned_;
  std::span<const T> view_;  // meaningful iff borrowed_
  bool borrowed_ = false;
};

}  // namespace omega

#endif  // OMEGA_COMMON_CONST_ARRAY_H_
