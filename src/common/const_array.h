// The storage-backend seam for the frozen store: an immutable array that is
// either *owned* (a std::vector built by GraphBuilder) or *borrowed* (a span
// into a read-only memory-mapped snapshot section). Readers only ever see
// std::span, so the evaluation layers run unchanged on either backing; the
// snapshot reader serves multi-GB CSR arrays zero-copy by handing out
// borrowed ConstArrays over the mapping.
//
// Lifetime: a borrowed ConstArray does not keep its storage alive — whoever
// created the borrow (in practice Dataset, which holds the MappedFile) must
// outlive it. Owned ConstArrays behave like the vectors they wrap: moving
// one transfers the heap buffer, so spans previously taken over it stay
// valid (the property GraphBuilder::Finalize relies on when the endpoint
// OidSets borrow the adjacency row arrays of the store being assembled).
#ifndef OMEGA_COMMON_CONST_ARRAY_H_
#define OMEGA_COMMON_CONST_ARRAY_H_

#include <cstddef>
#include <span>
#include <vector>

namespace omega {

template <typename T>
class ConstArray {
 public:
  ConstArray() = default;

  /// Owning backend: adopts the vector.
  ConstArray(std::vector<T> owned)  // NOLINT(google-explicit-constructor)
      : owned_(std::move(owned)) {}

  /// Borrowed backend: a view whose storage the caller keeps alive.
  static ConstArray Borrowed(std::span<const T> view) {
    ConstArray a;
    a.borrowed_ = true;
    a.view_ = view;
    return a;
  }

  std::span<const T> span() const {
    return borrowed_ ? view_ : std::span<const T>(owned_);
  }

  const T* data() const { return span().data(); }
  size_t size() const { return borrowed_ ? view_.size() : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const { return span()[i]; }
  auto begin() const { return span().begin(); }
  auto end() const { return span().end(); }

  bool borrowed() const { return borrowed_; }

  /// Heap bytes held by the owning backend (0 when borrowed: the pages
  /// belong to the mapping, not to this array).
  size_t OwnedBytes() const {
    return borrowed_ ? 0 : owned_.capacity() * sizeof(T);
  }

 private:
  std::vector<T> owned_;
  std::span<const T> view_;  // meaningful iff borrowed_
  bool borrowed_ = false;
};

}  // namespace omega

#endif  // OMEGA_COMMON_CONST_ARRAY_H_
