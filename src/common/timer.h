// Monotonic elapsed-time timer used by the benchmark harnesses, the
// service's latency accounting, and the observability layer's histograms
// and trace spans. Deliberately steady_clock-only: a wall-clock (NTP step,
// DST, manual adjustment) jumping mid-measurement would corrupt deadlines
// and latency histograms. check_invariants.py bans system_clock /
// high_resolution_clock at latency sites for the same reason.
#ifndef OMEGA_COMMON_TIMER_H_
#define OMEGA_COMMON_TIMER_H_

#include <chrono>

namespace omega {

/// Starts on construction; `ElapsedMs()` reads without stopping.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  // Monotonicity is the contract, not an implementation detail: every
  // duration in the repo (deadlines, queue/exec accounting, histogram
  // observations, trace spans) is measured through this clock.
  static_assert(Clock::is_steady,
                "Timer must be immune to wall-clock adjustments");
  Clock::time_point start_;
};

}  // namespace omega

#endif  // OMEGA_COMMON_TIMER_H_
