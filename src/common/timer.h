// Monotonic wall-clock timer used by the benchmark harnesses.
#ifndef OMEGA_COMMON_TIMER_H_
#define OMEGA_COMMON_TIMER_H_

#include <chrono>

namespace omega {

/// Starts on construction; `ElapsedMs()` reads without stopping.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedUs() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace omega

#endif  // OMEGA_COMMON_TIMER_H_
