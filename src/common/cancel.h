// Cooperative cancellation and deadlines for query evaluation.
//
// A CancelSource owns the shared cancellation state (an atomic flag plus an
// optional steady-clock deadline fixed at construction); CancelTokens are
// cheap copyable views handed to evaluators. Evaluators poll the token at
// stream-pull granularity: the flag is one relaxed atomic load per pull,
// the deadline clock read is strided (see kDeadlineCheckStride) so the hot
// path never pays a clock syscall per tuple.
#ifndef OMEGA_COMMON_CANCEL_H_
#define OMEGA_COMMON_CANCEL_H_

#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "common/atomics.h"
#include "common/status.h"

namespace omega {

namespace internal {

struct CancelState {
  /// Deliberately lock-free (no capability guards it): cancellation is
  /// advisory — the only contract is that a Cancel() is eventually observed
  /// by the polling evaluator, and a relaxed flag delivers exactly that.
  /// No data is published through the flag (the requester never hands the
  /// evaluator state to pick up after cancelling), so no acquire/release
  /// pairing is needed; RelaxedAtomic static_asserts the lock-freedom.
  RelaxedAtomic<bool> cancelled;
  /// Fixed before the state is shared (CancelSource construction), so
  /// readers need no synchronisation; time_point::max() means no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

}  // namespace internal

/// How many CheckStrided calls elapse between deadline clock reads. The
/// cancellation flag is still consulted on every call.
inline constexpr uint32_t kDeadlineCheckStride = 64;

/// Read-only view of a cancellation state. A default-constructed token is
/// "null": never cancelled, no deadline, zero check cost beyond one branch.
class CancelToken {
 public:
  CancelToken() = default;

  bool valid() const { return state_ != nullptr; }

  /// Flag-only fast path: one relaxed atomic load, no clock read.
  bool cancelled() const {
    return state_ != nullptr && state_->cancelled.Load();
  }

  bool has_deadline() const {
    return state_ != nullptr &&
           state_->deadline != std::chrono::steady_clock::time_point::max();
  }

  /// Full check (flag + deadline clock read). Explicit cancellation wins
  /// over an expired deadline. `where` names the operator for the error
  /// message ("conjunct evaluation", "rank join", ...).
  Status Check(const char* where) const {
    if (state_ == nullptr) return Status::OK();
    if (state_->cancelled.Load()) {
      return Status::Cancelled(std::string(where) + " was cancelled");
    }
    // Deadline-free tokens never pay the clock read (the branch is fixed at
    // construction, so it predicts perfectly).
    if (state_->deadline != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= state_->deadline) {
      return Status::DeadlineExceeded(std::string(where) +
                                      " passed the query deadline");
    }
    return Status::OK();
  }

  /// Hot-loop check: the flag on every call, the deadline clock on the
  /// first call (so an already-expired deadline fails fast) and then every
  /// kDeadlineCheckStride-th call. `tick` is a caller-owned counter.
  Status CheckStrided(uint32_t* tick, const char* where) const {
    if (state_ == nullptr) return Status::OK();
    if (!cancelled() && (++*tick % kDeadlineCheckStride) != 1) {
      return Status::OK();
    }
    return Check(where);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const internal::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const internal::CancelState> state_;
};

/// Owns a cancellation state: the serving layer constructs one per query,
/// threads its token through EvaluatorOptions, and flips it on Cancel().
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<internal::CancelState>()) {}

  static CancelSource WithDeadline(
      std::chrono::steady_clock::time_point deadline) {
    CancelSource source;
    source.state_->deadline = deadline;
    return source;
  }

  static CancelSource WithTimeout(std::chrono::nanoseconds timeout) {
    return WithDeadline(std::chrono::steady_clock::now() + timeout);
  }

  CancelToken token() const { return CancelToken(state_); }

  void Cancel() { state_->cancelled.Store(true); }

  bool cancelled() const { return state_->cancelled.Load(); }

 private:
  std::shared_ptr<internal::CancelState> state_;
};

}  // namespace omega

#endif  // OMEGA_COMMON_CANCEL_H_
