// Lightweight Status / Result error-handling types, following the RocksDB /
// Arrow convention of returning rich status objects instead of throwing.
#ifndef OMEGA_COMMON_STATUS_H_
#define OMEGA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace omega {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed query / regex / option value
  kNotFound,          ///< unknown node label, edge label or class
  kAlreadyExists,     ///< duplicate node label, duplicate ontology edge
  kOutOfRange,        ///< index or distance outside the permitted range
  kResourceExhausted, ///< evaluator exceeded its configured memory budget
  kFailedPrecondition,///< API called in the wrong state (e.g. unfinalized store)
  kInternal,          ///< invariant violation (a bug in omega itself)
  kDeadlineExceeded,  ///< per-query deadline expired during evaluation
  kCancelled,         ///< query was cooperatively cancelled by its caller
};

/// Returns a stable human-readable name for a code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a value payload.
///
/// Usage follows the RocksDB pattern:
///   Status s = store.AddEdge(...);
///   if (!s.ok()) return s;
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> couples a Status with a value produced on success.
///
///   Result<RegexAst> r = ParseRegex("a.b-");
///   if (!r.ok()) return r.status();
///   use(r.value());
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace omega

/// Propagates a non-OK status out of the enclosing function.
#define OMEGA_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::omega::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#endif  // OMEGA_COMMON_STATUS_H_
