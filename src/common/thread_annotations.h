// Clang thread-safety capability annotations (the -Wthread-safety analysis):
// each macro below attaches a locking contract to a declaration, turning the
// repo's locking discipline into something the compiler checks on every
// build instead of something TSan has to catch at runtime on one lucky
// interleaving. On compilers without the attributes (GCC, MSVC) every macro
// expands to nothing, so the annotated tree builds identically everywhere;
// the `static-analysis` CI job builds with clang++ -Werror=thread-safety so
// a violated contract is a compile error, and tests/negative/ proves the
// layer still rejects seeded violations (it must not rot into decoration).
//
// Conventions in this repo:
//  - Annotate *state* with OMEGA_GUARDED_BY / OMEGA_PT_GUARDED_BY, not just
//    functions: the analysis then flags every unlocked access, including
//    ones added later.
//  - Lock through the annotated wrappers in common/mutex.h (Mutex,
//    MutexLock, SharedMutex, CondVar) — raw std::mutex / std::lock_guard
//    are invisible to the analysis (and banned in src/service/ by
//    tools/lint/check_invariants.py).
//  - `*Locked()` helper methods take OMEGA_REQUIRES(mu); public entry
//    points that must not be called with a lock held take
//    OMEGA_EXCLUDES(mu).
//  - Genuinely lock-free state (common/atomics.h RelaxedAtomic) carries a
//    comment explaining why no capability guards it; there are no silent
//    escapes.
//
// The analysis deliberately skips constructor and destructor bodies
// (single-threaded by language rules), which is why e.g. QueryService's
// constructor may seed `epoch_` without holding `epoch_mu_`.
#ifndef OMEGA_COMMON_THREAD_ANNOTATIONS_H_
#define OMEGA_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define OMEGA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OMEGA_THREAD_ANNOTATION(x)
#endif

// NOLINTBEGIN(bugprone-macro-parentheses): the arguments are capability
// expressions spliced into attributes; parenthesising them is a syntax error
// inside __attribute__((...)).

/// Marks a class as a lockable capability ("mutex", "shared_mutex", ...).
#define OMEGA_CAPABILITY(x) OMEGA_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define OMEGA_SCOPED_CAPABILITY OMEGA_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define OMEGA_GUARDED_BY(x) OMEGA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded (the pointer itself is not).
#define OMEGA_PT_GUARDED_BY(x) OMEGA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Documented lock-ordering edges (checked under -Wthread-safety-beta).
#define OMEGA_ACQUIRED_BEFORE(...) \
  OMEGA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define OMEGA_ACQUIRED_AFTER(...) \
  OMEGA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Caller must hold the capability exclusively (shared variant: for reads).
#define OMEGA_REQUIRES(...) \
  OMEGA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define OMEGA_REQUIRES_SHARED(...) \
  OMEGA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability (held on return / on entry).
#define OMEGA_ACQUIRE(...) \
  OMEGA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define OMEGA_ACQUIRE_SHARED(...) \
  OMEGA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define OMEGA_RELEASE(...) \
  OMEGA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define OMEGA_RELEASE_SHARED(...) \
  OMEGA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Releases a capability held in either mode (scoped-lock destructors).
#define OMEGA_RELEASE_GENERIC(...) \
  OMEGA_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire and returns `success` on success.
#define OMEGA_TRY_ACQUIRE(...) \
  OMEGA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define OMEGA_TRY_ACQUIRE_SHARED(...) \
  OMEGA_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention: public entry
/// points of a class that locks internally).
#define OMEGA_EXCLUDES(...) \
  OMEGA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (fatal otherwise).
#define OMEGA_ASSERT_CAPABILITY(x) \
  OMEGA_THREAD_ANNOTATION(assert_capability(x))
#define OMEGA_ASSERT_SHARED_CAPABILITY(x) \
  OMEGA_THREAD_ANNOTATION(assert_shared_capability(x))

/// Function returns a reference to the capability guarding its result.
#define OMEGA_RETURN_CAPABILITY(x) OMEGA_THREAD_ANNOTATION(lock_returned(x))

/// Documented escape hatch: disables the analysis for one function. Every
/// use must carry a comment proving the synchronisation that the analysis
/// cannot see (e.g. publication via a queue handoff). Grep-able on purpose.
#define OMEGA_NO_THREAD_SAFETY_ANALYSIS \
  OMEGA_THREAD_ANNOTATION(no_thread_safety_analysis)

// NOLINTEND(bugprone-macro-parentheses)

#endif  // OMEGA_COMMON_THREAD_ANNOTATIONS_H_
