// Documented lock-free atomics for the few sites that intentionally live
// outside the capability system (common/thread_annotations.h): monotonic
// statistics counters and advisory flags, where every interleaving of
// relaxed loads and stores is a correct outcome and a mutex would put a
// serialisation point on a hot path.
//
// RelaxedAtomic pins the memory order to `relaxed` at the type level, which
// is the whole point: a bare std::atomic invites ad-hoc per-call orderings,
// and a reviewer can't tell a deliberate relaxed counter from a forgotten
// acquire/release pair. A RelaxedAtomic declares "no cross-thread ordering
// is implied by this variable" — anything needing publication order
// (handing an object to another thread) must go through a Mutex or a
// release-ordered primitive instead, and should say why in a comment.
#ifndef OMEGA_COMMON_ATOMICS_H_
#define OMEGA_COMMON_ATOMICS_H_

#include <atomic>
#include <type_traits>

namespace omega {

/// Lock-free scalar with all operations pinned to std::memory_order_relaxed.
/// Safe concurrent use requires that readers tolerate any stale value —
/// counters, generation numbers, cancellation flags. Not a publication
/// mechanism: nothing written before a Store() is guaranteed visible to a
/// thread that observes it.
template <typename T>
class RelaxedAtomic {
  static_assert(std::is_trivially_copyable_v<T>,
                "RelaxedAtomic requires a trivially copyable scalar");
  // The "lock-free" in the class contract is load-bearing: if std::atomic<T>
  // fell back to a hidden lock (oversized T, exotic target), the sites using
  // this type would silently reintroduce the serialisation they exist to
  // avoid — fail the build instead.
  static_assert(std::atomic<T>::is_always_lock_free,
                "RelaxedAtomic<T> must be lock-free on every supported "
                "target; use a Mutex-guarded field for wider state");

 public:
  constexpr RelaxedAtomic() = default;
  explicit constexpr RelaxedAtomic(T value) : value_(value) {}

  RelaxedAtomic(const RelaxedAtomic&) = delete;
  RelaxedAtomic& operator=(const RelaxedAtomic&) = delete;

  T Load() const { return value_.load(std::memory_order_relaxed); }
  void Store(T value) { value_.store(value, std::memory_order_relaxed); }

  /// Returns the previous value. Only instantiable for integral T.
  T FetchAdd(T delta) {
    return value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Returns the previous value.
  T Exchange(T value) {
    return value_.exchange(value, std::memory_order_relaxed);
  }

 private:
  std::atomic<T> value_{};
};

}  // namespace omega

#endif  // OMEGA_COMMON_ATOMICS_H_
