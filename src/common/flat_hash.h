// Open-addressing hash containers for the evaluation hot path. The visited
// set and answer map of GetNext (§3.4) are probed once per generated tuple,
// so the node-based std::unordered_* (one heap allocation + pointer chase
// per element) is replaced by flat storage: power-of-two capacity, linear
// probing, a Fibonacci finaliser on the user hash, and a per-slot occupancy
// flag (no reserved sentinel key, so any key value is storable). Erase is
// deliberately unsupported — the evaluator only ever inserts and probes —
// which keeps probe chains tombstone-free.
#ifndef OMEGA_COMMON_FLAT_HASH_H_
#define OMEGA_COMMON_FLAT_HASH_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace omega {

namespace internal {

/// Multiplicative finaliser: spreads whatever entropy the user hash left
/// into the high bits, then the table takes the low bits via mask. Keeps
/// identity std::hash (libstdc++ integers) safe for linear probing.
inline size_t MixHash(size_t h) {
  uint64_t x = static_cast<uint64_t>(h) * 0x9e3779b97f4a7c15ULL;
  return static_cast<size_t>(x ^ (x >> 32));
}

}  // namespace internal

/// Insert-only flat hash set. Grows at 1/2 load — linear probing degrades
/// sharply on missed lookups past that, and the evaluator workload is
/// probe-heavy (several membership misses per insert).
template <typename Key, typename Hash = std::hash<Key>>
class FlatHashSet {
 public:
  size_t size() const { return size_; }
  bool Empty() const { return size_ == 0; }

  /// Ensures capacity for `n` elements without rehashing.
  void Reserve(size_t n) {
    const size_t needed = std::bit_ceil(2 * n + 1);
    if (needed > slots_.size()) Rehash(needed);
  }

  /// True if `key` was newly inserted, false if already present.
  bool Insert(const Key& key) {
    GrowIfNeeded();
    const size_t idx = FindSlot(slots_, key);
    if (slots_[idx].occupied) return false;
    slots_[idx].key = key;
    slots_[idx].occupied = true;
    ++size_;
    return true;
  }

  bool Contains(const Key& key) const {
    if (slots_.empty()) return false;
    return slots_[FindSlot(slots_, key)].occupied;
  }

  /// Removes every element but keeps the slot array (like
  /// std::unordered_set::clear keeps its buckets), so a reused table does
  /// not re-grow from scratch.
  void Clear() {
    for (Slot& slot : slots_) slot.occupied = false;
    size_ = 0;
  }

 private:
  struct Slot {
    Key key{};
    bool occupied = false;
  };

  /// First slot holding `key`, or the empty slot where it belongs.
  static size_t FindSlot(const std::vector<Slot>& slots, const Key& key) {
    const size_t mask = slots.size() - 1;
    size_t idx = internal::MixHash(Hash{}(key)) & mask;
    while (slots[idx].occupied && !(slots[idx].key == key)) {
      idx = (idx + 1) & mask;
    }
    return idx;
  }

  void GrowIfNeeded() {
    if (slots_.empty()) {
      Rehash(16);
    } else if ((size_ + 1) * 2 > slots_.size()) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    std::vector<Slot> fresh(new_capacity);
    for (const Slot& slot : slots_) {
      if (!slot.occupied) continue;
      const size_t idx = FindSlot(fresh, slot.key);
      fresh[idx].key = slot.key;
      fresh[idx].occupied = true;
    }
    slots_ = std::move(fresh);
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

/// Insert-only flat hash map (insert-if-absent + lookup; no erase).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class FlatHashMap {
 public:
  size_t size() const { return size_; }
  bool Empty() const { return size_ == 0; }

  void Reserve(size_t n) {
    const size_t needed = std::bit_ceil(2 * n + 1);
    if (needed > slots_.size()) Rehash(needed);
  }

  /// try_emplace semantics: true if `key` was absent and (key, value) was
  /// inserted; false (leaving the stored value untouched) otherwise.
  bool Insert(const Key& key, const Value& value) {
    GrowIfNeeded();
    const size_t idx = FindSlot(slots_, key);
    if (slots_[idx].occupied) return false;
    slots_[idx].key = key;
    slots_[idx].value = value;
    slots_[idx].occupied = true;
    ++size_;
    return true;
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  /// Mutable reference to the value stored under `key`, default-constructing
  /// it on first access (unordered_map::operator[] semantics). The rank-join
  /// side tables append rows through this. Invalidated like Find.
  Value& FindOrInsert(const Key& key) {
    GrowIfNeeded();
    const size_t idx = FindSlot(slots_, key);
    if (!slots_[idx].occupied) {
      slots_[idx].key = key;
      // Clear() only flips occupancy, so a reclaimed slot may still hold a
      // pre-Clear value; reset it to keep operator[] semantics.
      slots_[idx].value = Value{};
      slots_[idx].occupied = true;
      ++size_;
    }
    return slots_[idx].value;
  }

  /// Pointer to the stored value, or nullptr when absent. Invalidated by the
  /// next Insert/FindOrInsert/Reserve.
  const Value* Find(const Key& key) const {
    if (slots_.empty()) return nullptr;
    const Slot& slot = slots_[FindSlot(slots_, key)];
    return slot.occupied ? &slot.value : nullptr;
  }

  /// Removes every element but keeps the slot array (see FlatHashSet::Clear).
  void Clear() {
    for (Slot& slot : slots_) slot.occupied = false;
    size_ = 0;
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
    bool occupied = false;
  };

  static size_t FindSlot(const std::vector<Slot>& slots, const Key& key) {
    const size_t mask = slots.size() - 1;
    size_t idx = internal::MixHash(Hash{}(key)) & mask;
    while (slots[idx].occupied && !(slots[idx].key == key)) {
      idx = (idx + 1) & mask;
    }
    return idx;
  }

  void GrowIfNeeded() {
    if (slots_.empty()) {
      Rehash(16);
    } else if ((size_ + 1) * 2 > slots_.size()) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_capacity) {
    std::vector<Slot> fresh(new_capacity);
    for (Slot& slot : slots_) {
      if (!slot.occupied) continue;
      const size_t idx = FindSlot(fresh, slot.key);
      fresh[idx] = std::move(slot);
    }
    slots_ = std::move(fresh);
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace omega

#endif  // OMEGA_COMMON_FLAT_HASH_H_
