#include "common/strings.h"

#include <cctype>

namespace omega {

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep, bool trim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      std::string_view piece = s.substr(start, i - start);
      if (trim) piece = StripWhitespace(piece);
      out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitTopLevel(std::string_view s, char sep) {
  std::vector<std::string> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || (s[i] == sep && depth == 0)) {
      out.emplace_back(StripWhitespace(s.substr(start, i - start)));
      start = i + 1;
      continue;
    }
    if (s[i] == '(') ++depth;
    if (s[i] == ')') --depth;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatWithCommas(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (negative) out += '-';
  return {out.rbegin(), out.rend()};
}

}  // namespace omega
