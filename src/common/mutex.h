// Annotated locking primitives: thin wrappers over std::mutex /
// std::shared_mutex / std::condition_variable that carry the Clang
// thread-safety capability attributes (common/thread_annotations.h). The
// standard-library types are invisible to -Wthread-safety under libstdc++,
// so concurrent code in this repo locks through these wrappers instead —
// that is what lets a `OMEGA_GUARDED_BY(mu_)` field turn an unlocked access
// into a compile error. Zero overhead: every method is an inline forward.
//
// Condition waits: CondVar::Wait(mu) atomically releases and reacquires the
// annotated Mutex. There is deliberately no predicate overload — a predicate
// lambda's body is analysed as a separate unannotated function, so guarded
// reads inside it would need an escape hatch. Write the loop explicitly:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(mu_);   // ready_ is OMEGA_GUARDED_BY(mu_)
#ifndef OMEGA_COMMON_MUTEX_H_
#define OMEGA_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace omega {

class CondVar;

/// Annotated exclusive mutex. Prefer MutexLock over manual Lock/Unlock.
class OMEGA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() OMEGA_ACQUIRE() { mu_.lock(); }
  void Unlock() OMEGA_RELEASE() { mu_.unlock(); }
  bool TryLock() OMEGA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII exclusive lock of a Mutex for a scope.
class OMEGA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OMEGA_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() OMEGA_RELEASE_GENERIC() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Annotated reader/writer mutex: many concurrent shared holders or one
/// exclusive holder. Use for read-mostly leaf state (e.g. the service's
/// epoch pointer, loaded per admission and stored only by SwapDataset).
class OMEGA_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() OMEGA_ACQUIRE() { mu_.lock(); }
  void Unlock() OMEGA_RELEASE() { mu_.unlock(); }
  void LockShared() OMEGA_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() OMEGA_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive (writer) lock of a SharedMutex.
class OMEGA_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) OMEGA_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() OMEGA_RELEASE_GENERIC() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock of a SharedMutex.
class OMEGA_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) OMEGA_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() OMEGA_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to the annotated Mutex. See the header comment
/// for why there is no predicate overload.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; `mu` is held again on return.
  /// Spurious wakeups happen: always re-check the condition in a loop.
  void Wait(Mutex& mu) OMEGA_REQUIRES(mu) {
    // Adopt the already-held std::mutex for the duration of the wait, then
    // release() so ownership stays with the caller's MutexLock scope — the
    // capability is held both on entry and on exit, exactly as annotated.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace omega

#endif  // OMEGA_COMMON_MUTEX_H_
