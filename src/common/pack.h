// Packed integer keys shared by the evaluation layers: the conjunct
// evaluator's visited/answer keys, the optimisation streams' cross-round
// dedup keys, and the rank-join layer's join/head keys all pack two NodeIds
// into one 64-bit word probed through the flat-hash tables.
#ifndef OMEGA_COMMON_PACK_H_
#define OMEGA_COMMON_PACK_H_

#include <cstdint>
#include <vector>

#include "store/types.h"

namespace omega {

/// Packs (v, n) into one 64-bit word, v in the high half.
inline uint64_t PackPair(NodeId v, NodeId n) {
  static_assert(sizeof(NodeId) <= 4,
                "PackPair packs two NodeIds into one 64-bit word; widening "
                "NodeId past 32 bits would silently truncate here");
  return (static_cast<uint64_t>(v) << 32) | n;
}

/// Finaliser-quality 64-bit mixer (splitmix64): every input bit affects every
/// output bit, so combined keys whose entropy sits in a few fields (a NodeId
/// pair plus a state id) spread over the whole word. Shared by the
/// evaluator's visited-set hash and its bench twin. Pre-packed keys going
/// straight into the flat-hash tables do NOT need it — those tables run
/// their own finaliser on every probe.
inline uint64_t HashMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hash for NodeId vectors that do not fit a packed word (e.g. query heads
/// projecting more than two variables). FNV-1a over the elements; the
/// flat-hash tables add their own finaliser on top.
struct NodeVecHash {
  size_t operator()(const std::vector<NodeId>& v) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const NodeId n : v) {
      h = (h ^ n) * 0x100000001b3ULL;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace omega

#endif  // OMEGA_COMMON_PACK_H_
