// Deterministic pseudo-random number generation for data generators and
// property tests. All omega generators take an explicit seed so datasets are
// reproducible across runs and platforms.
#ifndef OMEGA_COMMON_RNG_H_
#define OMEGA_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace omega {

/// SplitMix64-seeded xoshiro256** generator. Unlike std::mt19937 +
/// std::uniform_int_distribution, its output is identical on every platform,
/// which keeps generated datasets and test fixtures stable.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Zipfian rank in [0, n) with exponent `s`; rank 0 is the most popular.
  /// Used by the YAGO generator for skewed degree distributions.
  uint64_t NextZipf(uint64_t n, double s);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Zero/negative weights are treated as 0; requires a positive total.
  size_t NextWeighted(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
};

}  // namespace omega

#endif  // OMEGA_COMMON_RNG_H_
