// Top-level query execution: compiles each conjunct, wraps it in the
// requested optimisation mode (plain / distance-aware / alternation
// decomposition), plans the join order cost-based (greedy
// selectivity-ordered bushy trees over the shared-variable connectivity
// graph; the seed's textual left-deep order is kept behind plan_mode as the
// reference), compiles the planned rank-join tree, and projects the query
// head with duplicate elimination — answers stream out in non-decreasing
// total distance, matching the paper's incremental result batches.
#ifndef OMEGA_EVAL_QUERY_ENGINE_H_
#define OMEGA_EVAL_QUERY_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "common/pack.h"
#include "eval/distance_aware.h"
#include "eval/disjunction.h"
#include "eval/rank_join.h"
#include "index/index_manager.h"
#include "ontology/ontology.h"
#include "plan/planner.h"
#include "rpq/query.h"
#include "store/graph_store.h"

namespace omega {

/// How QueryEngine::Execute orders the rank-join tree.
enum class PlanMode {
  /// Cost-based: greedy selectivity-ordered bushy construction.
  kGreedyBushy,
  /// The seed behaviour: left-deep in textual conjunct order. Kept as the
  /// reference for tests/benches and as an escape hatch.
  kTextual,
};

struct QueryEngineOptions {
  EvaluatorOptions evaluator;

  /// §4.3 "retrieving answers by distance" (APPROX/RELAX conjuncts only).
  bool distance_aware = false;
  DistanceAwareOptions distance_aware_options;

  /// §4.3 "replacing alternation by disjunction" (top-level alternations in
  /// non-exact conjuncts only).
  bool decompose_alternation = false;

  /// Join-order planning mode.
  PlanMode plan_mode = PlanMode::kGreedyBushy;

  /// Gates both index structures (when the engine was built with an
  /// IndexManager): substituting an IndexProbeStream for index-eligible
  /// exact closure conjuncts, and the distance-sketch ψ floor in
  /// distance-aware APPROX retrieval. Off = always walk the NFA product —
  /// the reference behaviour the equivalence property tests compare against.
  bool use_reachability_index = true;

  /// Testing/EXPLAIN hook: when non-empty, overrides plan_mode with a
  /// left-deep tree in this conjunct order (a permutation of
  /// [0, conjuncts.size())). The plan-equivalence property tests replay
  /// random permutations through this.
  std::vector<size_t> forced_join_order;
};

/// One projected answer: node bound to each head variable + total distance.
struct QueryAnswer {
  std::vector<NodeId> bindings;  // parallel to Query::head
  Cost distance = 0;

  bool operator==(const QueryAnswer&) const = default;
};

/// Streaming query results (head projection, duplicate head bindings keep
/// their first = cheapest emission). Dedup runs on packed head bindings in a
/// flat-hash set: heads of one or two variables pack exactly into a 64-bit
/// key, wider heads fall back to a flat set of NodeId vectors.
class QueryResultStream {
 public:
  /// `head_slots` holds the compiled VarId of each head variable, parallel
  /// to `head`. `plan` is the annotated operator tree the bindings were
  /// compiled from (its nodes observe the stream tree owned here); may be
  /// null for streams assembled outside the engine.
  QueryResultStream(std::vector<std::string> head,
                    std::vector<VarId> head_slots,
                    std::unique_ptr<BindingStream> bindings,
                    std::unique_ptr<QueryPlan> plan = nullptr);

  bool Next(QueryAnswer* out);
  const Status& status() const { return bindings_->status(); }
  const std::vector<std::string>& head() const { return head_; }
  EvaluatorStats stats() const { return bindings_->stats(); }

  /// The chosen plan, or null.
  const QueryPlan* plan() const { return plan_.get(); }
  /// EXPLAIN ANALYZE-style rendering: the plan tree with estimates and the
  /// per-operator counters accumulated so far. Empty string without a plan.
  std::string ExplainString() const;

 private:
  std::vector<std::string> head_;
  std::vector<VarId> head_slots_;
  std::unique_ptr<BindingStream> bindings_;
  std::unique_ptr<QueryPlan> plan_;
  FlatHashSet<uint64_t> seen_packed_;                      // heads of <= 2 vars
  FlatHashSet<std::vector<NodeId>, NodeVecHash> seen_wide_;  // wider heads
};

class QueryEngine {
 public:
  /// `ontology` may be null; RELAX queries then fail FailedPrecondition.
  /// `indexes` (optional) enables reachability-index plan substitution and
  /// distance-sketch pruning; it must outlive the engine and any streams it
  /// hands out (a Dataset's IndexManager satisfies this — the service pins
  /// the Dataset per epoch).
  QueryEngine(const GraphStore* graph, const Ontology* ontology,
              const IndexManager* indexes = nullptr);

  /// Compiles and opens a result stream for `query`.
  Result<std::unique_ptr<QueryResultStream>> Execute(
      const Query& query, const QueryEngineOptions& options = {}) const;

  /// Convenience: materialises up to `limit` answers (0 = all). Returns the
  /// stream's error (e.g. kResourceExhausted) if it failed mid-way.
  Result<std::vector<QueryAnswer>> ExecuteTopK(
      const Query& query, size_t limit,
      const QueryEngineOptions& options = {}) const;

  /// EXPLAIN: plans `query` without evaluating it and renders the chosen
  /// tree with per-conjunct cardinality/selectivity estimates. (Per-operator
  /// runtime counters appear in QueryResultStream::ExplainString after
  /// execution.)
  Result<std::string> ExplainQuery(const Query& query,
                                   const QueryEngineOptions& options = {}) const;

  const GraphStore& graph() const { return *graph_; }
  const BoundOntology* bound_ontology() const {
    return bound_ ? &*bound_ : nullptr;
  }

 private:
  /// Compiles the per-query variable catalogue, prepares every conjunct,
  /// estimates it, and builds the operator tree for the requested plan mode.
  Result<std::unique_ptr<QueryPlan>> PlanFor(
      const Query& query, const QueryEngineOptions& options,
      std::vector<std::unique_ptr<PreparedConjunct>>* prepared) const;

  /// Builds the (optimisation-wrapped) binding stream for one conjunct from
  /// its already-prepared automaton; `catalog` is the per-query variable
  /// catalogue (every variable of `conjunct` is already interned). The
  /// decompose-alternation path recompiles per branch and ignores
  /// `prepared`.
  Result<std::unique_ptr<BindingStream>> MakeConjunctStream(
      const Conjunct& conjunct, std::unique_ptr<PreparedConjunct> prepared,
      const QueryEngineOptions& options, const VarCatalog& catalog) const;

  const GraphStore* graph_;
  std::optional<BoundOntology> bound_;
  const IndexManager* indexes_ = nullptr;
};

}  // namespace omega

#endif  // OMEGA_EVAL_QUERY_ENGINE_H_
