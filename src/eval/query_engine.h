// Top-level query execution: compiles each conjunct, wraps it in the
// requested optimisation mode (plain / distance-aware / alternation
// decomposition), composes the ranked join tree, and projects the query
// head with duplicate elimination — answers stream out in non-decreasing
// total distance, matching the paper's incremental result batches.
#ifndef OMEGA_EVAL_QUERY_ENGINE_H_
#define OMEGA_EVAL_QUERY_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/flat_hash.h"
#include "common/pack.h"
#include "eval/distance_aware.h"
#include "eval/disjunction.h"
#include "eval/rank_join.h"
#include "ontology/ontology.h"
#include "rpq/query.h"
#include "store/graph_store.h"

namespace omega {

struct QueryEngineOptions {
  EvaluatorOptions evaluator;

  /// §4.3 "retrieving answers by distance" (APPROX/RELAX conjuncts only).
  bool distance_aware = false;
  DistanceAwareOptions distance_aware_options;

  /// §4.3 "replacing alternation by disjunction" (top-level alternations in
  /// non-exact conjuncts only).
  bool decompose_alternation = false;
};

/// One projected answer: node bound to each head variable + total distance.
struct QueryAnswer {
  std::vector<NodeId> bindings;  // parallel to Query::head
  Cost distance = 0;

  bool operator==(const QueryAnswer&) const = default;
};

/// Streaming query results (head projection, duplicate head bindings keep
/// their first = cheapest emission). Dedup runs on packed head bindings in a
/// flat-hash set: heads of one or two variables pack exactly into a 64-bit
/// key, wider heads fall back to a flat set of NodeId vectors.
class QueryResultStream {
 public:
  /// `head_slots` holds the compiled VarId of each head variable, parallel
  /// to `head`.
  QueryResultStream(std::vector<std::string> head,
                    std::vector<VarId> head_slots,
                    std::unique_ptr<BindingStream> bindings);

  bool Next(QueryAnswer* out);
  const Status& status() const { return bindings_->status(); }
  const std::vector<std::string>& head() const { return head_; }
  EvaluatorStats stats() const { return bindings_->stats(); }

 private:
  std::vector<std::string> head_;
  std::vector<VarId> head_slots_;
  std::unique_ptr<BindingStream> bindings_;
  FlatHashSet<uint64_t> seen_packed_;                      // heads of <= 2 vars
  FlatHashSet<std::vector<NodeId>, NodeVecHash> seen_wide_;  // wider heads
};

class QueryEngine {
 public:
  /// `ontology` may be null; RELAX queries then fail FailedPrecondition.
  QueryEngine(const GraphStore* graph, const Ontology* ontology);

  /// Compiles and opens a result stream for `query`.
  Result<std::unique_ptr<QueryResultStream>> Execute(
      const Query& query, const QueryEngineOptions& options = {}) const;

  /// Convenience: materialises up to `limit` answers (0 = all). Returns the
  /// stream's error (e.g. kResourceExhausted) if it failed mid-way.
  Result<std::vector<QueryAnswer>> ExecuteTopK(
      const Query& query, size_t limit,
      const QueryEngineOptions& options = {}) const;

  const GraphStore& graph() const { return *graph_; }
  const BoundOntology* bound_ontology() const {
    return bound_ ? &*bound_ : nullptr;
  }

 private:
  /// Builds the (optimisation-wrapped) answer stream for one conjunct;
  /// `catalog` is the per-query variable catalogue Execute compiled (every
  /// variable of `conjunct` is already interned).
  Result<std::unique_ptr<BindingStream>> MakeConjunctStream(
      const Conjunct& conjunct, const QueryEngineOptions& options,
      const VarCatalog& catalog) const;

  const GraphStore* graph_;
  std::optional<BoundOntology> bound_;
};

}  // namespace omega

#endif  // OMEGA_EVAL_QUERY_ENGINE_H_
