#include "eval/distance_aware.h"

#include <algorithm>

namespace omega {

DistanceAwareStream::DistanceAwareStream(const GraphStore* graph,
                                         const BoundOntology* ontology,
                                         const PreparedConjunct* prepared,
                                         const EvaluatorOptions& options,
                                         const DistanceAwareOptions& da_options,
                                         const DistanceSketch* sketch)
    : graph_(graph),
      ontology_(ontology),
      prepared_(prepared),
      base_options_(options),
      da_options_(da_options) {
  phi_ = prepared_->nfa.MinPositiveCost();
  if (sketch != nullptr) ApplySketchFloor(*sketch);
}

void DistanceAwareStream::ApplySketchFloor(const DistanceSketch& sketch) {
  // The floor is only sound for APPROX with both endpoints constant: every
  // product-automaton move that advances in the graph traverses a real edge
  // (in either direction), so an accepted run from u to v consumes an
  // undirected walk of >= LowerBound(u, v) edges, and all but
  // max_exact_path_edges of those must be insertions.
  if (prepared_->mode != ConjunctMode::kApprox) return;
  if (prepared_->eval_source.is_variable || prepared_->eval_target.is_variable)
    return;
  if (!prepared_->max_exact_path_edges.has_value()) return;
  const std::optional<NodeId> u = graph_->FindNode(prepared_->eval_source.name);
  const std::optional<NodeId> v = graph_->FindNode(prepared_->eval_target.name);
  if (!u.has_value() || !v.has_value()) return;
  const uint32_t lb_hops = sketch.LowerBound(*u, *v);
  if (lb_hops == DistanceSketch::kUnreachable) {
    // Different undirected components: no walk connects them at any cost.
    done_ = true;
    return;
  }
  const uint32_t lmax = *prepared_->max_exact_path_edges;
  if (lb_hops <= lmax) return;
  const Cost insertion = base_options_.approx.insertion_cost;
  if (insertion <= 0 || phi_ <= 0 || phi_ >= kInfiniteCost) return;
  const int64_t floor_cost =
      static_cast<int64_t>(lb_hops - lmax) * static_cast<int64_t>(insertion);
  // First ψ on the φ grid at or above the floor; the skipped rounds are
  // provably empty.
  const int64_t steps = (floor_cost + phi_ - 1) / phi_;
  const int64_t raised = std::min<int64_t>(
      steps * static_cast<int64_t>(phi_), static_cast<int64_t>(kInfiniteCost));
  psi_ = static_cast<Cost>(
      std::min<int64_t>(raised, static_cast<int64_t>(base_options_.max_distance)));
  initial_psi_ = psi_;
}

void DistanceAwareStream::StartRound() {
  EvaluatorOptions round_options = base_options_;
  round_options.max_distance = std::min(psi_, base_options_.max_distance);
  inner_ = std::make_unique<ConjunctEvaluator>(graph_, ontology_, prepared_,
                                               round_options);
  round_found_answer_ = false;
  ++rounds_;
}

bool DistanceAwareStream::Next(Answer* out) {
  if (done_ || !status_.ok()) return false;
  if (inner_ == nullptr) StartRound();
  for (;;) {
    Answer answer;
    while (inner_->Next(&answer)) {
      // Earlier rounds were complete up to their ceiling, so anything they
      // emitted reappears here and is skipped. Like the evaluator's own
      // duplicate check, the key normalises v for constant sources.
      const NodeId v_key =
          prepared_->eval_source.is_variable ? answer.v : kInvalidNode;
      if (!emitted_.Insert(PackPair(v_key, answer.n))) continue;
      round_found_answer_ = true;
      fruitless_rounds_ = 0;
      *out = answer;
      return true;
    }
    if (!inner_->status().ok()) {
      status_ = inner_->status();
      return false;
    }
    // Round complete. Decide whether a higher ceiling could produce more.
    finished_stats_.MergeFrom(inner_->stats());
    finished_stats_.rounds = rounds_;
    const bool truncated = inner_->truncated_by_distance();
    if (!truncated || phi_ >= kInfiniteCost ||
        psi_ >= base_options_.max_distance) {
      done_ = true;
      return false;
    }
    if (!round_found_answer_) {
      if (++fruitless_rounds_ >= da_options_.max_fruitless_rounds) {
        done_ = true;
        return false;
      }
    }
    psi_ += phi_;
    StartRound();
  }
}

EvaluatorStats DistanceAwareStream::stats() const {
  EvaluatorStats total = finished_stats_;
  if (inner_ != nullptr && !done_) {
    total.MergeFrom(inner_->stats());
    total.rounds = rounds_;
  }
  return total;
}

}  // namespace omega
