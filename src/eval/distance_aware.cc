#include "eval/distance_aware.h"

namespace omega {

DistanceAwareStream::DistanceAwareStream(const GraphStore* graph,
                                         const BoundOntology* ontology,
                                         const PreparedConjunct* prepared,
                                         const EvaluatorOptions& options,
                                         const DistanceAwareOptions& da_options)
    : graph_(graph),
      ontology_(ontology),
      prepared_(prepared),
      base_options_(options),
      da_options_(da_options) {
  phi_ = prepared_->nfa.MinPositiveCost();
}

void DistanceAwareStream::StartRound() {
  EvaluatorOptions round_options = base_options_;
  round_options.max_distance = std::min(psi_, base_options_.max_distance);
  inner_ = std::make_unique<ConjunctEvaluator>(graph_, ontology_, prepared_,
                                               round_options);
  round_found_answer_ = false;
  ++rounds_;
}

bool DistanceAwareStream::Next(Answer* out) {
  if (done_ || !status_.ok()) return false;
  if (inner_ == nullptr) StartRound();
  for (;;) {
    Answer answer;
    while (inner_->Next(&answer)) {
      // Earlier rounds were complete up to their ceiling, so anything they
      // emitted reappears here and is skipped. Like the evaluator's own
      // duplicate check, the key normalises v for constant sources.
      const NodeId v_key =
          prepared_->eval_source.is_variable ? answer.v : kInvalidNode;
      if (!emitted_.Insert(PackPair(v_key, answer.n))) continue;
      round_found_answer_ = true;
      fruitless_rounds_ = 0;
      *out = answer;
      return true;
    }
    if (!inner_->status().ok()) {
      status_ = inner_->status();
      return false;
    }
    // Round complete. Decide whether a higher ceiling could produce more.
    finished_stats_.MergeFrom(inner_->stats());
    finished_stats_.rounds = rounds_;
    const bool truncated = inner_->truncated_by_distance();
    if (!truncated || phi_ >= kInfiniteCost ||
        psi_ >= base_options_.max_distance) {
      done_ = true;
      return false;
    }
    if (!round_found_answer_) {
      if (++fruitless_rounds_ >= da_options_.max_fruitless_rounds) {
        done_ = true;
        return false;
      }
    }
    psi_ += phi_;
    StartRound();
  }
}

EvaluatorStats DistanceAwareStream::stats() const {
  EvaluatorStats total = finished_stats_;
  if (inner_ != nullptr && !done_) {
    total.MergeFrom(inner_->stats());
    total.rounds = rounds_;
  }
  return total;
}

}  // namespace omega
