// The seed rank-join data plane, kept in-tree as an executable specification
// and perf baseline (like ReferenceTupleDictionary): bindings are sorted
// (name, NodeId) pair vectors with linear Lookup, join keys are
// std::to_string-concatenated strings into std::unordered_map, and heap pops
// copy. bench_micro_substrate races RankJoinStream against this pair-for-pair
// and tools/check_substrate_gate.py fails the build if the compiled-slot
// join stops winning; the property tests also replay both implementations on
// identical inputs.
#ifndef OMEGA_EVAL_RANK_JOIN_REFERENCE_H_
#define OMEGA_EVAL_RANK_JOIN_REFERENCE_H_

#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "automata/nfa.h"  // Cost / kInfiniteCost
#include "common/status.h"
#include "store/types.h"

namespace omega {

/// Seed Binding: variables kept sorted by name so equal assignments have
/// equal representations.
struct ReferenceBinding {
  std::vector<std::pair<std::string, NodeId>> vars;  // sorted by name
  Cost distance = 0;

  /// Value bound to `name`, or kInvalidNode (linear scan, as in the seed).
  NodeId Lookup(const std::string& name) const;
  /// Inserts or checks consistency; returns false on conflicting value.
  bool Bind(const std::string& name, NodeId value);
};

/// Seed pull stream of bindings in non-decreasing distance.
class ReferenceBindingStream {
 public:
  virtual ~ReferenceBindingStream() = default;
  virtual bool Next(ReferenceBinding* out) = 0;
  virtual const Status& status() const = 0;
  virtual const std::vector<std::string>& variables() const = 0;
};

/// Materialised stream for benches and tests: replays a fixed row vector.
class VectorReferenceBindingStream : public ReferenceBindingStream {
 public:
  VectorReferenceBindingStream(std::vector<std::string> vars,
                               std::vector<ReferenceBinding> rows)
      : vars_(std::move(vars)), owned_(std::move(rows)), rows_(&owned_) {}

  /// Borrowing: `rows` must outlive the stream. The paired benches replay a
  /// cached script this way so row materialisation stays outside the timed
  /// region on both sides.
  VectorReferenceBindingStream(std::vector<std::string> vars,
                               const std::vector<ReferenceBinding>* rows)
      : vars_(std::move(vars)), rows_(rows) {}

  bool Next(ReferenceBinding* out) override {
    if (pos_ >= rows_->size()) return false;
    *out = (*rows_)[pos_++];
    return true;
  }
  const Status& status() const override { return status_; }
  const std::vector<std::string>& variables() const override { return vars_; }

 private:
  std::vector<std::string> vars_;
  std::vector<ReferenceBinding> owned_;
  const std::vector<ReferenceBinding>* rows_;
  size_t pos_ = 0;
  Status status_;
};

/// The seed binary hash rank join, byte-faithful: string keys, node-based
/// hash tables, copy-on-pop, rows stored unconditionally on both sides, and
/// no memory budget.
class ReferenceRankJoinStream : public ReferenceBindingStream {
 public:
  ReferenceRankJoinStream(std::unique_ptr<ReferenceBindingStream> left,
                          std::unique_ptr<ReferenceBindingStream> right);

  bool Next(ReferenceBinding* out) override;
  const Status& status() const override { return status_; }
  const std::vector<std::string>& variables() const override {
    return variables_;
  }

 private:
  struct Side {
    std::unique_ptr<ReferenceBindingStream> stream;
    std::unordered_map<std::string, std::vector<ReferenceBinding>> table;
    Cost bottom = 0;
    Cost top = 0;
    bool seen_any = false;
    bool exhausted = false;
  };

  struct Candidate {
    ReferenceBinding binding;
    bool operator>(const Candidate& other) const {
      return binding.distance > other.binding.distance;
    }
  };

  std::string KeyFor(const ReferenceBinding& b) const;
  void Advance(Side* side, Side* other, bool side_is_left);
  Cost Threshold() const;

  Side left_;
  Side right_;
  std::vector<std::string> shared_vars_;
  std::vector<std::string> variables_;
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>>
      heap_;
  bool pull_left_next_ = true;
  Status status_;
};

}  // namespace omega

#endif  // OMEGA_EVAL_RANK_JOIN_REFERENCE_H_
