// Distance-aware retrieval (§4.3): evaluate with a cost ceiling ψ starting
// at 0 and growing by φ (the smallest edit/relaxation operation cost) only
// when more answers are requested. Each round restarts evaluation from the
// beginning — tuples costlier than ψ are never materialised, which is what
// turns YAGO Q2/APPROX from 2560ms into well under a millisecond in the
// paper. Unsuitable when answers at high cost are required (the paper says
// the same), so a fruitless-round guard bounds the search.
#ifndef OMEGA_EVAL_DISTANCE_AWARE_H_
#define OMEGA_EVAL_DISTANCE_AWARE_H_

#include <memory>

#include "common/flat_hash.h"
#include "common/pack.h"
#include "eval/conjunct_evaluator.h"
#include "index/distance_sketch.h"

namespace omega {

struct DistanceAwareOptions {
  /// Stop after this many consecutive rounds that raised ψ without finding
  /// any new answer (guards against unbounded ψ growth on APPROX automata,
  /// whose insertion loops always admit a higher distance).
  size_t max_fruitless_rounds = 16;
};

class DistanceAwareStream : public AnswerStream {
 public:
  /// `sketch` (optional) prunes the low-ψ rounds: for an APPROX conjunct
  /// with two constant endpoints, the hub sketch's hop lower bound implies a
  /// cost floor — any accepted walk from u to v spends at least
  /// (lb_hops - max_exact_path_edges) insertions — so ψ starts on the first
  /// φ-multiple at or above that floor instead of at 0. An infinite lower
  /// bound (different components) proves the conjunct empty outright.
  DistanceAwareStream(const GraphStore* graph, const BoundOntology* ontology,
                      const PreparedConjunct* prepared,
                      const EvaluatorOptions& options,
                      const DistanceAwareOptions& da_options = {},
                      const DistanceSketch* sketch = nullptr);

  bool Next(Answer* out) override;
  const Status& status() const override { return status_; }
  EvaluatorStats stats() const override;

  /// Number of ψ rounds run so far (>= 1 after the first Next()).
  size_t rounds() const { return rounds_; }

  /// The ψ the first round will (or did) run with — 0 unless a distance
  /// sketch raised the floor.
  Cost initial_psi() const { return initial_psi_; }

 private:
  /// Starts the round with ceiling psi_.
  void StartRound();

  /// Raises psi_ (or sets done_) from the sketch's hop lower bound.
  void ApplySketchFloor(const DistanceSketch& sketch);

  const GraphStore* graph_;
  const BoundOntology* ontology_;
  const PreparedConjunct* prepared_;
  EvaluatorOptions base_options_;
  DistanceAwareOptions da_options_;

  std::unique_ptr<ConjunctEvaluator> inner_;
  FlatHashSet<uint64_t> emitted_;  // PackPair(v, n) of every handed-out answer
  Cost psi_ = 0;
  Cost initial_psi_ = 0;
  Cost phi_ = kInfiniteCost;
  size_t rounds_ = 0;
  size_t fruitless_rounds_ = 0;
  bool round_found_answer_ = false;
  bool done_ = false;
  Status status_;
  EvaluatorStats finished_stats_;  // accumulated over completed rounds
};

}  // namespace omega

#endif  // OMEGA_EVAL_DISTANCE_AWARE_H_
