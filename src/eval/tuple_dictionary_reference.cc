#include "eval/tuple_dictionary_reference.h"

#include <cassert>

namespace omega {

void ReferenceTupleDictionary::Add(const EvalTuple& tuple) {
  Bucket& bucket = buckets_[tuple.d];
  if (prioritize_final_ && tuple.is_final) {
    bucket.final_items.push_back(tuple);
  } else {
    bucket.nonfinal_items.push_back(tuple);
  }
  ++size_;
}

EvalTuple ReferenceTupleDictionary::Remove() {
  assert(!Empty());
  auto it = buckets_.begin();
  Bucket& bucket = it->second;
  EvalTuple out;
  if (!bucket.final_items.empty()) {
    out = bucket.final_items.back();
    bucket.final_items.pop_back();
  } else {
    out = bucket.nonfinal_items.back();
    bucket.nonfinal_items.pop_back();
  }
  if (bucket.final_items.empty() && bucket.nonfinal_items.empty()) {
    buckets_.erase(it);
  }
  --size_;
  return out;
}

void ReferenceTupleDictionary::Clear() {
  buckets_.clear();
  size_ = 0;
}

}  // namespace omega
