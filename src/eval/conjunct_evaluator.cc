#include "eval/conjunct_evaluator.h"

#include <algorithm>
#include <cassert>

#include "automata/epsilon_removal.h"
#include "automata/thompson.h"

namespace omega {

Result<PreparedConjunct> PrepareConjunct(const Conjunct& conjunct,
                                         const GraphStore& graph,
                                         const BoundOntology* ontology,
                                         const EvaluatorOptions& options) {
  if (conjunct.regex == nullptr) {
    return Status::InvalidArgument("conjunct has no regular expression");
  }
  if (conjunct.mode == ConjunctMode::kRelax && ontology == nullptr) {
    return Status::FailedPrecondition("RELAX requires an ontology");
  }

  PreparedConjunct prepared;
  prepared.mode = conjunct.mode;

  // Case 2 (§3.3): (?X, R, C) is evaluated as (C, R-, ?X).
  const bool reverse =
      conjunct.source.is_variable && !conjunct.target.is_variable;
  RegexPtr reversed_regex;
  const RegexNode* regex = conjunct.regex.get();
  if (reverse) {
    reversed_regex = ReverseRegex(*conjunct.regex);
    regex = reversed_regex.get();
    prepared.eval_source = conjunct.target;
    prepared.eval_target = conjunct.source;
    prepared.reversed = true;
  } else {
    prepared.eval_source = conjunct.source;
    prepared.eval_target = conjunct.target;
  }

  // Shape analysis on the evaluated (post-reversal) regex: the closure
  // shape drives the planner's index-probe substitution, the max path
  // length the distance sketch's cost floor.
  prepared.closure_shape = RecognizeClosureShape(*regex);
  prepared.max_exact_path_edges = MaxEdgeCount(*regex);

  Nfa exact =
      RemoveEpsilons(BuildThompsonNfa(*regex, graph.labels(), ontology));
  switch (conjunct.mode) {
    case ConjunctMode::kExact:
      prepared.nfa = std::move(exact);
      break;
    case ConjunctMode::kApprox:
      prepared.nfa = BuildApproxAutomaton(exact, options.approx);
      break;
    case ConjunctMode::kRelax:
      prepared.nfa = BuildRelaxAutomaton(exact, *ontology, options.relax);
      break;
  }
  if (!prepared.eval_source.is_variable) {
    prepared.nfa.SetSourceConstant(prepared.eval_source.name);
  }
  if (!prepared.eval_target.is_variable) {
    prepared.nfa.SetTargetConstant(prepared.eval_target.name);
  }
  prepared.nfa.SortTransitions();
  return prepared;
}

ConjunctEvaluator::ConjunctEvaluator(const GraphStore* graph,
                                     const BoundOntology* ontology,
                                     const PreparedConjunct* prepared,
                                     const EvaluatorOptions& options)
    : graph_(graph),
      ontology_(ontology),
      prepared_(prepared),
      options_(options),
      dict_(options.prioritize_final_tuples) {
  assert(prepared_->mode != ConjunctMode::kRelax || ontology_ != nullptr);
}

void ConjunctEvaluator::Open() {
  if (opened_) return;
  opened_ = true;
  const Nfa& nfa = prepared_->nfa;
  const StateId s0 = nfa.initial();

  target_is_constant_ = !prepared_->eval_target.is_variable;
  if (target_is_constant_) {
    target_node_ = graph_->FindNode(prepared_->eval_target.name);
    if (!target_node_) return;  // constant absent: conjunct has no answers
  }

  if (!prepared_->eval_source.is_variable) {
    // Case 1: begin the traversal at the constant's node.
    source_node_ = graph_->FindNode(prepared_->eval_source.name);
    if (!source_node_) return;
    const NodeId c = *source_node_;
    if (prepared_->mode == ConjunctMode::kRelax && ontology_ != nullptr &&
        ontology_->IsClassNode(c)) {
      // sc rule: also seed every ancestor class, at distance steps * β.
      // Ancestors are added most-general-first so that, on cost ties, the
      // LIFO bucket pops the most specific class first (the GetAncestors
      // ordering rationale of §3.3).
      auto ancestors = ontology_->NodeAncestors(c);
      for (auto it = ancestors.rbegin(); it != ancestors.rend(); ++it) {
        const Cost d = static_cast<Cost>(it->second) * options_.relax.beta;
        AddTuple({it->first, it->first, s0, d, false});
        ++stats_.seeds_added;
      }
    }
    AddTuple({c, c, s0, 0, false});
    ++stats_.seeds_added;
    return;
  }

  // Case 3: (?X, R, ?Y) — batched seeding. When s0 is final, every node of G
  // is a candidate answer at weight(s0), so the stream must eventually yield
  // all nodes (GetAllNodesByLabel); otherwise only nodes with a usable first
  // edge are seeded (GetAllStartNodesByLabel). The visited set and answer
  // map will see on the order of one entry per seed node, so size them from
  // the graph up front instead of rehashing on the way there — capped, so a
  // huge graph queried for a handful of answers doesn't pay gigabytes of
  // upfront table for entries it will never insert.
  constexpr size_t kMaxUpfrontReserve = size_t{1} << 20;
  const size_t reserve_n =
      std::min(static_cast<size_t>(graph_->NumNodes()), kMaxUpfrontReserve);
  if (options_.use_visited_set) visited_.Reserve(reserve_n);
  answers_.Reserve(reserve_n);
  const bool include_remaining = nfa.IsFinal(s0);
  stream_ = std::make_unique<InitialNodeStream>(
      graph_, ontology_, &nfa, include_remaining, options_.batch_size);
  RefillSeeds();
}

void ConjunctEvaluator::AddTuple(const EvalTuple& tuple) {
  if (tuple.d > options_.max_distance) {
    truncated_by_distance_ = true;
    return;
  }
  dict_.Add(tuple);
  ++stats_.tuples_pushed;
  if (dict_.size() > stats_.max_dictionary_size) {
    stats_.max_dictionary_size = dict_.size();
  }
}

void ConjunctEvaluator::CheckBudget() {
  if (options_.max_live_tuples == 0) return;
  const size_t live = dict_.size() + visited_.size() + answers_.size();
  if (live > options_.max_live_tuples) {
    status_ = Status::ResourceExhausted(
        "conjunct evaluation exceeded max_live_tuples=" +
        std::to_string(options_.max_live_tuples));
  }
}

void ConjunctEvaluator::RefillSeeds() {
  if (stream_ == nullptr) return;
  // Pull batches while the dictionary has no distance-0 tuples left, so no
  // d > 0 tuple is ever popped ahead of an unseeded distance-0 start node.
  while (!stream_->Exhausted() &&
         (dict_.Empty() || dict_.MinDistance() > 0)) {
    std::span<const NodeId> batch = stream_->NextBatch();
    if (batch.empty()) break;
    // The stream yields most-promising-first; adding in reverse makes the
    // LIFO bucket pop them in stream order ("we iterate through the set of
    // nodes in order of decreasing cost").
    for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
      AddTuple({*it, *it, prepared_->nfa.initial(), 0, false});
      ++stats_.seeds_added;
    }
  }
}

bool ConjunctEvaluator::TargetMatches(NodeId n) const {
  return !target_is_constant_ || (target_node_ && *target_node_ == n);
}

void ConjunctEvaluator::CollectNeighbors(NodeId n, const NfaTransition& t,
                                         std::vector<NodeId>* out) const {
  auto append = [out](std::span<const NodeId> ids) {
    out->insert(out->end(), ids.begin(), ids.end());
  };
  const bool entail =
      prepared_->nfa.entailment_matching() && ontology_ != nullptr;
  switch (t.kind) {
    case TransitionKind::kEpsilon:
      assert(false && "evaluator requires an ε-free automaton");
      break;
    case TransitionKind::kLabel: {
      if (t.label == kInvalidLabel) break;
      if (entail && t.label != LabelDictionary::kTypeLabel) {
        // RDFS entailment: an edge labelled with any subproperty of t.label
        // satisfies the transition (this is what makes a relaxed
        // relationLocatedByObject transition match happenedIn edges).
        for (LabelId down : ontology_->LabelDownSet(t.label)) {
          append(graph_->Neighbors(n, down, t.dir));
        }
      } else if (entail && t.label == LabelDictionary::kTypeLabel) {
        if (t.dir == Direction::kOutgoing) {
          // (n, type, c) holds for each stored class and its ancestors.
          for (NodeId c : graph_->TypeNeighbors(n, Direction::kOutgoing)) {
            out->push_back(c);
            for (const auto& [ancestor, steps] : ontology_->NodeAncestors(c)) {
              out->push_back(ancestor);
            }
          }
        } else {
          // Reverse type edge from class n: instances of n or of any
          // descendant class.
          const OidSet& down = ontology_->NodeDownSet(n);
          if (down.empty()) {
            append(graph_->TypeNeighbors(n, Direction::kIncoming));
          } else {
            for (NodeId c : down) {
              append(graph_->TypeNeighbors(c, Direction::kIncoming));
            }
          }
        }
      } else {
        append(graph_->Neighbors(n, t.label, t.dir));
      }
      break;
    }
    case TransitionKind::kAnyLabel:
      append(graph_->SigmaNeighbors(n, t.dir));
      append(graph_->TypeNeighbors(n, t.dir));
      break;
    case TransitionKind::kAnyLabelBothDirs:
      append(graph_->SigmaNeighbors(n, Direction::kOutgoing));
      append(graph_->SigmaNeighbors(n, Direction::kIncoming));
      append(graph_->TypeNeighbors(n, Direction::kOutgoing));
      append(graph_->TypeNeighbors(n, Direction::kIncoming));
      break;
    case TransitionKind::kConstrainedType: {
      // Forward type edge whose target class is (a descendant of) the
      // dom/range class recorded on the transition.
      if (ontology_ == nullptr) break;
      const OidSet& allowed = ontology_->NodeDownSet(t.class_node);
      for (NodeId c : graph_->TypeNeighbors(n, Direction::kOutgoing)) {
        if (allowed.Contains(c)) out->push_back(c);
      }
      break;
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void ConjunctEvaluator::ExpandTuple(const EvalTuple& tuple) {
  const Nfa& nfa = prepared_->nfa;
  ++stats_.succ_expansions;

  std::span<const NfaTransition> transitions = nfa.Out(tuple.s);
  size_t i = 0;
  while (i < transitions.size()) {
    // One neighbour fetch per SameNeighborGroup run (§3.4's U-set reuse).
    scratch_neighbors_.clear();
    CollectNeighbors(tuple.n, transitions[i], &scratch_neighbors_);
    ++stats_.neighbor_group_fetches;
    size_t j = i;
    for (; j < transitions.size() &&
           transitions[j].SameNeighborGroup(transitions[i]);
         ++j) {
      const NfaTransition& t = transitions[j];
      for (NodeId m : scratch_neighbors_) {
        if (options_.use_visited_set &&
            visited_.Contains({PackPair(tuple.v, m), t.to})) {
          continue;
        }
        AddTuple({tuple.v, m, t.to, tuple.d + t.cost, false});
      }
    }
    i = j;
  }

  // Lines 12–13 of GetNext: re-enqueue as a final tuple, adding weight(s).
  if (nfa.IsFinal(tuple.s) && TargetMatches(tuple.n) &&
      !answers_.Contains(AnswerKey(tuple.v, tuple.n))) {
    AddTuple({tuple.v, tuple.n, tuple.s,
              tuple.d + nfa.FinalWeight(tuple.s), true});
  }
}

bool ConjunctEvaluator::Next(Answer* out) {
  if (!status_.ok()) return false;
  Open();
  for (;;) {
    // Cooperative cancellation at pop granularity: a null token costs one
    // branch, a live one a relaxed flag load per pop plus a strided
    // deadline clock read (see common/cancel.h).
    if (options_.cancel.valid()) {
      Status s = options_.cancel.CheckStrided(&cancel_tick_,
                                              "conjunct evaluation");
      if (!s.ok()) {
        status_ = std::move(s);
        return false;
      }
    }
    RefillSeeds();
    if (dict_.Empty()) return false;  // exhausted
    const EvalTuple tuple = dict_.Remove();
    ++stats_.tuples_popped;

    if (tuple.is_final) {
      if (!answers_.Insert(AnswerKey(tuple.v, tuple.n), tuple.d)) {
        continue;  // answer already generated at some d'
      }
      ++stats_.answers_emitted;
      *out = Answer{tuple.v, tuple.n, tuple.d};
      return true;
    }

    if (options_.use_visited_set &&
        !visited_.Insert({PackPair(tuple.v, tuple.n), tuple.s})) {
      continue;  // processed before at a lower-or-equal d
    }
    ExpandTuple(tuple);
    CheckBudget();
    if (!status_.ok()) return false;
  }
}

}  // namespace omega
