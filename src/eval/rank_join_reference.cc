#include "eval/rank_join_reference.h"

#include <algorithm>

namespace omega {

NodeId ReferenceBinding::Lookup(const std::string& name) const {
  for (const auto& [var, value] : vars) {
    if (var == name) return value;
  }
  return kInvalidNode;
}

bool ReferenceBinding::Bind(const std::string& name, NodeId value) {
  auto it = std::lower_bound(
      vars.begin(), vars.end(), name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  if (it != vars.end() && it->first == name) return it->second == value;
  vars.insert(it, {name, value});
  return true;
}

ReferenceRankJoinStream::ReferenceRankJoinStream(
    std::unique_ptr<ReferenceBindingStream> left,
    std::unique_ptr<ReferenceBindingStream> right) {
  left_.stream = std::move(left);
  right_.stream = std::move(right);
  std::set_intersection(left_.stream->variables().begin(),
                        left_.stream->variables().end(),
                        right_.stream->variables().begin(),
                        right_.stream->variables().end(),
                        std::back_inserter(shared_vars_));
  std::set_union(left_.stream->variables().begin(),
                 left_.stream->variables().end(),
                 right_.stream->variables().begin(),
                 right_.stream->variables().end(),
                 std::back_inserter(variables_));
}

std::string ReferenceRankJoinStream::KeyFor(const ReferenceBinding& b) const {
  std::string key;
  for (const std::string& var : shared_vars_) {
    key += std::to_string(b.Lookup(var));
    key += '|';
  }
  return key;
}

void ReferenceRankJoinStream::Advance(Side* side, Side* other,
                                      bool side_is_left) {
  ReferenceBinding binding;
  if (!side->stream->Next(&binding)) {
    side->exhausted = true;
    if (!side->stream->status().ok()) status_ = side->stream->status();
    return;
  }
  if (!side->seen_any) {
    side->seen_any = true;
    side->bottom = binding.distance;
  }
  side->top = binding.distance;

  const std::string key = KeyFor(binding);
  auto it = other->table.find(key);
  if (it != other->table.end()) {
    for (const ReferenceBinding& match : it->second) {
      ReferenceBinding merged = side_is_left ? binding : match;
      const ReferenceBinding& addition = side_is_left ? match : binding;
      bool ok = true;
      for (const auto& [var, value] : addition.vars) {
        if (!merged.Bind(var, value)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      merged.distance = binding.distance + match.distance;
      heap_.push(Candidate{std::move(merged)});
    }
  }
  side->table[key].push_back(std::move(binding));
}

Cost ReferenceRankJoinStream::Threshold() const {
  Cost via_new_left = kInfiniteCost;
  Cost via_new_right = kInfiniteCost;
  if (!left_.exhausted) via_new_left = left_.top + right_.bottom;
  if (!right_.exhausted) via_new_right = right_.top + left_.bottom;
  return std::min(via_new_left, via_new_right);
}

bool ReferenceRankJoinStream::Next(ReferenceBinding* out) {
  if (!status_.ok()) return false;
  for (;;) {
    if (!heap_.empty() && heap_.top().binding.distance <= Threshold()) {
      *out = heap_.top().binding;
      heap_.pop();
      return true;
    }
    if (left_.exhausted && right_.exhausted) {
      if (heap_.empty()) return false;
      *out = heap_.top().binding;
      heap_.pop();
      return true;
    }
    const bool pick_left =
        right_.exhausted || (!left_.exhausted && pull_left_next_);
    pull_left_next_ = !pick_left;
    Advance(pick_left ? &left_ : &right_, pick_left ? &right_ : &left_,
            pick_left);
    if (!status_.ok()) return false;
  }
}

}  // namespace omega
