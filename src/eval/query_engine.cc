#include "eval/query_engine.h"

#include <algorithm>

namespace omega {
namespace {

/// Owns the compiled automaton alongside the evaluator borrowing it, so the
/// engine can hand out self-contained streams.
class OwningConjunctStream : public AnswerStream {
 public:
  OwningConjunctStream(std::unique_ptr<PreparedConjunct> prepared,
                       const GraphStore* graph, const BoundOntology* ontology,
                       const EvaluatorOptions& options, bool distance_aware,
                       const DistanceAwareOptions& da_options)
      : prepared_(std::move(prepared)) {
    if (distance_aware) {
      inner_ = std::make_unique<DistanceAwareStream>(
          graph, ontology, prepared_.get(), options, da_options);
    } else {
      inner_ = std::make_unique<ConjunctEvaluator>(graph, ontology,
                                                   prepared_.get(), options);
    }
  }

  bool Next(Answer* out) override { return inner_->Next(out); }
  const Status& status() const override { return inner_->status(); }
  EvaluatorStats stats() const override { return inner_->stats(); }

  const PreparedConjunct& prepared() const { return *prepared_; }

 private:
  std::unique_ptr<PreparedConjunct> prepared_;
  std::unique_ptr<AnswerStream> inner_;
};

}  // namespace

// --- QueryResultStream -------------------------------------------------------

QueryResultStream::QueryResultStream(std::vector<std::string> head,
                                     std::unique_ptr<BindingStream> bindings)
    : head_(std::move(head)), bindings_(std::move(bindings)) {}

bool QueryResultStream::Next(QueryAnswer* out) {
  Binding binding;
  while (bindings_->Next(&binding)) {
    QueryAnswer answer;
    answer.distance = binding.distance;
    answer.bindings.reserve(head_.size());
    for (const std::string& var : head_) {
      answer.bindings.push_back(binding.Lookup(var));
    }
    if (!seen_.insert(answer.bindings).second) continue;
    *out = std::move(answer);
    return true;
  }
  return false;
}

// --- QueryEngine -------------------------------------------------------------

QueryEngine::QueryEngine(const GraphStore* graph, const Ontology* ontology)
    : graph_(graph) {
  if (ontology != nullptr) bound_.emplace(ontology, graph);
}

Result<std::unique_ptr<BindingStream>> QueryEngine::MakeConjunctStream(
    const Conjunct& conjunct, const QueryEngineOptions& options) const {
  const BoundOntology* ontology = bound_ontology();
  const bool flexible = conjunct.mode != ConjunctMode::kExact;

  // §4.3(b): decompose a top-level alternation into sub-automata.
  if (options.decompose_alternation && flexible &&
      CanDecomposeAlternation(conjunct)) {
    Result<std::unique_ptr<DisjunctionStream>> stream =
        DisjunctionStream::Create(
            conjunct, graph_, ontology, options.evaluator,
            options.distance_aware_options.max_fruitless_rounds);
    if (!stream.ok()) return stream.status();
    return std::unique_ptr<BindingStream>(
        std::make_unique<ConjunctBindingStream>(
            std::move(stream).value(),
            // DisjunctionStream normalises Case 2 internally per branch;
            // recompute the post-reversal endpoints the same way.
            conjunct.source.is_variable && !conjunct.target.is_variable
                ? conjunct.target
                : conjunct.source,
            conjunct.source.is_variable && !conjunct.target.is_variable
                ? conjunct.source
                : conjunct.target));
  }

  Result<PreparedConjunct> prepared =
      PrepareConjunct(conjunct, *graph_, ontology, options.evaluator);
  if (!prepared.ok()) return prepared.status();
  auto holder = std::make_unique<PreparedConjunct>(std::move(prepared).value());
  const Endpoint eval_source = holder->eval_source;
  const Endpoint eval_target = holder->eval_target;

  // §4.3(a): distance-aware retrieval only pays off when operations have
  // positive costs, i.e. for APPROX/RELAX conjuncts.
  const bool use_distance_aware = options.distance_aware && flexible;
  auto answers = std::make_unique<OwningConjunctStream>(
      std::move(holder), graph_, ontology, options.evaluator,
      use_distance_aware, options.distance_aware_options);
  return std::unique_ptr<BindingStream>(
      std::make_unique<ConjunctBindingStream>(std::move(answers), eval_source,
                                              eval_target));
}

Result<std::unique_ptr<QueryResultStream>> QueryEngine::Execute(
    const Query& query, const QueryEngineOptions& options) const {
  OMEGA_RETURN_NOT_OK(ValidateQuery(query));
  std::vector<std::unique_ptr<BindingStream>> streams;
  streams.reserve(query.conjuncts.size());
  for (const Conjunct& conjunct : query.conjuncts) {
    Result<std::unique_ptr<BindingStream>> stream =
        MakeConjunctStream(conjunct, options);
    if (!stream.ok()) return stream.status();
    streams.push_back(std::move(stream).value());
  }
  return std::make_unique<QueryResultStream>(query.head,
                                             BuildJoinTree(std::move(streams)));
}

Result<std::vector<QueryAnswer>> QueryEngine::ExecuteTopK(
    const Query& query, size_t limit, const QueryEngineOptions& options) const {
  QueryEngineOptions hinted = options;
  if (hinted.evaluator.top_k_hint == 0) hinted.evaluator.top_k_hint = limit;
  Result<std::unique_ptr<QueryResultStream>> stream = Execute(query, hinted);
  if (!stream.ok()) return stream.status();
  std::vector<QueryAnswer> answers;
  QueryAnswer answer;
  while ((limit == 0 || answers.size() < limit) &&
         (*stream)->Next(&answer)) {
    answers.push_back(answer);
  }
  if (!(*stream)->status().ok()) return (*stream)->status();
  return answers;
}

}  // namespace omega
