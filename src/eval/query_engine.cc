#include "eval/query_engine.h"

#include <algorithm>

namespace omega {
namespace {

/// Owns the compiled automaton alongside the evaluator borrowing it, so the
/// engine can hand out self-contained streams.
class OwningConjunctStream : public AnswerStream {
 public:
  OwningConjunctStream(std::unique_ptr<PreparedConjunct> prepared,
                       const GraphStore* graph, const BoundOntology* ontology,
                       const EvaluatorOptions& options, bool distance_aware,
                       const DistanceAwareOptions& da_options)
      : prepared_(std::move(prepared)) {
    if (distance_aware) {
      inner_ = std::make_unique<DistanceAwareStream>(
          graph, ontology, prepared_.get(), options, da_options);
    } else {
      inner_ = std::make_unique<ConjunctEvaluator>(graph, ontology,
                                                   prepared_.get(), options);
    }
  }

  bool Next(Answer* out) override { return inner_->Next(out); }
  const Status& status() const override { return inner_->status(); }
  EvaluatorStats stats() const override { return inner_->stats(); }

  const PreparedConjunct& prepared() const { return *prepared_; }

 private:
  std::unique_ptr<PreparedConjunct> prepared_;
  std::unique_ptr<AnswerStream> inner_;
};

/// Slot of an endpoint: its compiled VarId, or kInvalidVar for a constant.
VarId SlotOf(const Endpoint& endpoint, const VarCatalog& catalog) {
  return endpoint.is_variable ? catalog.Find(endpoint.name) : kInvalidVar;
}

}  // namespace

// --- QueryResultStream -------------------------------------------------------

QueryResultStream::QueryResultStream(std::vector<std::string> head,
                                     std::vector<VarId> head_slots,
                                     std::unique_ptr<BindingStream> bindings)
    : head_(std::move(head)),
      head_slots_(std::move(head_slots)),
      bindings_(std::move(bindings)) {}

bool QueryResultStream::Next(QueryAnswer* out) {
  Binding binding;
  while (bindings_->Next(&binding)) {
    QueryAnswer answer;
    answer.distance = binding.distance;
    answer.bindings.reserve(head_slots_.size());
    for (const VarId slot : head_slots_) {
      answer.bindings.push_back(binding.Get(slot));
    }
    // Head variables are always bound (ValidateQuery requires them in the
    // body), so kInvalidNode never appears in a real second component and
    // the packed one-variable key cannot collide with a two-variable one.
    const bool fresh =
        head_slots_.size() <= 2
            ? seen_packed_.Insert(PackPair(
                  answer.bindings[0], head_slots_.size() == 2
                                          ? answer.bindings[1]
                                          : kInvalidNode))
            : seen_wide_.Insert(answer.bindings);
    if (!fresh) continue;
    *out = std::move(answer);
    return true;
  }
  return false;
}

// --- QueryEngine -------------------------------------------------------------

QueryEngine::QueryEngine(const GraphStore* graph, const Ontology* ontology)
    : graph_(graph) {
  if (ontology != nullptr) bound_.emplace(ontology, graph);
}

Result<std::unique_ptr<BindingStream>> QueryEngine::MakeConjunctStream(
    const Conjunct& conjunct, const QueryEngineOptions& options,
    const VarCatalog& catalog) const {
  const BoundOntology* ontology = bound_ontology();
  const bool flexible = conjunct.mode != ConjunctMode::kExact;
  const size_t width = catalog.size();

  // §4.3(b): decompose a top-level alternation into sub-automata.
  if (options.decompose_alternation && flexible &&
      CanDecomposeAlternation(conjunct)) {
    Result<std::unique_ptr<DisjunctionStream>> stream =
        DisjunctionStream::Create(
            conjunct, graph_, ontology, options.evaluator,
            options.distance_aware_options.max_fruitless_rounds);
    if (!stream.ok()) return stream.status();
    // DisjunctionStream normalises Case 2 internally per branch; recompute
    // the post-reversal endpoints the same way.
    const bool reversed =
        conjunct.source.is_variable && !conjunct.target.is_variable;
    return std::unique_ptr<BindingStream>(
        std::make_unique<ConjunctBindingStream>(
            std::move(stream).value(), width,
            SlotOf(reversed ? conjunct.target : conjunct.source, catalog),
            SlotOf(reversed ? conjunct.source : conjunct.target, catalog)));
  }

  Result<PreparedConjunct> prepared =
      PrepareConjunct(conjunct, *graph_, ontology, options.evaluator);
  if (!prepared.ok()) return prepared.status();
  auto holder = std::make_unique<PreparedConjunct>(std::move(prepared).value());
  const VarId source_slot = SlotOf(holder->eval_source, catalog);
  const VarId target_slot = SlotOf(holder->eval_target, catalog);

  // §4.3(a): distance-aware retrieval only pays off when operations have
  // positive costs, i.e. for APPROX/RELAX conjuncts.
  const bool use_distance_aware = options.distance_aware && flexible;
  auto answers = std::make_unique<OwningConjunctStream>(
      std::move(holder), graph_, ontology, options.evaluator,
      use_distance_aware, options.distance_aware_options);
  return std::unique_ptr<BindingStream>(
      std::make_unique<ConjunctBindingStream>(std::move(answers), width,
                                              source_slot, target_slot));
}

Result<std::unique_ptr<QueryResultStream>> QueryEngine::Execute(
    const Query& query, const QueryEngineOptions& options) const {
  OMEGA_RETURN_NOT_OK(ValidateQuery(query));
  // Compile the per-query variable catalogue: every body variable gets a
  // dense slot (first-use order, matching Query::BodyVariables), so the
  // streams below speak integer slots only.
  VarCatalog catalog;
  for (const Conjunct& conjunct : query.conjuncts) {
    if (conjunct.source.is_variable) catalog.GetOrAdd(conjunct.source.name);
    if (conjunct.target.is_variable) catalog.GetOrAdd(conjunct.target.name);
  }
  std::vector<VarId> head_slots;
  head_slots.reserve(query.head.size());
  for (const std::string& var : query.head) {
    head_slots.push_back(catalog.Find(var));  // bound: ValidateQuery checked
  }
  std::vector<std::unique_ptr<BindingStream>> streams;
  streams.reserve(query.conjuncts.size());
  for (const Conjunct& conjunct : query.conjuncts) {
    Result<std::unique_ptr<BindingStream>> stream =
        MakeConjunctStream(conjunct, options, catalog);
    if (!stream.ok()) return stream.status();
    streams.push_back(std::move(stream).value());
  }
  return std::make_unique<QueryResultStream>(
      query.head, std::move(head_slots),
      BuildJoinTree(std::move(streams), options.evaluator.max_live_tuples));
}

Result<std::vector<QueryAnswer>> QueryEngine::ExecuteTopK(
    const Query& query, size_t limit, const QueryEngineOptions& options) const {
  QueryEngineOptions hinted = options;
  if (hinted.evaluator.top_k_hint == 0) hinted.evaluator.top_k_hint = limit;
  Result<std::unique_ptr<QueryResultStream>> stream = Execute(query, hinted);
  if (!stream.ok()) return stream.status();
  std::vector<QueryAnswer> answers;
  QueryAnswer answer;
  while ((limit == 0 || answers.size() < limit) &&
         (*stream)->Next(&answer)) {
    answers.push_back(answer);
  }
  if (!(*stream)->status().ok()) return (*stream)->status();
  return answers;
}

}  // namespace omega
