#include "eval/query_engine.h"

#include <algorithm>

#include "index/index_probe_stream.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/statistics.h"

namespace omega {
namespace {

// Probe-vs-fallback counters for the reachability-index substitution.
// Process-global on purpose (every engine shares the per-label indexes);
// the registry lookup happens once per process via the function-local
// static, leaving one relaxed increment per decided conjunct on the hot
// path.
Counter* ProbeSubstitutionCounter() {
  static Counter* const counter = MetricsRegistry::Global()->GetCounter(
      "omega_index_probe_substitutions_total",
      "Conjuncts executed as reachability-index interval probes");
  return counter;
}

Counter* ProbeFallbackCounter() {
  static Counter* const counter = MetricsRegistry::Global()->GetCounter(
      "omega_index_probe_fallbacks_total",
      "Index-eligible conjuncts that fell back to the NFA walk");
  return counter;
}

/// Owns the compiled automaton alongside the evaluator borrowing it, so the
/// engine can hand out self-contained streams.
class OwningConjunctStream : public AnswerStream {
 public:
  OwningConjunctStream(std::unique_ptr<PreparedConjunct> prepared,
                       const GraphStore* graph, const BoundOntology* ontology,
                       const EvaluatorOptions& options, bool distance_aware,
                       const DistanceAwareOptions& da_options,
                       const DistanceSketch* sketch = nullptr)
      : prepared_(std::move(prepared)) {
    if (distance_aware) {
      inner_ = std::make_unique<DistanceAwareStream>(
          graph, ontology, prepared_.get(), options, da_options, sketch);
    } else {
      inner_ = std::make_unique<ConjunctEvaluator>(graph, ontology,
                                                   prepared_.get(), options);
    }
  }

  bool Next(Answer* out) override { return inner_->Next(out); }
  const Status& status() const override { return inner_->status(); }
  EvaluatorStats stats() const override { return inner_->stats(); }

  const PreparedConjunct& prepared() const { return *prepared_; }

 private:
  std::unique_ptr<PreparedConjunct> prepared_;
  std::unique_ptr<AnswerStream> inner_;
};

/// Slot of an endpoint: its compiled VarId, or kInvalidVar for a constant.
VarId SlotOf(const Endpoint& endpoint, const VarCatalog& catalog) {
  return endpoint.is_variable ? catalog.Find(endpoint.name) : kInvalidVar;
}

/// True if `order` is a permutation of [0, n).
bool IsPermutation(const std::vector<size_t>& order, size_t n) {
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (const size_t i : order) {
    if (i >= n || seen[i]) return false;
    seen[i] = true;
  }
  return true;
}

/// A committed index-probe substitution: the per-label index to probe (null
/// for an absent label — no edges carry it, so the trivial probe is exact),
/// the compiled probe, and its reach set.
struct IndexProbeDecision {
  const LabelReachability* reach = nullptr;
  IndexProbePlan plan;
  ProbeReachSet set;
};

/// Decides whether `prepared` runs off the reachability index. Deterministic
/// in its inputs: PlanFor (estimates, EXPLAIN) and MakeConjunctStream
/// (execution) both call it with identical arguments, so the plan always
/// describes the stream that actually runs. Eligible shape: an exact-mode
/// single-atom closure with a constant (post-reversal) source. Falls back to
/// the NFA walk (nullopt) when the per-label index is unavailable (over its
/// interval budget) or the min_hops frontier expansion overflows its cap.
std::optional<IndexProbeDecision> DecideIndexProbe(
    const PreparedConjunct& prepared, const GraphStore& graph,
    const IndexManager* indexes, const QueryEngineOptions& options) {
  if (!options.use_reachability_index || indexes == nullptr) {
    return std::nullopt;
  }
  if (prepared.mode != ConjunctMode::kExact) return std::nullopt;
  if (!prepared.closure_shape.has_value()) return std::nullopt;
  if (prepared.eval_source.is_variable) return std::nullopt;
  const ClosureShape& shape = *prepared.closure_shape;

  IndexProbeDecision decision;
  decision.plan.is_wildcard = shape.is_wildcard;
  decision.plan.dir = shape.dir;
  decision.plan.min_hops = shape.min_hops;
  if (shape.is_wildcard) {
    decision.reach =
        indexes->Reachability(ReachabilityIndex::kSigmaLabel, shape.dir);
    if (decision.reach == nullptr) return std::nullopt;
  } else if (const std::optional<LabelId> label =
                 graph.labels().Find(shape.label);
             label.has_value()) {
    decision.plan.label = *label;
    decision.reach = indexes->Reachability(*label, shape.dir);
    if (decision.reach == nullptr) return std::nullopt;
  }
  decision.plan.source =
      graph.FindNode(prepared.eval_source.name).value_or(kInvalidNode);
  if (!prepared.eval_target.is_variable) {
    decision.plan.target_is_constant = true;
    decision.plan.target =
        graph.FindNode(prepared.eval_target.name).value_or(kInvalidNode);
  }
  std::optional<ProbeReachSet> set =
      ComputeProbeReachSet(graph, decision.reach, decision.plan);
  if (!set.has_value()) return std::nullopt;
  decision.set = std::move(*set);
  return decision;
}

/// EXPLAIN marker appended to a substituted leaf's description.
std::string IndexProbeMarker(const ClosureShape& shape) {
  std::string marker = " via IndexProbe(";
  marker += shape.is_wildcard ? "_" : shape.label;
  if (shape.dir == Direction::kIncoming) marker += ", incoming";
  if (shape.min_hops > 0) {
    marker += ", min_hops=" + std::to_string(shape.min_hops);
  }
  marker += ")";
  return marker;
}

}  // namespace

// --- QueryResultStream -------------------------------------------------------

QueryResultStream::QueryResultStream(std::vector<std::string> head,
                                     std::vector<VarId> head_slots,
                                     std::unique_ptr<BindingStream> bindings,
                                     std::unique_ptr<QueryPlan> plan)
    : head_(std::move(head)),
      head_slots_(std::move(head_slots)),
      bindings_(std::move(bindings)),
      plan_(std::move(plan)) {}

std::string QueryResultStream::ExplainString() const {
  return plan_ == nullptr ? std::string()
                          : RenderPlanTree(*plan_, /*with_stats=*/true);
}

bool QueryResultStream::Next(QueryAnswer* out) {
  Binding binding;
  while (bindings_->Next(&binding)) {
    QueryAnswer answer;
    answer.distance = binding.distance;
    answer.bindings.reserve(head_slots_.size());
    for (const VarId slot : head_slots_) {
      answer.bindings.push_back(binding.Get(slot));
    }
    // Head variables are always bound (ValidateQuery requires them in the
    // body), so kInvalidNode never appears in a real second component and
    // the packed one-variable key cannot collide with a two-variable one.
    const bool fresh =
        head_slots_.size() <= 2
            ? seen_packed_.Insert(PackPair(
                  answer.bindings[0], head_slots_.size() == 2
                                          ? answer.bindings[1]
                                          : kInvalidNode))
            : seen_wide_.Insert(answer.bindings);
    if (!fresh) continue;
    *out = std::move(answer);
    return true;
  }
  return false;
}

// --- QueryEngine -------------------------------------------------------------

QueryEngine::QueryEngine(const GraphStore* graph, const Ontology* ontology,
                         const IndexManager* indexes)
    : graph_(graph), indexes_(indexes) {
  if (ontology != nullptr) bound_.emplace(ontology, graph);
}

Result<std::unique_ptr<BindingStream>> QueryEngine::MakeConjunctStream(
    const Conjunct& conjunct, std::unique_ptr<PreparedConjunct> prepared,
    const QueryEngineOptions& options, const VarCatalog& catalog) const {
  const BoundOntology* ontology = bound_ontology();
  const bool flexible = conjunct.mode != ConjunctMode::kExact;
  const size_t width = catalog.size();

  // §4.3(b): decompose a top-level alternation into sub-automata. The
  // decomposition recompiles each branch internally, so the whole-conjunct
  // automaton prepared for planning is not used here.
  if (options.decompose_alternation && flexible &&
      CanDecomposeAlternation(conjunct)) {
    Result<std::unique_ptr<DisjunctionStream>> stream =
        DisjunctionStream::Create(
            conjunct, graph_, ontology, options.evaluator,
            options.distance_aware_options.max_fruitless_rounds);
    if (!stream.ok()) return stream.status();
    // DisjunctionStream normalises Case 2 internally per branch; recompute
    // the post-reversal endpoints the same way.
    const bool reversed =
        conjunct.source.is_variable && !conjunct.target.is_variable;
    return std::unique_ptr<BindingStream>(
        std::make_unique<ConjunctBindingStream>(
            std::move(stream).value(), width,
            SlotOf(reversed ? conjunct.target : conjunct.source, catalog),
            SlotOf(reversed ? conjunct.source : conjunct.target, catalog)));
  }

  const VarId source_slot = SlotOf(prepared->eval_source, catalog);
  const VarId target_slot = SlotOf(prepared->eval_target, catalog);

  // Reachability-index substitution: an eligible exact closure conjunct
  // becomes an interval-containment probe instead of an NFA product walk.
  // Same decision as PlanFor's, so EXPLAIN and execution agree. The
  // substitution/fallback counters and trace events record the decision
  // once per conjunct at stream-construction time, never per pull.
  const bool index_candidate =
      options.use_reachability_index && indexes_ != nullptr &&
      prepared->mode == ConjunctMode::kExact &&
      prepared->closure_shape.has_value() &&
      !prepared->eval_source.is_variable;
  if (std::optional<IndexProbeDecision> probe =
          DecideIndexProbe(*prepared, *graph_, indexes_, options);
      probe.has_value()) {
    ProbeSubstitutionCounter()->Increment();
    if (TraceRecorder* trace = options.evaluator.trace; trace != nullptr) {
      const TraceRecorder::SpanId id = trace->Event("index_probe");
      trace->AnnotateStr(id, "conjunct", ToString(conjunct));
      trace->Annotate(id, "substituted", 1);
    }
    auto stream = std::make_unique<IndexProbeStream>(
        probe->reach, probe->plan, std::move(probe->set));
    return std::unique_ptr<BindingStream>(
        std::make_unique<ConjunctBindingStream>(std::move(stream), width,
                                                source_slot, target_slot));
  }
  if (index_candidate) {
    // Eligible shape, but the per-label index was unavailable (interval
    // budget) or the frontier expansion overflowed — the fallback the
    // metrics exist to make visible.
    ProbeFallbackCounter()->Increment();
    if (TraceRecorder* trace = options.evaluator.trace; trace != nullptr) {
      const TraceRecorder::SpanId id = trace->Event("index_probe");
      trace->AnnotateStr(id, "conjunct", ToString(conjunct));
      trace->Annotate(id, "substituted", 0);
    }
  }

  // §4.3(a): distance-aware retrieval only pays off when operations have
  // positive costs, i.e. for APPROX/RELAX conjuncts.
  const bool use_distance_aware = options.distance_aware && flexible;
  // The distance sketch can only raise the first ψ for an APPROX conjunct
  // with two constant endpoints and a bounded exact language; gate the
  // (lazy, BFS-building) Sketch() call on exactly those conditions.
  const DistanceSketch* sketch = nullptr;
  if (use_distance_aware && options.use_reachability_index &&
      indexes_ != nullptr && prepared->mode == ConjunctMode::kApprox &&
      !prepared->eval_source.is_variable &&
      !prepared->eval_target.is_variable &&
      prepared->max_exact_path_edges.has_value()) {
    sketch = indexes_->Sketch();
  }
  auto answers = std::make_unique<OwningConjunctStream>(
      std::move(prepared), graph_, ontology, options.evaluator,
      use_distance_aware, options.distance_aware_options, sketch);
  return std::unique_ptr<BindingStream>(
      std::make_unique<ConjunctBindingStream>(std::move(answers), width,
                                              source_slot, target_slot));
}

Result<std::unique_ptr<QueryPlan>> QueryEngine::PlanFor(
    const Query& query, const QueryEngineOptions& options,
    std::vector<std::unique_ptr<PreparedConjunct>>* prepared) const {
  OMEGA_RETURN_NOT_OK(ValidateQuery(query));
  auto plan = std::make_unique<QueryPlan>();
  // Compile the per-query variable catalogue: every body variable gets a
  // dense slot (first-use order, matching Query::BodyVariables), so the
  // streams speak integer slots only.
  for (const Conjunct& conjunct : query.conjuncts) {
    if (conjunct.source.is_variable) {
      plan->catalog.GetOrAdd(conjunct.source.name);
    }
    if (conjunct.target.is_variable) {
      plan->catalog.GetOrAdd(conjunct.target.name);
    }
  }
  // Prepare and estimate every conjunct up front: the planner needs the
  // automaton-level estimates before any stream exists.
  std::vector<PlanLeaf> leaves;
  leaves.reserve(query.conjuncts.size());
  prepared->clear();
  prepared->reserve(query.conjuncts.size());
  for (size_t i = 0; i < query.conjuncts.size(); ++i) {
    const Conjunct& conjunct = query.conjuncts[i];
    Result<PreparedConjunct> p =
        PrepareConjunct(conjunct, *graph_, bound_ontology(), options.evaluator);
    if (!p.ok()) return p.status();
    auto holder = std::make_unique<PreparedConjunct>(std::move(p).value());
    PlanLeaf leaf;
    leaf.conjunct_index = i;
    leaf.description = ToString(conjunct);
    const VarId source_slot = SlotOf(conjunct.source, plan->catalog);
    const VarId target_slot = SlotOf(conjunct.target, plan->catalog);
    if (source_slot != kInvalidVar) leaf.variables.push_back(source_slot);
    if (target_slot != kInvalidVar && target_slot != source_slot) {
      leaf.variables.push_back(target_slot);
    }
    std::sort(leaf.variables.begin(), leaf.variables.end());
    // Index-substituted conjuncts are priced off the actual reach set (an
    // exact count) and marked in the leaf description for EXPLAIN.
    if (const std::optional<IndexProbeDecision> probe =
            DecideIndexProbe(*holder, *graph_, indexes_, options);
        probe.has_value()) {
      leaf.estimate =
          EstimateIndexProbe(probe->plan, probe->set, probe->reach, *graph_);
      leaf.description += IndexProbeMarker(*holder->closure_shape);
    } else {
      leaf.estimate = EstimateConjunct(*holder, *graph_);
    }
    leaves.push_back(std::move(leaf));
    prepared->push_back(std::move(holder));
  }

  if (!options.forced_join_order.empty()) {
    if (!IsPermutation(options.forced_join_order, leaves.size())) {
      return Status::InvalidArgument(
          "forced_join_order must be a permutation of the conjunct indices");
    }
    plan->root = PlanLeftDeep(std::move(leaves), options.forced_join_order,
                              graph_->NumNodes());
  } else if (options.plan_mode == PlanMode::kTextual) {
    std::vector<size_t> order(leaves.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    plan->root = PlanLeftDeep(std::move(leaves), order, graph_->NumNodes());
  } else {
    plan->root = PlanGreedyBushy(std::move(leaves), graph_->NumNodes());
  }
  return plan;
}

Result<std::unique_ptr<QueryResultStream>> QueryEngine::Execute(
    const Query& query, const QueryEngineOptions& options) const {
  std::vector<std::unique_ptr<PreparedConjunct>> prepared;
  std::unique_ptr<QueryPlan> planned;
  {
    ScopedSpan span(options.evaluator.trace, "plan");
    Result<std::unique_ptr<QueryPlan>> plan =
        PlanFor(query, options, &prepared);
    if (!plan.ok()) return plan.status();
    planned = std::move(*plan);
    span.Annotate("conjuncts", static_cast<int64_t>(query.conjuncts.size()));
    if (planned->root != nullptr) {
      span.Annotate("est_rows",
                    static_cast<int64_t>(planned->root->est_cardinality));
    }
  }
  ScopedSpan compile_span(options.evaluator.trace, "compile");
  const VarCatalog& catalog = planned->catalog;
  std::vector<VarId> head_slots;
  head_slots.reserve(query.head.size());
  for (const std::string& var : query.head) {
    head_slots.push_back(catalog.Find(var));  // bound: ValidateQuery checked
  }
  std::vector<std::unique_ptr<BindingStream>> streams(query.conjuncts.size());
  for (size_t i = 0; i < query.conjuncts.size(); ++i) {
    Result<std::unique_ptr<BindingStream>> stream = MakeConjunctStream(
        query.conjuncts[i], std::move(prepared[i]), options, catalog);
    if (!stream.ok()) return stream.status();
    streams[i] = std::move(stream).value();
  }
  std::unique_ptr<BindingStream> tree =
      CompilePlan(planned->root.get(), &streams,
                  options.evaluator.max_live_tuples, options.evaluator.cancel);
  return std::make_unique<QueryResultStream>(query.head, std::move(head_slots),
                                             std::move(tree),
                                             std::move(planned));
}

Result<std::string> QueryEngine::ExplainQuery(
    const Query& query, const QueryEngineOptions& options) const {
  std::vector<std::unique_ptr<PreparedConjunct>> prepared;
  Result<std::unique_ptr<QueryPlan>> plan = PlanFor(query, options, &prepared);
  if (!plan.ok()) return plan.status();
  return RenderPlanTree(**plan, /*with_stats=*/false);
}

Result<std::vector<QueryAnswer>> QueryEngine::ExecuteTopK(
    const Query& query, size_t limit, const QueryEngineOptions& options) const {
  QueryEngineOptions hinted = options;
  if (hinted.evaluator.top_k_hint == 0) hinted.evaluator.top_k_hint = limit;
  Result<std::unique_ptr<QueryResultStream>> stream = Execute(query, hinted);
  if (!stream.ok()) return stream.status();
  std::vector<QueryAnswer> answers;
  QueryAnswer answer;
  while ((limit == 0 || answers.size() < limit) &&
         (*stream)->Next(&answer)) {
    answers.push_back(answer);
  }
  if (!(*stream)->status().ok()) return (*stream)->status();
  return answers;
}

}  // namespace omega
