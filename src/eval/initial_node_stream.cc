#include "eval/initial_node_stream.h"

#include <algorithm>

namespace omega {

InitialNodeStream::InitialNodeStream(const GraphStore* graph,
                                     const BoundOntology* ontology,
                                     const Nfa* nfa, bool include_remaining,
                                     size_t batch_size)
    : graph_(graph),
      ontology_(ontology),
      nfa_(nfa),
      include_remaining_(include_remaining),
      batch_size_(batch_size == 0 ? 1 : batch_size),
      yielded_(graph->NumNodes()) {
  for (const NfaTransition& t : nfa->Out(nfa->initial())) {
    group_costs_.push_back(t.cost);
  }
  std::sort(group_costs_.begin(), group_costs_.end());
  group_costs_.erase(std::unique(group_costs_.begin(), group_costs_.end()),
                     group_costs_.end());
}

bool InitialNodeStream::Exhausted() const {
  if (group_pos_ < group_nodes_.size()) return false;
  if (next_group_ < group_costs_.size()) return false;
  if (include_remaining_ && !remaining_done_) return false;
  return true;
}

std::vector<NodeId> InitialNodeStream::CandidatesFor(
    const NfaTransition& t) const {
  std::vector<NodeId> out;
  auto append = [&out](std::span<const NodeId> ids) {
    out.insert(out.end(), ids.begin(), ids.end());
  };
  const bool entail = nfa_->entailment_matching() && ontology_ != nullptr;
  switch (t.kind) {
    case TransitionKind::kEpsilon:
      break;  // ε-free by construction
    case TransitionKind::kLabel: {
      if (t.label == kInvalidLabel) break;
      const bool outgoing = t.dir == Direction::kOutgoing;
      if (entail && t.label != LabelDictionary::kTypeLabel) {
        for (LabelId down : ontology_->LabelDownSet(t.label)) {
          append(outgoing ? graph_->Tails(down).ids()
                          : graph_->Heads(down).ids());
        }
      } else if (entail && t.label == LabelDictionary::kTypeLabel &&
                 !outgoing) {
        // A reverse type edge from a class node matches instances of any
        // descendant class: any class node with a non-empty down-set of
        // typed descendants qualifies, as does any direct type target.
        append(graph_->Heads(LabelDictionary::kTypeLabel).ids());
        append(ontology_->BoundClassNodes().ids());
      } else {
        append(outgoing ? graph_->Tails(t.label).ids()
                        : graph_->Heads(t.label).ids());
      }
      break;
    }
    case TransitionKind::kAnyLabel:
      append(graph_->SigmaEndpoints(t.dir).ids());
      append(graph_->TypeEndpoints(t.dir).ids());
      break;
    case TransitionKind::kAnyLabelBothDirs:
      append(graph_->SigmaEndpoints(Direction::kOutgoing).ids());
      append(graph_->SigmaEndpoints(Direction::kIncoming).ids());
      append(graph_->TypeEndpoints(Direction::kOutgoing).ids());
      append(graph_->TypeEndpoints(Direction::kIncoming).ids());
      break;
    case TransitionKind::kConstrainedType:
      append(graph_->TypeEndpoints(Direction::kOutgoing).ids());
      break;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void InitialNodeStream::AdvanceGroup() {
  group_nodes_.clear();
  group_pos_ = 0;
  while (group_nodes_.empty()) {
    if (next_group_ < group_costs_.size()) {
      const Cost cost = group_costs_[next_group_++];
      // Union of candidates over all transitions at this cost, minus nodes
      // yielded by cheaper groups ("the same node is not re-added to D_R at
      // a higher cost").
      std::vector<NodeId> merged;
      for (const NfaTransition& t : nfa_->Out(nfa_->initial())) {
        if (t.cost != cost) continue;
        std::vector<NodeId> candidates = CandidatesFor(t);
        merged.insert(merged.end(), candidates.begin(), candidates.end());
      }
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      for (NodeId n : merged) {
        if (!yielded_.Test(n)) {
          yielded_.Set(n);
          group_nodes_.push_back(n);
        }
      }
      continue;
    }
    if (include_remaining_ && !remaining_done_) {
      remaining_done_ = true;
      for (NodeId n = 0; n < graph_->NumNodes(); ++n) {
        if (!yielded_.Test(n)) group_nodes_.push_back(n);
      }
      continue;
    }
    return;  // fully exhausted
  }
}

std::span<const NodeId> InitialNodeStream::NextBatch() {
  batch_.clear();
  while (batch_.size() < batch_size_) {
    if (group_pos_ >= group_nodes_.size()) {
      AdvanceGroup();
      if (group_pos_ >= group_nodes_.size()) break;  // exhausted
    }
    batch_.push_back(group_nodes_[group_pos_++]);
  }
  total_yielded_ += batch_.size();
  return batch_;
}

}  // namespace omega
