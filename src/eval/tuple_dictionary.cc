#include "eval/tuple_dictionary.h"

#include <cassert>
#include <cstdint>
#include <utility>

namespace omega {

void TupleDictionary::Add(const EvalTuple& tuple) {
  assert(tuple.d >= 0 && "distances are non-negative edit/relaxation costs");
  Bucket& bucket = BucketFor(tuple.d);
  if (prioritize_final_ && tuple.is_final) {
    bucket.final_items.push_back(tuple);
  } else {
    bucket.nonfinal_items.push_back(tuple);
  }
  ++size_;
}

TupleDictionary::Bucket& TupleDictionary::BucketFor(Cost d) {
  if (d < base_) {
    // Non-monotone add below the window. Unreachable from GetNext (Succ only
    // adds at d + cost >= d), but kept correct for arbitrary use.
    Rebase(d);
  }
  const size_t idx = static_cast<size_t>(d - base_);
  if (idx < kDenseSpan) {
    if (idx >= dense_.size()) {
      // min_pos_ == dense_.size() is the drained-window sentinel; growing
      // the window must not leave it pointing at a newly created empty
      // bucket, so re-aim it at the bucket this add is about to fill.
      const bool window_drained = min_pos_ >= dense_.size();
      dense_.resize(idx + 1);
      if (window_drained) min_pos_ = idx;
    }
    if (idx < min_pos_) min_pos_ = idx;
    return dense_[idx];
  }
  return overflow_[d];
}

void TupleDictionary::Rebase(Cost new_base) {
  // Spill whatever the window still holds (nothing, on the common
  // drained-window path), re-anchor, and pull every overflow bucket that
  // falls inside the new window. Buckets move wholesale, so each per-cost
  // LIFO list survives intact.
  for (size_t i = 0; i < dense_.size(); ++i) {
    if (!dense_[i].IsEmpty()) {
      overflow_[base_ + static_cast<Cost>(i)] = std::move(dense_[i]);
    }
  }
  dense_.clear();
  base_ = new_base;
  min_pos_ = 0;
  auto it = overflow_.lower_bound(new_base);
  while (it != overflow_.end() &&
         static_cast<int64_t>(it->first) - new_base <
             static_cast<int64_t>(kDenseSpan)) {
    const size_t idx = static_cast<size_t>(it->first - new_base);
    if (idx >= dense_.size()) dense_.resize(idx + 1);
    dense_[idx] = std::move(it->second);
    it = overflow_.erase(it);
  }
}

void TupleDictionary::AdvanceCursor() {
  while (min_pos_ < dense_.size() && dense_[min_pos_].IsEmpty()) {
    ++min_pos_;
  }
}

EvalTuple TupleDictionary::Remove() {
  assert(!Empty() && "Remove() called on an empty TupleDictionary");
  if (min_pos_ >= dense_.size()) {
    // The window drained; every remaining tuple sits in overflow.
    Rebase(overflow_.begin()->first);
  }
  Bucket& bucket = dense_[min_pos_];
  EvalTuple out;
  if (!bucket.final_items.empty()) {
    out = bucket.final_items.back();
    bucket.final_items.pop_back();
  } else {
    out = bucket.nonfinal_items.back();
    bucket.nonfinal_items.pop_back();
  }
  --size_;
  if (bucket.IsEmpty()) AdvanceCursor();
  return out;
}

void TupleDictionary::Clear() {
  dense_.clear();
  overflow_.clear();
  size_ = 0;
  base_ = 0;
  min_pos_ = 0;
}

}  // namespace omega
