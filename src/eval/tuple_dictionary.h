// The D_R dictionary of §3.3: tuples keyed by (distance, final?) with O(1)
// head insertion/removal per bucket. Removal order: lowest distance first;
// at equal distance final tuples before non-final ones "so that answers may
// be returned earlier"; within a list, LIFO — exactly the paper's
// linked-list discipline (vectors replace the C5 linked lists; push/pop at
// the back is the same head discipline with better locality).
#ifndef OMEGA_EVAL_TUPLE_DICTIONARY_H_
#define OMEGA_EVAL_TUPLE_DICTIONARY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "automata/nfa.h"
#include "store/types.h"

namespace omega {

/// The traversal tuple (v, n, s, d, f) of §3.3.
struct EvalTuple {
  NodeId v = kInvalidNode;   ///< node the traversal started from
  NodeId n = kInvalidNode;   ///< node currently visited
  StateId s = kInvalidState; ///< NFA state
  Cost d = 0;                ///< accumulated distance
  bool is_final = false;     ///< ready to be emitted as an answer
};

class TupleDictionary {
 public:
  /// `prioritize_final` = the paper's final/non-final refinement; when off,
  /// all tuples of a distance share one LIFO list (ablation mode).
  explicit TupleDictionary(bool prioritize_final = true)
      : prioritize_final_(prioritize_final) {}

  void Add(const EvalTuple& tuple);

  bool Empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Lowest distance present. Precondition: !Empty().
  Cost MinDistance() const { return buckets_.begin()->first; }

  /// Removes per the discipline above. Precondition: !Empty().
  EvalTuple Remove();

  void Clear();

 private:
  struct Bucket {
    std::vector<EvalTuple> final_items;
    std::vector<EvalTuple> nonfinal_items;
  };

  std::map<Cost, Bucket> buckets_;
  size_t size_ = 0;
  bool prioritize_final_;
};

}  // namespace omega

#endif  // OMEGA_EVAL_TUPLE_DICTIONARY_H_
