// The D_R dictionary of §3.3: tuples keyed by (distance, final?) with O(1)
// head insertion/removal per bucket. Removal order: lowest distance first;
// at equal distance final tuples before non-final ones "so that answers may
// be returned earlier"; within a list, LIFO — exactly the paper's
// linked-list discipline (vectors replace the C5 linked lists; push/pop at
// the back is the same head discipline with better locality).
//
// Implementation: a monotone bucket queue. GetNext pops in non-decreasing
// distance and Succ only ever adds tuples at d + cost >= d, so the minimum
// distance is (in steady state) non-decreasing; a dense window of buckets
// indexed by (d - base) plus a forward-moving cursor makes Add and Remove
// O(1) amortised, versus the O(log #distances) std::map the seed shipped.
// Distances past the dense window land in a std::map overflow and are
// swapped into the window when the cursor reaches them, so arbitrarily
// large (even non-monotone) cost patterns stay correct.
#ifndef OMEGA_EVAL_TUPLE_DICTIONARY_H_
#define OMEGA_EVAL_TUPLE_DICTIONARY_H_

#include <cassert>
#include <cstdint>
#include <map>
#include <vector>

#include "automata/nfa.h"
#include "store/types.h"

namespace omega {

/// The traversal tuple (v, n, s, d, f) of §3.3.
struct EvalTuple {
  NodeId v = kInvalidNode;   ///< node the traversal started from
  NodeId n = kInvalidNode;   ///< node currently visited
  StateId s = kInvalidState; ///< NFA state
  Cost d = 0;                ///< accumulated distance
  bool is_final = false;     ///< ready to be emitted as an answer
};

class TupleDictionary {
 public:
  /// `prioritize_final` = the paper's final/non-final refinement; when off,
  /// all tuples of a distance share one LIFO list (ablation mode).
  explicit TupleDictionary(bool prioritize_final = true)
      : prioritize_final_(prioritize_final) {}

  void Add(const EvalTuple& tuple);

  bool Empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Lowest distance present. Precondition: !Empty().
  Cost MinDistance() const {
    assert(!Empty() && "MinDistance() called on an empty TupleDictionary");
    if (min_pos_ < dense_.size()) return base_ + static_cast<Cost>(min_pos_);
    return overflow_.begin()->first;
  }

  /// Removes per the discipline above. Precondition: !Empty().
  EvalTuple Remove();

  void Clear();

 private:
  struct Bucket {
    std::vector<EvalTuple> final_items;
    std::vector<EvalTuple> nonfinal_items;

    bool IsEmpty() const { return final_items.empty() && nonfinal_items.empty(); }
  };

  /// Width of the dense window. Distances in [base_, base_ + kDenseSpan)
  /// index dense_ directly; anything further lands in overflow_.
  static constexpr size_t kDenseSpan = 4096;

  Bucket& BucketFor(Cost d);

  /// Re-anchors the dense window at `new_base`: spills any live dense
  /// buckets to overflow, then pulls every overflow bucket that falls inside
  /// the new window back in. Called when the window drains (new base = the
  /// overflow minimum) and on the pathological non-monotone add below the
  /// current base.
  void Rebase(Cost new_base);

  /// Advances min_pos_ past empty buckets so it lands on the first non-empty
  /// dense bucket, or dense_.size() when the window has drained.
  void AdvanceCursor();

  std::vector<Bucket> dense_;      // dense_[i] holds distance base_ + i
  std::map<Cost, Bucket> overflow_;
  size_t size_ = 0;
  Cost base_ = 0;
  size_t min_pos_ = 0;             // first possibly-non-empty dense bucket
  bool prioritize_final_;
};

}  // namespace omega

#endif  // OMEGA_EVAL_TUPLE_DICTIONARY_H_
