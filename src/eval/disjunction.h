// Alternation-decomposition optimisation (§4.3): a conjunct whose regex is a
// top-level alternation R1|R2|...|Rk is split into one sub-automaton per
// branch. Distance rounds are evaluated branch-by-branch, re-ordering the
// branches each round by how few answers they returned in the previous
// round (cheapest-first adaptive ordering — the paper's n_{kφ,i} counters).
// Cross-branch duplicates keep their first (cheapest) emission.
#ifndef OMEGA_EVAL_DISJUNCTION_H_
#define OMEGA_EVAL_DISJUNCTION_H_

#include <memory>
#include <vector>

#include "common/flat_hash.h"
#include "common/pack.h"
#include "eval/conjunct_evaluator.h"

namespace omega {

/// Returns true if the optimisation applies: the conjunct regex is a
/// top-level alternation with >= 2 branches.
bool CanDecomposeAlternation(const Conjunct& conjunct);

class DisjunctionStream : public AnswerStream {
 public:
  /// Builds one PreparedConjunct per branch of `conjunct` (which must
  /// satisfy CanDecomposeAlternation). Fails like PrepareConjunct.
  static Result<std::unique_ptr<DisjunctionStream>> Create(
      const Conjunct& conjunct, const GraphStore* graph,
      const BoundOntology* ontology, const EvaluatorOptions& options,
      size_t max_fruitless_rounds = 16);

  bool Next(Answer* out) override;
  const Status& status() const override { return status_; }
  EvaluatorStats stats() const override { return stats_; }

  /// Branch evaluation order used in the most recent round (for tests).
  const std::vector<size_t>& last_round_order() const {
    return last_round_order_;
  }

 private:
  struct Branch {
    PreparedConjunct prepared;
    uint64_t last_round_answers = 0;  // n_{kφ,i}
    bool truncated = true;            // could a higher ψ yield more?
  };

  DisjunctionStream(const GraphStore* graph, const BoundOntology* ontology,
                    const EvaluatorOptions& options,
                    size_t max_fruitless_rounds);

  /// Runs one full ψ-round over all branches, filling round_buffer_.
  void RunRound();

  const GraphStore* graph_;
  const BoundOntology* ontology_;
  EvaluatorOptions options_;
  size_t max_fruitless_rounds_;

  std::vector<Branch> branches_;
  FlatHashSet<uint64_t> emitted_;  // PackPair(v, n) across branches and rounds
  std::vector<Answer> round_buffer_;  // sorted by distance, drained from front
  size_t buffer_pos_ = 0;
  size_t answers_handed_out_ = 0;
  std::vector<size_t> last_round_order_;

  /// Early round termination is only order-safe when every reachable
  /// distance is a multiple of φ (each ψ-round then holds one distance
  /// value, so skipped answers re-sort correctly next round).
  bool allow_early_stop_ = true;

  Cost psi_ = 0;
  Cost phi_ = kInfiniteCost;
  size_t fruitless_rounds_ = 0;
  bool first_round_done_ = false;
  bool done_ = false;
  Status status_;
  EvaluatorStats stats_;
};

}  // namespace omega

#endif  // OMEGA_EVAL_DISJUNCTION_H_
