#include "eval/disjunction.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace omega {

bool CanDecomposeAlternation(const Conjunct& conjunct) {
  return conjunct.regex != nullptr &&
         TopLevelAlternatives(*conjunct.regex).size() >= 2;
}

DisjunctionStream::DisjunctionStream(const GraphStore* graph,
                                     const BoundOntology* ontology,
                                     const EvaluatorOptions& options,
                                     size_t max_fruitless_rounds)
    : graph_(graph),
      ontology_(ontology),
      options_(options),
      max_fruitless_rounds_(max_fruitless_rounds) {}

Result<std::unique_ptr<DisjunctionStream>> DisjunctionStream::Create(
    const Conjunct& conjunct, const GraphStore* graph,
    const BoundOntology* ontology, const EvaluatorOptions& options,
    size_t max_fruitless_rounds) {
  if (!CanDecomposeAlternation(conjunct)) {
    return Status::InvalidArgument(
        "conjunct regex is not a top-level alternation");
  }
  auto stream = std::unique_ptr<DisjunctionStream>(new DisjunctionStream(
      graph, ontology, options, max_fruitless_rounds));
  for (const RegexNode* branch : TopLevelAlternatives(*conjunct.regex)) {
    Conjunct sub;
    sub.mode = conjunct.mode;
    sub.source = conjunct.source;
    sub.target = conjunct.target;
    sub.regex = Clone(*branch);
    Result<PreparedConjunct> prepared =
        PrepareConjunct(sub, *graph, ontology, options);
    if (!prepared.ok()) return prepared.status();
    Branch b;
    b.prepared = std::move(prepared).value();
    stream->phi_ = std::min(stream->phi_, b.prepared.nfa.MinPositiveCost());
    stream->branches_.push_back(std::move(b));
  }
  // Early stop is order-safe only when all costs are multiples of φ.
  if (stream->phi_ > 0 && stream->phi_ < kInfiniteCost) {
    for (const Branch& b : stream->branches_) {
      const Nfa& nfa = b.prepared.nfa;
      for (StateId s = 0; s < nfa.NumStates(); ++s) {
        if (nfa.IsFinal(s) && nfa.FinalWeight(s) % stream->phi_ != 0) {
          stream->allow_early_stop_ = false;
        }
        for (const NfaTransition& t : nfa.Out(s)) {
          if (t.cost % stream->phi_ != 0) stream->allow_early_stop_ = false;
        }
      }
    }
  }
  return stream;
}

void DisjunctionStream::RunRound() {
  round_buffer_.clear();
  buffer_pos_ = 0;

  // Branch order: first round in default order; later rounds by increasing
  // previous-round answer count n_{kφ,i} (ties keep the lower branch index).
  std::vector<size_t> order(branches_.size());
  std::iota(order.begin(), order.end(), 0);
  if (first_round_done_) {
    std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      return branches_[a].last_round_answers < branches_[b].last_round_answers;
    });
  }
  last_round_order_ = order;

  // Quota for this round: once the caller's top-k is covered, remaining
  // branches (and the rest of the current one) are skipped. Safe for
  // ordering: a skipped answer at distance d <= ψ is re-found by a later
  // ψ-capped re-evaluation and sorts to the front of its buffer. A caller
  // that pulls past the hint clearly wants everything — stop hinting.
  size_t quota = std::numeric_limits<size_t>::max();
  if (options_.top_k_hint != 0 && allow_early_stop_ &&
      answers_handed_out_ < options_.top_k_hint) {
    quota = options_.top_k_hint - answers_handed_out_;
  }

  bool any_truncated = false;   // more answers may exist above ψ
  bool any_stopped = false;     // a branch was cut short *at* this ψ
  for (size_t index : order) {
    Branch& branch = branches_[index];
    if (round_buffer_.size() >= quota) {
      branch.truncated = true;  // never ran: may hold unseen answers
      any_stopped = true;
      continue;
    }
    EvaluatorOptions round_options = options_;
    round_options.max_distance = std::min(psi_, options_.max_distance);
    ConjunctEvaluator evaluator(graph_, ontology_, &branch.prepared,
                                round_options);
    uint64_t branch_answers = 0;
    bool stopped_early = false;
    Answer answer;
    while (evaluator.Next(&answer)) {
      ++branch_answers;
      // Cross-branch dedup on variable bindings (v normalised for constant
      // sources, mirroring the evaluator's own duplicate check).
      const NodeId v_key =
          branch.prepared.eval_source.is_variable ? answer.v : kInvalidNode;
      if (emitted_.Insert(PackPair(v_key, answer.n))) {
        round_buffer_.push_back(answer);
      }
      if (round_buffer_.size() >= quota) {
        stopped_early = true;
        break;
      }
    }
    stats_.MergeFrom(evaluator.stats());
    if (!evaluator.status().ok()) {
      status_ = evaluator.status();
      return;
    }
    branch.last_round_answers = branch_answers;
    branch.truncated = stopped_early || evaluator.truncated_by_distance();
    any_stopped = any_stopped || stopped_early;
    any_truncated = any_truncated || evaluator.truncated_by_distance();
  }
  first_round_done_ = true;
  ++stats_.rounds;

  std::stable_sort(round_buffer_.begin(), round_buffer_.end(),
                   [](const Answer& a, const Answer& b) {
                     return a.distance < b.distance;
                   });
  fruitless_rounds_ = round_buffer_.empty() ? fruitless_rounds_ + 1 : 0;

  if (any_stopped) {
    // The quota cut this round short: answers at this very ψ may remain, so
    // re-run at the *same* ceiling when the caller wants more. Progress is
    // guaranteed — an early stop implies the buffer gained >= 1 new answer.
    return;
  }
  const bool ceiling_can_grow =
      phi_ < kInfiniteCost && psi_ < options_.max_distance;
  if (!any_truncated || !ceiling_can_grow ||
      fruitless_rounds_ >= max_fruitless_rounds_) {
    done_ = true;  // no further rounds after this buffer drains
  } else {
    psi_ += phi_;
  }
}

bool DisjunctionStream::Next(Answer* out) {
  if (!status_.ok()) return false;
  for (;;) {
    if (buffer_pos_ < round_buffer_.size()) {
      *out = round_buffer_[buffer_pos_++];
      ++stats_.answers_emitted;
      ++answers_handed_out_;
      return true;
    }
    if (done_) return false;
    RunRound();
    if (!status_.ok()) return false;
  }
}

}  // namespace omega
