// Shared types for incremental ranked evaluation: conjunct answers, the
// pull-based answer stream interface, evaluator options and statistics.
#ifndef OMEGA_EVAL_ANSWER_H_
#define OMEGA_EVAL_ANSWER_H_

#include <cstdint>

#include "automata/approx.h"
#include "automata/nfa.h"
#include "automata/relax.h"
#include "common/cancel.h"
#include "common/status.h"
#include "store/types.h"

namespace omega {
class TraceRecorder;  // obs/trace.h; carried by pointer only
}

namespace omega {

/// One conjunct answer: X bound to `v`, Y bound to `n`, at edit/relaxation
/// distance `distance` (the paper's triple (v, n, d)).
struct Answer {
  NodeId v = kInvalidNode;
  NodeId n = kInvalidNode;
  Cost distance = 0;

  bool operator==(const Answer&) const = default;
};

/// Counters exposed by evaluators; benches report these to explain the
/// paper's intermediate-result blow-ups.
struct EvaluatorStats {
  uint64_t tuples_popped = 0;
  uint64_t tuples_pushed = 0;
  uint64_t succ_expansions = 0;        ///< non-final tuples expanded
  uint64_t neighbor_group_fetches = 0; ///< NeighboursByEdge-equivalent calls
  uint64_t answers_emitted = 0;
  uint64_t seeds_added = 0;
  uint64_t max_dictionary_size = 0;
  uint64_t max_join_live = 0;          ///< rank-join tables + heap high-water
  uint64_t rounds = 0;                 ///< distance-aware restarts

  void MergeFrom(const EvaluatorStats& other) {
    tuples_popped += other.tuples_popped;
    tuples_pushed += other.tuples_pushed;
    succ_expansions += other.succ_expansions;
    neighbor_group_fetches += other.neighbor_group_fetches;
    answers_emitted += other.answers_emitted;
    seeds_added += other.seeds_added;
    if (other.max_dictionary_size > max_dictionary_size) {
      max_dictionary_size = other.max_dictionary_size;
    }
    if (other.max_join_live > max_join_live) {
      max_join_live = other.max_join_live;
    }
    rounds += other.rounds;
  }
};

/// Pull-based stream of conjunct answers in non-decreasing distance order
/// (RocksDB-iterator style). Next() returns false on exhaustion *or* error;
/// check status() to distinguish.
class AnswerStream {
 public:
  virtual ~AnswerStream() = default;

  /// Produces the next answer. Returns false when exhausted or failed.
  virtual bool Next(Answer* out) = 0;

  /// OK while streaming / exhausted; kResourceExhausted when the evaluator
  /// hit its memory budget (the paper's '?' cells in Fig. 10).
  virtual const Status& status() const = 0;

  virtual EvaluatorStats stats() const { return {}; }
};

/// Knobs for a single conjunct evaluation. Defaults follow the paper's
/// configuration (§3.3–§4.1).
struct EvaluatorOptions {
  /// Coroutine batch size for (?X, R, ?Y) seeding ("the default is 100").
  size_t batch_size = 100;

  /// Pop final tuples before non-final ones at equal distance (§3.3); can be
  /// disabled for the ablation bench.
  bool prioritize_final_tuples = true;

  /// Never re-expand a (v, n, s) triple (§3.4); disabling this reverts to
  /// unmemoized search (ablation only — expect blow-ups on cyclic data).
  bool use_visited_set = true;

  /// Upper bound on live tuples (D_R + visited + answers); 0 = unlimited.
  /// Exceeding it fails the query with kResourceExhausted, reproducing the
  /// paper's out-of-memory '?' results without taking the process down.
  size_t max_live_tuples = 0;

  /// Distance ceiling ψ for distance-aware retrieval; tuples costlier than
  /// this are never materialised (kInfiniteCost = unbounded).
  Cost max_distance = kInfiniteCost;

  /// How many answers the caller ultimately wants (0 = unknown). Round-based
  /// optimisations use it to stop a round early once the quota is covered —
  /// the disjunction optimisation's reason for adaptive branch ordering:
  /// cheap branches fill the quota so expensive ones are never evaluated.
  size_t top_k_hint = 0;

  /// Cooperative cancellation / deadline token, polled at stream-pull
  /// granularity by ConjunctEvaluator and RankJoinStream. A null (default)
  /// token costs one branch per pull. Expiry fails the stream with
  /// kDeadlineExceeded / kCancelled — distinct from the kResourceExhausted
  /// budget failures above.
  CancelToken cancel;

  /// Optional per-query trace sink (obs/trace.h): when non-null, the engine
  /// records plan/compile spans and index-probe substitution decisions, and
  /// the service adds queue-wait / cache / execute spans. Not owned; must
  /// outlive the evaluation. Null (default) costs one branch per site.
  TraceRecorder* trace = nullptr;

  ApproxOptions approx;
  RelaxOptions relax;
};

}  // namespace omega

#endif  // OMEGA_EVAL_ANSWER_H_
