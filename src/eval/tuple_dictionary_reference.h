// The seed's std::map-based D_R dictionary, kept verbatim as the executable
// specification of the removal discipline. TupleDictionary (the monotone
// bucket queue that replaced it on the hot path) must produce byte-identical
// removal order — tests/tuple_dictionary_test.cc asserts this over random
// sweeps, and bench_micro_substrate races the two implementations.
#ifndef OMEGA_EVAL_TUPLE_DICTIONARY_REFERENCE_H_
#define OMEGA_EVAL_TUPLE_DICTIONARY_REFERENCE_H_

#include <map>
#include <vector>

#include "eval/tuple_dictionary.h"

namespace omega {

class ReferenceTupleDictionary {
 public:
  explicit ReferenceTupleDictionary(bool prioritize_final = true)
      : prioritize_final_(prioritize_final) {}

  void Add(const EvalTuple& tuple);

  bool Empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Lowest distance present. Precondition: !Empty().
  Cost MinDistance() const { return buckets_.begin()->first; }

  /// Removes per the §3.3 discipline. Precondition: !Empty().
  EvalTuple Remove();

  void Clear();

 private:
  struct Bucket {
    std::vector<EvalTuple> final_items;
    std::vector<EvalTuple> nonfinal_items;
  };

  std::map<Cost, Bucket> buckets_;
  size_t size_ = 0;
  bool prioritize_final_;
};

}  // namespace omega

#endif  // OMEGA_EVAL_TUPLE_DICTIONARY_REFERENCE_H_
