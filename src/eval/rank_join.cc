#include "eval/rank_join.h"

#include <algorithm>
#include <cassert>

namespace omega {
namespace {

/// Min-heap comparator for std::push_heap / std::pop_heap over candidates.
struct HeapGreater {
  bool operator()(const Binding& a, const Binding& b) const {
    return a.distance > b.distance;
  }
};

}  // namespace

// --- VarCatalog --------------------------------------------------------------

VarId VarCatalog::GetOrAdd(std::string_view name) {
  const VarId found = Find(name);
  if (found != kInvalidVar) return found;
  names_.emplace_back(name);
  return static_cast<VarId>(names_.size() - 1);
}

VarId VarCatalog::Find(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<VarId>(i);
  }
  return kInvalidVar;
}

// --- ConjunctBindingStream ---------------------------------------------------

ConjunctBindingStream::ConjunctBindingStream(
    std::unique_ptr<AnswerStream> answers, size_t width, VarId source_slot,
    VarId target_slot)
    : answers_(std::move(answers)),
      width_(width),
      source_slot_(source_slot),
      target_slot_(target_slot) {
  if (source_slot_ != kInvalidVar) variables_.push_back(source_slot_);
  if (target_slot_ != kInvalidVar && target_slot_ != source_slot_) {
    variables_.push_back(target_slot_);
  }
  std::sort(variables_.begin(), variables_.end());
}

bool ConjunctBindingStream::Next(Binding* out) {
  Answer answer;
  while (answers_->Next(&answer)) {
    Binding binding(width_);
    binding.distance = answer.distance;
    bool consistent = true;
    if (source_slot_ != kInvalidVar) {
      consistent = binding.Bind(source_slot_, answer.v);
    }
    if (consistent && target_slot_ != kInvalidVar) {
      consistent = binding.Bind(target_slot_, answer.n);
    }
    if (!consistent) continue;  // (?X, R, ?X) with v != n
    *out = std::move(binding);
    return true;
  }
  return false;
}

// --- RankJoinStream ----------------------------------------------------------

RankJoinStream::RankJoinStream(std::unique_ptr<BindingStream> left,
                               std::unique_ptr<BindingStream> right,
                               size_t max_live_tuples, CancelToken cancel)
    : max_live_tuples_(max_live_tuples), cancel_(std::move(cancel)) {
  left_.stream = std::move(left);
  right_.stream = std::move(right);
  std::set_intersection(left_.stream->variables().begin(),
                        left_.stream->variables().end(),
                        right_.stream->variables().begin(),
                        right_.stream->variables().end(),
                        std::back_inserter(shared_vars_));
  std::set_union(left_.stream->variables().begin(),
                 left_.stream->variables().end(),
                 right_.stream->variables().begin(),
                 right_.stream->variables().end(),
                 std::back_inserter(variables_));
}

uint64_t RankJoinStream::KeyFor(const Binding& b) const {
  // Exact for joins sharing at most two variables (every join with a
  // single-conjunct input); bushy plans can join two subtrees on wider
  // shared sets, which fold FNV-style. Folding can only over-group — the
  // merge in Advance re-checks per-variable consistency, so a folded
  // collision costs a wasted probe, never a wrong row.
  if (shared_vars_.size() <= 2) {
    return PackPair(
        shared_vars_.empty() ? kInvalidNode : b.Get(shared_vars_[0]),
        shared_vars_.size() < 2 ? kInvalidNode : b.Get(shared_vars_[1]));
  }
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const VarId var : shared_vars_) {
    h = (h ^ b.Get(var)) * 0x100000001b3ULL;
  }
  return h;
}

void RankJoinStream::Advance(Side* side, Side* other, bool side_is_left) {
  Binding binding;
  if (!side->stream->Next(&binding)) {
    side->exhausted = true;
    if (!side->stream->status().ok()) status_ = side->stream->status();
    return;
  }
  if (!side->seen_any) {
    side->seen_any = true;
    side->bottom = binding.distance;
  }
  side->top = binding.distance;

  const uint64_t key = KeyFor(binding);
  // Join the new arrival against everything stored on the other side. The
  // merged row copies the (wide) left row and binds the right conjunct's few
  // variables on top.
  const std::vector<VarId>& right_vars = right_.stream->variables();
  if (const std::vector<Binding>* matches = other->table.Find(key)) {
    for (const Binding& match : *matches) {
      const Binding& left_row = side_is_left ? binding : match;
      const Binding& right_row = side_is_left ? match : binding;
      Binding merged = left_row;
      bool ok = true;
      for (const VarId var : right_vars) {
        if (!merged.Bind(var, right_row.Get(var))) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;  // folded-key collision (see KeyFor)
      merged.distance = binding.distance + match.distance;
      heap_.push_back(std::move(merged));
      std::push_heap(heap_.begin(), heap_.end(), HeapGreater{});
    }
  }
  // A stored row is only ever probed by future arrivals on the other side;
  // once that side is exhausted the row can never match again, so the copy
  // into the table is skipped entirely.
  if (!other->exhausted) {
    side->table.FindOrInsert(key).push_back(std::move(binding));
    ++side->rows;
  }
  CheckBudget();
}

Cost RankJoinStream::Threshold() const {
  // A future pair involves a new left row (distance >= left.top) with any
  // seen-or-future right row (>= right.bottom), or vice versa. Before a side
  // produces anything its bottom is 0 (conservative lower bound).
  Cost via_new_left = kInfiniteCost;
  Cost via_new_right = kInfiniteCost;
  if (!left_.exhausted) via_new_left = left_.top + right_.bottom;
  if (!right_.exhausted) via_new_right = right_.top + left_.bottom;
  return std::min(via_new_left, via_new_right);
}

void RankJoinStream::CheckBudget() {
  const size_t live = left_.rows + right_.rows + heap_.size();
  if (live > peak_live_) peak_live_ = live;
  if (max_live_tuples_ == 0 || !status_.ok()) return;
  if (live > max_live_tuples_) {
    status_ = Status::ResourceExhausted(
        "rank join exceeded max_live_tuples=" +
        std::to_string(max_live_tuples_));
  }
}

Binding RankJoinStream::PopCandidate() {
  std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
  Binding out = std::move(heap_.back());
  heap_.pop_back();
  return out;
}

bool RankJoinStream::Next(Binding* out) {
  if (!status_.ok()) return false;
  for (;;) {
    // Polled per child pull: children check their own token too, but a join
    // over already-exhausted-table probes must also notice expiry itself.
    // Null tokens (every non-service caller) cost one branch.
    if (cancel_.valid()) {
      Status s = cancel_.CheckStrided(&cancel_tick_, "rank join");
      if (!s.ok()) {
        status_ = std::move(s);
        return false;
      }
    }
    // A side that is exhausted with nothing stored can never pair with a
    // future arrival, so the candidate set is final: drain the heap and stop
    // without pulling the sibling any further (the zero-answer
    // short-circuit — an empty most-selective input must not make the join
    // drain its live side to exhaustion).
    const bool left_dead = left_.exhausted && left_.rows == 0;
    const bool right_dead = right_.exhausted && right_.rows == 0;
    if (left_dead || right_dead) {
      if (heap_.empty()) return false;
      *out = PopCandidate();
      ++emitted_;
      return true;
    }
    if (!heap_.empty() && heap_.front().distance <= Threshold()) {
      *out = PopCandidate();
      ++emitted_;
      return true;
    }
    if (left_.exhausted && right_.exhausted) {
      if (heap_.empty()) return false;
      *out = PopCandidate();
      ++emitted_;
      return true;
    }
    // Alternate pulls, preferring the side that is behind (HRJN's simple
    // round-robin policy), skipping exhausted sides.
    const bool pick_left =
        right_.exhausted || (!left_.exhausted && pull_left_next_);
    pull_left_next_ = !pick_left;
    Advance(pick_left ? &left_ : &right_, pick_left ? &right_ : &left_,
            pick_left);
    if (!status_.ok()) return false;
  }
}

EvaluatorStats RankJoinStream::stats() const {
  EvaluatorStats total = left_.stream->stats();
  total.MergeFrom(right_.stream->stats());
  if (peak_live_ > total.max_join_live) total.max_join_live = peak_live_;
  return total;
}

EvaluatorStats RankJoinStream::OperatorStats() const {
  EvaluatorStats own;
  own.answers_emitted = emitted_;
  own.max_join_live = peak_live_;
  return own;
}

std::unique_ptr<BindingStream> BuildJoinTree(
    std::vector<std::unique_ptr<BindingStream>> streams,
    size_t max_live_tuples, CancelToken cancel) {
  assert(!streams.empty());
  std::unique_ptr<BindingStream> tree = std::move(streams[0]);
  for (size_t i = 1; i < streams.size(); ++i) {
    tree = std::make_unique<RankJoinStream>(std::move(tree),
                                            std::move(streams[i]),
                                            max_live_tuples, cancel);
  }
  return tree;
}

}  // namespace omega
