#include "eval/rank_join.h"

#include <algorithm>
#include <cassert>

namespace omega {

NodeId Binding::Lookup(const std::string& name) const {
  for (const auto& [var, value] : vars) {
    if (var == name) return value;
  }
  return kInvalidNode;
}

bool Binding::Bind(const std::string& name, NodeId value) {
  auto it = std::lower_bound(
      vars.begin(), vars.end(), name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  if (it != vars.end() && it->first == name) return it->second == value;
  vars.insert(it, {name, value});
  return true;
}

// --- ConjunctBindingStream ---------------------------------------------------

ConjunctBindingStream::ConjunctBindingStream(
    std::unique_ptr<AnswerStream> answers, Endpoint eval_source,
    Endpoint eval_target)
    : answers_(std::move(answers)),
      source_(std::move(eval_source)),
      target_(std::move(eval_target)) {
  if (source_.is_variable) variables_.push_back(source_.name);
  if (target_.is_variable && (!source_.is_variable ||
                              target_.name != source_.name)) {
    variables_.push_back(target_.name);
  }
  std::sort(variables_.begin(), variables_.end());
}

bool ConjunctBindingStream::Next(Binding* out) {
  Answer answer;
  while (answers_->Next(&answer)) {
    Binding binding;
    binding.distance = answer.distance;
    bool consistent = true;
    if (source_.is_variable) consistent = binding.Bind(source_.name, answer.v);
    if (consistent && target_.is_variable) {
      consistent = binding.Bind(target_.name, answer.n);
    }
    if (!consistent) continue;  // (?X, R, ?X) with v != n
    *out = std::move(binding);
    return true;
  }
  return false;
}

// --- RankJoinStream ----------------------------------------------------------

RankJoinStream::RankJoinStream(std::unique_ptr<BindingStream> left,
                               std::unique_ptr<BindingStream> right) {
  left_.stream = std::move(left);
  right_.stream = std::move(right);
  std::set_intersection(left_.stream->variables().begin(),
                        left_.stream->variables().end(),
                        right_.stream->variables().begin(),
                        right_.stream->variables().end(),
                        std::back_inserter(shared_vars_));
  std::set_union(left_.stream->variables().begin(),
                 left_.stream->variables().end(),
                 right_.stream->variables().begin(),
                 right_.stream->variables().end(),
                 std::back_inserter(variables_));
}

std::string RankJoinStream::KeyFor(const Binding& b) const {
  std::string key;
  for (const std::string& var : shared_vars_) {
    key += std::to_string(b.Lookup(var));
    key += '|';
  }
  return key;
}

void RankJoinStream::Advance(Side* side, Side* other, bool side_is_left) {
  Binding binding;
  if (!side->stream->Next(&binding)) {
    side->exhausted = true;
    if (!side->stream->status().ok()) status_ = side->stream->status();
    return;
  }
  if (!side->seen_any) {
    side->seen_any = true;
    side->bottom = binding.distance;
  }
  side->top = binding.distance;

  const std::string key = KeyFor(binding);
  // Join the new arrival against everything seen on the other side.
  auto it = other->table.find(key);
  if (it != other->table.end()) {
    for (const Binding& match : it->second) {
      Binding merged = side_is_left ? binding : match;
      const Binding& addition = side_is_left ? match : binding;
      bool ok = true;
      for (const auto& [var, value] : addition.vars) {
        if (!merged.Bind(var, value)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;  // only possible via shared key, so never here
      merged.distance = binding.distance + match.distance;
      heap_.push(Candidate{std::move(merged)});
    }
  }
  side->table[key].push_back(std::move(binding));
}

Cost RankJoinStream::Threshold() const {
  // A future pair involves a new left row (distance >= left.top) with any
  // seen-or-future right row (>= right.bottom), or vice versa. Before a side
  // produces anything its bottom is 0 (conservative lower bound).
  Cost via_new_left = kInfiniteCost;
  Cost via_new_right = kInfiniteCost;
  if (!left_.exhausted) via_new_left = left_.top + right_.bottom;
  if (!right_.exhausted) via_new_right = right_.top + left_.bottom;
  return std::min(via_new_left, via_new_right);
}

bool RankJoinStream::Next(Binding* out) {
  if (!status_.ok()) return false;
  for (;;) {
    if (!heap_.empty() && heap_.top().binding.distance <= Threshold()) {
      *out = heap_.top().binding;
      heap_.pop();
      return true;
    }
    if (left_.exhausted && right_.exhausted) {
      if (heap_.empty()) return false;
      *out = heap_.top().binding;
      heap_.pop();
      return true;
    }
    // Alternate pulls, preferring the side that is behind (HRJN's simple
    // round-robin policy), skipping exhausted sides.
    const bool pick_left =
        right_.exhausted || (!left_.exhausted && pull_left_next_);
    pull_left_next_ = !pick_left;
    Advance(pick_left ? &left_ : &right_, pick_left ? &right_ : &left_,
            pick_left);
    if (!status_.ok()) return false;
  }
}

EvaluatorStats RankJoinStream::stats() const {
  EvaluatorStats total = left_.stream->stats();
  total.MergeFrom(right_.stream->stats());
  return total;
}

std::unique_ptr<BindingStream> BuildJoinTree(
    std::vector<std::unique_ptr<BindingStream>> streams) {
  assert(!streams.empty());
  std::unique_ptr<BindingStream> tree = std::move(streams[0]);
  for (size_t i = 1; i < streams.size(); ++i) {
    tree = std::make_unique<RankJoinStream>(std::move(tree),
                                            std::move(streams[i]));
  }
  return tree;
}

}  // namespace omega
