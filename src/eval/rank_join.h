// Ranked join for multi-conjunct queries (§3: "performing a ranked join for
// multi-conjunct queries"). Conjunct answer streams are lifted to binding
// streams and combined with binary HRJN operators (Ilyas et al., VLDB 2004)
// composed left-deep; outputs are emitted in non-decreasing total distance.
#ifndef OMEGA_EVAL_RANK_JOIN_H_
#define OMEGA_EVAL_RANK_JOIN_H_

#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/answer.h"
#include "eval/conjunct_evaluator.h"

namespace omega {

/// A (partial) variable assignment with an accumulated distance. Variables
/// are kept sorted by name so equal assignments have equal representations.
struct Binding {
  std::vector<std::pair<std::string, NodeId>> vars;  // sorted by name
  Cost distance = 0;

  /// Value bound to `name`, or kInvalidNode.
  NodeId Lookup(const std::string& name) const;
  /// Inserts or checks consistency; returns false on conflicting value.
  bool Bind(const std::string& name, NodeId value);
};

/// Pull stream of bindings in non-decreasing distance.
class BindingStream {
 public:
  virtual ~BindingStream() = default;
  virtual bool Next(Binding* out) = 0;
  virtual const Status& status() const = 0;
  /// Variable names this stream binds (sorted).
  virtual const std::vector<std::string>& variables() const = 0;
  virtual EvaluatorStats stats() const { return {}; }
};

/// Lifts a conjunct AnswerStream to bindings: Answer.v binds the evaluated
/// source endpoint, Answer.n the target. Conjuncts like (?X, R, ?X) are
/// filtered for endpoint agreement here.
class ConjunctBindingStream : public BindingStream {
 public:
  ConjunctBindingStream(std::unique_ptr<AnswerStream> answers,
                        Endpoint eval_source, Endpoint eval_target);

  bool Next(Binding* out) override;
  const Status& status() const override { return answers_->status(); }
  const std::vector<std::string>& variables() const override {
    return variables_;
  }
  EvaluatorStats stats() const override { return answers_->stats(); }

 private:
  std::unique_ptr<AnswerStream> answers_;
  Endpoint source_;
  Endpoint target_;
  std::vector<std::string> variables_;
};

/// Binary hash rank join. Maintains per-side hash tables keyed on the shared
/// variables and a candidate min-heap; a candidate is released once its total
/// distance is <= the HRJN threshold (the best total any future pairing
/// could achieve). With no shared variables it degenerates to a ranked
/// cross product.
class RankJoinStream : public BindingStream {
 public:
  RankJoinStream(std::unique_ptr<BindingStream> left,
                 std::unique_ptr<BindingStream> right);

  bool Next(Binding* out) override;
  const Status& status() const override { return status_; }
  const std::vector<std::string>& variables() const override {
    return variables_;
  }
  EvaluatorStats stats() const override;

 private:
  struct Side {
    std::unique_ptr<BindingStream> stream;
    std::unordered_map<std::string, std::vector<Binding>> table;  // key -> rows
    Cost bottom = 0;      // first distance seen (0 until then: conservative)
    Cost top = 0;         // last distance seen
    bool seen_any = false;
    bool exhausted = false;
  };

  /// Distance-ordered candidate heap entry.
  struct Candidate {
    Binding binding;
    bool operator>(const Candidate& other) const {
      return binding.distance > other.binding.distance;
    }
  };

  std::string KeyFor(const Binding& b) const;
  /// Pulls one binding into `side`, joining it against the other side.
  void Advance(Side* side, Side* other, bool side_is_left);
  /// Smallest total distance a not-yet-formed pair could have.
  Cost Threshold() const;

  Side left_;
  Side right_;
  std::vector<std::string> shared_vars_;
  std::vector<std::string> variables_;
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>>
      heap_;
  bool pull_left_next_ = true;
  Status status_;
};

/// Composes conjunct binding streams into a left-deep rank-join tree
/// (a single stream is returned unchanged).
std::unique_ptr<BindingStream> BuildJoinTree(
    std::vector<std::unique_ptr<BindingStream>> streams);

}  // namespace omega

#endif  // OMEGA_EVAL_RANK_JOIN_H_
