// Ranked join for multi-conjunct queries (§3: "performing a ranked join for
// multi-conjunct queries"). Conjunct answer streams are lifted to binding
// streams and combined with binary HRJN operators (Ilyas et al., VLDB 2004)
// composed into the tree shape the cost-based planner chose (src/plan/);
// outputs are emitted in non-decreasing total distance.
//
// The data plane is compiled: QueryEngine::Execute numbers the query's
// variables into dense VarId slots once at compile time, a Binding is a
// fixed-width NodeId slot vector (O(1) lookup, no per-row strings), and the
// per-side hash tables key on packed integers through the flat-hash
// containers. The join enforces EvaluatorOptions::max_live_tuples the same
// way ConjunctEvaluator does: side tables plus the candidate heap count
// toward the budget and exceeding it fails with kResourceExhausted.
#ifndef OMEGA_EVAL_RANK_JOIN_H_
#define OMEGA_EVAL_RANK_JOIN_H_

#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"
#include "common/pack.h"
#include "eval/answer.h"
#include "eval/conjunct_evaluator.h"

namespace omega {

/// Dense per-query variable slot (an index into VarCatalog / Binding::slots).
using VarId = uint32_t;
inline constexpr VarId kInvalidVar = std::numeric_limits<VarId>::max();

/// Per-query variable catalogue: names are interned to dense VarId slots
/// once at compile time, so the run-time data plane never touches strings.
/// Linear scans are fine here — catalogues hold a handful of names and are
/// only consulted while compiling the query.
class VarCatalog {
 public:
  /// Slot of `name`, interning it on first use.
  VarId GetOrAdd(std::string_view name);
  /// Slot of `name`, or kInvalidVar if it was never interned.
  VarId Find(std::string_view name) const;

  size_t size() const { return names_.size(); }
  const std::string& NameOf(VarId id) const { return names_[id]; }

 private:
  std::vector<std::string> names_;  // index == VarId
};

/// A (partial) variable assignment with an accumulated distance: one NodeId
/// slot per catalogue variable, kInvalidNode where unbound.
struct Binding {
  std::vector<NodeId> slots;
  Cost distance = 0;

  Binding() = default;
  explicit Binding(size_t width) : slots(width, kInvalidNode) {}

  /// Value bound to `var`, or kInvalidNode.
  NodeId Get(VarId var) const { return slots[var]; }
  /// Inserts or checks consistency; returns false on conflicting value.
  bool Bind(VarId var, NodeId value) {
    if (slots[var] != kInvalidNode) return slots[var] == value;
    slots[var] = value;
    return true;
  }
};

/// Pull stream of bindings in non-decreasing distance. Every binding a
/// stream produces has the full catalogue width and binds exactly the slots
/// listed by variables().
class BindingStream {
 public:
  virtual ~BindingStream() = default;
  virtual bool Next(Binding* out) = 0;
  virtual const Status& status() const = 0;
  /// Variable slots this stream binds (sorted ascending).
  virtual const std::vector<VarId>& variables() const = 0;
  virtual EvaluatorStats stats() const { return {}; }
  /// Counters of this operator alone, children excluded (EXPLAIN renders a
  /// per-operator breakdown; stats() merges the whole subtree).
  virtual EvaluatorStats OperatorStats() const { return stats(); }
};

/// Lifts a conjunct AnswerStream to bindings: Answer.v binds `source_slot`,
/// Answer.n binds `target_slot` (kInvalidVar for a constant endpoint).
/// Conjuncts like (?X, R, ?X) pass the same slot twice and are filtered for
/// endpoint agreement here.
class ConjunctBindingStream : public BindingStream {
 public:
  ConjunctBindingStream(std::unique_ptr<AnswerStream> answers, size_t width,
                        VarId source_slot, VarId target_slot);

  bool Next(Binding* out) override;
  const Status& status() const override { return answers_->status(); }
  const std::vector<VarId>& variables() const override { return variables_; }
  EvaluatorStats stats() const override { return answers_->stats(); }

 private:
  std::unique_ptr<AnswerStream> answers_;
  size_t width_;
  VarId source_slot_;
  VarId target_slot_;
  std::vector<VarId> variables_;
};

/// Binary hash rank join. Maintains per-side flat-hash tables keyed on the
/// packed shared-variable values and a candidate min-heap; a candidate is
/// released once its total distance is <= the HRJN threshold (the best total
/// any future pairing could achieve). With no shared variables it
/// degenerates to a ranked cross product.
class RankJoinStream : public BindingStream {
 public:
  /// `max_live_tuples` bounds stored side-table rows + heap candidates for
  /// this operator (0 = unlimited); exceeding it fails the stream with
  /// kResourceExhausted, mirroring ConjunctEvaluator::CheckBudget. `cancel`
  /// is polled once per child pull, failing the stream with
  /// kDeadlineExceeded / kCancelled (distinct from the budget failure).
  RankJoinStream(std::unique_ptr<BindingStream> left,
                 std::unique_ptr<BindingStream> right,
                 size_t max_live_tuples = 0, CancelToken cancel = {});

  bool Next(Binding* out) override;
  const Status& status() const override { return status_; }
  const std::vector<VarId>& variables() const override { return variables_; }
  EvaluatorStats stats() const override;
  /// This operator's own counters: rows emitted (answers_emitted) and the
  /// tables + heap high-water (max_join_live).
  EvaluatorStats OperatorStats() const override;

 private:
  struct Side {
    std::unique_ptr<BindingStream> stream;
    FlatHashMap<uint64_t, std::vector<Binding>> table;  // key -> stored rows
    size_t rows = 0;      // rows stored across all table groups
    Cost bottom = 0;      // first distance seen (0 until then: conservative)
    Cost top = 0;         // last distance seen
    bool seen_any = false;
    bool exhausted = false;
  };

  uint64_t KeyFor(const Binding& b) const;
  /// Pulls one binding into `side`, joining it against the other side.
  void Advance(Side* side, Side* other, bool side_is_left);
  /// Smallest total distance a not-yet-formed pair could have.
  Cost Threshold() const;
  /// Fails the stream once stored rows + heap candidates exceed the budget.
  void CheckBudget();
  /// Moves the cheapest candidate out of the heap.
  Binding PopCandidate();

  Side left_;
  Side right_;
  std::vector<VarId> shared_vars_;
  std::vector<VarId> variables_;
  std::vector<Binding> heap_;  // min-heap on distance via std::*_heap
  size_t max_live_tuples_ = 0;
  CancelToken cancel_;
  uint32_t cancel_tick_ = 0;  // strided-deadline-check counter
  size_t peak_live_ = 0;  // high-water mark of stored rows + heap candidates
  size_t emitted_ = 0;    // rows this operator released
  bool pull_left_next_ = true;
  Status status_;
};

/// Composes conjunct binding streams into a left-deep rank-join tree in the
/// given order (a single stream is returned unchanged) — the seed behaviour,
/// kept for direct stream composition; the engine goes through
/// plan::CompilePlan, which executes arbitrary tree shapes. Each join
/// operator in the tree enforces `max_live_tuples` on its own tables and
/// heap.
std::unique_ptr<BindingStream> BuildJoinTree(
    std::vector<std::unique_ptr<BindingStream>> streams,
    size_t max_live_tuples = 0, CancelToken cancel = {});

}  // namespace omega

#endif  // OMEGA_EVAL_RANK_JOIN_H_
