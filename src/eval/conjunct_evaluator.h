// Incremental ranked evaluation of one query conjunct: the paper's Open,
// GetNext and Succ procedures (§3.3–3.4) over the weighted product automaton
// H_R of the (possibly APPROX/RELAX-augmented) query NFA and the data graph.
// Answers stream out in non-decreasing distance; the product is explored
// best-first and never materialised.
#ifndef OMEGA_EVAL_CONJUNCT_EVALUATOR_H_
#define OMEGA_EVAL_CONJUNCT_EVALUATOR_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/flat_hash.h"
#include "common/pack.h"
#include "eval/answer.h"
#include "eval/initial_node_stream.h"
#include "eval/tuple_dictionary.h"
#include "ontology/ontology.h"
#include "rpq/query.h"
#include "store/graph_store.h"

namespace omega {

/// A conjunct compiled to its final automaton. Case 2 of Open — a constant
/// target with variable source — is normalised here by reversing the regex
/// (linear on the AST), so `eval_source`/`eval_target` are the endpoints
/// *after* any reversal: Answer.v always binds eval_source and Answer.n
/// always binds eval_target.
struct PreparedConjunct {
  Nfa nfa;
  Endpoint eval_source;
  Endpoint eval_target;
  ConjunctMode mode = ConjunctMode::kExact;
  bool reversed = false;

  /// Shape analysis of the *evaluated* regex (post-reversal), filled by
  /// PrepareConjunct. `closure_shape` is set when the regex is a
  /// single-atom closure ({a^k : k >= min_hops}) — the shape the
  /// reachability index can answer; `max_exact_path_edges` is the longest
  /// accepted path (nullopt = unbounded), which the distance sketch uses
  /// to turn hop distance into a cost floor.
  std::optional<ClosureShape> closure_shape;
  std::optional<uint32_t> max_exact_path_edges;
};

/// Compiles a conjunct: Thompson construction, weighted ε-removal, then the
/// APPROX (A_R) or RELAX (M^K_R) augmentation. `ontology` is required for
/// RELAX conjuncts and otherwise may be null.
Result<PreparedConjunct> PrepareConjunct(const Conjunct& conjunct,
                                         const GraphStore& graph,
                                         const BoundOntology* ontology,
                                         const EvaluatorOptions& options);

class ConjunctEvaluator : public AnswerStream {
 public:
  /// `prepared` must outlive the evaluator (distance-aware mode re-runs
  /// fresh evaluators over one shared PreparedConjunct).
  ConjunctEvaluator(const GraphStore* graph, const BoundOntology* ontology,
                    const PreparedConjunct* prepared,
                    const EvaluatorOptions& options);

  /// Seeds D_R (the paper's Open). Idempotent; called lazily by Next() too.
  void Open();

  bool Next(Answer* out) override;
  const Status& status() const override { return status_; }
  EvaluatorStats stats() const override { return stats_; }

  /// True if some tuple or answer exceeded options.max_distance — i.e. a
  /// higher distance ceiling could still produce more answers.
  bool truncated_by_distance() const { return truncated_by_distance_; }

 private:
  struct VisitedKey {
    uint64_t vn;  // v << 32 | n
    StateId s;
    bool operator==(const VisitedKey&) const = default;
  };
  struct VisitedKeyHash {
    size_t operator()(const VisitedKey& k) const {
      return static_cast<size_t>(
          HashMix64(k.vn ^ (static_cast<uint64_t>(k.s) *
                            0x9e3779b97f4a7c15ULL)));
    }
  };

  /// Duplicate-answer key: answers are deduplicated on variable bindings, so
  /// for a constant source the v component is normalised — RELAX ancestor
  /// seeds (different v per seed class) must not re-answer the same ?X.
  uint64_t AnswerKey(NodeId v, NodeId n) const {
    return PackPair(prepared_->eval_source.is_variable ? v : kInvalidNode, n);
  }

  /// Adds a tuple unless it violates the distance ceiling (sets the
  /// truncation flag) or the memory budget (fails the evaluator).
  void AddTuple(const EvalTuple& tuple);

  /// Keeps the invariant that no tuple with d > 0 is popped while unseeded
  /// initial nodes remain (lines 14–17 of GetNext).
  void RefillSeeds();

  /// The Succ function: expands (s, n), adding successor tuples. Neighbour
  /// sets are fetched once per SameNeighborGroup run of transitions.
  void ExpandTuple(const EvalTuple& tuple);

  /// Appends the (sorted, distinct) neighbours of `n` reachable by `t`.
  void CollectNeighbors(NodeId n, const NfaTransition& t,
                        std::vector<NodeId>* out) const;

  bool TargetMatches(NodeId n) const;
  void CheckBudget();

  const GraphStore* graph_;
  const BoundOntology* ontology_;
  const PreparedConjunct* prepared_;
  EvaluatorOptions options_;

  TupleDictionary dict_;
  FlatHashSet<VisitedKey, VisitedKeyHash> visited_;
  FlatHashMap<uint64_t, Cost> answers_;
  std::unique_ptr<InitialNodeStream> stream_;
  std::vector<NodeId> scratch_neighbors_;

  std::optional<NodeId> source_node_;  // resolved constant source
  std::optional<NodeId> target_node_;  // resolved constant target
  bool target_is_constant_ = false;

  bool opened_ = false;
  uint32_t cancel_tick_ = 0;  // strided-deadline-check counter
  bool truncated_by_distance_ = false;
  Status status_;
  EvaluatorStats stats_;
};

}  // namespace omega

#endif  // OMEGA_EVAL_CONJUNCT_EVALUATOR_H_
