// Batched seeding of (?X, R, ?Y) conjuncts — the paper's coroutine
// implementation of GetAllStartNodesByLabel / GetAllNodesByLabel (§3.3):
// nodes that can take some transition out of the start state are yielded
// first, grouped by increasing transition cost; optionally every remaining
// node follows (needed when the start state is final with positive weight,
// making *every* node an answer at that weight). Batches are produced on
// demand so nodes not needed for the requested top-k are never materialised.
#ifndef OMEGA_EVAL_INITIAL_NODE_STREAM_H_
#define OMEGA_EVAL_INITIAL_NODE_STREAM_H_

#include <span>
#include <vector>

#include "automata/nfa.h"
#include "ontology/ontology.h"
#include "store/bitmap.h"
#include "store/graph_store.h"

namespace omega {

class InitialNodeStream {
 public:
  /// `ontology` may be null (exact / APPROX conjuncts).
  /// `include_remaining` selects GetAllNodesByLabel (true) vs
  /// GetAllStartNodesByLabel (false) behaviour.
  InitialNodeStream(const GraphStore* graph, const BoundOntology* ontology,
                    const Nfa* nfa, bool include_remaining, size_t batch_size);

  /// Next batch in priority order (most promising node first); empty span
  /// when exhausted. Spans are valid until the next call.
  std::span<const NodeId> NextBatch();

  bool Exhausted() const;

  size_t total_yielded() const { return total_yielded_; }

 private:
  /// Lazily materialises the next non-empty group into group_nodes_.
  void AdvanceGroup();

  /// Sorted distinct candidate nodes for one transition group.
  std::vector<NodeId> CandidatesFor(const NfaTransition& t) const;

  const GraphStore* graph_;
  const BoundOntology* ontology_;
  const Nfa* nfa_;
  bool include_remaining_;
  size_t batch_size_;

  std::vector<Cost> group_costs_;  // ascending distinct costs of s0 exits
  size_t next_group_ = 0;          // index into group_costs_; one past =
                                   // the "remaining nodes" pseudo-group
  bool remaining_done_ = false;

  std::vector<NodeId> group_nodes_;  // current group, not yet yielded
  size_t group_pos_ = 0;
  std::vector<NodeId> batch_;  // storage for the last returned span
  Bitmap yielded_;             // nodes already produced by earlier groups
  size_t total_yielded_ = 0;
};

}  // namespace omega

#endif  // OMEGA_EVAL_INITIAL_NODE_STREAM_H_
