#include "datasets/query_sets.h"

#include "rpq/query_parser.h"

namespace omega {

const std::vector<NamedQuery>& L4AllQuerySet() {
  static const std::vector<NamedQuery> kQueries = {
      {"Q1", "(Work Episode, type-, ?X)"},
      {"Q2", "(Information Systems, type-.qualif-, ?X)"},
      {"Q3", "(Software Professionals, type-.job-, ?X)"},
      {"Q4", "(?X, job.type, ?Y)"},
      {"Q5", "(?X, next+, ?Y)"},
      {"Q6", "(?X, prereq+, ?Y)"},
      {"Q7", "(?X, next+|(prereq+.next), ?Y)"},
      {"Q8", "(Mathematical and Computer Sciences, type.prereq+, ?X)"},
      {"Q9", "(Alumni 4 Episode 1, prereq*.next+.prereq, ?X)"},
      {"Q10", "(Librarians, type-, ?X)"},
      {"Q11", "(Librarians, type-.job-.next, ?X)"},
      {"Q12", "(BTEC Introductory Diploma, level-.qualif-.prereq, ?X)"},
  };
  return kQueries;
}

const std::vector<NamedQuery>& YagoQuerySet() {
  static const std::vector<NamedQuery> kQueries = {
      {"Q1", "(Halle_Saxony-Anhalt, bornIn-.marriedTo.hasChild, ?X)"},
      {"Q2", "(Li_Peng, hasChild.gradFrom.gradFrom-.hasWonPrize, ?X)"},
      {"Q3", "(wordnet_ziggurat, type-.locatedIn-, ?X)"},
      {"Q4", "(?X, directed.married.married+.playsFor, ?Y)"},
      {"Q5", "(?X, isConnectedTo.wasBornIn, ?Y)"},
      {"Q6", "(?X, imports.exports-, ?Y)"},
      {"Q7", "(wordnet_city, type-.happenedIn-.participatedIn-, ?X)"},
      {"Q8", "(Annie Haslam, type.type-.actedIn, ?X)"},
      {"Q9", "(UK, (livesIn-.hasCurrency)|(locatedIn-.gradFrom), ?X)"},
  };
  return kQueries;
}

Result<Query> MakeSingleConjunctQuery(const std::string& conjunct_body,
                                      ConjunctMode mode) {
  std::string text = conjunct_body;
  if (mode == ConjunctMode::kApprox) {
    text = "APPROX " + text;
  } else if (mode == ConjunctMode::kRelax) {
    text = "RELAX " + text;
  }
  Result<Conjunct> conjunct = ParseConjunct(text);
  if (!conjunct.ok()) return conjunct.status();

  Query query;
  query.conjuncts.push_back(std::move(conjunct).value());
  const Conjunct& c = query.conjuncts[0];
  if (c.source.is_variable) query.head.push_back(c.source.name);
  if (c.target.is_variable && (!c.source.is_variable ||
                               c.target.name != c.source.name)) {
    query.head.push_back(c.target.name);
  }
  OMEGA_RETURN_NOT_OK(ValidateQuery(query));
  return query;
}

}  // namespace omega
