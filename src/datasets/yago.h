// Synthetic YAGO-like dataset (§4.2). The 2014 SIMPLETAX+CORE dump is not
// shipped with this repository, so a seeded generator produces a graph with
// the published shape: one classification hierarchy of depth 2 with very
// high fan-out, 38 properties, two property hierarchies (2 and 6
// subproperties) with domains and ranges, and skewed connectivity. Seed
// entities (UK, Li_Peng, Halle_Saxony-Anhalt, Annie Haslam, wordnet_ziggurat
// instances, ...) are wired so every query of Fig. 9 reproduces its
// qualitative behaviour from Fig. 10:
//   - Q9 exact returns nothing (only people graduate; only events and places
//     are located in a country — the paper's Example 1);
//   - Q9/APPROX finds answers at distance 1 by substituting gradFrom with
//     gradFrom- (Example 2);
//   - Q9/RELAX finds answers at distance 1 by relaxing gradFrom to its
//     super-property relationLocatedByObject, whose sub-properties include
//     happenedIn (Example 3) — events located in the UK have outgoing
//     happenedIn edges to cities;
//   - Q4/Q5 APPROX generate huge intermediate result sets (they exhaust the
//     evaluator's memory budget when one is configured, the paper's '?').
//
// `scale` ~ 1.0 approximates the paper's 3.1M nodes / 17M edges; the default
// is laptop-quick.
#ifndef OMEGA_DATASETS_YAGO_H_
#define OMEGA_DATASETS_YAGO_H_

#include <cstdint>

#include "ontology/ontology.h"
#include "store/graph_store.h"

namespace omega {

struct YagoOptions {
  double scale = 0.02;
  uint64_t seed = 7;
};

struct YagoDataset {
  GraphStore graph;
  Ontology ontology;
};

YagoDataset GenerateYago(const YagoOptions& options = {});

}  // namespace omega

#endif  // OMEGA_DATASETS_YAGO_H_
