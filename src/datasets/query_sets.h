// The paper's two query sets (Fig. 4 and Fig. 9), expressed in Omega's
// query syntax against the synthetic datasets. Each entry is the conjunct
// body; callers prepend APPROX/RELAX and wrap it into a full query with
// MakeSingleConjunctQuery.
#ifndef OMEGA_DATASETS_QUERY_SETS_H_
#define OMEGA_DATASETS_QUERY_SETS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rpq/query.h"

namespace omega {

struct NamedQuery {
  std::string name;  // "Q1" ...
  std::string conjunct;
};

/// Fig. 4: the L4All query set Q1-Q12.
const std::vector<NamedQuery>& L4AllQuerySet();

/// Fig. 9: the YAGO query set Q1-Q9.
const std::vector<NamedQuery>& YagoQuerySet();

/// Wraps a conjunct body into "(?X[, ?Y]) <- [MODE] (body)" and parses it.
/// The head projects every variable occurring in the conjunct.
Result<Query> MakeSingleConjunctQuery(const std::string& conjunct_body,
                                      ConjunctMode mode);

}  // namespace omega

#endif  // OMEGA_DATASETS_QUERY_SETS_H_
