#include "datasets/l4all.h"

#include <array>
#include <cassert>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "store/graph_builder.h"

namespace omega {
namespace {

// --- Class hierarchies of Fig. 2 ---------------------------------------------
//
// Episode                       depth 2, avg fan-out ~2.67
// Subject                       depth 2, avg fan-out 8
// Occupation                    depth 4, avg fan-out ~4.08
// Education Qualification Level depth 2, avg fan-out ~3.89
// Industry Sector               depth 1, avg fan-out 21

struct Hierarchies {
  std::vector<std::string> episode_leaves;  // leaf Episode classes
  std::vector<bool> episode_leaf_is_work;   // parallel: work vs educational
  std::vector<std::string> subject_leaves;
  std::vector<std::string> occupation_leaves;
  std::vector<std::string> level_leaves;
  std::vector<std::string> sector_leaves;
  // class -> chain of ancestors up to (and including) the hierarchy root.
  std::unordered_map<std::string, std::vector<std::string>> ancestors;
  // class -> children of the same parent (itself included), in a fixed
  // rotation order; drives the sibling-reclassification scaling.
  std::unordered_map<std::string, std::vector<std::string>> sibling_ring;
};

/// Registers `child sc parent` for every child and records bookkeeping.
void AddGroup(OntologyBuilder* builder, Hierarchies* h,
              const std::string& parent,
              const std::vector<std::string>& parent_ancestors,
              const std::vector<std::string>& children,
              std::vector<std::string>* leaf_sink) {
  std::vector<std::string> chain;
  chain.push_back(parent);
  chain.insert(chain.end(), parent_ancestors.begin(), parent_ancestors.end());
  for (const std::string& child : children) {
    Status s = builder->AddSubclass(child, parent);
    assert(s.ok());
    (void)s;
    h->ancestors[child] = chain;
    h->sibling_ring[child] = children;
    if (leaf_sink != nullptr) leaf_sink->push_back(child);
  }
}

Hierarchies BuildOntology(OntologyBuilder* builder) {
  Hierarchies h;

  // Episode: root -> {Work, Educational, Personal} -> 8 leaves.
  builder->GetOrAddClass("Episode");
  AddGroup(builder, &h, "Episode", {},
           {"Work Episode", "Educational Episode", "Personal Episode"},
           nullptr);
  AddGroup(builder, &h, "Work Episode", {"Episode"},
           {"Full-time Work Episode", "Part-time Work Episode",
            "Voluntary Work Episode"},
           &h.episode_leaves);
  AddGroup(builder, &h, "Educational Episode", {"Episode"},
           {"College Episode", "University Episode", "Training Episode"},
           &h.episode_leaves);
  AddGroup(builder, &h, "Personal Episode", {"Episode"},
           {"Travel Episode", "Family Episode"}, &h.episode_leaves);
  for (const std::string& leaf : h.episode_leaves) {
    h.episode_leaf_is_work.push_back(h.ancestors[leaf][0] == "Work Episode");
  }

  // Subject: root with 8 children; "Mathematical and Computer Sciences"
  // carries 8 leaves of its own (depth 2, avg fan-out 8).
  builder->GetOrAddClass("Subject");
  const std::vector<std::string> subject_mid = {
      "Mathematical and Computer Sciences",
      "Engineering",
      "Languages",
      "Business",
      "Creative Arts",
      "Sciences",
      "Social Studies",
      "Education"};
  AddGroup(builder, &h, "Subject", {}, subject_mid, nullptr);
  AddGroup(builder, &h, "Mathematical and Computer Sciences", {"Subject"},
           {"Information Systems", "Computer Science", "Software Engineering",
            "Artificial Intelligence", "Mathematics", "Statistics",
            "Operational Research", "Informatics"},
           &h.subject_leaves);
  // The remaining Subject children double as classification targets.
  for (size_t i = 1; i < subject_mid.size(); ++i) {
    h.subject_leaves.push_back(subject_mid[i]);
  }

  // Occupation: 4 levels (root -> 4 -> 16 -> 16 -> 4), depth 4,
  // avg fan-out = 40 child edges / 10 non-leaf classes = 4.0.
  builder->GetOrAddClass("Occupation");
  const std::array<std::string, 4> occ_l1 = {
      "Professional Occupations", "Technical Occupations",
      "Service Occupations", "Administrative Occupations"};
  AddGroup(builder, &h, "Occupation", {},
           {occ_l1.begin(), occ_l1.end()}, nullptr);
  const std::vector<std::vector<std::string>> occ_l2 = {
      {"Science Professionals", "Health Professionals",
       "Teaching Professionals", "Legal Professionals"},
      {"IT Technicians", "Engineering Technicians", "Lab Technicians",
       "Media Technicians"},
      {"Care Workers", "Leisure Workers", "Protective Workers",
       "Hospitality Workers"},
      {"Clerks", "Secretaries", "Records Staff", "Finance Staff"}};
  for (size_t i = 0; i < occ_l1.size(); ++i) {
    AddGroup(builder, &h, occ_l1[i], {"Occupation"}, occ_l2[i], nullptr);
    for (size_t j = 1; j < occ_l2[i].size(); ++j) {
      h.occupation_leaves.push_back(occ_l2[i][j]);
    }
  }
  // Level 3 under the first level-2 node of each branch.
  const std::vector<std::vector<std::string>> occ_l3 = {
      {"Software Professionals", "Research Scientists", "Statisticians",
       "Analysts"},
      {"Network Technicians", "Support Technicians", "Test Technicians",
       "Field Technicians"},
      {"Child Care Workers", "Elder Care Workers", "Home Care Workers",
       "Community Care Workers"},
      {"Data Entry Clerks", "Filing Clerks", "Accounts Clerks",
       "Postal Clerks"}};
  for (size_t i = 0; i < occ_l1.size(); ++i) {
    AddGroup(builder, &h, occ_l2[i][0], {occ_l1[i], "Occupation"}, occ_l3[i],
             nullptr);
    for (size_t j = 1; j < occ_l3[i].size(); ++j) {
      h.occupation_leaves.push_back(occ_l3[i][j]);
    }
  }
  // Level 4 under "Software Professionals" only — the depth-4 tier where
  // "Librarians" lives (Q10/Q11 probe a deep, low-population class).
  AddGroup(builder, &h, "Software Professionals",
           {"Science Professionals", "Professional Occupations", "Occupation"},
           {"Librarians", "Web Developers", "Database Administrators",
            "Systems Analysts"},
           &h.occupation_leaves);
  h.occupation_leaves.push_back("Software Professionals");

  // Education Qualification Level: root -> 4 -> (4 + 4) leaves.
  builder->GetOrAddClass("Education Qualification Level");
  AddGroup(builder, &h, "Education Qualification Level", {},
           {"Entry Level", "Intermediate Level", "Advanced Level",
            "Higher Level"},
           nullptr);
  AddGroup(builder, &h, "Entry Level", {"Education Qualification Level"},
           {"BTEC Introductory Diploma", "Foundation Certificate",
            "Entry Award", "Skills for Life"},
           &h.level_leaves);
  AddGroup(builder, &h, "Higher Level", {"Education Qualification Level"},
           {"Bachelors Degree", "Masters Degree", "Doctorate",
            "Postgraduate Certificate"},
           &h.level_leaves);
  h.level_leaves.push_back("Intermediate Level");
  h.level_leaves.push_back("Advanced Level");

  // Industry Sector: flat, 21 children.
  builder->GetOrAddClass("Industry Sector");
  std::vector<std::string> sectors;
  for (int i = 1; i <= 21; ++i) {
    sectors.push_back("Sector " + std::to_string(i));
  }
  AddGroup(builder, &h, "Industry Sector", {}, sectors, &h.sector_leaves);

  // Property hierarchy + domains/ranges (§4.1: 'isEpisodeLink' is the one
  // super-property; domains and ranges are defined but unused in Fig. 5-8).
  Status s = builder->AddSubproperty("next", "isEpisodeLink");
  assert(s.ok());
  s = builder->AddSubproperty("prereq", "isEpisodeLink");
  assert(s.ok());
  (void)s;
  builder->SetDomain("next", "Episode");
  builder->SetRange("next", "Episode");
  builder->SetDomain("prereq", "Episode");
  builder->SetRange("prereq", "Episode");
  builder->SetDomain("job", "Work Episode");
  builder->SetRange("job", "Occupation");
  builder->SetDomain("qualif", "Educational Episode");
  builder->SetRange("qualif", "Subject");
  builder->SetDomain("level", "Subject");
  builder->SetRange("level", "Education Qualification Level");
  builder->SetDomain("sector", "Occupation");
  builder->SetRange("sector", "Industry Sector");
  return h;
}

// --- Timeline generation -----------------------------------------------------

/// Structural description of one seed timeline; synthetic copies reuse the
/// structure and rotate every classification to a sibling class.
struct SeedTimeline {
  struct EpisodeSpec {
    bool is_work = false;
    size_t episode_leaf = 0;    // into episode_leaves (kind-matched)
    size_t classification = 0;  // into occupation_leaves / subject_leaves
    size_t extra = 0;           // into sector_leaves / level_leaves
    bool prereq_from_prev = false;
    int long_prereq_from = -1;  // earlier episode index, or -1
  };
  std::vector<EpisodeSpec> episodes;
};

std::vector<SeedTimeline> MakeSeedTimelines(const Hierarchies& h, Rng* rng,
                                            size_t count) {
  std::vector<SeedTimeline> seeds;
  seeds.reserve(count);
  for (size_t t = 0; t < count; ++t) {
    SeedTimeline seed;
    const size_t episodes = static_cast<size_t>(rng->NextInRange(5, 14));
    for (size_t e = 0; e < episodes; ++e) {
      SeedTimeline::EpisodeSpec spec;
      spec.is_work = rng->NextBool(0.55);
      for (;;) {
        spec.episode_leaf = rng->NextBounded(h.episode_leaves.size());
        if (h.episode_leaf_is_work[spec.episode_leaf] == spec.is_work) break;
      }
      spec.classification = spec.is_work
                                ? rng->NextBounded(h.occupation_leaves.size())
                                : rng->NextBounded(h.subject_leaves.size());
      spec.extra = spec.is_work ? rng->NextBounded(h.sector_leaves.size())
                                : rng->NextBounded(h.level_leaves.size());
      spec.prereq_from_prev = e > 0 && rng->NextBool(0.6);
      spec.long_prereq_from = (e >= 2 && rng->NextBool(0.25))
                                  ? static_cast<int>(rng->NextBounded(e - 1))
                                  : -1;
      seed.episodes.push_back(spec);
    }
    seeds.push_back(std::move(seed));
  }
  return seeds;
}

/// Rotates `leaf` to its shift-th sibling ("altering the classification of
/// each episode to be a 'sibling' class of its original class").
const std::string& RotateSibling(const Hierarchies& h, const std::string& leaf,
                                 size_t shift) {
  const std::vector<std::string>& ring = h.sibling_ring.at(leaf);
  size_t base = 0;
  for (size_t i = 0; i < ring.size(); ++i) {
    if (ring[i] == leaf) {
      base = i;
      break;
    }
  }
  return ring[(base + shift) % ring.size()];
}

void EmitTypeEdges(GraphBuilder* builder, const Hierarchies& h,
                   NodeId instance, const std::string& leaf,
                   bool materialize_closure) {
  Status s = builder->AddTypeEdge(instance, builder->GetOrAddNode(leaf));
  assert(s.ok());
  (void)s;
  if (!materialize_closure) return;
  for (const std::string& ancestor : h.ancestors.at(leaf)) {
    s = builder->AddTypeEdge(instance, builder->GetOrAddNode(ancestor));
    assert(s.ok());
  }
}

}  // namespace

L4AllOptions L4AllScalePreset(int level) {
  L4AllOptions options;
  switch (level) {
    case 1:
      options.num_timelines = 143;
      break;
    case 2:
      options.num_timelines = 1201;
      break;
    case 3:
      options.num_timelines = 5221;
      break;
    case 4:
      options.num_timelines = 11416;
      break;
    default:
      assert(false && "L4All scale level must be 1..4");
  }
  return options;
}

std::string L4AllScaleName(int level) { return "L" + std::to_string(level); }

L4AllDataset GenerateL4All(const L4AllOptions& options) {
  constexpr size_t kNumSeeds = 21;  // 5 real + 16 realistic in the paper

  OntologyBuilder ontology_builder;
  Hierarchies h = BuildOntology(&ontology_builder);
  Result<Ontology> ontology = std::move(ontology_builder).Finalize();
  assert(ontology.ok());

  Rng rng(options.seed);
  const std::vector<SeedTimeline> seeds =
      MakeSeedTimelines(h, &rng, kNumSeeds);

  GraphBuilder builder;
  const LabelId next = *builder.InternLabel("next");
  const LabelId prereq = *builder.InternLabel("prereq");
  const LabelId job = *builder.InternLabel("job");
  const LabelId qualif = *builder.InternLabel("qualif");
  const LabelId level = *builder.InternLabel("level");
  const LabelId sector = *builder.InternLabel("sector");

  for (size_t t = 0; t < options.num_timelines; ++t) {
    const SeedTimeline& seed = seeds[t % kNumSeeds];
    const size_t shift = t / kNumSeeds;

    std::vector<NodeId> episode_nodes;
    episode_nodes.reserve(seed.episodes.size());
    for (size_t e = 0; e < seed.episodes.size(); ++e) {
      const auto& spec = seed.episodes[e];
      const NodeId episode =
          builder.GetOrAddNode("Alumni " + std::to_string(t + 1) +
                               " Episode " + std::to_string(e + 1));
      episode_nodes.push_back(episode);

      const std::string& episode_leaf =
          RotateSibling(h, h.episode_leaves[spec.episode_leaf], shift);
      EmitTypeEdges(&builder, h, episode, episode_leaf,
                    options.materialize_type_closure);

      Status s = Status::OK();
      if (spec.is_work) {
        const NodeId record = builder.GetOrAddNode(
            "Job " + std::to_string(t + 1) + "_" + std::to_string(e + 1));
        s = builder.AddEdge(episode, job, record);
        assert(s.ok());
        const std::string& occupation =
            RotateSibling(h, h.occupation_leaves[spec.classification], shift);
        EmitTypeEdges(&builder, h, record, occupation,
                      options.materialize_type_closure);
        const std::string& sec =
            RotateSibling(h, h.sector_leaves[spec.extra], shift);
        s = builder.AddEdge(record, sector, builder.GetOrAddNode(sec));
        assert(s.ok());
      } else {
        const NodeId record = builder.GetOrAddNode(
            "Qualification " + std::to_string(t + 1) + "_" +
            std::to_string(e + 1));
        s = builder.AddEdge(episode, qualif, record);
        assert(s.ok());
        const std::string& subject =
            RotateSibling(h, h.subject_leaves[spec.classification], shift);
        EmitTypeEdges(&builder, h, record, subject,
                      options.materialize_type_closure);
        const std::string& lvl =
            RotateSibling(h, h.level_leaves[spec.extra], shift);
        s = builder.AddEdge(record, level, builder.GetOrAddNode(lvl));
        assert(s.ok());
      }

      if (e > 0) {
        s = builder.AddEdge(episode_nodes[e - 1], next, episode);
        assert(s.ok());
        if (spec.prereq_from_prev) {
          s = builder.AddEdge(episode_nodes[e - 1], prereq, episode);
          assert(s.ok());
        }
      }
      if (spec.long_prereq_from >= 0) {
        s = builder.AddEdge(
            episode_nodes[static_cast<size_t>(spec.long_prereq_from)], prereq,
            episode);
        assert(s.ok());
      }
      (void)s;
    }
  }

  // Every ontology class exists as a graph node (class nodes are V_G ∩ V_K
  // in the paper's model), even if no instance was classified under it yet.
  for (ClassId c = 0; c < ontology->NumClasses(); ++c) {
    builder.GetOrAddNode(ontology->ClassName(c));
  }

  L4AllDataset dataset;
  dataset.graph = std::move(builder).Finalize();
  dataset.ontology = std::move(ontology).value();
  return dataset;
}

}  // namespace omega
