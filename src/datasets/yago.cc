#include "datasets/yago.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <vector>

#include "common/rng.h"
#include "store/graph_builder.h"

namespace omega {
namespace {

/// Entity population sizes; scale 1.0 approximates the paper's graph.
struct Sizes {
  size_t persons;
  size_t cities;
  size_t countries;
  size_t universities;
  size_t companies;
  size_t clubs;
  size_t airports;
  size_t prizes;
  size_t movies;
  size_t events;
  size_t ziggurats;
  size_t buildings;
  size_t artifacts;
  size_t currencies;
  size_t commodities;
  size_t leaves_per_category;
};

size_t Scaled(double scale, size_t base, size_t minimum) {
  const auto scaled = static_cast<size_t>(static_cast<double>(base) * scale);
  return std::max(minimum, scaled);
}

Sizes ComputeSizes(double scale) {
  Sizes s;
  s.persons = Scaled(scale, 900000, 600);
  s.cities = Scaled(scale, 150000, 120);
  s.countries = Scaled(scale, 250, 25);
  s.universities = Scaled(scale, 30000, 40);
  s.companies = Scaled(scale, 80000, 60);
  s.clubs = Scaled(scale, 15000, 25);
  s.airports = Scaled(scale, 20000, 30);
  s.prizes = Scaled(scale, 5000, 12);
  s.movies = Scaled(scale, 100000, 80);
  s.events = Scaled(scale, 200000, 150);
  s.ziggurats = Scaled(scale, 2000, 8);
  s.buildings = Scaled(scale, 60000, 50);
  s.artifacts = Scaled(scale, 40000, 40);
  s.currencies = Scaled(scale, 200, 15);
  s.commodities = Scaled(scale, 2000, 20);
  // One depth-2 hierarchy; avg fan-out approaches the paper's 933.43 as
  // scale -> 1 (root: 13 categories, each category: this many leaves).
  s.leaves_per_category = Scaled(scale, 1000, 6);
  return s;
}

const char* const kCategories[] = {
    "wordnet_person",   "wordnet_city",     "wordnet_country",
    "wordnet_university", "wordnet_company", "wordnet_football_club",
    "wordnet_airport",  "wordnet_prize",    "wordnet_movie",
    "wordnet_event",    "wordnet_building", "wordnet_currency",
    "wordnet_commodity"};

/// Generator state shared by the helper lambdas below.
struct Gen {
  GraphBuilder builder;
  Rng rng;
  Sizes sizes;

  explicit Gen(const YagoOptions& options)
      : rng(options.seed), sizes(ComputeSizes(options.scale)) {}

  LabelId Label(const char* name) {
    Result<LabelId> id = builder.InternLabel(name);
    assert(id.ok());
    return *id;
  }

  void Edge(NodeId src, LabelId label, NodeId dst) {
    Status s = builder.AddEdge(src, label, dst);
    assert(s.ok());
    (void)s;
  }

  /// Zipf-skewed pick: low indices are most popular.
  NodeId Pick(const std::vector<NodeId>& pool) {
    return pool[rng.NextZipf(pool.size(), 1.3)];
  }
  NodeId PickUniform(const std::vector<NodeId>& pool) {
    return pool[rng.NextBounded(pool.size())];
  }
};

std::vector<NodeId> MakeEntities(Gen* g, const char* prefix, size_t count) {
  std::vector<NodeId> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(
        g->builder.GetOrAddNode(std::string(prefix) + std::to_string(i)));
  }
  return out;
}

}  // namespace

YagoDataset GenerateYago(const YagoOptions& options) {
  Gen g(options);
  const Sizes& sz = g.sizes;

  // --- Ontology -------------------------------------------------------------
  OntologyBuilder ontology_builder;
  ontology_builder.GetOrAddClass("yago_entity");
  std::vector<std::vector<std::string>> leaves(std::size(kCategories));
  for (size_t c = 0; c < std::size(kCategories); ++c) {
    Status s = ontology_builder.AddSubclass(kCategories[c], "yago_entity");
    assert(s.ok());
    (void)s;
    for (size_t l = 0; l < sz.leaves_per_category; ++l) {
      std::string leaf = std::string(kCategories[c]) + "_leaf_" +
                         std::to_string(l);
      // A few named leaves the query set addresses directly.
      if (c == 0 && l == 0) leaf = "wordnet_singer";
      if (c == 0 && l == 1) leaf = "wordnet_scientist";
      if (c == 10 && l == 0) leaf = "wordnet_ziggurat";
      s = ontology_builder.AddSubclass(leaf, kCategories[c]);
      assert(s.ok());
      leaves[c].push_back(std::move(leaf));
    }
  }

  // Two property hierarchies: 6 sub-properties under
  // relationLocatedByObject (Example 3) and 2 under linkedTo.
  for (const char* p : {"gradFrom", "happenedIn", "participatedIn", "bornIn",
                        "livesIn", "diedIn"}) {
    Status s =
        ontology_builder.AddSubproperty(p, "relationLocatedByObject");
    assert(s.ok());
    (void)s;
  }
  for (const char* p : {"isConnectedTo", "influences"}) {
    Status s = ontology_builder.AddSubproperty(p, "linkedTo");
    assert(s.ok());
    (void)s;
  }
  // Domains and ranges ("the properties also have domains and ranges
  // defined, not used in our performance study" — used here only by the
  // optional RELAX rule (ii)).
  ontology_builder.SetDomain("gradFrom", "wordnet_person");
  ontology_builder.SetRange("gradFrom", "wordnet_university");
  ontology_builder.SetDomain("bornIn", "wordnet_person");
  ontology_builder.SetRange("bornIn", "wordnet_city");
  ontology_builder.SetDomain("wasBornIn", "wordnet_person");
  ontology_builder.SetRange("wasBornIn", "wordnet_city");
  ontology_builder.SetDomain("livesIn", "wordnet_person");
  ontology_builder.SetDomain("diedIn", "wordnet_person");
  ontology_builder.SetRange("diedIn", "wordnet_city");
  ontology_builder.SetDomain("happenedIn", "wordnet_event");
  ontology_builder.SetRange("happenedIn", "wordnet_city");
  ontology_builder.SetDomain("participatedIn", "wordnet_person");
  ontology_builder.SetRange("participatedIn", "wordnet_event");
  ontology_builder.SetDomain("marriedTo", "wordnet_person");
  ontology_builder.SetRange("marriedTo", "wordnet_person");
  ontology_builder.SetDomain("hasChild", "wordnet_person");
  ontology_builder.SetRange("hasChild", "wordnet_person");
  ontology_builder.SetDomain("hasWonPrize", "wordnet_person");
  ontology_builder.SetRange("hasWonPrize", "wordnet_prize");
  ontology_builder.SetDomain("actedIn", "wordnet_person");
  ontology_builder.SetRange("actedIn", "wordnet_movie");
  ontology_builder.SetDomain("playsFor", "wordnet_person");
  ontology_builder.SetRange("playsFor", "wordnet_football_club");
  ontology_builder.SetDomain("isConnectedTo", "wordnet_airport");
  ontology_builder.SetRange("isConnectedTo", "wordnet_airport");
  ontology_builder.SetDomain("hasCurrency", "wordnet_country");
  ontology_builder.SetRange("hasCurrency", "wordnet_currency");
  ontology_builder.SetDomain("imports", "wordnet_country");
  ontology_builder.SetRange("imports", "wordnet_commodity");
  ontology_builder.SetDomain("exports", "wordnet_country");
  ontology_builder.SetRange("exports", "wordnet_commodity");
  Result<Ontology> ontology = std::move(ontology_builder).Finalize();
  assert(ontology.ok());

  // --- Properties (38 including type) ----------------------------------------
  const LabelId bornIn = g.Label("bornIn");
  const LabelId wasBornIn = g.Label("wasBornIn");
  const LabelId livesIn = g.Label("livesIn");
  const LabelId diedIn = g.Label("diedIn");
  const LabelId marriedTo = g.Label("marriedTo");
  const LabelId married = g.Label("married");
  const LabelId hasChild = g.Label("hasChild");
  const LabelId gradFrom = g.Label("gradFrom");
  const LabelId hasWonPrize = g.Label("hasWonPrize");
  const LabelId locatedIn = g.Label("locatedIn");
  const LabelId isLocatedIn = g.Label("isLocatedIn");
  const LabelId happenedIn = g.Label("happenedIn");
  const LabelId participatedIn = g.Label("participatedIn");
  const LabelId actedIn = g.Label("actedIn");
  const LabelId directed = g.Label("directed");
  const LabelId playsFor = g.Label("playsFor");
  const LabelId isConnectedTo = g.Label("isConnectedTo");
  const LabelId imports = g.Label("imports");
  const LabelId exports = g.Label("exports");
  const LabelId hasCurrency = g.Label("hasCurrency");
  const LabelId influences = g.Label("influences");
  const LabelId worksAt = g.Label("worksAt");
  const LabelId owns = g.Label("owns");
  const LabelId created = g.Label("created");
  const LabelId wrote = g.Label("wrote");
  const LabelId produced = g.Label("produced");
  const LabelId edited = g.Label("edited");
  const LabelId hasCapital = g.Label("hasCapital");
  const LabelId dealsWith = g.Label("dealsWith");
  const LabelId isCitizenOf = g.Label("isCitizenOf");
  const LabelId isLeaderOf = g.Label("isLeaderOf");
  const LabelId holdsPosition = g.Label("holdsPosition");
  const LabelId isAffiliatedTo = g.Label("isAffiliatedTo");
  const LabelId hasAcademicAdvisor = g.Label("hasAcademicAdvisor");
  const LabelId isKnownFor = g.Label("isKnownFor");
  // The two super-properties are part of the 38 (rarely asserted directly).
  const LabelId relationLocatedByObject = g.Label("relationLocatedByObject");
  const LabelId linkedTo = g.Label("linkedTo");

  // --- Entities ---------------------------------------------------------------
  auto persons = MakeEntities(&g, "person_", sz.persons);
  auto cities = MakeEntities(&g, "city_", sz.cities);
  auto countries = MakeEntities(&g, "country_", sz.countries);
  auto universities = MakeEntities(&g, "university_", sz.universities);
  auto companies = MakeEntities(&g, "company_", sz.companies);
  auto clubs = MakeEntities(&g, "club_", sz.clubs);
  auto airports = MakeEntities(&g, "airport_", sz.airports);
  auto prizes = MakeEntities(&g, "prize_", sz.prizes);
  auto movies = MakeEntities(&g, "movie_", sz.movies);
  auto events = MakeEntities(&g, "event_", sz.events);
  auto ziggurats = MakeEntities(&g, "ziggurat_", sz.ziggurats);
  auto buildings = MakeEntities(&g, "building_", sz.buildings);
  auto artifacts = MakeEntities(&g, "artifact_", sz.artifacts);
  auto currencies = MakeEntities(&g, "currency_", sz.currencies);
  auto commodities = MakeEntities(&g, "commodity_", sz.commodities);

  // Named seed entities the Fig. 9 queries reference. person_0/person_1 and
  // city_0/country_0/... keep their generated roles under new labels by
  // being created *before* the pools above would be (GetOrAddNode dedups on
  // label, so instead we overlay: dedicated nodes appended to the pools).
  const NodeId uk = g.builder.GetOrAddNode("UK");
  const NodeId germany = g.builder.GetOrAddNode("Germany");
  countries.insert(countries.begin(), {uk, germany});
  const NodeId halle = g.builder.GetOrAddNode("Halle_Saxony-Anhalt");
  cities.insert(cities.begin(), halle);
  const NodeId li_peng = g.builder.GetOrAddNode("Li_Peng");
  const NodeId annie = g.builder.GetOrAddNode("Annie Haslam");
  persons.insert(persons.begin(), {li_peng, annie});

  // --- Class membership (direct types only; YAGO stores direct types and
  // the taxonomy separately, so unlike L4All no closure is materialised) ----
  auto type_to = [&g](NodeId instance, const std::string& klass) {
    Status s = g.builder.AddTypeEdge(instance, g.builder.GetOrAddNode(klass));
    assert(s.ok());
    (void)s;
  };
  for (size_t i = 0; i < persons.size(); ++i) {
    // ~2% singers (Annie Haslam among them), a spread over other leaves.
    if (i == 1 || g.rng.NextBool(0.02)) {
      type_to(persons[i], "wordnet_singer");
    } else {
      type_to(persons[i], leaves[0][g.rng.NextBounded(leaves[0].size())]);
    }
  }
  for (NodeId c : cities) type_to(c, "wordnet_city");
  for (NodeId c : countries) type_to(c, "wordnet_country");
  for (NodeId u : universities) type_to(u, "wordnet_university");
  for (NodeId c : companies) {
    type_to(c, leaves[4][g.rng.NextBounded(leaves[4].size())]);
  }
  for (NodeId c : clubs) type_to(c, "wordnet_football_club");
  for (NodeId a : airports) type_to(a, "wordnet_airport");
  for (NodeId p : prizes) type_to(p, "wordnet_prize");
  for (NodeId m : movies) {
    type_to(m, leaves[8][g.rng.NextBounded(leaves[8].size())]);
  }
  for (NodeId e : events) {
    type_to(e, leaves[9][g.rng.NextBounded(leaves[9].size())]);
  }
  for (NodeId z : ziggurats) type_to(z, "wordnet_ziggurat");
  for (NodeId b : buildings) {
    // Sibling leaves of wordnet_ziggurat under wordnet_building; gives the
    // sc-relaxation of Q3 something to find at one step up.
    const size_t leaf =
        leaves[10].size() > 1 ? 1 + g.rng.NextBounded(leaves[10].size() - 1)
                              : 0;
    type_to(b, leaves[10][leaf]);
  }
  for (NodeId a : artifacts) {
    type_to(a, leaves[10][g.rng.NextBounded(leaves[10].size())]);
  }
  for (NodeId c : currencies) type_to(c, "wordnet_currency");
  for (NodeId c : commodities) type_to(c, "wordnet_commodity");

  // --- Places -----------------------------------------------------------------
  for (NodeId c : cities) g.Edge(c, locatedIn, g.Pick(countries));
  for (size_t i = 0; i < countries.size(); ++i) {
    g.Edge(countries[i], hasCurrency,
           currencies[i % currencies.size()]);
    g.Edge(countries[i], hasCapital, g.Pick(cities));
    for (int k = g.rng.NextInRange(3, 10); k > 0; --k) {
      g.Edge(countries[i], imports, g.PickUniform(commodities));
    }
    for (int k = g.rng.NextInRange(2, 8); k > 0; --k) {
      g.Edge(countries[i], exports, g.PickUniform(commodities));
    }
    for (int k = g.rng.NextInRange(0, 4); k > 0; --k) {
      g.Edge(countries[i], dealsWith, g.Pick(countries));
    }
  }
  for (NodeId u : universities) {
    g.Edge(u, locatedIn, g.Pick(countries));  // direct country edges (Q9)
    if (g.rng.NextBool(0.6)) g.Edge(u, locatedIn, g.Pick(cities));
  }
  for (NodeId c : companies) {
    if (g.rng.NextBool(0.8)) g.Edge(c, locatedIn, g.Pick(cities));
  }
  for (NodeId cl : clubs) {
    if (g.rng.NextBool(0.8)) g.Edge(cl, locatedIn, g.Pick(cities));
  }
  for (NodeId a : airports) {
    if (g.rng.NextBool(0.9)) g.Edge(a, locatedIn, g.Pick(cities));
    for (int k = g.rng.NextInRange(2, 8); k > 0; --k) {
      g.Edge(a, isConnectedTo, g.Pick(airports));
    }
  }
  for (NodeId z : ziggurats) g.Edge(z, locatedIn, g.Pick(cities));
  for (NodeId b : buildings) {
    if (g.rng.NextBool(0.9)) g.Edge(b, locatedIn, g.Pick(cities));
  }
  // Artifacts are located *in* buildings — things located in (relaxations
  // of) a ziggurat exist one sc step up from wordnet_ziggurat.
  for (NodeId a : artifacts) {
    if (g.rng.NextBool(0.9)) g.Edge(a, locatedIn, g.PickUniform(buildings));
  }

  // Events: located in countries (Example 1: "only events and places can be
  // located in a country") with outgoing happenedIn edges to cities — the
  // combination Q9/RELAX exploits at distance 1.
  for (NodeId e : events) {
    if (g.rng.NextBool(0.8)) g.Edge(e, locatedIn, g.Pick(countries));
    if (g.rng.NextBool(0.4)) g.Edge(e, isLocatedIn, g.Pick(countries));
    if (g.rng.NextBool(0.7)) g.Edge(e, happenedIn, g.Pick(cities));
  }

  // --- People -----------------------------------------------------------------
  // Role bands by index: athletes never appear in `married` chains, so
  // Q4 (directed.married.married+.playsFor) has no exact answers.
  auto is_athlete = [&](size_t i) {
    return i >= persons.size() * 6 / 10 && i < persons.size() * 3 / 4;
  };
  auto is_actor = [&](size_t i) { return i % 10 == 3; };
  auto is_director = [&](size_t i) { return i % 33 == 5; };

  for (size_t i = 0; i < persons.size(); ++i) {
    const NodeId p = persons[i];
    if (g.rng.NextBool(0.9)) g.Edge(p, bornIn, g.Pick(cities));
    if (g.rng.NextBool(0.3)) g.Edge(p, wasBornIn, g.Pick(cities));
    if (g.rng.NextBool(0.5)) g.Edge(p, livesIn, g.Pick(cities));
    if (g.rng.NextBool(0.15)) g.Edge(p, livesIn, g.Pick(countries));
    if (g.rng.NextBool(0.25)) g.Edge(p, diedIn, g.Pick(cities));
    if (g.rng.NextBool(0.8)) g.Edge(p, isCitizenOf, g.Pick(countries));
    if (g.rng.NextBool(0.4)) g.Edge(p, marriedTo, g.PickUniform(persons));
    if (!is_athlete(i) && g.rng.NextBool(0.25)) {
      // `married` chains stay within the non-athlete bands.
      for (int tries = 0; tries < 8; ++tries) {
        const size_t j = g.rng.NextBounded(persons.size());
        if (!is_athlete(j)) {
          g.Edge(p, married, persons[j]);
          break;
        }
      }
    }
    if (g.rng.NextBool(0.45)) {
      for (int k = g.rng.NextInRange(1, 3); k > 0; --k) {
        g.Edge(p, hasChild, g.PickUniform(persons));
      }
    }
    if (g.rng.NextBool(0.35)) g.Edge(p, gradFrom, g.Pick(universities));
    if (g.rng.NextBool(0.02)) g.Edge(p, hasWonPrize, g.Pick(prizes));
    if (g.rng.NextBool(0.3)) g.Edge(p, participatedIn, g.Pick(events));
    if (g.rng.NextBool(0.3)) g.Edge(p, worksAt, g.Pick(companies));
    if (g.rng.NextBool(0.05)) g.Edge(p, influences, g.PickUniform(persons));
    if (g.rng.NextBool(0.05)) g.Edge(p, isAffiliatedTo, g.Pick(clubs));
    if (g.rng.NextBool(0.05)) {
      g.Edge(p, hasAcademicAdvisor, g.PickUniform(persons));
    }
    if (g.rng.NextBool(0.02)) g.Edge(p, isKnownFor, g.Pick(events));
    if (g.rng.NextBool(0.02)) g.Edge(p, owns, g.Pick(companies));
    if (g.rng.NextBool(0.001)) g.Edge(p, isLeaderOf, g.Pick(countries));
    if (g.rng.NextBool(0.01)) g.Edge(p, holdsPosition, g.Pick(companies));
    if (is_actor(i)) {
      for (int k = g.rng.NextInRange(1, 5); k > 0; --k) {
        g.Edge(p, actedIn, g.Pick(movies));
      }
    }
    if (is_director(i)) {
      for (int k = g.rng.NextInRange(1, 3); k > 0; --k) {
        g.Edge(p, directed, g.Pick(movies));
      }
      if (g.rng.NextBool(0.3)) g.Edge(p, wrote, g.Pick(movies));
      if (g.rng.NextBool(0.3)) g.Edge(p, produced, g.Pick(movies));
      if (g.rng.NextBool(0.2)) g.Edge(p, edited, g.Pick(movies));
      if (g.rng.NextBool(0.2)) g.Edge(p, created, g.Pick(movies));
    }
    if (is_athlete(i)) {
      g.Edge(p, playsFor, g.Pick(clubs));
      if (g.rng.NextBool(0.2)) g.Edge(p, playsFor, g.Pick(clubs));
    }
  }

  // Singers act too (Q8: Annie Haslam's class-mates reach >100 movies).
  for (size_t i = 0; i < persons.size(); ++i) {
    if ((i == 1 || i % 50 == 7) && g.rng.NextBool(0.8)) {
      g.Edge(persons[i], actedIn, g.Pick(movies));
    }
  }

  // A couple of direct super-property assertions so all 38 labels occur.
  g.Edge(persons[3], relationLocatedByObject, g.Pick(cities));
  g.Edge(airports[0], linkedTo, airports[1 % airports.size()]);

  // --- Deterministic seed wiring for the Fig. 9 constants --------------------
  // Q1: people born in Halle with spouses and children.
  for (int k = 0; k < 3; ++k) {
    const NodeId born = persons[10 + static_cast<size_t>(k)];
    g.Edge(born, bornIn, halle);
    const NodeId spouse = persons[20 + static_cast<size_t>(k)];
    g.Edge(born, marriedTo, spouse);
    if (k < 2) g.Edge(spouse, hasChild, persons[30 + static_cast<size_t>(k)]);
  }
  // Q2: Li_Peng -> child -> university_0 <- two prize-winning co-alumni.
  const NodeId li_child = persons[40];
  g.Edge(li_peng, hasChild, li_child);
  g.Edge(li_child, gradFrom, universities[0]);
  for (int k = 0; k < 2; ++k) {
    const NodeId alum = persons[50 + static_cast<size_t>(k)];
    g.Edge(alum, gradFrom, universities[0]);
    g.Edge(alum, hasWonPrize, prizes[static_cast<size_t>(k) % prizes.size()]);
  }
  // Q9: make sure the UK has universities, events and residents.
  for (int k = 0; k < 4; ++k) {
    g.Edge(universities[static_cast<size_t>(k)], locatedIn, uk);
    g.Edge(events[static_cast<size_t>(k)], locatedIn, uk);
    g.Edge(persons[60 + static_cast<size_t>(k)], livesIn, uk);
  }
  g.Edge(halle, locatedIn, germany);

  // Class nodes are part of the graph (V_G ∩ V_K): RELAX seeds traversals
  // from ancestor classes, which must exist as nodes even when no instance
  // is typed directly under them (e.g. wordnet_building).
  for (ClassId c = 0; c < ontology->NumClasses(); ++c) {
    g.builder.GetOrAddNode(ontology->ClassName(c));
  }

  YagoDataset dataset;
  dataset.graph = std::move(g.builder).Finalize();
  dataset.ontology = std::move(ontology).value();
  return dataset;
}

}  // namespace omega
