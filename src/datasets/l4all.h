// Synthetic L4All dataset (§4.1): lifelong-learner timelines of episodes
// linked by `next`/`prereq`, classified against the five class hierarchies
// of Fig. 2. The original 21 seed timelines (5 real + 16 realistic) are not
// public, so seeded-random seed timelines with the published structure are
// generated instead; scaling follows the paper exactly — synthetic timelines
// duplicate a seed timeline and reclassify each episode to a sibling class,
// so class-node degree grows linearly with graph size.
//
// Type edges are materialised up the class hierarchies (the paper's class
// nodes grow degree "owing to transitive closure"), e.g. an episode typed
// "Full-time Work Episode" also gets type edges to "Work Episode" and
// "Episode".
#ifndef OMEGA_DATASETS_L4ALL_H_
#define OMEGA_DATASETS_L4ALL_H_

#include <cstdint>
#include <string>

#include "ontology/ontology.h"
#include "store/graph_store.h"

namespace omega {

struct L4AllOptions {
  /// Number of timelines. Paper scales: L1=143, L2=1201, L3=5221, L4=11416.
  size_t num_timelines = 143;
  uint64_t seed = 42;
  /// Materialise type edges to ancestor classes (see header comment).
  bool materialize_type_closure = true;
};

struct L4AllDataset {
  GraphStore graph;
  Ontology ontology;
};

/// The paper's four scale presets (level 1..4 -> L1..L4 timeline counts).
L4AllOptions L4AllScalePreset(int level);

/// Human-readable name ("L1".."L4") for a preset level.
std::string L4AllScaleName(int level);

/// Generates the dataset deterministically from options.seed.
L4AllDataset GenerateL4All(const L4AllOptions& options = {});

}  // namespace omega

#endif  // OMEGA_DATASETS_L4ALL_H_
