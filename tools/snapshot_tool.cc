// Operational front door of the snapshot storage engine:
//
//   snapshot_tool build GRAPH.txt [ONTOLOGY.txt] OUT.snap
//       parse an omega-graph-v1 text file (plus an optional text ontology)
//       and write the binary snapshot — the offline "compile the dataset"
//       step a serving fleet distributes to its hosts.
//   snapshot_tool gen {l4all LEVEL | yago SCALE} OUT.snap
//       generate a synthetic dataset (with its ontology) straight into a
//       snapshot; what CI uses to round-trip a YAGO-style graph.
//   snapshot_tool inspect FILE.snap
//       print the header and section table.
//   snapshot_tool verify FILE.snap
//       full integrity check: structure, per-section checksums, deep
//       invariants; then open it and report the dataset shape. Exit 0/1.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "datasets/l4all.h"
#include "datasets/yago.h"
#include "index/distance_sketch.h"
#include "index/reachability_index.h"
#include "ontology/ontology_io.h"
#include "snapshot/snapshot_reader.h"
#include "snapshot/snapshot_writer.h"
#include "store/graph_io.h"

using namespace omega;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  snapshot_tool build GRAPH.txt [ONTOLOGY.txt] OUT.snap\n"
               "  snapshot_tool gen l4all LEVEL OUT.snap   (LEVEL 1..4)\n"
               "  snapshot_tool gen yago SCALE OUT.snap    (e.g. 0.01)\n"
               "  snapshot_tool inspect FILE.snap\n"
               "  snapshot_tool verify FILE.snap\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "snapshot_tool: %s\n", status.ToString().c_str());
  return 1;
}

/// Builds the reachability index + distance sketch for `graph` and writes
/// the snapshot with them embedded (the offline "compile the dataset" step
/// covers index construction too, so serving hosts just mmap).
Status WriteWithIndexes(const GraphStore& graph, const Ontology* ontology,
                        const std::string& path) {
  const ReachabilityIndex reach = ReachabilityIndex::BuildAll(graph);
  const DistanceSketch sketch = DistanceSketch::Build(graph);
  return WriteSnapshot(graph, ontology, &reach, &sketch, path);
}

int Build(int argc, char** argv) {
  if (argc != 2 && argc != 3) return Usage();
  const std::string graph_path = argv[0];
  const std::string ontology_path = argc == 3 ? argv[1] : "";
  const std::string out_path = argv[argc - 1];

  Result<GraphStore> graph = LoadGraph(graph_path);
  if (!graph.ok()) return Fail(graph.status());
  Ontology ontology;
  const Ontology* ontology_ptr = nullptr;
  if (!ontology_path.empty()) {
    Result<Ontology> loaded = LoadOntology(ontology_path);
    if (!loaded.ok()) return Fail(loaded.status());
    ontology = std::move(loaded).value();
    ontology_ptr = &ontology;
  }
  const Status written = WriteWithIndexes(*graph, ontology_ptr, out_path);
  if (!written.ok()) return Fail(written);
  std::printf("wrote %s: %zu nodes, %zu edges, %zu labels%s\n",
              out_path.c_str(), graph->NumNodes(), graph->NumEdges(),
              graph->labels().size(),
              ontology_ptr != nullptr ? ", with ontology" : "");
  return 0;
}

int Gen(int argc, char** argv) {
  if (argc != 3) return Usage();
  const std::string kind = argv[0];
  const std::string out_path = argv[2];
  GraphStore graph;
  Ontology ontology;
  if (kind == "l4all") {
    const int level = std::atoi(argv[1]);
    if (level < 1 || level > 4) return Usage();
    L4AllDataset dataset = GenerateL4All(L4AllScalePreset(level));
    graph = std::move(dataset.graph);
    ontology = std::move(dataset.ontology);
  } else if (kind == "yago") {
    YagoOptions options;
    options.scale = std::atof(argv[1]);
    if (options.scale <= 0) return Usage();
    YagoDataset dataset = GenerateYago(options);
    graph = std::move(dataset.graph);
    ontology = std::move(dataset.ontology);
  } else {
    return Usage();
  }
  const Status written = WriteWithIndexes(graph, &ontology, out_path);
  if (!written.ok()) return Fail(written);
  std::printf("wrote %s: %zu nodes, %zu edges, %zu labels, with ontology\n",
              out_path.c_str(), graph.NumNodes(), graph.NumEdges(),
              graph.labels().size());
  return 0;
}

int Inspect(const std::string& path) {
  Result<SnapshotInfo> info = SnapshotReader::Inspect(path);
  if (!info.ok()) return Fail(info.status());
  std::printf("%s", info->ToString().c_str());
  return 0;
}

int Verify(const std::string& path) {
  const Status status = SnapshotReader::Verify(path);
  if (!status.ok()) {
    std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  // Verify() already opened the dataset once; reopen cheaply to report its
  // shape alongside the verdict.
  Result<std::shared_ptr<const Dataset>> dataset = SnapshotReader::Open(path);
  if (!dataset.ok()) return Fail(dataset.status());
  Result<SnapshotInfo> info = SnapshotReader::Inspect(path);
  if (!info.ok()) return Fail(info.status());
  std::printf(
      "OK %s: %zu nodes, %zu edges, %zu labels, ontology: %s, "
      "reach index: %s, distance sketch: %s\n",
      path.c_str(), (*dataset)->graph().NumNodes(),
      (*dataset)->graph().NumEdges(), (*dataset)->graph().labels().size(),
      (*dataset)->ontology() != nullptr ? "yes" : "no",
      info->has_reach_index ? "yes" : "no",
      info->has_distance_sketch ? "yes" : "no");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  if (command == "build") return Build(argc - 2, argv + 2);
  if (command == "gen") return Gen(argc - 2, argv + 2);
  if (command == "inspect") return Inspect(argv[2]);
  if (command == "verify") return Verify(argv[2]);
  return Usage();
}
