// Fuzz target for the snapshot ingress: SnapshotReader::Open / Inspect /
// Verify over attacker-controlled bytes. The reader is the one place where
// untrusted data becomes borrowed views — a length field it trusts too much
// turns into a span past the end of the mapping, which no compile-time
// lifetime annotation can catch. Open() must therefore return a Status for
// EVERY input, never crash, never read out of bounds (the CI harness runs
// under ASan), and when a strict open *succeeds* the resulting Dataset must
// be traversable without faulting.
//
// Build modes (tools/CMakeLists.txt, -DOMEGA_FUZZ=ON):
//  * Clang: -fsanitize=fuzzer,address and OMEGA_FUZZ_WITH_LIBFUZZER —
//    libFuzzer drives LLVMFuzzerTestOneInput with coverage feedback.
//      snapshot_open_fuzz CORPUS_DIR            # fuzz, evolving the corpus
//      snapshot_open_fuzz -max_total_time=30 …  # CI smoke
//      snapshot_open_fuzz seed1 seed2 …         # regression: each file once
//  * Other compilers: a standalone main() replays each argv file once —
//    same harness, no coverage feedback; keeps the corpus regression
//    runnable where libFuzzer does not exist.
//
// Seeds come from tools/fuzz/make_corpus.py: a valid snapshot_tool snapshot
// plus structured mutations (truncations, header/TOC bit flips), so the
// fuzzer starts at the format's cliff edges instead of rediscovering the
// magic number one byte at a time.
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "snapshot/snapshot_reader.h"
#include "store/graph_store.h"
#include "store/types.h"

namespace {

// SnapshotReader's only ingress is a path (it mmaps): round the input
// through a real file so the harness exercises the exact production path.
std::string WriteTempFile(const uint8_t* data, size_t size) {
  char path[] = "/tmp/omega_fuzz_XXXXXX";
  const int fd = ::mkstemp(path);
  if (fd < 0) return std::string();
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n <= 0) {
      ::close(fd);
      ::unlink(path);
      return std::string();
    }
    written += static_cast<size_t>(n);
  }
  ::close(fd);
  return std::string(path);
}

// A successfully opened dataset must be traversable: touch every accessor
// family that borrows from the mapping, so an out-of-bounds offset that
// slipped past validation faults here, inside the harness, under ASan.
void TraverseDataset(const omega::Dataset& dataset) {
  const omega::GraphStore& graph = dataset.graph();
  const size_t nodes = graph.NumNodes();
  uint64_t checksum = 0;
  for (size_t n = 0; n < nodes; ++n) {
    const omega::NodeId id = static_cast<omega::NodeId>(n);
    checksum += graph.NodeLabel(id).size();
    for (omega::NodeId neighbor :
         graph.SigmaNeighbors(id, omega::Direction::kOutgoing)) {
      checksum += neighbor;
    }
  }
  checksum += graph.FindNode("yago:Person").has_value() ? 1 : 0;
  (void)checksum;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string path = WriteTempFile(data, size);
  if (path.empty()) return 0;  // tmpfs hiccup; nothing to test

  {
    // Structural open (the cheap production path), then the strict one.
    omega::Result<std::shared_ptr<const omega::Dataset>> lax =
        omega::SnapshotReader::Open(path);
    if (lax.ok()) TraverseDataset(*lax.value());

    omega::SnapshotReader::Options strict;
    strict.verify_checksums = true;
    strict.deep_validate = true;
    omega::Result<std::shared_ptr<const omega::Dataset>> checked =
        omega::SnapshotReader::Open(path, strict);
    if (checked.ok()) TraverseDataset(*checked.value());

    // A snapshot that opens strictly must also verify; a disagreement means
    // the two validation paths drifted apart.
    const omega::Status verdict = omega::SnapshotReader::Verify(path);
    if (checked.ok() && !verdict.ok()) __builtin_trap();

    (void)omega::SnapshotReader::Inspect(path);
  }

  ::unlink(path.c_str());
  return 0;
}

#if !defined(OMEGA_FUZZ_WITH_LIBFUZZER)
// Standalone replay driver for toolchains without libFuzzer: each argument
// is a corpus file, run exactly once. Exit 0 iff every input was survived
// (flags beginning with '-' are ignored so CI can pass the same command
// line in both modes).
int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!arg.empty() && arg[0] == '-') continue;
    std::FILE* f = std::fopen(arg.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "snapshot_open_fuzz: cannot open %s\n",
                   arg.c_str());
      return 1;
    }
    std::vector<uint8_t> bytes;
    uint8_t chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
      bytes.insert(bytes.end(), chunk, chunk + n);
    }
    std::fclose(f);
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++replayed;
  }
  std::fprintf(stderr, "snapshot_open_fuzz: replayed %d input(s), no "
               "crashes\n", replayed);
  return 0;
}
#endif  // !OMEGA_FUZZ_WITH_LIBFUZZER
