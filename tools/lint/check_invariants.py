#!/usr/bin/env python3
"""Repo-invariant linter: enforces the standing constraints that generic
static analysis cannot express. Run from anywhere:

    python3 tools/lint/check_invariants.py [REPO_ROOT]

Registered as the `repo_invariants` CTest (so CMake-target drift fails every
tier-1 run) and as a step of the `static-analysis` CI job. Exit status: 0
when every invariant holds, 1 with file:line diagnostics otherwise.

Checks
------
1. cmake-registration: every buildable source file is named in its
   directory's CMakeLists.txt target list. An unregistered .cc silently
   drops out of the build — tests stop running without failing, library
   code stops compiling without anyone noticing (a standing ROADMAP
   constraint previously enforced by nothing).
2. gate-pairs: every google-benchmark bench over an eval/plan/service/
   snapshot hot path registers BM_Substrate* benches whose suffixes form
   complete (new, baseline) pairs known to tools/check_substrate_gate.py's
   PAIRINGS table — a bench without a gate pair measures but never gates.
3. hot-path-containers: no std::map / std::unordered_map in the hot-path
   directories (src/eval, src/store) outside the documented allowlist; the
   flat-hash / bucket-queue substrate exists precisely to keep node-scale
   lookups off those structures (PR 1/2 measured 1.2–9x).
4. frozen-api-const: the frozen read-API classes (GraphStore,
   BoundOntology) expose only const member functions — the compile-time
   face of the frozen-store thread-safety contract that lets QueryService
   share one store across workers without locks.
5. annotated-locking: src/service/ and src/common/cancel.h use the
   capability-annotated wrappers (common/mutex.h, common/atomics.h), never
   raw std::mutex / std::lock_guard / std::condition_variable /
   std::atomic — raw primitives are invisible to -Wthread-safety, so one
   raw lock would punch a silent hole in the capability analysis.
6. lifetime-bound-coverage: every public view-returning method (span /
   string_view / const-ref / const-pointer / auto-iterator return) of the
   zero-copy seam classes (LIFETIME_SEAM below) carries
   OMEGA_LIFETIME_BOUND. One unannotated accessor re-opens the
   dangling-view hole the annotations exist to close — and Clang stays
   silent about exactly the call sites flowing through it.
7. mapped-file-ownership: the MappedFile type is referenced only inside
   src/snapshot/ (its owners: Dataset and SnapshotReader). Everything else
   reaches mapped bytes through Dataset's lifetime-bounded accessors, so
   epoch hot-swap (PR 5) can retire a mapping knowing no pointer to it
   survives outside the snapshot layer.
8. borrow-justification: ConstArray::Borrowed / StringTable::Borrowed /
   OidSet::BorrowSortedUnique call sites in src/ outside the snapshot
   layer carry a `// borrow-ok:` comment within the five preceding lines
   explaining who owns the storage and why it outlives the view. Borrowing
   is meant to be rare and deliberate; an unjustified borrow is either a
   bug or missing its safety argument.
9. steady-clock-only: no std::chrono::system_clock /
   high_resolution_clock anywhere under src/. Every duration the obs
   layer reports (queue wait, exec time, swap/drain, span timestamps)
   must come from steady_clock — a wall-clock measurement goes backwards
   under NTP adjustment and high_resolution_clock is an alias for
   whichever clock the library picked (common/timer.h static_asserts the
   same constraint; this closes the workaround of timing around Timer).
10. no-dark-counters: every field of the stats structs that feed the
    observability surfaces (EvaluatorStats, ClassAggregate, ServiceStats)
    is named in at least one render/exposition source — EXPLAIN ANALYZE's
    per-operator rendering, ServiceStats::ToString, the service's
    metrics-registry wiring, or the shell. A counter that is accumulated
    but never rendered is a dark counter: it costs hot-path work and
    tells nobody anything. The field parser is exercised by a
    seeded-violation self-test in main() so a silently broken parser
    cannot turn this check into a no-op PASS.
11. endpoint-docs: every admin HTTP route registered in src/net (a
    `Route("/path", ...)` call) is documented in README.md by its literal
    path. An endpoint that exists but is documented nowhere is invisible
    to operators — exactly the failure mode an ops plane exists to
    prevent. The route extractor is covered by the same seeded-violation
    self-test discipline as check 10.
"""
from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

# --- configuration -----------------------------------------------------------

# check 2: bench files are "hot-path" when they include any of these.
HOT_PATH_INCLUDE = re.compile(r'#include\s+"(?:eval|plan|service|snapshot)/')

# check 3: documented exemptions, path -> justification (kept next to the
# rule so an allowlist entry can't outlive its reason).
HOT_PATH_CONTAINER_ALLOWLIST = {
    "src/eval/rank_join_reference.h":
        "seed join kept as executable reference (raced by the gate)",
    "src/eval/rank_join_reference.cc":
        "seed join kept as executable reference (raced by the gate)",
    "src/eval/tuple_dictionary_reference.h":
        "seed std::map dictionary kept as executable spec",
    "src/eval/tuple_dictionary_reference.cc":
        "seed std::map dictionary kept as executable spec",
    "src/eval/tuple_dictionary.h":
        "cold overflow lane behind the dense bucket window (documented)",
    "src/eval/tuple_dictionary.cc":
        "cold overflow lane behind the dense bucket window (documented)",
    "src/store/label_dictionary.h":
        "build/intern index; reads go through the frozen table",
    "src/store/label_dictionary.cc":
        "build/intern index; reads go through the frozen table",
    "src/store/graph_builder.h":
        "build phase only; never touched while serving",
    "src/store/graph_builder.cc":
        "build phase only; never touched while serving",
}

# check 4: file -> classes whose public API must be all-const.
FROZEN_READ_API = {
    "src/store/graph_store.h": ["GraphStore"],
    "src/ontology/ontology.h": ["BoundOntology"],
}

# check 5: raw concurrency primitives banned in these files/dirs (the
# annotated wrappers in common/mutex.h + common/atomics.h replace them).
# src/obs joined the scope in PR 9: the metrics registry and trace recorder
# sit on every hot path, so their locking must be visible to
# -Wthread-safety like the service's. src/net joined in PR 10: the admin
# server's listener/handler-pool handoff is lock-and-condvar machinery of
# exactly the kind the capability analysis exists to check.
ANNOTATED_LOCKING_SCOPE = ["src/service", "src/common/cancel.h", "src/obs",
                           "src/net"]
RAW_PRIMITIVE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock|condition_variable(?:_any)?|"
    r"atomic(?:_flag)?\s*<|atomic_)")

# check 6: file -> seam classes whose public view-returning methods must be
# OMEGA_LIFETIME_BOUND. Adding a view-returning API to one of these classes
# without its bound is a lint error by design (see ROADMAP standing
# constraints); extend this table when a new class joins the borrow seam.
LIFETIME_SEAM = {
    "src/common/const_array.h": ["ConstArray"],
    "src/store/string_table.h": ["StringTable"],
    "src/store/oid_set.h": ["OidSet"],
    "src/store/graph_store.h": ["CsrAdjacency", "GraphStore"],
    "src/store/label_dictionary.h": ["LabelDictionary"],
    "src/snapshot/mapped_file.h": ["MappedFile"],
    "src/snapshot/dataset.h": ["Dataset"],
    # The index structures may borrow their arrays from a mapped snapshot,
    # which puts them on the same seam as the store.
    "src/index/reachability_index.h": ["LabelReachability",
                                       "ReachabilityIndex"],
    "src/index/distance_sketch.h": ["DistanceSketch"],
    "src/index/index_manager.h": ["IndexManager"],
}

# check 6: a declaration whose return type looks like a borrowed view. auto
# is included because the seam's auto-returning members are all iterator
# accessors (begin/end) into borrowed storage.
VIEW_RETURN = re.compile(
    r"^(?:std::span\s*<|std::string_view\b|auto\b|"
    r"const\s+[\w:]+(?:\s*<[^()]*?>)?\s*[*&])")

# check 7: MappedFile may be named only under this directory.
MAPPED_FILE_HOME = "src/snapshot"

# check 8: borrow factories whose call sites need a borrow-ok comment, and
# the scopes exempt from the requirement, path-prefix -> justification.
BORROW_CALL = re.compile(r"::(?:Borrowed|BorrowSortedUnique)\s*\(")
BORROW_SITE_EXEMPT = {
    "src/snapshot/":
        "the snapshot layer is the borrow seam's home: it wires section "
        "spans into stores the owning Dataset keeps alive by construction",
    "src/store/graph_builder.cc":
        "GraphBuilder::Finalize borrows between members of the GraphStore "
        "it is assembling; they expire together",
    "src/store/graph_builder.h":
        "GraphBuilder::Finalize borrows between members of the GraphStore "
        "it is assembling; they expire together",
    "src/store/oid_set.cc":
        "holds the out-of-line definition of BorrowSortedUnique itself",
}

# check 9: wall-clock / alias clocks banned under src/ — durations must use
# steady_clock (via common/timer.h) so reported latencies survive NTP steps.
NON_MONOTONIC_CLOCK = re.compile(
    r"std::chrono::(?:system_clock|high_resolution_clock)\b")

# check 10: file -> stats structs whose every field must be reachable from
# an observability surface; and the sources that constitute those surfaces.
DARK_COUNTER_STRUCTS = {
    "src/eval/answer.h": ["EvaluatorStats"],
    "src/service/service_stats.h": ["ClassAggregate", "ServiceStats"],
}
RENDER_SOURCES = [
    "src/plan/plan_node.cc",         # EXPLAIN / EXPLAIN ANALYZE rendering
    "src/service/service_stats.cc",  # ServiceStats::ToString (.stats table)
    "src/service/query_service.cc",  # metrics-registry exposition wiring
    "examples/omega_shell.cpp",      # shell .stats/.metrics/.explain output
]

ERRORS: list[str] = []


def fail(path, line_no, message):
    ERRORS.append(f"{path}:{line_no}: {message}")


def strip_comments(text: str) -> str:
    """Blanks // and /* */ comments and string literals, preserving line
    structure so reported line numbers stay meaningful."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | 'str' | 'chr'
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = None
            out.append(c)
        i += 1
    return "".join(out)


# --- check 1: CMake registration --------------------------------------------

def check_cmake_registration(root: Path):
    """Every source file must be spelled out in its CMakeLists.txt."""
    rules = [
        # (source glob root, pattern, CMakeLists, how the file is named there)
        ("src", "**/*.cc", "src/CMakeLists.txt", "relative"),
        ("tests", "*.cc", "tests/CMakeLists.txt", "stem"),
        ("bench", "*.cc", "bench/CMakeLists.txt", "stem_or_name"),
        ("tools", "**/*.cc", "tools/CMakeLists.txt", "name_or_rel"),
        ("examples", "*.cpp", "examples/CMakeLists.txt", "stem"),
    ]
    for subdir, pattern, lists_rel, naming in rules:
        lists_path = root / lists_rel
        if not lists_path.exists():
            fail(lists_rel, 1, "missing CMakeLists.txt")
            continue
        registered = strip_cmake_comments(lists_path.read_text())
        tokens = set(re.findall(r"[\w./-]+", registered))
        for src in sorted((root / subdir).glob(pattern)):
            rel = src.relative_to(root)
            if naming == "relative":
                needles = [str(src.relative_to(root / subdir))]
            elif naming == "stem":
                needles = [src.stem]
            elif naming == "stem_or_name":
                needles = [src.stem, src.name]
            elif naming == "name_or_rel":
                # subdirectory targets (tools/fuzz/...) are registered by
                # their path relative to the CMakeLists' directory
                needles = [src.name, str(src.relative_to(root / subdir))]
            else:
                needles = [src.name]
            if not any(n in tokens for n in needles):
                fail(rel, 1,
                     f"not registered in {lists_rel} (a dropped "
                     "registration silently removes it from the build)")


def strip_cmake_comments(text: str) -> str:
    return "\n".join(line.split("#", 1)[0] for line in text.splitlines())


# --- check 2: substrate gate pairs -------------------------------------------

def load_gate_pairings(root: Path) -> dict[str, str]:
    gate = root / "tools/check_substrate_gate.py"
    tree = ast.parse(gate.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "PAIRINGS":
                    return ast.literal_eval(node.value)
    fail("tools/check_substrate_gate.py", 1, "no PAIRINGS table found")
    return {}


def check_gate_pairs(root: Path):
    pairings = load_gate_pairings(root)
    if not pairings:
        return
    suffixes = set(pairings) | set(pairings.values())
    for bench in sorted((root / "bench").glob("*.cc")):
        text = strip_comments(bench.read_text())
        rel = bench.relative_to(root)
        is_gb = "benchmark::State" in text
        if not (is_gb and HOT_PATH_INCLUDE.search(text)):
            continue
        names = set(re.findall(r"\bBM_Substrate\w+", text))
        if not names:
            fail(rel, 1,
                 "google-benchmark bench over an eval/plan/service/snapshot "
                 "hot path defines no BM_Substrate* gate bench "
                 "(check_substrate_gate.py will never gate it)")
            continue
        paired = 0
        for name in sorted(names):
            suffix = next((s for s in suffixes if name.endswith(s)), None)
            if suffix is None:
                fail(rel, line_of(bench, name),
                     f"{name} has no suffix registered in "
                     "check_substrate_gate.py PAIRINGS")
            elif suffix in pairings:
                twin = name[: -len(suffix)] + pairings[suffix]
                if twin not in names:
                    fail(rel, line_of(bench, name),
                         f"{name} is missing its baseline twin {twin}")
                else:
                    paired += 1
        if paired == 0:
            fail(rel, 1, "no complete (new, baseline) gate pair defined")


def line_of(path: Path, needle: str) -> int:
    for i, line in enumerate(path.read_text().splitlines(), 1):
        if needle in line:
            return i
    return 1


# --- check 3: hot-path container ban -----------------------------------------

def check_hot_path_containers(root: Path):
    banned = re.compile(r"std::(?:unordered_)?map\s*<")
    for hot_dir in ("src/eval", "src/store"):
        for src in sorted((root / hot_dir).glob("**/*")):
            if src.suffix not in (".h", ".cc"):
                continue
            rel = str(src.relative_to(root))
            if rel in HOT_PATH_CONTAINER_ALLOWLIST:
                continue
            stripped = strip_comments(src.read_text())
            for i, line in enumerate(stripped.splitlines(), 1):
                if banned.search(line):
                    fail(rel, i,
                         "std::map/std::unordered_map in a hot-path dir; "
                         "use the flat-hash/bucket-queue substrate "
                         "(common/flat_hash.h, eval/tuple_dictionary.h) or "
                         "add a justified allowlist entry")


# --- check 4: frozen read-API constness --------------------------------------

def class_body(stripped: str, class_name: str) -> tuple[str, int, str] | None:
    """Returns (body, first_line, default_access) of a class/struct
    definition. Tolerates ALL_CAPS attribute macros between the class-key
    and the name (`class OMEGA_OWNER_TYPE MappedFile { ... }`)."""
    m = re.search(rf"\b(class|struct)\s+(?:[A-Z_][A-Z0-9_]*\s+)*"
                  rf"{class_name}\b[^;{{]*{{", stripped)
    if m is None:
        return None
    start = m.end()
    depth = 1
    i = start
    while i < len(stripped) and depth:
        if stripped[i] == "{":
            depth += 1
        elif stripped[i] == "}":
            depth -= 1
        i += 1
    default_access = "public" if m.group(1) == "struct" else "private"
    return (stripped[start:i - 1], stripped.count("\n", 0, start) + 1,
            default_access)


def check_frozen_read_api(root: Path):
    for rel, classes in FROZEN_READ_API.items():
        path = root / rel
        stripped = strip_comments(path.read_text())
        for class_name in classes:
            found = class_body(stripped, class_name)
            if found is None:
                fail(rel, 1, f"frozen read-API class {class_name} not found "
                     "(update FROZEN_READ_API in check_invariants.py)")
                continue
            body, first_line, default_access = found
            for line_no, decl in public_declarations(body, first_line,
                                                     default_access):
                problem = nonconst_method(decl, class_name)
                if problem:
                    fail(rel, line_no,
                         f"{class_name}::{problem} is a non-const public "
                         "member — the frozen-store contract requires a "
                         "const-only read API (see graph_store.h)")


def public_declarations(body: str, first_line: int,
                        default_access: str = "private"):
    """Yields (line, declaration) for each top-level public declaration."""
    access = default_access
    decl, depth, line = [], 0, first_line
    decl_line = line
    for ch in body:
        if ch == "\n":
            line += 1
        if depth == 0 and not decl:
            decl_line = line
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                # inline body ends a declaration
                text = "".join(decl).strip()
                if access == "public" and text:
                    yield decl_line, text + "{}"
                decl = []
                continue
        if depth == 0:
            if ch == ";":
                text = "".join(decl).strip()
                m = re.match(r"\s*(public|private|protected)\s*:\s*(.*)",
                             text, re.S)
                if m:  # access specifier glued to the first declaration
                    access, text = m.group(1), m.group(2).strip()
                if access == "public" and text:
                    yield decl_line, text
                decl = []
            else:
                decl.append(ch)
                joined = "".join(decl)
                m = re.search(r"(public|private|protected)\s*:\s*$", joined)
                if m:
                    access = m.group(1)
                    decl = []
        elif depth == 1 and ch == "{":
            # signature of an inline-bodied member
            text = "".join(decl).strip()
            m = re.match(r"\s*(public|private|protected)\s*:\s*(.*)", text,
                         re.S)
            if m:
                access, text = m.group(1), m.group(2).strip()
            if access == "public" and text:
                yield decl_line, text + "{}"
            decl = []


def nonconst_method(decl: str, class_name: str) -> str | None:
    """Returns the member name when `decl` is a mutating public method."""
    decl = " ".join(decl.split())
    if "(" not in decl:
        return None  # data member (none are public in the checked classes)
    for benign in ("friend ", "using ", "typedef ", "static "):
        if decl.startswith(benign):
            return None
    if "= delete" in decl or "= default" in decl:
        return None
    head = decl.split("(", 1)[0].strip()
    name = head.split()[-1] if head.split() else ""
    name = name.lstrip("*&~")
    if name == class_name or head.endswith("~" + class_name):
        return None  # constructor / destructor
    if "operator=" in decl:
        return None  # copy/move assignment (deleted or defaulted move)
    close = decl.rfind(")")
    trailer = decl[close + 1:] if close >= 0 else ""
    trailer = trailer.replace("{}", " ").strip()
    if re.match(r"const\b", trailer):
        return None
    return name or decl[:40]


# --- check 5: annotated locking scope ----------------------------------------

def check_annotated_locking(root: Path):
    for scope in ANNOTATED_LOCKING_SCOPE:
        path = root / scope
        files = ([path] if path.is_file()
                 else sorted(path.glob("**/*.h")) + sorted(
                     path.glob("**/*.cc")))
        for src in files:
            rel = src.relative_to(root)
            stripped = strip_comments(src.read_text())
            for i, line in enumerate(stripped.splitlines(), 1):
                m = RAW_PRIMITIVE.search(line)
                if m:
                    fail(rel, i,
                         f"raw {m.group(0).rstrip('<').strip()} in annotated "
                         "scope; use common/mutex.h (Mutex/MutexLock/"
                         "SharedMutex/CondVar) or common/atomics.h "
                         "(RelaxedAtomic) so -Wthread-safety can see it")


# --- check 6: lifetime-bound coverage ----------------------------------------

def view_returning(decl: str) -> bool:
    """True when `decl` is a method returning a borrowed view (span /
    string_view / const-ref / const-pointer / auto iterator)."""
    d = " ".join(decl.split())
    if "(" not in d:
        return False  # data member
    for benign in ("friend ", "using ", "typedef "):
        if d.startswith(benign):
            return False
    if "= delete" in d or "= default" in d:
        return False
    # peel prefixes that sit before the return type
    d = re.sub(r"^(?:\[\[[^\]]*\]\]\s*)+", "", d)
    d = re.sub(r"^template\s*<[^;{}]*?>\s*", "", d)
    d = re.sub(r"^(?:static|inline|explicit|virtual|constexpr)\s+", "", d)
    d = re.sub(r"^(?:\[\[[^\]]*\]\]\s*)+", "", d)
    return VIEW_RETURN.match(d) is not None


def check_lifetime_bound_coverage(root: Path):
    for rel, classes in LIFETIME_SEAM.items():
        path = root / rel
        if not path.exists():
            fail(rel, 1, "LIFETIME_SEAM file missing "
                 "(update check_invariants.py)")
            continue
        stripped = strip_comments(path.read_text())
        for class_name in classes:
            found = class_body(stripped, class_name)
            if found is None:
                fail(rel, 1, f"seam class {class_name} not found "
                     "(update LIFETIME_SEAM in check_invariants.py)")
                continue
            body, first_line, default_access = found
            for line_no, decl in public_declarations(body, first_line,
                                                     default_access):
                if not view_returning(decl):
                    continue
                if "OMEGA_LIFETIME_BOUND" not in decl:
                    snippet = " ".join(decl.split())[:60]
                    fail(rel, line_no,
                         f"{class_name} public view-returning method "
                         f"`{snippet}` lacks OMEGA_LIFETIME_BOUND — without "
                         "the bound Clang cannot flag views that outlive "
                         "this object (common/lifetime_annotations.h)")


# --- check 7: MappedFile ownership confinement -------------------------------

def check_mapped_file_ownership(root: Path):
    for src in sorted((root / "src").glob("**/*")):
        if src.suffix not in (".h", ".cc"):
            continue
        rel = str(src.relative_to(root))
        if rel.startswith(MAPPED_FILE_HOME + "/"):
            continue
        stripped = strip_comments(src.read_text())
        for i, line in enumerate(stripped.splitlines(), 1):
            if re.search(r"\bMappedFile\b", line):
                fail(rel, i,
                     "MappedFile referenced outside src/snapshot/ — only "
                     "Dataset/SnapshotReader may own or name the mapping; "
                     "everything else must go through Dataset's "
                     "lifetime-bounded accessors so epoch hot-swap can "
                     "retire mappings safely")


# --- check 8: borrow-site justification --------------------------------------

def check_borrow_justification(root: Path):
    for src in sorted((root / "src").glob("**/*")):
        if src.suffix not in (".h", ".cc"):
            continue
        rel = str(src.relative_to(root))
        if any(rel == p or rel.startswith(p) for p in BORROW_SITE_EXEMPT):
            continue
        original_lines = src.read_text().splitlines()
        stripped = strip_comments(src.read_text())
        for i, line in enumerate(stripped.splitlines(), 1):
            if not BORROW_CALL.search(line):
                continue
            window = original_lines[max(0, i - 6):i]
            if not any("borrow-ok:" in w for w in window):
                fail(rel, i,
                     "borrow factory call without a `// borrow-ok:` "
                     "justification in the five preceding lines — state "
                     "who owns the viewed storage and why it outlives "
                     "the borrow (or route through owned construction)")


# --- check 9: steady-clock only ----------------------------------------------

def check_steady_clock(root: Path):
    for src in sorted((root / "src").glob("**/*")):
        if src.suffix not in (".h", ".cc"):
            continue
        rel = src.relative_to(root)
        stripped = strip_comments(src.read_text())
        for i, line in enumerate(stripped.splitlines(), 1):
            m = NON_MONOTONIC_CLOCK.search(line)
            if m:
                fail(rel, i,
                     f"{m.group(0)} under src/ — durations and span "
                     "timestamps must come from std::chrono::steady_clock "
                     "(use common/timer.h); wall clocks step backwards "
                     "under NTP and high_resolution_clock is an "
                     "unspecified alias")


# --- check 10: no dark counters ----------------------------------------------

def struct_fields(body: str, first_line: int,
                  default_access: str = "public"):
    """Yields (line, name) for each public data member of a struct body."""
    for line_no, decl in public_declarations(body, first_line,
                                             default_access):
        if "(" in decl:
            continue  # method (every stats field is a plain member)
        d = decl.split("=", 1)[0]
        d = re.sub(r"\[[^\]]*\]", "", d).strip()
        parts = d.split()
        if len(parts) >= 2:
            yield line_no, parts[-1]


def check_dark_counters(root: Path):
    rendered = []
    for rel in RENDER_SOURCES:
        path = root / rel
        if not path.exists():
            fail(rel, 1, "RENDER_SOURCES file missing "
                 "(update check_invariants.py)")
            continue
        # Comments are stripped so a commented-out rendering line cannot
        # satisfy the check.
        rendered.append(strip_comments(path.read_text()))
    tokens = set(re.findall(r"\w+", "\n".join(rendered)))
    for rel, structs in DARK_COUNTER_STRUCTS.items():
        path = root / rel
        if not path.exists():
            fail(rel, 1, "DARK_COUNTER_STRUCTS file missing "
                 "(update check_invariants.py)")
            continue
        stripped = strip_comments(path.read_text())
        for struct_name in structs:
            found = class_body(stripped, struct_name)
            if found is None:
                fail(rel, 1, f"stats struct {struct_name} not found "
                     "(update DARK_COUNTER_STRUCTS in check_invariants.py)")
                continue
            body, first_line, default_access = found
            for line_no, field in struct_fields(body, first_line,
                                                default_access):
                if field not in tokens:
                    fail(rel, line_no,
                         f"{struct_name}.{field} is a dark counter — "
                         "accumulated but named in no render/exposition "
                         "source (EXPLAIN ANALYZE, ServiceStats::ToString, "
                         "the metrics wiring, or the shell); render it or "
                         "delete it")


# --- check 11: endpoint docs -------------------------------------------------

# A route registration in the net layer: Route("/path", ...). \s* lets the
# string literal sit on the next line.
ROUTE_REGISTRATION = re.compile(r'\bRoute\(\s*"(/[\w.-]*)"')


def undocumented_routes(stripped: str, readme: str):
    """Yields (line, path) for each registered route whose literal path
    does not appear in the README text."""
    for m in ROUTE_REGISTRATION.finditer(stripped):
        path = m.group(1)
        if path not in readme:
            yield stripped.count("\n", 0, m.start()) + 1, path


def check_endpoint_docs(root: Path):
    readme_path = root / "README.md"
    if not readme_path.exists():
        fail("README.md", 1, "missing README.md (endpoint-docs needs it)")
        return
    readme = readme_path.read_text()
    for src in sorted((root / "src/net").glob("**/*.cc")):
        rel = src.relative_to(root)
        stripped = strip_comments(src.read_text())
        for line_no, path in undocumented_routes(stripped, readme):
            fail(rel, line_no,
                 f"admin route {path} is registered but its path appears "
                 "nowhere in README.md — document every operator-facing "
                 "endpoint (see the Ops plane section)")


def self_test() -> bool:
    """Seeded-violation self-test for check 10: the field parser must pull
    the data members out of a synthetic struct and flag exactly the one
    missing from a synthetic render source. A regression in
    public_declarations/struct_fields would otherwise make the dark-counter
    check vacuously pass on everything."""
    struct_text = strip_comments(
        "struct FakeStats {\n"
        "  uint64_t rendered_field = 0;\n"
        "  uint64_t dark_field = 0;  // seeded violation: never rendered\n"
        "  double per_class[4];\n"
        "  double Ratio() const { return 0; }\n"
        "};\n")
    found = class_body(struct_text, "FakeStats")
    if found is None:
        return False
    body, first_line, default_access = found
    fields = [name for _, name in struct_fields(body, first_line,
                                                default_access)]
    if fields != ["rendered_field", "dark_field", "per_class"]:
        return False
    render_text = ("out += std::to_string(rendered_field);\n"
                   "for (auto& c : per_class) Render(c);\n")
    tokens = set(re.findall(r"\w+", render_text))
    if [f for f in fields if f not in tokens] != ["dark_field"]:
        return False

    # Seeded violation for check 11: the route extractor must find the
    # registration split across lines, skip the commented-out one, and
    # flag exactly the path missing from the synthetic README.
    route_source = strip_comments(
        'server->Route("/documented", "d", handler);\n'
        '// server->Route("/commented-out", "c", handler);\n'
        "server->Route(\n"
        '    "/dark-endpoint", "seeded violation", handler);\n')
    fake_readme = "Endpoints: `/documented` only.\n"
    flagged = list(undocumented_routes(route_source, fake_readme))
    return [path for _, path in flagged] == ["/dark-endpoint"] and (
        flagged[0][0] == 3)


# --- main --------------------------------------------------------------------

def main() -> int:
    if len(sys.argv) > 2:
        print(f"usage: {sys.argv[0]} [REPO_ROOT]", file=sys.stderr)
        return 2
    root = (Path(sys.argv[1]) if len(sys.argv) == 2
            else Path(__file__).resolve().parent.parent.parent)
    if not (root / "ROADMAP.md").exists():
        print(f"ERROR: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    if not self_test():
        print("ERROR: check_invariants.py self-test failed — the "
              "dark-counter field parser no longer flags a seeded "
              "violation; fix the parser before trusting check 10",
              file=sys.stderr)
        return 2

    check_cmake_registration(root)
    check_gate_pairs(root)
    check_hot_path_containers(root)
    check_frozen_read_api(root)
    check_annotated_locking(root)
    check_lifetime_bound_coverage(root)
    check_mapped_file_ownership(root)
    check_borrow_justification(root)
    check_steady_clock(root)
    check_dark_counters(root)
    check_endpoint_docs(root)

    if ERRORS:
        for err in ERRORS:
            print(err, file=sys.stderr)
        print(f"\nFAIL: {len(ERRORS)} invariant violation(s)",
              file=sys.stderr)
        return 1
    print("PASS: cmake-registration, gate-pairs, hot-path-containers, "
          "frozen-api-const, annotated-locking, lifetime-bound-coverage, "
          "mapped-file-ownership, borrow-justification, steady-clock-only, "
          "no-dark-counters, endpoint-docs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
