#!/usr/bin/env python3
"""Clang Static Analyzer gate: path-sensitive checks over src/, compared
against a checked-in baseline so only NEW findings fail the build.

    python3 tools/lint/run_clang_analyze.py [--compiler clang++]
        [--root REPO_ROOT] [--update-baseline]

Runs `clang++ --analyze` (symbolic execution: null derefs, use-after-move,
leaks, dead stores, uninitialized reads) over every src/**/*.cc translation
unit. The analyzer explores paths the type system and -Wdangling cannot —
it is the dynamic-ish counterpart of the lifetime annotations: annotations
reject bad *shapes* at declaration sites, the analyzer chases bad *paths*
through the implementation.

Findings are normalized to `relative/path.cc: message [checker]` — line and
column numbers are deliberately dropped so unrelated edits shifting code
up or down do not churn the baseline. The normalized set is diffed against
tools/lint/clang_analyze_baseline.txt:

  * a finding not in the baseline  -> FAIL (new bug or new suppression to
    justify; rerun with --update-baseline only after reading the full
    diagnostics printed below the diff)
  * a baseline entry not seen      -> note (fixed or shifted; tidy the
    baseline with --update-baseline at your leisure)

The baseline is a *suppression* list, not an allowlist of files: keep it
small, and prefer fixing findings to baselining them. Registered as a step
of the static-analysis CI job after the -Werror contract build.
"""
from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

# `path:line:col: warning: message [checker.Name]`
FINDING = re.compile(
    r"^(?P<path>[^:]+):\d+:\d+:\s+warning:\s+(?P<message>.*?)"
    r"\s+\[(?P<checker>[\w.-]+)\]\s*$")

ANALYZE_FLAGS = ["--analyze", "--analyzer-output", "text", "-std=c++20"]


def analyze_file(compiler: str, root: Path, source: Path) -> list[str]:
    """Returns normalized findings for one translation unit."""
    cmd = [compiler, *ANALYZE_FLAGS, "-I", str(root / "src"), str(source)]
    proc = subprocess.run(cmd, capture_output=True, text=True, cwd=root)
    findings = []
    for line in proc.stderr.splitlines():
        m = FINDING.match(line.strip())
        if not m:
            continue
        path = Path(m.group("path"))
        try:
            rel = path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = path  # header outside the repo (system include)
        findings.append(f"{rel}: {m.group('message')} "
                        f"[{m.group('checker')}]")
    if proc.returncode != 0 and not findings:
        # A hard failure (missing header, crash) with no parseable findings
        # must not read as "clean".
        raise RuntimeError(
            f"{source}: analyzer exited {proc.returncode} with no findings "
            f"parsed:\n{proc.stderr[-2000:]}")
    return findings


def display(path: Path, root: Path) -> str:
    try:
        return str(path.resolve().relative_to(root))
    except ValueError:
        return str(path)


def load_baseline(path: Path) -> set[str]:
    if not path.exists():
        return set()
    entries = set()
    for line in path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def write_baseline(path: Path, findings: set[str]):
    lines = [
        "# Clang Static Analyzer suppression baseline — one normalized",
        "# finding per line (`path: message [checker]`, line numbers",
        "# dropped). Managed by tools/lint/run_clang_analyze.py;",
        "# regenerate with --update-baseline. Keep this SHORT: entries are",
        "# acknowledged debt, each one a finding someone chose not to fix.",
    ]
    lines.extend(sorted(findings))
    path.write_text("\n".join(lines) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--compiler", default="clang++")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent.parent)
    parser.add_argument("--baseline", type=Path, default=None)
    parser.add_argument("--update-baseline", action="store_true")
    args = parser.parse_args()

    root = args.root.resolve()
    baseline_path = args.baseline or root / "tools/lint/clang_analyze_baseline.txt"
    sources = sorted((root / "src").glob("**/*.cc"))
    if not sources:
        print(f"ERROR: no sources under {root}/src", file=sys.stderr)
        return 2

    all_findings: set[str] = set()
    for source in sources:
        try:
            findings = analyze_file(args.compiler, root, source)
        except RuntimeError as err:
            print(f"ERROR: {err}", file=sys.stderr)
            return 2
        all_findings.update(findings)
        rel = source.relative_to(root)
        status = f"{len(findings)} finding(s)" if findings else "clean"
        print(f"  analyzed {rel}: {status}")

    if args.update_baseline:
        write_baseline(baseline_path, all_findings)
        print(f"baseline updated: {len(all_findings)} entrie(s) -> "
              f"{display(baseline_path, root)}")
        return 0

    baseline = load_baseline(baseline_path)
    new = sorted(all_findings - baseline)
    fixed = sorted(baseline - all_findings)

    for entry in fixed:
        print(f"note: baseline entry no longer reported (fixed?): {entry}")
    if new:
        print(f"\nFAIL: {len(new)} analyzer finding(s) not in "
              f"{display(baseline_path, root)}:", file=sys.stderr)
        for entry in new:
            print(f"  {entry}", file=sys.stderr)
        print("\nFix them, or if a finding is a justified false positive, "
              "rerun with --update-baseline and commit the diff.",
              file=sys.stderr)
        return 1
    print(f"PASS: {len(sources)} translation units, "
          f"{len(all_findings)} finding(s), all baselined "
          f"({len(baseline)} baseline entrie(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
