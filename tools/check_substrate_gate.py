#!/usr/bin/env python3
"""Substrate perf regression gate.

Reads the google-benchmark JSON written by

    bench_micro_substrate --benchmark_filter=Substrate \
        --benchmark_out=BENCH_substrate.json --benchmark_out_format=json

pairs each new-substrate bench with its seed-substrate baseline by name
suffix, and fails (exit 1) if any new implementation is slower than its
baseline beyond a noise tolerance. Run via the `substrate_gate` CMake target.
"""
import json
import sys

# new-implementation suffix -> baseline suffix
PAIRINGS = {
    "_BucketQueue": "_StdMapReference",
    "_FlatHash": "_StdUnordered",
    # Rank-join substrate (PR 2): compiled slot bindings + packed-integer
    # keys vs the seed string-keyed join; packed flat-hash head dedup vs the
    # seed std::set of NodeId vectors.
    "_CompiledSlots": "_StringKeyReference",
    "_FlatPacked": "_StdSetReference",
}

# Generous noise floor so the gate trips on real regressions, not scheduler
# jitter; the structures win by integer factors when healthy.
TOLERANCE = 1.10


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} BENCH_substrate.json", file=sys.stderr)
        return 2

    with open(sys.argv[1]) as f:
        report = json.load(f)

    times = {
        b["name"]: b["cpu_time"]
        for b in report.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }

    checked = 0
    failures = []
    missing = []
    for name, cpu_time in sorted(times.items()):
        for new_suffix, base_suffix in PAIRINGS.items():
            if not name.endswith(new_suffix):
                continue
            base_name = name[: -len(new_suffix)] + base_suffix
            if base_name not in times:
                # A vanished baseline would otherwise silently disable the
                # pair's regression check.
                print(f"ERROR: no baseline {base_name} for {name}",
                      file=sys.stderr)
                missing.append(name)
                continue
            checked += 1
            base_time = times[base_name]
            ratio = cpu_time / base_time if base_time > 0 else float("inf")
            verdict = "OK" if ratio <= TOLERANCE else "REGRESSION"
            print(
                f"{verdict:>10}  {name}: {cpu_time:.0f} ns  vs  "
                f"{base_name}: {base_time:.0f} ns  "
                f"(ratio {ratio:.3f}, speedup {1 / ratio:.2f}x)"
            )
            if ratio > TOLERANCE:
                failures.append(name)

    if missing:
        print(f"\nFAIL: {len(missing)} bench(es) without a baseline: "
              + ", ".join(missing), file=sys.stderr)
        return 2
    if checked == 0:
        print("ERROR: no substrate pairs found in the report", file=sys.stderr)
        return 2
    if failures:
        print(f"\nFAIL: {len(failures)} substrate regression(s): "
              + ", ".join(failures), file=sys.stderr)
        return 1
    print(f"\nPASS: {checked} substrate pair(s) at or above baseline speed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
