#!/usr/bin/env python3
"""Substrate perf regression gate.

Reads one or more google-benchmark JSON reports written by

    bench_micro_substrate --benchmark_filter=Substrate \
        --benchmark_out=BENCH_substrate.json --benchmark_out_format=json
    bench_plan --benchmark_filter=Substrate \
        --benchmark_out=BENCH_plan.json --benchmark_out_format=json

merges their timings, pairs each new-substrate bench with its baseline by
name suffix, and fails (exit 1) if any new implementation is slower than its
baseline beyond a noise tolerance — or, for pairs with a required minimum
speedup, not faster by at least that factor. Run via the `substrate_gate`
CMake target.
"""
import json
import sys

# new-implementation suffix -> baseline suffix
PAIRINGS = {
    "_BucketQueue": "_StdMapReference",
    "_FlatHash": "_StdUnordered",
    # Rank-join substrate (PR 2): compiled slot bindings + packed-integer
    # keys vs the seed string-keyed join; packed flat-hash head dedup vs the
    # seed std::set of NodeId vectors.
    "_CompiledSlots": "_StringKeyReference",
    "_FlatPacked": "_StdSetReference",
    # Cost-based planner (PR 3): greedy bushy join order vs the seed's
    # textual left-deep order on bench_plan's skewed-selectivity workload.
    "_PlannedOrder": "_TextualOrder",
    # Query service (PR 4): cache-hit vs cache-miss latency on a repeated
    # mixed workload, and 8-worker vs 1-worker cache-cold throughput.
    # bench_service only registers the Parallel/Serial pair on hosts with
    # >= 4 hardware threads (on fewer, the pair would measure the scheduler,
    # not the service); the gate skips pairs that are entirely absent.
    "_CacheHit": "_CacheMiss",
    "_ServiceParallel": "_ServiceSerial",
    # Snapshot storage engine (PR 5): opening the binary mmap snapshot vs
    # re-parsing the text format and rebuilding the CSR store.
    "_SnapshotLoad": "_TextLoad",
    # Reachability & distance index (PR 8): merged-interval probes vs the
    # label-BFS the closure walk degenerates to, and sketch-floored
    # distance-aware rounds vs the plain psi ratchet.
    "_ReachProbe": "_ReachBfs",
    "_DistanceSketch": "_DistanceRounds",
    # Observability layer (PR 9): the serving mix with every metric
    # instrument live vs enable_metrics=false. No MIN_SPEEDUP — the claim is
    # that instrumentation is near-free, i.e. within the plain tolerance.
    "_MetricsOn": "_MetricsOff",
    # Ops plane (PR 10): the same mix with the always-on flight recorder
    # appending a flat completion summary per request vs no recorder wired.
    # Same near-free claim as _MetricsOn.
    "_RecorderOn": "_RecorderOff",
}

# Pairs that must not merely avoid regressing but beat their baseline by a
# factor: the planner exists to dodge intermediate-result blow-ups, so a
# planned order that is not clearly faster on the skewed workload means the
# cost model or the greedy construction broke.
MIN_SPEEDUP = {
    "_PlannedOrder": 1.5,
    # A top-k hit is a lock + hash probe + vector copy; anything under 20x
    # means the cache path grew real work.
    "_CacheHit": 20.0,
    # 8 workers on >= 4 cores must hold >= 3x over 1 worker on the
    # cache-cold mix, or the serving layer serialises somewhere.
    "_ServiceParallel": 3.0,
    # The snapshot engine's reason to exist: mmap-opening a dataset must
    # beat the text re-parse + CSR rebuild by an order of magnitude (it
    # measures >> 100x at default scale; 10x leaves room for tiny graphs
    # where constant costs dominate).
    "_SnapshotLoad": 10.0,
    # An interval probe is a component lookup + prefix-sum count; the BFS it
    # replaces walks the whole chain suffix. O(1) vs O(N) leaves orders of
    # magnitude of headroom over 10x.
    "_ReachProbe": 10.0,
    # The sketch floor skips ~224 of ~225 psi rounds on the far-apart
    # workload; 3x tolerates the shared final round dominating on small
    # graphs.
    "_DistanceSketch": 3.0,
}

# Pairs whose work accrues on service worker threads while the driving
# thread blocks: compared on wall-clock (real_time) instead of cpu_time,
# which would only see the driver.
REAL_TIME_PAIRS = {"_CacheHit", "_ServiceParallel", "_MetricsOn",
                   "_RecorderOn"}

# Generous noise floor so the gate trips on real regressions, not scheduler
# jitter; the structures win by integer factors when healthy.
TOLERANCE = 1.10


def main() -> int:
    if len(sys.argv) < 2:
        print(f"usage: {sys.argv[0]} BENCH_JSON [BENCH_JSON ...]",
              file=sys.stderr)
        return 2

    times = {}
    for path in sys.argv[1:]:
        with open(path) as f:
            report = json.load(f)
        for b in report.get("benchmarks", []):
            if b.get("run_type", "iteration") != "iteration":
                continue
            # UseRealTime() benches report as "<name>/real_time".
            name = b["name"].removesuffix("/real_time")
            times[name] = {"cpu": b["cpu_time"], "real": b["real_time"]}

    checked = 0
    failures = []
    missing = []
    for name, timing in sorted(times.items()):
        for new_suffix, base_suffix in PAIRINGS.items():
            if not name.endswith(new_suffix):
                continue
            base_name = name[: -len(new_suffix)] + base_suffix
            if base_name not in times:
                # A vanished baseline would otherwise silently disable the
                # pair's regression check.
                print(f"ERROR: no baseline {base_name} for {name}",
                      file=sys.stderr)
                missing.append(name)
                continue
            checked += 1
            metric = "real" if new_suffix in REAL_TIME_PAIRS else "cpu"
            cpu_time = timing[metric]
            base_time = times[base_name][metric]
            ratio = cpu_time / base_time if base_time > 0 else float("inf")
            max_ratio = TOLERANCE
            if new_suffix in MIN_SPEEDUP:
                max_ratio = 1.0 / MIN_SPEEDUP[new_suffix]
            if ratio <= max_ratio:
                verdict = "OK"
            elif new_suffix in MIN_SPEEDUP and ratio <= TOLERANCE:
                # Not slower than its baseline, just short of the required
                # factor — a different failure than a regression.
                verdict = "TOO SLOW"
            else:
                verdict = "REGRESSION"
            required = (f", requires >= {MIN_SPEEDUP[new_suffix]:.1f}x"
                        if new_suffix in MIN_SPEEDUP else "")
            print(
                f"{verdict:>10}  {name}: {cpu_time:.0f} ns  vs  "
                f"{base_name}: {base_time:.0f} ns  "
                f"(ratio {ratio:.3f}, speedup {1 / ratio:.2f}x{required})"
            )
            if ratio > max_ratio:
                failures.append(name)

    if missing:
        print(f"\nFAIL: {len(missing)} bench(es) without a baseline: "
              + ", ".join(missing), file=sys.stderr)
        return 2
    if checked == 0:
        print("ERROR: no substrate pairs found in the report", file=sys.stderr)
        return 2
    if failures:
        print(f"\nFAIL: {len(failures)} pair(s) below required speed: "
              + ", ".join(failures), file=sys.stderr)
        return 1
    print(f"\nPASS: {checked} substrate pair(s) at or above required speed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
