// Randomized equivalence properties for the reachability & distance index:
// every index-substituted plan must produce the identical ranked answer
// multiset as the plain NFA product walk, over random graphs containing SCC
// cycles, self-loops and disconnected nodes, across the closure shapes the
// planner recognises; and the distance-sketch ψ floor must change round
// counts, never answers.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "eval/distance_aware.h"
#include "eval/query_engine.h"
#include "index/distance_sketch.h"
#include "index/index_manager.h"
#include "test_util.h"

namespace omega {
namespace {

using omega::testing::CanonAnswers;
using omega::testing::Cj;
using omega::testing::MakeGraph;
using omega::testing::Qy;
using omega::testing::RandomGraph;

class IndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexPropertyTest, SubstitutedPlansMatchNfaWalk) {
  const uint64_t seed = GetParam();
  // Dense enough for multi-node SCCs, sparse enough to leave some nodes
  // without `a` edges entirely (the "extras" path).
  GraphStore g = RandomGraph(seed, 24, {"a", "b"}, 1.3);
  IndexManager indexes(&g);
  QueryEngine engine(&g, nullptr, &indexes);

  const std::string c1 = "n" + std::to_string(seed % 24);
  const std::string c2 = "n" + std::to_string((seed / 7) % 24);
  const std::vector<std::string> queries = {
      "(?Y) <- (" + c1 + ", a*, ?Y)",
      "(?X) <- (?X, a*, " + c1 + ")",
      "(?Y) <- (" + c1 + ", a+, ?Y)",
      "(?Y) <- (" + c1 + ", a.a*, ?Y)",
      "(?Y) <- (" + c1 + ", a-*, ?Y)",
      "(?Y) <- (" + c1 + ", _*, ?Y)",
      "(?Y) <- (" + c1 + ", a+, " + c2 + "), (" + c2 + ", _*, ?Y)",
      "(?X, ?Z) <- (" + c1 + ", a*, ?X), (?X, b, ?Z)",
  };

  QueryEngineOptions with_index;
  QueryEngineOptions no_index;
  no_index.use_reachability_index = false;
  for (const std::string& text : queries) {
    const Query query = Qy(text);
    Result<std::vector<QueryAnswer>> indexed =
        engine.ExecuteTopK(query, 0, with_index);
    Result<std::vector<QueryAnswer>> walked =
        engine.ExecuteTopK(query, 0, no_index);
    ASSERT_TRUE(indexed.ok()) << text;
    ASSERT_TRUE(walked.ok()) << text;
    EXPECT_EQ(CanonAnswers(*indexed), CanonAnswers(*walked))
        << "seed=" << seed << " query=" << text;
  }
}

TEST_P(IndexPropertyTest, SubstitutionActuallyEngages) {
  // Guard against the equivalence above becoming vacuous: the closure
  // query must really plan through the index on these graphs.
  const uint64_t seed = GetParam();
  GraphStore g = RandomGraph(seed, 24, {"a", "b"}, 1.3);
  IndexManager indexes(&g);
  QueryEngine engine(&g, nullptr, &indexes);
  Result<std::string> explain =
      engine.ExplainQuery(Qy("(?Y) <- (n0, a*, ?Y)"));
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("IndexProbe"), std::string::npos) << *explain;
}

TEST_P(IndexPropertyTest, SketchFloorNeverChangesApproxAnswers) {
  const uint64_t seed = GetParam();
  GraphStore g = RandomGraph(seed, 20, {"a", "b"}, 1.1);
  IndexManager indexes(&g);
  QueryEngine engine(&g, nullptr, &indexes);

  const std::string c1 = "n" + std::to_string(seed % 20);
  const std::string c2 = "n" + std::to_string((3 + seed / 5) % 20);
  const Query query = Qy("(?X) <- APPROX (" + c1 + ", a.b, " + c2 +
                         "), (" + c1 + ", _*, ?X)");

  QueryEngineOptions base;
  base.distance_aware = true;
  // A finite distance ceiling terminates both variants at the same point;
  // the fruitless-round guard is effectively disabled so an early give-up
  // cannot masquerade as sketch-pruning.
  base.evaluator.max_distance = 8;
  base.distance_aware_options.max_fruitless_rounds = 1000;
  QueryEngineOptions no_index = base;
  no_index.use_reachability_index = false;

  Result<std::vector<QueryAnswer>> with =
      engine.ExecuteTopK(query, 0, base);
  Result<std::vector<QueryAnswer>> without =
      engine.ExecuteTopK(query, 0, no_index);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(CanonAnswers(*with), CanonAnswers(*without)) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

// --- Deterministic sketch-floor behaviour ------------------------------------

TEST(SketchFloorTest, SkipsProvablyEmptyRoundsOnAChain) {
  GraphStore g = MakeGraph({{"x0", "e", "x1"},
                            {"x1", "e", "x2"},
                            {"x2", "e", "x3"},
                            {"x3", "e", "x4"},
                            {"x4", "e", "x5"}});
  const DistanceSketch sketch = DistanceSketch::Build(g);
  Conjunct conjunct = Cj("APPROX (x0, e, x5)");
  EvaluatorOptions options;
  options.max_distance = 16;
  Result<PreparedConjunct> prepared = PrepareConjunct(conjunct, g, nullptr,
                                                      options);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->max_exact_path_edges.has_value());
  EXPECT_EQ(*prepared->max_exact_path_edges, 1u);

  DistanceAwareOptions da_options;
  da_options.max_fruitless_rounds = 1000;
  DistanceAwareStream plain(&g, nullptr, &*prepared, options, da_options);
  DistanceAwareStream pruned(&g, nullptr, &*prepared, options, da_options,
                             &sketch);
  // x0 -> x5 is 5 undirected hops and the exact regex covers 1, so at
  // least 4 insertions are mandatory: the first 4 psi rounds are provably
  // empty and the sketch floor starts at psi = 4.
  EXPECT_EQ(pruned.initial_psi(), 4);
  EXPECT_EQ(plain.initial_psi(), 0);

  auto drain = [](DistanceAwareStream* s) {
    std::vector<Answer> out;
    Answer a;
    while (s->Next(&a)) out.push_back(a);
    std::sort(out.begin(), out.end(), [](const Answer& x, const Answer& y) {
      return std::tie(x.distance, x.v, x.n) < std::tie(y.distance, y.v, y.n);
    });
    return out;
  };
  const std::vector<Answer> plain_answers = drain(&plain);
  const std::vector<Answer> pruned_answers = drain(&pruned);
  ASSERT_FALSE(plain_answers.empty());
  EXPECT_EQ(plain_answers, pruned_answers);
  EXPECT_LT(pruned.rounds(), plain.rounds());
}

TEST(SketchFloorTest, DifferentComponentsProveEmptiness) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"c", "e", "d"}});
  const DistanceSketch sketch = DistanceSketch::Build(g);
  Conjunct conjunct = Cj("APPROX (a, e, c)");
  EvaluatorOptions options;
  options.max_distance = 16;
  Result<PreparedConjunct> prepared = PrepareConjunct(conjunct, g, nullptr,
                                                      options);
  ASSERT_TRUE(prepared.ok());
  DistanceAwareOptions da_options;
  da_options.max_fruitless_rounds = 1000;
  DistanceAwareStream pruned(&g, nullptr, &*prepared, options, da_options,
                             &sketch);
  Answer a;
  EXPECT_FALSE(pruned.Next(&a));
  EXPECT_TRUE(pruned.status().ok());
  EXPECT_EQ(pruned.rounds(), 0u);
}

}  // namespace
}  // namespace omega
