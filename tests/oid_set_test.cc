#include "store/oid_set.h"

#include <gtest/gtest.h>

#include <set>
#include <span>
#include <vector>

#include "common/rng.h"

namespace omega {
namespace {

TEST(OidSetTest, InitializerListSortsAndDedups) {
  OidSet s{5, 1, 3, 1, 5};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.Contains(1));
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(2));
}

TEST(OidSetTest, FromUnsorted) {
  OidSet s = OidSet::FromUnsorted({9, 2, 2, 7});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(*s.begin(), 2u);
}

TEST(OidSetTest, InsertKeepsOrderAndDedups) {
  OidSet s;
  s.Insert(4);
  s.Insert(1);
  s.Insert(4);
  s.Insert(9);
  EXPECT_EQ(s.size(), 3u);
  std::vector<NodeId> got(s.begin(), s.end());
  EXPECT_EQ(got, (std::vector<NodeId>{1, 4, 9}));
}

TEST(OidSetTest, EmptySetBehaviour) {
  OidSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Contains(0));
  EXPECT_EQ(OidSet::Union(s, s).size(), 0u);
  EXPECT_EQ(OidSet::Intersect(s, OidSet{1, 2}).size(), 0u);
  EXPECT_EQ(OidSet::Difference(OidSet{1, 2}, s).size(), 2u);
}

TEST(OidSetTest, UnionIntersectDifference) {
  OidSet a{1, 2, 3, 4};
  OidSet b{3, 4, 5};
  EXPECT_EQ(OidSet::Union(a, b), (OidSet{1, 2, 3, 4, 5}));
  EXPECT_EQ(OidSet::Intersect(a, b), (OidSet{3, 4}));
  EXPECT_EQ(OidSet::Difference(a, b), (OidSet{1, 2}));
  EXPECT_EQ(OidSet::Difference(b, a), (OidSet{5}));
}

TEST(OidSetTest, UnionWithSpan) {
  OidSet a{2, 4};
  std::vector<NodeId> more{1, 4, 6};
  a.UnionWith(more);
  EXPECT_EQ(a, (OidSet{1, 2, 4, 6}));
}

// --- borrow seam: detach-on-mutate and view stability ------------------------

TEST(OidSetTest, InsertDetachesBorrowedBackingAndOldViewsStayOnStorage) {
  const std::vector<NodeId> storage = {2, 5, 9};
  OidSet set = OidSet::BorrowSortedUnique(storage);
  std::span<const NodeId> before = set.ids();
  EXPECT_EQ(before.data(), storage.data());  // zero-copy over caller storage

  set.Insert(7);  // first mutation detaches into an owned vector
  EXPECT_FALSE(set.borrowed());
  EXPECT_EQ(set, (OidSet{2, 5, 7, 9}));
  EXPECT_NE(set.ids().data(), storage.data());
  // The pre-mutation view was bounded by `storage`, not by the set: it
  // still reads the caller's untouched array after the detach.
  EXPECT_EQ(std::vector<NodeId>(before.begin(), before.end()), storage);
}

TEST(OidSetTest, UnionWithDetachesBorrowedBacking) {
  const std::vector<NodeId> storage = {1, 3};
  OidSet set = OidSet::BorrowSortedUnique(storage);
  const std::vector<NodeId> more = {2, 3, 4};
  set.UnionWith(more);
  EXPECT_FALSE(set.borrowed());
  EXPECT_EQ(set, (OidSet{1, 2, 3, 4}));
  EXPECT_EQ(storage, (std::vector<NodeId>{1, 3}));  // untouched
}

TEST(OidSetTest, ClearDropsBorrowWithoutTouchingStorage) {
  const std::vector<NodeId> storage = {4, 8};
  OidSet set = OidSet::BorrowSortedUnique(storage);
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.borrowed());
  EXPECT_EQ(storage, (std::vector<NodeId>{4, 8}));
}

TEST(OidSetTest, MoveKeepsOwnedBackingViewsValid) {
  // Views into an *owned* set survive a move of the set (vectors move their
  // heap buffer) — the property GraphBuilder::Finalize and the snapshot
  // loader rely on when they assemble stores out of moved parts.
  OidSet a{1, 4, 9};
  std::span<const NodeId> view = a.ids();
  OidSet b = std::move(a);
  EXPECT_EQ(b.ids().data(), view.data());
  EXPECT_EQ(std::vector<NodeId>(view.begin(), view.end()),
            (std::vector<NodeId>{1, 4, 9}));
}

class OidSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OidSetPropertyTest, AlgebraMatchesStdSet) {
  Rng rng(GetParam());
  std::set<NodeId> ra, rb;
  std::vector<NodeId> va, vb;
  for (int i = 0; i < 200; ++i) {
    NodeId x = static_cast<NodeId>(rng.NextBounded(64));
    NodeId y = static_cast<NodeId>(rng.NextBounded(64));
    ra.insert(x);
    va.push_back(x);
    rb.insert(y);
    vb.push_back(y);
  }
  OidSet a = OidSet::FromUnsorted(va);
  OidSet b = OidSet::FromUnsorted(vb);

  auto as_vector = [](const std::set<NodeId>& s) {
    return std::vector<NodeId>(s.begin(), s.end());
  };
  std::set<NodeId> ru, ri, rd;
  std::set_union(ra.begin(), ra.end(), rb.begin(), rb.end(),
                 std::inserter(ru, ru.end()));
  std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                        std::inserter(ri, ri.end()));
  std::set_difference(ra.begin(), ra.end(), rb.begin(), rb.end(),
                      std::inserter(rd, rd.end()));

  const OidSet set_union = OidSet::Union(a, b);
  const OidSet set_intersect = OidSet::Intersect(a, b);
  const OidSet set_difference = OidSet::Difference(a, b);
  EXPECT_EQ(std::vector<NodeId>(set_union.begin(), set_union.end()),
            as_vector(ru));
  EXPECT_EQ(std::vector<NodeId>(set_intersect.begin(), set_intersect.end()),
            as_vector(ri));
  EXPECT_EQ(std::vector<NodeId>(set_difference.begin(), set_difference.end()),
            as_vector(rd));
  for (NodeId x = 0; x < 64; ++x) {
    EXPECT_EQ(a.Contains(x), ra.count(x) > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OidSetPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace omega
