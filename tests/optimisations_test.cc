// §4.3 optimisations: distance-aware retrieval and alternation
// decomposition must return exactly the baseline's answers (same (v, n)
// pairs at the same distances), only in a different amount of work.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "eval/distance_aware.h"
#include "eval/disjunction.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::Cj;
using testing::DrainUpTo;
using testing::MakeGraph;
using testing::RandomGraph;

/// Normalises a stream's output to a {(v,n) -> d} map for set comparison.
std::map<std::pair<NodeId, NodeId>, Cost> Collect(AnswerStream* stream,
                                                  size_t limit = 100000) {
  std::map<std::pair<NodeId, NodeId>, Cost> out;
  Answer a;
  while (out.size() < limit && stream->Next(&a)) {
    auto [it, inserted] = out.try_emplace({a.v, a.n}, a.distance);
    EXPECT_TRUE(inserted) << "duplicate (v,n) from stream";
  }
  return out;
}

TEST(DistanceAwareTest, SameAnswersAsBaselineOnCraftedGraph) {
  GraphStore g = MakeGraph({{"a", "e", "b"},
                            {"b", "f", "c"},
                            {"a", "x", "c"},
                            {"c", "e", "d"}});
  Conjunct conjunct = Cj("APPROX (a, e.f, ?X)");
  EvaluatorOptions options;
  Result<PreparedConjunct> prepared = PrepareConjunct(conjunct, g, nullptr,
                                                      options);
  ASSERT_TRUE(prepared.ok());

  ConjunctEvaluator baseline(&g, nullptr, &*prepared, options);
  auto baseline_answers = DrainUpTo(&baseline, 2);

  DistanceAwareStream da(&g, nullptr, &*prepared, options);
  auto da_answers = DrainUpTo(&da, 2);
  EXPECT_EQ(da_answers, baseline_answers);
  EXPECT_GE(da.rounds(), 2u);
}

TEST(DistanceAwareTest, EmitsInNonDecreasingOrder) {
  GraphStore g = RandomGraph(3, 25, {"a", "b"}, 2.0);
  Conjunct conjunct = Cj("APPROX (n0, a.b, ?X)");
  EvaluatorOptions options;
  Result<PreparedConjunct> prepared = PrepareConjunct(conjunct, g, nullptr,
                                                      options);
  ASSERT_TRUE(prepared.ok());
  DistanceAwareStream da(&g, nullptr, &*prepared, options);
  Answer a;
  Cost last = 0;
  size_t count = 0;
  while (count < 500 && da.Next(&a)) {
    EXPECT_GE(a.distance, last);
    last = a.distance;
    ++count;
  }
}

TEST(DistanceAwareTest, ExactConjunctSingleRound) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  Conjunct conjunct = Cj("(a, e, ?X)");
  Result<PreparedConjunct> prepared =
      PrepareConjunct(conjunct, g, nullptr, {});
  ASSERT_TRUE(prepared.ok());
  DistanceAwareStream da(&g, nullptr, &*prepared, {});
  Answer a;
  size_t count = 0;
  while (da.Next(&a)) ++count;
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(da.rounds(), 1u);  // no positive costs: ψ never grows
}

TEST(DistanceAwareTest, StopsAfterFruitlessRounds) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  Conjunct conjunct = Cj("APPROX (a, e, ?X)");
  EvaluatorOptions options;
  Result<PreparedConjunct> prepared = PrepareConjunct(conjunct, g, nullptr,
                                                      options);
  ASSERT_TRUE(prepared.ok());
  DistanceAwareOptions da_options;
  da_options.max_fruitless_rounds = 3;
  DistanceAwareStream da(&g, nullptr, &*prepared, options, da_options);
  Answer a;
  size_t count = 0;
  while (count < 1000 && da.Next(&a)) ++count;
  // 2 nodes -> at most 2x2 answers; insertion loops would allow unbounded ψ
  // growth, the guard must terminate the stream.
  EXPECT_LE(count, 4u);
}

class DistanceAwarePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistanceAwarePropertyTest, MatchesBaselineUpToDistanceTwo) {
  Rng rng(GetParam() * 101);
  const std::vector<std::string> labels = {"a", "b"};
  GraphStore g = RandomGraph(GetParam() * 17, 20, labels, 1.8);

  for (int round = 0; round < 4; ++round) {
    RegexPtr regex = testing::RandomRegex(&rng, labels, 2);
    Conjunct conjunct;
    conjunct.mode = ConjunctMode::kApprox;
    conjunct.source = Endpoint::Constant("n" + std::to_string(
        rng.NextBounded(20)));
    conjunct.target = Endpoint::Variable("Y");
    conjunct.regex = Clone(*regex);

    EvaluatorOptions options;
    options.max_distance = 2;  // cap both sides at distance 2
    Result<PreparedConjunct> prepared = PrepareConjunct(conjunct, g, nullptr,
                                                        options);
    ASSERT_TRUE(prepared.ok());

    ConjunctEvaluator baseline(&g, nullptr, &*prepared, options);
    auto expected = Collect(&baseline);
    DistanceAwareStream da(&g, nullptr, &*prepared, options);
    auto got = Collect(&da);
    EXPECT_EQ(got, expected) << ToString(*regex);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceAwarePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(DisjunctionTest, RequiresTopLevelAlternation) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  EXPECT_FALSE(CanDecomposeAlternation(Cj("(a, e.f, ?X)")));
  EXPECT_TRUE(CanDecomposeAlternation(Cj("(a, e|f, ?X)")));
  auto bad = DisjunctionStream::Create(Cj("(a, e, ?X)"), &g, nullptr, {});
  EXPECT_FALSE(bad.ok());
}

TEST(DisjunctionTest, SameAnswersAsMonolithicAutomaton) {
  GraphStore g = MakeGraph({{"a", "e", "b"},
                            {"a", "f", "c"},
                            {"c", "g", "d"},
                            {"a", "e", "d"}});
  Conjunct conjunct = Cj("APPROX (a, e|(f.g), ?X)");
  EvaluatorOptions options;
  options.max_distance = 2;
  Result<PreparedConjunct> prepared = PrepareConjunct(conjunct, g, nullptr,
                                                      options);
  ASSERT_TRUE(prepared.ok());
  ConjunctEvaluator baseline(&g, nullptr, &*prepared, options);
  auto expected = Collect(&baseline);

  auto stream = DisjunctionStream::Create(conjunct, &g, nullptr, options);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  auto got = Collect(stream->get());
  EXPECT_EQ(got, expected);
}

TEST(DisjunctionTest, BranchOrderAdaptsToAnswerCounts) {
  // Branch e has many distance-0 answers, branch f has none: after round 0
  // the f-branch must be evaluated first.
  GraphStore g = MakeGraph({{"a", "e", "b1"},
                            {"a", "e", "b2"},
                            {"a", "e", "b3"},
                            {"x", "f", "y"}});
  Conjunct conjunct = Cj("APPROX (a, e|f, ?X)");
  EvaluatorOptions options;
  auto stream = DisjunctionStream::Create(conjunct, &g, nullptr, options);
  ASSERT_TRUE(stream.ok());
  Answer a;
  size_t pulled = 0;
  std::vector<size_t> order;
  while (pulled < 6 && (*stream)->Next(&a)) {
    ++pulled;
    order = (*stream)->last_round_order();
  }
  ASSERT_EQ(order.size(), 2u);
  // Branch 1 (f) returned fewer answers in the previous round.
  EXPECT_EQ(order[0], 1u);
}

class DisjunctionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DisjunctionPropertyTest, MatchesBaselineUpToDistanceTwo) {
  Rng rng(GetParam() * 991);
  const std::vector<std::string> labels = {"a", "b", "c"};
  GraphStore g = RandomGraph(GetParam() * 23, 18, labels, 1.5);

  for (int round = 0; round < 3; ++round) {
    // Build a top-level alternation of 2-3 random branches.
    std::vector<RegexPtr> branches;
    const size_t n = 2 + rng.NextBounded(2);
    for (size_t i = 0; i < n; ++i) {
      branches.push_back(testing::RandomRegex(&rng, labels, 1));
    }
    Conjunct conjunct;
    conjunct.mode = ConjunctMode::kApprox;
    conjunct.source =
        Endpoint::Constant("n" + std::to_string(rng.NextBounded(18)));
    conjunct.target = Endpoint::Variable("Y");
    conjunct.regex = MakeAlternation(std::move(branches));

    EvaluatorOptions options;
    options.max_distance = 2;
    Result<PreparedConjunct> prepared = PrepareConjunct(conjunct, g, nullptr,
                                                        options);
    ASSERT_TRUE(prepared.ok());
    ConjunctEvaluator baseline(&g, nullptr, &*prepared, options);
    auto expected = Collect(&baseline);

    auto stream = DisjunctionStream::Create(conjunct, &g, nullptr, options);
    ASSERT_TRUE(stream.ok());
    auto got = Collect(stream->get());
    EXPECT_EQ(got, expected) << ToString(*conjunct.regex);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjunctionPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace omega
