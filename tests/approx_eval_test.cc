// End-to-end APPROX scenarios, including the paper's Example 2.
#include <gtest/gtest.h>

#include "eval/conjunct_evaluator.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::Cj;
using testing::DrainUpTo;
using testing::MakeGraph;

std::vector<Answer> RunConjunct(const GraphStore& g, const std::string& conjunct,
                        Cost max_distance = kInfiniteCost,
                        EvaluatorOptions options = {}) {
  Result<PreparedConjunct> prepared =
      PrepareConjunct(Cj(conjunct), g, nullptr, options);
  EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
  ConjunctEvaluator evaluator(&g, nullptr, &*prepared, options);
  return DrainUpTo(&evaluator, max_distance);
}

std::string Label(const GraphStore& g, NodeId n) {
  return std::string(g.NodeLabel(n));
}

/// The Example 1/2 universe: only people graduate from institutions, and the
/// querying user gets the gradFrom direction wrong.
GraphStore Example2Graph() {
  return MakeGraph({
      {"oxford", "isLocatedIn", "UK"},
      {"cambridge", "isLocatedIn", "UK"},
      {"berlin_uni", "isLocatedIn", "Germany"},
      {"alice", "gradFrom", "oxford"},
      {"bob", "gradFrom", "oxford"},
      {"carol", "gradFrom", "cambridge"},
      {"dave", "gradFrom", "berlin_uni"},
  });
}

TEST(ApproxEvalTest, Example2ExactReturnsNothing) {
  GraphStore g = Example2Graph();
  EXPECT_TRUE(RunConjunct(g, "(UK, isLocatedIn-.gradFrom, ?X)").empty());
}

TEST(ApproxEvalTest, Example2ApproxFindsGraduatesAtDistanceOne) {
  GraphStore g = Example2Graph();
  auto answers = RunConjunct(g, "APPROX (UK, isLocatedIn-.gradFrom, ?X)", 1);
  // Substituting gradFrom by gradFrom- reaches alice, bob, carol (distance 1).
  std::set<std::string> at_one;
  for (const Answer& a : answers) {
    if (a.distance == 1) at_one.insert(Label(g, a.n));
  }
  EXPECT_TRUE(at_one.count("alice"));
  EXPECT_TRUE(at_one.count("bob"));
  EXPECT_TRUE(at_one.count("carol"));
  EXPECT_FALSE(at_one.count("dave"));  // wrong country
}

TEST(ApproxEvalTest, DeletionRecoversShorterPath) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  // Query asks e.f but only e exists: deleting f yields b at distance 1.
  auto answers = RunConjunct(g, "APPROX (a, e.f, ?X)", 1);
  bool found = false;
  for (const Answer& a : answers) {
    if (Label(g, a.n) == "b" && a.distance == 1) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ApproxEvalTest, InsertionSkipsExtraEdge) {
  GraphStore g = MakeGraph({{"a", "x", "m"}, {"m", "e", "b"}});
  // Query asks for e but the path is x.e: inserting x costs 1.
  auto answers = RunConjunct(g, "APPROX (a, e, ?X)", 1);
  bool found = false;
  for (const Answer& a : answers) {
    if (Label(g, a.n) == "b" && a.distance == 1) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ApproxEvalTest, ZeroDistanceAnswersComeFirst) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"a", "f", "c"}});
  Result<PreparedConjunct> prepared =
      PrepareConjunct(Cj("APPROX (a, e, ?X)"), g, nullptr, {});
  ASSERT_TRUE(prepared.ok());
  ConjunctEvaluator evaluator(&g, nullptr, &*prepared, {});
  Answer first;
  ASSERT_TRUE(evaluator.Next(&first));
  EXPECT_EQ(first.distance, 0);
  EXPECT_EQ(Label(g, first.n), "b");
  Answer second;
  ASSERT_TRUE(evaluator.Next(&second));
  EXPECT_EQ(second.distance, 1);  // c via substitution, a via deletion, ...
}

TEST(ApproxEvalTest, SelfAnswerViaFullDeletion) {
  // `a` is isolated, so the only repair is deleting the whole expression
  // (cost 2), leaving the empty path: answer (a, a) at distance 2.
  GraphBuilder builder;
  builder.GetOrAddNode("a");
  ASSERT_TRUE(builder.AddEdge("x", "e", "y").ok());
  GraphStore g = std::move(builder).Finalize();
  auto answers = RunConjunct(g, "APPROX (a, e.f, ?X)", 2);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].v, answers[0].n);
  EXPECT_EQ(Label(g, answers[0].n), "a");
  EXPECT_EQ(answers[0].distance, 2);
}

TEST(ApproxEvalTest, VariableVariableApproxSeedsEveryNodeEventually) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"c", "f", "d"}});
  // (?X, e, ?Y) APPROX: at distance 1 every node reaches itself by deleting
  // e, including nodes with no e-edge at all.
  auto answers = RunConjunct(g, "APPROX (?X, e, ?Y)", 1);
  size_t self_pairs = 0;
  for (const Answer& a : answers) {
    if (a.v == a.n) {
      EXPECT_EQ(a.distance, 1);
      ++self_pairs;
    }
  }
  EXPECT_EQ(self_pairs, g.NumNodes());
}

TEST(ApproxEvalTest, CustomCostsChangeRanking) {
  GraphStore g = MakeGraph({{"a", "x", "b"}, {"a", "e", "m"}});
  EvaluatorOptions options;
  options.approx.substitution_cost = 5;
  options.approx.deletion_cost = 1;
  // Query (a, e.f, ?X): substitution path to b costs >= 5; deleting f after
  // matching e reaches m at 1.
  auto answers = RunConjunct(g, "APPROX (a, e.f, ?X)", 1, options);
  ASSERT_FALSE(answers.empty());
  EXPECT_EQ(Label(g, answers[0].n), "m");
  EXPECT_EQ(answers[0].distance, 1);
}

TEST(ApproxEvalTest, TruncationFlagSetWhenDistanceCapped) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  EvaluatorOptions options;
  options.max_distance = 0;
  Result<PreparedConjunct> prepared =
      PrepareConjunct(Cj("APPROX (a, e.f, ?X)"), g, nullptr, options);
  ASSERT_TRUE(prepared.ok());
  ConjunctEvaluator evaluator(&g, nullptr, &*prepared, options);
  Answer a;
  while (evaluator.Next(&a)) {
  }
  EXPECT_TRUE(evaluator.truncated_by_distance());
}

TEST(ApproxEvalTest, ExactModeNeverTruncates) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  Result<PreparedConjunct> prepared =
      PrepareConjunct(Cj("(a, e, ?X)"), g, nullptr, {});
  ASSERT_TRUE(prepared.ok());
  EvaluatorOptions options;
  options.max_distance = 0;
  ConjunctEvaluator evaluator(&g, nullptr, &*prepared, options);
  Answer a;
  size_t count = 0;
  while (evaluator.Next(&a)) ++count;
  EXPECT_EQ(count, 1u);
  EXPECT_FALSE(evaluator.truncated_by_distance());
}

}  // namespace
}  // namespace omega
