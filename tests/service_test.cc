// Unit tests for the concurrent query service: result-cache behaviour
// (hit / miss / LRU eviction / invalidation / canonical keying), deadline
// expiry both mid-stream and while queued, cooperative cancellation
// including admission-slot release and fast shutdown, admission-control
// rejection, and the per-query-class serving statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "rpq/query_parser.h"
#include "service/query_service.h"
#include "snapshot/snapshot_reader.h"
#include "snapshot/snapshot_writer.h"
#include "test_util.h"

namespace omega {
namespace {

using std::chrono::milliseconds;
using omega::testing::CanonAnswers;
using omega::testing::Qy;

/// Queries are move-only, so requests are built fresh per submission.
QueryRequest Req(const std::string& text, size_t top_k = 10) {
  QueryRequest request;
  request.query = Qy(text);
  request.top_k = top_k;
  return request;
}

/// Small deterministic graph for functional tests.
const GraphStore& SmallGraph() {
  static const GraphStore* graph = new GraphStore(omega::testing::MakeGraph({
      {"a1", "knows", "a2"},
      {"a2", "knows", "a3"},
      {"a3", "knows", "a1"},
      {"a1", "likes", "a3"},
      {"a2", "likes", "a1"},
      {"b1", "knows", "b2"},
  }));
  return *graph;
}

/// Dense random graph whose APPROX closure query runs for a long time if
/// nobody stops it — the blocker used by the cancellation/deadline tests.
/// Cancellation is what makes a multi-second query safe to use in a test.
const GraphStore& SlowGraph() {
  static const GraphStore* graph = new GraphStore(
      omega::testing::RandomGraph(/*seed=*/7, /*num_nodes=*/500,
                                  {"a", "b"}, /*density=*/4.0));
  return *graph;
}

QueryRequest SlowRequest() {
  QueryRequest request = Req("(?X) <- APPROX (?X, (a.b)+, ?Y)", /*top_k=*/0);
  request.bypass_cache = true;  // top_k=0 drains: forces full evaluation
  return request;
}

// --- ResultCache -------------------------------------------------------------

std::shared_ptr<const CachedResult> Entry(int tag) {
  auto entry = std::make_shared<CachedResult>();
  entry->answers.push_back(QueryAnswer{{static_cast<NodeId>(tag)}, 0});
  return entry;
}

TEST(ResultCacheTest, HitMissAndLruEviction) {
  ResultCache cache(/*capacity=*/2, /*num_shards=*/1);
  EXPECT_EQ(cache.Lookup("k1"), nullptr);
  cache.Insert("k1", Entry(1));
  cache.Insert("k2", Entry(2));
  ASSERT_NE(cache.Lookup("k1"), nullptr);  // refreshes k1: k2 becomes LRU
  cache.Insert("k3", Entry(3));            // evicts k2
  EXPECT_NE(cache.Lookup("k1"), nullptr);
  EXPECT_EQ(cache.Lookup("k2"), nullptr);
  EXPECT_NE(cache.Lookup("k3"), nullptr);

  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(ResultCacheTest, InsertReplacesExistingKey) {
  ResultCache cache(4, 2);
  cache.Insert("k", Entry(1));
  cache.Insert("k", Entry(9));
  std::shared_ptr<const CachedResult> got = cache.Lookup("k");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->answers[0].bindings[0], 9u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCacheTest, ClearDropsEverythingAndCountsEvictions) {
  ResultCache cache(8, 4);
  cache.Insert("k1", Entry(1));
  cache.Insert("k2", Entry(2));
  cache.Clear();
  EXPECT_EQ(cache.Lookup("k1"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ResultCacheTest, EvictedEntryStaysValidForHolders) {
  ResultCache cache(1, 1);
  cache.Insert("k1", Entry(1));
  std::shared_ptr<const CachedResult> held = cache.Lookup("k1");
  cache.Insert("k2", Entry(2));  // evicts k1
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->answers[0].bindings[0], 1u);  // snapshot survives eviction
}

// --- QueryService: results and caching ---------------------------------------

TEST(QueryServiceTest, ExecuteMatchesEngineReference) {
  QueryServiceOptions options;
  options.num_workers = 2;
  QueryService service(&SmallGraph(), nullptr, options);

  const Query query = Qy("(?X, ?Z) <- (?X, knows, ?Y), (?Y, likes, ?Z)");
  QueryRequest request;
  request.query = Clone(query);
  request.top_k = 0;
  QueryResponse response = service.Execute(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.exhausted);
  ASSERT_EQ(response.head, (std::vector<std::string>{"X", "Z"}));

  QueryEngine engine(&SmallGraph(), nullptr);
  Result<std::vector<QueryAnswer>> reference = engine.ExecuteTopK(query, 0);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(CanonAnswers(response.answers), CanonAnswers(*reference));
  EXPECT_FALSE(response.answers.empty());
}

TEST(QueryServiceTest, RepeatedQueryHitsCache) {
  QueryServiceOptions options;
  options.num_workers = 1;
  QueryService service(&SmallGraph(), nullptr, options);

  QueryResponse miss = service.Execute(Req("(?X) <- (?X, knows, ?Y)"));
  ASSERT_TRUE(miss.status.ok());
  EXPECT_FALSE(miss.cache_hit);

  QueryResponse hit = service.Execute(Req("(?X) <- (?X, knows, ?Y)"));
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(CanonAnswers(hit.answers), CanonAnswers(miss.answers));
  EXPECT_EQ(hit.exec_ms, 0.0);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache.hits, 1u);
  // One logical miss: the worker's re-probe of the same request does not
  // double-count.
  EXPECT_EQ(stats.cache.misses, 1u);
}

TEST(QueryServiceTest, CacheKeysOnCanonicalizedVariableNames) {
  QueryService service(&SmallGraph(), nullptr, {});
  ASSERT_TRUE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).status.ok());

  // Same query with renamed variables must hit the same entry — but the
  // response's column labels come from the query as submitted, not from
  // the query that populated the cache.
  QueryResponse renamed =
      service.Execute(Req("(?Foo) <- (?Foo, knows, ?Bar)"));
  ASSERT_TRUE(renamed.status.ok());
  EXPECT_TRUE(renamed.cache_hit);
  EXPECT_EQ(renamed.head, (std::vector<std::string>{"Foo"}));

  // A different top_k is a different artifact.
  EXPECT_FALSE(
      service.Execute(Req("(?X) <- (?X, knows, ?Y)", /*top_k=*/3)).cache_hit);
}

TEST(QueryServiceTest, BypassCacheSkipsLookupAndFill) {
  QueryService service(&SmallGraph(), nullptr, {});
  for (int i = 0; i < 2; ++i) {
    QueryRequest request = Req("(?X) <- (?X, likes, ?Y)");
    request.bypass_cache = true;
    EXPECT_FALSE(service.Execute(std::move(request)).cache_hit);
  }
  EXPECT_EQ(service.stats().cache.hits, 0u);
  EXPECT_EQ(service.stats().cache.entries, 0u);
}

TEST(QueryServiceTest, InvalidateCacheForcesReexecution) {
  QueryService service(&SmallGraph(), nullptr, {});
  ASSERT_TRUE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).status.ok());
  ASSERT_TRUE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).cache_hit);
  service.InvalidateCache();
  EXPECT_FALSE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).cache_hit);
}

TEST(QueryServiceTest, CacheDisabledWhenZeroEntries) {
  QueryServiceOptions options;
  options.cache_entries = 0;
  QueryService service(&SmallGraph(), nullptr, options);
  EXPECT_FALSE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).cache_hit);
  EXPECT_FALSE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).cache_hit);
}

TEST(QueryServiceTest, InvalidQueryRejectedAtSubmit) {
  QueryService service(&SmallGraph(), nullptr, {});
  QueryRequest request;
  request.query.head = {"X"};  // no conjuncts
  Result<std::shared_ptr<QueryTicket>> ticket =
      service.Submit(std::move(request));
  EXPECT_FALSE(ticket.ok());
  EXPECT_TRUE(ticket.status().IsInvalidArgument());
}

// --- QueryService: dataset hot-swap ------------------------------------------

/// A second universe over the same vocabulary but different shape: the same
/// query text yields a different answer multiset than on SmallGraph().
GraphStore OtherGraph() {
  return omega::testing::MakeGraph({
      {"c1", "knows", "c2"},
      {"c2", "knows", "c1"},
      {"c1", "likes", "c2"},
  });
}

TEST(QueryServiceTest, SwapDatasetServesTheNewDataset) {
  QueryServiceOptions options;
  options.num_workers = 1;
  QueryService service(&SmallGraph(), nullptr, options);
  EXPECT_EQ(service.dataset_epoch(), 0u);

  QueryResponse before = service.Execute(Req("(?X) <- (?X, knows, ?Y)", 0));
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.epoch, 0u);

  std::shared_ptr<const Dataset> next =
      Dataset::FromParts(OtherGraph(), std::nullopt);
  ASSERT_TRUE(service.SwapDataset(next).ok());
  EXPECT_EQ(service.dataset_epoch(), 1u);

  QueryResponse after = service.Execute(Req("(?X) <- (?X, knows, ?Y)", 0));
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.epoch, 1u);
  EXPECT_FALSE(after.cache_hit);  // the new epoch's cache starts empty

  QueryEngine reference(&next->graph(), nullptr);
  Result<std::vector<QueryAnswer>> expected =
      reference.ExecuteTopK(Qy("(?X) <- (?X, knows, ?Y)"), 0);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(CanonAnswers(after.answers), CanonAnswers(*expected));
  EXPECT_NE(CanonAnswers(after.answers), CanonAnswers(before.answers));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.dataset_epoch, 1u);
  EXPECT_EQ(stats.dataset_swaps, 1u);
  EXPECT_FALSE(service.SwapDataset(nullptr).ok());
}

TEST(QueryServiceTest, SwapInvalidatesCachedResultsAtomically) {
  QueryServiceOptions options;
  options.num_workers = 1;
  QueryService service(&SmallGraph(), nullptr, options);
  ASSERT_TRUE(service.Execute(Req("(?X) <- (?X, knows, ?Y)", 0)).status.ok());
  ASSERT_TRUE(service.Execute(Req("(?X) <- (?X, knows, ?Y)", 0)).cache_hit);

  ASSERT_TRUE(
      service.SwapDataset(Dataset::FromParts(OtherGraph(), std::nullopt))
          .ok());
  QueryResponse fresh = service.Execute(Req("(?X) <- (?X, knows, ?Y)", 0));
  ASSERT_TRUE(fresh.status.ok());
  // A pre-swap cache entry must never satisfy a post-swap admission.
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.epoch, 1u);
  EXPECT_EQ(fresh.answers.size(), 2u);  // c1->c2, c2->c1
}

TEST(QueryServiceTest, SwapToSnapshotBackedDataset) {
  // The swapped-in dataset comes from a binary snapshot: the service then
  // serves queries over borrowed mmap arrays, which must be answer-identical
  // to serving the in-memory build.
  GraphStore other = OtherGraph();
  const std::string path = ::testing::TempDir() + "/swap_target.snap";
  ASSERT_TRUE(WriteSnapshot(other, nullptr, path).ok());
  Result<std::shared_ptr<const Dataset>> mapped = SnapshotReader::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  QueryServiceOptions options;
  options.num_workers = 2;
  QueryService service(&SmallGraph(), nullptr, options);
  ASSERT_TRUE(service.SwapDataset(*mapped).ok());

  QueryResponse response = service.Execute(Req("(?X) <- (?X, knows, ?Y)", 0));
  ASSERT_TRUE(response.status.ok());
  QueryEngine reference(&other, nullptr);
  Result<std::vector<QueryAnswer>> expected =
      reference.ExecuteTopK(Qy("(?X) <- (?X, knows, ?Y)"), 0);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(CanonAnswers(response.answers), CanonAnswers(*expected));
}

TEST(QueryServiceTest, ServiceOwnsDatasetPassedAtConstruction) {
  std::shared_ptr<const Dataset> dataset =
      Dataset::FromParts(OtherGraph(), std::nullopt);
  QueryServiceOptions options;
  options.num_workers = 1;
  QueryService service(dataset, options);
  const Dataset* raw = dataset.get();
  dataset.reset();  // the service keeps it alive through epoch 0
  ASSERT_NE(raw, nullptr);
  QueryResponse response = service.Execute(Req("(?X) <- (?X, likes, ?Y)", 0));
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.answers.size(), 1u);
}

TEST(QueryServiceTest, InFlightQueryDrainsOnItsAdmissionEpoch) {
  QueryServiceOptions options;
  options.num_workers = 1;
  QueryService service(&SlowGraph(), nullptr, options);

  Result<std::shared_ptr<QueryTicket>> slow = service.Submit(SlowRequest());
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(
      service.SwapDataset(Dataset::FromParts(OtherGraph(), std::nullopt))
          .ok());
  // The in-flight query still runs (and is cancelled) on epoch 0.
  (*slow)->Cancel();
  const QueryResponse& cancelled = (*slow)->Wait();
  EXPECT_TRUE(cancelled.status.IsCancelled());
  EXPECT_EQ(cancelled.epoch, 0u);

  QueryResponse fresh = service.Execute(Req("(?X) <- (?X, knows, ?Y)", 0));
  ASSERT_TRUE(fresh.status.ok());
  EXPECT_EQ(fresh.epoch, 1u);
}

// --- QueryService: cache-generation accounting (InvalidateCache) -------------

TEST(QueryServiceTest, InvalidateCacheResetsCacheGenerationCounters) {
  QueryServiceOptions options;
  options.num_workers = 1;
  QueryService service(&SmallGraph(), nullptr, options);

  ASSERT_TRUE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).status.ok());
  ASSERT_TRUE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).cache_hit);
  {
    const ServiceStats stats = service.stats();
    const ClassAggregate& exact =
        stats.per_class[static_cast<size_t>(QueryClass::kExact)];
    EXPECT_EQ(exact.cache_hits, 1u);
    EXPECT_EQ(exact.cache_lookups, 2u);
    EXPECT_DOUBLE_EQ(exact.CacheHitRate(), 0.5);
    EXPECT_EQ(stats.cache.hits, 1u);
  }

  service.InvalidateCache();
  {
    // The generation counters restart: hit rate describes the (empty)
    // current cache, not the one that was just dropped.
    const ServiceStats stats = service.stats();
    const ClassAggregate& exact =
        stats.per_class[static_cast<size_t>(QueryClass::kExact)];
    EXPECT_EQ(exact.cache_hits, 0u);
    EXPECT_EQ(exact.cache_lookups, 0u);
    EXPECT_DOUBLE_EQ(exact.CacheHitRate(), 0.0);
    EXPECT_EQ(stats.cache.hits, 0u);
    EXPECT_EQ(stats.cache.misses, 0u);
    // Lifetime counters are NOT generation-scoped and survive.
    EXPECT_EQ(exact.queries, 2u);
    EXPECT_EQ(stats.completed, 2u);
  }

  // The next run re-executes (miss) then hits: a clean new generation.
  EXPECT_FALSE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).cache_hit);
  EXPECT_TRUE(service.Execute(Req("(?X) <- (?X, knows, ?Y)")).cache_hit);
  const ClassAggregate& exact =
      service.stats().per_class[static_cast<size_t>(QueryClass::kExact)];
  EXPECT_EQ(exact.cache_hits, 1u);
  EXPECT_EQ(exact.cache_lookups, 2u);
}

TEST(QueryServiceTest, BypassedRequestsDoNotCountAsCacheLookups) {
  QueryServiceOptions options;
  options.num_workers = 1;
  QueryService service(&SmallGraph(), nullptr, options);
  QueryRequest request = Req("(?X) <- (?X, likes, ?Y)");
  request.bypass_cache = true;
  ASSERT_TRUE(service.Execute(std::move(request)).status.ok());
  const ClassAggregate& exact =
      service.stats().per_class[static_cast<size_t>(QueryClass::kExact)];
  EXPECT_EQ(exact.queries, 1u);
  EXPECT_EQ(exact.cache_lookups, 0u);
  EXPECT_DOUBLE_EQ(exact.CacheHitRate(), 0.0);
}

// --- QueryService: deadlines and cancellation --------------------------------

TEST(QueryServiceTest, DeadlineExpiresMidStream) {
  QueryServiceOptions options;
  options.num_workers = 1;
  QueryService service(&SlowGraph(), nullptr, options);

  QueryRequest request = SlowRequest();
  request.deadline = milliseconds(5);
  QueryResponse response = service.Execute(std::move(request));
  EXPECT_TRUE(response.status.IsDeadlineExceeded())
      << response.status.ToString();
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
}

TEST(QueryServiceTest, DefaultDeadlineApplies) {
  QueryServiceOptions options;
  options.num_workers = 1;
  options.default_deadline = milliseconds(5);
  QueryService service(&SlowGraph(), nullptr, options);
  QueryResponse response = service.Execute(SlowRequest());
  EXPECT_TRUE(response.status.IsDeadlineExceeded())
      << response.status.ToString();
}

TEST(QueryServiceTest, DeadlineCountsQueueWait) {
  QueryServiceOptions options;
  options.num_workers = 1;
  QueryService service(&SlowGraph(), nullptr, options);

  // Occupy the only worker, then queue a request whose deadline expires
  // while it waits: it must fail without ever executing.
  Result<std::shared_ptr<QueryTicket>> blocker = service.Submit(SlowRequest());
  ASSERT_TRUE(blocker.ok());
  QueryRequest victim_request = Req("(?X) <- (?X, a, ?Y)");
  victim_request.deadline = milliseconds(20);
  victim_request.bypass_cache = true;
  Result<std::shared_ptr<QueryTicket>> victim =
      service.Submit(std::move(victim_request));
  ASSERT_TRUE(victim.ok());

  // Let the victim's deadline lapse while it sits in the queue, then free
  // the worker: the victim must be completed without ever executing.
  std::this_thread::sleep_for(milliseconds(60));
  (*blocker)->Cancel();
  EXPECT_TRUE((*blocker)->Wait().status.IsCancelled());

  const QueryResponse& response = (*victim)->Wait();
  EXPECT_TRUE(response.status.IsDeadlineExceeded())
      << response.status.ToString();
  EXPECT_EQ(response.exec_ms, 0.0);  // never reached the engine
}

TEST(QueryServiceTest, CancelMidExecution) {
  QueryServiceOptions options;
  options.num_workers = 1;
  QueryService service(&SlowGraph(), nullptr, options);
  Result<std::shared_ptr<QueryTicket>> ticket = service.Submit(SlowRequest());
  ASSERT_TRUE(ticket.ok());
  (*ticket)->Cancel();
  const QueryResponse& response = (*ticket)->Wait();
  EXPECT_TRUE(response.status.IsCancelled()) << response.status.ToString();
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(QueryServiceTest, CancelReleasesAdmissionSlot) {
  QueryServiceOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  options.cache_entries = 0;
  QueryService service(&SlowGraph(), nullptr, options);

  // Occupy the worker and wait until the queue has drained into it.
  Result<std::shared_ptr<QueryTicket>> blocker = service.Submit(SlowRequest());
  ASSERT_TRUE(blocker.ok());
  while (service.queue_depth() > 0) {
    std::this_thread::yield();
  }

  Result<std::shared_ptr<QueryTicket>> queued = service.Submit(SlowRequest());
  ASSERT_TRUE(queued.ok());  // fills the only admission slot

  Result<std::shared_ptr<QueryTicket>> overflow =
      service.Submit(SlowRequest());
  ASSERT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsResourceExhausted());
  // Admission failure names the queue, not the evaluator's tuple budget.
  EXPECT_NE(overflow.status().message().find("admission queue"),
            std::string::npos);
  EXPECT_EQ(service.stats().rejected, 1u);

  // Cancelling the queued request releases its slot: the next submission is
  // admitted (the full-queue path purges cancelled tickets).
  (*queued)->Cancel();
  Result<std::shared_ptr<QueryTicket>> retry = service.Submit(SlowRequest());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE((*queued)->Wait().status.IsCancelled());

  (*blocker)->Cancel();
  (*retry)->Cancel();
  (*blocker)->Wait();
  (*retry)->Wait();
}

TEST(QueryServiceTest, ExpiredQueuedDeadlineReleasesAdmissionSlot) {
  QueryServiceOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  options.cache_entries = 0;
  QueryService service(&SlowGraph(), nullptr, options);

  Result<std::shared_ptr<QueryTicket>> blocker = service.Submit(SlowRequest());
  ASSERT_TRUE(blocker.ok());
  while (service.queue_depth() > 0) {
    std::this_thread::yield();
  }

  // Fill the only slot with a request whose deadline lapses while queued:
  // it is provably dead, so the next full-queue submission reclaims its
  // slot instead of being rejected.
  QueryRequest doomed = SlowRequest();
  doomed.deadline = milliseconds(5);
  Result<std::shared_ptr<QueryTicket>> queued =
      service.Submit(std::move(doomed));
  ASSERT_TRUE(queued.ok());
  std::this_thread::sleep_for(milliseconds(30));

  Result<std::shared_ptr<QueryTicket>> retry = service.Submit(SlowRequest());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE((*queued)->Wait().status.IsDeadlineExceeded());

  (*blocker)->Cancel();
  (*retry)->Cancel();
  (*blocker)->Wait();
  (*retry)->Wait();
}

TEST(QueryServiceTest, DestructorCancelsInFlightAndQueued) {
  auto service = std::make_unique<QueryService>(&SlowGraph(), nullptr, [] {
    QueryServiceOptions options;
    options.num_workers = 1;
    return options;
  }());
  Result<std::shared_ptr<QueryTicket>> running =
      service->Submit(SlowRequest());
  Result<std::shared_ptr<QueryTicket>> queued = service->Submit(SlowRequest());
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(queued.ok());
  service.reset();  // must not block on the multi-second blocker
  EXPECT_TRUE((*running)->Wait().status.IsCancelled());
  EXPECT_TRUE((*queued)->Wait().status.IsCancelled());
}

// --- QueryService: statistics ------------------------------------------------

TEST(QueryServiceTest, PerClassAggregatesReportServingMetrics) {
  QueryService service(&SmallGraph(), nullptr, {});

  const std::string exact = "(?X, ?Z) <- (?X, knows, ?Y), (?Y, likes, ?Z)";
  ASSERT_TRUE(service.Execute(Req(exact, 0)).status.ok());
  ASSERT_TRUE(service.Execute(Req(exact, 0)).status.ok());  // cache hit

  ASSERT_TRUE(
      service.Execute(Req("(?X) <- APPROX (?X, knows.knows, ?Y)")).status.ok());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);

  const ClassAggregate& ex =
      stats.per_class[static_cast<size_t>(QueryClass::kExact)];
  EXPECT_EQ(ex.queries, 2u);
  EXPECT_EQ(ex.cache_hits, 1u);
  EXPECT_DOUBLE_EQ(ex.CacheHitRate(), 0.5);
  EXPECT_GT(ex.eval.tuples_popped, 0u);
  // The two-conjunct query ran through a rank join: its operator counters
  // must surface in the aggregate.
  EXPECT_GT(ex.join_rows, 0u);

  const ClassAggregate& ap =
      stats.per_class[static_cast<size_t>(QueryClass::kApprox)];
  EXPECT_EQ(ap.queries, 1u);
  EXPECT_EQ(ap.cache_hits, 0u);
  EXPECT_GT(ap.exec_ms, 0.0);

  EXPECT_EQ(
      stats.per_class[static_cast<size_t>(QueryClass::kRelax)].queries, 0u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(QueryClassTest, ClassifiesByFlexibleModes) {
  EXPECT_EQ(ClassifyQuery(Qy("(?X) <- (?X, a, ?Y)")), QueryClass::kExact);
  EXPECT_EQ(ClassifyQuery(Qy("(?X) <- APPROX (?X, a, ?Y)")),
            QueryClass::kApprox);
  EXPECT_EQ(ClassifyQuery(Qy("(?X) <- RELAX (?X, a, ?Y)")),
            QueryClass::kRelax);
  EXPECT_EQ(ClassifyQuery(
                Qy("(?X) <- APPROX (?X, a, ?Y), RELAX (?Y, b, ?Z)")),
            QueryClass::kMixed);
  EXPECT_STREQ(QueryClassToString(QueryClass::kMixed), "MIXED");
}

}  // namespace
}  // namespace omega
