#include "eval/conjunct_evaluator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::Cj;
using testing::DrainUpTo;
using testing::MakeGraph;
using testing::RandomGraph;
using testing::ReferenceAnswers;

PreparedConjunct Prepare(const Conjunct& conjunct, const GraphStore& graph,
                         const BoundOntology* ontology = nullptr,
                         const EvaluatorOptions& options = {}) {
  Result<PreparedConjunct> prepared =
      PrepareConjunct(conjunct, graph, ontology, options);
  EXPECT_TRUE(prepared.ok()) << prepared.status().ToString();
  return std::move(prepared).value();
}

std::vector<Answer> Evaluate(const GraphStore& graph, const Conjunct& conjunct,
                             const EvaluatorOptions& options = {},
                             const BoundOntology* ontology = nullptr) {
  PreparedConjunct prepared = Prepare(conjunct, graph, ontology, options);
  ConjunctEvaluator evaluator(&graph, ontology, &prepared, options);
  return DrainUpTo(&evaluator, kInfiniteCost);
}

std::string Label(const GraphStore& g, NodeId n) {
  return std::string(g.NodeLabel(n));
}

TEST(EvaluatorTest, ConstantSourceSingleEdge) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"a", "e", "c"}, {"b", "e", "c"}});
  auto answers = Evaluate(g, Cj("(a, e, ?X)"));
  ASSERT_EQ(answers.size(), 2u);
  for (const Answer& a : answers) {
    EXPECT_EQ(Label(g, a.v), "a");
    EXPECT_EQ(a.distance, 0);
  }
}

TEST(EvaluatorTest, ConstantSourceMissingNodeYieldsNothing) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  auto answers = Evaluate(g, Cj("(zzz, e, ?X)"));
  EXPECT_TRUE(answers.empty());
}

TEST(EvaluatorTest, Concatenation) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"b", "f", "c"}});
  auto answers = Evaluate(g, Cj("(a, e.f, ?X)"));
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(Label(g, answers[0].n), "c");
}

TEST(EvaluatorTest, ReversedLabel) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  auto answers = Evaluate(g, Cj("(b, e-, ?X)"));
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(Label(g, answers[0].n), "a");
}

TEST(EvaluatorTest, Case2ConstantTargetReversesRegex) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"b", "f", "c"}});
  // (?X, e.f, c) must bind X = a. After reversal, Answer.v = c, Answer.n = a.
  Conjunct conjunct = Cj("(?X, e.f, c)");
  PreparedConjunct prepared = Prepare(conjunct, g);
  EXPECT_TRUE(prepared.reversed);
  EXPECT_FALSE(prepared.eval_source.is_variable);
  EXPECT_EQ(prepared.eval_source.name, "c");
  ConjunctEvaluator evaluator(&g, nullptr, &prepared, {});
  auto answers = DrainUpTo(&evaluator, kInfiniteCost);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(Label(g, answers[0].v), "c");
  EXPECT_EQ(Label(g, answers[0].n), "a");
}

TEST(EvaluatorTest, BothEndpointsConstant) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"a", "e", "c"}});
  auto hit = Evaluate(g, Cj("(a, e, b)"));
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(Label(g, hit[0].n), "b");
  auto miss = Evaluate(g, Cj("(b, e, a)"));
  EXPECT_TRUE(miss.empty());
}

TEST(EvaluatorTest, StarIncludesSelfPairs) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"b", "e", "c"}});
  auto answers = Evaluate(g, Cj("(?X, e*, ?Y)"));
  // Self pairs (a,a),(b,b),(c,c) at 0 plus (a,b),(b,c),(a,c).
  EXPECT_EQ(answers.size(), 6u);
  size_t self_pairs = 0;
  for (const Answer& a : answers) self_pairs += (a.v == a.n);
  EXPECT_EQ(self_pairs, 3u);
}

TEST(EvaluatorTest, PlusExcludesEmptyPath) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"b", "e", "c"}});
  auto answers = Evaluate(g, Cj("(?X, e+, ?Y)"));
  EXPECT_EQ(answers.size(), 3u);  // (a,b),(b,c),(a,c)
  for (const Answer& a : answers) EXPECT_NE(a.v, a.n);
}

TEST(EvaluatorTest, CycleTermination) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"b", "e", "a"}});
  auto answers = Evaluate(g, Cj("(?X, e+, ?Y)"));
  // Visited-set pruning must terminate the cycle: pairs (a,b),(b,a),(a,a),(b,b).
  EXPECT_EQ(answers.size(), 4u);
}

TEST(EvaluatorTest, WildcardMatchesAnyLabelForward) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"a", "f", "c"}});
  auto answers = Evaluate(g, Cj("(a, _, ?X)"));
  EXPECT_EQ(answers.size(), 2u);
  auto reversed = Evaluate(g, Cj("(b, _, ?X)"));
  EXPECT_TRUE(reversed.empty());  // `_` does not traverse e backwards
}

TEST(EvaluatorTest, WildcardIncludesTypeEdges) {
  GraphBuilder builder;
  const NodeId x = builder.GetOrAddNode("x");
  const NodeId k = builder.GetOrAddNode("K");
  ASSERT_TRUE(builder.AddTypeEdge(x, k).ok());
  GraphStore g = std::move(builder).Finalize();
  auto answers = Evaluate(g, Cj("(x, _, ?X)"));
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].n, k);
}

TEST(EvaluatorTest, AlternationUnionsBranches) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"a", "f", "c"}, {"a", "g", "d"}});
  auto answers = Evaluate(g, Cj("(a, e|f, ?X)"));
  EXPECT_EQ(answers.size(), 2u);
}

TEST(EvaluatorTest, UnknownLabelMatchesNothing) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  EXPECT_TRUE(Evaluate(g, Cj("(a, nosuchlabel, ?X)")).empty());
  EXPECT_TRUE(Evaluate(g, Cj("(?X, nosuchlabel, ?Y)")).empty());
}

TEST(EvaluatorTest, EpsilonRegexPairsEveryNodeWithItself) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"c", "e", "d"}});
  auto answers = Evaluate(g, Cj("(?X, (), ?Y)"));
  EXPECT_EQ(answers.size(), 4u);
  for (const Answer& a : answers) {
    EXPECT_EQ(a.v, a.n);
    EXPECT_EQ(a.distance, 0);
  }
}

TEST(EvaluatorTest, NoDuplicateAnswers) {
  // Diamond: two paths a->d; answer (a, d) must be emitted exactly once.
  GraphStore g = MakeGraph(
      {{"a", "e", "b"}, {"a", "e", "c"}, {"b", "f", "d"}, {"c", "f", "d"}});
  auto answers = Evaluate(g, Cj("(a, e.f, ?X)"));
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(Label(g, answers[0].n), "d");
}

TEST(EvaluatorTest, AnswersAreNonDecreasingInDistance) {
  GraphStore g = RandomGraph(5, 30, {"a", "b"}, 2.0);
  Conjunct conjunct = Cj("APPROX (?X, a.b, ?Y)");
  EvaluatorOptions options;
  options.max_live_tuples = 500000;
  PreparedConjunct prepared = Prepare(conjunct, g, nullptr, options);
  ConjunctEvaluator evaluator(&g, nullptr, &prepared, options);
  Answer answer;
  Cost last = 0;
  size_t count = 0;
  while (count < 2000 && evaluator.Next(&answer)) {
    EXPECT_GE(answer.distance, last);
    last = answer.distance;
    ++count;
  }
  EXPECT_GT(count, 0u);
}

TEST(EvaluatorTest, MemoryBudgetFailsWithResourceExhausted) {
  GraphStore g = RandomGraph(9, 50, {"a", "b", "c"}, 4.0);
  Conjunct conjunct = Cj("APPROX (?X, a.b.c, ?Y)");
  EvaluatorOptions options;
  options.max_live_tuples = 200;  // absurdly small budget
  PreparedConjunct prepared = Prepare(conjunct, g, nullptr, options);
  ConjunctEvaluator evaluator(&g, nullptr, &prepared, options);
  Answer answer;
  while (evaluator.Next(&answer)) {
  }
  EXPECT_TRUE(evaluator.status().IsResourceExhausted());
}

TEST(EvaluatorTest, StatsAreTracked) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"b", "e", "c"}});
  Conjunct conjunct = Cj("(a, e+, ?X)");
  PreparedConjunct prepared = Prepare(conjunct, g);
  ConjunctEvaluator evaluator(&g, nullptr, &prepared, {});
  DrainUpTo(&evaluator, kInfiniteCost);
  const EvaluatorStats stats = evaluator.stats();
  EXPECT_GT(stats.tuples_popped, 0u);
  EXPECT_GT(stats.tuples_pushed, 0u);
  EXPECT_GT(stats.succ_expansions, 0u);
  EXPECT_EQ(stats.answers_emitted, 2u);
}

TEST(EvaluatorTest, BatchSizeDoesNotChangeAnswers) {
  GraphStore g = RandomGraph(21, 40, {"a", "b"}, 2.5);
  for (size_t batch : {1u, 3u, 100u, 10000u}) {
    EvaluatorOptions options;
    options.batch_size = batch;
    auto answers = Evaluate(g, Cj("(?X, a.b-, ?Y)"), options);
    EvaluatorOptions base;
    auto expected = Evaluate(g, Cj("(?X, a.b-, ?Y)"), base);
    EXPECT_EQ(answers, expected) << "batch=" << batch;
  }
}

TEST(EvaluatorTest, FinalPriorityAblationSameAnswerSet) {
  GraphStore g = RandomGraph(33, 40, {"a", "b"}, 2.5);
  EvaluatorOptions no_priority;
  no_priority.prioritize_final_tuples = false;
  auto without = Evaluate(g, Cj("(?X, a+|b, ?Y)"), no_priority);
  auto with = Evaluate(g, Cj("(?X, a+|b, ?Y)"), {});
  EXPECT_EQ(without, with);
}

class ExactEvaluationPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

// The evaluator's full answer set equals an independent Dijkstra over the
// product space, across random graphs x random regexes x endpoint shapes.
TEST_P(ExactEvaluationPropertyTest, MatchesReferenceProductSearch) {
  Rng rng(GetParam());
  const std::vector<std::string> labels = {"a", "b", "c"};
  GraphStore g = RandomGraph(GetParam() * 31 + 7, 25, labels, 2.0);

  for (int round = 0; round < 8; ++round) {
    RegexPtr regex = testing::RandomRegex(&rng, labels, 2);
    Conjunct conjunct;
    conjunct.mode = ConjunctMode::kExact;
    const int shape = static_cast<int>(rng.NextBounded(3));
    conjunct.source = shape == 1
                          ? Endpoint::Constant("n" + std::to_string(
                                rng.NextBounded(25)))
                          : Endpoint::Variable("X");
    conjunct.target = shape == 2
                          ? Endpoint::Constant("n" + std::to_string(
                                rng.NextBounded(25)))
                          : Endpoint::Variable("Y");
    conjunct.regex = Clone(*regex);

    PreparedConjunct prepared = Prepare(conjunct, g);
    ConjunctEvaluator evaluator(&g, nullptr, &prepared, {});
    auto got = DrainUpTo(&evaluator, kInfiniteCost);
    auto expected = ReferenceAnswers(g, nullptr, prepared, kInfiniteCost);
    EXPECT_EQ(got, expected) << ToString(*regex) << " shape " << shape;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactEvaluationPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

class ApproxEvaluationPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

// APPROX answers up to distance 2 match the reference product search over
// the same A_R automaton (validating dictionaries/batching/visited against
// plain Dijkstra; A_R itself is validated against brute-force edit distance
// in approx_automaton_test).
TEST_P(ApproxEvaluationPropertyTest, MatchesReferenceUpToDistanceTwo) {
  Rng rng(GetParam() * 7919);
  const std::vector<std::string> labels = {"a", "b"};
  GraphStore g = RandomGraph(GetParam() * 13 + 3, 15, labels, 1.5);

  for (int round = 0; round < 4; ++round) {
    RegexPtr regex = testing::RandomRegex(&rng, labels, 2);
    Conjunct conjunct;
    conjunct.mode = ConjunctMode::kApprox;
    conjunct.source = Endpoint::Constant("n" + std::to_string(
        rng.NextBounded(15)));
    conjunct.target = Endpoint::Variable("Y");
    conjunct.regex = Clone(*regex);

    EvaluatorOptions options;
    options.max_distance = 2;
    PreparedConjunct prepared = Prepare(conjunct, g, nullptr, options);
    ConjunctEvaluator evaluator(&g, nullptr, &prepared, options);
    auto got = DrainUpTo(&evaluator, 2);
    auto expected = ReferenceAnswers(g, nullptr, prepared, 2);
    EXPECT_EQ(got, expected) << ToString(*regex);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxEvaluationPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace omega
