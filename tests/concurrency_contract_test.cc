// Regression tests for the concurrency contracts the thread-safety
// annotation pass formalised (PR 6). Each test targets one site the
// capability audit called out as load-bearing:
//
//  - ServiceStats accumulation: counters are guarded as a whole by
//    stats_mu_, and admissions are counted inside the queue critical
//    section, so a concurrent stats() snapshot must never observe a
//    completion without its submission (completions > submitted would mean
//    an unguarded accumulation path leaked out of the lock).
//  - Epoch publication: the epoch pointer is a SharedMutex-guarded leaf —
//    concurrent readers of dataset_epoch() must see monotonically
//    non-decreasing ids while SwapDataset storms (a stale or torn pointer
//    load would show up as the id going backwards).
//  - RelaxedAtomic: the documented lock-free escape hatch must still be
//    atomic — relaxed ordering licenses reordering, not lost updates.
//
// These run under the TSan CI job too (suite name is in its ctest regex).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/atomics.h"
#include "rpq/query_parser.h"
#include "service/query_service.h"
#include "test_util.h"

namespace omega {
namespace {

using omega::testing::Qy;

QueryRequest Req(const std::string& text, size_t top_k = 0) {
  QueryRequest request;
  request.query = Qy(text);
  request.top_k = top_k;
  return request;
}

const GraphStore& SmallGraph() {
  static const GraphStore* graph = new GraphStore(omega::testing::MakeGraph({
      {"a1", "knows", "a2"},
      {"a2", "knows", "a3"},
      {"a3", "knows", "a1"},
      {"a1", "likes", "a3"},
      {"a2", "likes", "a1"},
      {"b1", "knows", "b2"},
  }));
  return *graph;
}

// Clients hammer Submit while a poller thread snapshots stats()
// concurrently. Every snapshot must satisfy the accounting invariant
// (completions never exceed admissions, per-class totals never exceed the
// global total); the final snapshot must balance exactly. The unguarded
// variant of this bug — a counter bumped outside stats_mu_, or admissions
// counted outside the queue critical section — produces transient
// completions > submitted under this load.
TEST(ConcurrencyContractTest, StatsSnapshotsAreConsistentUnderLoad) {
  QueryServiceOptions options;
  options.num_workers = 4;
  options.max_queue = 1024;
  QueryService service(&SmallGraph(), nullptr, options);

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 60;
  std::atomic<bool> stop_polling{false};
  std::atomic<size_t> bad_snapshots{0};
  std::atomic<size_t> client_oks{0};

  std::thread poller([&] {
    while (!stop_polling.load(std::memory_order_relaxed)) {
      const ServiceStats snap = service.stats();
      const uint64_t finished = snap.completed + snap.cancelled +
                                snap.deadline_exceeded + snap.failed;
      if (finished > snap.submitted) ++bad_snapshots;
      uint64_t per_class = 0;
      for (const ClassAggregate& agg : snap.per_class) {
        per_class += agg.queries;
      }
      if (per_class > snap.submitted) ++bad_snapshots;
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t r = 0; r < kPerClient; ++r) {
        QueryRequest request =
            Req(c % 2 == 0 ? "(?X) <- (?X, knows, ?Y)"
                           : "(?X, ?Z) <- (?X, knows, ?Y), (?Y, likes, ?Z)");
        // Half the traffic bypasses the cache so the executed path (the
        // heavier stats accumulation) stays busy throughout.
        request.bypass_cache = r % 2 == 0;
        if (service.Execute(std::move(request)).status.ok()) ++client_oks;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  stop_polling.store(true, std::memory_order_relaxed);
  poller.join();

  EXPECT_EQ(bad_snapshots.load(), 0u);
  EXPECT_EQ(client_oks.load(), kClients * kPerClient);

  const ServiceStats final_stats = service.stats();
  EXPECT_EQ(final_stats.submitted, kClients * kPerClient);
  EXPECT_EQ(final_stats.completed, kClients * kPerClient);
  EXPECT_EQ(final_stats.rejected, 0u);
  uint64_t per_class_total = 0;
  for (const ClassAggregate& agg : final_stats.per_class) {
    per_class_total += agg.queries;
  }
  EXPECT_EQ(per_class_total, kClients * kPerClient);
}

// SwapDataset storm vs concurrent dataset_epoch() readers: the published
// epoch id must be monotonically non-decreasing per reader, land exactly on
// kSwaps when the storm ends, and queries admitted throughout must carry a
// valid epoch id. A reader that loaded epoch_ without the shared capability
// could observe the pointer mid-swap (TSan catches the race; this test
// catches the semantic symptom — time going backwards).
TEST(ConcurrencyContractTest, EpochIdsMonotoneUnderSwapStorm) {
  auto make_dataset = [] {
    OntologyBuilder ob;
    Result<Ontology> ontology = std::move(ob).Finalize();
    EXPECT_TRUE(ontology.ok());
    return Dataset::FromParts(omega::testing::MakeGraph({
                                  {"a1", "knows", "a2"},
                                  {"a2", "knows", "a3"},
                              }),
                              std::move(ontology).value());
  };
  std::shared_ptr<const Dataset> dataset = make_dataset();

  QueryServiceOptions options;
  options.num_workers = 2;
  options.max_queue = 256;
  QueryService service(dataset, options);

  constexpr uint64_t kSwaps = 64;
  constexpr size_t kReaders = 3;
  std::atomic<bool> stop_readers{false};
  std::atomic<size_t> regressions{0};
  std::atomic<size_t> swap_failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      while (!stop_readers.load(std::memory_order_relaxed)) {
        const uint64_t now = service.dataset_epoch();
        if (now < last) ++regressions;
        last = now;
        std::this_thread::yield();
      }
    });
  }

  std::thread querier([&] {
    while (!stop_readers.load(std::memory_order_relaxed)) {
      const QueryResponse response =
          service.Execute(Req("(?X) <- (?X, knows, ?Y)"));
      if (response.status.ok() && response.epoch > kSwaps) ++regressions;
      std::this_thread::yield();
    }
  });

  for (uint64_t s = 0; s < kSwaps; ++s) {
    if (!service.SwapDataset(make_dataset()).ok()) ++swap_failures;
  }
  stop_readers.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  querier.join();

  EXPECT_EQ(swap_failures.load(), 0u);
  EXPECT_EQ(regressions.load(), 0u);
  EXPECT_EQ(service.dataset_epoch(), kSwaps);
  EXPECT_EQ(service.stats().dataset_swaps, kSwaps);
}

// The lock-free escape hatch: RelaxedAtomic pins memory_order_relaxed,
// which permits arbitrary reordering but NOT lost updates — concurrent
// FetchAdds must sum exactly. (The is_always_lock_free static_assert in
// atomics.h is the compile-time half of this contract.)
TEST(ConcurrencyContractTest, RelaxedAtomicFetchAddLosesNoUpdates) {
  RelaxedAtomic<uint64_t> counter;
  EXPECT_EQ(counter.Load(), 0u);

  constexpr size_t kThreads = 8;
  constexpr uint64_t kAddsPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) counter.FetchAdd(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Load(), kThreads * kAddsPerThread);

  EXPECT_EQ(counter.Exchange(7), kThreads * kAddsPerThread);
  counter.Store(42);
  EXPECT_EQ(counter.Load(), 42u);
}

// Cancellation flags are RelaxedAtomic<bool> (documented escape in
// cancel.h): a flip on one thread must become visible to token polls on
// another, and tokens must share state with their source after copies.
TEST(ConcurrencyContractTest, CancelFlagVisibleAcrossThreads) {
  CancelSource source;
  CancelToken token = source.token();
  CancelToken copy = token;
  ASSERT_FALSE(token.cancelled());

  std::atomic<bool> seen{false};
  std::thread watcher([&] {
    while (!copy.cancelled()) std::this_thread::yield();
    seen.store(true);
  });
  source.Cancel();
  watcher.join();
  EXPECT_TRUE(seen.load());
  EXPECT_TRUE(token.cancelled());
}

}  // namespace
}  // namespace omega
