// Property tests for the rank-join layer: RankJoinStream / BuildJoinTree are
// replayed against (a) a naive reference join — materialise both sides,
// nested-loop merge on shared variables, sort by total distance — and (b)
// the seed string-keyed join kept in rank_join_reference.h, on identical
// randomized inputs. Checked: multiset equality of (slots, distance) rows
// and non-decreasing emission order, including the no-shared-variable cross
// product and the (?X, R, ?X) self-join lift.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "eval/rank_join.h"
#include "eval/rank_join_reference.h"
#include "test_util.h"

namespace omega {
namespace {

/// A joined row flattened for comparison.
using Row = std::pair<std::vector<NodeId>, Cost>;

using ScriptedStream = testing::ScriptedBindingStream;

/// One randomly scripted side: conjunct-shaped (1 or 2 variables), rows in
/// non-decreasing distance with values from a small domain so joins hit.
struct SideSpec {
  std::vector<VarId> vars;  // sorted
  std::vector<Binding> rows;
};

/// Random rows over a fixed variable set, distances non-decreasing.
SideSpec MakeSideWithVars(Rng& rng, size_t width, std::vector<VarId> vars,
                          size_t max_rows, NodeId value_domain) {
  SideSpec spec;
  spec.vars = std::move(vars);
  const size_t rows = rng.NextBounded(max_rows + 1);
  Cost distance = 0;
  for (size_t i = 0; i < rows; ++i) {
    distance += static_cast<Cost>(rng.NextBounded(3));
    Binding b(width);
    b.distance = distance;
    for (const VarId v : spec.vars) {
      b.Bind(v, static_cast<NodeId>(rng.NextBounded(value_domain)));
    }
    spec.rows.push_back(std::move(b));
  }
  return spec;
}

SideSpec MakeRandomSide(Rng& rng, size_t width, size_t max_rows,
                        NodeId value_domain) {
  std::vector<VarId> vars;
  const size_t num_vars = 1 + rng.NextBounded(2);  // conjunct-shaped
  while (vars.size() < num_vars) {
    const VarId v = static_cast<VarId>(rng.NextBounded(width));
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  }
  std::sort(vars.begin(), vars.end());
  return MakeSideWithVars(rng, width, std::move(vars), max_rows, value_domain);
}

/// Naive reference join: nested loop over fully materialised sides, merging
/// two full-width slot rows when every commonly-bound slot agrees.
std::vector<Row> NaiveJoin(const std::vector<Row>& left,
                           const std::vector<Row>& right) {
  std::vector<Row> out;
  for (const Row& l : left) {
    for (const Row& r : right) {
      std::vector<NodeId> merged = l.first;
      bool ok = true;
      for (size_t slot = 0; slot < merged.size(); ++slot) {
        if (r.first[slot] == kInvalidNode) continue;
        if (merged[slot] != kInvalidNode && merged[slot] != r.first[slot]) {
          ok = false;
          break;
        }
        merged[slot] = r.first[slot];
      }
      if (ok) out.emplace_back(std::move(merged), l.second + r.second);
    }
  }
  return out;
}

std::vector<Row> ToRows(const SideSpec& spec) {
  std::vector<Row> rows;
  for (const Binding& b : spec.rows) rows.emplace_back(b.slots, b.distance);
  return rows;
}

/// Drains `stream`, checking non-decreasing distance, and returns the rows.
std::vector<Row> Drain(BindingStream& stream) {
  std::vector<Row> rows;
  Binding b;
  Cost last = 0;
  while (stream.Next(&b)) {
    EXPECT_GE(b.distance, last) << "emission order must be non-decreasing";
    last = b.distance;
    rows.emplace_back(b.slots, b.distance);
  }
  EXPECT_TRUE(stream.status().ok()) << stream.status().ToString();
  return rows;
}

/// Sorted copy for multiset comparison.
std::vector<Row> Canon(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Lifts a slot spec to the seed string data plane: slot k becomes "Vk".
std::unique_ptr<VectorReferenceBindingStream> ToReferenceStream(
    const SideSpec& spec) {
  std::vector<std::string> names;
  for (const VarId v : spec.vars) names.push_back("V" + std::to_string(v));
  std::sort(names.begin(), names.end());
  std::vector<ReferenceBinding> rows;
  for (const Binding& b : spec.rows) {
    ReferenceBinding rb;
    rb.distance = b.distance;
    for (const VarId v : spec.vars) {
      rb.Bind("V" + std::to_string(v), b.Get(v));
    }
    rows.push_back(std::move(rb));
  }
  return std::make_unique<VectorReferenceBindingStream>(std::move(names),
                                                        std::move(rows));
}

/// Drains the seed join and converts back to slot rows for comparison.
std::vector<Row> DrainReference(ReferenceBindingStream& stream, size_t width) {
  std::vector<Row> rows;
  ReferenceBinding b;
  Cost last = 0;
  while (stream.Next(&b)) {
    EXPECT_GE(b.distance, last);
    last = b.distance;
    std::vector<NodeId> slots(width, kInvalidNode);
    for (const auto& [name, value] : b.vars) {
      slots[static_cast<VarId>(std::stoul(name.substr(1)))] = value;
    }
    rows.emplace_back(std::move(slots), b.distance);
  }
  EXPECT_TRUE(stream.status().ok());
  return rows;
}

TEST(RankJoinPropertyTest, BinaryJoinMatchesNaiveReference) {
  // Slot domains small enough that shared-variable joins, cross products
  // (disjoint variable picks) and self-overlapping picks all occur.
  Rng rng(2026);
  for (int round = 0; round < 200; ++round) {
    const size_t width = 2 + rng.NextBounded(3);   // 2..4 catalogue slots
    const NodeId domain = 2 + rng.NextBounded(5);  // 2..6 distinct values
    const SideSpec left = MakeRandomSide(rng, width, 12, domain);
    const SideSpec right = MakeRandomSide(rng, width, 12, domain);

    const std::vector<Row> expected =
        Canon(NaiveJoin(ToRows(left), ToRows(right)));

    RankJoinStream join(
        std::make_unique<ScriptedStream>(left.vars, left.rows),
        std::make_unique<ScriptedStream>(right.vars, right.rows));
    EXPECT_EQ(Canon(Drain(join)), expected) << "round " << round;

    ReferenceRankJoinStream seed_join(ToReferenceStream(left),
                                      ToReferenceStream(right));
    EXPECT_EQ(Canon(DrainReference(seed_join, width)), expected)
        << "seed reference diverged in round " << round;
  }
}

TEST(RankJoinPropertyTest, JoinTreeMatchesNaiveReference) {
  Rng rng(4097);
  for (int round = 0; round < 100; ++round) {
    const size_t width = 3 + rng.NextBounded(2);  // 3..4 catalogue slots
    const NodeId domain = 2 + rng.NextBounded(4);
    const size_t num_streams = 2 + rng.NextBounded(2);  // 2..3 conjuncts

    std::vector<SideSpec> specs;
    std::vector<std::unique_ptr<BindingStream>> streams;
    for (size_t i = 0; i < num_streams; ++i) {
      specs.push_back(MakeRandomSide(rng, width, 8, domain));
      streams.push_back(
          std::make_unique<ScriptedStream>(specs[i].vars, specs[i].rows));
    }

    std::vector<Row> expected = ToRows(specs[0]);
    for (size_t i = 1; i < specs.size(); ++i) {
      expected = NaiveJoin(expected, ToRows(specs[i]));
    }

    std::unique_ptr<BindingStream> tree = BuildJoinTree(std::move(streams));
    EXPECT_EQ(Canon(Drain(*tree)), Canon(std::move(expected)))
        << "round " << round;
  }
}

TEST(RankJoinPropertyTest, FoldedKeyWithThreeSharedVariables) {
  // More than two shared variables fall off the exact PackPair key onto the
  // FNV fold, whose grouping collisions must be caught by the merge-time
  // consistency re-check. The planner's bushy trees can join two subtrees
  // on wide shared sets, so this branch is live engine behaviour now.
  Rng rng(7331);
  for (int round = 0; round < 100; ++round) {
    const size_t width = 4;
    const NodeId domain = 2 + rng.NextBounded(3);  // small: forces overlaps
    const SideSpec left =
        MakeSideWithVars(rng, width, {0, 1, 2}, 12, domain);
    const SideSpec right =
        MakeSideWithVars(rng, width, {0, 1, 2, 3}, 12, domain);
    const std::vector<Row> expected =
        Canon(NaiveJoin(ToRows(left), ToRows(right)));
    RankJoinStream join(
        std::make_unique<ScriptedStream>(left.vars, left.rows),
        std::make_unique<ScriptedStream>(right.vars, right.rows));
    EXPECT_EQ(Canon(Drain(join)), expected) << "round " << round;
  }
}

TEST(RankJoinPropertyTest, ExplicitCrossProduct) {
  // Disjoint variables: every pair merges; output size is the product.
  const size_t width = 2;
  SideSpec left{{0}, {}};
  SideSpec right{{1}, {}};
  for (NodeId i = 0; i < 7; ++i) {
    Binding l(width);
    l.distance = static_cast<Cost>(i);
    l.Bind(0, i);
    left.rows.push_back(std::move(l));
    Binding r(width);
    r.distance = static_cast<Cost>(2 * i);
    r.Bind(1, i);
    right.rows.push_back(std::move(r));
  }
  const std::vector<Row> expected =
      Canon(NaiveJoin(ToRows(left), ToRows(right)));
  ASSERT_EQ(expected.size(), 49u);
  RankJoinStream join(std::make_unique<ScriptedStream>(left.vars, left.rows),
                      std::make_unique<ScriptedStream>(right.vars, right.rows));
  EXPECT_EQ(Canon(Drain(join)), expected);
}

/// Scripted answer stream for the self-join lift.
class ScriptedAnswerStream : public AnswerStream {
 public:
  explicit ScriptedAnswerStream(std::vector<Answer> answers)
      : answers_(std::move(answers)) {}
  bool Next(Answer* out) override {
    if (pos_ >= answers_.size()) return false;
    *out = answers_[pos_++];
    return true;
  }
  const Status& status() const override { return status_; }

 private:
  std::vector<Answer> answers_;
  size_t pos_ = 0;
  Status status_;
};

TEST(RankJoinPropertyTest, SelfJoinConjunctFiltersEndpointAgreement) {
  // (?X, R, ?X): both endpoints map to slot 0; only v == n answers survive,
  // and joining two such streams intersects their node sets.
  std::vector<Answer> loops_a, loops_b;
  for (NodeId n = 0; n < 10; ++n) {
    loops_a.push_back({n, n, static_cast<Cost>(n)});       // keeps all
    loops_a.push_back({n, n + 1, static_cast<Cost>(n)});   // filtered out
    if (n % 2 == 0) loops_b.push_back({n, n, static_cast<Cost>(n)});
  }
  auto a = std::make_unique<ConjunctBindingStream>(
      std::make_unique<ScriptedAnswerStream>(loops_a), /*width=*/1,
      /*source_slot=*/0, /*target_slot=*/0);
  ASSERT_EQ(a->variables(), (std::vector<VarId>{0}));
  auto b = std::make_unique<ConjunctBindingStream>(
      std::make_unique<ScriptedAnswerStream>(loops_b), /*width=*/1,
      /*source_slot=*/0, /*target_slot=*/0);

  RankJoinStream join(std::move(a), std::move(b));
  std::vector<Row> rows = Drain(join);
  ASSERT_EQ(rows.size(), 5u);  // even nodes only
  for (const Row& row : rows) {
    EXPECT_EQ(row.first[0] % 2, 0u);
    EXPECT_EQ(row.second, static_cast<Cost>(2 * row.first[0]));
  }
}

}  // namespace
}  // namespace omega
