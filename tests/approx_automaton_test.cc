#include "automata/approx.h"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <queue>

#include "automata/epsilon_removal.h"
#include "automata/reference_matcher.h"
#include "automata/thompson.h"
#include "common/rng.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::Rx;

LabelDictionary MakeLabels(const std::vector<std::string>& names) {
  LabelDictionary dict;
  for (const auto& n : names) dict.Intern(n);
  return dict;
}

/// Cheapest cost at which A_R accepts the given step sequence — a direct
/// Dijkstra over (state, position), independent of the graph evaluator.
Cost AcceptanceCost(const Nfa& nfa, const LabelDictionary& dict,
                    const std::vector<LabelStep>& word) {
  using Key = std::pair<StateId, size_t>;
  std::map<Key, Cost> dist;
  std::priority_queue<std::pair<Cost, Key>, std::vector<std::pair<Cost, Key>>,
                      std::greater<>>
      heap;
  auto push = [&](StateId s, size_t pos, Cost d) {
    Key k{s, pos};
    auto it = dist.find(k);
    if (it != dist.end() && it->second <= d) return;
    dist[k] = d;
    heap.emplace(d, k);
  };
  push(nfa.initial(), 0, 0);
  Cost best = kInfiniteCost;
  while (!heap.empty()) {
    auto [d, key] = heap.top();
    heap.pop();
    auto [s, pos] = key;
    if (dist[key] < d) continue;
    if (pos == word.size() && nfa.IsFinal(s)) {
      best = std::min(best, d + nfa.FinalWeight(s));
    }
    for (const NfaTransition& t : nfa.Out(s)) {
      switch (t.kind) {
        case TransitionKind::kEpsilon:
          push(t.to, pos, d + t.cost);
          break;
        case TransitionKind::kLabel:
          if (pos < word.size() && t.label != kInvalidLabel &&
              word[pos].label == dict.Name(t.label) &&
              word[pos].dir == t.dir) {
            push(t.to, pos + 1, d + t.cost);
          }
          break;
        case TransitionKind::kAnyLabel:
          if (pos < word.size() && word[pos].dir == t.dir) {
            push(t.to, pos + 1, d + t.cost);
          }
          break;
        case TransitionKind::kAnyLabelBothDirs:
          if (pos < word.size()) push(t.to, pos + 1, d + t.cost);
          break;
        case TransitionKind::kConstrainedType:
          break;  // not produced by APPROX
      }
    }
  }
  return best;
}

Nfa BuildApprox(const std::string& regex, const LabelDictionary& dict,
                const ApproxOptions& options = {}) {
  return BuildApproxAutomaton(
      RemoveEpsilons(BuildThompsonNfa(*Rx(regex), dict)), options);
}

TEST(ApproxAutomatonTest, IsEpsilonFree) {
  LabelDictionary dict = MakeLabels({"a", "b"});
  Nfa a = BuildApprox("a.b", dict);
  EXPECT_FALSE(a.HasEpsilonTransitions());
}

TEST(ApproxAutomatonTest, ExactWordCostsZero) {
  LabelDictionary dict = MakeLabels({"a", "b"});
  Nfa a = BuildApprox("a.b", dict);
  std::vector<LabelStep> ab = {{"a", Direction::kOutgoing},
                               {"b", Direction::kOutgoing}};
  EXPECT_EQ(AcceptanceCost(a, dict, ab), 0);
}

TEST(ApproxAutomatonTest, SubstitutionCost) {
  LabelDictionary dict = MakeLabels({"a", "b", "c"});
  Nfa a = BuildApprox("a.b", dict);
  std::vector<LabelStep> ac = {{"a", Direction::kOutgoing},
                               {"c", Direction::kOutgoing}};
  EXPECT_EQ(AcceptanceCost(a, dict, ac), 1);
  // Substituting by a reversed label also costs one (Example 2's
  // gradFrom -> gradFrom-).
  std::vector<LabelStep> ab_rev = {{"a", Direction::kOutgoing},
                                   {"b", Direction::kIncoming}};
  EXPECT_EQ(AcceptanceCost(a, dict, ab_rev), 1);
}

TEST(ApproxAutomatonTest, DeletionCost) {
  LabelDictionary dict = MakeLabels({"a", "b"});
  Nfa a = BuildApprox("a.b", dict);
  std::vector<LabelStep> just_a = {{"a", Direction::kOutgoing}};
  EXPECT_EQ(AcceptanceCost(a, dict, just_a), 1);  // delete b
  std::vector<LabelStep> empty;
  EXPECT_EQ(AcceptanceCost(a, dict, empty), 2);  // delete both
}

TEST(ApproxAutomatonTest, InsertionCost) {
  LabelDictionary dict = MakeLabels({"a", "b", "x"});
  Nfa a = BuildApprox("a", dict);
  std::vector<LabelStep> xa = {{"x", Direction::kOutgoing},
                               {"a", Direction::kOutgoing}};
  EXPECT_EQ(AcceptanceCost(a, dict, xa), 1);
  std::vector<LabelStep> axx = {{"a", Direction::kOutgoing},
                                {"x", Direction::kOutgoing},
                                {"x", Direction::kIncoming}};
  EXPECT_EQ(AcceptanceCost(a, dict, axx), 2);
}

TEST(ApproxAutomatonTest, CustomCosts) {
  LabelDictionary dict = MakeLabels({"a", "b", "c"});
  ApproxOptions options;
  options.substitution_cost = 5;
  options.deletion_cost = 3;
  options.insertion_cost = 7;
  Nfa a = BuildApprox("a.b", dict, options);
  std::vector<LabelStep> ac = {{"a", Direction::kOutgoing},
                               {"c", Direction::kOutgoing}};
  EXPECT_EQ(AcceptanceCost(a, dict, ac), 5);
  std::vector<LabelStep> just_a = {{"a", Direction::kOutgoing}};
  EXPECT_EQ(AcceptanceCost(a, dict, just_a), 3);
  std::vector<LabelStep> cab = {{"c", Direction::kOutgoing},
                                {"a", Direction::kOutgoing},
                                {"b", Direction::kOutgoing}};
  EXPECT_EQ(AcceptanceCost(a, dict, cab), 7);
}

TEST(ApproxAutomatonTest, UnknownLabelStillEditable) {
  // "zzz" is not in the graph: the exact transition can never fire, but
  // substitution can replace it, so any single step is accepted at cost 1.
  LabelDictionary dict = MakeLabels({"a"});
  Nfa a = BuildApprox("zzz", dict);
  std::vector<LabelStep> one = {{"a", Direction::kOutgoing}};
  EXPECT_EQ(AcceptanceCost(a, dict, one), 1);
}

TEST(ApproxAutomatonTest, TranspositionOptional) {
  LabelDictionary dict = MakeLabels({"a", "b"});
  std::vector<LabelStep> ba = {{"b", Direction::kOutgoing},
                               {"a", Direction::kOutgoing}};
  Nfa without = BuildApprox("a.b", dict);
  EXPECT_EQ(AcceptanceCost(without, dict, ba), 2);  // two substitutions
  ApproxOptions options;
  options.enable_transposition = true;
  Nfa with = BuildApprox("a.b", dict, options);
  EXPECT_EQ(AcceptanceCost(with, dict, ba), 1);  // one swap
}

TEST(ApproxAutomatonTest, PlusRegexDeletionLeavesMandatoryStep) {
  LabelDictionary dict = MakeLabels({"a"});
  Nfa a = BuildApprox("a+", dict);
  std::vector<LabelStep> empty;
  // a+ requires >= 1 symbol; deleting the single mandatory 'a' costs 1.
  EXPECT_EQ(AcceptanceCost(a, dict, empty), 1);
}

class ApproxDistancePropertyTest : public ::testing::TestWithParam<uint64_t> {
};

// A_R acceptance cost == classic Levenshtein distance to the language
// (reference: enumerate L(R) and run the textbook DP).
TEST_P(ApproxDistancePropertyTest, MatchesBruteForceEditDistance) {
  Rng rng(GetParam());
  const std::vector<std::string> labels = {"a", "b"};
  LabelDictionary dict = MakeLabels(labels);
  EditCosts costs;  // all 1, as in the paper's study

  for (int round = 0; round < 10; ++round) {
    // Wildcard-free regexes keep the reference enumeration faithful.
    RegexPtr regex;
    do {
      regex = testing::RandomRegex(&rng, labels, 2);
    } while (ToString(*regex).find('_') != std::string::npos);

    Nfa a = BuildApproxAutomaton(
        RemoveEpsilons(BuildThompsonNfa(*regex, dict)), ApproxOptions{});

    for (int trial = 0; trial < 10; ++trial) {
      std::vector<LabelStep> word;
      const size_t len = rng.NextBounded(4);
      for (size_t i = 0; i < len; ++i) {
        word.push_back({labels[rng.NextBounded(labels.size())],
                        rng.NextBool(0.3) ? Direction::kIncoming
                                          : Direction::kOutgoing});
      }
      // Language words longer than |word| + 3 cannot beat a distance-3 fix;
      // enumerate accordingly and cap the comparison at 3 edits.
      const int reference =
          MinEditDistanceToLanguage(*regex, labels, word, costs, len + 3);
      const Cost automaton = AcceptanceCost(a, dict, word);
      ASSERT_GE(reference, 0) << ToString(*regex);
      if (reference <= 3 || automaton <= 3) {
        EXPECT_EQ(automaton, reference)
            << ToString(*regex) << " word len " << len;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxDistancePropertyTest,
                         ::testing::Values(3, 7, 13, 19, 29, 37));

}  // namespace
}  // namespace omega
