// AdminServer unit tests driven through real loopback sockets: routing and
// query-string handling, 404/405/400/431 error paths, request accounting,
// double-Start rejection, and graceful shutdown with a request in flight.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "net/admin_server.h"
#include "net/http.h"
#include "obs/metrics.h"

namespace omega {
namespace {

/// Sends `raw` to 127.0.0.1:`port` and returns everything the server wrote
/// before closing the connection (the server speaks Connection: close).
std::string RawRoundTrip(uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string reply;
  char buffer[1024];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    reply.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

std::string Get(uint16_t port, const std::string& target) {
  return RawRoundTrip(port, "GET " + target + " HTTP/1.1\r\n"
                            "Host: localhost\r\n\r\n");
}

TEST(AdminServerTest, RoutesDispatchAndQueryStringsAreStripped) {
  MetricsRegistry registry;
  AdminServerOptions options;
  options.metrics = &registry;
  AdminServer server(options);
  server.Route("/hello", "greeting", [](const HttpRequest& request) {
    HttpResponse response = TextResponse(200, "hello");
    if (!request.query.empty()) {
      response.body += " query=" + request.query + "\n";
    }
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  const std::string plain = Get(server.port(), "/hello");
  EXPECT_NE(plain.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(plain.find("hello"), std::string::npos);
  EXPECT_NE(plain.find("Connection: close"), std::string::npos);
  EXPECT_NE(plain.find("Content-Length:"), std::string::npos);

  // `?` is not part of the route path; the handler still sees the query.
  const std::string with_query = Get(server.port(), "/hello?verbose=1");
  EXPECT_NE(with_query.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(with_query.find("query=verbose=1"), std::string::npos);

  EXPECT_EQ(server.requests_served(), 2u);
  EXPECT_EQ(registry.GetCounter("omega_admin_requests_total")->Value(), 2u);
  server.Shutdown();
  EXPECT_FALSE(server.running());
}

TEST(AdminServerTest, UnknownPathIs404AndCounted) {
  MetricsRegistry registry;
  AdminServerOptions options;
  options.metrics = &registry;
  AdminServer server(options);
  server.Route("/known", "", [](const HttpRequest&) {
    return TextResponse(200, "ok");
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string reply = Get(server.port(), "/missing");
  EXPECT_NE(reply.find("HTTP/1.1 404 Not Found"), std::string::npos);
  EXPECT_EQ(registry.GetCounter("omega_admin_http_errors_total")->Value(),
            1u);
}

TEST(AdminServerTest, NonGetIs405WithAllowHeader) {
  AdminServer server;
  server.Route("/x", "", [](const HttpRequest&) {
    return TextResponse(200, "ok");
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string reply = RawRoundTrip(
      server.port(), "POST /x HTTP/1.1\r\nHost: h\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 405 Method Not Allowed"),
            std::string::npos);
  EXPECT_NE(reply.find("Allow: GET"), std::string::npos);
}

TEST(AdminServerTest, MalformedRequestLineIs400) {
  AdminServer server;
  ASSERT_TRUE(server.Start().ok());
  const std::string reply =
      RawRoundTrip(server.port(), "NONSENSE\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 400 Bad Request"), std::string::npos);
}

TEST(AdminServerTest, OversizedRequestLineIs431) {
  AdminServerOptions options;
  options.max_request_bytes = 128;
  AdminServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const std::string reply = RawRoundTrip(
      server.port(),
      "GET /" + std::string(4096, 'a') + " HTTP/1.1\r\nHost: h\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 431 "), std::string::npos);
}

TEST(AdminServerTest, SecondStartFailsFirstKeepsServing) {
  AdminServer server;
  server.Route("/x", "", [](const HttpRequest&) {
    return TextResponse(200, "still here");
  });
  ASSERT_TRUE(server.Start().ok());
  const Status again = server.Start();
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(Get(server.port(), "/x").find("still here"),
            std::string::npos);
}

TEST(AdminServerTest, ShutdownDrainsInFlightRequest) {
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  AdminServer server;
  server.Route("/slow", "", [&](const HttpRequest&) {
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return TextResponse(200, "drained");
  });
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  std::string reply;
  std::thread client([&] { reply = Get(port, "/slow"); });
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Shutdown begins while the handler is mid-request: draining() must flip
  // immediately, and the in-flight response must still complete.
  std::thread stopper([&] { server.Shutdown(); });
  while (!server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.store(true, std::memory_order_release);
  stopper.join();
  client.join();

  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(reply.find("drained"), std::string::npos);
  EXPECT_FALSE(server.running());

  // Idempotent: a second Shutdown is a no-op.
  server.Shutdown();
}

TEST(AdminServerTest, RoutesAreListedInRegistrationOrder) {
  AdminServer server;
  server.Route("/a", "first", [](const HttpRequest&) {
    return TextResponse(200, "");
  });
  server.Route("/b", "second", [](const HttpRequest&) {
    return TextResponse(200, "");
  });
  const std::vector<AdminServer::RouteInfo> routes = server.routes();
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes[0].path, "/a");
  EXPECT_EQ(routes[0].description, "first");
  EXPECT_EQ(routes[1].path, "/b");
}

TEST(HttpParseTest, RequestLineParsing) {
  const Result<HttpRequest> ok =
      ParseRequestLine("GET /metrics?x=1 HTTP/1.1");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().method, "GET");
  EXPECT_EQ(ok.value().path, "/metrics");
  EXPECT_EQ(ok.value().query, "x=1");
  EXPECT_FALSE(ParseRequestLine("GET /x").ok());
  EXPECT_FALSE(ParseRequestLine("GET  /x HTTP/1.1").ok());
  EXPECT_FALSE(ParseRequestLine("GET /x SPDY/3").ok());
  EXPECT_FALSE(ParseRequestLine("GET x HTTP/1.1").ok());
}

}  // namespace
}  // namespace omega
