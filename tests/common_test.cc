#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>

#include "common/cancel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/timer.h"

namespace omega {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad regex");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad regex");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad regex");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kResourceExhausted, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kDeadlineExceeded,
        StatusCode::kCancelled}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, DeadlineAndCancelledCodes) {
  Status deadline = Status::DeadlineExceeded("query ran out of time");
  EXPECT_FALSE(deadline.ok());
  EXPECT_TRUE(deadline.IsDeadlineExceeded());
  EXPECT_FALSE(deadline.IsCancelled());
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: query ran out of time");

  Status cancelled = Status::Cancelled("caller gave up");
  EXPECT_TRUE(cancelled.IsCancelled());
  EXPECT_FALSE(cancelled.IsDeadlineExceeded());
  EXPECT_EQ(cancelled.ToString(), "Cancelled: caller gave up");
}

TEST(CancelTest, NullTokenNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_TRUE(token.Check("test").ok());
  uint32_t tick = 0;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(token.CheckStrided(&tick, "test").ok());
  }
  EXPECT_EQ(tick, 0u);  // null tokens never touch the counter
}

TEST(CancelTest, CancelFlipsEveryView) {
  CancelSource source;
  CancelToken token = source.token();
  EXPECT_TRUE(token.valid());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check("stage").ok());
  source.Cancel();
  EXPECT_TRUE(source.cancelled());
  EXPECT_TRUE(token.cancelled());
  Status status = token.Check("stage");
  EXPECT_TRUE(status.IsCancelled());
  EXPECT_NE(status.message().find("stage"), std::string::npos);
}

TEST(CancelTest, ExpiredDeadlineReportsDeadlineExceeded) {
  CancelSource source =
      CancelSource::WithTimeout(std::chrono::nanoseconds(0));
  CancelToken token = source.token();
  EXPECT_TRUE(token.has_deadline());
  Status status = token.Check("rank join");
  EXPECT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_NE(status.message().find("rank join"), std::string::npos);
  // Explicit cancellation wins over the expired deadline.
  source.Cancel();
  EXPECT_TRUE(token.Check("rank join").IsCancelled());
}

TEST(CancelTest, FutureDeadlineStaysOk) {
  CancelSource source =
      CancelSource::WithTimeout(std::chrono::hours(24));
  EXPECT_TRUE(source.token().Check("test").ok());
}

TEST(CancelTest, StridedCheckNoticesCancellationImmediately) {
  CancelSource source;
  CancelToken token = source.token();
  uint32_t tick = 0;
  EXPECT_TRUE(token.CheckStrided(&tick, "test").ok());
  source.Cancel();
  // The flag path fires on the very next call, not at the stride boundary.
  EXPECT_TRUE(token.CheckStrided(&tick, "test").IsCancelled());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b  "), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t\n "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a, b ,c", ',', true),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(StringsTest, SplitTopLevelRespectsParens) {
  EXPECT_EQ(SplitTopLevel("(a, b), APPROX (c, d.e, f)", ','),
            (std::vector<std::string>{"(a, b)", "APPROX (c, d.e, f)"}));
  EXPECT_EQ(SplitTopLevel("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringsTest, JoinAndStartsWith) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(StartsWith("APPROX (x)", "APPROX"));
  EXPECT_FALSE(StartsWith("AP", "APPROX"));
}

TEST(StringsTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1861959), "1,861,959");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.NextInRange(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(11);
  size_t low = 0;
  constexpr int kSamples = 2000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.NextZipf(1000, 1.3) < 10) ++low;
  }
  // Rank 0-9 of 1000 should absorb far more than 1% of zipf(1.3) draws.
  EXPECT_GT(low, kSamples / 10);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 1.0, 9.0};
  size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 5000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[0], 0u);
  EXPECT_GT(counts[2], counts[1] * 5);
}

TEST(TimerTest, Advances) {
  Timer t;
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x = x + static_cast<uint64_t>(i);
  EXPECT_GE(t.ElapsedUs(), 0.0);
  EXPECT_GE(t.ElapsedMs(), 0.0);
}

}  // namespace
}  // namespace omega
