#include "eval/rank_join.h"

#include <gtest/gtest.h>

#include <map>

#include "eval/query_engine.h"
#include "rpq/query_parser.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::MakeGraph;

TEST(BindingTest, BindAndLookup) {
  Binding b;
  EXPECT_TRUE(b.Bind("X", 3));
  EXPECT_TRUE(b.Bind("Y", 7));
  EXPECT_EQ(b.Lookup("X"), 3u);
  EXPECT_EQ(b.Lookup("Y"), 7u);
  EXPECT_EQ(b.Lookup("Z"), kInvalidNode);
  EXPECT_TRUE(b.Bind("X", 3));   // consistent re-bind
  EXPECT_FALSE(b.Bind("X", 4));  // conflicting
}

/// Deterministic scripted stream for join unit tests.
class ScriptedStream : public BindingStream {
 public:
  ScriptedStream(std::vector<std::string> vars,
                 std::vector<Binding> bindings)
      : vars_(std::move(vars)), bindings_(std::move(bindings)) {}

  bool Next(Binding* out) override {
    if (pos_ >= bindings_.size()) return false;
    *out = bindings_[pos_++];
    return true;
  }
  const Status& status() const override { return status_; }
  const std::vector<std::string>& variables() const override { return vars_; }

 private:
  std::vector<std::string> vars_;
  std::vector<Binding> bindings_;
  size_t pos_ = 0;
  Status status_;
};

Binding Bnd(std::vector<std::pair<std::string, NodeId>> vars, Cost d) {
  Binding b;
  for (auto& [name, value] : vars) EXPECT_TRUE(b.Bind(name, value));
  b.distance = d;
  return b;
}

TEST(RankJoinTest, JoinsOnSharedVariable) {
  auto left = std::make_unique<ScriptedStream>(
      std::vector<std::string>{"X", "Y"},
      std::vector<Binding>{Bnd({{"X", 1}, {"Y", 2}}, 0),
                           Bnd({{"X", 1}, {"Y", 3}}, 1)});
  auto right = std::make_unique<ScriptedStream>(
      std::vector<std::string>{"Y", "Z"},
      std::vector<Binding>{Bnd({{"Y", 2}, {"Z", 9}}, 0),
                           Bnd({{"Y", 3}, {"Z", 8}}, 2)});
  RankJoinStream join(std::move(left), std::move(right));
  EXPECT_EQ(join.variables(), (std::vector<std::string>{"X", "Y", "Z"}));

  Binding out;
  ASSERT_TRUE(join.Next(&out));
  EXPECT_EQ(out.distance, 0);
  EXPECT_EQ(out.Lookup("Z"), 9u);
  ASSERT_TRUE(join.Next(&out));
  EXPECT_EQ(out.distance, 3);  // (X1,Y3)@1 + (Y3,Z8)@2
  EXPECT_FALSE(join.Next(&out));
}

TEST(RankJoinTest, EmitsInNonDecreasingTotalDistance) {
  std::vector<Binding> lefts, rights;
  for (Cost d = 0; d < 5; ++d) {
    lefts.push_back(Bnd({{"X", static_cast<NodeId>(d)}, {"Y", 1}}, d));
    rights.push_back(Bnd({{"Y", 1}, {"Z", static_cast<NodeId>(d)}}, d));
  }
  RankJoinStream join(
      std::make_unique<ScriptedStream>(std::vector<std::string>{"X", "Y"},
                                       lefts),
      std::make_unique<ScriptedStream>(std::vector<std::string>{"Y", "Z"},
                                       rights));
  Binding out;
  Cost last = 0;
  size_t count = 0;
  while (join.Next(&out)) {
    EXPECT_GE(out.distance, last);
    last = out.distance;
    ++count;
  }
  EXPECT_EQ(count, 25u);  // full cross on the shared Y=1
}

TEST(RankJoinTest, NoSharedVariablesIsCrossProduct) {
  RankJoinStream join(
      std::make_unique<ScriptedStream>(
          std::vector<std::string>{"X"},
          std::vector<Binding>{Bnd({{"X", 1}}, 0), Bnd({{"X", 2}}, 1)}),
      std::make_unique<ScriptedStream>(
          std::vector<std::string>{"Y"},
          std::vector<Binding>{Bnd({{"Y", 5}}, 0), Bnd({{"Y", 6}}, 3)}));
  Binding out;
  size_t count = 0;
  Cost last = 0;
  while (join.Next(&out)) {
    EXPECT_GE(out.distance, last);
    last = out.distance;
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(RankJoinTest, EmptySideYieldsNothing) {
  RankJoinStream join(
      std::make_unique<ScriptedStream>(std::vector<std::string>{"X"},
                                       std::vector<Binding>{}),
      std::make_unique<ScriptedStream>(
          std::vector<std::string>{"X"},
          std::vector<Binding>{Bnd({{"X", 1}}, 0)}));
  Binding out;
  EXPECT_FALSE(join.Next(&out));
}

TEST(RankJoinTest, MultiSharedVariableKey) {
  auto left = std::make_unique<ScriptedStream>(
      std::vector<std::string>{"X", "Y"},
      std::vector<Binding>{Bnd({{"X", 1}, {"Y", 2}}, 0)});
  auto right = std::make_unique<ScriptedStream>(
      std::vector<std::string>{"X", "Y", "Z"},
      std::vector<Binding>{Bnd({{"X", 1}, {"Y", 2}, {"Z", 3}}, 1),
                           Bnd({{"X", 1}, {"Y", 9}, {"Z", 4}}, 0)});
  RankJoinStream join(std::move(left), std::move(right));
  Binding out;
  ASSERT_TRUE(join.Next(&out));
  EXPECT_EQ(out.Lookup("Z"), 3u);  // only the (1,2) row joins
  EXPECT_FALSE(join.Next(&out));
}

// --- End-to-end multi-conjunct queries through the engine -------------------

TEST(RankJoinEngineTest, TwoConjunctPathJoin) {
  GraphStore g = MakeGraph({{"a", "e", "b"},
                            {"b", "f", "c"},
                            {"a", "e", "x"},
                            {"x", "f", "d"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> query = ParseQuery("(?X, ?Z) <- (?X, e, ?Y), (?Y, f, ?Z)");
  ASSERT_TRUE(query.ok());
  Result<std::vector<QueryAnswer>> answers = engine.ExecuteTopK(*query, 0);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 2u);
  std::set<std::pair<std::string, std::string>> pairs;
  for (const QueryAnswer& a : *answers) {
    pairs.emplace(std::string(g.NodeLabel(a.bindings[0])),
                  std::string(g.NodeLabel(a.bindings[1])));
  }
  EXPECT_TRUE(pairs.count({"a", "c"}));
  EXPECT_TRUE(pairs.count({"a", "d"}));
}

TEST(RankJoinEngineTest, JoinAgreesWithSingleConjunctComposition) {
  GraphStore g = testing::RandomGraph(77, 25, {"e", "f"}, 2.0);
  QueryEngine engine(&g, nullptr);

  // Reference: compose (?X,e,?Y) and (?Y,f,?Z) by brute force.
  Result<Query> left = ParseQuery("(?X, ?Y) <- (?X, e, ?Y)");
  Result<Query> right = ParseQuery("(?Y, ?Z) <- (?Y, f, ?Z)");
  ASSERT_TRUE(left.ok() && right.ok());
  auto left_rows = engine.ExecuteTopK(*left, 0);
  auto right_rows = engine.ExecuteTopK(*right, 0);
  ASSERT_TRUE(left_rows.ok() && right_rows.ok());
  std::set<std::vector<NodeId>> expected;
  for (const QueryAnswer& l : *left_rows) {
    for (const QueryAnswer& r : *right_rows) {
      if (l.bindings[1] == r.bindings[0]) {
        expected.insert({l.bindings[0], r.bindings[1]});
      }
    }
  }

  Result<Query> join = ParseQuery("(?X, ?Z) <- (?X, e, ?Y), (?Y, f, ?Z)");
  ASSERT_TRUE(join.ok());
  auto got_rows = engine.ExecuteTopK(*join, 0);
  ASSERT_TRUE(got_rows.ok());
  std::set<std::vector<NodeId>> got;
  for (const QueryAnswer& a : *got_rows) got.insert(a.bindings);
  EXPECT_EQ(got, expected);
}

TEST(RankJoinEngineTest, ThreeConjunctChain) {
  GraphStore g = MakeGraph({{"a", "e", "b"},
                            {"b", "f", "c"},
                            {"c", "g", "d"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> query = ParseQuery(
      "(?A, ?D) <- (?A, e, ?B), (?B, f, ?C), (?C, g, ?D)");
  ASSERT_TRUE(query.ok());
  auto answers = engine.ExecuteTopK(*query, 0);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ(g.NodeLabel((*answers)[0].bindings[0]), "a");
  EXPECT_EQ(g.NodeLabel((*answers)[0].bindings[1]), "d");
}

TEST(RankJoinEngineTest, ApproxConjunctDistancesAddUp) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"b", "x", "c"}});
  QueryEngine engine(&g, nullptr);
  // Second conjunct needs one substitution (f -> x): total distance 1.
  Result<Query> query = ParseQuery(
      "(?X, ?Z) <- (?X, e, ?Y), APPROX (?Y, f, ?Z)");
  ASSERT_TRUE(query.ok());
  // Distance-1 candidates: Z=c (substitute f by x) and Z=b (delete f).
  auto answers = engine.ExecuteTopK(*query, 2);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 2u);
  bool found_c = false;
  for (const QueryAnswer& a : *answers) {
    EXPECT_EQ(a.distance, 1);
    EXPECT_EQ(g.NodeLabel(a.bindings[0]), "a");
    if (g.NodeLabel(a.bindings[1]) == "c") found_c = true;
  }
  EXPECT_TRUE(found_c);
}

}  // namespace
}  // namespace omega
