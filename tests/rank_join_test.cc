#include "eval/rank_join.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "eval/query_engine.h"
#include "rpq/query_parser.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::MakeGraph;

// Slot aliases used throughout: X=0, Y=1, Z=2.
constexpr VarId kX = 0;
constexpr VarId kY = 1;
constexpr VarId kZ = 2;

TEST(VarCatalogTest, InternsDenseSlotsInFirstUseOrder) {
  VarCatalog catalog;
  EXPECT_EQ(catalog.GetOrAdd("X"), 0u);
  EXPECT_EQ(catalog.GetOrAdd("Y"), 1u);
  EXPECT_EQ(catalog.GetOrAdd("X"), 0u);  // already interned
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.Find("Y"), 1u);
  EXPECT_EQ(catalog.Find("Z"), kInvalidVar);
  EXPECT_EQ(catalog.NameOf(0), "X");
}

TEST(BindingTest, BindAndGet) {
  Binding b(3);
  EXPECT_TRUE(b.Bind(kX, 3));
  EXPECT_TRUE(b.Bind(kY, 7));
  EXPECT_EQ(b.Get(kX), 3u);
  EXPECT_EQ(b.Get(kY), 7u);
  EXPECT_EQ(b.Get(kZ), kInvalidNode);  // unbound slot
  EXPECT_TRUE(b.Bind(kX, 3));          // consistent re-bind
  EXPECT_FALSE(b.Bind(kX, 4));         // conflicting
}

using ScriptedStream = testing::ScriptedBindingStream;

Binding Bnd(size_t width, std::vector<std::pair<VarId, NodeId>> vars, Cost d) {
  Binding b(width);
  for (auto& [slot, value] : vars) EXPECT_TRUE(b.Bind(slot, value));
  b.distance = d;
  return b;
}

TEST(RankJoinTest, JoinsOnSharedVariable) {
  auto left = std::make_unique<ScriptedStream>(
      std::vector<VarId>{kX, kY},
      std::vector<Binding>{Bnd(3, {{kX, 1}, {kY, 2}}, 0),
                           Bnd(3, {{kX, 1}, {kY, 3}}, 1)});
  auto right = std::make_unique<ScriptedStream>(
      std::vector<VarId>{kY, kZ},
      std::vector<Binding>{Bnd(3, {{kY, 2}, {kZ, 9}}, 0),
                           Bnd(3, {{kY, 3}, {kZ, 8}}, 2)});
  RankJoinStream join(std::move(left), std::move(right));
  EXPECT_EQ(join.variables(), (std::vector<VarId>{kX, kY, kZ}));

  Binding out;
  ASSERT_TRUE(join.Next(&out));
  EXPECT_EQ(out.distance, 0);
  EXPECT_EQ(out.Get(kZ), 9u);
  ASSERT_TRUE(join.Next(&out));
  EXPECT_EQ(out.distance, 3);  // (X1,Y3)@1 + (Y3,Z8)@2
  EXPECT_FALSE(join.Next(&out));
  EXPECT_TRUE(join.status().ok());
}

TEST(RankJoinTest, EmitsInNonDecreasingTotalDistance) {
  std::vector<Binding> lefts, rights;
  for (Cost d = 0; d < 5; ++d) {
    lefts.push_back(Bnd(3, {{kX, static_cast<NodeId>(d)}, {kY, 1}}, d));
    rights.push_back(Bnd(3, {{kY, 1}, {kZ, static_cast<NodeId>(d)}}, d));
  }
  RankJoinStream join(
      std::make_unique<ScriptedStream>(std::vector<VarId>{kX, kY}, lefts),
      std::make_unique<ScriptedStream>(std::vector<VarId>{kY, kZ}, rights));
  Binding out;
  Cost last = 0;
  size_t count = 0;
  while (join.Next(&out)) {
    EXPECT_GE(out.distance, last);
    last = out.distance;
    ++count;
  }
  EXPECT_EQ(count, 25u);  // full cross on the shared Y=1
}

TEST(RankJoinTest, NoSharedVariablesIsCrossProduct) {
  RankJoinStream join(
      std::make_unique<ScriptedStream>(
          std::vector<VarId>{kX},
          std::vector<Binding>{Bnd(2, {{kX, 1}}, 0), Bnd(2, {{kX, 2}}, 1)}),
      std::make_unique<ScriptedStream>(
          std::vector<VarId>{kY},
          std::vector<Binding>{Bnd(2, {{kY, 5}}, 0), Bnd(2, {{kY, 6}}, 3)}));
  Binding out;
  size_t count = 0;
  Cost last = 0;
  while (join.Next(&out)) {
    EXPECT_GE(out.distance, last);
    last = out.distance;
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(RankJoinTest, EmptySideYieldsNothing) {
  RankJoinStream join(
      std::make_unique<ScriptedStream>(std::vector<VarId>{kX},
                                       std::vector<Binding>{}),
      std::make_unique<ScriptedStream>(
          std::vector<VarId>{kX},
          std::vector<Binding>{Bnd(1, {{kX, 1}}, 0)}));
  Binding out;
  EXPECT_FALSE(join.Next(&out));
}

/// Counts how often the join pulls from the wrapped stream (reported as
/// tuples_popped so the engine-level merged stats see it too).
class PullCountingStream : public BindingStream {
 public:
  explicit PullCountingStream(std::unique_ptr<BindingStream> inner)
      : inner_(std::move(inner)) {}

  bool Next(Binding* out) override {
    ++pulls_;
    return inner_->Next(out);
  }
  const Status& status() const override { return inner_->status(); }
  const std::vector<VarId>& variables() const override {
    return inner_->variables();
  }
  EvaluatorStats stats() const override {
    EvaluatorStats stats = inner_->stats();
    stats.tuples_popped = pulls_;
    return stats;
  }
  size_t pulls() const { return pulls_; }

 private:
  std::unique_ptr<BindingStream> inner_;
  size_t pulls_ = 0;
};

// Regression for the zero-answer short-circuit: a side that finishes with
// zero rows must stop the join without the sibling being drained (the old
// behaviour kept pulling the live side to exhaustion to raise the
// threshold).
TEST(RankJoinTest, ZeroRowSideDoesNotDrainSibling) {
  for (const bool empty_left : {true, false}) {
    std::vector<Binding> big_rows;
    for (NodeId i = 0; i < 10000; ++i) {
      big_rows.push_back(
          Bnd(2, {{kX, i}, {kY, i}}, static_cast<Cost>(i / 100)));
    }
    auto empty = std::make_unique<ScriptedStream>(std::vector<VarId>{kY},
                                                  std::vector<Binding>{});
    auto big = std::make_unique<PullCountingStream>(
        std::make_unique<ScriptedStream>(std::vector<VarId>{kX, kY},
                                         std::move(big_rows)));
    PullCountingStream* big_observer = big.get();
    RankJoinStream join(
        empty_left ? std::unique_ptr<BindingStream>(std::move(empty))
                   : std::unique_ptr<BindingStream>(std::move(big)),
        empty_left ? std::unique_ptr<BindingStream>(std::move(big))
                   : std::unique_ptr<BindingStream>(std::move(empty)));
    Binding out;
    EXPECT_FALSE(join.Next(&out));
    EXPECT_TRUE(join.status().ok());
    EXPECT_LE(big_observer->pulls(), 2u)
        << (empty_left ? "empty left" : "empty right")
        << ": sibling of an empty side must stay bounded";
    EXPECT_LE(join.stats().tuples_popped, 2u);
  }
}

TEST(RankJoinTest, MultiSharedVariableKey) {
  auto left = std::make_unique<ScriptedStream>(
      std::vector<VarId>{kX, kY},
      std::vector<Binding>{Bnd(3, {{kX, 1}, {kY, 2}}, 0)});
  auto right = std::make_unique<ScriptedStream>(
      std::vector<VarId>{kX, kY, kZ},
      std::vector<Binding>{Bnd(3, {{kX, 1}, {kY, 2}, {kZ, 3}}, 1),
                           Bnd(3, {{kX, 1}, {kY, 9}, {kZ, 4}}, 0)});
  RankJoinStream join(std::move(left), std::move(right));
  Binding out;
  ASSERT_TRUE(join.Next(&out));
  EXPECT_EQ(out.Get(kZ), 3u);  // only the (1,2) row joins
  EXPECT_FALSE(join.Next(&out));
}

// --- Memory budget (regression: the seed join ignored max_live_tuples) -----

/// Rows with increasing distances: the HRJN threshold then rises slowly, so
/// formed candidates legitimately accumulate in the heap (the seed join let
/// them accumulate without bound).
std::vector<Binding> CrossRows(VarId slot, size_t n) {
  std::vector<Binding> rows;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(
        Bnd(2, {{slot, static_cast<NodeId>(i)}}, static_cast<Cost>(i)));
  }
  return rows;
}

TEST(RankJoinTest, BudgetExceededFailsWithResourceExhausted) {
  // 40x40 cross product: side tables hold 80 rows, the heap grows toward
  // 1600 candidates. A budget of 100 must fail instead of materialising it.
  RankJoinStream join(
      std::make_unique<ScriptedStream>(std::vector<VarId>{kX},
                                       CrossRows(kX, 40)),
      std::make_unique<ScriptedStream>(std::vector<VarId>{kY},
                                       CrossRows(kY, 40)),
      /*max_live_tuples=*/100);
  Binding out;
  while (join.Next(&out)) {
  }
  EXPECT_TRUE(join.status().IsResourceExhausted())
      << join.status().ToString();
}

TEST(RankJoinTest, BudgetGenerousEnoughSucceeds) {
  RankJoinStream join(
      std::make_unique<ScriptedStream>(std::vector<VarId>{kX},
                                       CrossRows(kX, 10)),
      std::make_unique<ScriptedStream>(std::vector<VarId>{kY},
                                       CrossRows(kY, 10)),
      /*max_live_tuples=*/1000);
  Binding out;
  size_t count = 0;
  while (join.Next(&out)) ++count;
  EXPECT_TRUE(join.status().ok()) << join.status().ToString();
  EXPECT_EQ(count, 100u);
}

TEST(RankJoinTest, ZeroBudgetMeansUnlimited) {
  RankJoinStream join(
      std::make_unique<ScriptedStream>(std::vector<VarId>{kX},
                                       CrossRows(kX, 40)),
      std::make_unique<ScriptedStream>(std::vector<VarId>{kY},
                                       CrossRows(kY, 40)));
  Binding out;
  size_t count = 0;
  while (join.Next(&out)) ++count;
  EXPECT_TRUE(join.status().ok());
  EXPECT_EQ(count, 1600u);
}

// --- End-to-end multi-conjunct queries through the engine -------------------

TEST(RankJoinEngineTest, TwoConjunctPathJoin) {
  GraphStore g = MakeGraph({{"a", "e", "b"},
                            {"b", "f", "c"},
                            {"a", "e", "x"},
                            {"x", "f", "d"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> query = ParseQuery("(?X, ?Z) <- (?X, e, ?Y), (?Y, f, ?Z)");
  ASSERT_TRUE(query.ok());
  Result<std::vector<QueryAnswer>> answers = engine.ExecuteTopK(*query, 0);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 2u);
  std::set<std::pair<std::string, std::string>> pairs;
  for (const QueryAnswer& a : *answers) {
    pairs.emplace(std::string(g.NodeLabel(a.bindings[0])),
                  std::string(g.NodeLabel(a.bindings[1])));
  }
  EXPECT_TRUE(pairs.count({"a", "c"}));
  EXPECT_TRUE(pairs.count({"a", "d"}));
}

TEST(RankJoinEngineTest, JoinAgreesWithSingleConjunctComposition) {
  GraphStore g = testing::RandomGraph(77, 25, {"e", "f"}, 2.0);
  QueryEngine engine(&g, nullptr);

  // Reference: compose (?X,e,?Y) and (?Y,f,?Z) by brute force.
  Result<Query> left = ParseQuery("(?X, ?Y) <- (?X, e, ?Y)");
  Result<Query> right = ParseQuery("(?Y, ?Z) <- (?Y, f, ?Z)");
  ASSERT_TRUE(left.ok() && right.ok());
  auto left_rows = engine.ExecuteTopK(*left, 0);
  auto right_rows = engine.ExecuteTopK(*right, 0);
  ASSERT_TRUE(left_rows.ok() && right_rows.ok());
  std::set<std::vector<NodeId>> expected;
  for (const QueryAnswer& l : *left_rows) {
    for (const QueryAnswer& r : *right_rows) {
      if (l.bindings[1] == r.bindings[0]) {
        expected.insert({l.bindings[0], r.bindings[1]});
      }
    }
  }

  Result<Query> join = ParseQuery("(?X, ?Z) <- (?X, e, ?Y), (?Y, f, ?Z)");
  ASSERT_TRUE(join.ok());
  auto got_rows = engine.ExecuteTopK(*join, 0);
  ASSERT_TRUE(got_rows.ok());
  std::set<std::vector<NodeId>> got;
  for (const QueryAnswer& a : *got_rows) got.insert(a.bindings);
  EXPECT_EQ(got, expected);
}

TEST(RankJoinEngineTest, ThreeConjunctChain) {
  GraphStore g = MakeGraph({{"a", "e", "b"},
                            {"b", "f", "c"},
                            {"c", "g", "d"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> query = ParseQuery(
      "(?A, ?D) <- (?A, e, ?B), (?B, f, ?C), (?C, g, ?D)");
  ASSERT_TRUE(query.ok());
  auto answers = engine.ExecuteTopK(*query, 0);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ(g.NodeLabel((*answers)[0].bindings[0]), "a");
  EXPECT_EQ(g.NodeLabel((*answers)[0].bindings[1]), "d");
}

TEST(RankJoinEngineTest, ApproxConjunctDistancesAddUp) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"b", "x", "c"}});
  QueryEngine engine(&g, nullptr);
  // Second conjunct needs one substitution (f -> x): total distance 1.
  Result<Query> query = ParseQuery(
      "(?X, ?Z) <- (?X, e, ?Y), APPROX (?Y, f, ?Z)");
  ASSERT_TRUE(query.ok());
  // Distance-1 candidates: Z=c (substitute f by x) and Z=b (delete f).
  auto answers = engine.ExecuteTopK(*query, 2);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 2u);
  bool found_c = false;
  for (const QueryAnswer& a : *answers) {
    EXPECT_EQ(a.distance, 1);
    EXPECT_EQ(g.NodeLabel(a.bindings[0]), "a");
    if (g.NodeLabel(a.bindings[1]) == "c") found_c = true;
  }
  EXPECT_TRUE(found_c);
}

TEST(RankJoinEngineTest, JoinBudgetSurfacesThroughResultStream) {
  // Chain graph; APPROX answers come at a spread of edit distances, so the
  // no-shared-variable join of the two conjuncts legitimately accumulates
  // candidates in the HRJN heap while the threshold creeps up. The budget is
  // chosen so each conjunct alone fits comfortably (asserted below — this is
  // what proves the failure comes from the join layer, where the seed join
  // ignored max_live_tuples and grew without bound).
  std::vector<std::tuple<std::string, std::string, std::string>> triples;
  for (int i = 0; i < 12; ++i) {
    triples.emplace_back("n" + std::to_string(i), "e",
                         "n" + std::to_string(i + 1));
  }
  GraphStore g = MakeGraph(triples);
  QueryEngine engine(&g, nullptr);

  QueryEngineOptions options;
  options.evaluator.max_live_tuples = 600;
  options.evaluator.max_distance = 3;  // keep APPROX blow-up finite

  // Control: each conjunct alone stays within the budget.
  for (const char* text :
       {"(?A, ?B) <- APPROX (?A, f, ?B)", "(?C, ?D) <- APPROX (?C, f, ?D)"}) {
    Result<Query> single = ParseQuery(text);
    ASSERT_TRUE(single.ok());
    auto alone = engine.ExecuteTopK(*single, 0, options);
    ASSERT_TRUE(alone.ok()) << alone.status().ToString();
  }

  Result<Query> query = ParseQuery(
      "(?A, ?C) <- APPROX (?A, f, ?B), APPROX (?C, f, ?D)");
  ASSERT_TRUE(query.ok());
  Result<std::unique_ptr<QueryResultStream>> stream =
      engine.Execute(*query, options);
  ASSERT_TRUE(stream.ok());
  QueryAnswer answer;
  while ((*stream)->Next(&answer)) {
  }
  EXPECT_TRUE((*stream)->status().IsResourceExhausted())
      << (*stream)->status().ToString();
  // The failure must come from the join layer, not a conjunct evaluator.
  EXPECT_NE((*stream)->status().message().find("rank join"),
            std::string::npos)
      << (*stream)->status().ToString();

  // The same query completes when the budget is lifted.
  QueryEngineOptions unlimited_options = options;
  unlimited_options.evaluator.max_live_tuples = 0;
  auto unlimited = engine.ExecuteTopK(*query, 0, unlimited_options);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();
  EXPECT_GT(unlimited->size(), 0u);
}

}  // namespace
}  // namespace omega
