// Plan-equivalence property tests: every plan shape — the seed's textual
// left-deep order, the greedy bushy plan, and random left-deep permutations
// (through QueryEngineOptions::forced_join_order) — must yield the same
// ranked answer multiset with non-decreasing distances, on random graphs and
// random chain/star-ish queries including cross-product and self-join
// conjuncts.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "eval/query_engine.h"
#include "rpq/query_parser.h"
#include "test_util.h"

namespace omega {
namespace {

using Row = std::pair<std::vector<NodeId>, Cost>;

/// Drains a query under `options`, asserting the stream succeeds and emits
/// in non-decreasing distance; rows come back sorted for multiset
/// comparison.
std::vector<Row> RunSorted(const QueryEngine& engine, const Query& query,
                           const QueryEngineOptions& options,
                           const std::string& what) {
  auto stream = engine.Execute(query, options);
  EXPECT_TRUE(stream.ok()) << what << ": " << stream.status().ToString();
  std::vector<Row> rows;
  if (!stream.ok()) return rows;
  QueryAnswer answer;
  Cost last = 0;
  while ((*stream)->Next(&answer)) {
    EXPECT_GE(answer.distance, last)
        << what << ": emission order must be non-decreasing";
    last = answer.distance;
    rows.emplace_back(answer.bindings, answer.distance);
  }
  EXPECT_TRUE((*stream)->status().ok())
      << what << ": " << (*stream)->status().ToString();
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Checks textual vs greedy vs `permutations` random forced orders.
void CheckAllShapesAgree(const QueryEngine& engine, const Query& query,
                         QueryEngineOptions base, Rng& rng,
                         int permutations, const std::string& what) {
  QueryEngineOptions textual = base;
  textual.plan_mode = PlanMode::kTextual;
  const std::vector<Row> expected =
      RunSorted(engine, query, textual, what + " [textual]");

  QueryEngineOptions greedy = base;
  greedy.plan_mode = PlanMode::kGreedyBushy;
  EXPECT_EQ(RunSorted(engine, query, greedy, what + " [greedy]"), expected)
      << what << ": greedy bushy plan diverged from textual order";

  std::vector<size_t> order(query.conjuncts.size());
  std::iota(order.begin(), order.end(), size_t{0});
  for (int p = 0; p < permutations; ++p) {
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    QueryEngineOptions forced = base;
    forced.forced_join_order = order;
    EXPECT_EQ(RunSorted(engine, query, forced, what + " [permutation]"),
              expected)
        << what << ": permuted left-deep plan diverged";
  }
}

/// Random conjunct over a small variable pool: chain-biased endpoints with
/// occasional self-joins and constants (sometimes absent from the graph).
Conjunct RandomConjunct(Rng& rng, size_t position, size_t num_nodes,
                        const std::vector<std::string>& labels, bool approx) {
  static const char* kVars[] = {"A", "B", "C", "D"};
  Conjunct c;
  c.mode = approx ? ConjunctMode::kApprox : ConjunctMode::kExact;
  c.source = Endpoint::Variable(kVars[position % 4]);
  const uint64_t pick = rng.NextBounded(10);
  if (pick < 6) {
    c.target = Endpoint::Variable(kVars[(position + 1) % 4]);
  } else if (pick < 7) {
    c.target = c.source;  // self-join (?X, R, ?X)
  } else if (pick < 8) {
    // Unrelated variable: can disconnect the query into a cross product.
    c.target = Endpoint::Variable(kVars[rng.NextBounded(4)]);
  } else {
    // Constant, occasionally absent ("n<num_nodes>" does not exist).
    c.target = Endpoint::Constant(
        "n" + std::to_string(rng.NextBounded(num_nodes + 1)));
  }
  c.regex = testing::RandomRegex(&rng, labels, 1);
  return c;
}

TEST(PlanPropertyTest, AllPlanShapesAgreeOnRandomGraphs) {
  const std::vector<std::string> labels = {"e", "f", "g"};
  Rng rng(20260731);
  for (int round = 0; round < 40; ++round) {
    const size_t num_nodes = 8 + rng.NextBounded(8);
    GraphStore g =
        testing::RandomGraph(rng.NextBounded(1u << 30), num_nodes, labels,
                             1.2);
    QueryEngine engine(&g, nullptr);

    const bool approx = round % 5 == 4;
    Query query;
    const size_t num_conjuncts = 2 + rng.NextBounded(2);
    for (size_t i = 0; i < num_conjuncts; ++i) {
      query.conjuncts.push_back(
          RandomConjunct(rng, i, num_nodes, labels, approx));
    }
    query.head = query.BodyVariables();
    if (query.head.empty()) continue;  // all-constant body: nothing to test
    ASSERT_TRUE(ValidateQuery(query).ok()) << query.ToString();

    QueryEngineOptions base;
    if (approx) base.evaluator.max_distance = 1;
    CheckAllShapesAgree(engine, query, base, rng, /*permutations=*/2,
                        "round " + std::to_string(round) + " " +
                            query.ToString());
  }
}

TEST(PlanPropertyTest, CrossProductQueryAgreesAcrossShapes) {
  // Two disconnected components joined only by the ranked cross product.
  GraphStore g = testing::MakeGraph({{"a", "e", "b"},
                                     {"b", "e", "c"},
                                     {"x", "f", "y"},
                                     {"y", "f", "z"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> q =
      ParseQuery("(?A, ?B, ?C) <- (?A, e+, ?B), (?C, f, ?D), (a, e, b)");
  ASSERT_TRUE(q.ok());
  Rng rng(7);
  CheckAllShapesAgree(engine, *q, {}, rng, /*permutations=*/3,
                      "cross product");
}

TEST(PlanPropertyTest, SelfJoinQueryAgreesAcrossShapes) {
  GraphStore g = testing::MakeGraph({{"a", "e", "a"},
                                     {"a", "f", "b"},
                                     {"b", "e", "b"},
                                     {"b", "f", "a"},
                                     {"c", "e", "c"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> q =
      ParseQuery("(?X, ?Y) <- (?X, e, ?X), (?X, f, ?Y), (?Y, e, ?Y)");
  ASSERT_TRUE(q.ok());
  Rng rng(11);
  CheckAllShapesAgree(engine, *q, {}, rng, /*permutations=*/3, "self join");
}

}  // namespace
}  // namespace omega
