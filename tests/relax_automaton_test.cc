#include "automata/relax.h"

#include <gtest/gtest.h>

#include "automata/epsilon_removal.h"
#include "automata/thompson.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::Rx;

/// YAGO-style fixture: gradFrom/happenedIn under relationLocatedByObject.
struct RelaxFixture {
  GraphStore graph;
  Ontology ontology;
  std::unique_ptr<BoundOntology> bound;

  RelaxFixture() {
    OntologyBuilder ob;
    EXPECT_TRUE(ob.AddSubproperty("gradFrom", "relationLocatedByObject").ok());
    EXPECT_TRUE(
        ob.AddSubproperty("happenedIn", "relationLocatedByObject").ok());
    EXPECT_TRUE(ob.AddSubclass("wordnet_university", "yago_entity").ok());
    EXPECT_TRUE(ob.AddSubclass("wordnet_person", "yago_entity").ok());
    EXPECT_TRUE(ob.SetDomain("gradFrom", "wordnet_person").ok());
    EXPECT_TRUE(ob.SetRange("gradFrom", "wordnet_university").ok());
    Result<Ontology> o = std::move(ob).Finalize();
    EXPECT_TRUE(o.ok());
    ontology = std::move(o).value();

    GraphBuilder gb;
    const NodeId person = gb.GetOrAddNode("alice");
    const NodeId uni = gb.GetOrAddNode("mit");
    const NodeId event = gb.GetOrAddNode("war");
    const NodeId city = gb.GetOrAddNode("london");
    const NodeId person_class = gb.GetOrAddNode("wordnet_person");
    const NodeId uni_class = gb.GetOrAddNode("wordnet_university");
    EXPECT_TRUE(gb.AddEdge(person, *gb.InternLabel("gradFrom"), uni).ok());
    EXPECT_TRUE(gb.AddEdge(event, *gb.InternLabel("happenedIn"), city).ok());
    EXPECT_TRUE(gb.AddTypeEdge(person, person_class).ok());
    EXPECT_TRUE(gb.AddTypeEdge(uni, uni_class).ok());
    graph = std::move(gb).Finalize();
    bound = std::make_unique<BoundOntology>(&ontology, &graph);
  }
};

Nfa BuildRelax(const std::string& regex, const RelaxFixture& fx,
               const RelaxOptions& options = {}) {
  return BuildRelaxAutomaton(
      RemoveEpsilons(BuildThompsonNfa(*Rx(regex), fx.graph.labels())),
      *fx.bound, options);
}

size_t CountTransitionsWithLabel(const Nfa& nfa, LabelId label, Cost cost) {
  size_t count = 0;
  for (StateId s = 0; s < nfa.NumStates(); ++s) {
    for (const NfaTransition& t : nfa.Out(s)) {
      if (t.kind == TransitionKind::kLabel && t.label == label &&
          t.cost == cost) {
        ++count;
      }
    }
  }
  return count;
}

TEST(RelaxAutomatonTest, UnassertedSuperpropertyGetsSyntheticLabel) {
  RelaxFixture fx;
  Nfa relaxed = BuildRelax("gradFrom", fx);
  EXPECT_TRUE(relaxed.entailment_matching());
  // relationLocatedByObject never occurs as a graph edge label; the sp rule
  // must still add a transition for it, via a synthetic label id whose
  // down-set contains the *graph* labels gradFrom and happenedIn.
  ASSERT_EQ(relaxed.NumTransitions(), 2u);
  ASSERT_FALSE(fx.graph.labels().Find("relationLocatedByObject").has_value());
  const auto synthetic =
      fx.bound->FindSyntheticLabel("relationLocatedByObject");
  ASSERT_TRUE(synthetic.has_value());
  bool found = false;
  for (StateId s = 0; s < relaxed.NumStates(); ++s) {
    for (const NfaTransition& t : relaxed.Out(s)) {
      if (t.cost == 1) {
        EXPECT_EQ(t.label, *synthetic);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
  const auto& down = fx.bound->LabelDownSet(*synthetic);
  EXPECT_TRUE(std::find(down.begin(), down.end(),
                        *fx.graph.labels().Find("happenedIn")) != down.end());
  EXPECT_TRUE(std::find(down.begin(), down.end(),
                        *fx.graph.labels().Find("gradFrom")) != down.end());
  // Graph lookups on the synthetic label are safely empty.
  EXPECT_TRUE(fx.graph.Tails(*synthetic).empty());
}

TEST(RelaxAutomatonTest, SuperpropertyBoundThroughGraphLabels) {
  // Intern the parent label by asserting one direct edge with it.
  OntologyBuilder ob;
  ASSERT_TRUE(ob.AddSubproperty("gradFrom", "relationLocatedByObject").ok());
  ASSERT_TRUE(
      ob.AddSubproperty("happenedIn", "relationLocatedByObject").ok());
  Result<Ontology> o = std::move(ob).Finalize();
  ASSERT_TRUE(o.ok());
  GraphStore g = testing::MakeGraph(
      {{"alice", "gradFrom", "mit"},
       {"war", "happenedIn", "london"},
       {"x", "relationLocatedByObject", "y"}});
  BoundOntology bound(&*o, &g);

  Nfa relaxed = BuildRelaxAutomaton(
      RemoveEpsilons(BuildThompsonNfa(*Rx("gradFrom"), g.labels())), bound,
      RelaxOptions{});
  const LabelId parent = *g.labels().Find("relationLocatedByObject");
  EXPECT_EQ(CountTransitionsWithLabel(relaxed, parent, 1), 1u);
  // The exact transition is retained at cost 0.
  const LabelId grad = *g.labels().Find("gradFrom");
  EXPECT_EQ(CountTransitionsWithLabel(relaxed, grad, 0), 1u);
}

TEST(RelaxAutomatonTest, ChainedSuperpropertiesAccumulateBeta) {
  OntologyBuilder ob;
  ASSERT_TRUE(ob.AddSubproperty("p", "q").ok());
  ASSERT_TRUE(ob.AddSubproperty("q", "r").ok());
  Result<Ontology> o = std::move(ob).Finalize();
  ASSERT_TRUE(o.ok());
  GraphStore g = testing::MakeGraph(
      {{"a", "p", "b"}, {"a", "q", "b"}, {"a", "r", "b"}});
  BoundOntology bound(&*o, &g);
  RelaxOptions options;
  options.beta = 2;
  Nfa relaxed = BuildRelaxAutomaton(
      RemoveEpsilons(BuildThompsonNfa(*Rx("p"), g.labels())), bound, options);
  EXPECT_EQ(CountTransitionsWithLabel(relaxed, *g.labels().Find("q"), 2), 1u);
  EXPECT_EQ(CountTransitionsWithLabel(relaxed, *g.labels().Find("r"), 4), 1u);
}

TEST(RelaxAutomatonTest, ReversedTransitionsAlsoRelax) {
  OntologyBuilder ob;
  ASSERT_TRUE(ob.AddSubproperty("p", "q").ok());
  Result<Ontology> o = std::move(ob).Finalize();
  ASSERT_TRUE(o.ok());
  GraphStore g = testing::MakeGraph({{"a", "p", "b"}, {"a", "q", "b"}});
  BoundOntology bound(&*o, &g);
  Nfa relaxed = BuildRelaxAutomaton(
      RemoveEpsilons(BuildThompsonNfa(*Rx("p-"), g.labels())), bound,
      RelaxOptions{});
  bool found = false;
  for (StateId s = 0; s < relaxed.NumStates(); ++s) {
    for (const NfaTransition& t : relaxed.Out(s)) {
      if (t.kind == TransitionKind::kLabel &&
          t.label == *g.labels().Find("q") &&
          t.dir == Direction::kIncoming && t.cost == 1) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(RelaxAutomatonTest, TypeTransitionsAreNotRelaxedBysp) {
  RelaxFixture fx;
  Nfa relaxed = BuildRelax("type", fx);
  // No extra transitions beyond the original type edge.
  EXPECT_EQ(relaxed.NumTransitions(), 1u);
}

TEST(RelaxAutomatonTest, DomainRangeRuleOffByDefault) {
  RelaxFixture fx;
  Nfa relaxed = BuildRelax("gradFrom", fx);
  for (StateId s = 0; s < relaxed.NumStates(); ++s) {
    for (const NfaTransition& t : relaxed.Out(s)) {
      EXPECT_NE(t.kind, TransitionKind::kConstrainedType);
    }
  }
}

TEST(RelaxAutomatonTest, DomainRangeRuleAddsConstrainedType) {
  RelaxFixture fx;
  RelaxOptions options;
  options.enable_domain_range = true;
  options.gamma = 4;

  // Forward gradFrom: constrained type into dom(gradFrom) = wordnet_person.
  Nfa forward = BuildRelax("gradFrom", fx, options);
  bool found_dom = false;
  for (StateId s = 0; s < forward.NumStates(); ++s) {
    for (const NfaTransition& t : forward.Out(s)) {
      if (t.kind == TransitionKind::kConstrainedType) {
        EXPECT_EQ(t.cost, 4);
        EXPECT_EQ(t.class_node, *fx.graph.FindNode("wordnet_person"));
        found_dom = true;
      }
    }
  }
  EXPECT_TRUE(found_dom);

  // Reversed gradFrom-: constrained type into range = wordnet_university.
  Nfa backward = BuildRelax("gradFrom-", fx, options);
  bool found_range = false;
  for (StateId s = 0; s < backward.NumStates(); ++s) {
    for (const NfaTransition& t : backward.Out(s)) {
      if (t.kind == TransitionKind::kConstrainedType) {
        EXPECT_EQ(t.class_node, *fx.graph.FindNode("wordnet_university"));
        found_range = true;
      }
    }
  }
  EXPECT_TRUE(found_range);
}

TEST(RelaxAutomatonTest, MinPositiveCostReflectsBeta) {
  OntologyBuilder ob;
  ASSERT_TRUE(ob.AddSubproperty("p", "q").ok());
  Result<Ontology> o = std::move(ob).Finalize();
  ASSERT_TRUE(o.ok());
  GraphStore g = testing::MakeGraph({{"a", "p", "b"}, {"a", "q", "b"}});
  BoundOntology bound(&*o, &g);
  RelaxOptions options;
  options.beta = 3;
  Nfa relaxed = BuildRelaxAutomaton(
      RemoveEpsilons(BuildThompsonNfa(*Rx("p"), g.labels())), bound, options);
  EXPECT_EQ(relaxed.MinPositiveCost(), 3);
}

}  // namespace
}  // namespace omega
