#include "eval/initial_node_stream.h"

#include <gtest/gtest.h>

#include <set>

#include "automata/epsilon_removal.h"
#include "automata/thompson.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::MakeGraph;
using testing::Rx;

std::vector<NodeId> DrainStream(InitialNodeStream* stream) {
  std::vector<NodeId> out;
  for (;;) {
    auto batch = stream->NextBatch();
    if (batch.empty()) break;
    out.insert(out.end(), batch.begin(), batch.end());
  }
  return out;
}

Nfa MakeNfa(const GraphStore& g, const std::string& regex) {
  return RemoveEpsilons(BuildThompsonNfa(*Rx(regex), g.labels()));
}

TEST(InitialNodeStreamTest, StartNodesOnlyHaveMatchingEdges) {
  GraphStore g = MakeGraph(
      {{"a", "e", "b"}, {"c", "e", "d"}, {"x", "f", "y"}});
  Nfa nfa = MakeNfa(g, "e.f");
  InitialNodeStream stream(&g, nullptr, &nfa, /*include_remaining=*/false,
                           100);
  auto nodes = DrainStream(&stream);
  // Only nodes with an outgoing e-edge qualify: a and c.
  std::set<NodeId> got(nodes.begin(), nodes.end());
  EXPECT_EQ(got, (std::set<NodeId>{*g.FindNode("a"), *g.FindNode("c")}));
}

TEST(InitialNodeStreamTest, ReversedLabelUsesHeads) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"c", "e", "d"}});
  Nfa nfa = MakeNfa(g, "e-");
  InitialNodeStream stream(&g, nullptr, &nfa, false, 100);
  auto nodes = DrainStream(&stream);
  std::set<NodeId> got(nodes.begin(), nodes.end());
  EXPECT_EQ(got, (std::set<NodeId>{*g.FindNode("b"), *g.FindNode("d")}));
}

TEST(InitialNodeStreamTest, IncludeRemainingYieldsEveryNodeExactlyOnce) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"x", "f", "y"}});
  Nfa nfa = MakeNfa(g, "e*");  // start state is final: all nodes candidates
  InitialNodeStream stream(&g, nullptr, &nfa, /*include_remaining=*/true,
                           100);
  auto nodes = DrainStream(&stream);
  EXPECT_EQ(nodes.size(), g.NumNodes());
  std::set<NodeId> distinct(nodes.begin(), nodes.end());
  EXPECT_EQ(distinct.size(), g.NumNodes());
  // Nodes with a usable e-edge come before edge-less ones.
  EXPECT_EQ(nodes.front(), *g.FindNode("a"));
}

TEST(InitialNodeStreamTest, BatchSizeControlsChunking) {
  GraphStore g = testing::RandomGraph(3, 50, {"e"}, 2.0);
  Nfa nfa = MakeNfa(g, "e");
  InitialNodeStream stream(&g, nullptr, &nfa, false, 7);
  size_t batches = 0;
  size_t total = 0;
  for (;;) {
    auto batch = stream.NextBatch();
    if (batch.empty()) break;
    EXPECT_LE(batch.size(), 7u);
    ++batches;
    total += batch.size();
  }
  EXPECT_EQ(total, stream.total_yielded());
  EXPECT_GE(batches, total / 7);
  EXPECT_TRUE(stream.Exhausted());
}

TEST(InitialNodeStreamTest, CheaperTransitionGroupsComeFirst) {
  // Manually build an NFA whose start state has a cost-0 exit on label e
  // and a cost-1 exit on label f: e-endpoints must precede f-endpoints.
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"x", "f", "y"}});
  Nfa nfa;
  const StateId s0 = nfa.AddState();
  const StateId s1 = nfa.AddState();
  nfa.SetInitial(s0);
  nfa.MakeFinal(s1);
  nfa.AddLabel(s0, s1, *g.labels().Find("e"), Direction::kOutgoing, 0);
  nfa.AddLabel(s0, s1, *g.labels().Find("f"), Direction::kOutgoing, 1);
  nfa.SortTransitions();

  InitialNodeStream stream(&g, nullptr, &nfa, false, 100);
  auto nodes = DrainStream(&stream);
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], *g.FindNode("a"));  // cost-0 group first
  EXPECT_EQ(nodes[1], *g.FindNode("x"));
}

TEST(InitialNodeStreamTest, NodeInBothGroupsYieldedOnceAtCheaperGroup) {
  // `a` has both e (cost 0 exit) and f (cost 1 exit) edges.
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"a", "f", "c"}, {"x", "f", "y"}});
  Nfa nfa;
  const StateId s0 = nfa.AddState();
  const StateId s1 = nfa.AddState();
  nfa.SetInitial(s0);
  nfa.MakeFinal(s1);
  nfa.AddLabel(s0, s1, *g.labels().Find("e"), Direction::kOutgoing, 0);
  nfa.AddLabel(s0, s1, *g.labels().Find("f"), Direction::kOutgoing, 1);
  nfa.SortTransitions();

  InitialNodeStream stream(&g, nullptr, &nfa, false, 100);
  auto nodes = DrainStream(&stream);
  ASSERT_EQ(nodes.size(), 2u);  // a once (cheap group), then x
  EXPECT_EQ(nodes[0], *g.FindNode("a"));
  EXPECT_EQ(nodes[1], *g.FindNode("x"));
}

TEST(InitialNodeStreamTest, WildcardSeedsSigmaAndTypeEndpoints) {
  GraphBuilder builder;
  const NodeId a = builder.GetOrAddNode("a");
  const NodeId k = builder.GetOrAddNode("K");
  const NodeId b = builder.GetOrAddNode("b");
  ASSERT_TRUE(builder.AddTypeEdge(a, k).ok());
  ASSERT_TRUE(builder.AddEdge(b, *builder.InternLabel("e"), a).ok());
  GraphStore g = std::move(builder).Finalize();

  Nfa nfa = MakeNfa(g, "_");
  InitialNodeStream stream(&g, nullptr, &nfa, false, 100);
  auto nodes = DrainStream(&stream);
  std::set<NodeId> got(nodes.begin(), nodes.end());
  // `_` is a forward step over Σ ∪ {type}: a (type out) and b (e out).
  EXPECT_EQ(got, (std::set<NodeId>{a, b}));
}

TEST(InitialNodeStreamTest, EntailmentExpandsSeedLabels) {
  OntologyBuilder ob;
  ASSERT_TRUE(ob.AddSubproperty("e", "parent").ok());
  Result<Ontology> o = std::move(ob).Finalize();
  ASSERT_TRUE(o.ok());
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  BoundOntology bound(&*o, &g);

  // An NFA over the synthetic `parent` label, marked for entailment.
  Nfa nfa;
  const StateId s0 = nfa.AddState();
  const StateId s1 = nfa.AddState();
  nfa.SetInitial(s0);
  nfa.MakeFinal(s1);
  nfa.AddLabel(s0, s1, *bound.FindSyntheticLabel("parent"),
               Direction::kOutgoing, 0);
  nfa.SetEntailmentMatching(true);

  InitialNodeStream stream(&g, &bound, &nfa, false, 100);
  auto nodes = DrainStream(&stream);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], *g.FindNode("a"));  // via down-set member e
}

TEST(InitialNodeStreamTest, EmptyGraphLabelYieldsNothing) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  Nfa nfa = MakeNfa(g, "zzz");
  InitialNodeStream stream(&g, nullptr, &nfa, false, 100);
  EXPECT_TRUE(DrainStream(&stream).empty());
  EXPECT_TRUE(stream.Exhausted());
}

}  // namespace
}  // namespace omega
