// FlightRecorder and EventLog unit tests: ring wraparound keeps the newest
// entries, the slow-query reservoir gates on the queue+exec threshold and
// retains trace JSON, ToJson renders the documented shape, and the event
// journal's ring / JSONL sink / severity rendering behave.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace omega {
namespace {

QueryFlightRecord MakeRecord(uint64_t queue_us, uint64_t exec_us,
                             uint64_t key_hash = 0) {
  QueryFlightRecord record;
  record.query_class = "EXACT";
  record.status = StatusCode::kOk;
  record.key_hash = key_hash;
  record.queue_us = queue_us;
  record.exec_us = exec_us;
  record.epoch = 7;
  record.answers = 3;
  return record;
}

TEST(FlightRecorderTest, RingWrapsKeepingNewest) {
  FlightRecorderOptions options;
  options.capacity = 4;
  options.slow_threshold_us = 1'000'000;  // nothing is slow here
  FlightRecorder recorder(options);

  for (uint64_t i = 0; i < 10; ++i) {
    recorder.Record(MakeRecord(/*queue_us=*/i, /*exec_us=*/0), nullptr);
  }
  EXPECT_EQ(recorder.recorded_total(), 10u);
  EXPECT_EQ(recorder.slow_total(), 0u);

  // Oldest-first: the four retained records are #6..#9.
  const std::vector<QueryFlightRecord> recent = recorder.Recent();
  ASSERT_EQ(recent.size(), 4u);
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].seq, 6 + i);
    EXPECT_EQ(recent[i].queue_us, 6 + i);
  }
  // A max below the retained count returns the most recent entries only.
  const std::vector<QueryFlightRecord> last_two = recorder.Recent(2);
  ASSERT_EQ(last_two.size(), 2u);
  EXPECT_EQ(last_two[0].seq, 8u);
  EXPECT_EQ(last_two[1].seq, 9u);
}

TEST(FlightRecorderTest, SlowThresholdGatesTheReservoir) {
  FlightRecorderOptions options;
  options.slow_threshold_us = 100;
  FlightRecorder recorder(options);

  recorder.Record(MakeRecord(/*queue_us=*/10, /*exec_us=*/89), nullptr);
  EXPECT_EQ(recorder.slow_total(), 0u);  // 99 < 100
  recorder.Record(MakeRecord(/*queue_us=*/10, /*exec_us=*/90), nullptr);
  EXPECT_EQ(recorder.slow_total(), 1u);  // 100 >= 100 (queue counts too)
  recorder.Record(MakeRecord(/*queue_us=*/0, /*exec_us=*/500), nullptr);
  EXPECT_EQ(recorder.slow_total(), 2u);
  EXPECT_EQ(recorder.recorded_total(), 3u);

  const std::vector<FlightRecorder::SlowQuery> slow = recorder.Slow();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].summary.exec_us, 90u);
  EXPECT_EQ(slow[1].summary.exec_us, 500u);
  EXPECT_TRUE(slow[0].trace_json.empty());  // no trace attached
}

TEST(FlightRecorderTest, SlowReservoirKeepsTraceJsonAndWraps) {
  FlightRecorderOptions options;
  options.slow_capacity = 2;
  options.slow_threshold_us = 1;
  FlightRecorder recorder(options);

  for (int i = 0; i < 5; ++i) {
    TraceRecorder trace;
    trace.RecordComplete("execute", /*dur_us=*/i + 1);
    recorder.Record(MakeRecord(/*queue_us=*/0, /*exec_us=*/100 + i),
                    &trace);
  }
  EXPECT_EQ(recorder.slow_total(), 5u);
  const std::vector<FlightRecorder::SlowQuery> slow = recorder.Slow();
  ASSERT_EQ(slow.size(), 2u);  // reservoir wrapped, newest retained
  EXPECT_EQ(slow[0].summary.exec_us, 103u);
  EXPECT_EQ(slow[1].summary.exec_us, 104u);
  EXPECT_NE(slow[1].trace_json.find("\"spans\":["), std::string::npos);
  EXPECT_NE(slow[1].trace_json.find("execute"), std::string::npos);
}

TEST(FlightRecorderTest, FastPathNeverSerialisesTheTrace) {
  FlightRecorderOptions options;
  options.slow_threshold_us = 1'000'000;
  FlightRecorder recorder(options);
  TraceRecorder trace;
  trace.RecordComplete("execute", /*dur_us=*/5);
  recorder.Record(MakeRecord(/*queue_us=*/1, /*exec_us=*/2), &trace);
  EXPECT_EQ(recorder.slow_total(), 0u);
  EXPECT_TRUE(recorder.Slow().empty());
}

TEST(FlightRecorderTest, ToJsonRendersDocumentedShape) {
  FlightRecorderOptions options;
  options.slow_threshold_us = 50;
  FlightRecorder recorder(options);
  recorder.Record(MakeRecord(/*queue_us=*/2, /*exec_us=*/3,
                             /*key_hash=*/0xabcdef0123456789ull),
                  nullptr);
  recorder.Record(MakeRecord(/*queue_us=*/40, /*exec_us=*/60), nullptr);

  const std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"recent\":["), std::string::npos);
  EXPECT_NE(json.find("\"slow\":["), std::string::npos);
  EXPECT_NE(json.find("\"recorded_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"slow_total\":1"), std::string::npos);
  EXPECT_NE(json.find("\"slow_threshold_us\":50"), std::string::npos);
  // Key hashes render as fixed-width hex strings.
  EXPECT_NE(json.find("\"key_hash\":\"abcdef0123456789\""),
            std::string::npos);
  EXPECT_NE(json.find("\"class\":\"EXACT\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"OK\""), std::string::npos);
}

TEST(FlightRecorderTest, HashKeyIsStableFnv1a) {
  // FNV-1a 64 reference values: the hash must stay stable across builds
  // (operators correlate /tracez key hashes across restarts).
  EXPECT_EQ(FlightRecorder::HashKey(""), 14695981039346656037ull);
  EXPECT_EQ(FlightRecorder::HashKey("a"), 12638187200555641996ull);
  EXPECT_NE(FlightRecorder::HashKey("EXACT|x"),
            FlightRecorder::HashKey("EXACT|y"));
}

TEST(EventLogTest, RingWrapsKeepingNewestAndCountsTotal) {
  EventLog log(/*capacity=*/3);
  for (int i = 0; i < 7; ++i) {
    log.Record(EventSeverity::kInfo, "test",
               "event " + std::to_string(i));
  }
  EXPECT_EQ(log.recorded_total(), 7u);
  EXPECT_EQ(log.capacity(), 3u);
  const std::vector<LogEvent> events = log.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].message, "event 4");
  EXPECT_EQ(events[2].message, "event 6");
  EXPECT_EQ(events[2].seq, 6u);
  // Snapshot(max) trims to the most recent entries.
  const std::vector<LogEvent> last = log.Snapshot(1);
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].message, "event 6");
}

TEST(EventLogTest, ToJsonAndToTextRenderSeverities) {
  EventLog log;
  log.Record(EventSeverity::kWarn, "service", "admission rejected");
  log.Record(EventSeverity::kError, "snapshot", "open failed: \"x\"");
  const std::string json = log.ToJson();
  EXPECT_NE(json.find("\"events\":["), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"warn\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  // The quote inside the message must be escaped.
  EXPECT_NE(json.find("open failed: \\\"x\\\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded_total\":2"), std::string::npos);
  const std::string text = log.ToText();
  EXPECT_NE(text.find("warn"), std::string::npos);
  EXPECT_NE(text.find("admission rejected"), std::string::npos);
}

TEST(EventLogTest, JsonlSinkMirrorsEvents) {
  const std::string path =
      ::testing::TempDir() + "/omega_event_log_test.jsonl";
  std::remove(path.c_str());
  EventLog log;
  log.Record(EventSeverity::kInfo, "test", "before sink");
  ASSERT_TRUE(log.AttachJsonlSink(path).ok());
  log.Record(EventSeverity::kInfo, "test", "first sunk");
  log.Record(EventSeverity::kWarn, "test", "second sunk");
  log.DetachJsonlSink();
  log.Record(EventSeverity::kInfo, "test", "after detach");

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[512];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  std::remove(path.c_str());

  // Only the events recorded while the sink was attached, one per line.
  EXPECT_EQ(contents.find("before sink"), std::string::npos);
  EXPECT_NE(contents.find("first sunk"), std::string::npos);
  EXPECT_NE(contents.find("second sunk"), std::string::npos);
  EXPECT_EQ(contents.find("after detach"), std::string::npos);
  size_t lines = 0;
  for (char c : contents) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(EventLogTest, AttachSinkFailsOnUnwritablePath) {
  EventLog log;
  EXPECT_FALSE(
      log.AttachJsonlSink("/no/such/directory/events.jsonl").ok());
}

}  // namespace
}  // namespace omega
