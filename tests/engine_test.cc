#include "eval/query_engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <set>

#include "common/cancel.h"
#include "rpq/query_parser.h"
#include "test_util.h"

namespace omega {
namespace {

using testing::MakeGraph;

TEST(EngineTest, SingleConjunctProjection) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"a", "e", "c"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery("(?X) <- (a, e, ?X)");
  ASSERT_TRUE(q.ok());
  auto answers = engine.ExecuteTopK(*q, 0);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);
  for (const QueryAnswer& a : *answers) {
    EXPECT_EQ(a.bindings.size(), 1u);
    EXPECT_EQ(a.distance, 0);
  }
}

TEST(EngineTest, ProjectionDeduplicates) {
  // Both b and c lead to d: projecting only ?Z must yield d once.
  GraphStore g = MakeGraph(
      {{"a", "e", "b"}, {"a", "e", "c"}, {"b", "f", "d"}, {"c", "f", "d"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery("(?Z) <- (?X, e, ?Y), (?Y, f, ?Z)");
  ASSERT_TRUE(q.ok());
  auto answers = engine.ExecuteTopK(*q, 0);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ(g.NodeLabel((*answers)[0].bindings[0]), "d");
}

TEST(EngineTest, WideHeadProjectionDeduplicates) {
  // Three head variables exceed the packed 64-bit dedup key, exercising the
  // wide flat-set fallback; the diamond still reaches d along two ?Y paths,
  // so each (?X, ?Y, ?Z) triple is distinct but (?X, ?Z) pairs collapse.
  GraphStore g = MakeGraph(
      {{"a", "e", "b"}, {"a", "e", "c"}, {"b", "f", "d"}, {"c", "f", "d"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> wide = ParseQuery("(?X, ?Y, ?Z) <- (?X, e, ?Y), (?Y, f, ?Z)");
  ASSERT_TRUE(wide.ok());
  auto triples = engine.ExecuteTopK(*wide, 0);
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(triples->size(), 2u);  // (a,b,d) and (a,c,d)
  std::set<std::vector<NodeId>> distinct;
  for (const QueryAnswer& a : *triples) {
    ASSERT_EQ(a.bindings.size(), 3u);
    distinct.insert(a.bindings);
  }
  EXPECT_EQ(distinct.size(), triples->size());
}

TEST(EngineTest, SameVariableBothEndpointsFiltersLoops) {
  GraphStore g = MakeGraph({{"a", "e", "a"}, {"b", "e", "c"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery("(?X) <- (?X, e, ?X)");
  ASSERT_TRUE(q.ok());
  auto answers = engine.ExecuteTopK(*q, 0);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ(g.NodeLabel((*answers)[0].bindings[0]), "a");
}

TEST(EngineTest, TopKLimitsResults) {
  GraphStore g = testing::RandomGraph(15, 30, {"e"}, 3.0);
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery("(?X, ?Y) <- (?X, e, ?Y)");
  ASSERT_TRUE(q.ok());
  auto limited = engine.ExecuteTopK(*q, 5);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 5u);
}

TEST(EngineTest, StreamInterfaceMatchesTopK) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"b", "e", "c"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery("(?X, ?Y) <- (?X, e+, ?Y)");
  ASSERT_TRUE(q.ok());

  auto stream = engine.Execute(*q);
  ASSERT_TRUE(stream.ok());
  std::vector<QueryAnswer> from_stream;
  QueryAnswer a;
  while ((*stream)->Next(&a)) from_stream.push_back(a);

  auto from_topk = engine.ExecuteTopK(*q, 0);
  ASSERT_TRUE(from_topk.ok());
  EXPECT_EQ(from_stream.size(), from_topk->size());
}

TEST(EngineTest, RelaxWithoutOntologyFails) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery("(?X) <- RELAX (a, e, ?X)");
  ASSERT_TRUE(q.ok());
  auto answers = engine.ExecuteTopK(*q, 0);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, InvalidQueryRejected) {
  GraphStore g = MakeGraph({{"a", "e", "b"}});
  QueryEngine engine(&g, nullptr);
  Query q;  // empty: no head, no conjuncts
  auto answers = engine.ExecuteTopK(q, 0);
  EXPECT_FALSE(answers.ok());
}

TEST(EngineTest, DistanceAwareOptionProducesSameAnswers) {
  GraphStore g = testing::RandomGraph(41, 20, {"e", "f"}, 2.0);
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery("(?X) <- APPROX (n0, e.f, ?X)");
  ASSERT_TRUE(q.ok());

  QueryEngineOptions base;
  base.evaluator.max_distance = 2;
  auto expected = engine.ExecuteTopK(*q, 0, base);
  ASSERT_TRUE(expected.ok());

  QueryEngineOptions da = base;
  da.distance_aware = true;
  auto got = engine.ExecuteTopK(*q, 0, da);
  ASSERT_TRUE(got.ok());

  auto key_set = [](const std::vector<QueryAnswer>& answers) {
    std::set<std::pair<std::vector<NodeId>, Cost>> out;
    for (const QueryAnswer& a : answers) out.insert({a.bindings, a.distance});
    return out;
  };
  EXPECT_EQ(key_set(*got), key_set(*expected));
}

TEST(EngineTest, DecomposeAlternationOptionProducesSameAnswers) {
  GraphStore g = testing::RandomGraph(43, 20, {"e", "f", "g"}, 2.0);
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery("(?X) <- APPROX (n0, e|(f.g), ?X)");
  ASSERT_TRUE(q.ok());

  QueryEngineOptions base;
  base.evaluator.max_distance = 1;
  auto expected = engine.ExecuteTopK(*q, 0, base);
  ASSERT_TRUE(expected.ok());

  QueryEngineOptions dis = base;
  dis.decompose_alternation = true;
  auto got = engine.ExecuteTopK(*q, 0, dis);
  ASSERT_TRUE(got.ok());

  auto key_set = [](const std::vector<QueryAnswer>& answers) {
    std::set<std::pair<std::vector<NodeId>, Cost>> out;
    for (const QueryAnswer& a : answers) out.insert({a.bindings, a.distance});
    return out;
  };
  EXPECT_EQ(key_set(*got), key_set(*expected));
}

TEST(EngineTest, ResourceExhaustionSurfacesFromTopK) {
  GraphStore g = testing::RandomGraph(47, 40, {"e", "f"}, 3.0);
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery("(?X, ?Y) <- APPROX (?X, e.f.e, ?Y)");
  ASSERT_TRUE(q.ok());
  QueryEngineOptions options;
  options.evaluator.max_live_tuples = 100;
  auto answers = engine.ExecuteTopK(*q, 0, options);
  ASSERT_FALSE(answers.ok());
  EXPECT_TRUE(answers.status().IsResourceExhausted());
}

TEST(EngineTest, AnswersOrderedByTotalDistance) {
  GraphStore g = testing::RandomGraph(53, 25, {"e", "f"}, 2.0);
  QueryEngine engine(&g, nullptr);
  Result<Query> q =
      ParseQuery("(?X, ?Z) <- APPROX (?X, e, ?Y), APPROX (?Y, f, ?Z)");
  ASSERT_TRUE(q.ok());
  QueryEngineOptions options;
  options.evaluator.max_distance = 1;
  auto stream = engine.Execute(*q, options);
  ASSERT_TRUE(stream.ok());
  QueryAnswer a;
  Cost last = 0;
  size_t count = 0;
  while (count < 200 && (*stream)->Next(&a)) {
    EXPECT_GE(a.distance, last);
    last = a.distance;
    ++count;
  }
  EXPECT_GT(count, 0u);
}

TEST(EngineTest, ConstantOnlyConjunctActsAsFilter) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"x", "f", "y"}});
  QueryEngine engine(&g, nullptr);
  // The (a, e, b) conjunct is satisfied, so the cross product passes through.
  Result<Query> q = ParseQuery("(?X) <- (a, e, b), (x, f, ?X)");
  ASSERT_TRUE(q.ok());
  auto pass = engine.ExecuteTopK(*q, 0);
  ASSERT_TRUE(pass.ok());
  EXPECT_EQ(pass->size(), 1u);

  // An unsatisfied constant conjunct filters everything out.
  Result<Query> q2 = ParseQuery("(?X) <- (b, e, a), (x, f, ?X)");
  ASSERT_TRUE(q2.ok());
  auto blocked = engine.ExecuteTopK(*q2, 0);
  ASSERT_TRUE(blocked.ok());
  EXPECT_TRUE(blocked->empty());
}

TEST(EngineTest, CancelledTokenFailsSingleConjunctStream) {
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"b", "e", "c"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery("(?X) <- (?X, e+, ?Y)");
  ASSERT_TRUE(q.ok());
  CancelSource source;
  source.Cancel();
  QueryEngineOptions options;
  options.evaluator.cancel = source.token();
  Result<std::vector<QueryAnswer>> answers = engine.ExecuteTopK(*q, 0, options);
  ASSERT_FALSE(answers.ok());
  EXPECT_TRUE(answers.status().IsCancelled()) << answers.status().ToString();
}

TEST(EngineTest, ExpiredDeadlineFailsJoinStream) {
  // Multi-conjunct: the failure must also flow through the rank join.
  GraphStore g = MakeGraph(
      {{"a", "e", "b"}, {"b", "e", "c"}, {"b", "f", "d"}, {"c", "f", "d"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery("(?X, ?Z) <- (?X, e, ?Y), (?Y, f, ?Z)");
  ASSERT_TRUE(q.ok());
  QueryEngineOptions options;
  options.evaluator.cancel =
      CancelSource::WithTimeout(std::chrono::nanoseconds(0)).token();
  Result<std::vector<QueryAnswer>> answers = engine.ExecuteTopK(*q, 0, options);
  ASSERT_FALSE(answers.ok());
  EXPECT_TRUE(answers.status().IsDeadlineExceeded())
      << answers.status().ToString();
}

TEST(EngineTest, CancellationReachesOptimisationWrappers) {
  // Distance-aware and alternation-decomposition streams build their inner
  // evaluators from the same EvaluatorOptions, so the token must flow
  // through both wrappers.
  GraphStore g = MakeGraph({{"a", "e", "b"}, {"a", "f", "c"}});
  QueryEngine engine(&g, nullptr);
  Result<Query> q = ParseQuery("(?X) <- APPROX (?X, e|f, ?Y)");
  ASSERT_TRUE(q.ok());
  for (const bool distance_aware : {false, true}) {
    QueryEngineOptions options;
    options.distance_aware = distance_aware;
    options.decompose_alternation = !distance_aware;
    CancelSource source;
    source.Cancel();
    options.evaluator.cancel = source.token();
    Result<std::vector<QueryAnswer>> answers =
        engine.ExecuteTopK(*q, 0, options);
    ASSERT_FALSE(answers.ok());
    EXPECT_TRUE(answers.status().IsCancelled())
        << answers.status().ToString();
  }
}

}  // namespace
}  // namespace omega
